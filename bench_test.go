// Benchmarks: one per figure of the paper's evaluation (§IV), each running
// a scaled-down instance of the same workload the figure harness uses (64
// nodes instead of 512) so `go test -bench=.` regenerates every result's
// shape in minutes. Custom metrics report the figure's headline numbers;
// cmd/dcofig reproduces the full-scale tables.
//
// Ablation benchmarks cover the design decisions DESIGN.md calls out:
// coordinator pending queue, provider-selection policy, finger routing, and
// the adaptive prefetching window.
package dco_test

import (
	"testing"
	"time"

	"dco"
	"dco/internal/experiment"
)

func benchParams() experiment.Params {
	return experiment.Params{N: 64, Chunks: 20, Seed: 42, Horizon: 200 * time.Second}
}

// runFigure executes the figure workload once per iteration and reports a
// headline metric from the last run.
func runFigure(b *testing.B, id string, metric string, pick func(*experiment.Result) float64) {
	b.Helper()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		r, ok := dco.RunFigure(id, benchParams())
		if !ok {
			b.Fatalf("unknown figure %s", id)
		}
		last = r
	}
	if last != nil {
		b.ReportMetric(pick(last), metric)
	}
}

func at(r *experiment.Result, x float64, m experiment.Method) float64 {
	for _, row := range r.Rows {
		if row.X == x {
			return row.Y[m]
		}
	}
	return -1
}

func lastRow(r *experiment.Result, m experiment.Method) float64 {
	if len(r.Rows) == 0 {
		return -1
	}
	return r.Rows[len(r.Rows)-1].Y[m]
}

// BenchmarkFig05MeshDelay regenerates Fig. 5 (mesh delay vs neighbors).
func BenchmarkFig05MeshDelay(b *testing.B) {
	runFigure(b, "5", "dco_delay_s@32nbrs", func(r *experiment.Result) float64 {
		return at(r, 32, experiment.MethodDCO)
	})
}

// BenchmarkFig06FillRatioNeighbors regenerates Fig. 6 (fill ratio 2 s after
// generation vs neighbors).
func BenchmarkFig06FillRatioNeighbors(b *testing.B) {
	runFigure(b, "6", "dco_fill@32nbrs", func(r *experiment.Result) float64 {
		return at(r, 32, experiment.MethodDCO)
	})
}

// BenchmarkFig07FillRatioTime regenerates Fig. 7 (fill ratio vs elapsed
// time).
func BenchmarkFig07FillRatioTime(b *testing.B) {
	runFigure(b, "7", "dco_fill_final", func(r *experiment.Result) float64 {
		return lastRow(r, experiment.MethodDCO)
	})
}

// BenchmarkFig08OverheadNeighbors regenerates Fig. 8 (overhead vs
// neighbors).
func BenchmarkFig08OverheadNeighbors(b *testing.B) {
	runFigure(b, "8", "dco_msgs@64nbrs", func(r *experiment.Result) float64 {
		return at(r, 64, experiment.MethodDCO)
	})
}

// BenchmarkFig09OverheadScale regenerates Fig. 9 (overhead vs participants).
func BenchmarkFig09OverheadScale(b *testing.B) {
	runFigure(b, "9", "dco_msgs_largestN", func(r *experiment.Result) float64 {
		return lastRow(r, experiment.MethodDCO)
	})
}

// BenchmarkFig10OverheadTime regenerates Fig. 10 (cumulative overhead vs
// time).
func BenchmarkFig10OverheadTime(b *testing.B) {
	runFigure(b, "10", "dco_msgs_final", func(r *experiment.Result) float64 {
		return lastRow(r, experiment.MethodDCO)
	})
}

// BenchmarkFig11ChurnTime regenerates Fig. 11 (% received vs dissemination
// time under churn).
func BenchmarkFig11ChurnTime(b *testing.B) {
	p := benchParams()
	p.Chunks = 40
	p.Horizon = 150 * time.Second
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		last = experiment.Fig11(p)
	}
	b.ReportMetric(lastRow(last, experiment.MethodDCO), "dco_pct_received")
}

// BenchmarkFig12ChurnLife regenerates Fig. 12 (% received vs mean node
// lifetime).
func BenchmarkFig12ChurnLife(b *testing.B) {
	p := experiment.Params{N: 48, Chunks: 30, Seed: 42, Horizon: 120 * time.Second}
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		last = experiment.Fig12(p)
	}
	b.ReportMetric(lastRow(last, experiment.MethodDCO), "dco_pct_received")
}

// ---------------------------------------------------------------------------
// Ablations.

func dcoDelay(b *testing.B, mutate func(*dco.Config)) float64 {
	b.Helper()
	cfg := dco.DefaultConfig()
	cfg.Stream.Count = 20
	cfg.Neighbors = 16
	if mutate != nil {
		mutate(&cfg)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		k := dco.NewKernel(42)
		s := dco.NewDCO(k, cfg, 64)
		s.Run(300 * time.Second)
		mean, _, _ := s.Log.MeshDelay()
		total = mean.Seconds()
	}
	return total
}

// BenchmarkAblationPendingQueue: the paper's always-answered lookups vs a
// drop-and-retry coordinator.
func BenchmarkAblationPendingQueue(b *testing.B) {
	b.Run("queue", func(b *testing.B) {
		b.ReportMetric(dcoDelay(b, nil), "mesh_delay_s")
	})
	b.Run("drop", func(b *testing.B) {
		b.ReportMetric(dcoDelay(b, func(c *dco.Config) { c.PendingQueue = false }), "mesh_delay_s")
	})
}

// BenchmarkAblationSelection: bandwidth-aware provider choice vs random.
func BenchmarkAblationSelection(b *testing.B) {
	b.Run("least-loaded", func(b *testing.B) {
		b.ReportMetric(dcoDelay(b, nil), "mesh_delay_s")
	})
	b.Run("random", func(b *testing.B) {
		b.ReportMetric(dcoDelay(b, func(c *dco.Config) { c.Selection = dco.SelectRandom }), "mesh_delay_s")
	})
}

// BenchmarkAblationFingers: successor-list-only routing (the paper's
// neighbor semantics) vs full Chord finger routing.
func BenchmarkAblationFingers(b *testing.B) {
	run := func(b *testing.B, fingers bool) {
		cfg := dco.DefaultConfig()
		cfg.Stream.Count = 20
		cfg.Neighbors = 8
		cfg.UseFingers = fingers
		var overhead float64
		for i := 0; i < b.N; i++ {
			k := dco.NewKernel(42)
			s := dco.NewDCO(k, cfg, 128)
			s.Run(300 * time.Second)
			overhead = float64(s.Net.Overhead())
		}
		b.ReportMetric(overhead, "overhead_msgs")
	}
	b.Run("successor-list", func(b *testing.B) { run(b, false) })
	b.Run("fingers", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPrefetchWindow: Eq. (2)'s adaptive window vs a fixed
// narrow window.
func BenchmarkAblationPrefetchWindow(b *testing.B) {
	b.Run("adaptive", func(b *testing.B) {
		b.ReportMetric(dcoDelay(b, nil), "mesh_delay_s")
	})
	b.Run("fixed-4", func(b *testing.B) {
		b.ReportMetric(dcoDelay(b, func(c *dco.Config) {
			c.Prefetch.MinWindow = 4
			c.Prefetch.MaxWindow = 4
		}), "mesh_delay_s")
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot substrates.

// BenchmarkKernelEventThroughput measures raw event-loop speed.
func BenchmarkKernelEventThroughput(b *testing.B) {
	k := dco.NewKernel(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, fn)
		}
	}
	b.ResetTimer()
	k.After(0, fn)
	k.Run()
}

// BenchmarkChunkHash measures chunk-name hashing (every Insert/Lookup).
func BenchmarkChunkHash(b *testing.B) {
	ref := dco.ChunkRef{Channel: "CNN", Seq: 0}
	for i := 0; i < b.N; i++ {
		ref.Seq = int64(i)
		_ = ref.ID()
	}
}
