// Package dco is a from-scratch implementation and reproduction of
// "A DHT-Aided Chunk-Driven Overlay for Scalable and Efficient Peer-to-Peer
// Live Streaming" (Shen, Zhao, Li & Li, ICPP 2010).
//
// DCO organizes live-stream viewers around a Chord DHT: every chunk's index
// (who holds it, with how much spare upload bandwidth) is stored at the
// ring member owning the chunk's hashed name, so any viewer can locate a
// provider for any chunk with one DHT lookup instead of gossiping buffer
// maps with every neighbor.
//
// The package exposes three layers:
//
//   - a deterministic discrete-event simulator with DCO and the paper's
//     three baselines (pull mesh, push mesh, tree) — see NewDCO,
//     NewBaseline, and the experiment runners in RunFigure;
//   - a real-network DCO node over TCP (NewLiveNode) speaking a compact
//     binary wire protocol, reusing the same Chord state machine;
//   - the substrates themselves (Chord ring math, chunk/buffer-map model,
//     Cox longevity model, churn generators) for building new experiments.
//
// Everything is stdlib-only. Simulations are reproducible: one seed fixes
// every random choice.
package dco

import (
	"time"

	"dco/internal/chord"
	"dco/internal/churn"
	"dco/internal/core"
	"dco/internal/experiment"
	"dco/internal/live"
	"dco/internal/metrics"
	"dco/internal/overlay"
	"dco/internal/sim"
	"dco/internal/stable"
	"dco/internal/stream"
	"dco/internal/transport"
)

// Simulation kernel.
type (
	// Kernel is the deterministic discrete-event engine every simulation
	// runs on.
	Kernel = sim.Kernel
)

// NewKernel returns a simulation kernel whose randomness derives entirely
// from seed.
func NewKernel(seed int64) *Kernel { return sim.NewKernel(seed) }

// DCO system (the paper's contribution).
type (
	// Config parameterizes a simulated DCO deployment.
	Config = core.Config
	// System is a running simulated DCO network.
	System = core.System
	// Peer is one simulated DCO node.
	Peer = core.Peer
	// HierarchyConfig tunes the two-tier coordinator mode (§III-B1).
	HierarchyConfig = core.HierarchyConfig
)

// Selection policies for coordinators handing out providers.
const (
	SelectLeastLoaded = core.SelectLeastLoaded
	SelectRandom      = core.SelectRandom
)

// DefaultConfig returns the paper's §IV parameters (512-node scale).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDCO builds a static simulated DCO network of n nodes on k.
func NewDCO(k *Kernel, cfg Config, n int) *System { return core.NewSystem(k, cfg, n) }

// Baselines.
type (
	// BaselineKind selects pull, push, or tree.
	BaselineKind = overlay.Kind
	// BaselineConfig parameterizes a baseline overlay.
	BaselineConfig = overlay.Config
	// BaselineSystem is a running baseline simulation.
	BaselineSystem = overlay.System
)

// The paper's three baseline overlays.
const (
	Pull = overlay.Pull
	Push = overlay.Push
	Tree = overlay.Tree
)

// DefaultBaselineConfig returns the paper's settings for the given kind.
func DefaultBaselineConfig(kind BaselineKind) BaselineConfig { return overlay.DefaultConfig(kind) }

// NewBaseline builds a static baseline overlay of n nodes on k.
func NewBaseline(k *Kernel, cfg BaselineConfig, n int) *BaselineSystem {
	return overlay.NewSystem(k, cfg, n)
}

// Stream model.
type (
	// StreamParams fixes a channel's chunk geometry.
	StreamParams = stream.Params
	// ChunkRef names one chunk (channel + sequence), per §III-A1.
	ChunkRef = stream.ChunkRef
	// BufferMap is the chunk-possession bitset nodes exchange and index.
	BufferMap = stream.BufferMap
	// PrefetchConfig is Eq. (2)'s adaptive prefetching window.
	PrefetchConfig = stream.PrefetchConfig
)

// Metrics (the paper's four evaluation metrics).
type (
	// DeliveryLog records generations/receipts and derives mesh delay,
	// fill ratio and received-percentage.
	DeliveryLog = metrics.DeliveryLog
)

// Churn (§IV-D's exponential model).
type (
	// ChurnConfig sets mean lifetime, arrival interval and graceful rate.
	ChurnConfig = churn.Config
	// ChurnDriver schedules arrivals and departures on a kernel.
	ChurnDriver = churn.Driver
	// ChurnPeer is anything the driver can remove.
	ChurnPeer = churn.Peer
)

// NewChurnDriver creates a churn driver on k; spawn creates a joined peer.
func NewChurnDriver(k *Kernel, cfg ChurnConfig, spawn func() ChurnPeer) *ChurnDriver {
	return churn.NewDriver(k, cfg, spawn)
}

// Stable-node identification (Eq. 1).
type (
	// LongevityModel is the Cox proportional-hazards model.
	LongevityModel = stable.Model
	// Covariates are Eq. (1)'s z vector.
	Covariates = stable.Covariates
)

// Chord (the DHT substrate).
type (
	// ChordID is a point on the identifier circle.
	ChordID = chord.ID
)

// HashChunkName maps a chunk name onto the identifier circle.
func HashChunkName(name string) ChordID { return chord.HashString(name) }

// Live (real-network) node.
type (
	// LiveConfig parameterizes a real DCO node.
	LiveConfig = live.Config
	// LiveNode is a runnable DCO participant over a Transport.
	LiveNode = live.Node
	// Transport moves wire messages (TCP or in-memory).
	Transport = transport.Transport
	// TransportHandler serves inbound wire requests.
	TransportHandler = transport.Handler
)

// DefaultLiveConfig returns localhost-friendly live-node settings.
func DefaultLiveConfig() LiveConfig { return live.DefaultNodeConfig() }

// NewLiveNode creates a live DCO node; attach binds its handler to a
// transport (use ListenTCP for real networking).
func NewLiveNode(cfg LiveConfig, attach func(TransportHandler) (Transport, error)) (*LiveNode, error) {
	return live.NewNode(cfg, attach)
}

// ListenTCP starts a TCP transport on addr serving h.
func ListenTCP(addr string, h TransportHandler) (Transport, error) {
	return transport.ListenTCP(addr, h)
}

// Experiments (the paper's figures).
type (
	// FigureParams scales an experiment run.
	FigureParams = experiment.Params
	// FigureResult is one regenerated table.
	FigureResult = experiment.Result
)

// RunFigure regenerates one of the paper's figures ("5".."12").
func RunFigure(id string, p FigureParams) (*FigureResult, bool) {
	f, ok := experiment.Figures[id]
	if !ok {
		return nil, false
	}
	return f(p), true
}

// FigureIDs lists the reproducible figures in paper order.
func FigureIDs() []string { return append([]string(nil), experiment.FigureOrder...) }

// Version is the library version.
const Version = "1.0.0"

// DefaultHorizon is a safe simulation cutoff for paper-scale runs.
const DefaultHorizon = 400 * time.Second
