package trace

import (
	"strings"
	"testing"
	"time"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, 1, "x", "y")
	r.Recordf(0, 1, "x", "%d", 1)
	r.Filter("x")
	if r.Events() != nil || r.Count("x") != 0 || r.Total() != 0 {
		t.Fatal("nil recorder should be a silent sink")
	}
	r.Summary(&strings.Builder{})
	r.Dump(&strings.Builder{})
}

func TestRecordAndEvents(t *testing.T) {
	r := New(10)
	r.Record(sec(1), 5, "a", "one")
	r.Recordf(sec(2), 6, "b", "n=%d", 2)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Kind != "a" || ev[1].Detail != "n=2" {
		t.Fatalf("wrong events: %+v", ev)
	}
	if r.Count("a") != 1 || r.Count("b") != 1 || r.Total() != 2 {
		t.Fatal("counts wrong")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := New(3)
	for i := 0; i < 7; i++ {
		r.Recordf(sec(i), int64(i), "k", "%d", i)
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Node != int64(4+i) {
			t.Fatalf("wrong retention order: %+v", ev)
		}
	}
	if r.Total() != 7 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestFilterStillCounts(t *testing.T) {
	r := New(10)
	r.Filter("keep")
	r.Record(0, 1, "keep", "")
	r.Record(0, 1, "drop", "")
	if len(r.Events()) != 1 {
		t.Fatal("filter did not drop")
	}
	if r.Count("drop") != 1 {
		t.Fatal("filtered kinds must still count")
	}
	r.Filter() // clear
	r.Record(0, 1, "drop", "")
	if len(r.Events()) != 2 {
		t.Fatal("clearing the filter should record everything again")
	}
}

func TestSummaryAndDump(t *testing.T) {
	r := New(10)
	r.Record(sec(1), 1, "b", "x")
	r.Record(sec(2), 1, "a", "y")
	r.Record(sec(3), 1, "a", "z")
	var sum strings.Builder
	r.Summary(&sum)
	lines := strings.Split(strings.TrimSpace(sum.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "a") {
		t.Fatalf("summary should list 'a' first:\n%s", sum.String())
	}
	var dump strings.Builder
	r.Dump(&dump)
	if !strings.Contains(dump.String(), "z") {
		t.Fatal("dump missing detail")
	}
}

func TestTinyCapacity(t *testing.T) {
	r := New(0) // clamps to 1
	r.Record(0, 1, "a", "")
	r.Record(0, 1, "b", "")
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != "b" {
		t.Fatalf("capacity-1 ring should keep the newest: %+v", ev)
	}
}
