// Package trace is a lightweight structured event recorder for the
// simulator and the live node: protocols emit (time, node, kind, detail)
// tuples into a bounded ring buffer that tests and tools inspect or dump.
// Recording is cheap enough to leave compiled in; a nil *Recorder is a
// valid no-op sink.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one recorded occurrence.
type Event struct {
	At     time.Duration // virtual (simulator) or wall-relative (live) time
	Node   int64         // acting node, -1 when not applicable
	Kind   string        // dotted event name, e.g. "fetch.timeout"
	Detail string
}

// Recorder is a bounded ring of events. The zero value is unusable; create
// with New. A nil Recorder ignores all calls.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   uint64
	kinds   map[string]uint64
	only    map[string]bool // nil = record everything
}

// New returns a recorder keeping the last capacity events.
func New(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, 0, capacity), kinds: make(map[string]uint64)}
}

// Filter restricts recording to the given kinds (counts still accumulate
// for every kind). Passing none clears the filter.
func (r *Recorder) Filter(kinds ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(kinds) == 0 {
		r.only = nil
		return
	}
	r.only = make(map[string]bool, len(kinds))
	for _, k := range kinds {
		r.only[k] = true
	}
}

// Record appends an event. Safe on a nil receiver.
func (r *Recorder) Record(at time.Duration, node int64, kind, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.kinds[kind]++
	if r.only != nil && !r.only[kind] {
		return
	}
	e := Event{At: at, Node: node, Kind: kind, Detail: detail}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
}

// Recordf is Record with a formatted detail.
func (r *Recorder) Recordf(at time.Duration, node int64, kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(at, node, kind, fmt.Sprintf(format, args...))
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Count returns how many events of kind were recorded (including ones the
// ring has since evicted or the filter suppressed).
func (r *Recorder) Count(kind string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.kinds[kind]
}

// Total returns the total events observed.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Summary writes per-kind counts, most frequent first.
func (r *Recorder) Summary(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	type kc struct {
		kind string
		n    uint64
	}
	rows := make([]kc, 0, len(r.kinds))
	for k, n := range r.kinds {
		rows = append(rows, kc{k, n})
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].kind < rows[j].kind
	})
	for _, row := range rows {
		fmt.Fprintf(w, "%10d  %s\n", row.n, row.kind)
	}
}

// Dump writes every retained event, one per line.
func (r *Recorder) Dump(w io.Writer) {
	for _, e := range r.Events() {
		fmt.Fprintf(w, "%12v node=%-5d %-24s %s\n", e.At, e.Node, e.Kind, e.Detail)
	}
}
