package faulty

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dco/internal/transport"
	"dco/internal/wire"
)

func pongHandler(counter *atomic.Int64) transport.HandlerFunc {
	return func(from string, req wire.Message) wire.Message {
		if counter != nil {
			counter.Add(1)
		}
		return &wire.Pong{}
	}
}

// script runs the same call sequence through an injector and returns the
// decision log.
func script(seed uint64, rule Rule, calls int) []Decision {
	in := NewInjector(seed)
	in.SetDefaultRule(rule)
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := in.Wrap(f.Attach(pongHandler(nil)))
	c := in.Wrap(f.Attach(pongHandler(nil)))
	for i := 0; i < calls; i++ {
		_, _ = a.Call(b.Addr(), &wire.Ping{}, time.Second)
		_, _ = a.Call(c.Addr(), &wire.Ping{}, time.Second)
		_, _ = b.Call(c.Addr(), &wire.Ping{}, time.Second)
	}
	return in.History()
}

func TestSameSeedSameSchedule(t *testing.T) {
	rule := Rule{Drop: 0.2, Refuse: 0.05, Duplicate: 0.05, Delay: 0.1, DelayBy: time.Microsecond}
	a := script(7, rule, 200)
	b := script(7, rule, 200)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	rule := Rule{Drop: 0.3}
	a := script(1, rule, 200)
	b := script(2, rule, 200)
	diff := 0
	for i := range a {
		if a[i].Action != b[i].Action {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestScheduleIsPerPairNotInterleaving(t *testing.T) {
	// The fate of the nth A→B call must not depend on how many other
	// calls happened in between.
	rule := Rule{Drop: 0.5}
	mk := func(noise bool) []Action {
		in := NewInjector(99)
		in.SetDefaultRule(rule)
		f := transport.NewFabric()
		a := in.Wrap(f.Attach(pongHandler(nil)))
		b := in.Wrap(f.Attach(pongHandler(nil)))
		c := in.Wrap(f.Attach(pongHandler(nil)))
		var acts []Action
		for i := 0; i < 100; i++ {
			if noise {
				_, _ = c.Call(b.Addr(), &wire.Ping{}, time.Second)
				_, _ = b.Call(a.Addr(), &wire.Ping{}, time.Second)
			}
			before := in.Injected()
			_, err := a.Call(b.Addr(), &wire.Ping{}, time.Second)
			_ = before
			if err != nil {
				acts = append(acts, Dropped)
			} else {
				acts = append(acts, Pass)
			}
		}
		return acts
	}
	quiet, noisy := mk(false), mk(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("A→B call %d changed fate under interleaving: %v vs %v", i, quiet[i], noisy[i])
		}
	}
}

func TestDropRate(t *testing.T) {
	rule := Rule{Drop: 0.2}
	hist := script(5, rule, 1000)
	dropped := 0
	for _, d := range hist {
		if d.Action == Dropped {
			dropped++
		}
	}
	frac := float64(dropped) / float64(len(hist))
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("drop fraction %.3f, configured 0.2", frac)
	}
}

func TestRefuseAndDropSurfaceAsErrors(t *testing.T) {
	in := NewInjector(1)
	in.SetRule("victim", Rule{Drop: 1})
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := f.Attach(pongHandler(nil))
	in.SetRule(b.Addr(), Rule{Refuse: 1})
	_, err := a.Call(b.Addr(), &wire.Ping{}, time.Second)
	var fe *Error
	if !errors.As(err, &fe) || fe.Action != Refused {
		t.Fatalf("err=%v, want injected refusal", err)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	in := NewInjector(1)
	f := transport.NewFabric()
	var served atomic.Int64
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := f.Attach(pongHandler(&served))
	in.SetRule(b.Addr(), Rule{Duplicate: 1})
	resp, err := a.Call(b.Addr(), &wire.Ping{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Pong); !ok {
		t.Fatalf("resp=%T", resp)
	}
	if got := served.Load(); got != 2 {
		t.Fatalf("handler served %d times, want 2", got)
	}
}

func TestDelayInjectsLatency(t *testing.T) {
	in := NewInjector(1)
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := f.Attach(pongHandler(nil))
	in.SetRule(b.Addr(), Rule{Delay: 1, DelayBy: 30 * time.Millisecond})
	// With Delay=1 every call pays a uniform (0, 30ms] delay; over a few
	// calls at least one must be measurably slow.
	var max time.Duration
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > max {
			max = d
		}
	}
	if max < 2*time.Millisecond {
		t.Fatalf("max observed latency %v; injected delay absent", max)
	}
}

func TestPartitionBlocksAcrossGroupsOnly(t *testing.T) {
	in := NewInjector(1)
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := in.Wrap(f.Attach(pongHandler(nil)))
	c := in.Wrap(f.Attach(pongHandler(nil)))
	in.Partition([]string{a.Addr()}, []string{b.Addr()})

	if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err == nil {
		t.Fatal("call crossed the partition")
	}
	if _, err := b.Call(a.Addr(), &wire.Ping{}, time.Second); err == nil {
		t.Fatal("partition not symmetric")
	}
	// c is unassigned: reaches both sides.
	if _, err := c.Call(a.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatalf("unassigned node blocked: %v", err)
	}
	if _, err := c.Call(b.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatalf("unassigned node blocked: %v", err)
	}
	in.Heal()
	if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatalf("healed partition still blocks: %v", err)
	}
}

func TestCorruptFlipsExactlyOneChunkByte(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	chunkHandler := transport.HandlerFunc(func(from string, req wire.Message) wire.Message {
		return &wire.ChunkResp{Seq: 7, OK: true, Data: append([]byte(nil), payload...)}
	})
	fetch := func(seed uint64) []byte {
		in := NewInjector(seed)
		f := transport.NewFabric()
		a := in.Wrap(f.Attach(pongHandler(nil)))
		b := f.Attach(chunkHandler)
		in.SetRule(b.Addr(), Rule{Corrupt: 1})
		resp, err := a.Call(b.Addr(), &wire.GetChunk{Seq: 7}, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cr, ok := resp.(*wire.ChunkResp)
		if !ok || !cr.OK {
			t.Fatalf("resp=%T ok=%v", resp, ok)
		}
		if in.Injected() != 1 {
			t.Fatalf("injected=%d, want 1", in.Injected())
		}
		return cr.Data
	}

	got := fetch(11)
	diff := 0
	for i := range payload {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ from the original payload, want exactly 1", diff)
	}
	// Same seed reproduces the identical corruption.
	again := fetch(11)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("byte %d differs across runs of the same seed", i)
		}
	}

	// A corrupted decision on a control message passes it through intact:
	// only chunk payloads are damageable.
	in := NewInjector(11)
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := f.Attach(pongHandler(nil))
	in.SetRule(b.Addr(), Rule{Corrupt: 1})
	resp, err := a.Call(b.Addr(), &wire.Ping{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Pong); !ok {
		t.Fatalf("control message mangled: %T", resp)
	}
}

func TestPoisonerMutatesEveryKth(t *testing.T) {
	payload := []byte("0123456789abcdefghijklmnopqrstuvwxyz")
	chunkHandler := transport.HandlerFunc(func(from string, req wire.Message) wire.Message {
		return &wire.ChunkResp{Seq: 7, OK: true, Data: append([]byte(nil), payload...)}
	})
	fetchRun := func(seed uint64, everyK, calls int) []bool {
		in := NewInjector(seed)
		f := transport.NewFabric()
		a := in.Wrap(f.Attach(pongHandler(nil)))
		b := f.Attach(chunkHandler)
		in.SetPoisoner(b.Addr(), everyK)
		var bad []bool
		for i := 0; i < calls; i++ {
			resp, err := a.Call(b.Addr(), &wire.GetChunk{Seq: 7}, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			cr := resp.(*wire.ChunkResp)
			diff := 0
			for j := range payload {
				if cr.Data[j] != payload[j] {
					diff++
					if j < 8 {
						t.Fatalf("call %d: poisoner damaged the seq header (byte %d)", i, j)
					}
				}
			}
			if diff > 1 {
				t.Fatalf("call %d: %d bytes differ, want at most 1", i, diff)
			}
			bad = append(bad, diff == 1)
		}
		return bad
	}

	// Persistent poisoner: every chunk is bad.
	for i, b := range fetchRun(3, 1, 6) {
		if !b {
			t.Fatalf("persistent poisoner passed chunk %d clean", i)
		}
	}
	// Every-3rd poisoner: chunks 2, 5, 8, ... are bad, the rest clean.
	got := fetchRun(3, 3, 9)
	for i, b := range got {
		want := i%3 == 2
		if b != want {
			t.Fatalf("every-3rd poisoner: call %d poisoned=%v, want %v", i, b, want)
		}
	}
	// Same seed reproduces the identical poison schedule.
	again := fetchRun(3, 3, 9)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("poison schedule differs across runs at call %d", i)
		}
	}
	// Clearing stops the poison.
	in := NewInjector(3)
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := f.Attach(chunkHandler)
	in.SetPoisoner(b.Addr(), 1)
	in.SetPoisoner(b.Addr(), 0)
	resp, err := a.Call(b.Addr(), &wire.GetChunk{Seq: 7}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEqual(resp.(*wire.ChunkResp).Data, payload) {
		t.Fatal("cleared poisoner still mutates chunks")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLoadLiarZerosReports(t *testing.T) {
	in := NewInjector(1)
	f := transport.NewFabric()
	// The liar serves chunks claiming heavy load; its decorator must zero
	// the report on the way back to the caller.
	liarInner := f.Attach(transport.HandlerFunc(func(from string, req wire.Message) wire.Message {
		return &wire.ChunkResp{Seq: 1, OK: true, Data: []byte("xxxxxxxxxx"), LoadMilli: 900}
	}))
	liar := in.Wrap(liarInner)
	var seenLoad atomic.Uint32
	coordInner := f.Attach(transport.HandlerFunc(func(from string, req wire.Message) wire.Message {
		if m, ok := req.(*wire.Insert); ok {
			seenLoad.Store(m.LoadMilli)
		}
		return &wire.Ack{}
	}))
	viewer := in.Wrap(f.Attach(pongHandler(nil)))
	in.SetLoadLiar(liarInner.Addr(), true)

	// Outbound: the liar's own Insert registrations claim idle.
	_, err := liar.Call(coordInner.Addr(), &wire.Insert{Key: 1, Seq: 1, LoadMilli: 700}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := seenLoad.Load(); got != 0 {
		t.Fatalf("liar's Insert carried LoadMilli=%d, want 0", got)
	}
	// Inbound: chunk responses from the liar claim idle too.
	resp, err := viewer.Call(liarInner.Addr(), &wire.GetChunk{Seq: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cr := resp.(*wire.ChunkResp); cr.LoadMilli != 0 {
		t.Fatalf("liar's ChunkResp carried LoadMilli=%d, want 0", cr.LoadMilli)
	}
	// The payload itself is untouched — lying about load is not poisoning.
	if !bytesEqual(resp.(*wire.ChunkResp).Data, []byte("xxxxxxxxxx")) {
		t.Fatal("load liar mutated the chunk payload")
	}

	in.SetLoadLiar(liarInner.Addr(), false)
	_, err = liar.Call(coordInner.Addr(), &wire.Insert{Key: 1, Seq: 1, LoadMilli: 700}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := seenLoad.Load(); got != 700 {
		t.Fatalf("cleared liar still rewrites: LoadMilli=%d, want 700", got)
	}
}

func TestSpamInsertsFloodsTargets(t *testing.T) {
	f := transport.NewFabric()
	var inserts atomic.Int64
	coord := f.Attach(transport.HandlerFunc(func(from string, req wire.Message) wire.Message {
		if _, ok := req.(*wire.Insert); ok {
			inserts.Add(1)
		}
		return &wire.Ack{}
	}))
	attacker := f.Attach(pongHandler(nil))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		SpamInserts(stop, attacker, SpamConfig{
			Targets: []string{coord.Addr()},
			KeyFor:  func(seq int64) uint64 { return uint64(seq) },
			Seqs:    func(i int) int64 { return int64(i % 32) },
			Holders: []wire.Entry{{ID: 99, Addr: "evil:1"}},
		})
	}()
	deadline := time.After(2 * time.Second)
	for inserts.Load() < 20 {
		select {
		case <-deadline:
			t.Fatalf("spammer sent only %d inserts in 2s", inserts.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
	<-done
}

func TestWrapPassesThroughCleanly(t *testing.T) {
	in := NewInjector(1) // zero rules: everything passes
	f := transport.NewFabric()
	a := in.Wrap(f.Attach(pongHandler(nil)))
	b := in.Wrap(f.Attach(pongHandler(nil)))
	for i := 0; i < 50; i++ {
		if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err != nil {
			t.Fatalf("clean injector failed call %d: %v", i, err)
		}
	}
	if in.Injected() != 0 {
		t.Fatalf("injected %d faults with empty rules", in.Injected())
	}
}
