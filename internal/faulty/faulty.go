// Package faulty decorates a transport.Transport with deterministic,
// seeded fault injection so live-stack tests can script failures
// reproducibly. Faults are decided per directed (src, dst) pair from a
// counter hashed with the seed: the nth call from A to B suffers the same
// fate in every run with that seed, regardless of how goroutines
// interleave across pairs. This matches the repo's reproducibility rule
// (same seed ⇒ same fault schedule) without requiring a deterministic
// scheduler.
//
// Supported faults: message drop (surfaces as a transport error, the
// compressed form of a timeout), connection refused, added delay,
// duplicate delivery (the request is served twice — exercising handler
// idempotency), payload corruption (one seeded byte flip in a delivered
// chunk — exercising checksum verification), and partition sets that cut
// groups of addresses off from each other.
//
// Gray-failure modes (peers alive but degraded, invisible to a breaker
// that trips only on conclusive errors): mid-frame stalls (the callee
// accepts the request and never finishes; the caller burns its full call
// timeout — Rule.Stall for a probabilistic mix, SetStalled for a
// persistent one), persistent per-destination slow lanes (SetSlowLane:
// every otherwise-clean call pays a seeded-jitter delay), and asymmetric
// one-way partitions (OneWay: src→dst fails while dst→src flows).
//
// Byzantine modes (peers alive, fast, and actively lying — the pollution
// threat model of internal/live/integrity.go): chunk poisoners
// (SetPoisoner: every k-th chunk served by the marked peer arrives with a
// seeded body mutation under an intact seq header, so only hash
// verification catches it), lying load reporters (SetLoadLiar: the marked
// peer's Inserts and ChunkResps always claim LoadMilli=0, hogging
// selection until the contradiction clamps discount it), and active index
// spam (SpamInserts: a driver-side flood of bogus registrations against
// coordinators, exercising insert rate limits and the provider cap). As
// with corruption, the rewrite happens at the caller's decorator, so the
// marked peer's own code stays honest — the injector supplies the malice.
package faulty

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dco/internal/transport"
	"dco/internal/wire"
)

// Rule is the fault mix applied to calls toward one destination (or, as
// the default rule, toward every destination without a specific rule).
// Probabilities are independent and checked in the order: refuse, drop,
// duplicate, delay, corrupt.
type Rule struct {
	// Refuse is P(call fails instantly, like a connection refused).
	Refuse float64
	// Drop is P(request is lost; the caller sees a transport error after
	// DropLatency, modeling a timeout without paying real timeout waits).
	Drop float64
	// DropLatency is how long a dropped call appears to take (default 0).
	DropLatency time.Duration
	// Duplicate is P(request is delivered twice; the caller gets the
	// second reply). Receivers must be idempotent — this verifies it.
	Duplicate float64
	// Delay is P(DelayBy is added before delivery).
	Delay float64
	// DelayBy is the injected latency; the actual delay is uniform in
	// (0, DelayBy] drawn from the seeded schedule.
	DelayBy time.Duration
	// Corrupt is P(a delivered chunk payload has one byte flipped in
	// flight). Only successful ChunkResp payloads are corruptible — control
	// messages stay intact, modeling a data-plane bit error rather than a
	// broken codec. The flipped byte index and XOR mask come from the
	// seeded schedule, so a corrupted run is exactly reproducible.
	Corrupt float64
	// Stall is P(the callee accepts the request and never finishes the
	// exchange — a mid-frame stall). The caller blocks for its full call
	// timeout before seeing an error: the most expensive gray failure,
	// since unlike Drop it cannot be compressed without lying about the
	// wall-clock cost the defense layer must bound.
	Stall float64
}

// Action is the outcome chosen for one call.
type Action uint8

// Actions.
const (
	Pass Action = iota
	Refused
	Dropped
	Duplicated
	Delayed
	Partitioned
	Corrupted
	Stalled
	SlowLaned
	OneWayBlocked
	Poisoned
	LoadLied
)

func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Refused:
		return "refused"
	case Dropped:
		return "dropped"
	case Duplicated:
		return "duplicated"
	case Delayed:
		return "delayed"
	case Partitioned:
		return "partitioned"
	case Corrupted:
		return "corrupted"
	case Stalled:
		return "stalled"
	case SlowLaned:
		return "slowlaned"
	case OneWayBlocked:
		return "onewayblocked"
	case Poisoned:
		return "poisoned"
	case LoadLied:
		return "loadlied"
	default:
		return "unknown"
	}
}

// Decision records what the injector did to one call.
type Decision struct {
	Src, Dst string
	Seq      uint64 // per-(src,dst) call counter, starting at 0
	Action   Action
	Delay    time.Duration
}

// Error is the injected failure type, distinguishable from real
// transport errors in assertions.
type Error struct {
	Action Action
	Dst    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faulty: %s → %s (injected)", e.Action, e.Dst)
}

// maxHistory bounds the retained decision log (old entries drop).
const maxHistory = 1 << 17

// Injector owns the fault schedule and wraps transports. One Injector is
// shared by every endpoint of a test network so partitions can be
// expressed symmetrically.
type Injector struct {
	seed uint64

	mu       sync.Mutex
	def      Rule
	rules    map[string]Rule           // per destination address
	seqs     map[string]uint64         // per "src|dst" counter
	groups   map[string]int            // partition group per address (0 = none)
	slow     map[string]time.Duration  // persistent slow-lane delay per destination
	stalled  map[string]bool           // persistently stalled destinations (every call)
	stalledD map[string]bool           // persistently stalled chunk frames only
	oneway   []onewayRule              // asymmetric partitions
	poison   map[string]int            // poisoner peers: every k-th served chunk is bad
	poisonN  map[string]uint64         // per-poisoner served-chunk counter (across all requesters)
	poisoned map[string]map[string]int // poisoner → victim → chunks poisoned (never evicted)
	loadliar map[string]bool           // peers whose load reports always claim idle
	history  []Decision
	injected uint64 // non-pass decisions
}

// onewayRule blocks src→dst while leaving dst→src untouched.
type onewayRule struct {
	srcs map[string]bool
	dsts map[string]bool
}

// NewInjector builds an injector with the given schedule seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:     seed,
		rules:    make(map[string]Rule),
		seqs:     make(map[string]uint64),
		groups:   make(map[string]int),
		slow:     make(map[string]time.Duration),
		stalled:  make(map[string]bool),
		stalledD: make(map[string]bool),
		poison:   make(map[string]int),
		poisonN:  make(map[string]uint64),
		poisoned: make(map[string]map[string]int),
		loadliar: make(map[string]bool),
	}
}

// SetDefaultRule installs the rule used for destinations without a
// specific rule.
func (in *Injector) SetDefaultRule(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.def = r
}

// SetRule installs a destination-specific rule.
func (in *Injector) SetRule(dst string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[dst] = r
}

// Partition assigns each address set to its own group; calls between
// different groups fail as Partitioned. Addresses never assigned (or in
// group sets from a later call replacing them) communicate freely with
// everyone. Calling Partition replaces all previous assignments.
func (in *Injector) Partition(sets ...[]string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.groups = make(map[string]int)
	for i, set := range sets {
		for _, addr := range set {
			in.groups[addr] = i + 1
		}
	}
}

// SetSlowLane installs (delay > 0) or removes (delay <= 0) a persistent
// slow lane toward dst: every otherwise-clean call to dst pays a seeded
// jittered delay in [delay/2, delay]. Unlike Rule.Delay this is
// unconditional — the lane models a congested or degraded path, not an
// occasional hiccup — so health scoring sees a consistently slow peer.
func (in *Injector) SetSlowLane(dst string, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if delay <= 0 {
		delete(in.slow, dst)
		return
	}
	in.slow[dst] = delay
}

// SetStalled marks (or clears) dst as persistently stalled: every call
// toward it is accepted and then never finishes, burning the caller's
// full call timeout before surfacing an injected error.
func (in *Injector) SetStalled(dst string, stalled bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !stalled {
		delete(in.stalled, dst)
		return
	}
	in.stalled[dst] = true
}

// SetMidFrameStall marks (or clears) dst as stalled mid-frame on chunk
// transfers only: GetChunk calls toward it are accepted and never finish
// (the frame write wedges partway), while small control RPCs — lookups,
// inserts, ring maintenance — still complete normally. This is the
// textbook gray failure: the peer looks perfectly healthy to everything
// except the bulk data path, so only a defense that watches the data path
// itself (hedging, health scoring) can route around it.
func (in *Injector) SetMidFrameStall(dst string, stalled bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !stalled {
		delete(in.stalledD, dst)
		return
	}
	in.stalledD[dst] = true
}

// SetPoisoner marks dst as a chunk poisoner: every everyK-th successful
// chunk payload served by dst (counted per caller, so the schedule is
// interleaving-independent) arrives with a seeded body mutation. The
// 8-byte seq header is kept intact, so the payload is plausible — only
// hash verification at the buffer choke point can reject it. everyK = 1
// is the persistent poisoner (every chunk bad); everyK <= 0 clears.
func (in *Injector) SetPoisoner(dst string, everyK int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if everyK <= 0 {
		delete(in.poison, dst)
		return
	}
	in.poison[dst] = everyK
}

// SetLoadLiar marks (or clears) dst as a lying load reporter: every load
// report it emits — the LoadMilli piggybacked on its Inserts and on the
// ChunkResps it serves — is rewritten to claim a fully idle peer. The lie
// concentrates viewer selection on the liar; the defense is the
// contradiction clamps in internal/live/admission.go.
func (in *Injector) SetLoadLiar(dst string, liar bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !liar {
		delete(in.loadliar, dst)
		return
	}
	in.loadliar[dst] = true
}

// OneWay installs an asymmetric partition: calls from any address in srcs
// to any address in dsts fail as OneWayBlocked, while the reverse
// direction flows untouched — the classic gray failure where A can reach
// B but B's answers (or B's own calls) never make it back. Repeated calls
// accumulate; Heal clears them along with symmetric partitions.
func (in *Injector) OneWay(srcs, dsts []string) {
	r := onewayRule{srcs: make(map[string]bool, len(srcs)), dsts: make(map[string]bool, len(dsts))}
	for _, a := range srcs {
		r.srcs[a] = true
	}
	for _, a := range dsts {
		r.dsts[a] = true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.oneway = append(in.oneway, r)
}

// Heal removes all partitions, symmetric and one-way, plus slow lanes and
// persistent stalls.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.groups = make(map[string]int)
	in.oneway = nil
	in.slow = make(map[string]time.Duration)
	in.stalled = make(map[string]bool)
	in.stalledD = make(map[string]bool)
}

// History returns a copy of the decision log (most recent maxHistory
// entries, in decision order).
func (in *Injector) History() []Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Decision(nil), in.history...)
}

// Injected returns how many calls received a non-pass decision.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Wrap decorates tr with this injector's fault schedule. The wrapped
// transport serves inbound traffic untouched; only outbound Calls are
// subject to faults (each call is judged once, at the caller).
func (in *Injector) Wrap(tr transport.Transport) transport.Transport {
	return &faultTransport{in: in, inner: tr}
}

// decide rolls the deterministic schedule for the next call src→dst.
func (in *Injector) decide(src, dst string, dataFrame bool) Decision {
	in.mu.Lock()
	key := src + "|" + dst
	seq := in.seqs[key]
	in.seqs[key]++
	rule, ok := in.rules[dst]
	if !ok {
		rule = in.def
	}
	sg, dg := in.groups[src], in.groups[dst]
	blockedOneWay := false
	for _, ow := range in.oneway {
		if ow.srcs[src] && ow.dsts[dst] {
			blockedOneWay = true
			break
		}
	}
	stalledDst := in.stalled[dst] || (dataFrame && in.stalledD[dst])
	slowLane := in.slow[dst]
	in.mu.Unlock()

	d := Decision{Src: src, Dst: dst, Seq: seq, Action: Pass}
	switch {
	case sg != 0 && dg != 0 && sg != dg:
		d.Action = Partitioned
	case blockedOneWay:
		d.Action = OneWayBlocked
	case stalledDst:
		d.Action = Stalled
	case roll(in.seed, key, seq, 0) < rule.Refuse:
		d.Action = Refused
	case roll(in.seed, key, seq, 1) < rule.Drop:
		d.Action = Dropped
		d.Delay = rule.DropLatency
	case roll(in.seed, key, seq, 2) < rule.Duplicate:
		d.Action = Duplicated
	case roll(in.seed, key, seq, 3) < rule.Delay:
		d.Action = Delayed
		d.Delay = time.Duration(roll(in.seed, key, seq, 4) * float64(rule.DelayBy))
	case roll(in.seed, key, seq, 5) < rule.Corrupt:
		d.Action = Corrupted
	case roll(in.seed, key, seq, 8) < rule.Stall:
		d.Action = Stalled
	case slowLane > 0:
		// Persistent slow lane: the call goes through, late. Jitter in
		// [delay/2, delay] from the seeded schedule (lane 9).
		d.Action = SlowLaned
		d.Delay = slowLane/2 + time.Duration(roll(in.seed, key, seq, 9)*float64(slowLane/2))
	}

	in.mu.Lock()
	if len(in.history) >= maxHistory {
		in.history = in.history[1:]
	}
	in.history = append(in.history, d)
	if d.Action != Pass {
		in.injected++
	}
	in.mu.Unlock()
	return d
}

// record appends one decision to the bounded history log.
func (in *Injector) record(d Decision) {
	in.mu.Lock()
	if len(in.history) >= maxHistory {
		in.history = in.history[1:]
	}
	in.history = append(in.history, d)
	if d.Action != Pass {
		in.injected++
	}
	in.mu.Unlock()
}

// bendRequest applies Byzantine rewrites to an outbound request from src:
// a load liar's Insert registrations always claim an idle peer. The
// message is cloned, never mutated — the caller may still hold it.
func (in *Injector) bendRequest(src, dst string, req wire.Message) wire.Message {
	in.mu.Lock()
	liar := in.loadliar[src]
	in.mu.Unlock()
	if !liar {
		return req
	}
	m, ok := req.(*wire.Insert)
	if !ok || m.Unregister || m.LoadMilli == 0 {
		return req
	}
	c := *m
	c.LoadMilli = 0
	in.record(Decision{Src: src, Dst: dst, Action: LoadLied})
	return &c
}

// bendResponse applies Byzantine rewrites to a response arriving at src
// from dst: a poisoner's k-th chunk payload is mutated, and a load liar's
// piggybacked load report claims idle. In-place mutation is safe for the
// same reason corrupt relies on it — the Mem transport round-trips every
// reply through the wire codec, so this copy is the caller's alone.
func (in *Injector) bendResponse(src, dst string, resp wire.Message) wire.Message {
	cr, ok := resp.(*wire.ChunkResp)
	if !ok {
		return resp
	}
	in.mu.Lock()
	everyK := in.poison[dst]
	liar := in.loadliar[dst]
	var served uint64
	key := src + "|" + dst
	if everyK > 0 && cr.OK && len(cr.Data) > 0 {
		// The counter is per poisoner, not per (caller, poisoner) pair: a
		// real every-k poisoner corrupts every k-th chunk it serves no
		// matter who asked, so spreading requests across many victims does
		// not dilute the poison rate.
		served = in.poisonN[dst]
		in.poisonN[dst]++
	}
	in.mu.Unlock()
	if liar && cr.LoadMilli != 0 {
		cr.LoadMilli = 0
		in.record(Decision{Src: src, Dst: dst, Action: LoadLied})
	}
	if everyK > 0 && cr.OK && len(cr.Data) > 0 && served%uint64(everyK) == uint64(everyK-1) {
		poisonChunk(in.seed, key, served, cr)
		in.mu.Lock()
		if in.poisoned[dst] == nil {
			in.poisoned[dst] = make(map[string]int)
		}
		in.poisoned[dst][src]++
		in.mu.Unlock()
		in.record(Decision{Src: src, Dst: dst, Seq: served, Action: Poisoned})
	}
	return resp
}

// PoisonStats reports, per marked poisoner, how many chunks it poisoned
// toward each caller. Unlike History — a bounded log where a busy soak's
// flood of Pass records evicts old entries — this tally is never evicted,
// so it is the reliable source for per-poisoner exposure accounting.
func (in *Injector) PoisonStats() map[string]map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]map[string]int, len(in.poisoned))
	for dst, m := range in.poisoned {
		c := make(map[string]int, len(m))
		for src, k := range m {
			c[src] = k
		}
		out[dst] = c
	}
	return out
}

// poisonChunk applies the seeded body mutation for the served-th poisoned
// chunk on the src|dst pair: one byte past the 8-byte seq header is
// XOR-flipped (lanes 10/11 of the schedule), leaving a payload that
// parses, claims the right seq, and fails hash verification.
func poisonChunk(seed uint64, key string, served uint64, cr *wire.ChunkResp) {
	start := 8
	if len(cr.Data) <= start {
		start = 0
	}
	span := len(cr.Data) - start
	idx := start + int(roll(seed, key, served, 10)*float64(span))
	if idx >= len(cr.Data) {
		idx = len(cr.Data) - 1
	}
	mask := byte(1 + uint64(roll(seed, key, served, 11)*255))
	cr.Data[idx] ^= mask
}

// roll maps (seed, pair, call counter, fault lane) to a uniform float in
// [0, 1). Pure function — the heart of the reproducibility guarantee.
func roll(seed uint64, key string, seq uint64, lane uint64) float64 {
	// FNV-1a over the pair key, then splitmix64 finalization mixing in
	// the seed, counter, and lane.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := h ^ seed ^ (seq * 0x9E3779B97F4A7C15) ^ (lane << 56)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// faultTransport applies the injector's schedule to outbound calls.
type faultTransport struct {
	in       *Injector
	inner    transport.Transport
	observer atomic.Pointer[transport.Observer]
}

// Addr returns the wrapped transport's address.
func (f *faultTransport) Addr() string { return f.inner.Addr() }

// Close closes the wrapped transport.
func (f *faultTransport) Close() error { return f.inner.Close() }

// SetObserver attaches a per-call observer at the decorator, timing
// around the whole faulted call — injected delays, stalls, and slow lanes
// included — so health scoring sees the latency a caller actually
// experienced, not the latency the inner transport intended. It is NOT
// forwarded to the inner transport (that would double-count every call
// with fault-free timings).
func (f *faultTransport) SetObserver(o transport.Observer) {
	if o == nil {
		f.observer.Store(nil)
		return
	}
	f.observer.Store(&o)
}

// Call applies one scheduled decision, then delegates to the inner
// transport (zero, one, or two times).
func (f *faultTransport) Call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	start := time.Now()
	resp, err := f.call(addr, req, timeout)
	if o := f.observer.Load(); o != nil {
		oerr := err
		var we *wire.Error
		if errors.As(oerr, &we) {
			// Application-level rejection: the peer answered, matching what
			// the TCP observer reports.
			oerr = nil
		}
		(*o)(addr, time.Since(start), oerr)
	}
	return resp, err
}

func (f *faultTransport) call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	req = f.in.bendRequest(f.inner.Addr(), addr, req)
	resp, err := f.inject(addr, req, timeout)
	if err != nil {
		return nil, err
	}
	return f.in.bendResponse(f.inner.Addr(), addr, resp), nil
}

// inject applies the scheduled transport-level fault (the Byzantine
// rewrites happen around it, in call).
func (f *faultTransport) inject(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	_, dataFrame := req.(*wire.GetChunk)
	d := f.in.decide(f.inner.Addr(), addr, dataFrame)
	switch d.Action {
	case Partitioned:
		return nil, &Error{Action: Partitioned, Dst: addr}
	case OneWayBlocked:
		return nil, &Error{Action: OneWayBlocked, Dst: addr}
	case Stalled:
		// Mid-frame stall: the callee accepted and will never finish. The
		// caller pays its entire timeout budget — uncompressed, because the
		// wall-clock cost is exactly what the gray-failure defenses must
		// bound.
		wait := timeout
		if wait <= 0 {
			wait = 10 * time.Second // transport's own default patience
		}
		time.Sleep(wait)
		return nil, &Error{Action: Stalled, Dst: addr}
	case Refused:
		return nil, &Error{Action: Refused, Dst: addr}
	case Dropped:
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		return nil, &Error{Action: Dropped, Dst: addr}
	case Duplicated:
		if _, err := f.inner.Call(addr, req, timeout); err != nil {
			return nil, err
		}
		return f.inner.Call(addr, req, timeout)
	case Delayed, SlowLaned:
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
	case Corrupted:
		resp, err := f.inner.Call(addr, req, timeout)
		if err != nil {
			return nil, err
		}
		corrupt(f.in.seed, d, resp)
		return resp, nil
	}
	return f.inner.Call(addr, req, timeout)
}

// corrupt flips one seeded byte of a successful chunk payload in the
// response. Only *wire.ChunkResp carries a payload; every other message
// (and empty or failed chunk replies) passes through untouched — the
// decision still counts as injected, modeling a bit error that happened
// to hit a frame with nothing to damage. Mutating the response in place
// is safe because the Mem transport round-trips every reply through the
// wire codec, so the callee's copy is never shared with the caller.
func corrupt(seed uint64, d Decision, resp wire.Message) {
	cr, ok := resp.(*wire.ChunkResp)
	if !ok || !cr.OK || len(cr.Data) == 0 {
		return
	}
	key := d.Src + "|" + d.Dst
	idx := int(roll(seed, key, d.Seq, 6) * float64(len(cr.Data)))
	if idx >= len(cr.Data) {
		idx = len(cr.Data) - 1
	}
	// Mask drawn from [1, 255] so the flip always changes the byte.
	mask := byte(1 + uint64(roll(seed, key, d.Seq, 7)*255))
	cr.Data[idx] ^= mask
}

// SpamConfig parameterizes an index-spam run: which coordinators to
// flood, how to map a sequence to its DHT key (the same hash the honest
// stack uses, so the spam lands on real owners), which fake holder
// identities to register, and the pacing.
type SpamConfig struct {
	Targets  []string               // coordinator addresses to flood
	KeyFor   func(seq int64) uint64 // seq → index key
	Seqs     func(i int) int64      // i-th bogus registration's sequence
	Holders  []wire.Entry           // fake provider identities to rotate
	Interval time.Duration          // pause between bursts (default 10ms)
	Burst    int                    // registrations per burst (default 8)
}

// SpamInserts floods the target coordinators with bogus provider
// registrations until stop closes — the active index-pollution attacker.
// Rejections (rate limit, horizon, provider cap) are ignored: a real
// polluter does not care. Call it in its own goroutine with a transport
// attached to the test fabric; the src address is the attacker identity
// the defense should end up rate-limiting.
func SpamInserts(stop <-chan struct{}, tr transport.Transport, cfg SpamConfig) {
	interval := cfg.Interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = 8
	}
	for i := 0; ; {
		select {
		case <-stop:
			return
		default:
		}
		for b := 0; b < burst; b++ {
			seq := cfg.Seqs(i)
			holder := cfg.Holders[i%len(cfg.Holders)]
			i++
			for _, t := range cfg.Targets {
				msg := &wire.Insert{Key: cfg.KeyFor(seq), Seq: seq, Holder: holder, UpBps: 1 << 20}
				_, _ = tr.Call(t, msg, 200*time.Millisecond)
			}
		}
		select {
		case <-stop:
			return
		case <-time.After(interval):
		}
	}
}

var _ transport.Transport = (*faultTransport)(nil)
