// Package faulty decorates a transport.Transport with deterministic,
// seeded fault injection so live-stack tests can script failures
// reproducibly. Faults are decided per directed (src, dst) pair from a
// counter hashed with the seed: the nth call from A to B suffers the same
// fate in every run with that seed, regardless of how goroutines
// interleave across pairs. This matches the repo's reproducibility rule
// (same seed ⇒ same fault schedule) without requiring a deterministic
// scheduler.
//
// Supported faults: message drop (surfaces as a transport error, the
// compressed form of a timeout), connection refused, added delay,
// duplicate delivery (the request is served twice — exercising handler
// idempotency), payload corruption (one seeded byte flip in a delivered
// chunk — exercising checksum verification), and partition sets that cut
// groups of addresses off from each other.
//
// Gray-failure modes (peers alive but degraded, invisible to a breaker
// that trips only on conclusive errors): mid-frame stalls (the callee
// accepts the request and never finishes; the caller burns its full call
// timeout — Rule.Stall for a probabilistic mix, SetStalled for a
// persistent one), persistent per-destination slow lanes (SetSlowLane:
// every otherwise-clean call pays a seeded-jitter delay), and asymmetric
// one-way partitions (OneWay: src→dst fails while dst→src flows).
package faulty

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dco/internal/transport"
	"dco/internal/wire"
)

// Rule is the fault mix applied to calls toward one destination (or, as
// the default rule, toward every destination without a specific rule).
// Probabilities are independent and checked in the order: refuse, drop,
// duplicate, delay, corrupt.
type Rule struct {
	// Refuse is P(call fails instantly, like a connection refused).
	Refuse float64
	// Drop is P(request is lost; the caller sees a transport error after
	// DropLatency, modeling a timeout without paying real timeout waits).
	Drop float64
	// DropLatency is how long a dropped call appears to take (default 0).
	DropLatency time.Duration
	// Duplicate is P(request is delivered twice; the caller gets the
	// second reply). Receivers must be idempotent — this verifies it.
	Duplicate float64
	// Delay is P(DelayBy is added before delivery).
	Delay float64
	// DelayBy is the injected latency; the actual delay is uniform in
	// (0, DelayBy] drawn from the seeded schedule.
	DelayBy time.Duration
	// Corrupt is P(a delivered chunk payload has one byte flipped in
	// flight). Only successful ChunkResp payloads are corruptible — control
	// messages stay intact, modeling a data-plane bit error rather than a
	// broken codec. The flipped byte index and XOR mask come from the
	// seeded schedule, so a corrupted run is exactly reproducible.
	Corrupt float64
	// Stall is P(the callee accepts the request and never finishes the
	// exchange — a mid-frame stall). The caller blocks for its full call
	// timeout before seeing an error: the most expensive gray failure,
	// since unlike Drop it cannot be compressed without lying about the
	// wall-clock cost the defense layer must bound.
	Stall float64
}

// Action is the outcome chosen for one call.
type Action uint8

// Actions.
const (
	Pass Action = iota
	Refused
	Dropped
	Duplicated
	Delayed
	Partitioned
	Corrupted
	Stalled
	SlowLaned
	OneWayBlocked
)

func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Refused:
		return "refused"
	case Dropped:
		return "dropped"
	case Duplicated:
		return "duplicated"
	case Delayed:
		return "delayed"
	case Partitioned:
		return "partitioned"
	case Corrupted:
		return "corrupted"
	case Stalled:
		return "stalled"
	case SlowLaned:
		return "slowlaned"
	case OneWayBlocked:
		return "onewayblocked"
	default:
		return "unknown"
	}
}

// Decision records what the injector did to one call.
type Decision struct {
	Src, Dst string
	Seq      uint64 // per-(src,dst) call counter, starting at 0
	Action   Action
	Delay    time.Duration
}

// Error is the injected failure type, distinguishable from real
// transport errors in assertions.
type Error struct {
	Action Action
	Dst    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("faulty: %s → %s (injected)", e.Action, e.Dst)
}

// maxHistory bounds the retained decision log (old entries drop).
const maxHistory = 1 << 17

// Injector owns the fault schedule and wraps transports. One Injector is
// shared by every endpoint of a test network so partitions can be
// expressed symmetrically.
type Injector struct {
	seed uint64

	mu       sync.Mutex
	def      Rule
	rules    map[string]Rule          // per destination address
	seqs     map[string]uint64        // per "src|dst" counter
	groups   map[string]int           // partition group per address (0 = none)
	slow     map[string]time.Duration // persistent slow-lane delay per destination
	stalled  map[string]bool          // persistently stalled destinations (every call)
	stalledD map[string]bool          // persistently stalled chunk frames only
	oneway   []onewayRule             // asymmetric partitions
	history  []Decision
	injected uint64 // non-pass decisions
}

// onewayRule blocks src→dst while leaving dst→src untouched.
type onewayRule struct {
	srcs map[string]bool
	dsts map[string]bool
}

// NewInjector builds an injector with the given schedule seed.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:     seed,
		rules:    make(map[string]Rule),
		seqs:     make(map[string]uint64),
		groups:   make(map[string]int),
		slow:     make(map[string]time.Duration),
		stalled:  make(map[string]bool),
		stalledD: make(map[string]bool),
	}
}

// SetDefaultRule installs the rule used for destinations without a
// specific rule.
func (in *Injector) SetDefaultRule(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.def = r
}

// SetRule installs a destination-specific rule.
func (in *Injector) SetRule(dst string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[dst] = r
}

// Partition assigns each address set to its own group; calls between
// different groups fail as Partitioned. Addresses never assigned (or in
// group sets from a later call replacing them) communicate freely with
// everyone. Calling Partition replaces all previous assignments.
func (in *Injector) Partition(sets ...[]string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.groups = make(map[string]int)
	for i, set := range sets {
		for _, addr := range set {
			in.groups[addr] = i + 1
		}
	}
}

// SetSlowLane installs (delay > 0) or removes (delay <= 0) a persistent
// slow lane toward dst: every otherwise-clean call to dst pays a seeded
// jittered delay in [delay/2, delay]. Unlike Rule.Delay this is
// unconditional — the lane models a congested or degraded path, not an
// occasional hiccup — so health scoring sees a consistently slow peer.
func (in *Injector) SetSlowLane(dst string, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if delay <= 0 {
		delete(in.slow, dst)
		return
	}
	in.slow[dst] = delay
}

// SetStalled marks (or clears) dst as persistently stalled: every call
// toward it is accepted and then never finishes, burning the caller's
// full call timeout before surfacing an injected error.
func (in *Injector) SetStalled(dst string, stalled bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !stalled {
		delete(in.stalled, dst)
		return
	}
	in.stalled[dst] = true
}

// SetMidFrameStall marks (or clears) dst as stalled mid-frame on chunk
// transfers only: GetChunk calls toward it are accepted and never finish
// (the frame write wedges partway), while small control RPCs — lookups,
// inserts, ring maintenance — still complete normally. This is the
// textbook gray failure: the peer looks perfectly healthy to everything
// except the bulk data path, so only a defense that watches the data path
// itself (hedging, health scoring) can route around it.
func (in *Injector) SetMidFrameStall(dst string, stalled bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !stalled {
		delete(in.stalledD, dst)
		return
	}
	in.stalledD[dst] = true
}

// OneWay installs an asymmetric partition: calls from any address in srcs
// to any address in dsts fail as OneWayBlocked, while the reverse
// direction flows untouched — the classic gray failure where A can reach
// B but B's answers (or B's own calls) never make it back. Repeated calls
// accumulate; Heal clears them along with symmetric partitions.
func (in *Injector) OneWay(srcs, dsts []string) {
	r := onewayRule{srcs: make(map[string]bool, len(srcs)), dsts: make(map[string]bool, len(dsts))}
	for _, a := range srcs {
		r.srcs[a] = true
	}
	for _, a := range dsts {
		r.dsts[a] = true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.oneway = append(in.oneway, r)
}

// Heal removes all partitions, symmetric and one-way, plus slow lanes and
// persistent stalls.
func (in *Injector) Heal() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.groups = make(map[string]int)
	in.oneway = nil
	in.slow = make(map[string]time.Duration)
	in.stalled = make(map[string]bool)
	in.stalledD = make(map[string]bool)
}

// History returns a copy of the decision log (most recent maxHistory
// entries, in decision order).
func (in *Injector) History() []Decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Decision(nil), in.history...)
}

// Injected returns how many calls received a non-pass decision.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Wrap decorates tr with this injector's fault schedule. The wrapped
// transport serves inbound traffic untouched; only outbound Calls are
// subject to faults (each call is judged once, at the caller).
func (in *Injector) Wrap(tr transport.Transport) transport.Transport {
	return &faultTransport{in: in, inner: tr}
}

// decide rolls the deterministic schedule for the next call src→dst.
func (in *Injector) decide(src, dst string, dataFrame bool) Decision {
	in.mu.Lock()
	key := src + "|" + dst
	seq := in.seqs[key]
	in.seqs[key]++
	rule, ok := in.rules[dst]
	if !ok {
		rule = in.def
	}
	sg, dg := in.groups[src], in.groups[dst]
	blockedOneWay := false
	for _, ow := range in.oneway {
		if ow.srcs[src] && ow.dsts[dst] {
			blockedOneWay = true
			break
		}
	}
	stalledDst := in.stalled[dst] || (dataFrame && in.stalledD[dst])
	slowLane := in.slow[dst]
	in.mu.Unlock()

	d := Decision{Src: src, Dst: dst, Seq: seq, Action: Pass}
	switch {
	case sg != 0 && dg != 0 && sg != dg:
		d.Action = Partitioned
	case blockedOneWay:
		d.Action = OneWayBlocked
	case stalledDst:
		d.Action = Stalled
	case roll(in.seed, key, seq, 0) < rule.Refuse:
		d.Action = Refused
	case roll(in.seed, key, seq, 1) < rule.Drop:
		d.Action = Dropped
		d.Delay = rule.DropLatency
	case roll(in.seed, key, seq, 2) < rule.Duplicate:
		d.Action = Duplicated
	case roll(in.seed, key, seq, 3) < rule.Delay:
		d.Action = Delayed
		d.Delay = time.Duration(roll(in.seed, key, seq, 4) * float64(rule.DelayBy))
	case roll(in.seed, key, seq, 5) < rule.Corrupt:
		d.Action = Corrupted
	case roll(in.seed, key, seq, 8) < rule.Stall:
		d.Action = Stalled
	case slowLane > 0:
		// Persistent slow lane: the call goes through, late. Jitter in
		// [delay/2, delay] from the seeded schedule (lane 9).
		d.Action = SlowLaned
		d.Delay = slowLane/2 + time.Duration(roll(in.seed, key, seq, 9)*float64(slowLane/2))
	}

	in.mu.Lock()
	if len(in.history) >= maxHistory {
		in.history = in.history[1:]
	}
	in.history = append(in.history, d)
	if d.Action != Pass {
		in.injected++
	}
	in.mu.Unlock()
	return d
}

// roll maps (seed, pair, call counter, fault lane) to a uniform float in
// [0, 1). Pure function — the heart of the reproducibility guarantee.
func roll(seed uint64, key string, seq uint64, lane uint64) float64 {
	// FNV-1a over the pair key, then splitmix64 finalization mixing in
	// the seed, counter, and lane.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := h ^ seed ^ (seq * 0x9E3779B97F4A7C15) ^ (lane << 56)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// faultTransport applies the injector's schedule to outbound calls.
type faultTransport struct {
	in       *Injector
	inner    transport.Transport
	observer atomic.Pointer[transport.Observer]
}

// Addr returns the wrapped transport's address.
func (f *faultTransport) Addr() string { return f.inner.Addr() }

// Close closes the wrapped transport.
func (f *faultTransport) Close() error { return f.inner.Close() }

// SetObserver attaches a per-call observer at the decorator, timing
// around the whole faulted call — injected delays, stalls, and slow lanes
// included — so health scoring sees the latency a caller actually
// experienced, not the latency the inner transport intended. It is NOT
// forwarded to the inner transport (that would double-count every call
// with fault-free timings).
func (f *faultTransport) SetObserver(o transport.Observer) {
	if o == nil {
		f.observer.Store(nil)
		return
	}
	f.observer.Store(&o)
}

// Call applies one scheduled decision, then delegates to the inner
// transport (zero, one, or two times).
func (f *faultTransport) Call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	start := time.Now()
	resp, err := f.call(addr, req, timeout)
	if o := f.observer.Load(); o != nil {
		oerr := err
		var we *wire.Error
		if errors.As(oerr, &we) {
			// Application-level rejection: the peer answered, matching what
			// the TCP observer reports.
			oerr = nil
		}
		(*o)(addr, time.Since(start), oerr)
	}
	return resp, err
}

func (f *faultTransport) call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	_, dataFrame := req.(*wire.GetChunk)
	d := f.in.decide(f.inner.Addr(), addr, dataFrame)
	switch d.Action {
	case Partitioned:
		return nil, &Error{Action: Partitioned, Dst: addr}
	case OneWayBlocked:
		return nil, &Error{Action: OneWayBlocked, Dst: addr}
	case Stalled:
		// Mid-frame stall: the callee accepted and will never finish. The
		// caller pays its entire timeout budget — uncompressed, because the
		// wall-clock cost is exactly what the gray-failure defenses must
		// bound.
		wait := timeout
		if wait <= 0 {
			wait = 10 * time.Second // transport's own default patience
		}
		time.Sleep(wait)
		return nil, &Error{Action: Stalled, Dst: addr}
	case Refused:
		return nil, &Error{Action: Refused, Dst: addr}
	case Dropped:
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
		return nil, &Error{Action: Dropped, Dst: addr}
	case Duplicated:
		if _, err := f.inner.Call(addr, req, timeout); err != nil {
			return nil, err
		}
		return f.inner.Call(addr, req, timeout)
	case Delayed, SlowLaned:
		if d.Delay > 0 {
			time.Sleep(d.Delay)
		}
	case Corrupted:
		resp, err := f.inner.Call(addr, req, timeout)
		if err != nil {
			return nil, err
		}
		corrupt(f.in.seed, d, resp)
		return resp, nil
	}
	return f.inner.Call(addr, req, timeout)
}

// corrupt flips one seeded byte of a successful chunk payload in the
// response. Only *wire.ChunkResp carries a payload; every other message
// (and empty or failed chunk replies) passes through untouched — the
// decision still counts as injected, modeling a bit error that happened
// to hit a frame with nothing to damage. Mutating the response in place
// is safe because the Mem transport round-trips every reply through the
// wire codec, so the callee's copy is never shared with the caller.
func corrupt(seed uint64, d Decision, resp wire.Message) {
	cr, ok := resp.(*wire.ChunkResp)
	if !ok || !cr.OK || len(cr.Data) == 0 {
		return
	}
	key := d.Src + "|" + d.Dst
	idx := int(roll(seed, key, d.Seq, 6) * float64(len(cr.Data)))
	if idx >= len(cr.Data) {
		idx = len(cr.Data) - 1
	}
	// Mask drawn from [1, 255] so the flip always changes the byte.
	mask := byte(1 + uint64(roll(seed, key, d.Seq, 7)*255))
	cr.Data[idx] ^= mask
}

var _ transport.Transport = (*faultTransport)(nil)
