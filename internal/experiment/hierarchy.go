package experiment

import (
	"time"

	"dco/internal/churn"
	"dco/internal/core"
	"dco/internal/sim"
)

// HierarchyGrowth exercises §III-B1b's claim that "the network size of the
// DHT is not fixed — it adapts to the actual load in the system": a
// hierarchical deployment starts with a handful of coordinators, viewers
// keep arriving, coordinators overload, and stable clients are promoted
// into the ring. The result tracks upper-tier size and viewer population
// over time.
func HierarchyGrowth(p Params) *Result {
	p.fill(48, 200, 300*time.Second)
	cfg := core.DefaultConfig()
	cfg.Stream.Count = p.Chunks
	cfg.Neighbors = 8
	cfg.Maintenance = true
	cfg.Hierarchy.Enabled = true
	cfg.Hierarchy.InitialCoordinators = 4
	cfg.Hierarchy.OverloadOpsPerSec = 120
	cfg.Hierarchy.LongevityThreshold = 0.6
	cfg.Hierarchy.EvalEvery = 5 * time.Second

	k := sim.NewKernel(p.Seed)
	s := core.NewSystem(k, cfg, p.N)
	s.DisableCompletionStop()

	// Arrivals only (no departures): the population ramps up and the
	// upper tier must grow with it.
	d := churn.NewDriver(k, churn.Config{
		MeanLife: 100 * time.Hour, // effectively immortal
		MeanJoin: 2 * time.Second,
	}, func() churn.Peer { return s.SpawnPeer() })
	d.StartArrivals()

	r := &Result{
		Figure: "Exp. H",
		Title:  "Adaptive DHT size: coordinators promoted as load grows (§III-B1b)",
		XLabel: "time (s)",
		YLabel: "count",
		Series: []Method{"coordinators", "viewers"},
	}
	sample := 10 * time.Second
	for ts := sample; ts <= p.Horizon; ts += sample {
		ts := ts
		k.At(ts, func() {
			r.Rows = append(r.Rows, Row{X: ts.Seconds(), Y: map[Method]float64{
				"coordinators": float64(len(s.Coordinators())),
				"viewers":      float64(s.AlivePeers() - 1),
			}})
		})
	}
	s.Run(p.Horizon)
	r.sortRows()
	return r
}
