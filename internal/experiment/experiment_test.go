package experiment

import (
	"strings"
	"testing"
	"time"
)

// Scaled-down parameters: the shapes the paper reports must already appear
// at 64 nodes / short streams, which keeps the suite fast.
func tiny() Params {
	return Params{N: 64, Chunks: 20, Seed: 42, Horizon: 200 * time.Second}
}

func get(r *Result, x float64, m Method) float64 {
	for _, row := range r.Rows {
		if row.X == x {
			return row.Y[m]
		}
	}
	return -1
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	r := Fig5(tiny())
	if len(r.Rows) != len(NeighborSweep) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Pull at 8 neighbors is far slower than DCO (the paper's headline).
	if get(r, 8, MethodPull) < 1.5*get(r, 8, MethodDCO) {
		t.Errorf("pull@8 (%.1f) should dwarf dco@8 (%.1f)", get(r, 8, MethodPull), get(r, 8, MethodDCO))
	}
	// DCO stays low and comparatively flat across the sweep.
	lo, hi := get(r, 8, MethodDCO), get(r, 8, MethodDCO)
	for _, nb := range NeighborSweep {
		v := get(r, float64(nb), MethodDCO)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 6*lo {
		t.Errorf("dco delay not stable across neighbors: min %.1f max %.1f", lo, hi)
	}
	// tree* (full fan-out) is much worse than tree (fan-out/8) at large
	// neighbor counts.
	if get(r, 64, MethodTreeX) <= get(r, 64, MethodTree) {
		t.Errorf("tree* should collapse at high fan-out: tree*=%.1f tree=%.1f",
			get(r, 64, MethodTreeX), get(r, 64, MethodTree))
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	// At this substrate's bandwidth a 2 s offset barely separates anything;
	// the shape test uses the 10 s offset documented in EXPERIMENTS.md.
	r := FillDelta(tiny(), 10*time.Second)
	// DCO beats pull everywhere.
	for _, nb := range NeighborSweep {
		if get(r, float64(nb), MethodDCO) <= get(r, float64(nb), MethodPull) {
			t.Errorf("dco fill (%.2f) should beat pull (%.2f) at %d neighbors",
				get(r, float64(nb), MethodDCO), get(r, float64(nb), MethodPull), nb)
		}
	}
	// Push spreads faster than pull at every density (the paper's ordering;
	// its density-growth effect only separates at paper scale, where 8
	// neighbors out of 512 is genuinely sparse — see EXPERIMENTS.md).
	for _, nb := range NeighborSweep {
		if get(r, float64(nb), MethodPush)+0.02 < get(r, float64(nb), MethodPull) {
			t.Errorf("push fill (%.2f) should match or beat pull (%.2f) at %d neighbors",
				get(r, float64(nb), MethodPush), get(r, float64(nb), MethodPull), nb)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	r := Fig8(tiny())
	for _, nb := range NeighborSweep {
		if get(r, float64(nb), MethodTree) != 0 {
			t.Fatalf("tree overhead nonzero at %d neighbors", nb)
		}
	}
	// Mesh overhead grows with the neighbor count; DCO's does not.
	if get(r, 64, MethodPull) <= get(r, 8, MethodPull) {
		t.Error("pull overhead should grow with neighbors")
	}
	dcoGrowth := get(r, 64, MethodDCO) / get(r, 8, MethodDCO)
	pullGrowth := get(r, 64, MethodPull) / get(r, 8, MethodPull)
	if dcoGrowth >= pullGrowth {
		t.Errorf("dco overhead growth (%.2fx) should be below pull's (%.2fx)", dcoGrowth, pullGrowth)
	}
	// At dense meshes DCO is the cheapest non-tree method.
	if get(r, 64, MethodDCO) >= get(r, 64, MethodPull) {
		t.Errorf("dco@64 (%.0f) should undercut pull@64 (%.0f)",
			get(r, 64, MethodDCO), get(r, 64, MethodPull))
	}
}

func TestFig9Linear(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	p := tiny()
	p.N = 96
	r := Fig9(p)
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Overhead increases with population for every non-tree method.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	for _, m := range []Method{MethodDCO, MethodPull, MethodPush} {
		if last.Y[m] <= first.Y[m] {
			t.Errorf("%v overhead should grow with population", m)
		}
	}
	if first.Y[MethodTree] != 0 || last.Y[MethodTree] != 0 {
		t.Error("tree overhead should be zero at every size")
	}
}

func TestFig10Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	r := Fig10(tiny())
	for _, m := range AllMethods {
		prev := -1.0
		for _, row := range r.Rows {
			if row.Y[m] < prev {
				t.Fatalf("%v cumulative overhead decreased", m)
			}
			prev = row.Y[m]
		}
	}
}

func TestFig11and12Churn(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	p := tiny()
	p.Chunks = 40
	p.Horizon = 150 * time.Second
	r := Fig11(p)
	lastRow := r.Rows[len(r.Rows)-1]
	// DCO and pull deliver the bulk of the stream; tree collapses.
	if lastRow.Y[MethodDCO] < 60 {
		t.Errorf("dco churn delivery %.1f%% too low", lastRow.Y[MethodDCO])
	}
	if lastRow.Y[MethodTree] >= lastRow.Y[MethodDCO] {
		t.Errorf("tree (%.1f%%) should trail dco (%.1f%%)", lastRow.Y[MethodTree], lastRow.Y[MethodDCO])
	}
	// % received grows with allowed time.
	if lastRow.Y[MethodDCO] < r.Rows[0].Y[MethodDCO] {
		t.Error("more dissemination time should never reduce delivery")
	}

	r12 := Fig12(Params{N: 48, Chunks: 30, Seed: 42, Horizon: 120 * time.Second})
	// Longer lifetimes help every method (or at least never hurt tree vs
	// its 60 s point dramatically); check DCO explicitly.
	firstLife := r12.Rows[0]
	lastLife := r12.Rows[len(r12.Rows)-1]
	if lastLife.Y[MethodDCO]+5 < firstLife.Y[MethodDCO] {
		t.Errorf("dco should not degrade with longer lifetimes: %.1f → %.1f",
			firstLife.Y[MethodDCO], lastLife.Y[MethodDCO])
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		Figure: "Fig. X",
		Title:  "demo",
		XLabel: "x",
		Series: []Method{MethodDCO},
		Rows:   []Row{{X: 2, Y: map[Method]float64{MethodDCO: 4}}, {X: 1, Y: map[Method]float64{MethodDCO: 3}}},
	}
	r.sortRows()
	if r.Rows[0].X != 1 {
		t.Fatal("sortRows failed")
	}
	s := r.String()
	if !strings.Contains(s, "Fig. X") || !strings.Contains(s, "dco") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
}

func TestTreeDegreeRule(t *testing.T) {
	for nb, want := range map[int]int{8: 1, 16: 2, 24: 3, 32: 4, 64: 8, 4: 1} {
		if got := treeDegree(nb); got != want {
			t.Fatalf("treeDegree(%d) = %d, want %d", nb, got, want)
		}
	}
}

func TestResultCSV(t *testing.T) {
	r := &Result{
		XLabel: "x,with comma",
		Series: []Method{MethodDCO, MethodPull},
		Rows: []Row{
			{X: 1, Y: map[Method]float64{MethodDCO: 1.5, MethodPull: 2}},
			{X: 2, Y: map[Method]float64{MethodDCO: 3, MethodPull: 4}},
		},
	}
	var b strings.Builder
	r.FprintCSV(&b)
	got := b.String()
	want := "\"x,with comma\",dco,pull\n1,1.5,2\n2,3,4\n"
	if got != want {
		t.Fatalf("csv:\n%q\nwant\n%q", got, want)
	}
}

func TestHierarchyGrowthShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep test")
	}
	r := HierarchyGrowth(Params{N: 24, Chunks: 60, Seed: 42, Horizon: 120 * time.Second})
	if len(r.Rows) < 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Y["viewers"] <= first.Y["viewers"] {
		t.Fatal("population should grow (arrivals only)")
	}
	if last.Y["coordinators"] <= first.Y["coordinators"] {
		t.Fatalf("upper tier should grow with load: %v -> %v",
			first.Y["coordinators"], last.Y["coordinators"])
	}
}
