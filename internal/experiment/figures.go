package experiment

import (
	"time"
)

// NeighborSweep is the paper's x axis for Figs. 5, 6 and 8: 8..64 step 8.
var NeighborSweep = []int{8, 16, 24, 32, 40, 48, 56, 64}

// Fig5 — mesh delay vs. number of neighbors per node. Series include both
// tree settings: "tree" (out-degree = neighbors/8) and "tree*" (out-degree
// = the full neighbor count), exactly as the paper plots them.
func Fig5(p Params) *Result {
	p.fill(512, 100, 400*time.Second)
	r := &Result{
		Figure: "Fig. 5",
		Title:  "Mesh delay vs. number of neighbors per node",
		XLabel: "neighbors",
		YLabel: "mesh delay (s)",
		Series: []Method{MethodDCO, MethodPull, MethodPush, MethodTree, MethodTreeX},
	}
	for _, nb := range NeighborSweep {
		row := Row{X: float64(nb), Y: map[Method]float64{}}
		for _, m := range r.Series {
			o := runStatic(m, nb, p.N, p.Chunks, p.Seed, p.Horizon)
			row.Y[m] = meshDelayCapped(o)
		}
		r.Rows = append(r.Rows, row)
	}
	r.sortRows()
	return r
}

// Fig6 — fill ratio measured two seconds after each chunk's generation,
// vs. number of neighbors.
func Fig6(p Params) *Result {
	return figFillVsNeighbors(p, 2*time.Second)
}

// FillDelta is Fig. 6 generalized to any measurement offset; the 2 s the
// paper uses sits below this substrate's minimum transfer time for most of
// the swarm, so EXPERIMENTS.md also reports larger offsets where the
// series separate.
func FillDelta(p Params, delta time.Duration) *Result {
	return figFillVsNeighbors(p, delta)
}

func figFillVsNeighbors(p Params, delta time.Duration) *Result {
	p.fill(512, 100, 400*time.Second)
	r := &Result{
		Figure: "Fig. 6",
		Title:  "Fill ratio " + delta.String() + " after generation vs. number of neighbors",
		XLabel: "neighbors",
		YLabel: "fill ratio",
		Series: AllMethods,
	}
	for _, nb := range NeighborSweep {
		row := Row{X: float64(nb), Y: map[Method]float64{}}
		for _, m := range r.Series {
			o := runStatic(m, nb, p.N, p.Chunks, p.Seed, p.Horizon)
			row.Y[m] = o.Log.MeanFillRatioAfter(delta)
		}
		r.Rows = append(r.Rows, row)
	}
	r.sortRows()
	return r
}

// Fig7 — fill ratio vs. elapsed time, measured every second from the
// moment the server finishes generating (the paper: from the 100-second
// mark). Neighbors fixed at 32 (tree at 3, its default).
func Fig7(p Params) *Result {
	p.fill(512, 100, 400*time.Second)
	neighbors := 32
	genEnd := time.Duration(p.Chunks) * time.Second
	samples := 14
	r := &Result{
		Figure: "Fig. 7",
		Title:  "Fill ratio vs. elapsed time (neighbors=32, tree out-degree=3)",
		XLabel: "time (s)",
		YLabel: "fill ratio",
		Series: AllMethods,
	}
	rows := make([]Row, samples)
	for i := range rows {
		rows[i] = Row{X: (genEnd + time.Duration(i)*time.Second).Seconds(), Y: map[Method]float64{}}
	}
	for _, m := range r.Series {
		o := runStatic(m, neighbors, p.N, p.Chunks, p.Seed, p.Horizon)
		for i := range rows {
			at := genEnd + time.Duration(i)*time.Second
			rows[i].Y[m] = o.Log.MeanFillRatioAt(at)
		}
	}
	r.Rows = rows
	r.sortRows()
	return r
}

// Fig8 — total extra overhead (for everyone to receive all chunks) vs.
// number of neighbors. Tree is zero by construction.
func Fig8(p Params) *Result {
	p.fill(512, 100, 400*time.Second)
	r := &Result{
		Figure: "Fig. 8",
		Title:  "Extra overhead vs. number of neighbors per node",
		XLabel: "neighbors",
		YLabel: "messages",
		Series: AllMethods,
	}
	for _, nb := range NeighborSweep {
		row := Row{X: float64(nb), Y: map[Method]float64{}}
		for _, m := range r.Series {
			o := runStatic(m, nb, p.N, p.Chunks, p.Seed, p.Horizon)
			row.Y[m] = float64(o.Overhead)
		}
		r.Rows = append(r.Rows, row)
	}
	r.sortRows()
	return r
}

// Fig9 — extra overhead vs. number of participants (neighbors fixed at 32).
func Fig9(p Params) *Result {
	p.fill(0, 100, 400*time.Second) // N unused: the sweep sets it
	sizes := []int{128, 256, 384, 512, 640, 768, 896, 1024}
	if p.N != 0 {
		// Scaled-down sweeps (tests/benchmarks) build sizes around N.
		sizes = []int{p.N / 4, p.N / 2, 3 * p.N / 4, p.N}
	}
	r := &Result{
		Figure: "Fig. 9",
		Title:  "Extra overhead vs. number of participants (neighbors=32)",
		XLabel: "nodes",
		YLabel: "messages",
		Series: AllMethods,
	}
	for _, n := range sizes {
		if n < 4 {
			continue
		}
		row := Row{X: float64(n), Y: map[Method]float64{}}
		for _, m := range r.Series {
			o := runStatic(m, 32, n, p.Chunks, p.Seed, p.Horizon)
			row.Y[m] = float64(o.Overhead)
		}
		r.Rows = append(r.Rows, row)
	}
	r.sortRows()
	return r
}

// Fig10 — cumulative extra overhead vs. elapsed time (neighbors=32).
func Fig10(p Params) *Result {
	p.fill(512, 100, 400*time.Second)
	samples := 10
	r := &Result{
		Figure: "Fig. 10",
		Title:  "Extra overhead vs. elapsed time (neighbors=32)",
		XLabel: "time (s)",
		YLabel: "messages (cumulative)",
		Series: AllMethods,
	}
	step := p.Horizon / time.Duration(samples)
	rows := make([]Row, samples)
	for i := range rows {
		rows[i] = Row{X: (time.Duration(i+1) * step).Seconds(), Y: map[Method]float64{}}
	}
	for _, m := range r.Series {
		o := runStatic(m, 32, p.N, p.Chunks, p.Seed, p.Horizon)
		var cum float64
		sec := int64(0)
		for i := range rows {
			until := int64((time.Duration(i+1) * step) / time.Second)
			for ; sec < until; sec++ {
				cum += float64(o.OverheadAtSecond(sec))
			}
			rows[i].Y[m] = cum
		}
	}
	r.Rows = rows
	r.sortRows()
	return r
}

// Fig11 — percentage of received chunks vs. allowed dissemination time,
// under churn with 60 s mean lifetime (200 chunks, horizons 200..300 s).
func Fig11(p Params) *Result {
	p.fill(512, 200, 300*time.Second)
	spec := churnSpec{MeanLife: 60 * time.Second, Graceful: 0.5}
	r := &Result{
		Figure: "Fig. 11",
		Title:  "% received chunks vs. dissemination time (mean life 60 s)",
		XLabel: "time (s)",
		YLabel: "% received",
		Series: AllMethods,
	}
	lo := p.Horizon - 100*time.Second
	if lo < 0 {
		lo = p.Horizon / 2
	}
	var horizons []time.Duration
	for h := lo; h <= p.Horizon; h += 10 * time.Second {
		horizons = append(horizons, h)
	}
	rows := make([]Row, len(horizons))
	for i, h := range horizons {
		rows[i] = Row{X: h.Seconds(), Y: map[Method]float64{}}
	}
	for _, m := range r.Series {
		o := runChurn(m, 32, p.N, p.Chunks, p.Seed, p.Horizon, spec)
		for i, h := range horizons {
			rows[i].Y[m] = o.Log.ReceivedPercent(h)
		}
	}
	r.Rows = rows
	r.sortRows()
	return r
}

// Fig12 — percentage of received chunks vs. mean node lifetime (60..120 s).
func Fig12(p Params) *Result {
	p.fill(512, 200, 300*time.Second)
	r := &Result{
		Figure: "Fig. 12",
		Title:  "% received chunks vs. mean node lifetime",
		XLabel: "mean life (s)",
		YLabel: "% received",
		Series: AllMethods,
	}
	for life := 60 * time.Second; life <= 120*time.Second; life += 10 * time.Second {
		spec := churnSpec{MeanLife: life, Graceful: 0.5}
		row := Row{X: life.Seconds(), Y: map[Method]float64{}}
		for _, m := range r.Series {
			o := runChurn(m, 32, p.N, p.Chunks, p.Seed, p.Horizon, spec)
			row.Y[m] = o.Log.ReceivedPercent(p.Horizon)
		}
		r.Rows = append(r.Rows, row)
	}
	r.sortRows()
	return r
}

// Figures maps figure identifiers to their runners. "H" is this
// reproduction's own experiment (adaptive DHT size, §III-B1b), not a paper
// figure.
var Figures = map[string]func(Params) *Result{
	"5":  Fig5,
	"6":  Fig6,
	"7":  Fig7,
	"8":  Fig8,
	"9":  Fig9,
	"10": Fig10,
	"11": Fig11,
	"12": Fig12,
	"H":  HierarchyGrowth,
}

// FigureOrder lists the identifiers in paper order.
var FigureOrder = []string{"5", "6", "7", "8", "9", "10", "11", "12"}
