package experiment

import (
	"time"

	"dco/internal/core"
	"dco/internal/sim"
)

// Ablations quantify the design decisions DESIGN.md calls out, beyond the
// paper's own figures. Each returns a Result shaped like the figures so
// cmd/dcofig renders them the same way.

// ablationRun executes one DCO run and returns (mesh delay s, overhead).
func ablationRun(p Params, mutate func(*core.Config)) (float64, float64) {
	cfg := core.DefaultConfig()
	cfg.Stream.Count = p.Chunks
	cfg.Neighbors = 32
	if mutate != nil {
		mutate(&cfg)
	}
	k := sim.NewKernel(p.Seed)
	s := core.NewSystem(k, cfg, p.N)
	s.Run(p.Horizon)
	o := runOutcome{Log: s.Log, Horizon: p.Horizon}
	return meshDelayCapped(o), float64(s.Net.Overhead())
}

// variant names used as pseudo-x values in ablation tables.
const (
	variantBase = 0
	variantAlt  = 1
)

func twoVariant(figure, title, baseName, altName string, p Params, alt func(*core.Config)) *Result {
	p.fill(256, 60, 400*time.Second)
	r := &Result{
		Figure: figure,
		Title:  title,
		XLabel: "variant (0=" + baseName + ", 1=" + altName + ")",
		YLabel: "mesh delay (s) / overhead",
		Series: []Method{"delay_s", "overhead"},
	}
	d0, o0 := ablationRun(p, nil)
	d1, o1 := ablationRun(p, alt)
	r.Rows = []Row{
		{X: variantBase, Y: map[Method]float64{"delay_s": d0, "overhead": o0}},
		{X: variantAlt, Y: map[Method]float64{"delay_s": d1, "overhead": o1}},
	}
	return r
}

// AblationPendingQueue compares the paper's held-until-answerable lookups
// against a drop-and-retry coordinator.
func AblationPendingQueue(p Params) *Result {
	return twoVariant("Ablation A1", "Coordinator pending queue vs drop-and-retry",
		"queue", "drop", p, func(c *core.Config) { c.PendingQueue = false })
}

// AblationSelection compares bandwidth-aware provider selection against
// random choice, on a heterogeneous population where the difference shows:
// random selection keeps handing requesters to capacity-starved DSL nodes
// while fiber uplinks idle.
func AblationSelection(p Params) *Result {
	p.fill(256, 60, 400*time.Second)
	r := &Result{
		Figure: "Ablation A2",
		Title:  "Provider selection on a heterogeneous population (least-loaded vs random)",
		XLabel: "variant (0=least-loaded, 1=random)",
		YLabel: "mesh delay (s) / overhead",
		Series: []Method{"delay_s", "overhead"},
	}
	hetero := func(c *core.Config) { c.PeerClasses = core.HeterogeneousClasses() }
	d0, o0 := ablationRun(p, hetero)
	d1, o1 := ablationRun(p, func(c *core.Config) {
		hetero(c)
		c.Selection = core.SelectRandom
	})
	r.Rows = []Row{
		{X: variantBase, Y: map[Method]float64{"delay_s": d0, "overhead": o0}},
		{X: variantAlt, Y: map[Method]float64{"delay_s": d1, "overhead": o1}},
	}
	return r
}

// AblationFingers compares the evaluation's successor-list-only routing
// with full Chord finger routing at a sparse neighbor count.
func AblationFingers(p Params) *Result {
	p.fill(256, 60, 400*time.Second)
	r := &Result{
		Figure: "Ablation A3",
		Title:  "Routing tables at 8 neighbors (successor list vs fingers)",
		XLabel: "variant (0=successor-list, 1=fingers)",
		YLabel: "mesh delay (s) / overhead",
		Series: []Method{"delay_s", "overhead"},
	}
	sparse := func(c *core.Config) { c.Neighbors = 8 }
	d0, o0 := ablationRun(p, sparse)
	d1, o1 := ablationRun(p, func(c *core.Config) {
		sparse(c)
		c.UseFingers = true
	})
	r.Rows = []Row{
		{X: variantBase, Y: map[Method]float64{"delay_s": d0, "overhead": o0}},
		{X: variantAlt, Y: map[Method]float64{"delay_s": d1, "overhead": o1}},
	}
	return r
}

// AblationPrefetch compares Eq. (2)'s adaptive prefetching window against a
// fixed narrow window.
func AblationPrefetch(p Params) *Result {
	return twoVariant("Ablation A4", "Adaptive prefetching window (Eq. 2) vs fixed 4-chunk window",
		"adaptive", "fixed-4", p, func(c *core.Config) {
			c.Prefetch.MinWindow = 4
			c.Prefetch.MaxWindow = 4
		})
}

// Ablations maps ablation identifiers to runners (dcofig -ablation).
var Ablations = map[string]func(Params) *Result{
	"pending":   AblationPendingQueue,
	"selection": AblationSelection,
	"fingers":   AblationFingers,
	"prefetch":  AblationPrefetch,
}

// AblationOrder lists ablations in DESIGN.md order.
var AblationOrder = []string{"pending", "selection", "fingers", "prefetch"}
