// Package experiment regenerates every table and figure of the paper's
// evaluation (§IV, Figs. 5–12). Each figure has a Config describing the
// sweep and a Run function producing a Result whose rows mirror the
// paper's plotted series.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dco/internal/churn"
	"dco/internal/core"
	"dco/internal/metrics"
	"dco/internal/overlay"
	"dco/internal/sim"
)

// Method identifies one plotted series.
type Method string

// The paper's four (five, with tree*) methods.
const (
	MethodDCO   Method = "dco"
	MethodPull  Method = "pull"
	MethodPush  Method = "push"
	MethodTree  Method = "tree"  // out-degree = neighbors/8 (default 3)
	MethodTreeX Method = "tree*" // out-degree = full neighbor count
)

// AllMethods is the default series set for the sweeps.
var AllMethods = []Method{MethodDCO, MethodPull, MethodPush, MethodTree}

// Params scales an experiment. Zero values take the paper's defaults; tests
// and benchmarks shrink N / Chunks for speed.
type Params struct {
	N       int           // network size (paper: 512)
	Chunks  int64         // stream length (paper: 100; churn figs: 200)
	Seed    int64         // kernel seed
	Horizon time.Duration // simulation cutoff
}

func (p *Params) fill(defN int, defChunks int64, defHorizon time.Duration) {
	if p.N == 0 {
		p.N = defN
	}
	if p.Chunks == 0 {
		p.Chunks = defChunks
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.Horizon == 0 {
		p.Horizon = defHorizon
	}
}

// Result is one figure's data: a named x-axis and one row per x value with
// a y value per series.
type Result struct {
	Figure string
	Title  string
	XLabel string
	YLabel string
	Series []Method
	Rows   []Row
}

// Row is one x position.
type Row struct {
	X float64
	Y map[Method]float64
}

// Fprint renders the result as an aligned text table.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", r.Figure, r.Title)
	fmt.Fprintf(w, "%-12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%14s", string(s))
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12.5g", row.X)
		for _, s := range r.Series {
			fmt.Fprintf(w, "%14.4g", row.Y[s])
		}
		fmt.Fprintln(w)
	}
}

// String renders the table.
func (r *Result) String() string {
	var b strings.Builder
	r.Fprint(&b)
	return b.String()
}

// FprintCSV renders the result as CSV (header row, then one row per x),
// for plotting outside this repository.
func (r *Result) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "%s", csvEscape(r.XLabel))
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", csvEscape(string(s)))
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%g", row.X)
		for _, s := range r.Series {
			fmt.Fprintf(w, ",%g", row.Y[s])
		}
		fmt.Fprintln(w)
	}
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}

// sortRows keeps rows in x order regardless of completion order.
func (r *Result) sortRows() {
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].X < r.Rows[j].X })
}

// runOutcome carries everything a figure needs from one simulation run.
type runOutcome struct {
	Log              *metrics.DeliveryLog
	Overhead         uint64
	OverheadAtSecond func(int64) uint64
	End              time.Duration
	Horizon          time.Duration
}

// runStatic executes one static (churn-free) run of the given method.
func runStatic(method Method, neighbors, n int, chunks int64, seed int64, horizon time.Duration) runOutcome {
	k := sim.NewKernel(seed)
	switch method {
	case MethodDCO:
		cfg := core.DefaultConfig()
		cfg.Neighbors = neighbors
		cfg.Stream.Count = chunks
		s := core.NewSystem(k, cfg, n)
		end := s.Run(horizon)
		return runOutcome{Log: s.Log, Overhead: s.Net.Overhead(), OverheadAtSecond: s.Net.OverheadAtSecond, End: end, Horizon: horizon}
	case MethodPull, MethodPush, MethodTree, MethodTreeX:
		kind := overlay.Pull
		deg := neighbors
		switch method {
		case MethodPush:
			kind = overlay.Push
		case MethodTree:
			kind = overlay.Tree
			deg = treeDegree(neighbors)
		case MethodTreeX:
			kind = overlay.Tree
		}
		cfg := overlay.DefaultConfig(kind)
		cfg.Neighbors = deg
		cfg.Stream.Count = chunks
		s := overlay.NewSystem(k, cfg, n)
		end := s.Run(horizon)
		return runOutcome{Log: s.Log, Overhead: s.Net.Overhead(), OverheadAtSecond: s.Net.OverheadAtSecond, End: end, Horizon: horizon}
	default:
		panic("experiment: unknown method " + string(method))
	}
}

// treeDegree maps a mesh neighbor count to the paper's tree out-degree
// (1/8 of the neighbor count, minimum 1; the default 24-neighbor setting
// yields the paper's default of 3).
func treeDegree(neighbors int) int {
	d := neighbors / 8
	if d < 1 {
		d = 1
	}
	return d
}

// meshDelayCapped is Fig. 5's y value: the mean time for a chunk to reach
// every node, charging chunks that never completed the full horizon (the
// paper's "very high delay" regime, rendered finite).
func meshDelayCapped(o runOutcome) float64 {
	log := o.Log
	var sum float64
	var n int
	for seq := int64(0); seq < log.NumChunks(); seq++ {
		g := log.GenerationTime(seq)
		if g == metrics.Never {
			continue
		}
		n++
		if d, ok := chunkCompletion(log, seq); ok {
			sum += d.Seconds()
		} else {
			sum += (o.Horizon - g).Seconds()
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// chunkCompletion finds when chunk seq reached every eligible node.
func chunkCompletion(log *metrics.DeliveryLog, seq int64) (time.Duration, bool) {
	return log.ChunkCompletion(seq)
}

// churnSpec configures the §IV-D churn model. MeanJoin == 0 derives the
// stationary arrival rate (one arrival per MeanLife/population on average,
// so departures and arrivals balance and "the network scale remains
// relatively stable").
type churnSpec struct {
	MeanLife time.Duration
	MeanJoin time.Duration
	Graceful float64
}

func (c churnSpec) joinInterval(n int) time.Duration {
	if c.MeanJoin > 0 {
		return c.MeanJoin
	}
	if n <= 1 {
		return c.MeanLife
	}
	return c.MeanLife / time.Duration(n-1)
}

// runChurn executes one run with exponential lifetimes/arrivals and returns
// the delivery log plus a sampler usable at multiple horizons.
func runChurn(method Method, neighbors, n int, chunks int64, seed int64, horizon time.Duration, spec churnSpec) runOutcome {
	k := sim.NewKernel(seed)
	ccfg := churn.Config{
		MeanLife:     spec.MeanLife,
		MeanJoin:     spec.joinInterval(n),
		GracefulFrac: spec.Graceful,
	}
	switch method {
	case MethodDCO:
		cfg := core.DefaultConfig()
		cfg.Neighbors = neighbors
		cfg.Stream.Count = chunks
		cfg.Maintenance = true
		s := core.NewSystem(k, cfg, n)
		s.DisableCompletionStop()
		d := churn.NewDriver(k, ccfg, func() churn.Peer { return s.SpawnPeer() })
		seedPeers(d, s)
		d.StartArrivals()
		end := s.Run(horizon)
		return runOutcome{Log: s.Log, Overhead: s.Net.Overhead(), OverheadAtSecond: s.Net.OverheadAtSecond, End: end, Horizon: horizon}
	default:
		kind := overlay.Pull
		deg := neighbors
		switch method {
		case MethodPush:
			kind = overlay.Push
		case MethodTree:
			kind = overlay.Tree
			deg = treeDegree(neighbors)
		}
		cfg := overlay.DefaultConfig(kind)
		cfg.Neighbors = deg
		cfg.Stream.Count = chunks
		s := overlay.NewSystem(k, cfg, n)
		s.DisableCompletionStop()
		d := churn.NewDriver(k, ccfg, func() churn.Peer { return s.SpawnPeer() })
		for _, nd := range s.ViewerPeers() {
			d.Track(nd)
		}
		d.StartArrivals()
		end := s.Run(horizon)
		return runOutcome{Log: s.Log, Overhead: s.Net.Overhead(), OverheadAtSecond: s.Net.OverheadAtSecond, End: end, Horizon: horizon}
	}
}

func seedPeers(d *churn.Driver, s *core.System) {
	for _, p := range s.Peers() {
		if p.Alive() && p.ID() != s.Server().ID() {
			d.Track(p)
		}
	}
}
