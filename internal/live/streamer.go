package live

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"dco/internal/wire"
)

// generateLoop is the source's production loop: every Period it creates the
// next synthetic chunk, buffers it, and inserts its index into the DHT.
func (n *Node) generateLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Channel.Period)
	defer t.Stop()
	seq := int64(0)
	for {
		select {
		case <-n.closed:
			return
		case <-t.C:
		}
		if n.cfg.Channel.Count > 0 && seq >= n.cfg.Channel.Count {
			return
		}
		data := MakeChunkPayload(n.cfg.Channel, seq)
		// Mint the chunk's manifest row before the chunk is visible
		// anywhere: no consumer should ever see a chunk its row lags.
		n.addManifestEntrySource(seq, data)
		n.mu.Lock()
		n.chunks[seq] = data
		n.latestGen = seq
		cb := n.cfg.OnChunk
		expired := n.trimActiveWindowLocked()
		n.mu.Unlock()
		if cb != nil {
			cb(seq, data)
		}
		n.unregisterExpired(expired)
		n.registerChunk(seq)
		seq++
	}
}

// LatestGenerated returns the newest chunk the source produced (-1 before
// the first). Viewers return their newest buffered chunk.
func (n *Node) LatestGenerated() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.latestGen
}

// registerChunk inserts this node's index for seq at the chunk's
// coordinator (Algorithm 1, line 8). Routing errors are retried once after
// a short pause; beyond that the republish loop repairs availability.
func (n *Node) registerChunk(seq int64) {
	n.mu.Lock()
	if n.registered[seq] {
		n.mu.Unlock()
		return
	}
	n.registered[seq] = true
	n.mu.Unlock()
	n.insertIndex(seq)
}

// republish re-inserts a few random registered indices (soft state): when a
// coordinator fails, the entries it held reappear at the key's new owner
// within a couple of periods.
func (n *Node) republish() {
	n.mu.Lock()
	seqs := make([]int64, 0, len(n.registered))
	for seq := range n.registered {
		seqs = append(seqs, seq)
	}
	n.mu.Unlock()
	if len(seqs) == 0 {
		return
	}
	batch := n.cfg.RepublishBatch
	if batch <= 0 {
		batch = 1
	}
	// A rotating window over the registered set covers everything without
	// randomness (simpler to reason about; order does not matter here).
	for i := 0; i < batch && i < len(seqs); i++ {
		n.mu.Lock()
		idx := int(n.republishCursor % uint64(len(seqs)))
		n.republishCursor++
		n.mu.Unlock()
		n.lm.republishes.Inc()
		n.insertIndex(seqs[idx])
	}
}

// insertIndex performs one routed Insert of this node's index for seq.
func (n *Node) insertIndex(seq int64) {
	n.mu.Lock()
	bufCount := int64(len(n.chunks))
	n.mu.Unlock()

	key := uint64(n.cfg.Channel.Ref(seq).ID())
	msg := &wire.Insert{
		Key:      key,
		Seq:      seq,
		Holder:   n.wireSelf(),
		UpBps:    n.cfg.UpBps,
		BufCount: bufCount,
		// Piggybacked load report: republication doubles as the load
		// heartbeat coordinators weight provider selection by.
		LoadMilli: n.reportLoadMilli(),
	}
	// Piggybacked manifest-coverage ad (integrity.go): how viewers and
	// coordinators learn the current window without extra round-trips.
	msg.ManifestHead, msg.ManifestDigest = n.manifestAd()
	for attempt := 0; attempt < 2; attempt++ {
		owner, _, err := n.FindOwner(key)
		if err == nil {
			if owner.Addr == n.Addr() {
				n.onInsert(msg)
				n.lm.indexInsertBytes.Add(frameBytes(msg))
				return
			}
			if _, err = n.callIdem(owner.Addr, msg); err == nil {
				n.lm.indexInsertBytes.Add(frameBytes(msg))
				return
			}
		}
		select {
		case <-n.closed:
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	// The republish loop will retry later.
}

// fetchLoop drives a viewer: FetchWorkers goroutines consume sequence
// numbers in order and run the lookup → get → register cycle for each.
func (n *Node) fetchLoop() {
	defer n.wg.Done()
	seqs := make(chan int64)
	done := make(chan struct{})
	for i := 0; i < n.cfg.FetchWorkers; i++ {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			for seq := range seqs {
				if err := n.FetchChunk(seq); err != nil {
					// Transient — the stream moves on; a later repair
					// fetch could be layered here if gapless playback
					// mattered more than liveness.
					continue
				}
			}
		}()
	}
	defer close(seqs)
	defer close(done)
	seq := n.cfg.StartSeq
	for {
		if n.cfg.Channel.Count > 0 && seq >= n.cfg.Channel.Count {
			return
		}
		select {
		case <-n.closed:
			return
		case seqs <- seq:
			seq++
		}
	}
}

// FetchChunk acquires one chunk by the paper's client algorithm: Lookup the
// coordinator (which may hold the request until a provider registers),
// fetch from a returned provider, verify, buffer, and re-register as a
// provider. It retries across providers and routing changes until it
// succeeds, the node closes, or — when FetchDeadlineChunks is set — the
// chunk's playback horizon passes, at which point the fetch is abandoned
// (counted, traced) so workers rejoin the live edge instead of wedging on
// a chunk nobody can serve anymore.
func (n *Node) FetchChunk(seq int64) error {
	if n.HasChunk(seq) {
		return nil
	}
	start := time.Now()
	// Playback horizon: FetchDeadlineChunks periods of buffer depth from
	// the moment the viewer starts on this chunk. Zero disables deadlines
	// (fetch-until-success — fine for bounded archival pulls).
	var deadline time.Time
	if n.cfg.FetchDeadlineChunks > 0 {
		deadline = start.Add(time.Duration(n.cfg.FetchDeadlineChunks) * n.cfg.Channel.Period)
	}
	key := uint64(n.cfg.Channel.Ref(seq).ID())
	var lastErr error
	for attempt := 0; ; attempt++ {
		select {
		case <-n.closed:
			return fmt.Errorf("live: node closed (last error: %v)", lastErr)
		default:
		}
		if pastDeadline(deadline) {
			return n.abandonChunk(seq, lastErr)
		}
		providers, err := n.lookupProviders(key, seq, deadline)
		if err != nil || len(providers) == 0 {
			lastErr = err
			n.bumpRetry()
			continue
		}
		// Prefer the least-loaded provider among the coordinator's answer,
		// by the freshest load factor heard on previous ChunkResps (scaled
		// by health suspicion, so degraded providers sink in the order).
		ordered := n.orderProvidersByLoad(providers)
		for pi, pr := range ordered {
			if pr.Addr == n.Addr() {
				continue
			}
			// Rotate past providers on cooldown instead of re-asking them;
			// the coordinator's rotation supplies alternatives.
			if !n.providerUsable(pr.Addr) {
				continue
			}
			if pastDeadline(deadline) {
				return n.abandonChunk(seq, lastErr)
			}
			// The hedge target is the next-best usable provider in the
			// order — the peer this fetch would have failed over to anyway.
			backup := ""
			for _, alt := range ordered[pi+1:] {
				if alt.Addr != n.Addr() && alt.Addr != pr.Addr && n.providerUsable(alt.Addr) {
					backup = alt.Addr
					break
				}
			}
			resp, from, err := n.fetchOnce(seq, pr.Addr, backup, deadline)
			if err != nil {
				if errors.Is(err, errNodeClosed) {
					return fmt.Errorf("live: node closed (last error: %v)", lastErr)
				}
				// Single-shot by design: a failing provider is blacklisted
				// for ProviderCooldown and the fetch moves to the next
				// provider rather than retrying the same one.
				lastErr = err
				n.traceEvent("chunk.timeout", seqDetail(seq)+" peer="+from)
				n.blacklistProvider(from)
				continue
			}
			cr, ok := resp.(*wire.ChunkResp)
			if !ok {
				continue
			}
			// Busy-contradiction clamp: a provider shedding for load while
			// advertising itself near-idle is contradicting its own nack —
			// cache it as saturated so the lie cannot buy it traffic.
			load := cr.LoadMilli
			if cr.Busy && load < loadSaturatedMilli {
				load = loadSaturatedMilli
				n.lm.loadReportsClamped.Inc()
			}
			n.noteProviderLoad(from, load)
			n.noteManifestAd(from, cr.ManifestHead)
			if !cr.OK {
				if cr.Busy {
					// Busy is an admission nack from a live provider: honor
					// its RetryAfterMs hint (jittered, so viewers shed
					// together do not return together) but do not blacklist.
					n.lm.busyNacks.Inc()
					if cr.RetryAfterMs == 0 {
						n.lm.busyNacksHintless.Inc()
					}
					if !n.sleepBusy(from, cr.RetryAfterMs, deadline) {
						return fmt.Errorf("live: node closed (provider %s busy)", from)
					}
				}
				continue
			}
			// Cover seq with a manifest row if possible (best effort — the
			// generator check backstops uncovered seqs), then push the
			// payload through the buffer choke point: storeChunk verifies,
			// and a polluted payload charges the provider (integrity.go).
			n.ensureManifest(seq, from)
			if !n.storeChunk(seq, cr.Data, from) {
				lastErr = fmt.Errorf("live: chunk %d failed verification", seq)
				continue
			}
			n.registerChunk(seq)
			n.lm.chunkFetchSeconds.Observe(time.Since(start).Seconds())
			n.traceEvent("chunk.fetch", seqDetail(seq)+" peer="+from)
			return nil
		}
		n.bumpRetry()
	}
}

// errNodeClosed aborts a fetch when the node shuts down mid-request.
var errNodeClosed = errors.New("live: node closed")

// getChunkOnce issues one GetChunk carrying the viewer's declared patience
// and its remaining playback-horizon budget, under a deadline-derived
// transport timeout (with slack past the declared patience, so a serve
// legitimately queued behind the pacer is not cut off mid-wait).
func (n *Node) getChunkOnce(addr string, seq int64, deadline time.Time) (wire.Message, error) {
	req := &wire.GetChunk{Seq: seq, WaitMs: n.fetchPatienceMs(deadline), DeadlineMs: deadlineMs(deadline)}
	timeout := n.deadlineTimeout(deadline)
	if t := time.Duration(req.WaitMs)*time.Millisecond + 250*time.Millisecond; timeout < t {
		timeout = t
	}
	if ct := n.cfg.CallTimeout; ct > 0 && timeout > ct {
		timeout = ct
	}
	return n.callTimeout(addr, req, timeout)
}

// fetchOnce fetches seq from primary, hedging to backup (when hedging is
// on and a distinct usable provider exists): if the primary has not
// answered within its health-derived p95-ish latency estimate (clamped to
// [HedgeMinDelay, HedgeMaxDelay]), one duplicate request is launched at
// backup and the first response wins. An in-flight RPC cannot be
// cancelled, so the loser delivers into a buffered channel and is
// discarded — counted as cancelled, never leaked. Returns the winning
// response and the address it came from (the address to credit, nack-sleep
// against, or blacklist).
func (n *Node) fetchOnce(seq int64, primary, backup string, deadline time.Time) (resp wire.Message, from string, err error) {
	if !n.cfg.Hedge || backup == "" {
		resp, err = n.getChunkOnce(primary, seq, deadline)
		return resp, primary, err
	}
	minD, maxD := n.hedgeDelays()
	type result struct {
		resp wire.Message
		err  error
		addr string
	}
	ch := make(chan result, 2)
	go func() {
		r, e := n.getChunkOnce(primary, seq, deadline)
		ch <- result{r, e, primary}
	}()
	t := time.NewTimer(n.health.HedgeAfter(primary, minD, maxD))
	defer t.Stop()
	select {
	case r := <-ch:
		// The common path: the primary answered (or failed conclusively)
		// inside its latency estimate. No hedge was ever launched.
		return r.resp, r.addr, r.err
	case <-n.closed:
		return nil, primary, errNodeClosed
	case <-t.C:
	}
	// The primary ran past its estimate — the gray-failure signature.
	n.lm.hedgesLaunched.Inc()
	n.traceEvent("chunk.hedge", seqDetail(seq)+" primary="+primary+" hedge="+backup)
	go func() {
		r, e := n.getChunkOnce(backup, seq, deadline)
		ch <- result{r, e, backup}
	}()
	var lastErr error
	lastAddr := primary
	for i := 0; i < 2; i++ {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.addr == backup {
					n.lm.hedgeWins.Inc()
				}
				if i == 0 {
					// The other request is still in flight; it finishes into
					// the buffered channel and is discarded.
					n.lm.hedgesCancelled.Inc()
				}
				return r.resp, r.addr, nil
			}
			lastErr, lastAddr = r.err, r.addr
		case <-n.closed:
			return nil, primary, errNodeClosed
		}
	}
	// Both legs failed; each already fed the breaker and health tracker.
	return nil, lastAddr, lastErr
}

// hedgeDelays returns the configured hedge-trigger clamps with defaults
// derived.
func (n *Node) hedgeDelays() (min, max time.Duration) {
	min, max = n.cfg.HedgeMinDelay, n.cfg.HedgeMaxDelay
	if min <= 0 {
		min = 20 * time.Millisecond
	}
	if max <= 0 {
		max = 300 * time.Millisecond
	}
	if max < min {
		max = min
	}
	return min, max
}

// pastDeadline reports whether the playback horizon d has passed (zero d =
// no deadline).
func pastDeadline(d time.Time) bool { return !d.IsZero() && time.Now().After(d) }

// abandonChunk gives up on a chunk whose playback horizon passed.
func (n *Node) abandonChunk(seq int64, lastErr error) error {
	n.lm.chunksAbandoned.Inc()
	n.traceEvent("chunk.abandon", seqDetail(seq))
	return fmt.Errorf("live: chunk %d abandoned past playback horizon (last error: %v)", seq, lastErr)
}

// fetchPatienceMs is the patience a viewer declares on a GetChunk: the
// admission queue default, never past the chunk's remaining playback
// horizon (waiting longer than the horizon buys nothing).
func (n *Node) fetchPatienceMs(deadline time.Time) uint32 {
	p := n.cfg.AdmitMaxWait
	if !deadline.IsZero() {
		if r := time.Until(deadline); r < p {
			p = r
		}
	}
	ms := uint32(0)
	if p > 0 {
		ms = uint32(p / time.Millisecond)
	}
	if ms == 0 && !deadline.IsZero() {
		ms = 1 // about to abandon; never widen to the server default
	}
	return ms
}

// maxBusySleep caps how long a single Busy hint can park a fetch worker —
// a provider drowning in backlog may honestly project seconds of delay,
// but a live viewer is better off re-looking-up for another provider.
const maxBusySleep = time.Second

// sleepBusy honors a Busy nack's RetryAfterMs hint with +/-25% seeded
// jitter (decorrelating viewers that were shed together). A hintless Busy
// (should not happen with this repo's providers, but old or foreign ones
// may send them) backs off health-aware: a few of the provider's own
// round-trips, clamped — so a slow peer is not hammered on a cadence
// tuned for a fast one — with a 75ms default against strangers. The sleep
// never extends past the playback horizon and aborts when the node closes
// (returns false) — a closing node must never sit out a backoff.
func (n *Node) sleepBusy(addr string, retryAfterMs uint32, deadline time.Time) bool {
	var d time.Duration
	if retryAfterMs > 0 {
		d = time.Duration(retryAfterMs) * time.Millisecond
	} else {
		d = 75 * time.Millisecond
		if ewma, ok := n.health.ExpectedLatency(addr); ok {
			d = 4 * ewma
			if d < 20*time.Millisecond {
				d = 20 * time.Millisecond
			}
			if d > 250*time.Millisecond {
				d = 250 * time.Millisecond
			}
		}
	}
	if d > maxBusySleep {
		d = maxBusySleep
	}
	n.jitterMu.Lock()
	f := 0.75 + 0.5*n.jitter.Float64()
	n.jitterMu.Unlock()
	d = time.Duration(float64(d) * f)
	if !deadline.IsZero() {
		if r := time.Until(deadline); r < d {
			d = r
		}
	}
	if d <= 0 {
		return true
	}
	select {
	case <-n.closed:
		return false
	case <-time.After(d):
		return true
	}
}

// blacklistProvider puts addr on fetch cooldown after a failed or corrupt
// chunk transfer.
func (n *Node) blacklistProvider(addr string) {
	if n.cfg.ProviderCooldown <= 0 {
		return
	}
	n.mu.Lock()
	n.blacklist[addr] = time.Now().Add(n.cfg.ProviderCooldown)
	n.mu.Unlock()
	n.lm.providersBlacklisted.Inc()
	n.traceEvent("provider.blacklist", "peer="+addr)
}

// providerUsable reports whether addr may be asked for chunks (expired
// cooldowns are cleaned up lazily here). Quarantined peers are never
// usable — integrity failures are categorical, not a cooldown.
func (n *Node) providerUsable(addr string) bool {
	if n.health.Quarantined(addr) {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	until, ok := n.blacklist[addr]
	if !ok {
		return true
	}
	if time.Now().After(until) {
		delete(n.blacklist, addr)
		return true
	}
	return false
}

// lookupProviders asks the chunk's coordinator for providers. When the
// coordinator is dead, the lookup fails over along its successor list:
// the successor inherits the key range once stabilization settles, so
// asking it is the fastest route to the surviving index. A not-the-owner
// rejection means ownership is still moving — re-route and try again.
// The coordinator-side pending-queue wait is clamped to the remaining
// playback horizon (zero deadline = no clamp): parking a lookup past the
// point where the answer is useless just occupies the pending queue.
func (n *Node) lookupProviders(key uint64, seq int64, deadline time.Time) ([]wire.Entry, error) {
	start := time.Now()
	maxWait := n.cfg.LookupWait
	if !deadline.IsZero() {
		if r := time.Until(deadline); r < maxWait {
			maxWait = r
		}
		if maxWait < 0 {
			maxWait = 0
		}
	}
	req := &wire.Lookup{Key: key, Seq: seq, MaxWait: uint32(maxWait / time.Millisecond)}
	// Transport timeout: deadline-derived, but always with slack past the
	// coordinator's legitimate pending-queue hold, capped at CallTimeout.
	timeout := n.deadlineTimeout(deadline)
	if t := maxWait + 250*time.Millisecond; timeout < t {
		timeout = t
	}
	if ct := n.cfg.CallTimeout; ct > 0 && timeout > ct {
		timeout = ct
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			// Give stabilization a beat to settle ownership before
			// re-routing.
			select {
			case <-n.closed:
				return nil, lastErr
			case <-time.After(100 * time.Millisecond):
			}
		}
		owner, fallbacks, err := n.FindOwner(key)
		if err != nil {
			lastErr = err
			continue
		}
		candidates := make([]wire.Entry, 0, 1+len(fallbacks))
		candidates = append(candidates, owner.Wire())
		for _, f := range fallbacks {
			candidates = append(candidates, f.Wire())
		}
		// The owner must stay first — it is the one node whose answer is
		// authoritative — but the failover order among its successors is
		// ours to choose: least-suspected first, so a failover lands on a
		// healthy coordinator instead of the next degraded one.
		if rest := candidates[1:]; len(rest) > 1 {
			sort.SliceStable(rest, func(a, b int) bool {
				return n.health.Suspicion(rest[a].Addr) < n.health.Suspicion(rest[b].Addr)
			})
		}
		tried := make(map[string]bool, len(candidates))
		reroute := false
		for ci := 0; ci < len(candidates) && !reroute; ci++ {
			c := candidates[ci]
			if c.Addr == "" || tried[c.Addr] {
				continue
			}
			tried[c.Addr] = true
			// Restamp the relative deadline budget at each send (the TTL
			// convention: absolute times never cross the wire).
			req.DeadlineMs = deadlineMs(deadline)
			var resp wire.Message
			if c.Addr == n.Addr() {
				resp = n.onLookup(req)
			} else {
				resp, err = n.callIdemTimeout(c.Addr, req, timeout)
				if err != nil {
					if wire.IsNotOwner(err) {
						// Ownership moved under us: routing is stale.
						reroute = true
					}
					lastErr = err
					continue // dead coordinator: fail over to the next successor
				}
			}
			lr, ok := resp.(*wire.LookupResp)
			if !ok {
				if e, isErr := resp.(*wire.Error); isErr && e.Code == wire.CodeNotOwner {
					reroute = true
					lastErr = e
					continue
				}
				lastErr = errUnexpected(resp)
				continue
			}
			if len(lr.Providers) == 0 && c.Addr == n.Addr() {
				if ps := n.emptySecondOpinion(candidates[ci+1:], key, seq, deadline, timeout); len(ps) > 0 {
					n.lm.lookupSeconds.Observe(time.Since(start).Seconds())
					n.noteMembers(ps...)
					return ps, nil
				}
			}
			if ci > 0 {
				n.lm.lookupFailovers.Inc()
				n.traceEvent("lookup.failover", seqDetail(seq)+" coordinator="+c.Addr)
			}
			n.lm.lookupSeconds.Observe(time.Since(start).Seconds())
			n.noteMembers(lr.Providers...)
			return lr.Providers, nil
		}
	}
	// Every candidate coordinator (owner plus its successor list) failed
	// across every re-route attempt: this is the outage replication exists
	// to prevent, so it gets its own counter (soak tests assert zero).
	n.lm.lookupFailures.Inc()
	n.traceEvent("lookup.fail", seqDetail(seq))
	return nil, lastErr
}

// emptySecondOpinion double-checks an empty answer from this node's own
// index against one fallback coordinator (gray-failure defense). A node
// cut off by an asymmetric partition still believes it owns its old arc —
// its outbound calls keep working, so it never notices the ring reassigned
// the range — while every registration for those keys lands at its
// successor. Trusting the local empty would starve exactly the chunks this
// node used to own. The probe does not park (MaxWait 0): when the local
// empty is genuine (the live edge), the fallback answers with a fast
// not-the-owner rejection and the empty stands, costing one round-trip.
func (n *Node) emptySecondOpinion(fallbacks []wire.Entry, key uint64, seq int64, deadline time.Time, timeout time.Duration) []wire.Entry {
	for _, c := range fallbacks {
		if c.Addr == "" || c.Addr == n.Addr() {
			continue
		}
		probe := &wire.Lookup{Key: key, Seq: seq, DeadlineMs: deadlineMs(deadline)}
		resp, err := n.callIdemTimeout(c.Addr, probe, timeout)
		if err != nil {
			return nil
		}
		if lr, ok := resp.(*wire.LookupResp); ok && len(lr.Providers) > 0 {
			n.traceEvent("lookup.secondopinion", seqDetail(seq)+" coordinator="+c.Addr)
			return lr.Providers
		}
		return nil
	}
	return nil
}

// storeChunk is the buffer choke point: the ONLY path by which a received
// chunk enters the buffer map (and thereby becomes re-servable). It
// verifies the payload first — against the manifest when covered, the
// deterministic generator otherwise — and refuses polluted bytes, charging
// the serving peer when one is named (from may be "" for local/test
// stores, which skips the punishment but never the verification).
func (n *Node) storeChunk(seq int64, data []byte, from string) bool {
	if !n.chunkOK(seq, data) {
		n.lm.integrityRejects.Inc()
		n.traceEvent("chunk.reject", seqDetail(seq)+" peer="+from)
		if from != "" {
			n.punishPoisoner(from, seq)
		}
		return false
	}
	n.mu.Lock()
	_, dup := n.chunks[seq]
	if !dup {
		n.chunks[seq] = data
		n.lm.chunksFetched.Inc()
		if seq > n.latestGen {
			n.latestGen = seq
		}
	}
	cb := n.cfg.OnChunk
	expired := n.trimActiveWindowLocked()
	n.mu.Unlock()
	if !dup && cb != nil {
		cb(seq, data)
	}
	n.unregisterExpired(expired)
	return true
}

// trimActiveWindowLocked drops chunks that fell out of the active window
// and returns their sequence numbers for unregistration. Caller holds mu.
func (n *Node) trimActiveWindowLocked() []int64 {
	w := n.cfg.ActiveWindow
	if w <= 0 || len(n.chunks) <= w {
		return nil
	}
	cut := n.latestGen - int64(w) + 1
	var expired []int64
	for seq := range n.chunks {
		if seq < cut {
			delete(n.chunks, seq)
			delete(n.registered, seq)
			expired = append(expired, seq)
		}
	}
	return expired
}

// unregisterExpired withdraws provider records for chunks this node no
// longer holds, so coordinators stop advertising it (§III-B1b departure
// duty, applied to the sliding window).
func (n *Node) unregisterExpired(seqs []int64) {
	for _, seq := range seqs {
		seq := seq
		key := uint64(n.cfg.Channel.Ref(seq).ID())
		owner, _, err := n.FindOwner(key)
		if err != nil {
			continue // best effort; a stale entry only costs a nack later
		}
		msg := &wire.Insert{Key: key, Seq: seq, Holder: n.wireSelf(), Unregister: true}
		if owner.Addr == n.Addr() {
			n.onInsert(msg)
			continue
		}
		_, _ = n.callIdem(owner.Addr, msg)
	}
}

func (n *Node) bumpRetry() {
	n.lm.fetchRetries.Inc()
	select {
	case <-n.closed:
	case <-time.After(150 * time.Millisecond):
	}
}
