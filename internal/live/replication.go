package live

// r-way index replication (see DESIGN.md, "Replication & repair").
//
// Every Insert/Unregister a coordinator accepts is queued and flushed as a
// ReplicateBatch to the coordinator's first r live successors. A successor
// that detects its predecessor's death promotes the dead owner's replica
// slice into its own index (takeover), so lookups keep being answered from
// the replica instead of stalling for the republish window. A periodic
// anti-entropy round exchanges per-range digests to reconcile whatever
// replication missed: dropped batches, partitions, and ownership moved by
// concurrent joins.

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dco/internal/wire"
)

const (
	// maxReplPending bounds the replication queue; when every target stays
	// unreachable the oldest ops are dropped (anti-entropy re-sends them).
	maxReplPending = 1 << 16
	// maxBatchOps caps one ReplicateBatch frame well under wire.MaxFrame.
	maxBatchOps = 2048
)

// replicaEntry is one replicated index entry: the chunk key plus the
// owner's provider set as of the last batch or digest that mentioned it.
type replicaEntry struct {
	key       uint64
	providers []provRec
}

// replicaSet is the slice of one owner's index replicated at this node.
type replicaSet struct {
	owner   wire.Entry
	entries map[int64]*replicaEntry
}

func (n *Node) replicaSetLocked(owner wire.Entry) *replicaSet {
	rs := n.replicas[owner.Addr]
	if rs == nil {
		rs = &replicaSet{entries: make(map[int64]*replicaEntry)}
		n.replicas[owner.Addr] = rs
	}
	rs.owner = owner
	return rs
}

// ReplicaCounts reports how many owners this node replicates for and the
// total replica entries held (tests, gauges).
func (n *Node) ReplicaCounts() (owners, entries int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, rs := range n.replicas {
		owners++
		entries += len(rs.entries)
	}
	return owners, entries
}

// enqueueReplicaLocked queues one accepted index op for the next flush.
// Caller holds n.mu.
func (n *Node) enqueueReplicaLocked(key uint64, seq int64, holder wire.Entry, upBps int64, expire time.Time, unregister bool) {
	if n.cfg.Replicas <= 0 {
		return
	}
	if len(n.replPending) == 0 {
		n.replSince = time.Now()
	}
	if len(n.replPending) >= maxReplPending {
		n.replPending = n.replPending[1:]
	}
	op := wire.ReplicaOp{
		Key: key, Seq: seq, Holder: holder, UpBps: upBps,
		TTLMillis: ttlMillis(expire, time.Now()), Unregister: unregister,
	}
	// Piggyback the seq's manifest row (integrity.go) so manifests
	// replicate with the chunk index and survive coordinator failover.
	// Lock order n.mu → manMu is the sanctioned direction.
	if !unregister {
		if rec, ok := n.manifestLookup(seq); ok {
			op.ManifestHash = append([]byte(nil), rec.hash[:]...)
			op.ManifestTag = append([]byte(nil), rec.tag[:]...)
		}
	}
	n.replPending = append(n.replPending, op)
}

// replTargetsLocked returns up to Replicas distinct live members that
// should mirror this node's index (the replica set), from the kernel
// (Chord: the first live successors; Kademlia: the closest contacts).
// Caller holds n.mu.
func (n *Node) replTargetsLocked() []wire.Entry {
	r := n.cfg.Replicas
	if r <= 0 {
		return nil
	}
	var out []wire.Entry
	for _, m := range n.kern.ReplicaSet(n.self.ID, r) {
		out = append(out, m.Wire())
	}
	return out
}

// replicateFlush drains the pending-op queue into ReplicateBatch frames
// for every replica target. A target that misses a batch is repaired by
// the next anti-entropy round, so per-target failures are not retried
// beyond what callIdem already does.
func (n *Node) replicateFlush() {
	n.mu.Lock()
	if len(n.replPending) == 0 {
		n.mu.Unlock()
		return
	}
	ops := n.replPending
	n.replPending = nil
	since := n.replSince
	targets := n.replTargetsLocked()
	self := n.wireSelfLocked()
	n.mu.Unlock()
	if len(targets) == 0 {
		return // ring of one: nobody to replicate to yet
	}
	for start := 0; start < len(ops); start += maxBatchOps {
		end := start + maxBatchOps
		if end > len(ops) {
			end = len(ops)
		}
		batch := &wire.ReplicateBatch{Owner: self, Ops: ops[start:end]}
		size := frameBytes(batch)
		for _, t := range targets {
			if _, err := n.callIdem(t.Addr, batch); err != nil {
				continue
			}
			n.lm.replicateBatches.Inc()
			n.lm.replicateOps.Add(uint64(len(batch.Ops)))
			n.lm.replicateBytes.Add(size)
		}
	}
	n.lm.replicationLag.Observe(time.Since(since).Seconds())
}

// onReplicateBatch stores an owner's index ops in that owner's replica
// slice — unless this node meanwhile owns the key outright (the batch is
// the tail of a takeover, a graceful leave, or the sender's stale view),
// in which case the op folds straight into the owned index.
func (n *Node) onReplicateBatch(m *wire.ReplicateBatch) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Owner.Addr == n.self.Addr {
		return &wire.Ack{}
	}
	n.noteMembersLocked(m.Owner)
	now := time.Now()
	var rs *replicaSet
	var reset map[int64]bool
	for i := range m.Ops {
		op := &m.Ops[i]
		// Fold in the piggybacked manifest row first (tag-verified inside;
		// a bogus row is simply ignored) — replicas learn manifest coverage
		// with the index rows they mirror.
		if len(op.ManifestHash) > 0 {
			n.noteManifestEntry(op.Seq, op.ManifestHash, op.ManifestTag)
		}
		// OwnsSettled, not Owns: ownership here requires positive routing
		// evidence — a freshly joined node with empty tables would
		// otherwise claim every key it sees.
		if n.kern.OwnsSettled(op.Key) {
			n.applyOwnedOpLocked(op, now)
			continue
		}
		if rs == nil {
			rs = n.replicaSetLocked(m.Owner)
		}
		if m.Full {
			if reset == nil {
				reset = make(map[int64]bool)
			}
			// Full batches carry the complete record for every seq they
			// mention: replace the replica's set, don't merge into it.
			if !reset[op.Seq] {
				reset[op.Seq] = true
				delete(rs.entries, op.Seq)
			}
		}
		applyReplicaOp(rs, op, now)
	}
	n.lm.replicaOpsApplied.Add(uint64(len(m.Ops)))
	return &wire.Ack{}
}

// applyOwnedOpLocked folds a replicated op into the owned index (lookups
// see it immediately) and re-replicates it to this node's own successors.
// Caller holds n.mu.
func (n *Node) applyOwnedOpLocked(op *wire.ReplicaOp, now time.Time) {
	e := n.indexEntryLocked(op.Seq)
	if op.Unregister {
		for i := range e.providers {
			if e.providers[i].ent.Addr == op.Holder.Addr {
				e.providers = append(e.providers[:i], e.providers[i+1:]...)
				break
			}
		}
		n.enqueueReplicaLocked(op.Key, op.Seq, op.Holder, 0, time.Time{}, true)
		return
	}
	expire := restamp(op.TTLMillis, now)
	n.mergeProvidersLocked(e, []provRec{{ent: op.Holder, upBps: op.UpBps, expire: expire}}, now)
	n.enqueueReplicaLocked(op.Key, op.Seq, op.Holder, op.UpBps, expire, false)
}

// applyReplicaOp upserts one op into a replica slice.
func applyReplicaOp(rs *replicaSet, op *wire.ReplicaOp, now time.Time) {
	re := rs.entries[op.Seq]
	if op.Unregister {
		if re == nil {
			return
		}
		for i := range re.providers {
			if re.providers[i].ent.Addr == op.Holder.Addr {
				re.providers = append(re.providers[:i], re.providers[i+1:]...)
				break
			}
		}
		if len(re.providers) == 0 {
			delete(rs.entries, op.Seq)
		}
		return
	}
	if re == nil {
		re = &replicaEntry{key: op.Key}
		rs.entries[op.Seq] = re
	}
	re.key = op.Key
	expire := restamp(op.TTLMillis, now)
	for i := range re.providers {
		if re.providers[i].ent.Addr == op.Holder.Addr {
			re.providers[i].expire = expire
			re.providers[i].upBps = op.UpBps
			return
		}
	}
	re.providers = append(re.providers, provRec{ent: op.Holder, upBps: op.UpBps, expire: expire})
}

// restamp converts a wire-relative TTL back to a local lease deadline.
func restamp(ttlMs uint32, now time.Time) time.Time {
	if ttlMs == 0 {
		return time.Time{}
	}
	return now.Add(time.Duration(ttlMs) * time.Millisecond)
}

// mergeProvidersLocked upserts providers into an owned index entry,
// waking pending lookups when anyone new appears, and returns how many
// were added. Lease refreshes keep the longer deadline (zero = forever
// wins). Caller holds n.mu.
func (n *Node) mergeProvidersLocked(e *indexEntry, provs []provRec, now time.Time) int {
	added := 0
	for _, p := range provs {
		if !p.expire.IsZero() && now.After(p.expire) {
			continue
		}
		found := false
		for i := range e.providers {
			if e.providers[i].ent.Addr != p.ent.Addr {
				continue
			}
			found = true
			ex := &e.providers[i]
			if p.expire.IsZero() {
				ex.expire = time.Time{}
			} else if !ex.expire.IsZero() && p.expire.After(ex.expire) {
				ex.expire = p.expire
			}
			if p.upBps != 0 {
				ex.upBps = p.upBps
			}
			break
		}
		if !found {
			e.providers = append(e.providers, p)
			added++
		}
	}
	if added > 0 {
		e.wakeLocked()
	}
	return added
}

// promoteReplicasLocked is the takeover step: the dead owner's replica
// slice folds into this node's own index for every key it now owns, and
// the promoted entries are re-replicated onward. Entries outside this
// node's range stay in the slice (a farther successor owns them) until
// their leases lapse. Caller holds n.mu; returns entries promoted.
func (n *Node) promoteReplicasLocked(deadAddr string) int {
	rs := n.replicas[deadAddr]
	if rs == nil {
		return 0
	}
	now := time.Now()
	promoted := 0
	for seq, re := range rs.entries {
		if !n.kern.Owns(re.key) {
			continue
		}
		delete(rs.entries, seq)
		e := n.indexEntryLocked(seq)
		if n.mergeProvidersLocked(e, re.providers, now) == 0 {
			continue
		}
		promoted++
		for _, p := range e.providers {
			n.enqueueReplicaLocked(re.key, seq, p.ent, p.upBps, p.expire, false)
		}
	}
	if len(rs.entries) == 0 {
		delete(n.replicas, deadAddr)
	}
	if promoted > 0 {
		n.lm.takeovers.Inc()
		n.lm.takeoverEntries.Add(uint64(promoted))
	}
	return promoted
}

// promoteReplicaSeqLocked is the lookup-path fallback: this node owns the
// key, its owned entry is empty, but a replica slice may hold it — e.g.
// both the old owner and its first successor died before any takeover or
// anti-entropy round reached us. Caller holds n.mu.
func (n *Node) promoteReplicaSeqLocked(key uint64, seq int64, e *indexEntry) {
	now := time.Now()
	merged := 0
	for addr, rs := range n.replicas {
		re := rs.entries[seq]
		if re == nil || re.key != key {
			continue
		}
		merged += n.mergeProvidersLocked(e, re.providers, now)
		delete(rs.entries, seq)
		if len(rs.entries) == 0 {
			delete(n.replicas, addr)
		}
	}
	if merged > 0 {
		n.lm.takeoverEntries.Add(uint64(merged))
		for _, p := range e.providers {
			n.enqueueReplicaLocked(key, seq, p.ent, p.upBps, p.expire, false)
		}
	}
}

// antiEntropy is the owner-side repair round: prune lapsed leases, digest
// the owned index, and send the digest to every replica target. Replicas
// answer with the seqs whose provider set is missing or diverged; those
// are re-sent as a Full batch. The digest is sent even when the index is
// empty so replicas drop entries the owner no longer holds.
func (n *Node) antiEntropy() {
	now := time.Now()
	n.mu.Lock()
	expired := 0
	var digests []wire.SeqDigest
	for seq, e := range n.index {
		expired += e.pruneLocked(now)
		if len(e.providers) == 0 {
			continue
		}
		key := uint64(n.cfg.Channel.Ref(seq).ID())
		if !n.kern.Owns(key) {
			continue
		}
		digests = append(digests, wire.SeqDigest{Key: key, Seq: seq, Hash: providerHash(e.providers)})
	}
	// Replica-side housekeeping rides along: leases age out of replica
	// slices here too, and empty slices (owner long gone, entries all
	// expired) are garbage-collected.
	for addr, rs := range n.replicas {
		for seq, re := range rs.entries {
			re.providers, _ = pruneRecs(re.providers, now)
			if len(re.providers) == 0 {
				delete(rs.entries, seq)
			}
		}
		if len(rs.entries) == 0 {
			delete(n.replicas, addr)
		}
	}
	targets := n.replTargetsLocked()
	self := n.wireSelfLocked()
	n.mu.Unlock()
	if expired > 0 {
		n.lm.indexExpired.Add(uint64(expired))
	}
	if len(targets) == 0 {
		return
	}
	sort.Slice(digests, func(i, j int) bool { return digests[i].Seq < digests[j].Seq })
	req := &wire.DigestReq{Owner: self, Digests: digests}
	reqSize := frameBytes(req)
	n.lm.digestRounds.Inc()
	for _, t := range targets {
		resp, err := n.callIdem(t.Addr, req)
		if err != nil {
			continue
		}
		n.lm.digestBytes.Add(reqSize)
		dr, ok := resp.(*wire.DigestResp)
		if !ok || len(dr.Need) == 0 {
			continue
		}
		repair := n.buildRepairBatch(self, dr.Need)
		if repair == nil {
			continue
		}
		if _, err := n.callIdem(t.Addr, repair); err == nil {
			n.lm.digestRepairOps.Add(uint64(len(repair.Ops)))
			n.lm.replicateBytes.Add(frameBytes(repair))
			n.traceEvent("replica.repair", fmt.Sprintf("peer=%s ops=%d", t.Addr, len(repair.Ops)))
		}
	}
}

// buildRepairBatch assembles a Full batch for the seqs a replica reported
// missing or divergent.
func (n *Node) buildRepairBatch(self wire.Entry, need []int64) *wire.ReplicateBatch {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	batch := &wire.ReplicateBatch{Owner: self, Full: true}
	for _, seq := range need {
		e := n.index[seq]
		if e == nil || len(e.providers) == 0 {
			continue
		}
		key := uint64(n.cfg.Channel.Ref(seq).ID())
		for _, p := range e.providers {
			batch.Ops = append(batch.Ops, wire.ReplicaOp{
				Key: key, Seq: seq, Holder: p.ent, UpBps: p.upBps,
				TTLMillis: ttlMillis(p.expire, now),
			})
		}
		if len(batch.Ops) >= maxBatchOps {
			break
		}
	}
	if len(batch.Ops) == 0 {
		return nil
	}
	return batch
}

// onDigestReq answers an owner's anti-entropy digest: drop whatever the
// owner no longer mentions, then report the seqs whose provider set is
// missing or diverged so the owner re-sends them as a Full batch.
func (n *Node) onDigestReq(m *wire.DigestReq) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m.Owner.Addr == n.self.Addr {
		return &wire.DigestResp{}
	}
	n.noteMembersLocked(m.Owner)
	now := time.Now()
	rs := n.replicaSetLocked(m.Owner)
	mentioned := make(map[int64]bool, len(m.Digests))
	for _, d := range m.Digests {
		mentioned[d.Seq] = true
	}
	for seq := range rs.entries {
		if !mentioned[seq] {
			delete(rs.entries, seq)
		}
	}
	var need []int64
	for _, d := range m.Digests {
		re := rs.entries[d.Seq]
		if re == nil {
			need = append(need, d.Seq)
			continue
		}
		re.providers, _ = pruneRecs(re.providers, now)
		if re.key != d.Key || providerHash(re.providers) != d.Hash {
			need = append(need, d.Seq)
		}
	}
	if len(rs.entries) == 0 && len(need) == 0 {
		delete(n.replicas, m.Owner.Addr)
	}
	return &wire.DigestResp{Need: need}
}

// providerHash digests a provider set: FNV-1a over the sorted provider
// addresses. Lease deadlines are deliberately excluded — every republish
// refresh would otherwise diverge the hash and force a repair per round.
func providerHash(provs []provRec) uint64 {
	addrs := make([]string, 0, len(provs))
	for _, p := range provs {
		addrs = append(addrs, p.ent.Addr)
	}
	sort.Strings(addrs)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, a := range addrs {
		for i := 0; i < len(a); i++ {
			h ^= uint64(a[i])
			h *= prime64
		}
		h ^= 0xff // record separator: addresses must not concatenate ambiguously
		h *= prime64
	}
	return h
}

// frameBytes returns a message's encoded frame size without sending it
// (byte accounting for the write-amplification benchmark).
func frameBytes(m wire.Message) uint64 {
	nb, err := wire.WriteMessageN(io.Discard, m)
	if err != nil {
		return 0
	}
	return uint64(nb)
}
