package live

import (
	"sort"
	"testing"
	"time"

	"dco/internal/faulty"
	"dco/internal/transport"
	"dco/internal/wire"
)

// faultyAttach wires a node onto a fabric through a fault injector.
func faultyAttach(f *transport.Fabric, in *faulty.Injector) func(transport.Handler) (transport.Transport, error) {
	return func(h transport.Handler) (transport.Transport, error) {
		return in.Wrap(f.Attach(h)), nil
	}
}

// TestFaultMatrixSwarmConverges is the acceptance scenario: a live swarm
// on an in-memory transport wrapped in the fault injector, with a seeded
// 20% message drop, plus one abruptly killed coordinator mid-stream. The
// surviving viewers must still complete the stream (chunk fetches fail
// over around drops and the dead node) and the surviving ring must end
// converged, every node holding the correct successor.
func TestFaultMatrixSwarmConverges(t *testing.T) {
	const seed = 20100807
	f := transport.NewFabric()
	in := faulty.NewInjector(seed)
	in.SetDefaultRule(faulty.Rule{Drop: 0.20})

	cfg := resilientConfig(true)
	cfg.Channel.Count = 20
	src, err := NewNode(cfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	vcfg := resilientConfig(false)
	vcfg.Channel.Count = 20
	var viewers []*Node
	for i := 0; i < 5; i++ {
		nd, err := NewNode(vcfg, faultyAttach(f, in))
		if err != nil {
			t.Fatal(err)
		}
		// Under 20% drop a join may need its retry rounds; it must still
		// land.
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatalf("viewer %d join under 20%% drop: %v", i, err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	all := append([]*Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	// Kill one coordinator mid-stream: every ring member owns a slice of
	// the chunk-key space, so any viewer is a coordinator for some chunks.
	// Give the swarm a moment to spread providers first.
	time.Sleep(600 * time.Millisecond)
	victim := viewers[2]
	victim.Close()

	survivors := []*Node{src}
	var watching []*Node
	for _, v := range viewers {
		if v != victim {
			survivors = append(survivors, v)
			watching = append(watching, v)
		}
	}

	want := int(vcfg.Channel.Count)
	waitFor(t, 60*time.Second, "surviving viewers to complete the stream under 20% drop + dead coordinator", func() bool {
		for _, v := range watching {
			if v.ChunkCount() < want {
				return false
			}
		}
		return true
	})

	// The surviving ring converges to the correct successor order.
	waitFor(t, 15*time.Second, "surviving ring to converge", func() bool {
		return ringCorrect(survivors)
	})

	// The injector really did inject (the run was not accidentally clean),
	// and the resilience layer absorbed it.
	if in.Injected() == 0 {
		t.Fatal("fault injector never fired; the scenario tested nothing")
	}
	var retries uint64
	for _, nd := range survivors {
		retries += nd.Stats().CallRetries
	}
	if retries == 0 {
		t.Error("no RPC was ever retried under 20% drop: retry layer inactive")
	}
}

// TestFaultMatrixCorruptionDetected: every chunk payload from the source
// is corrupted in flight (one seeded byte flip). The viewer must catch
// each one with VerifyChunkPayload, blacklist the provider, and buffer
// nothing — a corrupt chunk re-served downstream would poison the swarm.
// Once the corruption clears, the same stream completes and everything
// buffered verifies.
func TestFaultMatrixCorruptionDetected(t *testing.T) {
	const seed = 20260806
	f := transport.NewFabric()
	in := faulty.NewInjector(seed)

	cfg := resilientConfig(true)
	cfg.Channel.Count = 12
	src, err := NewNode(cfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	vcfg := resilientConfig(false)
	vcfg.Channel.Count = 12
	v, err := NewNode(vcfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	// Corruption only mangles ChunkResp payloads, so control traffic
	// (join, lookups, stabilize) toward the source is unaffected.
	in.SetRule(src.Addr(), faulty.Rule{Corrupt: 1})
	src.Start()
	v.Start()
	defer src.Close()
	defer v.Close()

	// The viewer keeps catching corrupt transfers and cooling the source
	// down; nothing corrupt may land in the buffer.
	waitFor(t, 30*time.Second, "corrupted transfers to blacklist the source", func() bool {
		return v.Stats().ProvidersBlacklisted >= 2
	})
	if got := v.ChunkCount(); got != 0 {
		t.Fatalf("viewer buffered %d chunks while every payload was corrupted", got)
	}
	corrupted := 0
	for _, d := range in.History() {
		if d.Action == faulty.Corrupted {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("no Corrupted decision in the injector history; the scenario tested nothing")
	}

	// Clear the rule: the blacklist cooldown expires and the stream
	// completes with intact payloads.
	in.SetRule(src.Addr(), faulty.Rule{})
	want := int(vcfg.Channel.Count)
	waitFor(t, 60*time.Second, "viewer to complete the stream after corruption clears", func() bool {
		return v.ChunkCount() >= want
	})
	v.mu.Lock()
	defer v.mu.Unlock()
	for seq, data := range v.chunks {
		if !VerifyChunkPayload(v.cfg.Channel, seq, data) {
			t.Fatalf("buffered chunk %d fails verification", seq)
		}
	}
}

// ringCorrect is the backend-aware convergence oracle for the given
// membership. Chord: every node's successor pointer matches the sorted
// ring order. Kademlia (no ring structure): every node's membership view
// is exactly the given set — all live members learned, all dead or
// far-side contacts purged.
func ringCorrect(nodes []*Node) bool {
	if len(nodes) == 0 {
		return true
	}
	if nodes[0].DHTName() != "chord" {
		return viewsConverged(nodes)
	}
	sorted := append([]*Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for i, nd := range sorted {
		next := sorted[(i+1)%len(sorted)]
		if _, succ := nd.Successor(); succ != next.Addr() {
			return false
		}
	}
	return true
}

// viewsConverged reports whether every node's kernel membership view is
// exactly the address set of nodes.
func viewsConverged(nodes []*Node) bool {
	want := map[string]bool{}
	for _, nd := range nodes {
		want[nd.Addr()] = true
	}
	for _, nd := range nodes {
		nd.mu.Lock()
		view := nd.kern.View()
		nd.mu.Unlock()
		if len(view) != len(want) {
			return false
		}
		for _, m := range view {
			if !want[m.Addr] {
				return false
			}
		}
	}
	return true
}

// TestFaultScheduleReproducible asserts the acceptance property directly:
// with the same seed and the same address universe, two injectors produce
// the identical fault schedule — decision for decision — while a
// different seed diverges.
func TestFaultScheduleReproducible(t *testing.T) {
	run := func(seed uint64) []faulty.Decision {
		// Fresh fabrics hand out the same deterministic addresses
		// (mem://1, mem://2, ...), so two runs see the same universe.
		f := transport.NewFabric()
		in := faulty.NewInjector(seed)
		in.SetDefaultRule(faulty.Rule{Drop: 0.20, Refuse: 0.05, Duplicate: 0.05})
		h := transport.HandlerFunc(func(string, wire.Message) wire.Message { return &wire.Pong{} })
		var eps []transport.Transport
		for i := 0; i < 6; i++ {
			eps = append(eps, in.Wrap(f.Attach(h)))
		}
		// A fixed, scripted call pattern standing in for swarm traffic.
		for round := 0; round < 50; round++ {
			for i, src := range eps {
				dst := eps[(i+1+round)%len(eps)]
				_, _ = src.Call(dst.Addr(), &wire.Ping{}, time.Second)
			}
		}
		return in.History()
	}

	a, b := run(42), run(42)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs under the same seed: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Action != faulty.Pass {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected; reproducibility claim untested")
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i].Action != c[i].Action {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestSwarmSurvivesPartition: cutting one viewer off mid-stream must not
// stall the majority side. The isolated node exhausts its successor list
// while cut off and degenerates to a singleton ring — Chord rings cannot
// merge spontaneously, so after the heal it re-bootstraps through JoinAny
// (the documented recovery path) and catches up on the full stream.
func TestSwarmSurvivesPartition(t *testing.T) {
	const seed = 99
	f := transport.NewFabric()
	in := faulty.NewInjector(seed)

	cfg := resilientConfig(true)
	cfg.Channel.Count = 30
	src, _ := NewNode(cfg, faultyAttach(f, in))
	vcfg := resilientConfig(false)
	vcfg.Channel.Count = 30
	var viewers []*Node
	for i := 0; i < 3; i++ {
		nd, _ := NewNode(vcfg, faultyAttach(f, in))
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	all := append([]*Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	// Cut one viewer off from everyone.
	time.Sleep(400 * time.Millisecond)
	isolated := viewers[2]
	majority := []*Node{src, viewers[0], viewers[1]}
	in.Partition(
		[]string{src.Addr(), viewers[0].Addr(), viewers[1].Addr()},
		[]string{isolated.Addr()},
	)

	// The majority side streams to completion with the partition up.
	want := int(vcfg.Channel.Count)
	waitFor(t, 60*time.Second, "majority viewers to finish during the partition", func() bool {
		for _, v := range majority[1:] {
			if v.ChunkCount() < want {
				return false
			}
		}
		return true
	})
	waitFor(t, 15*time.Second, "majority ring to converge without the isolated node", func() bool {
		return ringCorrect(majority)
	})

	// Heal and re-bootstrap the isolated node; it must catch up fully.
	in.Heal()
	if err := isolated.JoinAny([]string{viewers[0].Addr(), src.Addr()}); err != nil {
		t.Fatalf("rejoin after heal: %v", err)
	}
	waitFor(t, 60*time.Second, "healed viewer to catch up on the stream", func() bool {
		return isolated.ChunkCount() >= want
	})
	waitFor(t, 15*time.Second, "full ring to converge after the rejoin", func() bool {
		return ringCorrect(all)
	})
}
