package live

import (
	"net/http/httptest"
	"testing"
	"time"

	"dco/internal/telemetry"
	"dco/internal/transport"
)

// TestKademliaSwarmScrapeMidStream is the Kademlia twin of
// TestSwarmScrapeMidStream: a live swarm streams end-to-end with the
// Kademlia backend pinned (regardless of DCO_DHT), and a mid-stream
// scrape of a viewer's registry shows the backend-specific telemetry —
// the lookup-hop histogram, the alpha-parallelism in-flight gauge, and
// the k-bucket occupancy gauges — alongside the backend-neutral live
// metrics. This is the golden-output check for the PR 7 telemetry
// satellite: if a metric is renamed or silently stops moving, this
// fails, not a dashboard.
func TestKademliaSwarmScrapeMidStream(t *testing.T) {
	f := transport.NewFabric()

	mkCfg := func(source bool) Config {
		cfg := fastConfig(source)
		cfg.DHT = "kademlia"
		cfg.Channel.Count = 40
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Trace = telemetry.NewTrace(1024)
		return cfg
	}

	scfg := mkCfg(true)
	src, err := NewNode(scfg, meteredAttach(f, scfg.Telemetry))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := src.DHTName(); got != "kademlia" {
		t.Fatalf("DHTName() = %q, want kademlia", got)
	}

	vcfg := mkCfg(false)
	viewer, err := NewNode(vcfg, meteredAttach(f, vcfg.Telemetry))
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	src.Start()
	viewer.Start()

	srv := httptest.NewServer(telemetry.Handler(vcfg.Telemetry, vcfg.Trace))
	defer srv.Close()

	waitFor(t, 30*time.Second, "kademlia viewer to buffer a few chunks", func() bool {
		return viewer.ChunkCount() >= 5
	})

	m := scrape(t, srv.URL+"/metrics")

	// Backend-neutral lookup telemetry: the hop histogram must exist and
	// must have recorded the viewer's provider lookups.
	if n := m["dco_dht_lookup_hops_count"]; n <= 0 {
		t.Fatalf("dco_dht_lookup_hops_count = %g, want > 0", n)
	}
	if _, ok := m[`dco_dht_lookup_hops_bucket{le="+Inf"}`]; !ok {
		t.Fatal("scrape missing dco_dht_lookup_hops buckets")
	}
	if n := m["dco_dht_lookups_total"]; n <= 0 {
		t.Fatalf("dco_dht_lookups_total = %g, want > 0", n)
	}

	// Kademlia-specific gauges: the in-flight gauge must be present (it
	// is 0 between lookups — presence is the contract), and the routing
	// table must show live contacts.
	if _, ok := m["dco_kad_inflight"]; !ok {
		t.Fatal("scrape missing dco_kad_inflight gauge")
	}
	if n := m["dco_kad_bucket_contacts"]; n <= 0 {
		t.Fatalf("dco_kad_bucket_contacts = %g, want > 0 (the viewer knows the source)", n)
	}
	if n := m["dco_kad_table_inserts_total"]; n <= 0 {
		t.Fatalf("dco_kad_table_inserts_total = %g, want > 0", n)
	}

	// The live plane's own metrics keep working under the swapped kernel.
	if n := m["dco_live_chunks_fetched_total"]; n < 5 {
		t.Fatalf("dco_live_chunks_fetched_total = %g, want >= 5", n)
	}
	if r := m["dco_transport_overhead_ratio"]; r <= 0 {
		t.Fatalf("overhead ratio = %g, want > 0", r)
	}

	// The trace recorded the kernel's routing decisions.
	if vcfg.Trace.Count("lookup.route") == 0 {
		t.Fatal("trace has no lookup.route events from the kademlia kernel")
	}
}
