package live

import (
	"fmt"
	"time"

	"dco/internal/chord"
	"dco/internal/wire"
)

// serve dispatches one inbound RPC. It runs on transport goroutines, so
// everything it touches is guarded by n.mu; blocking waits (the lookup
// pending queue) happen outside the lock.
func (n *Node) serve(from string, req wire.Message) wire.Message {
	switch m := req.(type) {
	case *wire.Ping:
		return &wire.Pong{}
	case *wire.FindSuccessor:
		return n.onFindSuccessor(m)
	case *wire.GetState:
		return n.onGetState()
	case *wire.Notify:
		return n.onNotify(m)
	case *wire.Lookup:
		return n.onLookup(m)
	case *wire.Insert:
		return n.onInsert(m)
	case *wire.GetChunk:
		return n.onGetChunk(m)
	case *wire.Handoff:
		return n.onHandoff(m)
	case *wire.Leave:
		return n.onLeave(m)
	case *wire.ReplicateBatch:
		return n.onReplicateBatch(m)
	case *wire.DigestReq:
		return n.onDigestReq(m)
	case *wire.CensusProbe:
		return n.onCensusProbe(m)
	default:
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "unsupported request"}
	}
}

func (n *Node) onFindSuccessor(m *wire.FindSuccessor) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	hop, done := n.cs.NextHop(chord.ID(m.Key))
	resp := &wire.FindSuccessorResp{
		Done:  done && hop.Addr == n.cs.Self.Addr,
		Owner: wire.Entry{ID: uint64(hop.ID), Addr: hop.Addr},
	}
	if resp.Done {
		for _, e := range n.cs.SuccessorList() {
			resp.Succs = append(resp.Succs, wire.Entry{ID: uint64(e.ID), Addr: e.Addr})
		}
		if p := n.cs.Predecessor(); p.OK {
			resp.Pred = wire.Entry{ID: uint64(p.ID), Addr: p.Addr}
			resp.OK = true
		}
	} else if done {
		// The successor owns the key: the caller should finish there.
		resp.Done = false
	}
	return resp
}

func (n *Node) onGetState() wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	resp := &wire.GetStateResp{}
	if p := n.cs.Predecessor(); p.OK {
		resp.Pred = wire.Entry{ID: uint64(p.ID), Addr: p.Addr}
		resp.PredOK = true
	}
	for _, e := range n.cs.SuccessorList() {
		resp.Succs = append(resp.Succs, wire.Entry{ID: uint64(e.ID), Addr: e.Addr})
	}
	return resp
}

func (n *Node) onNotify(m *wire.Notify) wire.Message {
	cand := entryT{ID: chord.ID(m.From.ID), Addr: m.From.Addr, OK: true}
	n.mu.Lock()
	n.noteMembersLocked(m.From)
	adopted := n.cs.Notify(cand)
	var moved []wire.HandoffEntry
	if adopted {
		for seq, e := range n.index {
			key := n.cfg.Channel.Ref(seq).ID()
			if !n.cs.OwnsKey(key) {
				he := wire.HandoffEntry{Key: uint64(key), Seq: seq}
				for _, p := range e.providers {
					he.Providers = append(he.Providers, p.ent)
				}
				moved = append(moved, he)
				delete(n.index, seq)
			}
		}
	}
	n.mu.Unlock()
	if len(moved) > 0 {
		// Transfer asynchronously (retried: handoff merges are idempotent);
		// a lost handoff only delays re-registration.
		go func() { _, _ = n.callIdem(cand.Addr, &wire.Handoff{Entries: moved}) }()
	}
	return &wire.Ack{}
}

// onLookup serves the coordinator role: answer with providers, waiting up
// to MaxWait for the first registration (the paper's pending queue).
func (n *Node) onLookup(m *wire.Lookup) wire.Message {
	deadline := time.Now().Add(time.Duration(m.MaxWait) * time.Millisecond)
	for {
		n.mu.Lock()
		if !n.cs.OwnsKey(chord.ID(m.Key)) {
			n.mu.Unlock()
			return &wire.Error{Code: wire.CodeNotOwner, Msg: errNotOwner.Error()}
		}
		n.lm.lookupsServed.Inc()
		e := n.indexEntryLocked(m.Seq)
		if dropped := e.pruneLocked(time.Now()); dropped > 0 {
			n.lm.indexExpired.Add(uint64(dropped))
		}
		if len(e.providers) == 0 {
			// The owned entry is empty but a replica slice may hold it —
			// e.g. both the old owner and its first successor died before
			// any takeover or anti-entropy round reached this node.
			n.promoteReplicaSeqLocked(m.Key, m.Seq, e)
		}
		if len(e.providers) > 0 {
			// Capacity-weighted selection (admission.go): skip saturated
			// providers, rotate through the low-load cohort.
			resp := &wire.LookupResp{Seq: m.Seq, Providers: e.selectLocked(3)}
			n.mu.Unlock()
			return resp
		}
		wake := e.wake
		n.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return &wire.LookupResp{Seq: m.Seq}
		}
		select {
		case <-wake:
		case <-time.After(remain):
			return &wire.LookupResp{Seq: m.Seq}
		case <-n.closed:
			return &wire.Error{Code: wire.CodeShutdown, Msg: "shutting down"}
		}
	}
}

func (n *Node) indexEntryLocked(seq int64) *indexEntry {
	e := n.index[seq]
	if e == nil {
		e = &indexEntry{wake: make(chan struct{})}
		n.index[seq] = e
	}
	return e
}

func (n *Node) onInsert(m *wire.Insert) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.cs.OwnsKey(chord.ID(m.Key)) {
		return &wire.Error{Code: wire.CodeNotOwner, Msg: errNotOwner.Error()}
	}
	n.lm.insertsServed.Inc()
	n.noteMembersLocked(m.Holder)
	e := n.indexEntryLocked(m.Seq)
	if m.Unregister {
		for i, pr := range e.providers {
			if pr.ent.Addr == m.Holder.Addr {
				e.providers = append(e.providers[:i], e.providers[i+1:]...)
				n.enqueueReplicaLocked(m.Key, m.Seq, m.Holder, 0, time.Time{}, true)
				break
			}
		}
		return &wire.Ack{}
	}
	var expire time.Time
	if n.cfg.IndexTTL > 0 {
		expire = time.Now().Add(n.cfg.IndexTTL)
	}
	for i := range e.providers {
		if e.providers[i].ent.Addr == m.Holder.Addr {
			// Re-insert of a known provider: republication is the lease
			// heartbeat, so refresh rather than duplicate. The piggybacked
			// load report keeps selection current between republishes.
			e.providers[i].expire = expire
			e.providers[i].upBps = m.UpBps
			e.providers[i].loadMilli = m.LoadMilli
			n.enqueueReplicaLocked(m.Key, m.Seq, m.Holder, m.UpBps, expire, false)
			return &wire.Ack{}
		}
	}
	e.providers = append(e.providers, provRec{ent: m.Holder, upBps: m.UpBps, loadMilli: m.LoadMilli, expire: expire})
	e.wakeLocked() // release pending lookups
	n.enqueueReplicaLocked(m.Key, m.Seq, m.Holder, m.UpBps, expire, false)
	return &wire.Ack{}
}

func (n *Node) onGetChunk(m *wire.GetChunk) wire.Message {
	// The serve path counts with lock-free atomics: the only n.mu hold is
	// the unavoidable chunk-map read. Everything else is the admission
	// pipeline (admission.go): miss check first (a miss costs no upload
	// budget), then reserve the chunk's bytes against the pacer, sleep out
	// any pace delay, and only then put the bytes on the wire.
	n.mu.Lock()
	data, ok := n.chunks[m.Seq]
	n.mu.Unlock()
	if !ok {
		n.lm.chunksMissed.Inc()
		n.traceEvent("chunk.miss", seqDetail(m.Seq))
		return &wire.ChunkResp{Seq: m.Seq, LoadMilli: n.reportLoadMilli()}
	}
	// The requester declares its patience; zero (old clients, direct
	// callers) means "the server's default". Clamp to AdmitMaxWait so a
	// serve never sleeps past what the caller's RPC timeout can survive.
	patience := n.cfg.AdmitMaxWait
	if m.WaitMs > 0 {
		if p := time.Duration(m.WaitMs) * time.Millisecond; p < patience {
			patience = p
		}
	}
	wait, retry, admitted := n.pace.admit(len(data), patience)
	if !admitted {
		n.lm.busyRejections.Inc()
		n.traceEvent("chunk.shed", fmt.Sprintf("seq=%d retry=%s", m.Seq, retry))
		return &wire.ChunkResp{
			Seq:          m.Seq,
			Busy:         true,
			RetryAfterMs: uint32((retry + time.Millisecond - 1) / time.Millisecond),
			LoadMilli:    n.reportLoadMilli(),
		}
	}
	if wait > 0 {
		n.lm.pacedServes.Inc()
		n.lm.serveQueueSeconds.Observe(wait.Seconds())
		select {
		case <-time.After(wait):
			n.pace.release(true)
		case <-n.closed:
			n.pace.refund(len(data), true)
			return &wire.Error{Code: wire.CodeShutdown, Msg: "shutting down"}
		}
	}
	n.lm.chunksServed.Inc()
	n.traceEvent("chunk.serve", seqDetail(m.Seq))
	return &wire.ChunkResp{Seq: m.Seq, OK: true, Data: data, LoadMilli: n.reportLoadMilli()}
}

func (n *Node) onHandoff(m *wire.Handoff) wire.Message {
	n.lm.handoffEntries.Add(uint64(len(m.Entries)))
	n.traceEvent("handoff.recv", fmt.Sprintf("entries=%d", len(m.Entries)))
	n.mu.Lock()
	defer n.mu.Unlock()
	var expire time.Time
	if n.cfg.IndexTTL > 0 {
		// Handoffs carry no leases; restamp so inherited entries age out
		// unless their providers keep republishing.
		expire = time.Now().Add(n.cfg.IndexTTL)
	}
	for _, he := range m.Entries {
		e := n.indexEntryLocked(he.Seq)
		added := 0
	outer:
		for _, pr := range he.Providers {
			for _, have := range e.providers {
				if have.ent.Addr == pr.Addr {
					continue outer
				}
			}
			e.providers = append(e.providers, provRec{ent: pr, expire: expire})
			n.enqueueReplicaLocked(he.Key, he.Seq, pr, 0, expire, false)
			added++
		}
		if added > 0 && len(e.providers) > 0 {
			e.wakeLocked()
		}
	}
	return &wire.Ack{}
}

func (n *Node) onLeave(m *wire.Leave) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	// A graceful leaver handed its index to its successor; whatever slice
	// of it was replicated here is now stale (the new owner replicates its
	// own copy), so drop it rather than promote it later. The member cache
	// forgets it too — graceful departure is the one conclusive "gone for
	// good" signal (abrupt unreachability is not: that may be a partition).
	delete(n.replicas, m.From.Addr)
	n.members.Forget(m.From.Addr)
	if m.NewSucc != nil {
		n.cs.RemoveFailed(m.From.Addr)
		var list []entryT
		for _, e := range m.NewSucc {
			if e.Addr != m.From.Addr && e.Addr != n.cs.Self.Addr {
				list = append(list, entryT{ID: chord.ID(e.ID), Addr: e.Addr, OK: true})
			}
		}
		if len(list) > 0 {
			n.cs.AdoptSuccessorList(list[0], list[1:])
		}
	} else {
		if p := n.cs.Predecessor(); p.OK && p.Addr == m.From.Addr {
			if m.PredOK {
				n.cs.SetPredecessor(entryT{ID: chord.ID(m.NewPred.ID), Addr: m.NewPred.Addr, OK: true})
			} else {
				n.cs.ClearPredecessor()
			}
		}
	}
	return &wire.Ack{}
}

// ---------------------------------------------------------------------------
// Maintenance loops.

func (n *Node) stabilize() {
	n.lm.stabilizeRuns.Inc()
	n.traceEvent("ring.stabilize", "")
	n.checkPredecessor()
	n.mu.Lock()
	succ := n.cs.Successor()
	self := n.cs.Self
	if succ.Addr == self.Addr {
		// Ring of one: when the first peer notifies us it becomes our
		// predecessor; adopting it as successor closes the two-node ring
		// (the standard Chord bootstrap step).
		if p := n.cs.Predecessor(); p.OK && p.Addr != self.Addr {
			n.cs.SetSuccessor(p)
		}
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if !succ.OK {
		return
	}
	resp, err := n.call(succ.Addr, &wire.GetState{})
	if err != nil {
		// call already fed the breaker and purged the successor if the
		// evidence was conclusive; a lone drop just waits for next tick.
		return
	}
	st, ok := resp.(*wire.GetStateResp)
	if !ok {
		return
	}
	n.mu.Lock()
	// Passive member-cache feed: every stabilize answer names live ring
	// members worth remembering for the census.
	if st.PredOK {
		n.noteMembersLocked(st.Pred)
	}
	n.noteMembersLocked(st.Succs...)
	cur := n.cs.Successor()
	if cur.Addr == succ.Addr {
		if st.PredOK && st.Pred.Addr != self.Addr && chord.InOO(self.ID, chord.ID(st.Pred.ID), succ.ID) {
			n.cs.SetSuccessor(entryT{ID: chord.ID(st.Pred.ID), Addr: st.Pred.Addr, OK: true})
		} else {
			var list []entryT
			for _, e := range st.Succs {
				list = append(list, entryT{ID: chord.ID(e.ID), Addr: e.Addr, OK: true})
			}
			n.cs.AdoptSuccessorList(succ, list)
		}
	}
	target := n.cs.Successor()
	n.mu.Unlock()
	if target.OK && target.Addr != self.Addr {
		_, _ = n.call(target.Addr, &wire.Notify{From: wire.Entry{ID: uint64(self.ID), Addr: self.Addr}})
	}
}

// checkPredecessor is Chord's check_predecessor: ping the predecessor and
// clear it on failure. Without it, a dead predecessor is forever
// re-advertised to the node behind it and the ring never heals.
func (n *Node) checkPredecessor() {
	n.mu.Lock()
	pred := n.cs.Predecessor()
	self := n.cs.Self.Addr
	n.mu.Unlock()
	if !pred.OK || pred.Addr == self {
		return
	}
	if _, err := n.call(pred.Addr, &wire.Ping{}); err != nil && n.peerCondemned(pred.Addr, err) {
		n.mu.Lock()
		cleared := false
		promoted := 0
		if cur := n.cs.Predecessor(); cur.OK && cur.Addr == pred.Addr {
			n.cs.ClearPredecessor()
			cleared = true
			// The dead predecessor's key range falls to this node: promote
			// its replicated index entries before lookups arrive. (call's
			// own failure handling usually got here first; this covers the
			// paths where it did not.)
			promoted = n.promoteReplicasLocked(pred.Addr)
		}
		n.mu.Unlock()
		if cleared {
			n.traceEvent("ring.pred_cleared", "peer="+pred.Addr)
		}
		if promoted > 0 {
			n.traceEvent("replica.takeover", fmt.Sprintf("owner=%s entries=%d", pred.Addr, promoted))
		}
	}
}

func (n *Node) fixFinger() {
	n.mu.Lock()
	i, start := n.cs.NextFingerToFix()
	n.mu.Unlock()
	owner, _, _, _, err := n.FindOwner(uint64(start))
	if err != nil {
		return
	}
	n.lm.fingerFixes.Inc()
	n.mu.Lock()
	n.cs.SetFinger(i, entryT{ID: chord.ID(owner.ID), Addr: owner.Addr, OK: true})
	n.mu.Unlock()
}

// FindOwner routes iteratively from this node to the owner of key. A dead
// hop is purged from the local tables (via call's failure handling) and the
// route restarts, so routing self-heals in step with stabilization.
func (n *Node) FindOwner(key uint64) (owner wire.Entry, succs []wire.Entry, pred wire.Entry, predOK bool, err error) {
	for attempt := 0; attempt < 4; attempt++ {
		n.mu.Lock()
		hop, done := n.cs.NextHop(chord.ID(key))
		self := n.cs.Self
		n.mu.Unlock()
		if done && hop.Addr == self.Addr {
			// We own it ourselves.
			st := n.onGetState().(*wire.GetStateResp)
			return wire.Entry{ID: uint64(self.ID), Addr: self.Addr}, st.Succs, st.Pred, st.PredOK, nil
		}
		owner, succs, pred, predOK, err = n.findOwnerFrom(hop.Addr, key)
		if err == nil {
			return owner, succs, pred, predOK, nil
		}
		select {
		case <-n.closed:
			return wire.Entry{}, nil, wire.Entry{}, false, err
		case <-time.After(100 * time.Millisecond):
		}
	}
	return wire.Entry{}, nil, wire.Entry{}, false, err
}

// findOwnerFrom iterates FindSuccessor starting at a remote node. Each
// hop is retried with backoff (routing reads are idempotent); a hop that
// stays dead surfaces as an error and FindOwner re-routes around it.
func (n *Node) findOwnerFrom(start string, key uint64) (owner wire.Entry, succs []wire.Entry, pred wire.Entry, predOK bool, err error) {
	cur := start
	for hops := 0; hops < 2*chord.M; hops++ {
		resp, cerr := n.callIdem(cur, &wire.FindSuccessor{Key: key})
		if cerr != nil {
			return wire.Entry{}, nil, wire.Entry{}, false, cerr
		}
		fs, ok := resp.(*wire.FindSuccessorResp)
		if !ok {
			return wire.Entry{}, nil, wire.Entry{}, false, errUnexpected(resp)
		}
		if fs.Done {
			n.traceEvent("lookup.route", fmt.Sprintf("key=%016x hops=%d owner=%s", key, hops+1, fs.Owner.Addr))
			n.noteMembers(fs.Owner)
			n.noteMembers(fs.Succs...)
			return fs.Owner, fs.Succs, fs.Pred, fs.OK, nil
		}
		if fs.Owner.Addr == "" || fs.Owner.Addr == cur {
			return wire.Entry{}, nil, wire.Entry{}, false, errRoutingStuck
		}
		cur = fs.Owner.Addr
	}
	return wire.Entry{}, nil, wire.Entry{}, false, errTooManyHops
}

var (
	errRoutingStuck = errorString("live: routing made no progress")
	errTooManyHops  = errorString("live: routing exceeded hop bound")
)

type errorString string

func (e errorString) Error() string { return string(e) }

func errUnexpected(m wire.Message) error {
	return errorString("live: unexpected response kind")
}
