package live

import (
	"fmt"
	"time"

	"dco/internal/dht"
	"dco/internal/wire"
)

// serve dispatches one inbound RPC: kernel protocol messages (routing,
// ring/bucket maintenance, graceful leaves) go to the DHT backend first,
// everything else is the live data plane. It runs on transport
// goroutines, so everything it touches is guarded by n.mu; blocking waits
// (the lookup pending queue) happen outside the lock.
func (n *Node) serve(from string, req wire.Message) wire.Message {
	if _, ok := req.(*wire.Ping); ok {
		return &wire.Pong{}
	}
	n.mu.Lock()
	kern := n.kern
	n.mu.Unlock()
	if kern == nil {
		// NewNode has not finished wiring the kernel; a retryable nack is
		// better than racing construction.
		return &wire.Error{Code: wire.CodeShutdown, Msg: "starting"}
	}
	if resp, ok := kern.HandleRPC(from, req); ok {
		return resp
	}
	switch m := req.(type) {
	case *wire.Lookup:
		return n.onLookup(m)
	case *wire.Insert:
		return n.onInsert(m)
	case *wire.GetChunk:
		return n.onGetChunk(m)
	case *wire.Handoff:
		return n.onHandoff(m)
	case *wire.ReplicateBatch:
		return n.onReplicateBatch(m)
	case *wire.DigestReq:
		return n.onDigestReq(m)
	case *wire.CensusProbe:
		return n.onCensusProbe(m)
	case *wire.ManifestReq:
		return n.onManifestReq(m)
	case *wire.PollutionReport:
		return n.onPollutionReport(m)
	default:
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "unsupported request"}
	}
}

// onLookup serves the coordinator role: answer with providers, waiting up
// to MaxWait for the first registration (the paper's pending queue). The
// requester's propagated DeadlineMs budget clamps the hold — parking a
// lookup past the caller's deadline only produces an answer nobody is
// waiting for, while occupying a pending-queue slot.
func (n *Node) onLookup(m *wire.Lookup) wire.Message {
	waitMs := m.MaxWait
	if m.DeadlineMs > 0 && m.DeadlineMs < waitMs {
		waitMs = m.DeadlineMs
	}
	deadline := time.Now().Add(time.Duration(waitMs) * time.Millisecond)
	for {
		n.mu.Lock()
		if !n.kern.Owns(m.Key) {
			n.mu.Unlock()
			return &wire.Error{Code: wire.CodeNotOwner, Msg: errNotOwner.Error()}
		}
		n.lm.lookupsServed.Inc()
		e := n.indexEntryLocked(m.Seq)
		if dropped := e.pruneLocked(time.Now()); dropped > 0 {
			n.lm.indexExpired.Add(uint64(dropped))
		}
		if len(e.providers) == 0 {
			// The owned entry is empty but a replica slice may hold it —
			// e.g. both the old owner and its first successor died before
			// any takeover or anti-entropy round reached this node.
			n.promoteReplicaSeqLocked(m.Key, m.Seq, e)
		}
		if len(e.providers) > 0 {
			// Capacity-weighted selection (admission.go): skip saturated
			// providers, rotate through the low-load cohort; quarantined
			// providers are excluded outright (integrity.go).
			providers := e.selectLocked(3, n.health.Quarantined)
			if len(providers) > 0 {
				resp := &wire.LookupResp{Seq: m.Seq, Providers: providers}
				n.mu.Unlock()
				return resp
			}
			// Every registered provider is quarantined: park like an
			// empty entry — a clean one may register before the deadline.
		}
		wake := e.wake
		n.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return &wire.LookupResp{Seq: m.Seq}
		}
		select {
		case <-wake:
		case <-time.After(remain):
			return &wire.LookupResp{Seq: m.Seq}
		case <-n.closed:
			return &wire.Error{Code: wire.CodeShutdown, Msg: "shutting down"}
		}
	}
}

func (n *Node) indexEntryLocked(seq int64) *indexEntry {
	e := n.index[seq]
	if e == nil {
		e = &indexEntry{wake: make(chan struct{})}
		n.index[seq] = e
	}
	return e
}

func (n *Node) onInsert(m *wire.Insert) wire.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.kern.Owns(m.Key) {
		return &wire.Error{Code: wire.CodeNotOwner, Msg: errNotOwner.Error()}
	}
	n.lm.insertsServed.Inc()
	n.noteMembersLocked(m.Holder)
	e := n.indexEntryLocked(m.Seq)
	// Index hardening (integrity.go): rate limits, quarantined holders,
	// the live-edge horizon, and the per-entry provider cap all run before
	// the index mutates.
	if werr := n.insertAllowedLocked(m, e); werr != nil {
		return werr
	}
	n.noteManifestAd(m.Holder.Addr, m.ManifestHead)
	if m.Unregister {
		for i, pr := range e.providers {
			if pr.ent.Addr == m.Holder.Addr {
				e.providers = append(e.providers[:i], e.providers[i+1:]...)
				n.enqueueReplicaLocked(m.Key, m.Seq, m.Holder, 0, time.Time{}, true)
				break
			}
		}
		return &wire.Ack{}
	}
	var expire time.Time
	if n.cfg.IndexTTL > 0 {
		expire = time.Now().Add(n.cfg.IndexTTL)
	}
	for i := range e.providers {
		if e.providers[i].ent.Addr == m.Holder.Addr {
			// Re-insert of a known provider: republication is the lease
			// heartbeat, so refresh rather than duplicate. The piggybacked
			// load report keeps selection current between republishes.
			e.providers[i].expire = expire
			e.providers[i].upBps = m.UpBps
			e.providers[i].loadMilli = m.LoadMilli
			n.enqueueReplicaLocked(m.Key, m.Seq, m.Holder, m.UpBps, expire, false)
			return &wire.Ack{}
		}
	}
	e.providers = append(e.providers, provRec{ent: m.Holder, upBps: m.UpBps, loadMilli: m.LoadMilli, expire: expire})
	e.wakeLocked() // release pending lookups
	n.enqueueReplicaLocked(m.Key, m.Seq, m.Holder, m.UpBps, expire, false)
	return &wire.Ack{}
}

func (n *Node) onGetChunk(m *wire.GetChunk) wire.Message {
	// The serve path counts with lock-free atomics: the only n.mu hold is
	// the unavoidable chunk-map read. Everything else is the admission
	// pipeline (admission.go): miss check first (a miss costs no upload
	// budget), then reserve the chunk's bytes against the pacer, sleep out
	// any pace delay, and only then put the bytes on the wire.
	n.mu.Lock()
	data, ok := n.chunks[m.Seq]
	n.mu.Unlock()
	if !ok {
		n.lm.chunksMissed.Inc()
		n.traceEvent("chunk.miss", seqDetail(m.Seq))
		return n.stampManifestAd(&wire.ChunkResp{Seq: m.Seq, LoadMilli: n.reportLoadMilli()})
	}
	// The requester declares its patience; zero (old clients, direct
	// callers) means "the server's default". Clamp to AdmitMaxWait so a
	// serve never sleeps past what the caller's RPC timeout can survive,
	// and to the propagated per-call deadline budget so the provider sheds
	// work whose reply could not arrive in time anyway.
	patience := n.cfg.AdmitMaxWait
	if m.WaitMs > 0 {
		if p := time.Duration(m.WaitMs) * time.Millisecond; p < patience {
			patience = p
		}
	}
	deadlineBound := false
	if m.DeadlineMs > 0 {
		if p := time.Duration(m.DeadlineMs) * time.Millisecond; p < patience {
			patience = p
			deadlineBound = true
		}
	}
	wait, retry, admitted := n.pace.admit(len(data), patience)
	if !admitted {
		n.lm.busyRejections.Inc()
		if deadlineBound {
			// The deadline budget was the binding constraint: this serve was
			// shed specifically because the answer could not arrive in time.
			n.lm.deadlineSheds.Inc()
		}
		n.traceEvent("chunk.shed", fmt.Sprintf("seq=%d retry=%s", m.Seq, retry))
		return n.stampManifestAd(&wire.ChunkResp{
			Seq:          m.Seq,
			Busy:         true,
			RetryAfterMs: uint32((retry + time.Millisecond - 1) / time.Millisecond),
			LoadMilli:    n.reportLoadMilli(),
		})
	}
	if wait > 0 {
		n.lm.pacedServes.Inc()
		n.lm.serveQueueSeconds.Observe(wait.Seconds())
		select {
		case <-time.After(wait):
			n.pace.release(true)
		case <-n.closed:
			n.pace.refund(len(data), true)
			return &wire.Error{Code: wire.CodeShutdown, Msg: "shutting down"}
		}
	}
	n.lm.chunksServed.Inc()
	n.traceEvent("chunk.serve", seqDetail(m.Seq))
	return n.stampManifestAd(&wire.ChunkResp{Seq: m.Seq, OK: true, Data: data, LoadMilli: n.reportLoadMilli()})
}

func (n *Node) onHandoff(m *wire.Handoff) wire.Message {
	n.lm.handoffEntries.Add(uint64(len(m.Entries)))
	n.traceEvent("handoff.recv", fmt.Sprintf("entries=%d", len(m.Entries)))
	n.mu.Lock()
	defer n.mu.Unlock()
	var expire time.Time
	if n.cfg.IndexTTL > 0 {
		// Handoffs carry no leases; restamp so inherited entries age out
		// unless their providers keep republishing.
		expire = time.Now().Add(n.cfg.IndexTTL)
	}
	for _, he := range m.Entries {
		e := n.indexEntryLocked(he.Seq)
		added := 0
	outer:
		for _, pr := range he.Providers {
			for _, have := range e.providers {
				if have.ent.Addr == pr.Addr {
					continue outer
				}
			}
			e.providers = append(e.providers, provRec{ent: pr, expire: expire})
			n.enqueueReplicaLocked(he.Key, he.Seq, pr, 0, expire, false)
			added++
		}
		if added > 0 && len(e.providers) > 0 {
			e.wakeLocked()
		}
	}
	return &wire.Ack{}
}

// FindOwner routes from this node to key's owner via the configured DHT
// backend, returning the owner plus the fallback members to try when the
// owner is unreachable.
func (n *Node) FindOwner(key uint64) (owner dht.Member, fallbacks []dht.Member, err error) {
	return n.kern.FindOwner(key)
}

type errorString string

func (e errorString) Error() string { return string(e) }

func errUnexpected(m wire.Message) error {
	return errorString("live: unexpected response kind")
}
