package live

// backend.go is the one place the live node names a DHT backend type:
// the Config.DHT -> dht.Kernel factory, the Caller adapter that routes
// kernel RPCs through the node's retry/breaker stack, and the Events
// handlers that feed kernel membership activity back into the census
// cache, the index handoff path, and the replica store.

import (
	"fmt"
	"os"
	"time"

	"dco/internal/chordkern"
	"dco/internal/dht"
	"dco/internal/kademlia"
	"dco/internal/wire"
)

// defaultDHT resolves the backend when Config.DHT is unset: the DCO_DHT
// environment variable (which is also how CI matrixes the whole test
// suite over both backends), else chord.
func defaultDHT() string {
	if v := os.Getenv("DCO_DHT"); v != "" {
		return v
	}
	return "chord"
}

// newKernel builds the configured DHT backend. Called once from NewNode,
// after the transport, metrics, and retrier exist (the kernel shares the
// node's registry and calls through its breaker).
func (n *Node) newKernel() (dht.Kernel, error) {
	opts := dht.Options{
		Self:   n.self,
		Caller: nodeCaller{n},
		Events: dht.Events{
			Seen:         n.onKernSeen,
			RangeChanged: n.onKernRangeChanged,
			Departed:     n.onKernDeparted,
		},
		Registry: n.lm.reg,
		Trace:    n.cfg.Trace,
		Done:     n.closed,
	}
	backend := n.cfg.DHT
	if backend == "" {
		backend = defaultDHT()
	}
	switch backend {
	case "chord":
		return chordkern.New(chordkern.Config{
			SuccListSize:    n.cfg.SuccListSize,
			StabilizeEvery:  n.cfg.StabilizeEvery,
			FixFingersEvery: n.cfg.FixFingersEvery,
		}, opts), nil
	case "kademlia":
		refresh := n.cfg.KadRefreshEvery
		if refresh <= 0 {
			refresh = 4 * n.cfg.StabilizeEvery
		}
		return kademlia.New(kademlia.Config{
			K:            n.cfg.KadK,
			Alpha:        n.cfg.KadAlpha,
			RefreshEvery: refresh,
			ProbeEvery:   n.cfg.StabilizeEvery,
		}, opts), nil
	default:
		return nil, fmt.Errorf("live: unknown DHT backend %q (want chord or kademlia)", backend)
	}
}

// nodeCaller adapts the node's RPC stack to the dht.Caller seam: kernel
// calls get the same timeouts, retries, breaker accounting, and failure
// condemnation (feeding Kernel.PeerFailed) as the node's own traffic.
type nodeCaller struct{ n *Node }

func (c nodeCaller) Call(addr string, req wire.Message) (wire.Message, error) {
	return c.n.call(addr, req)
}

func (c nodeCaller) CallIdem(addr string, req wire.Message) (wire.Message, error) {
	return c.n.callIdem(addr, req)
}

// onKernSeen feeds members the kernel sighted in protocol traffic into
// the census member cache. The kernel already observed them itself, so
// only the cache is updated here.
func (n *Node) onKernSeen(ms ...dht.Member) {
	now := time.Now()
	n.mu.Lock()
	for _, m := range ms {
		n.members.Note(m, now)
	}
	n.mu.Unlock()
}

// onKernRangeChanged hands off index entries this node no longer owns
// after part of its key range moved to newOwner (Chord: a Notify adopted
// a closer predecessor; Kademlia: a closer contact joined). The transfer
// is asynchronous and retried — handoff merges are idempotent, and a lost
// handoff only delays re-registration.
func (n *Node) onKernRangeChanged(newOwner dht.Member) {
	if newOwner.Addr == "" || newOwner.Addr == n.self.Addr {
		return
	}
	n.mu.Lock()
	var moved []wire.HandoffEntry
	for seq, e := range n.index {
		key := uint64(n.cfg.Channel.Ref(seq).ID())
		if n.kern.Owns(key) {
			continue
		}
		he := wire.HandoffEntry{Key: key, Seq: seq}
		for _, p := range e.providers {
			he.Providers = append(he.Providers, p.ent)
		}
		moved = append(moved, he)
		delete(n.index, seq)
	}
	n.mu.Unlock()
	if len(moved) > 0 {
		go func() { _, _ = n.callIdem(newOwner.Addr, &wire.Handoff{Entries: moved}) }()
	}
}

// onKernDeparted reacts to a member's graceful leave — the one conclusive
// "gone for good" signal (abrupt unreachability may be a partition). The
// leaver handed its index to its heir, so whatever slice of it was
// replicated here is stale; drop it rather than promote it later, and
// forget the member in the census cache.
func (n *Node) onKernDeparted(m dht.Member) {
	n.mu.Lock()
	delete(n.replicas, m.Addr)
	n.members.Forget(m.Addr)
	n.mu.Unlock()
}
