package live

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a pacer deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testPacer: 8 Mbit/s = 1 MB/s refill, 100 KB burst, queue of 4.
func testPacer(clk *fakeClock) *pacer {
	p := newPacer(8_000_000, 100_000, 4)
	p.now = clk.now
	return p
}

func TestPacerAdmitsWithinBurst(t *testing.T) {
	clk := newFakeClock()
	p := testPacer(clk)
	for i := 0; i < 10; i++ { // 10 x 10 KB = exactly one burst
		wait, _, ok := p.admit(10_000, 0)
		if !ok || wait != 0 {
			t.Fatalf("admit %d inside the burst: wait=%v ok=%v", i, wait, ok)
		}
	}
	if l := p.loadMilli(); l != loadSaturatedMilli {
		t.Fatalf("load after one full burst = %d, want %d", l, loadSaturatedMilli)
	}
}

func TestPacerPacesBeyondBurst(t *testing.T) {
	clk := newFakeClock()
	p := testPacer(clk)
	if _, _, ok := p.admit(100_000, 0); !ok {
		t.Fatal("burst-sized admit rejected")
	}
	// The next 10 KB must wait 10ms (1 MB/s refill) — admissible only with
	// enough patience.
	wait, _, ok := p.admit(10_000, 50*time.Millisecond)
	if !ok {
		t.Fatal("paced admit within patience rejected")
	}
	if wait < 9*time.Millisecond || wait > 11*time.Millisecond {
		t.Fatalf("pace delay %v, want ~10ms", wait)
	}
	p.release(true)
}

func TestPacerShedsPastPatience(t *testing.T) {
	clk := newFakeClock()
	p := testPacer(clk)
	p.admit(100_000, 0)
	// 50 KB over budget needs 50ms; patience is 10ms -> shed with a
	// nonzero hint close to the projected start.
	_, retry, ok := p.admit(50_000, 10*time.Millisecond)
	if ok {
		t.Fatal("admit past patience accepted")
	}
	if retry < 45*time.Millisecond || retry > 55*time.Millisecond {
		t.Fatalf("retry hint %v, want ~50ms", retry)
	}
}

func TestPacerRefillDrainsDebt(t *testing.T) {
	clk := newFakeClock()
	p := testPacer(clk)
	p.admit(100_000, 0)
	clk.advance(50 * time.Millisecond) // refills 50 KB
	if l := p.loadMilli(); l != loadSaturatedMilli/2 {
		t.Fatalf("load after half-burst refill = %d, want %d", l, loadSaturatedMilli/2)
	}
	clk.advance(time.Second) // far more than the backlog
	if l := p.loadMilli(); l != 0 {
		t.Fatalf("load after full drain = %d, want 0", l)
	}
	if wait, _, ok := p.admit(10_000, 0); !ok || wait != 0 {
		t.Fatalf("post-drain admit: wait=%v ok=%v", wait, ok)
	}
}

func TestPacerQueueBound(t *testing.T) {
	clk := newFakeClock()
	p := testPacer(clk)
	p.admit(100_000, 0)
	// Fill the 4 waiter slots with paced admits.
	for i := 0; i < 4; i++ {
		if _, _, ok := p.admit(10_000, time.Second); !ok {
			t.Fatalf("waiter %d rejected with free queue slots", i)
		}
	}
	if d := p.queueDepth(); d != 4 {
		t.Fatalf("queue depth %d, want 4", d)
	}
	// The fifth waiter is shed no matter how patient it is.
	_, retry, ok := p.admit(10_000, time.Minute)
	if ok {
		t.Fatal("admit beyond the queue bound accepted")
	}
	if retry <= 0 {
		t.Fatal("queue-full shed carried no retry hint")
	}
	// Releasing a slot re-opens admission.
	p.release(true)
	if _, _, ok := p.admit(10_000, time.Second); !ok {
		t.Fatal("admit after release rejected")
	}
}

func TestPacerRefundRestoresBudget(t *testing.T) {
	clk := newFakeClock()
	p := testPacer(clk)
	p.admit(100_000, 0)
	wait, _, ok := p.admit(20_000, time.Second)
	if !ok || wait <= 0 {
		t.Fatalf("paced admit: wait=%v ok=%v", wait, ok)
	}
	p.refund(20_000, true)
	if l := p.loadMilli(); l != loadSaturatedMilli {
		t.Fatalf("load after refund = %d, want %d", l, loadSaturatedMilli)
	}
	if d := p.queueDepth(); d != 0 {
		t.Fatalf("queue depth after refund = %d, want 0", d)
	}
}

func TestPacerUnlimited(t *testing.T) {
	p := newPacer(0, 0, 0)
	for i := 0; i < 100; i++ {
		if wait, _, ok := p.admit(1<<20, 0); !ok || wait != 0 {
			t.Fatalf("unlimited pacer paced or shed: wait=%v ok=%v", wait, ok)
		}
	}
	if l := p.loadMilli(); l != 0 {
		t.Fatalf("unlimited pacer reports load %d", l)
	}
}

func TestPacerLoadCeiling(t *testing.T) {
	clk := newFakeClock()
	p := newPacer(8_000_000, 1000, 1<<20)
	p.now = clk.now
	for i := 0; i < 100; i++ {
		p.admit(1000, time.Hour)
	}
	if l := p.loadMilli(); l != loadCeilingMilli {
		t.Fatalf("load = %d, want ceiling %d", l, loadCeilingMilli)
	}
}
