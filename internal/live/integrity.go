package live

// Byzantine data-plane defense (see DESIGN.md, "Threat model & pollution
// defense"). The overlay lets any peer serve chunks and insert index
// entries — the paper's openness is also its attack surface. This file is
// the integrity layer closing it:
//
//   - Chunk manifests: the source mints a (seq → SHA-256, tag) row per
//     generated chunk. Rows travel on demand (ManifestReq/ManifestResp),
//     ride replication batches with the chunk index, and their coverage is
//     advertised cheaply via ManifestHead/ManifestDigest piggybacked on
//     Insert and ChunkResp. The tag authenticates a row against the
//     channel parameters, so any peer can relay rows it did not mint.
//   - One verification choke point: storeChunk refuses any payload that
//     fails manifest (or, uncovered, generator) verification — nothing
//     enters the buffer map or gets re-served unverified.
//   - Quarantine: a peer that serves polluted bytes is charged integrity
//     demerits (internal/health); repeat offenders are excluded from
//     provider selection outright, reported to the chunk's coordinator,
//     and — once enough distinct reporters agree — scrubbed from the index.
//   - Index hardening: per-holder insert rate limits, a provider cap per
//     entry, and a live-edge horizon bound what a spammer can register.
//
// What is deliberately NOT defended: Sybil identities and eclipse
// placement. The tag is keyed on public channel parameters (a stand-in
// for real source signatures), reporter identities are unauthenticated
// (hence the distinct-reporter threshold), and a spammer can mint holder
// addresses faster than any per-address limit can bind. DESIGN.md says so
// out loud.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"dco/internal/dht"
	"dco/internal/stream"
	"dco/internal/wire"
)

// manifestRec is one cached manifest row: the chunk's payload hash and the
// channel-keyed tag that makes the row relayable.
type manifestRec struct {
	hash [sha256.Size]byte
	tag  [sha256.Size]byte
}

// manifestTag authenticates a manifest row against the channel parameters:
// SHA-256 over a domain tag, the channel identity, seq, and the payload
// hash. It is a stand-in for a source signature — anyone who knows the
// channel parameters can mint tags, which is exactly the Sybil limitation
// DESIGN.md documents; what it does buy is that rows cannot be corrupted
// or replayed across channels/seqs while being relayed peer-to-peer.
func manifestTag(p stream.Params, seq int64, hash [sha256.Size]byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte("dco/manifest/v1\x00"))
	h.Write([]byte(p.Channel))
	var num [16]byte
	binary.BigEndian.PutUint64(num[:8], uint64(p.ChunkBits))
	binary.BigEndian.PutUint64(num[8:], uint64(seq))
	h.Write(num[:])
	h.Write(hash[:])
	var tag [sha256.Size]byte
	h.Sum(tag[:0])
	return tag
}

// addManifestEntrySource mints and caches the manifest row for a chunk the
// source just generated (the one place rows originate).
func (n *Node) addManifestEntrySource(seq int64, data []byte) {
	hash := sha256.Sum256(data)
	rec := manifestRec{hash: hash, tag: manifestTag(n.cfg.Channel, seq, hash)}
	n.manMu.Lock()
	n.manifest[seq] = rec
	if seq+1 > n.manHead {
		n.manHead = seq + 1
	}
	n.trimManifestLocked()
	n.manMu.Unlock()
}

// noteManifestEntry folds in a row learned from a peer (ManifestResp or a
// replication batch), verifying its tag first. Returns false for rows that
// fail authentication — the caller decides whether that is chargeable.
func (n *Node) noteManifestEntry(seq int64, hash, tag []byte) bool {
	if seq < 0 || len(hash) != sha256.Size || len(tag) != sha256.Size {
		return false
	}
	var rec manifestRec
	copy(rec.hash[:], hash)
	copy(rec.tag[:], tag)
	if manifestTag(n.cfg.Channel, seq, rec.hash) != rec.tag {
		return false
	}
	n.manMu.Lock()
	n.manifest[seq] = rec
	if seq+1 > n.manHead {
		n.manHead = seq + 1
	}
	n.trimManifestLocked()
	n.manMu.Unlock()
	return true
}

// trimManifestLocked ages the oldest rows out once the cache exceeds the
// configured window. Caller holds manMu.
func (n *Node) trimManifestLocked() {
	w := n.cfg.ManifestWindow
	if w <= 0 || len(n.manifest) <= w {
		return
	}
	cut := n.manHead - int64(w)
	for seq := range n.manifest {
		if seq < cut {
			delete(n.manifest, seq)
		}
	}
}

// manifestLookup returns the cached row for seq.
func (n *Node) manifestLookup(seq int64) (manifestRec, bool) {
	n.manMu.Lock()
	rec, ok := n.manifest[seq]
	n.manMu.Unlock()
	return rec, ok
}

// manifestAd returns the coverage advertisement piggybacked on Insert and
// ChunkResp: the exclusive head of this node's verified coverage and a
// fingerprint of the newest row (0, 0 when the cache is empty).
func (n *Node) manifestAd() (head int64, digest uint64) {
	n.manMu.Lock()
	defer n.manMu.Unlock()
	if n.manHead == 0 {
		return 0, 0
	}
	if rec, ok := n.manifest[n.manHead-1]; ok {
		h := fnv.New64a()
		h.Write(rec.hash[:])
		digest = h.Sum64()
	}
	return n.manHead, digest
}

// stampManifestAd fills a ChunkResp's coverage advertisement in place.
func (n *Node) stampManifestAd(cr *wire.ChunkResp) *wire.ChunkResp {
	cr.ManifestHead, cr.ManifestDigest = n.manifestAd()
	return cr
}

// manifestHeadEstimate is the verified live-edge estimate the insert
// horizon is measured from: the newest seq this node generated, buffered,
// or holds an authenticated manifest row for. -1 = no idea.
func (n *Node) manifestHeadEstimate() int64 {
	n.manMu.Lock()
	head := n.manHead - 1
	n.manMu.Unlock()
	return head
}

// manifestReqMax bounds how many rows one ManifestResp carries (80 bytes
// encoded per row keeps a full response far under MaxFrame).
const manifestReqMax = 512

// manFetchEvery rate-limits ad-triggered background manifest fetches: an
// ad is an unauthenticated hint, so it may cost this node at most one
// round-trip per second no matter who advertises what.
const manFetchEvery = time.Second

// noteManifestAd reacts to a piggybacked coverage advertisement from addr:
// when it claims rows past this node's verified head, fetch them (rows
// self-authenticate, so the worst a lying ad costs is the rate-limited
// round-trip). This is how coordinators that never fetch chunks still
// build manifest coverage for the horizon check and replication piggyback.
func (n *Node) noteManifestAd(addr string, head int64) {
	if head <= 0 || addr == "" || addr == n.Addr() {
		return
	}
	n.manMu.Lock()
	trigger := head > n.manHead && time.Since(n.manFetchAt) >= manFetchEvery
	from := n.manHead
	if trigger {
		n.manFetchAt = time.Now()
	}
	n.manMu.Unlock()
	if !trigger {
		return
	}
	// Untracked goroutine (fetchOnce precedent): call-timeout bounded.
	go func() {
		resp, err := n.call(addr, &wire.ManifestReq{FromSeq: from, Max: manifestReqMax})
		if err != nil {
			return
		}
		if mr, ok := resp.(*wire.ManifestResp); ok {
			n.lm.manifestFetches.Inc()
			for _, e := range mr.Entries {
				n.noteManifestEntry(e.Seq, e.Hash, e.Tag)
			}
		}
	}()
}

// onManifestReq serves this node's manifest rows for [FromSeq,
// FromSeq+Max). Any node answers with whatever it holds — rows are
// self-authenticating, so there is no owner check.
func (n *Node) onManifestReq(m *wire.ManifestReq) wire.Message {
	max := int(m.Max)
	if max <= 0 || max > manifestReqMax {
		max = manifestReqMax
	}
	n.lm.manifestServes.Inc()
	n.manMu.Lock()
	resp := &wire.ManifestResp{Head: n.manHead}
	for seq := m.FromSeq; seq < m.FromSeq+int64(max); seq++ {
		if rec, ok := n.manifest[seq]; ok {
			resp.Entries = append(resp.Entries, wire.ManifestEntry{
				Seq:  seq,
				Hash: append([]byte(nil), rec.hash[:]...),
				Tag:  append([]byte(nil), rec.tag[:]...),
			})
		}
	}
	n.manMu.Unlock()
	return resp
}

// ensureManifest makes a best-effort attempt to cover seq with a manifest
// row before verification, asking the serving provider first (it just
// proved it has the chunk; it usually has the row too) and the chunk's
// coordinator as fallback. Verification does not depend on success — the
// generator check covers uncovered seqs — so one round each is plenty.
func (n *Node) ensureManifest(seq int64, provider string) {
	if _, ok := n.manifestLookup(seq); ok {
		return
	}
	from := seq - 64
	if from < 0 {
		from = 0
	}
	req := &wire.ManifestReq{FromSeq: from, Max: manifestReqMax}
	for _, addr := range n.manifestSources(seq, provider) {
		resp, err := n.call(addr, req)
		if err != nil {
			continue
		}
		mr, ok := resp.(*wire.ManifestResp)
		if !ok {
			continue
		}
		n.lm.manifestFetches.Inc()
		for _, e := range mr.Entries {
			n.noteManifestEntry(e.Seq, e.Hash, e.Tag)
		}
		if _, ok := n.manifestLookup(seq); ok {
			return
		}
	}
}

// manifestSources lists who to ask for manifest rows covering seq: the
// serving provider, then the chunk's coordinator.
func (n *Node) manifestSources(seq int64, provider string) []string {
	var out []string
	if provider != "" && provider != n.Addr() {
		out = append(out, provider)
	}
	key := uint64(n.cfg.Channel.Ref(seq).ID())
	if owner, _, err := n.FindOwner(key); err == nil && owner.Addr != n.Addr() && owner.Addr != provider {
		out = append(out, owner.Addr)
	}
	return out
}

// chunkOK is the verification predicate behind the buffer choke point:
// manifest hash when the seq is covered (authoritative — no fallback on
// mismatch), the deterministic generator otherwise.
func (n *Node) chunkOK(seq int64, data []byte) bool {
	if rec, ok := n.manifestLookup(seq); ok {
		return sha256.Sum256(data) == rec.hash
	}
	return VerifyChunkPayload(n.cfg.Channel, seq, data)
}

// punishPoisoner charges addr for serving a polluted chunk: blacklist (it
// is not asked again this cooldown), an integrity demerit (enough of them
// quarantines it from selection entirely), and a best-effort pollution
// report to the chunk's coordinator so the index stops advertising it.
func (n *Node) punishPoisoner(addr string, seq int64) {
	if addr == "" {
		return
	}
	n.blacklistProvider(addr)
	if n.health.IntegrityDemerit(addr) {
		n.noteQuarantined(addr, "demerits")
	}
	n.reportPollution(addr, seq)
}

// noteQuarantined records a quarantine entry (either trigger path).
func (n *Node) noteQuarantined(addr, why string) {
	n.lm.peersQuarantined.Inc()
	n.traceEvent("peer.quarantine", "peer="+addr+" why="+why)
	n.mu.Lock()
	n.quarLog[addr] = true
	n.mu.Unlock()
}

// pollutionReportCooldown bounds how often this node re-accuses the same
// peer — one report per offender per window carries all the signal.
const pollutionReportCooldown = 5 * time.Second

// reportPollution sends one PollutionReport for target, at most once per
// target per cooldown, to up to three coordinators: seq's coordinator
// (the one node that can scrub the polluted entry) and two salted
// per-target rendezvous points, so that accusations from viewers who hit
// the same poisoner on different chunks still converge on a common tally.
// The salt keeps a rendezvous off the target's own ring position (a node
// owns its own address hash and would shrug off the accusation); two of
// them make "both rendezvous owners are the accused or its accomplices"
// vanishingly unlikely. Fire-and-forget: the report is an optimization
// (the reporter already protects itself via demerits); losing one costs
// nothing but time.
func (n *Node) reportPollution(target string, seq int64) {
	n.mu.Lock()
	if at, ok := n.reportedAt[target]; ok && time.Since(at) < pollutionReportCooldown {
		n.mu.Unlock()
		return
	}
	if n.reportedAt == nil {
		n.reportedAt = make(map[string]time.Time)
	}
	n.reportedAt[target] = time.Now()
	n.mu.Unlock()

	key := uint64(n.cfg.Channel.Ref(seq).ID())
	msg := &wire.PollutionReport{
		From:   n.wireSelf(),
		Key:    key,
		Seq:    seq,
		Target: wire.Entry{ID: dht.IDOf(target), Addr: target},
	}
	n.lm.pollutionReportsSent.Inc()
	// Untracked goroutine by design (like fetchOnce's hedge legs): it is
	// bounded by the call timeouts and a closed transport fails it fast.
	go func() {
		sent := make(map[string]bool, 3)
		deliver := func(k uint64) {
			owner, _, err := n.FindOwner(k)
			if err != nil || sent[owner.Addr] || owner.Addr == target {
				return
			}
			sent[owner.Addr] = true
			if owner.Addr == n.Addr() {
				n.onPollutionReport(msg)
				return
			}
			_, _ = n.call(owner.Addr, msg)
		}
		deliver(key)
		deliver(dht.IDOf("pollution/1/" + target))
		deliver(dht.IDOf("pollution/2/" + target))
	}()
}

// onPollutionReport tallies an accusation against m.Target. Once
// PollutionReporters distinct reporters accuse the same peer within the
// quarantine window, the coordinator force-quarantines it and scrubs its
// provider rows from the owned index (with unregister ops replicated, so
// the scrub survives failover). Reporter identities are unauthenticated —
// the threshold is what keeps one slanderer from evicting a peer.
func (n *Node) onPollutionReport(m *wire.PollutionReport) wire.Message {
	if m.Target.Addr == "" || m.From.Addr == "" || m.From.Addr == m.Target.Addr {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "malformed pollution report"}
	}
	n.lm.pollutionReportsSeen.Inc()
	if m.Target.Addr == n.Addr() {
		// Accusations against this node are noted (counter above) but it
		// will not quarantine itself; honest nodes never serve polluted
		// bytes, so these are either slander or a corrupting link.
		return &wire.Ack{}
	}
	window := n.cfg.QuarantineTTL
	if window <= 0 {
		window = 30 * time.Second
	}
	now := time.Now()
	n.mu.Lock()
	reporters := n.pollution[m.Target.Addr]
	if reporters == nil {
		reporters = make(map[string]time.Time)
		n.pollution[m.Target.Addr] = reporters
		// Bound the tally table: a reporter-spammer must not grow it
		// without limit. Dropping the oldest tallies only delays justice.
		if len(n.pollution) > 1024 {
			for a, rs := range n.pollution {
				stale := true
				for _, at := range rs {
					if now.Sub(at) < window {
						stale = false
						break
					}
				}
				if stale && a != m.Target.Addr {
					delete(n.pollution, a)
				}
			}
		}
	}
	reporters[m.From.Addr] = now
	for a, at := range reporters {
		if now.Sub(at) >= window {
			delete(reporters, a)
		}
	}
	distinct := len(reporters)
	trip := distinct >= n.cfg.PollutionReporters && !n.health.Quarantined(m.Target.Addr)
	var scrubbed int
	if trip {
		scrubbed = n.scrubProviderLocked(m.Target.Addr)
	}
	n.mu.Unlock()
	if trip {
		n.health.ForceQuarantine(m.Target.Addr)
		n.noteQuarantined(m.Target.Addr, fmt.Sprintf("reports=%d scrubbed=%d", distinct, scrubbed))
	}
	return &wire.Ack{}
}

// scrubProviderLocked removes every provider row addr holds in the owned
// index, replicating unregisters so the scrub survives coordinator
// failover. Returns how many rows were removed. Caller holds n.mu.
func (n *Node) scrubProviderLocked(addr string) int {
	scrubbed := 0
	for seq, e := range n.index {
		for i, pr := range e.providers {
			if pr.ent.Addr == addr {
				e.providers = append(e.providers[:i], e.providers[i+1:]...)
				key := uint64(n.cfg.Channel.Ref(seq).ID())
				n.enqueueReplicaLocked(key, seq, pr.ent, 0, time.Time{}, true)
				scrubbed++
				break
			}
		}
	}
	return scrubbed
}

// ---------------------------------------------------------------------------
// Index hardening: what onInsert checks before accepting a registration.

// insertBucket is one holder's insert token bucket.
type insertBucket struct {
	tokens float64
	last   time.Time
}

// insertAllowedLocked vets one Insert against the pollution defenses:
// quarantined holders are refused, per-holder insert rates are capped
// (token bucket, burst 2x), registrations past the live-edge horizon are
// rejected, and full entries accept no new providers. nil = allowed.
// Unregisters only pay the rate limit — removing rows is never refused
// for capacity reasons. Caller holds n.mu.
func (n *Node) insertAllowedLocked(m *wire.Insert, e *indexEntry) *wire.Error {
	if rate := n.cfg.InsertRate; rate > 0 {
		now := time.Now()
		b := n.insRate[m.Holder.Addr]
		if b == nil {
			// Bound the bucket table like the other per-peer maps.
			if len(n.insRate) > 4096 {
				cutoff := now.Add(-10 * time.Second)
				for a, ob := range n.insRate {
					if ob.last.Before(cutoff) {
						delete(n.insRate, a)
					}
				}
			}
			b = &insertBucket{tokens: 2 * rate, last: now}
			n.insRate[m.Holder.Addr] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * rate
		if max := 2 * rate; b.tokens > max {
			b.tokens = max
		}
		b.last = now
		if b.tokens < 1 {
			n.lm.insertsRateLimited.Inc()
			return &wire.Error{Code: wire.CodeBusy, Msg: "live: insert rate limited"}
		}
		b.tokens--
	}
	if m.Unregister {
		return nil
	}
	if n.health.Quarantined(m.Holder.Addr) {
		n.lm.insertsRejected.Inc()
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "live: holder quarantined"}
	}
	if horizon := n.cfg.InsertHorizon; horizon > 0 {
		edge := n.latestGen
		if mh := n.manifestHeadEstimate(); mh > edge {
			edge = mh
		}
		if edge >= 0 && m.Seq > edge+int64(horizon) {
			n.lm.insertsRejected.Inc()
			return &wire.Error{Code: wire.CodeBadRequest, Msg: "live: seq beyond live-edge horizon"}
		}
	}
	if lim := n.cfg.MaxProvidersPerSeq; lim > 0 && len(e.providers) >= lim {
		for i := range e.providers {
			if e.providers[i].ent.Addr == m.Holder.Addr {
				return nil // refresh of an existing row, not growth
			}
		}
		n.lm.insertsRejected.Inc()
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "live: provider cap reached"}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Soak oracles.

// VerifyBuffered re-verifies every buffered chunk against the generator
// and returns how many fail — the byzantine soak's "zero polluted chunks
// accepted" gate reads it. The buffer choke point makes nonzero a bug.
func (n *Node) VerifyBuffered() int {
	n.mu.Lock()
	snapshot := make(map[int64][]byte, len(n.chunks))
	for seq, data := range n.chunks {
		snapshot[seq] = data
	}
	n.mu.Unlock()
	bad := 0
	for seq, data := range snapshot {
		if !VerifyChunkPayload(n.cfg.Channel, seq, data) {
			bad++
		}
	}
	return bad
}

// EverQuarantined lists every peer this node quarantined at any point
// (quarantines expire; this log does not — soak gates read it).
func (n *Node) EverQuarantined() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.quarLog))
	for a := range n.quarLog {
		out = append(out, a)
	}
	return out
}

// QuarantinedPeers lists the peers currently under quarantine.
func (n *Node) QuarantinedPeers() []string { return n.health.QuarantinedPeers() }
