package live

// Ring census & split-brain merge (see DESIGN.md, "Partitions & ring merge").
//
// A transient network partition bisects the overlay into two
// self-consistent networks. Routine maintenance alone can never re-merge
// them: each half's tables only reference members of that half, and every
// maintenance action preserves whatever network the node is on. Three
// pieces close the hole, all backend-neutral:
//
//  1. A bounded member cache (dht.MemberCache) remembers previously-seen
//     members, fed passively from the kernel's Seen events and live-plane
//     traffic — and deliberately NOT purged when a member becomes
//     unreachable, since an unreachable member may be on the far side of a
//     partition.
//  2. A periodic low-rate census probes a few cached members outside the
//     current membership view (Kernel.View). A probe answered by a member
//     absent from our view whose view is likewise missing us flags a
//     suspected split; routing this node's own ID through the foreign
//     member (Kernel.FindOwnerFrom) confirms it — in a single network that
//     lookup lands back on self (Chord: the ring closes; Kademlia: self is
//     XOR-distance zero from its own ID, and its neighbors know it).
//  3. Kernel.Merge folds the foreign network into the local tables and
//     seeds the backend's convergence cascade (Chord: monotone candidate
//     folds + notifies; Kademlia: bucket inserts + an advertising
//     self-lookup). Post-merge, index reconciliation (replication flush +
//     anti-entropy + bounded re-registration) repairs ownership ranges
//     immediately instead of waiting for republish rotation.

import (
	"fmt"
	"sort"
	"time"

	"dco/internal/dht"
	"dco/internal/wire"
)

// maxReconcileInserts bounds how many chunk registrations one post-merge
// reconciliation re-sends; the republish rotation covers the remainder.
const maxReconcileInserts = 512

// noteMembersLocked records sightings of overlay members in the census
// member cache. Deliberately NOT fed to the kernel: live-plane entries
// (insert holders, census views) are third-party claims, and a Kademlia
// routing table only admits contacts it heard from directly — its own
// protocol traffic, lookup answers, and the confirmed Merge path. Letting
// unverified claims shift XOR ownership would bounce in-flight index ops
// off fabricated or stale members. Caller holds n.mu; handlers already
// under the lock use this variant, everything else goes through
// noteMembers.
func (n *Node) noteMembersLocked(es ...wire.Entry) {
	now := time.Now()
	for _, e := range es {
		if e.Addr == "" {
			continue
		}
		n.members.Note(dht.FromWire(e), now)
	}
}

// noteMembers is noteMembersLocked for call sites not holding n.mu.
func (n *Node) noteMembers(es ...wire.Entry) {
	n.mu.Lock()
	n.noteMembersLocked(es...)
	n.mu.Unlock()
}

// ringViewLocked is this node's current membership view on the wire: the
// kernel's View (self always first). Caller holds n.mu (View is a pure
// read). A view of size one means a lone node.
func (n *Node) ringViewLocked() []wire.Entry {
	view := n.kern.View()
	out := make([]wire.Entry, 0, len(view))
	for _, m := range view {
		out = append(out, m.Wire())
	}
	return out
}

// ringDigest hashes a membership view: FNV-1a over the member addresses in
// view order (ringViewLocked's output is deterministic for a given state,
// so equal views digest equally). Probe and response carry it so unchanged
// views compare in O(1).
func ringDigest(view []wire.Entry) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range view {
		for i := 0; i < len(e.Addr); i++ {
			h ^= uint64(e.Addr[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	return h
}

// viewHas reports whether a membership view contains addr.
func viewHas(view []wire.Entry, addr string) bool {
	for _, e := range view {
		if e.Addr == addr {
			return true
		}
	}
	return false
}

// splitSuspected is the cheap split filter between this node's view and a
// census peer's: suspicious when neither endpoint appears in the other's
// view. Requiring the two views to be *fully* disjoint would be too
// strong: view tails go stale after a partition purge, and a single
// far-side breadcrumb lingering in one tail would mask a real split
// forever. Mutual absence is only a *suspicion* — distant nodes of one
// large network also satisfy it — and maybeMerge's confirmation lookup
// supplies the proof at the cost of one bounded lookup per suspicion.
func splitSuspected(self string, mine []wire.Entry, peer wire.Entry, theirs []wire.Entry) bool {
	return !viewHas(mine, peer.Addr) && !viewHas(theirs, self)
}

// census is the periodic beacon loop: probe up to CensusProbes cached
// members outside the current membership view and compare views. Probes
// use the single-shot call path — a failed probe is itself the signal (the
// member is still unreachable), and its breaker bookkeeping is how a
// healed peer's circuit resets the moment a probe gets through.
func (n *Node) census() {
	n.mu.Lock()
	view := n.ringViewLocked()
	inView := make(map[string]bool, len(view))
	for _, e := range view {
		inView[e.Addr] = true
	}
	var cands []dht.Member
	for _, m := range n.members.Members() {
		if !inView[m.Addr] {
			cands = append(cands, m)
		}
	}
	var targets []dht.Member
	k := n.cfg.CensusProbes
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		targets = append(targets, cands[int(n.censusCursor%uint64(len(cands)))])
		n.censusCursor++
	}
	self := n.wireSelfLocked()
	n.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	digest := ringDigest(view)
	lone := len(view) == 1
	probe := &wire.CensusProbe{From: self, Digest: digest, Members: view}
	for _, t := range targets {
		n.lm.censusProbes.Inc()
		resp, err := n.call(t.Addr, probe)
		if err != nil {
			continue
		}
		cr, ok := resp.(*wire.CensusResp)
		if !ok {
			continue
		}
		n.lm.censusAnswered.Inc()
		n.noteMembers(cr.From)
		n.noteMembers(cr.Members...)
		if lone {
			// Lone-node recovery: a lone node re-bootstraps through any
			// member that answers. No confirmation lookup — a lone node
			// claims every key, so a stale far-side view could route the
			// confirmation straight back here and fake "same network"
			// forever.
			n.maybeMerge(cr.From, cr.Members, true)
			continue
		}
		if cr.Digest == digest {
			continue // identical view: same network, nothing to do
		}
		if !splitSuspected(self.Addr, view, cr.From, cr.Members) {
			continue // shared neighborhood: same network, different vantage
		}
		n.maybeMerge(cr.From, cr.Members, false)
	}
}

// onCensusProbe answers a census probe with this node's membership view.
// The response is built immediately (the prober is waiting on a transport
// goroutine); split handling runs asynchronously, so a one-way probe heals
// both halves — the responder detects the same disjointness the prober
// will, and both merge toward each other (Kernel.Merge is monotone /
// idempotent per backend, which is what makes the simultaneous merges
// safe).
func (n *Node) onCensusProbe(m *wire.CensusProbe) wire.Message {
	n.mu.Lock()
	view := n.ringViewLocked()
	n.noteMembersLocked(m.From)
	n.noteMembersLocked(m.Members...)
	self := n.wireSelfLocked()
	n.mu.Unlock()
	digest := ringDigest(view)
	lone := len(view) == 1
	if m.From.Addr != self.Addr && m.Digest != digest {
		if lone || splitSuspected(self.Addr, view, m.From, m.Members) {
			theirs := append([]wire.Entry{m.From}, m.Members...)
			go n.maybeMerge(m.From, theirs, lone)
		}
	}
	return &wire.CensusResp{From: self, Digest: digest, Members: view}
}

// maybeMerge runs the split-brain merge protocol against a foreign member
// whose membership view was disjoint from ours. Merge attempts are
// serialized by the merging flag (detection fires concurrently from the
// census loop and inbound probes); a skipped attempt is retried by the
// next census round.
//
// lone skips the confirmation lookup: a lone node adopts any live member
// directly (see census for why confirmation would be unsound there).
func (n *Node) maybeMerge(foreign wire.Entry, theirs []wire.Entry, lone bool) {
	if foreign.Addr == "" || foreign.Addr == n.Addr() {
		return
	}
	if !n.merging.CompareAndSwap(false, true) {
		return
	}
	defer n.merging.Store(false)
	select {
	case <-n.closed:
		return
	default:
	}
	start := time.Now()

	target := dht.FromWire(foreign)
	if !lone {
		// Confirmation: route our own ID through the foreign member. In a
		// single network (however large — distant nodes legitimately have
		// disjoint views) the lookup lands back on this node; a stranger
		// answering proves the foreign member is on another network, and
		// that stranger is exactly the node whose claimed range covers our
		// ID — the one node guaranteed to adopt us into its tables.
		owner, _, err := n.kern.FindOwnerFrom(foreign.Addr, n.self.ID)
		if err != nil {
			return // unreachable or mid-churn: the next census round retries
		}
		if owner.Addr == n.Addr() {
			return // same network: disjoint views were a false alarm
		}
		target = owner
	}
	n.lm.splitsDetected.Inc()
	n.traceEvent("ring.split", fmt.Sprintf("via=%s owner=%s lone=%v", foreign.Addr, target.Addr, lone))

	// Fold the foreign members into the kernel's tables and let the
	// backend seed its convergence cascade. Members that tighten nothing
	// still land in the member cache for future censuses.
	n.noteMembers(theirs...)
	var others []dht.Member
	for _, e := range theirs {
		if e.Addr == "" || e.Addr == n.self.Addr {
			continue
		}
		others = append(others, dht.FromWire(e))
	}
	n.kern.Merge(target, others)
	n.lm.ringMerges.Inc()
	n.lm.mergeSeconds.Observe(time.Since(start).Seconds())
	n.traceEvent("ring.merge", fmt.Sprintf("target=%s lone=%v", target.Addr, lone))

	n.reconcile()
}

// reconcile is the post-merge index repair: push pending replication ops to
// the (possibly new) replica set, run an anti-entropy round across the new
// replica relationships, and re-register this node's held chunks with
// their (possibly changed) coordinators — all immediately, instead of
// waiting out the periodic ticks, so ownership ranges and replica sets
// repair within the merge instead of the next republish window.
func (n *Node) reconcile() {
	n.replicateFlush()
	if n.cfg.Replicas > 0 {
		n.antiEntropy()
	}
	n.mu.Lock()
	seqs := make([]int64, 0, len(n.registered))
	for seq := range n.registered {
		seqs = append(seqs, seq)
	}
	n.mu.Unlock()
	if len(seqs) > maxReconcileInserts {
		// Bounded: newest first (the live edge is what viewers are fetching
		// right now); the republish rotation covers the tail.
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
		seqs = seqs[:maxReconcileInserts]
	}
	for _, seq := range seqs {
		select {
		case <-n.closed:
			return
		default:
		}
		n.insertIndex(seq)
	}
	n.traceEvent("ring.reconcile", fmt.Sprintf("inserts=%d", len(seqs)))
}

// ForeignMembers reports how many cached members are outside the current
// membership view (tests, the dco_live_foreign_members gauge). After a
// merge completes and views converge, this returns toward zero for a
// healthy cache — every cached member is in view again.
func (n *Node) ForeignMembers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	inView := map[string]bool{}
	for _, e := range n.ringViewLocked() {
		inView[e.Addr] = true
	}
	c := 0
	for _, m := range n.members.Members() {
		if !inView[m.Addr] {
			c++
		}
	}
	return c
}

// MemberCacheLen reports the member-cache size (tests, gauge).
func (n *Node) MemberCacheLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.members.Len()
}
