package live

import (
	"testing"
	"time"

	"dco/internal/stream"
	"dco/internal/transport"
)

func memAttach(f *transport.Fabric) func(transport.Handler) (transport.Transport, error) {
	return func(h transport.Handler) (transport.Transport, error) {
		return f.Attach(h), nil
	}
}

func fastConfig(source bool) Config {
	cfg := DefaultNodeConfig()
	cfg.Source = source
	cfg.Channel = stream.Params{Channel: "T", ChunkBits: 8 * 1024, Period: 40 * time.Millisecond, Count: 20}
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 500 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	return cfg
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPayloadRoundTrip(t *testing.T) {
	p := stream.Params{Channel: "X", ChunkBits: 8 * 1024, Period: time.Second}
	data := MakeChunkPayload(p, 7)
	if int64(len(data)) != p.ChunkBits/8 {
		t.Fatalf("payload size %d, want %d", len(data), p.ChunkBits/8)
	}
	if !VerifyChunkPayload(p, 7, data) {
		t.Fatal("payload failed its own verification")
	}
	if VerifyChunkPayload(p, 8, data) {
		t.Fatal("payload verified against the wrong seq")
	}
	data[100] ^= 1
	if VerifyChunkPayload(p, 7, data) {
		t.Fatal("corrupted payload verified")
	}
}

func TestRingFormsOverFabric(t *testing.T) {
	f := transport.NewFabric()
	var nodes []*Node
	src, err := NewNode(fastConfig(true), memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, src)
	for i := 0; i < 5; i++ {
		nd, err := NewNode(fastConfig(false), memAttach(f))
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatalf("join: %v", err)
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		nd.startRingMaint()
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	// The overlay converges (chord: the successor walk from the source
	// visits every node and returns home; kademlia: every table has
	// exactly the live membership).
	waitFor(t, 5*time.Second, "ring convergence", func() bool {
		return ringSize(src, nodes) == len(nodes)
	})
}

func TestEndToEndStreamingOverFabric(t *testing.T) {
	f := transport.NewFabric()
	src, err := NewNode(fastConfig(true), memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	var viewers []*Node
	for i := 0; i < 4; i++ {
		nd, err := NewNode(fastConfig(false), memAttach(f))
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	// Viewers tune in staggered, as real viewers do. On a zero-latency
	// fabric, simultaneous starts can keep all viewers in perfect lockstep
	// at the live edge — every lookup wakes on the source's registration
	// with the source as the only provider yet — which is a measure-zero
	// artifact, not a swarm property; the later viewers' backlog is what
	// seeds peer-to-peer serving.
	for _, v := range viewers {
		v.Start()
		time.Sleep(25 * time.Millisecond)
	}
	defer func() {
		src.Close()
		for _, v := range viewers {
			v.Close()
		}
	}()

	want := int(fastConfig(false).Channel.Count)
	waitFor(t, 30*time.Second, "all viewers to receive the full stream", func() bool {
		for _, v := range viewers {
			if v.ChunkCount() < want {
				return false
			}
		}
		return true
	})
	for _, v := range viewers {
		st := v.Stats()
		if st.ChunksFetched < uint64(want) {
			t.Fatalf("viewer fetched %d of %d", st.ChunksFetched, want)
		}
	}
	// At least one viewer should have served chunks to another (P2P sharing
	// actually happened, not just server fan-out).
	var peerServed uint64
	for _, v := range viewers {
		peerServed += v.Stats().ChunksServed
	}
	if peerServed == 0 {
		t.Error("no viewer ever served a chunk: swarm degenerated to client-server")
	}
}

func TestEndToEndStreamingOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP end-to-end test skipped in -short mode")
	}
	tcpAttach := func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenTCP("127.0.0.1:0", h)
	}
	src, err := NewNode(fastConfig(true), tcpAttach)
	if err != nil {
		t.Fatal(err)
	}
	var viewers []*Node
	for i := 0; i < 3; i++ {
		nd, err := NewNode(fastConfig(false), tcpAttach)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	defer func() {
		src.Close()
		for _, v := range viewers {
			v.Close()
		}
	}()
	want := int(fastConfig(false).Channel.Count)
	waitFor(t, 60*time.Second, "TCP viewers to receive the full stream", func() bool {
		for _, v := range viewers {
			if v.ChunkCount() < want {
				return false
			}
		}
		return true
	})
}

func TestGracefulLeaveHandsOffIndex(t *testing.T) {
	f := transport.NewFabric()
	src, _ := NewNode(fastConfig(true), memAttach(f))
	a, _ := NewNode(fastConfig(false), memAttach(f))
	b, _ := NewNode(fastConfig(false), memAttach(f))
	if err := a.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, nd := range []*Node{src, a, b} {
		nd.startRingMaint()
	}
	defer src.Close()
	defer b.Close()

	// Let the ring converge, then give node a an index entry by force.
	time.Sleep(300 * time.Millisecond)
	a.mu.Lock()
	e := a.indexEntryLocked(999)
	e.providers = append(e.providers, provRec{ent: a.wireSelfLocked()})
	a.mu.Unlock()

	if err := a.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	// The successor (src or b) must now hold entry 999.
	waitFor(t, 3*time.Second, "handoff to land", func() bool {
		for _, nd := range []*Node{src, b} {
			nd.mu.Lock()
			_, ok := nd.index[999]
			nd.mu.Unlock()
			if ok {
				return true
			}
		}
		return false
	})
}
