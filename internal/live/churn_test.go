package live

import (
	"testing"
	"time"

	"dco/internal/transport"
	"dco/internal/wire"
)

// TestRingHealsAfterAbruptFailure kills a mid-ring node and checks the
// survivors re-link and keep answering index operations.
func TestRingHealsAfterAbruptFailure(t *testing.T) {
	f := transport.NewFabric()
	src, _ := NewNode(fastConfig(true), memAttach(f))
	var nodes []*Node
	for i := 0; i < 5; i++ {
		nd, _ := NewNode(fastConfig(false), memAttach(f))
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	all := append([]*Node{src}, nodes...)
	for _, nd := range all {
		nd.startRingMaint()
	}
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		return ringSize(src, all) == len(all)
	})

	// Abrupt kill (Close without Leave).
	victim := nodes[2]
	victim.Close()
	survivors := make([]*Node, 0, len(all)-1)
	for _, nd := range all {
		if nd != victim {
			survivors = append(survivors, nd)
		}
	}
	waitFor(t, 10*time.Second, "ring to heal around the failure", func() bool {
		return ringSize(src, survivors) == len(survivors)
	})

	// The ring still serves index operations for any key.
	owner, _, err := src.FindOwner(0xDEADBEEF)
	if err != nil {
		t.Fatalf("routing after failure: %v", err)
	}
	if owner.Addr == victim.Addr() {
		t.Fatal("routing still lands on the dead node")
	}
}

// ringSize measures how much of the membership a walk can see. Chord:
// walk successor pointers from start and count distinct live members
// before the walk returns home (or derails). Kademlia (no successor
// chain): the size of start's membership view when it matches the node
// set exactly, else 0 — the same all-or-nothing signal the ring walk
// gives.
func ringSize(start *Node, nodes []*Node) int {
	if start.DHTName() != "chord" {
		if viewsConverged(nodes) {
			return len(nodes)
		}
		return 0
	}
	byAddr := map[string]*Node{}
	for _, nd := range nodes {
		byAddr[nd.Addr()] = nd
	}
	seen := map[string]bool{}
	cur := start
	for cur != nil && !seen[cur.Addr()] {
		seen[cur.Addr()] = true
		_, succ := cur.Successor()
		cur = byAddr[succ]
	}
	if cur == nil || cur.Addr() != start.Addr() {
		return 0 // derailed or looped early
	}
	return len(seen)
}

// TestStreamingSurvivesViewerChurn joins/leaves viewers mid-stream and
// checks remaining viewers still finish.
func TestStreamingSurvivesViewerChurn(t *testing.T) {
	f := transport.NewFabric()
	cfg := fastConfig(true)
	cfg.Channel.Count = 40
	src, _ := NewNode(cfg, memAttach(f))
	vcfg := fastConfig(false)
	vcfg.Channel.Count = 40

	var stable []*Node
	for i := 0; i < 3; i++ {
		nd, _ := NewNode(vcfg, memAttach(f))
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		stable = append(stable, nd)
	}
	src.Start()
	for _, nd := range stable {
		nd.Start()
	}
	defer src.Close()
	defer func() {
		for _, nd := range stable {
			nd.Close()
		}
	}()

	// A transient viewer joins, watches briefly, leaves gracefully; another
	// dies abruptly.
	transient, _ := NewNode(vcfg, memAttach(f))
	if err := transient.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	transient.Start()
	abrupt, _ := NewNode(vcfg, memAttach(f))
	if err := abrupt.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	abrupt.Start()

	time.Sleep(500 * time.Millisecond)
	if err := transient.Leave(); err != nil {
		t.Fatalf("transient leave: %v", err)
	}
	abrupt.Close()

	waitFor(t, 30*time.Second, "stable viewers to finish despite churn", func() bool {
		for _, nd := range stable {
			if nd.ChunkCount() < 40 {
				return false
			}
		}
		return true
	})
}

// TestLookupPendingQueue verifies the live coordinator holds a lookup until
// the provider registers (the paper's always-answered property).
func TestLookupPendingQueue(t *testing.T) {
	f := transport.NewFabric()
	cfg := fastConfig(true)
	cfg.Channel.Count = 0 // no auto-generation; we drive by hand
	n, _ := NewNode(cfg, memAttach(f))
	defer n.Close()

	key := uint64(n.cfg.Channel.Ref(7).ID())
	start := time.Now()
	done := make(chan []wire.Entry, 1)
	go func() {
		resp := n.onLookup(&wire.Lookup{Key: key, Seq: 7, MaxWait: 3000})
		done <- resp.(*wire.LookupResp).Providers
	}()
	// Register a provider 300 ms later; the parked lookup must wake.
	time.Sleep(300 * time.Millisecond)
	n.onInsert(&wire.Insert{Key: key, Seq: 7, Holder: wire.Entry{ID: 1, Addr: "mem://x"}, UpBps: 1})
	select {
	case providers := <-done:
		if len(providers) != 1 || providers[0].Addr != "mem://x" {
			t.Fatalf("providers = %v", providers)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatal("lookup waited past the insert")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked lookup never answered")
	}
}

// TestLookupTimesOutEmpty confirms a lookup with no providers returns empty
// after MaxWait instead of hanging.
func TestLookupTimesOutEmpty(t *testing.T) {
	f := transport.NewFabric()
	cfg := fastConfig(true)
	cfg.Channel.Count = 0
	n, _ := NewNode(cfg, memAttach(f))
	defer n.Close()
	key := uint64(n.cfg.Channel.Ref(9).ID())
	start := time.Now()
	resp := n.onLookup(&wire.Lookup{Key: key, Seq: 9, MaxWait: 200})
	if lr := resp.(*wire.LookupResp); len(lr.Providers) != 0 {
		t.Fatalf("unexpected providers %v", lr.Providers)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond || elapsed > 2*time.Second {
		t.Fatalf("MaxWait not honored: %v", elapsed)
	}
}

// TestNotOwnerRejected: index ops for keys outside a node's range bounce.
func TestNotOwnerRejected(t *testing.T) {
	f := transport.NewFabric()
	a, _ := NewNode(fastConfig(false), memAttach(f))
	b, _ := NewNode(fastConfig(false), memAttach(f))
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, nd := range []*Node{a, b} {
		nd.startRingMaint()
	}
	defer a.Close()
	defer b.Close()
	waitFor(t, 5*time.Second, "two-node ring", func() bool {
		_, sa := a.Successor()
		_, sb := b.Successor()
		return sa == b.Addr() && sb == a.Addr()
	})
	// A key owned by b must be rejected at a.
	keyForB := uint64(b.ID()) // a key equal to b's ID is owned by b
	resp := a.serve("test", &wire.Insert{Key: keyForB, Seq: 1, Holder: wire.Entry{ID: 1, Addr: "x"}})
	if _, isErr := resp.(*wire.Error); !isErr {
		t.Fatalf("insert at wrong owner accepted: %T", resp)
	}
}

// TestActiveWindowRetention: a bounded active window drops old chunks and
// withdraws their provider records.
func TestActiveWindowRetention(t *testing.T) {
	f := transport.NewFabric()
	cfg := fastConfig(true)
	cfg.Channel.Count = 30
	cfg.ActiveWindow = 5
	src, _ := NewNode(cfg, memAttach(f))
	vcfg := fastConfig(false)
	vcfg.Channel.Count = 30
	vcfg.ActiveWindow = 5
	viewer, _ := NewNode(vcfg, memAttach(f))
	if err := viewer.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	src.Start()
	viewer.Start()
	defer src.Close()
	defer viewer.Close()

	waitFor(t, 30*time.Second, "viewer to reach the stream tail", func() bool {
		return viewer.HasChunk(29)
	})
	if got := src.ChunkCount(); got > 5 {
		t.Fatalf("source retains %d chunks, window is 5", got)
	}
	if got := viewer.ChunkCount(); got > 8 { // a little slack for in-flight stores
		t.Fatalf("viewer retains %d chunks, window is 5", got)
	}
	if viewer.HasChunk(0) {
		t.Fatal("expired chunk still buffered")
	}
}

// TestLateViewerStartSeq: a viewer that tunes in mid-stream only fetches
// from its start sequence onward.
func TestLateViewerStartSeq(t *testing.T) {
	f := transport.NewFabric()
	cfg := fastConfig(true)
	cfg.Channel.Count = 20
	src, _ := NewNode(cfg, memAttach(f))
	src.Start()
	defer src.Close()

	// Wait until the source is halfway through the stream.
	waitFor(t, 10*time.Second, "source to reach chunk 10", func() bool {
		return src.LatestGenerated() >= 10
	})

	vcfg := fastConfig(false)
	vcfg.Channel.Count = 20
	vcfg.StartSeq = 10
	viewer, _ := NewNode(vcfg, memAttach(f))
	if err := viewer.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	viewer.Start()
	defer viewer.Close()

	waitFor(t, 20*time.Second, "late viewer to finish the tail", func() bool {
		for seq := int64(10); seq < 20; seq++ {
			if !viewer.HasChunk(seq) {
				return false
			}
		}
		return true
	})
	for seq := int64(0); seq < 10; seq++ {
		if viewer.HasChunk(seq) {
			t.Fatalf("late viewer fetched pre-join chunk %d", seq)
		}
	}
}
