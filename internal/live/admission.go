package live

// Admission control for the chunk serve path (see DESIGN.md, "Overload &
// admission control"). The paper's coordinator only hands out providers
// with "sufficient upload bandwidth" (§III, Fig. 3); this file is the
// provider-side half of making that promise true: a token-bucket pacer
// that enforces the node's configured UpBps on outgoing chunk bytes,
// backed by a small bounded queue of waiting serves. A request that
// cannot start inside its declared patience is shed with a Busy nack
// carrying a RetryAfterMs hint, so requesters back off for exactly as
// long as the backlog needs to drain instead of hammering a saturated
// provider — SplitStream's lesson that overlays collapse when forwarding
// load ignores per-node outbound budgets, applied to a pull mesh.

import (
	"sort"
	"sync"
	"time"

	"dco/internal/wire"
)

// loadSaturatedMilli is the load factor (thousandths) at which a provider
// counts as saturated: its advertised upload budget is fully committed.
// Coordinators skip saturated providers in Lookup answers while any
// unsaturated one exists.
const loadSaturatedMilli = 1000

// loadCeilingMilli caps the reported load factor; beyond 10x the budget
// the exact depth of the backlog carries no extra signal.
const loadCeilingMilli = 10_000

// pacer is a token-bucket upload pacer: capacity burst bytes, refilled at
// rate bytes/sec. Admission reserves bytes up front ("debt"); a request
// whose reservation cannot be covered before its patience runs out — or
// that would exceed the bounded waiter queue — is shed with a retry hint.
// All methods are safe for concurrent use.
type pacer struct {
	mu       sync.Mutex
	rate     float64 // bytes per second; <= 0 disables pacing entirely
	burst    float64 // bucket capacity in bytes
	debt     float64 // bytes committed but not yet drained by refill
	last     time.Time
	waiters  int // admitted serves currently sleeping out their pace delay
	maxQueue int // bound on waiters; excess requests are shed immediately

	// now is a test seam (frozen clocks make the arithmetic exact).
	now func() time.Time
}

// newPacer builds a pacer enforcing upBps (bits per second) with the given
// burst allowance in bytes and waiter-queue bound. upBps <= 0 returns an
// unlimited pacer (admit always succeeds instantly, load reads 0).
func newPacer(upBps int64, burstBytes int64, maxQueue int) *pacer {
	if maxQueue <= 0 {
		maxQueue = 16
	}
	if burstBytes <= 0 {
		burstBytes = 64 * 1024
	}
	return &pacer{
		rate:     float64(upBps) / 8,
		burst:    float64(burstBytes),
		maxQueue: maxQueue,
		now:      time.Now,
	}
}

// advanceLocked drains debt by the refill accrued since the last call.
func (p *pacer) advanceLocked(t time.Time) {
	if p.last.IsZero() {
		p.last = t
		return
	}
	if dt := t.Sub(p.last).Seconds(); dt > 0 {
		p.debt -= p.rate * dt
		if p.debt < 0 {
			p.debt = 0
		}
	}
	p.last = t
}

// admit reserves n bytes against the budget. ok=true means the caller may
// send after sleeping wait (0 = immediately) and must then call release
// (or refund, if it aborts the send). ok=false is a shed: retry is the
// pacer's estimate of when the transfer could start, always >= 1ms — the
// RetryAfterMs hint put on the wire.
func (p *pacer) admit(n int, patience time.Duration) (wait, retry time.Duration, ok bool) {
	if n <= 0 {
		n = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rate <= 0 {
		return 0, 0, true
	}
	p.advanceLocked(p.now())
	over := p.debt + float64(n) - p.burst
	if over > 0 {
		wait = time.Duration(over / p.rate * float64(time.Second))
	}
	if wait > patience || (wait > 0 && p.waiters >= p.maxQueue) {
		retry = wait
		if retry < time.Millisecond {
			retry = time.Millisecond
		}
		return 0, retry, false
	}
	p.debt += float64(n)
	if wait > 0 {
		p.waiters++
	}
	return wait, 0, true
}

// release frees the waiter slot taken by an admit that returned wait > 0.
func (p *pacer) release(waited bool) {
	if !waited {
		return
	}
	p.mu.Lock()
	p.waiters--
	p.mu.Unlock()
}

// refund gives back an admitted reservation whose send was abandoned
// (node closing mid-wait): the bytes never hit the wire.
func (p *pacer) refund(n int, waited bool) {
	p.mu.Lock()
	p.debt -= float64(n)
	if p.debt < 0 {
		p.debt = 0
	}
	if waited {
		p.waiters--
	}
	p.mu.Unlock()
}

// loadMilli reports the current load factor in thousandths of the burst
// allowance: 0 idle, loadSaturatedMilli when the committed backlog equals
// one full burst, clamped at loadCeilingMilli. This is the number
// piggybacked on republish Inserts and every ChunkResp.
func (p *pacer) loadMilli() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rate <= 0 || p.burst <= 0 {
		return 0
	}
	p.advanceLocked(p.now())
	l := p.debt / p.burst * loadSaturatedMilli
	if l > loadCeilingMilli {
		l = loadCeilingMilli
	}
	return uint32(l)
}

// queueDepth reports how many admitted serves are waiting out their pace
// delay (tests, gauges).
func (p *pacer) queueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waiters
}

// ---------------------------------------------------------------------------
// Node-side glue: what goes on the wire, and both halves of load-aware
// provider selection (coordinator answer + viewer ordering).

// reportLoadMilli is the load factor this node piggybacks on republish
// Inserts and ChunkResps (0 when load reporting is disabled).
func (n *Node) reportLoadMilli() uint32 {
	if !n.cfg.LoadReport {
		return 0
	}
	return n.pace.loadMilli()
}

// provLoadTTL bounds how long a heard load factor steers viewer-side
// provider ordering; past it the provider counts as unknown (idle-equal).
const provLoadTTL = 3 * time.Second

// noteProviderLoad caches the load factor a ChunkResp carried from addr.
func (n *Node) noteProviderLoad(addr string, load uint32) {
	n.provLoadMu.Lock()
	n.provLoad[addr] = provLoadRec{loadMilli: load, at: time.Now()}
	// The cache tracks the handful of providers this viewer actually talks
	// to; bound it anyway so a long-lived node cannot accumulate rows for
	// every peer that ever served it.
	if len(n.provLoad) > 4096 {
		cutoff := time.Now().Add(-provLoadTTL)
		for a, r := range n.provLoad {
			if r.at.Before(cutoff) {
				delete(n.provLoad, a)
			}
		}
	}
	n.provLoadMu.Unlock()
}

// orderProvidersByLoad returns a lookup answer reordered by the freshest
// load factor heard from each provider, least-loaded first — the
// CoolStreaming move of rotating requests toward the partner with spare
// capacity. Providers never heard from (or heard from too long ago) rank
// equal with idle ones, so new providers still get traffic. The sort is
// stable: the coordinator's own rotation survives among equals.
//
// Health multiplies the effective load (gray-failure defense): a peer's
// suspicion score scales its load factor up (FactorMilli: 1000 = neutral,
// one error's worth of suspicion doubles it), so a degraded provider
// sinks toward the back of the order without ever being excluded — when
// every provider is degraded, fetches still have somewhere to go. With
// all peers neutral the ordering is exactly the pre-health one.
func (n *Node) orderProvidersByLoad(provs []wire.Entry) []wire.Entry {
	if len(provs) < 2 {
		return provs
	}
	now := time.Now()
	loads := make([]uint64, len(provs))
	n.provLoadMu.Lock()
	for i, pr := range provs {
		if rec, ok := n.provLoad[pr.Addr]; ok && now.Sub(rec.at) < provLoadTTL {
			loads[i] = uint64(rec.loadMilli)
		}
	}
	n.provLoadMu.Unlock()
	// Latency-contradiction clamp (the other half of the lying-load
	// defense): a provider advertising itself near-idle while its observed
	// serve latency towers over the cohort's best is either lying or
	// measuring wrong — discount its report to saturated so the claim
	// cannot capture the order. The floor keeps sub-ms LAN jitter from
	// ever tripping it, and the 4x ratio demands a real contradiction.
	ewmas := make([]time.Duration, len(provs))
	var minEwma time.Duration
	known := 0
	for i, pr := range provs {
		if d, ok := n.health.ExpectedLatency(pr.Addr); ok {
			ewmas[i] = d
			if known == 0 || d < minEwma {
				minEwma = d
			}
			known++
		}
	}
	if known >= 2 {
		for i := range provs {
			if loads[i] < loadSaturatedMilli/2 && ewmas[i] >= loadLieLatencyFloor && ewmas[i] > 4*minEwma {
				loads[i] = loadSaturatedMilli
				n.lm.loadReportsClamped.Inc()
			}
		}
	}
	for i, pr := range provs {
		// +1 so an idle (load 0) suspected peer still ranks behind an idle
		// healthy one.
		loads[i] = (loads[i] + 1) * uint64(n.health.FactorMilli(pr.Addr))
	}
	type pair struct {
		e wire.Entry
		l uint64
	}
	pairs := make([]pair, len(provs))
	for i := range provs {
		pairs[i] = pair{provs[i], loads[i]}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].l < pairs[b].l })
	out := make([]wire.Entry, len(pairs))
	for i := range pairs {
		out[i] = pairs[i].e
	}
	return out
}

// loadLieLatencyFloor is the minimum observed latency EWMA before the
// latency-contradiction clamp can trip — below it the peer is fast enough
// that its load claim is unfalsifiable (and harmless).
const loadLieLatencyFloor = 20 * time.Millisecond

// cohortSpreadMilli defines the coordinator's low-load cohort: providers
// within this much of the least-loaded report. Rotating inside the cohort
// spreads a flash crowd across comparably idle providers instead of
// herding every viewer onto the single best report.
const cohortSpreadMilli = 300

// selectLocked is the coordinator's capacity-weighted provider selection
// (replaces blind round-robin): saturated providers are skipped while any
// unsaturated one exists, the answer is drawn round-robin from the
// low-load cohort, and backfilled with the next-least-loaded candidates.
// When every provider is saturated the least-loaded ones are returned
// anyway — a degraded answer beats an empty one. When more providers are
// registered than the answer carries, the last slot is an exploration
// pick from outside the chosen set (see below). exclude (nil = none)
// drops providers outright — quarantined peers never appear in answers,
// even degraded ones (integrity.go). Caller holds n.mu.
func (e *indexEntry) selectLocked(max int, exclude func(addr string) bool) []wire.Entry {
	if len(e.providers) == 0 || max <= 0 {
		return nil
	}
	usable := func(i int) bool {
		return exclude == nil || !exclude(e.providers[i].ent.Addr)
	}
	cand := make([]int, 0, len(e.providers))
	for i := range e.providers {
		if e.providers[i].loadMilli < loadSaturatedMilli && usable(i) {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		for i := range e.providers {
			if usable(i) {
				cand = append(cand, i)
			}
		}
	}
	if len(cand) == 0 {
		return nil
	}
	sort.SliceStable(cand, func(a, b int) bool {
		pa, pb := &e.providers[cand[a]], &e.providers[cand[b]]
		if pa.loadMilli != pb.loadMilli {
			return pa.loadMilli < pb.loadMilli
		}
		return pa.upBps > pb.upBps // ties: bigger pipes first
	})
	floor := e.providers[cand[0]].loadMilli
	cohort := cand
	for i, ci := range cand {
		if e.providers[ci].loadMilli > floor+cohortSpreadMilli {
			cohort = cand[:i]
			break
		}
	}
	// Exploration slot (gray-failure defense): a peer that accepts work but
	// never finishes it keeps honestly advertising itself idle, so a few
	// such zombies can capture the entire low-load cohort — and with it
	// every answer, starving viewers of reachable providers no matter how
	// many are registered. When the index knows more providers than the
	// answer carries, the last slot is therefore rotated across the
	// *unchosen* remainder instead of drawn from the cohort, so no cohort
	// can permanently capture an answer.
	fill := max
	explore := max >= 2 && len(cand) > max
	if explore {
		fill = max - 1
	}
	out := make([]wire.Entry, 0, max)
	picked := make(map[int]bool, fill)
	start := e.rr % len(cohort)
	for i := 0; i < len(cohort) && len(out) < fill; i++ {
		ci := cohort[(start+i)%len(cohort)]
		out = append(out, e.providers[ci].ent)
		picked[ci] = true
	}
	for i := len(cohort); i < len(cand) && len(out) < fill; i++ {
		out = append(out, e.providers[cand[i]].ent)
		picked[cand[i]] = true
	}
	if explore {
		// Prefer exploring outside the cohort — that is where a reachable
		// provider a stale-idle cohort is hiding will be — falling back to
		// unchosen cohort members when the cohort is the whole candidate set.
		remOut := make([]int, 0, len(cand))
		remIn := make([]int, 0, len(cohort))
		for i, ci := range cand {
			if picked[ci] {
				continue
			}
			if i < len(cohort) {
				remIn = append(remIn, ci)
			} else {
				remOut = append(remOut, ci)
			}
		}
		rem := remOut
		if len(rem) == 0 {
			rem = remIn
		}
		out = append(out, e.providers[rem[e.rr%len(rem)]].ent)
	}
	e.rr++
	return out
}
