package live

import (
	"os"
	"testing"
	"time"

	"dco/internal/faulty"
	"dco/internal/telemetry"
	"dco/internal/transport"
)

// soakScale returns (viewers, chunks): the quick in-tree profile by
// default, the heavier nightly profile when DCO_SOAK is set (the nightly
// CI job runs this with -race -count=3).
func soakScale() (viewers, chunks int) {
	if os.Getenv("DCO_SOAK") != "" {
		return 12, 80
	}
	return 6, 30
}

// TestReplicatedSoakCoordinatorKill is the PR 3 acceptance scenario: a
// replicated swarm (r=3) streaming through a seeded 10% message drop has
// a coordinator first partitioned away and then killed mid-stream. The
// replication layer must make that invisible at the lookup level:
//
//   - every surviving viewer completes the stream;
//   - zero lookups exhaust their candidates (Stats().LookupFailures == 0
//     ring-wide — failovers may happen, failures may not);
//   - at least one replica slice is promoted to owned state (the takeover
//     actually ran; the run didn't pass by luck);
//   - the telemetry gauges agree: fill_ratio 1.0 and delivered_percent
//     100 on every survivor, so there is no lasting fill dip.
func TestReplicatedSoakCoordinatorKill(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const seed = 20260806
	nViewers, nChunks := soakScale()

	f := transport.NewFabric()
	in := faulty.NewInjector(seed)
	in.SetDefaultRule(faulty.Rule{Drop: 0.10})

	// Per-node registries: the gauge assertions below read each survivor's
	// own fill_ratio, so registries must not be shared.
	mkCfg := func(source bool) Config {
		cfg := resilientConfig(source)
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Trace = telemetry.NewTrace(4096)
		cfg.Channel.Count = int64(nChunks)
		cfg.Replicas = 3
		cfg.ReplicateEvery = 25 * time.Millisecond
		cfg.AntiEntropyEvery = 250 * time.Millisecond
		return cfg
	}

	src, err := NewNode(mkCfg(true), faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	var viewers []*Node
	for i := 0; i < nViewers; i++ {
		nd, err := NewNode(mkCfg(false), faultyAttach(f, in))
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatalf("viewer %d join under 10%% drop: %v", i, err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	all := append([]*Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	// Let providers and replicas spread, then pick the victim: the
	// coordinator owning a mid-stream chunk key. It must be a viewer — the
	// source has to stay up to finish generating.
	time.Sleep(600 * time.Millisecond)
	midKey := uint64(src.cfg.Channel.Ref(int64(nChunks / 2)).ID())
	owner, _, err := src.FindOwner(midKey)
	if err != nil {
		t.Fatalf("FindOwner for the victim key: %v", err)
	}
	var victim *Node
	for _, v := range viewers {
		if v.Addr() == owner.Addr {
			victim = v
		}
	}
	if victim == nil {
		t.Skipf("mid-stream key owner is the source; cannot kill it in this scenario")
	}

	survivors := []*Node{src}
	var watching []*Node
	for _, v := range viewers {
		if v != victim {
			survivors = append(survivors, v)
			watching = append(watching, v)
		}
	}

	// Partition the victim away first (the swarm sees an unreachable
	// coordinator before a dead one), then kill it and heal the cut.
	var rest []string
	for _, nd := range survivors {
		rest = append(rest, nd.Addr())
	}
	in.Partition(rest, []string{victim.Addr()})
	time.Sleep(200 * time.Millisecond)
	victim.Close()
	in.Heal()

	want := nChunks
	waitFor(t, 120*time.Second, "surviving viewers to complete the stream through the coordinator kill", func() bool {
		for _, v := range watching {
			if v.ChunkCount() < want {
				return false
			}
		}
		return true
	})
	waitFor(t, 30*time.Second, "surviving ring to converge", func() bool {
		return ringCorrect(survivors)
	})

	if in.Injected() == 0 {
		t.Fatal("fault injector never fired; the soak tested nothing")
	}

	// Acceptance: zero exhausted lookups across every survivor.
	var failures, takeovers uint64
	for _, nd := range survivors {
		st := nd.Stats()
		failures += st.LookupFailures
		takeovers += nd.lm.takeoverEntries.Value()
	}
	if failures != 0 {
		t.Fatalf("%d lookups exhausted their candidates; replication must make the kill invisible", failures)
	}
	// The takeover path actually ran (the victim owned at least midKey).
	if takeovers == 0 {
		t.Fatal("no replica entry was promoted after the coordinator kill")
	}

	// The gauges agree there is no lasting fill dip: every survivor reports
	// a full buffer and full delivery once the stream completes.
	for i, nd := range watching {
		g := nd.lm.reg.Snapshot().Gauges
		if r := g["dco_live_fill_ratio"]; r != 1.0 {
			t.Errorf("survivor %d fill_ratio = %v, want 1.0", i, r)
		}
		if p := g["dco_live_delivered_percent"]; p != 100 {
			t.Errorf("survivor %d delivered_percent = %v, want 100", i, p)
		}
	}
}
