package live

import (
	"testing"
	"time"

	"dco/internal/faulty"
	"dco/internal/transport"
)

// censusConfig is resilientConfig with the ring census sped up so
// partition tests detect and merge splits in test time.
func censusConfig(source bool) Config {
	cfg := resilientConfig(source)
	cfg.CensusEvery = 80 * time.Millisecond
	cfg.CensusProbes = 2
	return cfg
}

// TestSplitBrainMergesAfterHeal is the tentpole scenario: a 6-node swarm
// bisected mid-stream degenerates into two self-consistent rings, and
// after the heal the census — with no manual rejoin anywhere — detects
// the split and merges the halves back into one ring. The merged ring
// must then stay quiescent (no oscillation from the symmetric detectors)
// and every viewer must recover the full stream.
func TestSplitBrainMergesAfterHeal(t *testing.T) {
	const seed = 5050
	f := transport.NewFabric()
	in := faulty.NewInjector(seed)

	cfg := censusConfig(true)
	cfg.Channel.Count = 30
	src, err := NewNode(cfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	vcfg := censusConfig(false)
	vcfg.Channel.Count = 30
	var viewers []*Node
	for i := 0; i < 5; i++ {
		nd, err := NewNode(vcfg, faultyAttach(f, in))
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	all := append([]*Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	waitFor(t, 15*time.Second, "initial ring to converge", func() bool {
		return ringCorrect(all)
	})

	// Bisect: the source and two viewers on one side, three viewers on the
	// other. Every node has seen every other by now (successor lists cover
	// the whole 6-node ring), so both halves hold far-side breadcrumbs in
	// their member caches.
	sideA := []*Node{src, viewers[0], viewers[1]}
	sideB := []*Node{viewers[2], viewers[3], viewers[4]}
	in.Partition(
		[]string{src.Addr(), viewers[0].Addr(), viewers[1].Addr()},
		[]string{viewers[2].Addr(), viewers[3].Addr(), viewers[4].Addr()},
	)

	// Each half purges the unreachable far side and converges into its own
	// ring — the split-brain state the census exists to repair.
	waitFor(t, 30*time.Second, "both halves to form their own rings", func() bool {
		return ringCorrect(sideA) && ringCorrect(sideB)
	})

	in.Heal()

	// The census must now re-merge the rings on its own: no JoinAny, no
	// restart, nothing manual.
	waitFor(t, 30*time.Second, "census to merge the rings after the heal", func() bool {
		return ringCorrect(all)
	})

	var splits, merges uint64
	for _, nd := range all {
		st := nd.Stats()
		splits += st.SplitsDetected
		merges += st.RingMerges
	}
	if splits == 0 {
		t.Error("no node ever counted a detected split")
	}
	if merges == 0 {
		t.Error("no node ever counted a completed merge")
	}

	// Non-oscillation: detectors fire symmetrically on both halves, so the
	// merged ring must hold still across several further census rounds.
	time.Sleep(8 * cfg.CensusEvery)
	if !ringCorrect(all) {
		t.Fatal("merged ring fell apart after further census rounds")
	}

	// Fill recovery: the side cut off from the source catches up on the
	// whole stream through the merged ring.
	want := int(vcfg.Channel.Count)
	waitFor(t, 60*time.Second, "all viewers to recover the full stream post-merge", func() bool {
		for _, v := range viewers {
			if v.ChunkCount() < want {
				return false
			}
		}
		return true
	})
}

// TestLoneNodeRecoversViaCensus: a node isolated entirely alone exhausts
// its successor list and degenerates to a self-ring. After the heal it
// must re-bootstrap automatically through its member cache — the lone
// branch of the census that merges on any answered probe without a
// confirmation lookup — and catch up on the stream. No manual JoinAny.
func TestLoneNodeRecoversViaCensus(t *testing.T) {
	const seed = 6161
	f := transport.NewFabric()
	in := faulty.NewInjector(seed)

	cfg := censusConfig(true)
	cfg.Channel.Count = 30
	src, err := NewNode(cfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	vcfg := censusConfig(false)
	vcfg.Channel.Count = 30
	var viewers []*Node
	for i := 0; i < 3; i++ {
		nd, err := NewNode(vcfg, faultyAttach(f, in))
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		viewers = append(viewers, nd)
	}
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	all := append([]*Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	waitFor(t, 15*time.Second, "initial ring to converge", func() bool {
		return ringCorrect(all)
	})

	isolated := viewers[2]
	majority := []*Node{src, viewers[0], viewers[1]}
	in.Partition(
		[]string{src.Addr(), viewers[0].Addr(), viewers[1].Addr()},
		[]string{isolated.Addr()},
	)

	// The isolated node burns through its successor list and falls back to
	// a ring of one; the majority converges without it.
	waitFor(t, 30*time.Second, "isolated node to degenerate to a self-ring", func() bool {
		_, succ := isolated.Successor()
		return succ == isolated.Addr()
	})
	waitFor(t, 30*time.Second, "majority ring to converge without the isolated node", func() bool {
		return ringCorrect(majority)
	})

	in.Heal()

	// Recovery is automatic: the lone node's census probes its cached
	// members and adopts the first one that answers.
	waitFor(t, 30*time.Second, "lone node to rejoin via census", func() bool {
		return ringCorrect(all)
	})
	if isolated.Stats().RingMerges == 0 {
		// The merge may also have been driven from the majority side
		// answering the lone node's probe; either way someone merged.
		var merges uint64
		for _, nd := range all {
			merges += nd.Stats().RingMerges
		}
		if merges == 0 {
			t.Error("no node ever counted a completed merge")
		}
	}

	want := int(vcfg.Channel.Count)
	waitFor(t, 60*time.Second, "recovered node to catch up on the stream", func() bool {
		return isolated.ChunkCount() >= want
	})
}
