package live

import (
	"sync"
	"testing"
	"time"

	"dco/internal/transport"
	"dco/internal/wire"
)

// soloNode builds an unstarted single node on a fresh fabric: it owns every
// key, so coordinator handlers can be driven directly.
func soloNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := NewNode(cfg, memAttach(transport.NewFabric()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// TestLookupPendingQueueMaxWaitExpiry pins the pending queue's timeout arm:
// a lookup for a chunk nobody provides parks for MaxWait and then returns
// an empty answer — not early, and not an error.
func TestLookupPendingQueueMaxWaitExpiry(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	key := uint64(n.cfg.Channel.Ref(5).ID())
	start := time.Now()
	resp := n.onLookup(&wire.Lookup{Key: key, Seq: 5, MaxWait: 80})
	lr, ok := resp.(*wire.LookupResp)
	if !ok {
		t.Fatalf("unexpected response %T", resp)
	}
	if len(lr.Providers) != 0 {
		t.Fatalf("providers from an empty index: %v", lr.Providers)
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("pending lookup returned after %v, before its 80ms MaxWait", el)
	}
}

// TestLookupPendingQueueWokenByInsert pins the wake arm: a parked lookup is
// released by a concurrent Insert well before MaxWait, and the answer holds
// exactly the provider that registered.
func TestLookupPendingQueueWokenByInsert(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	key := uint64(n.cfg.Channel.Ref(6).ID())
	prov := wire.Entry{ID: 1, Addr: "prov:1"}
	done := make(chan []wire.Entry, 1)
	go func() {
		resp := n.onLookup(&wire.Lookup{Key: key, Seq: 6, MaxWait: 5000})
		lr, _ := resp.(*wire.LookupResp)
		done <- lr.Providers
	}()
	time.Sleep(50 * time.Millisecond)
	if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 6, Holder: prov}).(*wire.Ack); !ok {
		t.Fatal("insert not acked")
	}
	select {
	case provs := <-done:
		if len(provs) != 1 || provs[0].Addr != prov.Addr {
			t.Fatalf("woken lookup answered %v, want [%s]", provs, prov.Addr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked lookup was not woken by the concurrent Insert")
	}
}

// TestLookupPendingQueueRace storms the two arms against each other:
// short-MaxWait lookups racing Inserts on the same keys must always return
// a well-formed answer — empty or filled are both legal outcomes of the
// race, hanging or panicking is not. Run with -race, this also proves the
// wake-channel replacement in wakeLocked is sound.
func TestLookupPendingQueueRace(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		seq := int64(100 + i)
		key := uint64(n.cfg.Channel.Ref(seq).ID())
		wg.Add(2)
		go func() {
			defer wg.Done()
			resp := n.onLookup(&wire.Lookup{Key: key, Seq: seq, MaxWait: 5})
			if _, ok := resp.(*wire.LookupResp); !ok {
				t.Errorf("raced lookup returned %T", resp)
			}
		}()
		go func() {
			defer wg.Done()
			n.onInsert(&wire.Insert{Key: key, Seq: seq, Holder: wire.Entry{ID: 2, Addr: "prov:2"}})
		}()
	}
	wg.Wait()
}

// TestProviderCooldownExpiry pins the blacklist lifecycle: a failed
// provider is unusable for exactly ProviderCooldown, then usable again —
// and the expired row is lazily removed, not leaked.
func TestProviderCooldownExpiry(t *testing.T) {
	cfg := fastConfig(false)
	cfg.ProviderCooldown = 60 * time.Millisecond
	n := soloNode(t, cfg)
	const peer = "peer:9"
	if !n.providerUsable(peer) {
		t.Fatal("fresh peer unusable")
	}
	n.blacklistProvider(peer)
	if n.providerUsable(peer) {
		t.Fatal("blacklisted peer usable inside its cooldown")
	}
	waitFor(t, 2*time.Second, "provider cooldown to expire", func() bool {
		return n.providerUsable(peer)
	})
	n.mu.Lock()
	_, still := n.blacklist[peer]
	n.mu.Unlock()
	if still {
		t.Fatal("expired blacklist entry was not cleaned up")
	}
}

// TestGetChunkMissCounted: a GetChunk for a chunk this node never buffered
// is a miss — counted, not Busy, and still carrying the load report.
func TestGetChunkMissCounted(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	cr, ok := n.onGetChunk(&wire.GetChunk{Seq: 42}).(*wire.ChunkResp)
	if !ok {
		t.Fatal("miss did not answer with a ChunkResp")
	}
	if cr.OK || cr.Busy {
		t.Fatalf("miss answered OK=%v Busy=%v, want neither", cr.OK, cr.Busy)
	}
	if got := n.Stats().ChunksMissed; got != 1 {
		t.Fatalf("ChunksMissed = %d, want 1", got)
	}
}

// TestGetChunkShedsWithRetryHint drives the provider into saturation and
// checks the shed contract: Busy=true, a nonzero RetryAfterMs hint, a
// saturated load report, and the shed counted.
func TestGetChunkShedsWithRetryHint(t *testing.T) {
	cfg := fastConfig(false)
	cfg.UpBps = 8_000     // 1000 B/s
	cfg.AdmitBurst = 1024 // exactly one chunk of burst
	cfg.AdmitMaxWait = 50 * time.Millisecond
	n := soloNode(t, cfg)
	data := MakeChunkPayload(n.cfg.Channel, 1) // 1024 bytes
	n.mu.Lock()
	n.chunks[1] = data
	n.chunks[2] = data
	n.mu.Unlock()

	first, _ := n.onGetChunk(&wire.GetChunk{Seq: 1}).(*wire.ChunkResp)
	if first == nil || !first.OK {
		t.Fatalf("burst-covered serve failed: %+v", first)
	}
	// The burst is now fully committed; the next serve would need ~1s of
	// refill against 10ms of patience.
	second, _ := n.onGetChunk(&wire.GetChunk{Seq: 2, WaitMs: 10}).(*wire.ChunkResp)
	if second == nil || !second.Busy {
		t.Fatalf("saturated serve not shed: %+v", second)
	}
	if second.RetryAfterMs == 0 {
		t.Fatal("shed carried no RetryAfterMs hint")
	}
	// Real clock: a few ms of refill may have nudged the committed burst
	// just under the exact saturation constant — near-full is the contract.
	if second.LoadMilli < loadSaturatedMilli*9/10 {
		t.Fatalf("shed load report %d, want near %d", second.LoadMilli, loadSaturatedMilli)
	}
	if got := n.Stats().ChunksShedBusy; got != 1 {
		t.Fatalf("ChunksShedBusy = %d, want 1", got)
	}
}

// TestSelectSkipsSaturatedProviders: while any provider is under the
// saturation threshold, saturated ones must not appear in the answer.
func TestSelectSkipsSaturatedProviders(t *testing.T) {
	e := &indexEntry{wake: make(chan struct{})}
	e.providers = []provRec{
		{ent: wire.Entry{Addr: "idle:1"}, loadMilli: 100},
		{ent: wire.Entry{Addr: "busy:1"}, loadMilli: 2000},
		{ent: wire.Entry{Addr: "idle:2"}, loadMilli: 150},
	}
	got := e.selectLocked(3, nil)
	if len(got) != 2 {
		t.Fatalf("selected %d providers, want the 2 unsaturated ones: %v", len(got), got)
	}
	for _, pr := range got {
		if pr.Addr == "busy:1" {
			t.Fatal("saturated provider selected while unsaturated ones exist")
		}
	}
}

// TestSelectAllSaturatedDegrades: when every provider is saturated, the
// least-loaded ones are returned anyway — a degraded answer beats none.
func TestSelectAllSaturatedDegrades(t *testing.T) {
	e := &indexEntry{wake: make(chan struct{})}
	e.providers = []provRec{
		{ent: wire.Entry{Addr: "busy:1"}, loadMilli: 3000},
		{ent: wire.Entry{Addr: "busy:2"}, loadMilli: 1500},
	}
	got := e.selectLocked(3, nil)
	if len(got) != 2 {
		t.Fatalf("selected %d providers, want 2", len(got))
	}
	if got[0].Addr != "busy:2" {
		t.Fatalf("least-loaded saturated provider not first: %v", got)
	}
}

// TestSelectCohortRotation: comparably idle providers are rotated through
// across successive lookups, so a flash crowd is spread instead of herded
// onto one report.
func TestSelectCohortRotation(t *testing.T) {
	e := &indexEntry{wake: make(chan struct{})}
	e.providers = []provRec{
		{ent: wire.Entry{Addr: "a"}},
		{ent: wire.Entry{Addr: "b"}},
		{ent: wire.Entry{Addr: "c"}},
	}
	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		got := e.selectLocked(1, nil)
		if len(got) != 1 {
			t.Fatalf("selected %d providers, want 1", len(got))
		}
		seen[got[0].Addr] = true
	}
	if len(seen) != 3 {
		t.Fatalf("3 single-provider answers landed on %d distinct providers, want 3 (rotation)", len(seen))
	}
}

// TestSelectExplorationEscapesIdleCohort: when stale-idle providers (the
// gray-failure zombie shape: accept work, never finish it, keep honestly
// advertising load 0) fill the low-load cohort, the answer's last slot
// must still rotate across the rest of the registered set — otherwise
// three zombies capture every answer forever.
func TestSelectExplorationEscapesIdleCohort(t *testing.T) {
	e := &indexEntry{wake: make(chan struct{})}
	e.providers = []provRec{
		{ent: wire.Entry{Addr: "zombie:1"}},
		{ent: wire.Entry{Addr: "zombie:2"}},
		{ent: wire.Entry{Addr: "zombie:3"}},
		{ent: wire.Entry{Addr: "healthy:1"}, loadMilli: 800},
		{ent: wire.Entry{Addr: "healthy:2"}, loadMilli: 800},
	}
	seenHealthy := make(map[string]bool)
	for i := 0; i < 4; i++ {
		got := e.selectLocked(3, nil)
		if len(got) != 3 {
			t.Fatalf("selected %d providers, want 3: %v", len(got), got)
		}
		for _, pr := range got[:2] {
			if pr.Addr == "healthy:1" || pr.Addr == "healthy:2" {
				t.Fatalf("cohort slots leaked outside the idle cohort: %v", got)
			}
		}
		a := got[2].Addr
		if a != "healthy:1" && a != "healthy:2" {
			t.Fatalf("exploration slot stayed inside the idle cohort: %v", got)
		}
		seenHealthy[a] = true
	}
	if len(seenHealthy) != 2 {
		t.Fatalf("4 answers explored %d distinct loaded providers, want both", len(seenHealthy))
	}
}

// TestFetchDeadlineAbandons: with a playback horizon configured, a fetch
// for a chunk nobody can provide gives up at the horizon (counted, so the
// worker rejoins the live edge) instead of retrying forever.
func TestFetchDeadlineAbandons(t *testing.T) {
	cfg := fastConfig(false)
	cfg.FetchDeadlineChunks = 3 // 120ms horizon at the 40ms test period
	n := soloNode(t, cfg)
	errCh := make(chan error, 1)
	go func() { errCh <- n.FetchChunk(7) }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("fetch of an unavailable chunk reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("fetch worker wedged past its playback horizon")
	}
	if got := n.Stats().ChunksAbandoned; got != 1 {
		t.Fatalf("ChunksAbandoned = %d, want 1", got)
	}
}

// TestSleepBusyAbortsOnClose: a Busy backoff must never outlive the node —
// sleepBusy returns false promptly once the node closes.
func TestSleepBusyAbortsOnClose(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	done := make(chan bool, 1)
	go func() { done <- n.sleepBusy("peer:1", 60_000, time.Time{}) }()
	time.Sleep(20 * time.Millisecond)
	n.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("sleepBusy reported an uninterrupted sleep across Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("sleepBusy kept sleeping after Close")
	}
}
