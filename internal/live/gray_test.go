package live

import (
	"testing"
	"time"

	"dco/internal/faulty"
	"dco/internal/transport"
	"dco/internal/wire"
)

// grayTrio builds three unstarted nodes on one fabric behind a shared fault
// injector: a viewer and two providers both holding chunk seq. Nothing is
// joined or started — fetchOnce is driven with explicit addresses, which is
// exactly how FetchChunk uses it after provider selection.
func grayTrio(t *testing.T, cfg Config, seq int64) (viewer, primary, backup *Node, in *faulty.Injector) {
	t.Helper()
	f := transport.NewFabric()
	in = faulty.NewInjector(20260808)
	mk := func() *Node {
		n, err := NewNode(cfg, faultyAttach(f, in))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	viewer, primary, backup = mk(), mk(), mk()
	data := MakeChunkPayload(cfg.Channel, seq)
	primary.storeChunk(seq, data, "")
	backup.storeChunk(seq, data, "")
	return viewer, primary, backup, in
}

// TestHedgeRescuesStalledPrimary is the gray-failure headline: the primary
// provider accepts the connection and then stalls mid-request — no error,
// no data, the failure a breaker cannot see. The hedge must fire after the
// (stranger-conservative) HedgeMaxDelay, win from the backup, and return
// the chunk in a fraction of the stall timeout.
func TestHedgeRescuesStalledPrimary(t *testing.T) {
	cfg := fastConfig(false)
	cfg.Hedge = true
	cfg.HedgeMinDelay = 20 * time.Millisecond
	cfg.HedgeMaxDelay = 80 * time.Millisecond
	viewer, primary, backup, in := grayTrio(t, cfg, 5)
	in.SetStalled(primary.Addr(), true)

	start := time.Now()
	resp, from, err := viewer.fetchOnce(5, primary.Addr(), backup.Addr(), time.Time{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged fetch failed: %v", err)
	}
	cr, ok := resp.(*wire.ChunkResp)
	if !ok || !cr.OK {
		t.Fatalf("hedged fetch returned %T (ok=%v)", resp, ok)
	}
	if from != backup.Addr() {
		t.Fatalf("winning response credited to %s, want backup %s", from, backup.Addr())
	}
	if !VerifyChunkPayload(cfg.Channel, 5, cr.Data) {
		t.Fatal("hedge-won chunk failed verification")
	}
	// The whole point: the viewer did not wait out the primary's stall.
	if elapsed > time.Second {
		t.Fatalf("hedged fetch took %v; the stall leaked into the fetch path", elapsed)
	}
	st := viewer.Stats()
	if st.HedgesLaunched != 1 {
		t.Fatalf("HedgesLaunched = %d, want 1", st.HedgesLaunched)
	}
	if st.HedgeWins != 1 {
		t.Fatalf("HedgeWins = %d, want 1", st.HedgeWins)
	}
	if st.HedgesCancelled != 1 {
		t.Fatalf("HedgesCancelled = %d, want 1 (primary leg still in flight)", st.HedgesCancelled)
	}
}

// TestHedgeQuietOnFastPrimary: a healthy primary answering inside its
// latency estimate must never trigger a hedge — hedging is a tail-latency
// defense, not a default double-send.
func TestHedgeQuietOnFastPrimary(t *testing.T) {
	cfg := fastConfig(false)
	cfg.Hedge = true
	viewer, primary, backup, _ := grayTrio(t, cfg, 7)

	resp, from, err := viewer.fetchOnce(7, primary.Addr(), backup.Addr(), time.Time{})
	if err != nil {
		t.Fatalf("fetch from healthy primary failed: %v", err)
	}
	if cr, ok := resp.(*wire.ChunkResp); !ok || !cr.OK {
		t.Fatalf("fetch returned %T", resp)
	}
	if from != primary.Addr() {
		t.Fatalf("response credited to %s, want primary %s", from, primary.Addr())
	}
	if st := viewer.Stats(); st.HedgesLaunched != 0 {
		t.Fatalf("HedgesLaunched = %d on a fast primary, want 0", st.HedgesLaunched)
	}
}

// TestHedgeDisabledWaitsOutStall pins the opt-out: with Hedge off the fetch
// is single-flight and eats the stall, exactly the pre-hedging behavior the
// graychaos scenario contrasts against.
func TestHedgeDisabledWaitsOutStall(t *testing.T) {
	cfg := fastConfig(false)
	cfg.Hedge = false
	cfg.CallTimeout = 600 * time.Millisecond
	viewer, primary, backup, in := grayTrio(t, cfg, 9)
	in.SetStalled(primary.Addr(), true)

	start := time.Now()
	_, from, err := viewer.fetchOnce(9, primary.Addr(), backup.Addr(), time.Time{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch from a stalled primary succeeded without a hedge")
	}
	if from != primary.Addr() {
		t.Fatalf("failure credited to %s, want primary %s", from, primary.Addr())
	}
	if elapsed < 400*time.Millisecond {
		t.Fatalf("single-flight fetch returned in %v; stall was not actually waited out", elapsed)
	}
	if st := viewer.Stats(); st.HedgesLaunched != 0 {
		t.Fatalf("HedgesLaunched = %d with hedging disabled, want 0", st.HedgesLaunched)
	}
}

// TestGetChunkDeadlineShed pins deadline propagation on the serve path: a
// GetChunk whose propagated DeadlineMs budget cannot cover the pacer's
// projected wait is shed immediately and counted as a deadline shed — while
// the same backlog with only a WaitMs patience sheds without the deadline
// attribution.
func TestGetChunkDeadlineShed(t *testing.T) {
	cfg := fastConfig(false)
	cfg.UpBps = 8 * 1024 // 1 KiB/s drain: one 1 KiB chunk ≈ 1s of budget
	cfg.AdmitBurst = 512 // half a chunk of burst → every serve projects a wait
	cfg.AdmitMaxWait = time.Second
	n := soloNode(t, cfg)
	data := MakeChunkPayload(cfg.Channel, 3)
	n.storeChunk(3, data, "")

	// Deadline-bound: 100ms of budget against a ~500ms projected wait.
	resp := n.onGetChunk(&wire.GetChunk{Seq: 3, DeadlineMs: 100})
	cr, ok := resp.(*wire.ChunkResp)
	if !ok || !cr.Busy {
		t.Fatalf("deadline-starved GetChunk returned %T (busy=%v), want Busy nack", resp, ok && cr.Busy)
	}
	if cr.RetryAfterMs == 0 {
		t.Fatal("Busy nack carried no RetryAfterMs hint")
	}
	if got := n.Stats().DeadlineSheds; got != 1 {
		t.Fatalf("DeadlineSheds = %d, want 1", got)
	}

	// Same starvation expressed as plain WaitMs patience: still shed, but
	// not attributed to the deadline.
	resp = n.onGetChunk(&wire.GetChunk{Seq: 3, WaitMs: 100})
	if cr, ok = resp.(*wire.ChunkResp); !ok || !cr.Busy {
		t.Fatalf("patience-starved GetChunk returned %T, want Busy nack", resp)
	}
	if got := n.Stats().DeadlineSheds; got != 1 {
		t.Fatalf("DeadlineSheds = %d after a non-deadline shed, want still 1", got)
	}
}

// TestOrderProvidersHealthAware pins the selection bias: with equal load
// reports, a suspected provider sinks to the back of the order but is never
// dropped; with every peer neutral the order is exactly the input order
// (the pre-health property existing tests rely on).
func TestOrderProvidersHealthAware(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	provs := []wire.Entry{
		{ID: 1, Addr: "p:a"},
		{ID: 2, Addr: "p:b"},
		{ID: 3, Addr: "p:c"},
	}
	// All neutral: stable, order preserved.
	got := n.orderProvidersByLoad(provs)
	for i := range provs {
		if got[i].Addr != provs[i].Addr {
			t.Fatalf("neutral ordering changed: %v", got)
		}
	}
	// p:b accumulates errors (conclusive failures bump suspicion hardest).
	for i := 0; i < 3; i++ {
		n.health.Observe("p:b", 50*time.Millisecond, false)
	}
	got = n.orderProvidersByLoad(provs)
	if len(got) != 3 {
		t.Fatalf("provider dropped from order: %v", got)
	}
	if got[2].Addr != "p:b" {
		t.Fatalf("suspected provider not deprioritized: %v", got)
	}
	if got[0].Addr != "p:a" || got[1].Addr != "p:c" {
		t.Fatalf("healthy providers reordered: %v", got)
	}
}

// TestLookupRespectsDeadlineBudget pins deadline propagation on the lookup
// path: a coordinator holding a pending lookup releases it when the
// requester's DeadlineMs budget — not the larger MaxWait — runs out.
func TestLookupRespectsDeadlineBudget(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	key := uint64(n.cfg.Channel.Ref(11).ID())
	start := time.Now()
	resp := n.onLookup(&wire.Lookup{Key: key, Seq: 11, MaxWait: 5000, DeadlineMs: 120})
	elapsed := time.Since(start)
	if _, ok := resp.(*wire.LookupResp); !ok {
		t.Fatalf("lookup returned %T", resp)
	}
	if elapsed < 90*time.Millisecond {
		t.Fatalf("lookup returned after %v, before its 120ms deadline budget", elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("lookup held %v; DeadlineMs did not clamp the 5s MaxWait", elapsed)
	}
}
