package live

import (
	"fmt"
	"strconv"
	"time"

	"dco/internal/telemetry"
)

// Metric-name conventions (see DESIGN.md, "Observability"): everything the
// live node records is prefixed dco_live_*, transport-level metrics are
// dco_transport_* (internal/transport), retry/breaker metrics dco_retry_* /
// dco_breaker_*, DHT-kernel metrics dco_dht_* (backend-neutral, both
// kernels), dco_ring_* (Chord maintenance, internal/chordkern) and
// dco_kad_* (Kademlia table state, internal/kademlia). Counters end in
// _total; histograms carry base units (_seconds); gauges are bare nouns.

// liveMetrics is the node's metric set on one telemetry registry. A node
// without a configured registry gets a private one, so every counter is
// always a real atomic — Stats() reads them lock-free either way, and the
// chunk serve path never takes n.mu just to count.
type liveMetrics struct {
	reg   *telemetry.Registry
	trace *telemetry.Trace

	lookupsServed  *telemetry.Counter
	insertsServed  *telemetry.Counter
	chunksServed   *telemetry.Counter
	chunksFetched  *telemetry.Counter
	fetchRetries   *telemetry.Counter
	busyRejections *telemetry.Counter

	// Admission control (admission.go): serves that found the chunk gone,
	// serves paced by the upload budget, chunks a viewer gave up on past
	// its playback horizon, and Busy nacks seen from the viewer side
	// (split by whether the provider attached a RetryAfterMs hint).
	chunksMissed      *telemetry.Counter
	pacedServes       *telemetry.Counter
	chunksAbandoned   *telemetry.Counter
	busyNacks         *telemetry.Counter
	busyNacksHintless *telemetry.Counter

	// Gray-failure defense (streamer.go hedging + protocol.go deadline
	// sheds): hedges launched past the primary's latency estimate, hedges
	// whose duplicate answered first, losers left in flight after a win,
	// and serves shed because the requester's propagated deadline could no
	// longer be met.
	hedgesLaunched  *telemetry.Counter
	hedgeWins       *telemetry.Counter
	hedgesCancelled *telemetry.Counter
	deadlineSheds   *telemetry.Counter

	lookupFailovers      *telemetry.Counter
	providersBlacklisted *telemetry.Counter
	rpcRetries           *telemetry.Counter
	retryBackoffNs       *telemetry.Counter
	breakerOpens         *telemetry.Counter
	breakerCloses        *telemetry.Counter

	republishes    *telemetry.Counter
	handoffEntries *telemetry.Counter

	// Replication layer (replication.go): batch/op volume out, ops folded
	// in, takeover promotions, anti-entropy repair volume, lease expiry,
	// and the byte meters the write-amplification benchmark reads.
	replicateOps      *telemetry.Counter
	replicateBatches  *telemetry.Counter
	replicaOpsApplied *telemetry.Counter
	takeovers         *telemetry.Counter
	takeoverEntries   *telemetry.Counter
	digestRounds      *telemetry.Counter
	digestRepairOps   *telemetry.Counter
	indexExpired      *telemetry.Counter
	lookupFailures    *telemetry.Counter
	indexInsertBytes  *telemetry.Counter
	replicateBytes    *telemetry.Counter
	digestBytes       *telemetry.Counter

	// Ring census & split-brain merge (census.go): probes sent/answered,
	// confirmed split detections, and completed merge protocols.
	censusProbes   *telemetry.Counter
	censusAnswered *telemetry.Counter
	splitsDetected *telemetry.Counter
	ringMerges     *telemetry.Counter

	// Pollution defense (integrity.go): chunks dropped at the buffer choke
	// point, peers this node quarantined, index inserts rejected by the
	// hardening gate (rate limit counted separately), pollution reports in
	// both directions, load reports the contradiction clamps discounted,
	// and manifest traffic.
	integrityRejects     *telemetry.Counter
	peersQuarantined     *telemetry.Counter
	insertsRateLimited   *telemetry.Counter
	insertsRejected      *telemetry.Counter
	pollutionReportsSent *telemetry.Counter
	pollutionReportsSeen *telemetry.Counter
	loadReportsClamped   *telemetry.Counter
	manifestFetches      *telemetry.Counter
	manifestServes       *telemetry.Counter

	// chunkFetchSeconds is the per-chunk acquisition latency — from the
	// moment a viewer starts working on a chunk until it is buffered,
	// lookup wait and provider failovers included. This is the live
	// analogue of the paper's mesh-delay metric (metric 1), observed as a
	// distribution instead of the simulator's whole-network mean.
	chunkFetchSeconds *telemetry.Histogram
	lookupSeconds     *telemetry.Histogram

	// replicationLag is the queue-to-flush delay of replicated index ops:
	// how stale a replica can be when its owner dies (the takeover window).
	replicationLag *telemetry.Histogram

	// serveQueueSeconds is the pace delay admitted chunk serves sat out
	// before sending — the provider-side half of admission latency.
	serveQueueSeconds *telemetry.Histogram

	// mergeSeconds is the duration of one split-brain merge protocol run:
	// confirmation lookup through table folding, notifies, and post-merge
	// index reconciliation.
	mergeSeconds *telemetry.Histogram
}

// newLiveMetrics registers the node's metric set on reg (creating a
// private registry when nil — counters must exist for Stats() even on
// uninstrumented nodes). Registries are per node: two nodes sharing one
// would share counters.
func newLiveMetrics(reg *telemetry.Registry, tr *telemetry.Trace) *liveMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &liveMetrics{
		reg:   reg,
		trace: tr,

		lookupsServed:  reg.Counter("dco_live_lookups_served_total"),
		insertsServed:  reg.Counter("dco_live_inserts_served_total"),
		chunksServed:   reg.Counter("dco_live_chunks_served_total"),
		chunksFetched:  reg.Counter("dco_live_chunks_fetched_total"),
		fetchRetries:   reg.Counter("dco_live_fetch_retries_total"),
		busyRejections: reg.Counter("dco_live_busy_rejections_total"),

		chunksMissed:      reg.Counter("dco_live_chunks_missed_total"),
		pacedServes:       reg.Counter("dco_live_paced_serves_total"),
		chunksAbandoned:   reg.Counter("dco_live_chunks_abandoned_total"),
		busyNacks:         reg.Counter("dco_live_busy_nacks_total"),
		busyNacksHintless: reg.Counter("dco_live_busy_nacks_hintless_total"),

		hedgesLaunched:  reg.Counter("dco_live_hedges_launched_total"),
		hedgeWins:       reg.Counter("dco_live_hedge_wins_total"),
		hedgesCancelled: reg.Counter("dco_live_hedges_cancelled_total"),
		deadlineSheds:   reg.Counter("dco_live_deadline_sheds_total"),

		lookupFailovers:      reg.Counter("dco_live_lookup_failovers_total"),
		providersBlacklisted: reg.Counter("dco_live_providers_blacklisted_total"),
		rpcRetries:           reg.Counter("dco_retry_attempts_total"),
		retryBackoffNs:       reg.Counter("dco_retry_backoff_ns_total"),
		breakerOpens:         reg.Counter("dco_breaker_opens_total"),
		breakerCloses:        reg.Counter("dco_breaker_closes_total"),

		republishes:    reg.Counter("dco_live_republishes_total"),
		handoffEntries: reg.Counter("dco_live_handoff_entries_total"),

		replicateOps:      reg.Counter("dco_live_replicate_ops_total"),
		replicateBatches:  reg.Counter("dco_live_replicate_batches_total"),
		replicaOpsApplied: reg.Counter("dco_live_replica_ops_applied_total"),
		takeovers:         reg.Counter("dco_live_takeovers_total"),
		takeoverEntries:   reg.Counter("dco_live_takeover_entries_total"),
		digestRounds:      reg.Counter("dco_live_digest_rounds_total"),
		digestRepairOps:   reg.Counter("dco_live_digest_repair_ops_total"),
		indexExpired:      reg.Counter("dco_live_index_expired_total"),
		lookupFailures:    reg.Counter("dco_live_lookup_failures_total"),
		indexInsertBytes:  reg.Counter("dco_live_index_insert_bytes_total"),
		replicateBytes:    reg.Counter("dco_live_replicate_bytes_total"),
		digestBytes:       reg.Counter("dco_live_digest_bytes_total"),

		censusProbes:   reg.Counter("dco_live_census_probes_total"),
		censusAnswered: reg.Counter("dco_live_census_answered_total"),
		splitsDetected: reg.Counter("dco_live_splits_detected_total"),
		ringMerges:     reg.Counter("dco_live_ring_merges_total"),

		integrityRejects:     reg.Counter("dco_live_integrity_rejects_total"),
		peersQuarantined:     reg.Counter("dco_live_peers_quarantined_total"),
		insertsRateLimited:   reg.Counter("dco_live_inserts_rate_limited_total"),
		insertsRejected:      reg.Counter("dco_live_inserts_rejected_total"),
		pollutionReportsSent: reg.Counter("dco_live_pollution_reports_sent_total"),
		pollutionReportsSeen: reg.Counter("dco_live_pollution_reports_total"),
		loadReportsClamped:   reg.Counter("dco_live_load_reports_discounted_total"),
		manifestFetches:      reg.Counter("dco_live_manifest_fetches_total"),
		manifestServes:       reg.Counter("dco_live_manifest_serves_total"),

		chunkFetchSeconds: reg.Histogram("dco_live_chunk_fetch_seconds", telemetry.DefLatencyBuckets),
		lookupSeconds:     reg.Histogram("dco_live_lookup_seconds", telemetry.DefLatencyBuckets),
		replicationLag:    reg.Histogram("dco_live_replication_lag_seconds", telemetry.DefLatencyBuckets),
		serveQueueSeconds: reg.Histogram("dco_live_serve_queue_seconds", telemetry.DefLatencyBuckets),
		mergeSeconds:      reg.Histogram("dco_live_merge_seconds", telemetry.DefLatencyBuckets),
	}
}

// registerGauges installs the scrape-time computed gauges: the node's view
// of the paper's fill-ratio and delivered-percentage metrics plus table
// sizes. They lock n.mu only when scraped.
func (n *Node) registerGauges() {
	reg := n.lm.reg
	reg.GaugeFunc("dco_live_buffered_chunks", func() float64 {
		return float64(n.ChunkCount())
	})
	reg.GaugeFunc("dco_live_fill_ratio", func() float64 {
		have, want := n.fillState()
		if want == 0 {
			return 0
		}
		r := float64(have) / float64(want)
		if r > 1 {
			r = 1
		}
		return r
	})
	reg.GaugeFunc("dco_live_delivered_percent", func() float64 {
		_, want := n.fillState()
		if want == 0 {
			return 0
		}
		var got uint64
		if n.cfg.Source {
			got = uint64(want) // the source holds everything it generated
		} else {
			got = n.lm.chunksFetched.Value()
		}
		p := 100 * float64(got) / float64(want)
		if p > 100 {
			p = 100
		}
		return p
	})
	reg.GaugeFunc("dco_live_load_milli", func() float64 {
		return float64(n.pace.loadMilli())
	})
	reg.GaugeFunc("dco_live_admit_queue_depth", func() float64 {
		return float64(n.pace.queueDepth())
	})
	reg.GaugeFunc("dco_live_index_entries", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.index))
	})
	reg.GaugeFunc("dco_live_blacklist_size", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.blacklist))
	})
	reg.GaugeFunc("dco_live_suspected_peers", func() float64 {
		return float64(n.health.SuspectedCount())
	})
	reg.GaugeFunc("dco_live_quarantined_peers", func() float64 {
		return float64(n.health.QuarantinedCount())
	})
	// The registry has no labels, so the per-peer integrity demerit gauge
	// is surfaced as the worst score across peers — enough to alarm on.
	reg.GaugeFunc("dco_live_integrity_demerits_max", func() float64 {
		return n.health.MaxIntegrityScore()
	})
	reg.GaugeFunc("dco_live_manifest_entries", func() float64 {
		n.manMu.Lock()
		defer n.manMu.Unlock()
		return float64(len(n.manifest))
	})
	reg.GaugeFunc("dco_live_replica_owners", func() float64 {
		owners, _ := n.ReplicaCounts()
		return float64(owners)
	})
	reg.GaugeFunc("dco_live_replica_entries", func() float64 {
		_, entries := n.ReplicaCounts()
		return float64(entries)
	})
	reg.GaugeFunc("dco_live_member_cache_size", func() float64 {
		return float64(n.MemberCacheLen())
	})
	reg.GaugeFunc("dco_live_foreign_members", func() float64 {
		return float64(n.ForeignMembers())
	})
}

// fillState returns (chunks held, chunks the node should currently hold):
// the newest sequence it knows of bounds the demand, and the active window
// caps it — the live buffer-fill-ratio analogue of the paper's metric 2.
func (n *Node) fillState() (have, want int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	have = int64(len(n.chunks))
	latest := n.latestGen
	if latest < n.cfg.StartSeq {
		return have, 0
	}
	want = latest - n.cfg.StartSeq + 1
	if w := int64(n.cfg.ActiveWindow); w > 0 && want > w {
		want = w
	}
	return have, want
}

// hookResilience wires the retry/breaker layers' observer seams into the
// node's counters and trace.
func (n *Node) hookResilience() {
	self := n.Addr()
	n.retrier.SetOnRetry(func(addr string, attempt int, pause time.Duration, err error) {
		n.lm.rpcRetries.Inc()
		n.lm.retryBackoffNs.Add(uint64(pause))
		if n.lm.trace != nil {
			n.lm.trace.Record("rpc.retry", self, fmt.Sprintf("peer=%s attempt=%d pause=%s err=%v", addr, attempt, pause, err))
		}
	})
	n.retrier.Breaker().SetOnTransition(func(addr string, opened bool) {
		if opened {
			n.lm.breakerOpens.Inc()
			n.lm.trace.Record("breaker.open", self, addr)
		} else {
			n.lm.breakerCloses.Inc()
			n.lm.trace.Record("breaker.close", self, addr)
		}
	})
}

// traceEvent records a protocol event attributed to this node.
func (n *Node) traceEvent(kind, detail string) {
	if n.lm.trace != nil {
		n.lm.trace.Record(kind, n.tr.Addr(), detail)
	}
}

func seqDetail(seq int64) string { return "seq=" + strconv.FormatInt(seq, 10) }
