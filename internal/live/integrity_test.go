package live

import (
	"testing"
	"time"

	"dco/internal/faulty"
	"dco/internal/transport"
	"dco/internal/wire"
)

// TestManifestTagAuthenticatesRows pins the row-relay contract: a row the
// source minted folds in anywhere, while any bit of tampering — hash, tag,
// or seq reassignment — is rejected before the row can shadow verification.
func TestManifestTagAuthenticatesRows(t *testing.T) {
	src := soloNode(t, fastConfig(true))
	peer := soloNode(t, fastConfig(false))
	data := MakeChunkPayload(src.cfg.Channel, 7)
	src.addManifestEntrySource(7, data)
	rec, ok := src.manifestLookup(7)
	if !ok {
		t.Fatal("source did not cache its own manifest row")
	}

	if !peer.noteManifestEntry(7, rec.hash[:], rec.tag[:]) {
		t.Fatal("authentic row rejected")
	}
	if _, ok := peer.manifestLookup(7); !ok {
		t.Fatal("accepted row not cached")
	}
	// Tampered hash: the tag no longer matches.
	badHash := append([]byte(nil), rec.hash[:]...)
	badHash[0] ^= 1
	if peer.noteManifestEntry(8, badHash, rec.tag[:]) {
		t.Fatal("tampered hash accepted")
	}
	// Replayed to a different seq: the tag binds the seq.
	if peer.noteManifestEntry(9, rec.hash[:], rec.tag[:]) {
		t.Fatal("row replayed across seqs accepted")
	}
	// Truncated fields.
	if peer.noteManifestEntry(7, rec.hash[:16], rec.tag[:]) {
		t.Fatal("short hash accepted")
	}
}

// TestStoreChunkChokePointRejectsPollution pins the single verification
// choke point: a polluted payload never enters the buffer (manifest-covered
// or not), is counted, and charges the serving peer.
func TestStoreChunkChokePointRejectsPollution(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	good := MakeChunkPayload(n.cfg.Channel, 3)
	bad := append([]byte(nil), good...)
	bad[42] ^= 0xFF

	if n.storeChunk(3, bad, "evil:1") {
		t.Fatal("polluted chunk accepted (generator check)")
	}
	if got := n.ChunkCount(); got != 0 {
		t.Fatalf("buffer holds %d chunks after a rejected store", got)
	}
	if n.Stats().IntegrityRejects == 0 {
		t.Fatal("integrity reject not counted")
	}
	if !n.storeChunk(3, good, "honest:1") {
		t.Fatal("clean chunk rejected")
	}

	// Manifest-covered seq: the manifest hash is authoritative, so even a
	// payload that passes the generator check is refused when it does not
	// match the row (and vice versa the row authenticates an exact match).
	src := soloNode(t, fastConfig(true))
	d4 := MakeChunkPayload(n.cfg.Channel, 4)
	src.addManifestEntrySource(4, d4)
	rec, _ := src.manifestLookup(4)
	if !n.noteManifestEntry(4, rec.hash[:], rec.tag[:]) {
		t.Fatal("row rejected")
	}
	bad4 := append([]byte(nil), d4...)
	bad4[len(bad4)-1] ^= 1
	if n.storeChunk(4, bad4, "evil:1") {
		t.Fatal("polluted chunk accepted against its manifest row")
	}
	if !n.storeChunk(4, d4, "honest:1") {
		t.Fatal("manifest-matching chunk rejected")
	}
	if bad := n.VerifyBuffered(); bad != 0 {
		t.Fatalf("VerifyBuffered found %d bad chunks in a clean buffer", bad)
	}
}

// TestPunishPoisonerQuarantines pins the demerit state machine end to end
// on one node: repeated pollution from one peer trips the quarantine
// threshold, the peer drops out of provider usability, and the permanent
// log records it.
func TestPunishPoisonerQuarantines(t *testing.T) {
	cfg := fastConfig(false)
	cfg.QuarantineThreshold = 3
	cfg.QuarantineTTL = 200 * time.Millisecond
	n := soloNode(t, cfg)
	good := MakeChunkPayload(n.cfg.Channel, 1)
	bad := append([]byte(nil), good...)
	bad[0] ^= 1

	evil := "evil:1"
	// Every failed store charges the serving peer one demerit. Decay makes
	// the score fractionally under the count on a real clock, so threshold
	// 3 trips on the fourth charge.
	for i := int64(0); i < 4; i++ {
		if n.storeChunk(i, bad, evil) {
			t.Fatalf("polluted chunk %d accepted", i)
		}
	}
	if !n.health.Quarantined(evil) {
		t.Fatal("4 demerits did not quarantine at threshold 3")
	}
	if n.providerUsable(evil) {
		t.Fatal("quarantined peer still usable as provider")
	}
	if n.Stats().PeersQuarantined == 0 {
		t.Fatal("quarantine not counted")
	}
	found := false
	for _, a := range n.EverQuarantined() {
		if a == evil {
			found = true
		}
	}
	if !found {
		t.Fatalf("EverQuarantined missing %s: %v", evil, n.EverQuarantined())
	}
	// Quarantine expires; the permanent log does not.
	waitFor(t, 2*time.Second, "quarantine expiry", func() bool {
		return !n.health.Quarantined(evil)
	})
	if len(n.EverQuarantined()) == 0 {
		t.Fatal("quarantine log forgot the offender after expiry")
	}
}

// TestInsertRateLimit pins the per-holder token bucket: a spammer blows
// through its burst and gets retryable Busy nacks, while a different
// holder's bucket is untouched.
func TestInsertRateLimit(t *testing.T) {
	cfg := fastConfig(false)
	cfg.InsertRate = 5 // burst 10
	n := soloNode(t, cfg)
	key := uint64(n.cfg.Channel.Ref(1).ID())
	spammer := wire.Entry{ID: 1, Addr: "spam:1"}
	acked, limited := 0, 0
	for i := 0; i < 40; i++ {
		resp := n.onInsert(&wire.Insert{Key: key, Seq: int64(i), Holder: spammer})
		switch m := resp.(type) {
		case *wire.Ack:
			acked++
		case *wire.Error:
			if m.Code != wire.CodeBusy {
				t.Fatalf("rate limit surfaced as %v, want CodeBusy", m.Code)
			}
			limited++
		}
	}
	if limited == 0 {
		t.Fatal("40 rapid inserts never rate limited at rate 5/s")
	}
	if acked > 12 {
		t.Fatalf("%d inserts admitted, burst is 10", acked)
	}
	if n.Stats().InsertsRateLimited == 0 {
		t.Fatal("rate-limited inserts not counted")
	}
	// An unrelated holder has its own bucket.
	other := wire.Entry{ID: 2, Addr: "calm:1"}
	if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 50, Holder: other}).(*wire.Ack); !ok {
		t.Fatal("honest holder caught in the spammer's rate limit")
	}
}

// TestInsertHorizonRejectsFutureSeqs pins the live-edge horizon: with a
// verified head around seq 100, registrations claiming chunks far past the
// edge are terminal-rejected while near-edge ones pass.
func TestInsertHorizonRejectsFutureSeqs(t *testing.T) {
	cfg := fastConfig(false)
	cfg.InsertHorizon = 50
	n := soloNode(t, cfg)
	// Give the node a verified head: an authenticated manifest row at 100.
	n.addManifestEntrySource(100, MakeChunkPayload(n.cfg.Channel, 100))
	holder := wire.Entry{ID: 1, Addr: "prov:1"}
	key := uint64(n.cfg.Channel.Ref(1).ID())

	resp := n.onInsert(&wire.Insert{Key: key, Seq: 120, Holder: holder})
	if _, ok := resp.(*wire.Ack); !ok {
		t.Fatalf("near-edge insert rejected: %v", resp)
	}
	resp = n.onInsert(&wire.Insert{Key: key, Seq: 300, Holder: holder})
	werr, ok := resp.(*wire.Error)
	if !ok || werr.Code != wire.CodeBadRequest {
		t.Fatalf("seq 300 past horizon accepted: %v", resp)
	}
	if n.Stats().InsertsRejected == 0 {
		t.Fatal("horizon rejection not counted")
	}
	// Unregisters are never capacity-checked: removing the bogus row (had
	// it landed) must work even past the horizon.
	resp = n.onInsert(&wire.Insert{Key: key, Seq: 300, Holder: holder, Unregister: true})
	if _, ok := resp.(*wire.Ack); !ok {
		t.Fatalf("unregister past horizon rejected: %v", resp)
	}
}

// TestInsertProviderCap pins the per-entry growth bound: a full entry
// refuses new providers but keeps refreshing registered ones.
func TestInsertProviderCap(t *testing.T) {
	cfg := fastConfig(false)
	cfg.MaxProvidersPerSeq = 2
	n := soloNode(t, cfg)
	key := uint64(n.cfg.Channel.Ref(5).ID())
	mk := func(i uint64) wire.Entry {
		return wire.Entry{ID: i, Addr: string(rune('a'+i)) + ":1"}
	}
	for i := uint64(0); i < 2; i++ {
		if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 5, Holder: mk(i)}).(*wire.Ack); !ok {
			t.Fatalf("provider %d rejected under the cap", i)
		}
	}
	resp := n.onInsert(&wire.Insert{Key: key, Seq: 5, Holder: mk(2)})
	if werr, ok := resp.(*wire.Error); !ok || werr.Code != wire.CodeBadRequest {
		t.Fatalf("third provider accepted past cap 2: %v", resp)
	}
	// Refresh of a registered provider is a lease heartbeat, not growth.
	if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 5, Holder: mk(0), LoadMilli: 100}).(*wire.Ack); !ok {
		t.Fatal("refresh of an existing provider rejected by the cap")
	}
}

// TestInsertQuarantinedHolderRejected: a quarantined peer cannot
// re-register itself into the index, but can still be unregistered.
func TestInsertQuarantinedHolderRejected(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	evil := wire.Entry{ID: 9, Addr: "evil:1"}
	key := uint64(n.cfg.Channel.Ref(3).ID())
	n.health.ForceQuarantine(evil.Addr)
	resp := n.onInsert(&wire.Insert{Key: key, Seq: 3, Holder: evil})
	if werr, ok := resp.(*wire.Error); !ok || werr.Code != wire.CodeBadRequest {
		t.Fatalf("quarantined holder registered: %v", resp)
	}
	if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 3, Holder: evil, Unregister: true}).(*wire.Ack); !ok {
		t.Fatal("unregister of a quarantined holder refused")
	}
}

// TestPollutionReportsScrubAndQuarantine pins the coordinator-side path:
// one accusation is noted but harmless, a second distinct reporter trips
// force-quarantine and scrubs the target's index rows; duplicates from one
// reporter never count twice; self-accusations are malformed; and the
// coordinator never quarantines itself on hearsay.
func TestPollutionReportsScrubAndQuarantine(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	evil := wire.Entry{ID: 66, Addr: "evil:1"}
	key := uint64(n.cfg.Channel.Ref(8).ID())
	if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 8, Holder: evil}).(*wire.Ack); !ok {
		t.Fatal("setup insert failed")
	}

	report := func(from string) wire.Message {
		return n.onPollutionReport(&wire.PollutionReport{
			From: wire.Entry{ID: 1, Addr: from}, Key: key, Seq: 8, Target: evil,
		})
	}
	// One reporter, twice: below the distinct threshold.
	report("r1:1")
	report("r1:1")
	if n.health.Quarantined(evil.Addr) {
		t.Fatal("single reporter (duplicated) tripped quarantine")
	}
	resp := n.onLookup(&wire.Lookup{Key: key, Seq: 8, MaxWait: 0})
	if lr := resp.(*wire.LookupResp); len(lr.Providers) == 0 {
		t.Fatal("provider scrubbed before the threshold")
	}
	// Second distinct reporter: trip.
	report("r2:1")
	if !n.health.Quarantined(evil.Addr) {
		t.Fatal("two distinct reporters did not trip quarantine")
	}
	resp = n.onLookup(&wire.Lookup{Key: key, Seq: 8, MaxWait: 0})
	if lr := resp.(*wire.LookupResp); len(lr.Providers) != 0 {
		t.Fatalf("scrubbed provider still advertised: %v", lr.Providers)
	}
	if n.Stats().PollutionReportsSeen < 3 {
		t.Fatalf("reports seen %d, want >= 3", n.Stats().PollutionReportsSeen)
	}

	// Self-accusation is malformed.
	resp = n.onPollutionReport(&wire.PollutionReport{From: evil, Key: key, Seq: 8, Target: evil})
	if _, ok := resp.(*wire.Error); !ok {
		t.Fatalf("self-accusation accepted: %v", resp)
	}
	// Hearsay against this node itself never self-quarantines.
	self := n.wireSelf()
	n.onPollutionReport(&wire.PollutionReport{From: wire.Entry{ID: 1, Addr: "r1:1"}, Key: key, Seq: 8, Target: self})
	n.onPollutionReport(&wire.PollutionReport{From: wire.Entry{ID: 2, Addr: "r2:1"}, Key: key, Seq: 8, Target: self})
	if n.health.Quarantined(n.Addr()) {
		t.Fatal("node quarantined itself on hearsay")
	}
}

// TestLookupParksWhenAllProvidersQuarantined: an entry whose only
// providers are quarantined answers like an empty one instead of handing
// out known poisoners.
func TestLookupParksWhenAllProvidersQuarantined(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	evil := wire.Entry{ID: 66, Addr: "evil:1"}
	key := uint64(n.cfg.Channel.Ref(2).ID())
	if _, ok := n.onInsert(&wire.Insert{Key: key, Seq: 2, Holder: evil}).(*wire.Ack); !ok {
		t.Fatal("setup insert failed")
	}
	n.health.ForceQuarantine(evil.Addr)
	resp := n.onLookup(&wire.Lookup{Key: key, Seq: 2, MaxWait: 0})
	if lr := resp.(*wire.LookupResp); len(lr.Providers) != 0 {
		t.Fatalf("lookup handed out a quarantined provider: %v", lr.Providers)
	}
}

// TestLatencyContradictionClampsLyingLoad pins the viewer-side defense
// against the lying load reporter: a provider claiming near-idle while its
// observed latency towers over the cohort's best is discounted to
// saturated and sorts behind an honestly-loaded fast peer.
func TestLatencyContradictionClampsLyingLoad(t *testing.T) {
	n := soloNode(t, fastConfig(false))
	liar := wire.Entry{ID: 1, Addr: "liar:1"}
	honest := wire.Entry{ID: 2, Addr: "honest:1"}
	// Observed reality: the liar's serves take 120ms, the honest peer 4ms.
	for i := 0; i < 8; i++ {
		n.health.Observe(liar.Addr, 120*time.Millisecond, true)
		n.health.Observe(honest.Addr, 4*time.Millisecond, true)
	}
	// Claimed load: liar says idle, honest admits 800/1000.
	n.noteProviderLoad(liar.Addr, 0)
	n.noteProviderLoad(honest.Addr, 800)

	got := n.orderProvidersByLoad([]wire.Entry{liar, honest})
	if got[0].Addr != honest.Addr {
		t.Fatalf("lying idle claim captured the order: %v", got)
	}
	if n.Stats().LoadReportsClamped == 0 {
		t.Fatal("contradiction clamp not counted")
	}
}

// TestPoisonerQuarantinedEndToEnd is the fault-matrix acceptance scenario
// for the pollution defense: the only provider poisons every chunk. The
// viewer must reject every payload at the choke point (buffer stays
// empty), quarantine the poisoner, and — once the poison stops and the
// quarantine lapses — complete the stream with a fully verified buffer.
func TestPoisonerQuarantinedEndToEnd(t *testing.T) {
	const seed = 20260808
	f := transport.NewFabric()
	in := faulty.NewInjector(seed)

	cfg := resilientConfig(true)
	cfg.Channel.Count = 12
	src, err := NewNode(cfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	vcfg := resilientConfig(false)
	vcfg.Channel.Count = 12
	vcfg.QuarantineTTL = 2 * time.Second
	v, err := NewNode(vcfg, faultyAttach(f, in))
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	in.SetPoisoner(src.Addr(), 1)
	src.Start()
	v.Start()
	defer src.Close()
	defer v.Close()

	waitFor(t, 30*time.Second, "poisoned transfers to quarantine the source", func() bool {
		s := v.Stats()
		return s.PeersQuarantined >= 1 && s.IntegrityRejects >= 3
	})
	if got := v.ChunkCount(); got != 0 {
		t.Fatalf("viewer buffered %d chunks from a full-time poisoner", got)
	}
	quarantined := false
	for _, a := range v.EverQuarantined() {
		if a == src.Addr() {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("quarantine log %v does not name the poisoner %s", v.EverQuarantined(), src.Addr())
	}

	// Poison stops; quarantine and blacklist lapse; the stream completes
	// and everything buffered verifies.
	in.SetPoisoner(src.Addr(), 0)
	want := int(vcfg.Channel.Count)
	waitFor(t, 60*time.Second, "viewer to complete the stream after the poison clears", func() bool {
		return v.ChunkCount() >= want
	})
	if bad := v.VerifyBuffered(); bad != 0 {
		t.Fatalf("%d polluted chunks in the final buffer", bad)
	}
}
