package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dco/internal/chord"
	"dco/internal/transport"
	"dco/internal/wire"
)

// replConfig is resilientConfig tuned for the replication tests: fast
// flush and anti-entropy cadences, republication disabled so that what
// the tests observe is the replication layer and nothing else.
func replConfig() Config {
	cfg := resilientConfig(false)
	cfg.Channel.Count = 0
	cfg.Replicas = 2
	cfg.ReplicateEvery = 25 * time.Millisecond
	cfg.AntiEntropyEvery = 200 * time.Millisecond
	cfg.IndexTTL = 30 * time.Second
	cfg.RepublishEvery = 0
	return cfg
}

// startMaint launches the maintenance loops the way Start() would,
// without the generate/fetch pipelines (these tests drive index ops by
// hand).
func startMaint(nd *Node) {
	nd.startRingMaint()
	nd.loop(nd.cfg.RepublishEvery, nd.republish)
	if nd.cfg.Replicas > 0 {
		nd.loop(nd.cfg.ReplicateEvery, nd.replicateFlush)
		nd.loop(nd.cfg.AntiEntropyEvery, nd.antiEntropy)
	}
}

// buildRing assembles and converges an n-node ring of cfg-shaped nodes.
func buildRing(t *testing.T, f *transport.Fabric, cfg Config, count int) []*Node {
	t.Helper()
	var nodes []*Node
	for i := 0; i < count; i++ {
		nd, err := NewNode(cfg, memAttach(f))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := nd.Join(nodes[0].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, nd)
	}
	for _, nd := range nodes {
		startMaint(nd)
	}
	waitFor(t, 10*time.Second, "ring convergence", func() bool {
		return ringCorrect(nodes)
	})
	return nodes
}

func closeAll(nodes []*Node) {
	for _, nd := range nodes {
		nd.Close()
	}
}

// ownerOf locates the ring member owning seq's chunk key.
func ownerOf(t *testing.T, nodes []*Node, seq int64) (*Node, uint64) {
	t.Helper()
	key := uint64(nodes[0].cfg.Channel.Ref(seq).ID())
	owner, _, err := nodes[0].FindOwner(key)
	if err != nil {
		t.Fatalf("FindOwner: %v", err)
	}
	for _, nd := range nodes {
		if nd.Addr() == owner.Addr {
			return nd, key
		}
	}
	t.Fatalf("owner %s not among ring members", owner.Addr)
	return nil, 0
}

// replicaHolds reports whether nd replicates (ownerAddr, seq) with
// provAddr among the providers.
func replicaHolds(nd *Node, ownerAddr string, seq int64, provAddr string) bool {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	rs := nd.replicas[ownerAddr]
	if rs == nil {
		return false
	}
	re := rs.entries[seq]
	if re == nil {
		return false
	}
	for _, p := range re.providers {
		if p.ent.Addr == provAddr {
			return true
		}
	}
	return false
}

// countReplicaHolders counts ring members replicating (ownerAddr, seq).
func countReplicaHolders(nodes []*Node, ownerAddr string, seq int64, provAddr string) int {
	c := 0
	for _, nd := range nodes {
		if nd.Addr() != ownerAddr && replicaHolds(nd, ownerAddr, seq, provAddr) {
			c++
		}
	}
	return c
}

// TestInsertsReplicateToSuccessors: an accepted Insert shows up at the
// owner's first r successors within a few flush periods.
func TestInsertsReplicateToSuccessors(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildRing(t, f, replConfig(), 5)
	defer closeAll(nodes)

	const seq = 7
	owner, key := ownerOf(t, nodes, seq)
	prov := wire.Entry{ID: 4242, Addr: nodes[0].Addr()}
	resp := owner.onInsert(&wire.Insert{Key: key, Seq: seq, Holder: prov, UpBps: 1000})
	if _, ok := resp.(*wire.Ack); !ok {
		t.Fatalf("insert at owner rejected: %#v", resp)
	}

	waitFor(t, 5*time.Second, "insert to replicate to r successors", func() bool {
		return countReplicaHolders(nodes, owner.Addr(), seq, prov.Addr) >= owner.cfg.Replicas
	})

	// An unregister replicates too: the provider disappears from replicas.
	owner.onInsert(&wire.Insert{Key: key, Seq: seq, Holder: prov, Unregister: true})
	waitFor(t, 5*time.Second, "unregister to replicate", func() bool {
		return countReplicaHolders(nodes, owner.Addr(), seq, prov.Addr) == 0
	})
}

// TestTakeoverAfterCoordinatorDeath: killing a coordinator abruptly must
// not lose its index — the first live successor promotes the replicated
// entries and answers lookups from them.
func TestTakeoverAfterCoordinatorDeath(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildRing(t, f, replConfig(), 5)
	defer closeAll(nodes)

	const seq = 11
	owner, key := ownerOf(t, nodes, seq)
	prov := wire.Entry{ID: 777, Addr: nodes[0].Addr()}
	if nodes[0] == owner {
		prov.Addr = nodes[1].Addr()
	}
	owner.onInsert(&wire.Insert{Key: key, Seq: seq, Holder: prov, UpBps: 1000})
	waitFor(t, 5*time.Second, "entry to replicate before the kill", func() bool {
		return countReplicaHolders(nodes, owner.Addr(), seq, prov.Addr) >= owner.cfg.Replicas
	})

	owner.Close()
	var survivors []*Node
	for _, nd := range nodes {
		if nd != owner {
			survivors = append(survivors, nd)
		}
	}
	waitFor(t, 15*time.Second, "ring to heal around the dead coordinator", func() bool {
		return ringCorrect(survivors)
	})

	// The lookup is answered from the promoted replica — no republication
	// ran in this configuration, so nothing else could restore the entry.
	asker := survivors[0]
	if asker.Addr() == prov.Addr && len(survivors) > 1 {
		asker = survivors[1]
	}
	var got []wire.Entry
	waitFor(t, 10*time.Second, "lookup to be answered from the replica", func() bool {
		providers, err := asker.lookupProviders(key, seq, time.Time{})
		if err != nil {
			return false
		}
		got = providers
		return len(providers) > 0
	})
	if got[0].Addr != prov.Addr {
		t.Fatalf("lookup answered %v, want provider %s", got, prov.Addr)
	}
	var takeoverEntries uint64
	for _, nd := range survivors {
		takeoverEntries += nd.lm.takeoverEntries.Value()
	}
	if takeoverEntries == 0 {
		t.Fatal("no replica entry was ever promoted; lookup must have been answered some other way")
	}
}

// TestGracefulLeaveSurvivesSuccessorDeath is the PR 3 regression test for
// the handoff-loss bug: before replication, a graceful leaver handed its
// whole index to exactly one successor, and if that successor died before
// the next republish the entries were simply gone. Replication sends the
// handed-off range past the new owner, whose death now promotes it.
func TestGracefulLeaveSurvivesSuccessorDeath(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildRing(t, f, replConfig(), 5)
	defer closeAll(nodes)

	const seq = 13
	owner, key := ownerOf(t, nodes, seq)
	// The provider must be a node that survives both departures.
	var prov *Node
	_, succAddr := owner.Successor()
	for _, nd := range nodes {
		if nd != owner && nd.Addr() != succAddr {
			prov = nd
			break
		}
	}
	provEnt := wire.Entry{ID: uint64(prov.ID()), Addr: prov.Addr()}
	owner.onInsert(&wire.Insert{Key: key, Seq: seq, Holder: provEnt, UpBps: 1000})

	// Graceful leave: index hands off to the successor and replicates past
	// it in the same breath.
	if err := owner.Leave(); err != nil {
		t.Fatalf("leave: %v", err)
	}
	var heir *Node
	var survivors []*Node
	for _, nd := range nodes {
		if nd == owner {
			continue
		}
		survivors = append(survivors, nd)
		if nd.Addr() == succAddr {
			heir = nd
		}
	}
	waitFor(t, 10*time.Second, "ring to settle after the leave", func() bool {
		return ringCorrect(survivors)
	})

	// Now the sole handoff successor dies abruptly — the pre-replication
	// stack lost the entry here with RepublishEvery disabled.
	heir.Close()
	var remaining []*Node
	for _, nd := range survivors {
		if nd != heir {
			remaining = append(remaining, nd)
		}
	}
	waitFor(t, 15*time.Second, "ring to heal around the dead heir", func() bool {
		return ringCorrect(remaining)
	})

	asker := remaining[0]
	if asker == prov && len(remaining) > 1 {
		asker = remaining[1]
	}
	waitFor(t, 10*time.Second, "handed-off entry to survive the heir's death", func() bool {
		providers, err := asker.lookupProviders(key, seq, time.Time{})
		return err == nil && len(providers) > 0 && providers[0].Addr == prov.Addr()
	})
}

// TestAntiEntropyRepairsMissedReplication: with batch flushing effectively
// disabled, the digest exchange alone must converge replicas onto the
// owner's index.
func TestAntiEntropyRepairsMissedReplication(t *testing.T) {
	cfg := replConfig()
	cfg.ReplicateEvery = time.Hour // batches never flush; only digests run
	f := transport.NewFabric()
	nodes := buildRing(t, f, cfg, 5)
	defer closeAll(nodes)

	const seq = 17
	owner, key := ownerOf(t, nodes, seq)
	prov := wire.Entry{ID: 31337, Addr: nodes[0].Addr()}
	owner.onInsert(&wire.Insert{Key: key, Seq: seq, Holder: prov, UpBps: 1000})

	waitFor(t, 10*time.Second, "digest round to repair the replicas", func() bool {
		return countReplicaHolders(nodes, owner.Addr(), seq, prov.Addr) >= owner.cfg.Replicas
	})
	if owner.Stats().DigestRepairs == 0 {
		t.Fatal("replicas converged without any digest repair being counted")
	}

	// Divergence repairs too: corrupt one replica's provider set and wait
	// for the hash mismatch to trigger a re-send.
	var replica *Node
	for _, nd := range nodes {
		if nd != owner && replicaHolds(nd, owner.Addr(), seq, prov.Addr) {
			replica = nd
			break
		}
	}
	replica.mu.Lock()
	replica.replicas[owner.Addr()].entries[seq].providers = nil
	replica.mu.Unlock()
	waitFor(t, 10*time.Second, "diverged replica to be repaired", func() bool {
		return replicaHolds(replica, owner.Addr(), seq, prov.Addr)
	})
}

// TestIndexLeaseExpiry: a provider that stops republishing ages out of
// lookup answers once its lease lapses (satellite: coordinator-side TTL).
func TestIndexLeaseExpiry(t *testing.T) {
	f := transport.NewFabric()
	cfg := fastConfig(true)
	cfg.Channel.Count = 0
	cfg.Replicas = 0
	cfg.IndexTTL = 250 * time.Millisecond
	n, err := NewNode(cfg, memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	key := uint64(n.cfg.Channel.Ref(3).ID())
	n.onInsert(&wire.Insert{Key: key, Seq: 3, Holder: wire.Entry{ID: 1, Addr: "mem://dead"}, UpBps: 1})
	if lr := n.onLookup(&wire.Lookup{Key: key, Seq: 3, MaxWait: 0}).(*wire.LookupResp); len(lr.Providers) == 0 {
		t.Fatal("fresh registration not served")
	}
	time.Sleep(400 * time.Millisecond)
	if lr := n.onLookup(&wire.Lookup{Key: key, Seq: 3, MaxWait: 0}).(*wire.LookupResp); len(lr.Providers) != 0 {
		t.Fatalf("expired registration still served: %v", lr.Providers)
	}
	if n.Stats().ProvidersExpired == 0 {
		t.Fatal("expiry not counted")
	}

	// A re-insert refreshes the lease rather than duplicating the record.
	n.onInsert(&wire.Insert{Key: key, Seq: 5, Holder: wire.Entry{ID: 2, Addr: "mem://alive"}, UpBps: 1})
	time.Sleep(150 * time.Millisecond)
	n.onInsert(&wire.Insert{Key: key, Seq: 5, Holder: wire.Entry{ID: 2, Addr: "mem://alive"}, UpBps: 1})
	time.Sleep(150 * time.Millisecond) // 300ms after first insert, 150ms after refresh
	lr := n.onLookup(&wire.Lookup{Key: key, Seq: 5, MaxWait: 0}).(*wire.LookupResp)
	if len(lr.Providers) != 1 {
		t.Fatalf("refreshed registration: got %v, want exactly one provider", lr.Providers)
	}
}

// TestLeaseTTLWireRoundTrip pins the relative-TTL discipline: deadlines
// never cross the wire as absolute times, and zero means no lease in both
// directions.
func TestLeaseTTLWireRoundTrip(t *testing.T) {
	now := time.Now()
	if got := ttlMillis(time.Time{}, now); got != 0 {
		t.Fatalf("zero deadline -> ttl %d, want 0", got)
	}
	if got := restamp(0, now); !got.IsZero() {
		t.Fatalf("ttl 0 -> deadline %v, want zero", got)
	}
	ttl := ttlMillis(now.Add(5*time.Second), now)
	if ttl < 4900 || ttl > 5100 {
		t.Fatalf("5s lease -> ttl %dms", ttl)
	}
	back := restamp(ttl, now)
	if d := back.Sub(now); d < 4*time.Second || d > 6*time.Second {
		t.Fatalf("restamped lease %v from now", d)
	}
	if got := ttlMillis(now.Add(-time.Second), now); got != 1 {
		t.Fatalf("expired-in-flight lease -> ttl %d, want 1", got)
	}
}

// TestProviderHashSemantics pins the digest hash: order-insensitive,
// lease-insensitive, membership-sensitive.
func TestProviderHashSemantics(t *testing.T) {
	a := provRec{ent: wire.Entry{ID: 1, Addr: "mem://a"}, expire: time.Now()}
	b := provRec{ent: wire.Entry{ID: 2, Addr: "mem://b"}}
	h1 := providerHash([]provRec{a, b})
	h2 := providerHash([]provRec{b, a})
	if h1 != h2 {
		t.Fatal("hash is order-sensitive")
	}
	a2 := a
	a2.expire = time.Now().Add(time.Hour)
	if providerHash([]provRec{a2, b}) != h1 {
		t.Fatal("hash is lease-sensitive: every refresh would force a repair")
	}
	if providerHash([]provRec{a}) == h1 {
		t.Fatal("hash ignores membership")
	}
	// The separator keeps concatenations apart: {"ab"} vs {"a","b"}.
	x := providerHash([]provRec{{ent: wire.Entry{Addr: "ab"}}})
	y := providerHash([]provRec{{ent: wire.Entry{Addr: "a"}}, {ent: wire.Entry{Addr: "b"}}})
	if x == y {
		t.Fatal("hash is concatenation-ambiguous")
	}
}

// TestConcurrentJoinsOwnershipTransfer (satellite: chord key-ownership
// transfer under concurrent joins): two nodes join between the same pair
// of a converged ring while inserts are in flight; afterwards every
// inserted seq must resolve at the sorted-ring owner. The widest-gap
// geometry and the sorted-ring oracle are Chord invariants, so this test
// pins the chord backend regardless of DCO_DHT.
func TestConcurrentJoinsOwnershipTransfer(t *testing.T) {
	f := transport.NewFabric()
	cfg := replConfig()
	cfg.DHT = "chord"
	cfg.RepublishEvery = 500 * time.Millisecond // production repair path stays on
	nodes := buildRing(t, f, cfg, 3)
	defer closeAll(nodes)

	// Addresses are deterministic (mem://N in attach order) and node IDs
	// derive from the address alone, so future IDs are computable before
	// any node exists. Find the widest gap in the current ring and two
	// future attach slots whose IDs both land inside it.
	ids := make([]uint64, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.ID()
	}
	gapLo, gapHi := widestGap(ids)
	next := 4 // three nodes attached so far -> next fabric address is mem://4
	var slots []int
	var insideCount int
	for k := next; insideCount < 2 && k < next+256; k++ {
		slots = append(slots, k)
		if chord.InOO(chord.ID(gapLo), chord.HashString(fmt.Sprintf("live-node-mem://%d", k)), chord.ID(gapHi)) {
			insideCount++
		} else {
			continue
		}
		if insideCount == 2 {
			break
		}
	}
	if insideCount < 2 {
		t.Skip("no two attach slots hash into the widest gap within 256 tries")
	}

	// Attach every slot in order (addresses are positional); only the two
	// in-gap nodes join, the rest are closed unused.
	var joiners []*Node
	for range slots {
		nd, err := NewNode(cfg, memAttach(f))
		if err != nil {
			t.Fatal(err)
		}
		if chord.InOO(chord.ID(gapLo), chord.ID(nd.ID()), chord.ID(gapHi)) {
			joiners = append(joiners, nd)
		} else {
			nd.Close()
		}
	}
	if len(joiners) != 2 {
		t.Fatalf("expected 2 in-gap joiners, got %d", len(joiners))
	}

	// Inserts in flight throughout both joins.
	inserter := nodes[0]
	stop := make(chan struct{})
	var insMu sync.Mutex
	var inserted []int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for seq := int64(100); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			inserter.insertIndex(seq)
			insMu.Lock()
			inserted = append(inserted, seq)
			insMu.Unlock()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Both join concurrently, between the same pair. Routing can transiently
	// loop while the other join is mid-flight (fingers lag the membership
	// change), so each joiner retries — exactly what a real node does when a
	// join bounces off a churning ring.
	var jwg sync.WaitGroup
	errs := make([]error, 2)
	for i, nd := range joiners {
		jwg.Add(1)
		go func(i int, nd *Node) {
			defer jwg.Done()
			for attempt := 0; attempt < 10; attempt++ {
				if errs[i] = nd.Join(nodes[0].Addr()); errs[i] == nil {
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}(i, nd)
	}
	jwg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent join %d: %v", i, err)
		}
	}
	for _, nd := range joiners {
		startMaint(nd)
	}
	all := append(append([]*Node{}, nodes...), joiners...)
	defer closeAll(joiners)
	waitFor(t, 15*time.Second, "5-node ring to converge after concurrent joins", func() bool {
		return ringCorrect(all)
	})
	time.Sleep(300 * time.Millisecond) // a few more insert rounds post-convergence
	close(stop)
	wg.Wait()

	// Every inserted seq resolves, and at the node the sorted ring says
	// owns its key (ownership transferred correctly through the joins).
	insMu.Lock()
	seqs := append([]int64(nil), inserted...)
	insMu.Unlock()
	if len(seqs) == 0 {
		t.Fatal("no inserts happened during the joins")
	}
	for _, seq := range seqs {
		key := uint64(cfg.Channel.Ref(seq).ID())
		wantOwner := sortedRingOwner(all, key)
		waitFor(t, 10*time.Second, fmt.Sprintf("seq %d to resolve at its owner", seq), func() bool {
			owner, _, err := nodes[0].FindOwner(key)
			if err != nil || owner.Addr != wantOwner.Addr() {
				return false
			}
			providers, err := nodes[0].lookupProviders(key, seq, time.Time{})
			if err != nil {
				return false
			}
			for _, p := range providers {
				if p.Addr == inserter.Addr() {
					return true
				}
			}
			return false
		})
	}
}

// widestGap returns the (lo, hi) bounding IDs of the largest arc between
// consecutive ring members.
func widestGap(ids []uint64) (lo, hi uint64) {
	sorted := append([]uint64(nil), ids...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	best := uint64(0)
	for i := range sorted {
		next := sorted[(i+1)%len(sorted)]
		width := next - sorted[i] // wraps correctly in uint64
		if width > best {
			best = width
			lo, hi = sorted[i], next
		}
	}
	return lo, hi
}

// sortedRingOwner returns the member owning key per the sorted ring: the
// first node clockwise at or after key.
func sortedRingOwner(nodes []*Node, key uint64) *Node {
	sorted := append([]*Node(nil), nodes...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].ID() < sorted[i].ID() {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for _, nd := range sorted {
		if nd.ID() >= key {
			return nd
		}
	}
	return sorted[0] // wrapped
}
