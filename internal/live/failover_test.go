package live

import (
	"testing"
	"time"

	"dco/internal/retry"
	"dco/internal/telemetry"
	"dco/internal/transport"
	"dco/internal/wire"
)

// resilientConfig is fastConfig with test-scaled retry/breaker settings,
// plus full instrumentation (a per-node registry and trace) so every
// failover and fault-matrix scenario runs with telemetry enabled — the
// observability layer must never perturb recovery behavior.
func resilientConfig(source bool) Config {
	cfg := fastConfig(source)
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Trace = telemetry.NewTrace(2048)
	cfg.Retry = retry.Policy{
		MaxAttempts:    3,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.5,
		Budget:         time.Second,
	}
	cfg.Breaker = retry.BreakerConfig{Threshold: 5, Cooldown: 500 * time.Millisecond}
	cfg.ProviderCooldown = 400 * time.Millisecond
	cfg.JoinAttempts = 2
	return cfg
}

// TestJoinAnyFailsOverDeadBootstrap: a dead first bootstrap must not kill
// the join when a live one follows it (the old Join died on the first
// error).
func TestJoinAnyFailsOverDeadBootstrap(t *testing.T) {
	f := transport.NewFabric()
	alive, err := NewNode(resilientConfig(true), memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	defer alive.Close()
	dead, _ := NewNode(resilientConfig(false), memAttach(f))
	deadAddr := dead.Addr()
	dead.Close()

	v, _ := NewNode(resilientConfig(false), memAttach(f))
	defer v.Close()
	if err := v.JoinAny([]string{deadAddr, alive.Addr()}); err != nil {
		t.Fatalf("JoinAny with one dead bootstrap failed: %v", err)
	}
	if _, succ := v.Successor(); succ != alive.Addr() {
		t.Fatalf("joined node's successor = %s, want %s", succ, alive.Addr())
	}
}

// TestJoinAllBootstrapsDead: when every bootstrap is unreachable the join
// fails with an error that names each attempted address.
func TestJoinAllBootstrapsDead(t *testing.T) {
	f := transport.NewFabric()
	d1, _ := NewNode(resilientConfig(false), memAttach(f))
	d2, _ := NewNode(resilientConfig(false), memAttach(f))
	a1, a2 := d1.Addr(), d2.Addr()
	d1.Close()
	d2.Close()

	v, _ := NewNode(resilientConfig(false), memAttach(f))
	defer v.Close()
	err := v.JoinAny([]string{a1, a2})
	if err == nil {
		t.Fatal("join via only dead bootstraps succeeded")
	}
	for _, addr := range []string{a1, a2} {
		if !containsStr(err.Error(), addr) {
			t.Errorf("join error does not mention attempted bootstrap %s: %v", addr, err)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestJoinEmptyBootstrapList: no usable address is an immediate, clear
// error (not a panic or a silent no-op).
func TestJoinEmptyBootstrapList(t *testing.T) {
	f := transport.NewFabric()
	v, _ := NewNode(resilientConfig(false), memAttach(f))
	defer v.Close()
	if err := v.JoinAny([]string{"", v.Addr()}); err == nil {
		t.Fatal("join with no usable bootstrap succeeded")
	}
}

// TestLookupRecoversAfterCoordinatorDeath: a lookup whose coordinator
// died must recover via re-route/failover once the ring has healed —
// where the pre-resilience single-shot path returned a hard error.
func TestLookupRecoversAfterCoordinatorDeath(t *testing.T) {
	f := transport.NewFabric()
	cfg := resilientConfig(true)
	cfg.Channel.Count = 0 // drive by hand, no generator traffic

	src, _ := NewNode(cfg, memAttach(f))
	var nodes []*Node
	for i := 0; i < 4; i++ {
		nd, _ := NewNode(cfg, memAttach(f))
		if err := nd.Join(src.Addr()); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
	}
	all := append([]*Node{src}, nodes...)
	for _, nd := range all {
		nd.startRingMaint()
	}
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()
	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		return ringSize(src, all) == len(all)
	})

	// Find the coordinator for seq 7's key — it must not be src, which we
	// want alive to issue lookups from.
	const seq = 7
	key := uint64(cfg.Channel.Ref(seq).ID())
	owner, _, err := src.FindOwner(key)
	if err != nil {
		t.Fatal(err)
	}
	var coord *Node
	for _, nd := range nodes {
		if nd.Addr() == owner.Addr {
			coord = nd
		}
	}
	if coord == nil {
		t.Skipf("key owner is the source itself; cannot kill it for this scenario")
	}

	// Replicate the index entry at the coordinator and every node (the
	// role republication plays in production), so whichever node inherits
	// the key range can answer.
	provider := wire.Entry{ID: 12345, Addr: src.Addr()}
	for _, nd := range all {
		nd.mu.Lock()
		e := nd.indexEntryLocked(seq)
		e.providers = append(e.providers, provRec{ent: provider})
		nd.mu.Unlock()
	}

	// Kill the coordinator abruptly and let the ring heal around it.
	coord.Close()
	survivors := make([]*Node, 0, len(all)-1)
	for _, nd := range all {
		if nd != coord {
			survivors = append(survivors, nd)
		}
	}
	waitFor(t, 10*time.Second, "ring to heal around the dead coordinator", func() bool {
		return ringSize(src, survivors) == len(survivors)
	})

	// One lookup call must now succeed end-to-end: the resilience layer
	// re-routes internally instead of surfacing the dead peer.
	providers, err := src.lookupProviders(key, seq, time.Time{})
	if err != nil {
		t.Fatalf("lookup after coordinator death: %v", err)
	}
	if len(providers) == 0 || providers[0].Addr != provider.Addr {
		t.Fatalf("lookup answered %v, want provider %s", providers, provider.Addr)
	}
}

// TestFetchBlacklistsFailingProvider: a provider that fails a transfer is
// not re-asked within its cooldown.
func TestFetchBlacklistsFailingProvider(t *testing.T) {
	f := transport.NewFabric()
	cfg := resilientConfig(false)
	n, _ := NewNode(cfg, memAttach(f))
	defer n.Close()

	n.blacklistProvider("mem://gone")
	if n.providerUsable("mem://gone") {
		t.Fatal("blacklisted provider still usable")
	}
	if !n.providerUsable("mem://fine") {
		t.Fatal("unrelated provider blacklisted")
	}
	if got := n.Stats().ProvidersBlacklisted; got != 1 {
		t.Fatalf("ProvidersBlacklisted = %d, want 1", got)
	}
	// The cooldown expires.
	waitFor(t, 5*time.Second, "cooldown to expire", func() bool {
		return n.providerUsable("mem://gone")
	})
}

// TestBreakerFailsFastOnDeadPeer: repeated calls to a dead address open
// its circuit; once open, calls stop hitting the transport.
func TestBreakerFailsFastOnDeadPeer(t *testing.T) {
	f := transport.NewFabric()
	cfg := resilientConfig(false)
	cfg.Breaker = retry.BreakerConfig{Threshold: 3, Cooldown: time.Hour}
	n, _ := NewNode(cfg, memAttach(f))
	defer n.Close()
	dead, _ := NewNode(resilientConfig(false), memAttach(f))
	deadAddr := dead.Addr()
	dead.Close()

	for i := 0; i < 3; i++ {
		_, _ = n.callIdem(deadAddr, &wire.Ping{})
	}
	if got := n.Stats().BreakerOpens; got == 0 {
		t.Fatal("circuit never opened against a dead peer")
	}
	if !n.retrier.Breaker().Open(deadAddr) {
		t.Fatal("breaker reports closed for the dead address")
	}
	start := time.Now()
	_, err := n.callIdem(deadAddr, &wire.Ping{})
	if err == nil {
		t.Fatal("call to dead peer with open circuit succeeded")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("open circuit did not fail fast: %v", elapsed)
	}
}
