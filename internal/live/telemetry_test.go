package live

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dco/internal/telemetry"
	"dco/internal/transport"
)

// meteredAttach attaches nodes to the fabric with transport metrics wired
// to the node's registry — the in-process equivalent of dconode's
// -metrics-addr plumbing.
func meteredAttach(f *transport.Fabric, reg *telemetry.Registry) func(transport.Handler) (transport.Transport, error) {
	return func(h transport.Handler) (transport.Transport, error) {
		m := f.Attach(h)
		m.SetMetrics(transport.NewMetrics(reg))
		return m, nil
	}
}

// scrape fetches and parses a Prometheus text page into name -> value
// (labeled series keep their label string in the name).
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metric line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSwarmScrapeMidStream is the tentpole acceptance scenario: a live
// swarm streams over the fabric while an HTTP scrape of one viewer's
// registry — mid-stream — shows the paper's metrics with sane values.
func TestSwarmScrapeMidStream(t *testing.T) {
	f := transport.NewFabric()

	scfg := fastConfig(true)
	scfg.Channel.Count = 40
	scfg.Telemetry = telemetry.NewRegistry()
	scfg.Trace = telemetry.NewTrace(1024)
	src, err := NewNode(scfg, meteredAttach(f, scfg.Telemetry))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	vreg := telemetry.NewRegistry()
	vtr := telemetry.NewTrace(1024)
	vcfg := fastConfig(false)
	vcfg.Channel.Count = 40
	vcfg.Telemetry = vreg
	vcfg.Trace = vtr
	viewer, err := NewNode(vcfg, meteredAttach(f, vreg))
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	if err := viewer.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	src.Start()
	viewer.Start()

	srv := httptest.NewServer(telemetry.Handler(vreg, vtr))
	defer srv.Close()

	// Mid-stream: some chunks buffered, stream not finished.
	waitFor(t, 30*time.Second, "viewer to buffer a few chunks", func() bool {
		return viewer.ChunkCount() >= 5
	})

	m := scrape(t, srv.URL+"/metrics")

	fill, ok := m["dco_live_fill_ratio"]
	if !ok {
		t.Fatal("scrape missing dco_live_fill_ratio")
	}
	if fill <= 0 || fill > 1 {
		t.Fatalf("fill ratio = %g, want (0, 1]", fill)
	}
	if n := m["dco_live_chunk_fetch_seconds_count"]; n < 5 {
		t.Fatalf("chunk fetch histogram count = %g, want >= 5", n)
	}
	if _, ok := m[`dco_live_chunk_fetch_seconds_bucket{le="+Inf"}`]; !ok {
		t.Fatal("scrape missing chunk fetch histogram buckets")
	}
	if r := m["dco_transport_overhead_ratio"]; r <= 0 {
		t.Fatalf("overhead ratio = %g, want > 0 (lookups and inserts are control traffic)", r)
	}
	if p := m["dco_live_delivered_percent"]; p <= 0 || p > 100 {
		t.Fatalf("delivered percent = %g, want (0, 100]", p)
	}
	if m["dco_live_chunks_fetched_total"] < 5 {
		t.Fatalf("chunks fetched = %g, want >= 5", m["dco_live_chunks_fetched_total"])
	}
	if m["dco_transport_calls_total"] <= 0 {
		t.Fatal("transport call counter never moved")
	}

	// The trace recorded protocol events for the same activity.
	if vtr.Count("chunk.fetch") == 0 {
		t.Fatal("trace has no chunk.fetch events")
	}
	if vtr.Count("lookup.route") == 0 {
		t.Fatal("trace has no lookup.route events")
	}

	// The JSON snapshot endpoint agrees with the text endpoint.
	resp, err := http.Get(srv.URL + "/debug/vars.json")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("vars.json invalid: %v", err)
	}
	if snap.Counters["dco_live_chunks_fetched_total"] < 5 {
		t.Fatalf("vars.json chunks fetched = %d", snap.Counters["dco_live_chunks_fetched_total"])
	}

	// Uninstrumented path still works: Stats() reads the same counters.
	st := viewer.Stats()
	if st.ChunksFetched != snap.Counters["dco_live_chunks_fetched_total"] &&
		st.ChunksFetched < 5 {
		t.Fatalf("Stats() snapshot diverged: %+v", st)
	}
}

// TestStatsWithoutRegistry: a node with no configured telemetry still
// counts via its private registry — Stats() must keep working unchanged.
func TestStatsWithoutRegistry(t *testing.T) {
	f := transport.NewFabric()
	scfg := fastConfig(true)
	scfg.Channel.Count = 10
	src, err := NewNode(scfg, memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	vcfg := fastConfig(false)
	vcfg.Channel.Count = 10
	v, err := NewNode(vcfg, memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := v.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	src.Start()
	v.Start()
	waitFor(t, 30*time.Second, "uninstrumented viewer to fetch chunks", func() bool {
		return v.Stats().ChunksFetched >= 5
	})
	if src.Stats().InsertsServed == 0 && v.Stats().InsertsServed == 0 {
		t.Fatal("no inserts counted anywhere")
	}
}
