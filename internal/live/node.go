// Package live is the runnable, real-network DCO node. It reuses the same
// Chord state machine as the simulator (internal/chord) and implements the
// paper's chunk-sharing algorithm over internal/transport: viewers look up
// chunk IDs in the ring, fetch chunk data from the returned providers, and
// register themselves as providers; coordinators keep the index tables and
// hold unanswerable lookups until a provider registers.
package live

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"dco/internal/chord"
	"dco/internal/stream"
	"dco/internal/transport"
	"dco/internal/wire"
)

// Config parameterizes a live node.
type Config struct {
	// Channel fixes the stream geometry. Count == 0 means an endless
	// stream (the source generates until Close).
	Channel stream.Params

	// Source makes this node the stream origin.
	Source bool

	// StartSeq is the first chunk a viewer fetches.
	StartSeq int64

	// SuccListSize is the Chord successor-list length.
	SuccListSize int

	// Maintenance cadence.
	StabilizeEvery  time.Duration
	FixFingersEvery time.Duration

	// Fetching.
	LookupWait         time.Duration // server-side pending-queue wait per lookup
	CallTimeout        time.Duration
	FetchWorkers       int
	MaxServeConcurrent int // provider-side admission limit

	// UpBps is advertised in inserts (paper Fig. 3's bandwidth column).
	UpBps int64

	// RepublishEvery re-inserts a few of this node's chunk indices (DHT
	// soft state): a coordinator that dies abruptly takes its index table
	// with it, and republication is what restores availability.
	RepublishEvery time.Duration
	RepublishBatch int

	// ActiveWindow bounds how many chunks a node retains (and advertises);
	// older chunks are dropped and unregistered as the stream moves on —
	// the paper's sliding active-chunk window (§III-A1). Zero keeps
	// everything (fine for bounded streams; do not use with endless ones).
	ActiveWindow int

	// OnChunk, if set, is invoked for every chunk received or generated
	// (after it is buffered), in seq order per worker but not globally.
	OnChunk func(seq int64, data []byte)
}

// DefaultNodeConfig returns sane settings for LAN/localhost deployments.
func DefaultNodeConfig() Config {
	return Config{
		Channel:            stream.Params{Channel: "LIVE", ChunkBits: 64 * 8 * 1024, Period: 250 * time.Millisecond, Count: 0},
		SuccListSize:       8,
		StabilizeEvery:     300 * time.Millisecond,
		FixFingersEvery:    100 * time.Millisecond,
		LookupWait:         2 * time.Second,
		CallTimeout:        5 * time.Second,
		FetchWorkers:       3,
		MaxServeConcurrent: 8,
		UpBps:              10_000_000,
		RepublishEvery:     time.Second,
		RepublishBatch:     4,
	}
}

type entryT = chord.Entry[string]

// Node is a live DCO participant.
type Node struct {
	cfg Config
	tr  transport.Transport

	mu         sync.Mutex
	cs         *chord.State[string]
	chunks     map[int64][]byte
	registered map[int64]bool
	index      map[int64]*indexEntry
	latestGen  int64 // source: newest generated seq

	serveSem        chan struct{}
	republishCursor uint64

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup

	// Counters (atomic-free: guarded by mu where touched).
	stats Stats
}

// Stats aggregates a node's protocol activity.
type Stats struct {
	LookupsServed  uint64
	InsertsServed  uint64
	ChunksServed   uint64
	ChunksFetched  uint64
	FetchRetries   uint64
	BusyRejections uint64
}

type indexEntry struct {
	providers []wire.Entry
	rr        int
	wake      chan struct{} // closed and replaced whenever a provider registers
}

// errNotOwner is returned (over the wire as wire.Error) when an index op
// reaches a node that does not own the key; callers re-route.
var errNotOwner = errors.New("live: not the key owner")

// NewNode creates a node bound to a transport factory. attach is called
// with the node's handler and must return the listening transport (this
// inversion lets the caller pick TCP or an in-memory fabric).
func NewNode(cfg Config, attach func(transport.Handler) (transport.Transport, error)) (*Node, error) {
	if cfg.SuccListSize <= 0 {
		cfg.SuccListSize = 8
	}
	if cfg.FetchWorkers <= 0 {
		cfg.FetchWorkers = 2
	}
	if cfg.MaxServeConcurrent <= 0 {
		cfg.MaxServeConcurrent = 8
	}
	n := &Node{
		cfg:        cfg,
		chunks:     make(map[int64][]byte),
		registered: make(map[int64]bool),
		index:      make(map[int64]*indexEntry),
		serveSem:   make(chan struct{}, cfg.MaxServeConcurrent),
		closed:     make(chan struct{}),
		latestGen:  -1,
	}
	tr, err := attach(transport.HandlerFunc(n.serve))
	if err != nil {
		return nil, err
	}
	n.tr = tr
	self := entryT{ID: chord.HashString("live-node-" + tr.Addr()), Addr: tr.Addr(), OK: true}
	n.cs = chord.NewState(self, cfg.SuccListSize)
	return n, nil
}

// Addr returns the node's dialable address.
func (n *Node) Addr() string { return n.tr.Addr() }

// ID returns the node's ring position.
func (n *Node) ID() chord.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cs.Self.ID
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// HasChunk reports whether the node buffered seq.
func (n *Node) HasChunk(seq int64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.chunks[seq]
	return ok
}

// ChunkCount returns the number of buffered chunks.
func (n *Node) ChunkCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.chunks)
}

// Successor exposes the current successor (tests, debugging).
func (n *Node) Successor() (id chord.ID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.cs.Successor()
	return s.ID, s.Addr
}

// Start launches the maintenance loops and, for sources, the generator;
// viewers also start their fetch pipeline.
func (n *Node) Start() {
	n.loop(n.cfg.StabilizeEvery, n.stabilize)
	n.loop(n.cfg.FixFingersEvery, n.fixFinger)
	n.loop(n.cfg.RepublishEvery, n.republish)
	if n.cfg.Source {
		n.wg.Add(1)
		go n.generateLoop()
	} else {
		n.wg.Add(1)
		go n.fetchLoop()
	}
}

func (n *Node) loop(period time.Duration, fn func()) {
	if period <= 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-n.closed:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// Close stops the node without the graceful-leave protocol (abrupt
// failure); use Leave for a polite departure.
func (n *Node) Close() error {
	n.closeMu.Do(func() { close(n.closed) })
	err := n.tr.Close()
	n.wg.Wait()
	return err
}

// Join attaches the node to the ring through any existing member.
func (n *Node) Join(bootstrap string) error {
	n.mu.Lock()
	selfID := n.cs.Self.ID
	n.mu.Unlock()
	owner, succs, pred, predOK, err := n.findOwnerFrom(bootstrap, uint64(selfID))
	if err != nil {
		return fmt.Errorf("live: join via %s: %w", bootstrap, err)
	}
	n.mu.Lock()
	n.cs.SetSuccessor(entryT{ID: chord.ID(owner.ID), Addr: owner.Addr, OK: true})
	var list []entryT
	for _, e := range succs {
		list = append(list, entryT{ID: chord.ID(e.ID), Addr: e.Addr, OK: true})
	}
	if len(list) > 0 {
		n.cs.AdoptSuccessorList(entryT{ID: chord.ID(owner.ID), Addr: owner.Addr, OK: true}, list)
	}
	if predOK {
		n.cs.SetPredecessor(entryT{ID: chord.ID(pred.ID), Addr: pred.Addr, OK: true})
	}
	n.mu.Unlock()
	_, err = n.call(owner.Addr, &wire.Notify{From: n.wireSelf()})
	return err
}

// Leave departs gracefully: index handoff to the successor, ring unlink,
// then shutdown.
func (n *Node) Leave() error {
	n.mu.Lock()
	succ := n.cs.Successor()
	pred := n.cs.Predecessor()
	var entries []wire.HandoffEntry
	for seq, e := range n.index {
		entries = append(entries, wire.HandoffEntry{
			Key:       uint64(n.cfg.Channel.Ref(seq).ID()),
			Seq:       seq,
			Providers: append([]wire.Entry(nil), e.providers...),
		})
		delete(n.index, seq)
	}
	self := n.wireSelfLocked()
	var succList []wire.Entry
	for _, e := range n.cs.SuccessorList() {
		succList = append(succList, wire.Entry{ID: uint64(e.ID), Addr: e.Addr})
	}
	n.mu.Unlock()

	if succ.OK && succ.Addr != n.Addr() {
		if len(entries) > 0 {
			_, _ = n.call(succ.Addr, &wire.Handoff{Entries: entries})
		}
		leave := &wire.Leave{From: self}
		if pred.OK {
			leave.NewPred = wire.Entry{ID: uint64(pred.ID), Addr: pred.Addr}
			leave.PredOK = true
		}
		_, _ = n.call(succ.Addr, leave)
		if pred.OK && pred.Addr != n.Addr() {
			_, _ = n.call(pred.Addr, &wire.Leave{From: self, NewSucc: succList})
		}
	}
	return n.Close()
}

func (n *Node) wireSelf() wire.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.wireSelfLocked()
}

func (n *Node) wireSelfLocked() wire.Entry {
	return wire.Entry{ID: uint64(n.cs.Self.ID), Addr: n.cs.Self.Addr}
}

func (n *Node) call(addr string, req wire.Message) (wire.Message, error) {
	resp, err := n.tr.Call(addr, req, n.cfg.CallTimeout)
	if err != nil {
		if _, isRemote := err.(*wire.Error); !isRemote {
			// Transport-level failure: treat the peer as dead and purge it
			// from our tables; stabilization re-adds it if it was only a
			// hiccup.
			n.mu.Lock()
			n.cs.RemoveFailed(addr)
			n.mu.Unlock()
		}
	}
	return resp, err
}

// ---------------------------------------------------------------------------
// Chunk payloads: deterministic synthetic media so any node can verify
// integrity end-to-end.

// MakeChunkPayload builds the synthetic chunk body for seq: an 8-byte
// big-endian seq header followed by SHA-256 keystream bytes.
func MakeChunkPayload(p stream.Params, seq int64) []byte {
	size := int(p.ChunkBits / 8)
	if size < 8 {
		size = 8
	}
	out := make([]byte, size)
	binary.BigEndian.PutUint64(out, uint64(seq))
	var counter uint64
	for off := 8; off < size; off += sha256.Size {
		var block [16]byte
		binary.BigEndian.PutUint64(block[:8], uint64(seq))
		binary.BigEndian.PutUint64(block[8:], counter)
		sum := sha256.Sum256(block[:])
		copy(out[off:], sum[:])
		counter++
	}
	return out
}

// VerifyChunkPayload checks a received body against the generator.
func VerifyChunkPayload(p stream.Params, seq int64, data []byte) bool {
	if len(data) < 8 || int64(binary.BigEndian.Uint64(data)) != seq {
		return false
	}
	want := MakeChunkPayload(p, seq)
	if len(want) != len(data) {
		return false
	}
	for i := range want {
		if want[i] != data[i] {
			return false
		}
	}
	return true
}
