// Package live is the runnable, real-network DCO node. It implements the
// paper's chunk-sharing algorithm over internal/transport on top of a
// pluggable DHT kernel (internal/dht): viewers look up chunk IDs through
// the kernel, fetch chunk data from the returned providers, and register
// themselves as providers; coordinators keep the index tables and hold
// unanswerable lookups until a provider registers. The kernel backend —
// the Chord ring the paper assumes (internal/chordkern) or Kademlia
// k-buckets (internal/kademlia) — is selected by Config.DHT; nothing in
// this package names a backend type outside the factory in backend.go.
package live

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dco/internal/dht"
	"dco/internal/health"
	"dco/internal/retry"
	"dco/internal/stream"
	"dco/internal/telemetry"
	"dco/internal/transport"
	"dco/internal/wire"
)

// Config parameterizes a live node.
type Config struct {
	// Channel fixes the stream geometry. Count == 0 means an endless
	// stream (the source generates until Close).
	Channel stream.Params

	// Source makes this node the stream origin.
	Source bool

	// StartSeq is the first chunk a viewer fetches.
	StartSeq int64

	// DHT selects the key-routing backend: "chord" (the paper's ring,
	// the default) or "kademlia" (XOR-metric k-buckets). Empty reads the
	// DCO_DHT environment variable, then falls back to "chord".
	DHT string

	// SuccListSize is the Chord successor-list length.
	SuccListSize int

	// Maintenance cadence. Chord runs stabilize/fix-fingers at these
	// periods; Kademlia derives its probe cadence from StabilizeEvery.
	StabilizeEvery  time.Duration
	FixFingersEvery time.Duration

	// KadK and KadAlpha tune the Kademlia backend: bucket capacity /
	// closest-set size and lookup parallelism. 0 derives 16 and 3.
	KadK     int
	KadAlpha int

	// KadRefreshEvery is the Kademlia bucket-refresh cadence (one bucket
	// per tick). 0 derives 4 x StabilizeEvery.
	KadRefreshEvery time.Duration

	// Fetching.
	LookupWait         time.Duration // server-side pending-queue wait per lookup
	CallTimeout        time.Duration
	FetchWorkers       int
	MaxServeConcurrent int // provider-side admission limit (feeds the default AdmitQueue)

	// UpBps is advertised in inserts (paper Fig. 3's bandwidth column) and
	// — since the admission layer — enforced on the chunk serve path: a
	// token-bucket pacer serializes outgoing chunk bytes against this
	// budget. <= 0 disables pacing (serve at line rate).
	UpBps int64

	// AdmitQueue bounds how many admitted chunk serves may wait out their
	// pace delay at once; requests beyond it are shed with Busy +
	// RetryAfterMs. 0 derives 2 x MaxServeConcurrent.
	AdmitQueue int

	// AdmitBurst is the pacer's burst allowance in bytes — how far ahead
	// of the steady-state budget a serve burst may run. 0 derives
	// max(4 chunks, 250ms of UpBps).
	AdmitBurst int64

	// AdmitMaxWait caps how long one admitted serve may be queued behind
	// the pacer regardless of the requester's declared patience, so a
	// slow-draining backlog cannot hold transport goroutines for whole
	// call timeouts. 0 derives 600ms.
	AdmitMaxWait time.Duration

	// FetchDeadlineChunks is a viewer's playback horizon in chunk periods:
	// a chunk not acquired within Channel.Period x this depth is abandoned
	// (counted and traced) instead of retried forever, so fetch workers
	// can never wedge on a permanently lost chunk. 0 disables deadlines
	// (fetch retries until the node closes — the pre-overload-control
	// behavior, fine for bounded archival pulls).
	FetchDeadlineChunks int

	// LoadReport piggybacks this node's upload load factor on republish
	// Inserts and every ChunkResp, which is what lets coordinators do
	// capacity-weighted provider selection and viewers prefer the
	// least-loaded provider. Disabling it reports 0 everywhere (selection
	// degrades to fair rotation).
	LoadReport bool

	// RepublishEvery re-inserts a few of this node's chunk indices (DHT
	// soft state): a coordinator that dies abruptly takes its index table
	// with it, and republication is what restores availability.
	RepublishEvery time.Duration
	RepublishBatch int

	// Replicas is the index replication factor r: every Insert/Unregister
	// a coordinator accepts is asynchronously batch-replicated to its
	// first r live successors, a successor that detects its predecessor's
	// death promotes the replicated entries to owned state immediately
	// (takeover), and a periodic anti-entropy round reconciles divergence.
	// 0 disables replication entirely (republication alone restores
	// availability, at the cost of the full republish-window outage).
	Replicas int

	// ReplicateEvery is the flush cadence of the replication queue:
	// accepted index ops buffer for at most this long before they are
	// batched out to the replica set. It bounds the takeover staleness.
	ReplicateEvery time.Duration

	// AntiEntropyEvery is the digest-exchange cadence: how often a
	// coordinator summarizes its owned index to its replicas so that
	// missed batches, partitions, and ownership moves get repaired.
	AntiEntropyEvery time.Duration

	// IndexTTL is the lease on a provider registration. Republication
	// refreshes it; a provider that dies without unregistering ages out
	// of lookup answers once the lease lapses. It must comfortably exceed
	// the republish rotation period (RepublishEvery × registered chunks /
	// RepublishBatch) or live providers expire between refreshes. Zero
	// disables leases (registrations live until unregistered).
	IndexTTL time.Duration

	// CensusEvery is the ring-census cadence (census.go): how often this
	// node probes a few previously-seen members *outside* its current ring
	// view to detect a split-brain (two self-consistent rings after a
	// healed partition, which stabilization alone can never re-merge).
	// Zero disables the census — and with it automatic partition healing
	// and lone-node re-bootstrap.
	CensusEvery time.Duration

	// CensusProbes is how many cached members one census round probes.
	// Low by design: the census is a background safety net, not a gossip
	// protocol. 0 derives 2.
	CensusProbes int

	// MemberCacheSize bounds the member cache feeding the census: members
	// seen in successor lists, lookups, and replication traffic, retained
	// even after they become unreachable (an unreachable member may be on
	// the far side of a partition — exactly who the census must probe).
	// 0 derives 128.
	MemberCacheSize int

	// ActiveWindow bounds how many chunks a node retains (and advertises);
	// older chunks are dropped and unregistered as the stream moves on —
	// the paper's sliding active-chunk window (§III-A1). Zero keeps
	// everything (fine for bounded streams; do not use with endless ones).
	ActiveWindow int

	// OnChunk, if set, is invoked for every chunk received or generated
	// (after it is buffered), in seq order per worker but not globally.
	OnChunk func(seq int64, data []byte)

	// Retry shapes the backoff loop idempotent RPCs run under (routing
	// steps, lookups, inserts, stabilization reads).
	Retry retry.Policy

	// Breaker opens a per-address circuit after consecutive transport
	// failures, so calls to a dead peer fail fast and the caller fails
	// over instead of waiting out timeouts.
	Breaker retry.BreakerConfig

	// ProviderCooldown is how long a provider that failed a chunk fetch
	// is blacklisted before this node asks it again. Zero disables the
	// blacklist.
	ProviderCooldown time.Duration

	// Hedge enables hedged chunk fetches (gray-failure defense): when a
	// GetChunk to the chosen provider runs past the peer's p95-ish latency
	// estimate, one duplicate request is launched at the next-best
	// provider and the first response wins. Off by default so explicitly
	// constructed configs keep their exact pre-hedging call pattern;
	// DefaultNodeConfig turns it on.
	Hedge bool

	// HedgeMinDelay / HedgeMaxDelay clamp the hedge trigger delay derived
	// from the primary provider's latency EWMA. Peers with no latency
	// history hedge at HedgeMaxDelay (conservative against strangers).
	// 0 derives 20ms / 300ms.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration

	// HealthHalfLife is the decay half-life of peer suspicion scores
	// (internal/health): how fast a degraded peer ages back to neutral
	// with no fresh evidence. 0 derives 5s.
	HealthHalfLife time.Duration

	// HealthSuspect is the suspicion score at which a peer counts as
	// suspected and is deprioritized in provider/coordinator selection
	// (one conclusive error contributes 1.0). 0 derives 3.
	HealthSuspect float64

	// ManifestWindow bounds how many chunk-manifest rows this node caches
	// (integrity.go): the source mints a row per generated chunk; every
	// node folds in rows learned from ManifestResps and replication.
	// 0 derives 4096. Rows age out oldest-first as the stream advances.
	ManifestWindow int

	// QuarantineThreshold is the integrity demerit score (one unit per
	// chunk that failed verification) at which a peer is quarantined from
	// provider selection entirely. 0 derives 3; negative disables
	// quarantine (demerits are still counted).
	QuarantineThreshold float64

	// QuarantineTTL is how long a quarantined peer stays excluded. 0
	// derives 30s.
	QuarantineTTL time.Duration

	// IntegrityHalfLife is the time-decay half-life of integrity demerits.
	// Unlike suspicion, good responses never decay integrity — only time
	// does, so selective poisoners cannot launder their record. 0 derives
	// 30s.
	IntegrityHalfLife time.Duration

	// InsertRate caps how many index Inserts per second a coordinator
	// accepts from one holder address (token bucket, burst 2x) — the
	// index-spam defense. 0 derives 200; negative disables the limit.
	InsertRate float64

	// InsertHorizon rejects provider registrations for seqs further than
	// this many chunks past the coordinator's best live-edge estimate
	// (its own latest generated/verified-manifest seq): nobody can hold a
	// chunk the source has not produced. 0 derives 1024; negative
	// disables the check.
	InsertHorizon int

	// MaxProvidersPerSeq caps the provider rows one index entry holds;
	// inserts beyond it are rejected (a spammer cannot grow an entry
	// without bound). 0 derives 128; negative disables the cap.
	MaxProvidersPerSeq int

	// PollutionReporters is how many distinct reporters must accuse a
	// peer of serving polluted chunks before the coordinator quarantines
	// it and scrubs its index entries — one slanderer is never enough.
	// 0 derives 2.
	PollutionReporters int

	// IOReadTimeout / IOWriteTimeout override the transport's server-side
	// per-exchange read deadline and reply write deadline when the
	// transport supports it (transport.TCP does). Zero keeps the
	// transport's defaults (2m read / 30s write).
	IOReadTimeout  time.Duration
	IOWriteTimeout time.Duration

	// JoinAttempts is how many rounds JoinAny makes over the bootstrap
	// list before giving up.
	JoinAttempts int

	// RetrySeed fixes the backoff-jitter schedule (reproducibility).
	// Zero derives a stable seed from the node's address.
	RetrySeed int64

	// Telemetry is the metrics registry this node reports through (see
	// internal/telemetry and DESIGN.md "Observability"). nil gives the
	// node a private registry: counters still work (Stats() reads them),
	// they are just not exported anywhere. Registries are per node — two
	// nodes sharing one registry would share counters.
	Telemetry *telemetry.Registry

	// Trace, if set, receives protocol events (joins, ring repairs, chunk
	// fetches/serves, breaker transitions, ...). nil disables tracing.
	Trace *telemetry.Trace
}

// DefaultNodeConfig returns sane settings for LAN/localhost deployments.
func DefaultNodeConfig() Config {
	return Config{
		Channel:            stream.Params{Channel: "LIVE", ChunkBits: 64 * 8 * 1024, Period: 250 * time.Millisecond, Count: 0},
		DHT:                defaultDHT(),
		SuccListSize:       8,
		StabilizeEvery:     300 * time.Millisecond,
		FixFingersEvery:    100 * time.Millisecond,
		LookupWait:         2 * time.Second,
		CallTimeout:        5 * time.Second,
		FetchWorkers:       3,
		MaxServeConcurrent: 8,
		UpBps:              10_000_000,
		AdmitQueue:         16,
		AdmitMaxWait:       600 * time.Millisecond,
		LoadReport:         true,
		RepublishEvery:     time.Second,
		RepublishBatch:     4,
		Replicas:           2,
		ReplicateEvery:     150 * time.Millisecond,
		AntiEntropyEvery:   3 * time.Second,
		IndexTTL:           45 * time.Second,
		CensusEvery:        2 * time.Second,
		CensusProbes:       2,
		MemberCacheSize:    128,
		Retry:              retry.DefaultPolicy(),
		Breaker:            retry.DefaultBreakerConfig(),
		ProviderCooldown:   2 * time.Second,
		Hedge:              true,
		HedgeMinDelay:      20 * time.Millisecond,
		HedgeMaxDelay:      300 * time.Millisecond,
		JoinAttempts:       3,
	}
}

// Node is a live DCO participant.
type Node struct {
	cfg  Config
	tr   transport.Transport
	self dht.Member // immutable after NewNode

	mu         sync.Mutex
	kern       dht.Kernel // nil only during NewNode (serve nacks until set)
	chunks     map[int64][]byte
	registered map[int64]bool
	index      map[int64]*indexEntry
	latestGen  int64 // source: newest generated seq

	republishCursor uint64
	retrier         *retry.Retrier
	blacklist       map[string]time.Time // failing providers, cooling down

	// health scores every peer this node calls (internal/health), fed by
	// the transport observer hook: latency EWMAs drive hedge trigger
	// delays, suspicion scores deprioritize degraded peers in selection.
	health *health.Tracker

	// pace is the upload admission pacer enforcing UpBps on the chunk
	// serve path (admission.go). Always non-nil; unlimited when UpBps <= 0.
	pace *pacer

	// jitter seeds the viewer-side backoff randomization for Busy nacks
	// (RetryAfterMs honoring); guarded by jitterMu, seeded like the retrier
	// so equal seeds give equal schedules.
	jitterMu sync.Mutex
	jitter   *rand.Rand

	// provLoad caches the freshest load factor heard from each provider
	// (piggybacked on ChunkResps), so fetches prefer the least-loaded
	// provider among a lookup answer. Guarded by provLoadMu, not n.mu —
	// it is touched on every fetch.
	provLoadMu sync.Mutex
	provLoad   map[string]provLoadRec

	// Replication state (replication.go): ops accepted but not yet
	// flushed to the replica set, and the slices of other owners' indices
	// replicated here, keyed by owner address.
	replPending []wire.ReplicaOp
	replSince   time.Time // enqueue time of the oldest pending op
	replicas    map[string]*replicaSet

	// Ring census state (census.go): the bounded memory of previously-seen
	// members (guarded by n.mu, like the index) and the probe-rotation
	// cursor. merging serializes split-brain merge attempts — detection can
	// fire concurrently from the census loop and inbound probes.
	members      *dht.MemberCache
	censusCursor uint64
	merging      atomic.Bool

	// Manifest cache (integrity.go): the source-anchored seq → payload
	// hash rows every received chunk is verified against. Guarded by
	// manMu, not n.mu — verification runs on the hot fetch path. Lock
	// order: n.mu may be taken before manMu, never the reverse.
	manMu      sync.Mutex
	manifest   map[int64]manifestRec
	manHead    int64     // exclusive upper bound of verified coverage
	manFetchAt time.Time // last ad-triggered background fetch

	// Index-pollution defense state (integrity.go), guarded by n.mu like
	// the index it protects: per-holder insert token buckets, the
	// pollution-report tally per accused peer, and the set of peers this
	// node ever quarantined (soak oracles read it; quarantines expire,
	// the log does not).
	insRate    map[string]*insertBucket
	pollution  map[string]map[string]time.Time
	reportedAt map[string]time.Time
	quarLog    map[string]bool

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup

	// lm holds the node's telemetry counters/histograms (lock-free
	// atomics; see metrics.go). Counting never takes n.mu.
	lm *liveMetrics
}

// Stats aggregates a node's protocol activity. It is a compatibility
// snapshot assembled from the telemetry counters — the registry is the
// single source of truth.
type Stats struct {
	LookupsServed  uint64
	InsertsServed  uint64
	ChunksServed   uint64
	ChunksFetched  uint64
	FetchRetries   uint64
	BusyRejections uint64
	// Overload-control counters.
	ChunksMissed      uint64 // GetChunk for a seq this node has not buffered
	ChunksShedBusy    uint64 // serves turned away by the admission pacer (= BusyRejections)
	ChunksAbandoned   uint64 // fetches given up past their playback horizon
	BusyNacksSeen     uint64 // Busy responses this node's fetches received
	BusyNacksHintless uint64 // of those, responses carrying no RetryAfterMs hint (should be 0)
	PacedServes       uint64 // serves that waited out a pace delay before sending
	// Resilience-layer counters.
	CallRetries          uint64 // RPC attempts beyond each op's first try
	BreakerOpens         uint64 // circuit transitions to open
	LookupFailovers      uint64 // lookups answered past a dead coordinator
	ProvidersBlacklisted uint64 // providers put on fetch cooldown
	// Gray-failure defense counters.
	HedgesLaunched  uint64 // duplicate fetches launched past the primary's latency estimate
	HedgeWins       uint64 // hedges whose duplicate answered first
	HedgesCancelled uint64 // hedge losers left in flight after a win
	DeadlineSheds   uint64 // serves shed because the propagated deadline could not be met
	SuspectedPeers  uint64 // peers currently at or above the suspicion threshold
	// Replication-layer counters.
	ReplicaOpsApplied uint64 // replicated index ops folded in from owners
	IndexTakeovers    uint64 // dead-owner replica slices promoted to owned state
	DigestRepairs     uint64 // index ops re-sent after a digest mismatch
	ProvidersExpired  uint64 // provider leases aged out of the owned index
	LookupFailures    uint64 // lookups that exhausted every candidate coordinator
	// Ring-census counters (census.go).
	CensusProbes   uint64 // census probes sent to members outside the ring view
	SplitsDetected uint64 // confirmed split-brain detections
	RingMerges     uint64 // merge protocol completions (incl. lone-node re-bootstraps)
	// Byte meters for the write-amplification benchmark (dcosim -method live):
	// frame bytes of Insert traffic into the index, of replication batches
	// out, and of anti-entropy digests + repairs out.
	IndexInsertBytes uint64
	ReplicateBytes   uint64
	DigestBytes      uint64
	// Byzantine-defense counters (integrity.go).
	IntegrityRejects     uint64 // received chunks dropped by verification
	PeersQuarantined     uint64 // quarantine entries (demerit-tripped + report-tripped)
	QuarantinedPeers     uint64 // peers currently under quarantine
	InsertsRateLimited   uint64 // index inserts turned away by the per-holder rate limit
	InsertsRejected      uint64 // index inserts rejected (horizon, provider cap, quarantined holder)
	PollutionReportsSent uint64 // accusations this node sent to coordinators
	PollutionReportsSeen uint64 // accusations this node received as a coordinator
	LoadReportsClamped   uint64 // LoadMilli reports discounted as self-contradictory
	ManifestFetches      uint64 // ManifestReq calls this node issued
	ManifestServes       uint64 // ManifestReqs this node answered
}

// provRec is one provider registration in an index entry: the provider's
// identity plus its advertised upload bandwidth, its freshest load report
// (thousandths; refreshed by republish Inserts) and lease deadline (zero
// deadline = no lease, the registration lives until unregistered).
type provRec struct {
	ent       wire.Entry
	upBps     int64
	loadMilli uint32
	expire    time.Time
}

// provLoadRec is a viewer-side cache row: the load factor last heard from
// a provider (any ChunkResp carries one) and when it was heard.
type provLoadRec struct {
	loadMilli uint32
	at        time.Time
}

type indexEntry struct {
	providers []provRec
	rr        int
	wake      chan struct{} // closed and replaced whenever a provider registers
}

// wakeLocked releases pending lookups waiting on this entry. Caller holds
// the node's mutex.
func (e *indexEntry) wakeLocked() {
	close(e.wake)
	e.wake = make(chan struct{})
}

// pruneLocked drops providers whose lease lapsed, returning how many.
// Caller holds the node's mutex.
func (e *indexEntry) pruneLocked(now time.Time) int {
	var dropped int
	e.providers, dropped = pruneRecs(e.providers, now)
	if dropped > 0 && len(e.providers) > 0 {
		e.rr %= len(e.providers)
	}
	return dropped
}

// pruneRecs filters expired leases out of a provider set in place.
func pruneRecs(recs []provRec, now time.Time) ([]provRec, int) {
	kept := recs[:0]
	dropped := 0
	for _, p := range recs {
		if !p.expire.IsZero() && now.After(p.expire) {
			dropped++
			continue
		}
		kept = append(kept, p)
	}
	return kept, dropped
}

// ttlMillis converts a lease deadline to the wire's relative TTL: the
// remaining milliseconds at send time (0 = no lease). Receivers restamp
// against their own clock, so absolute times never cross the wire.
func ttlMillis(expire, now time.Time) uint32 {
	if expire.IsZero() {
		return 0
	}
	d := expire.Sub(now)
	if d <= 0 {
		return 1 // expired in flight: minimal lease, ages out immediately
	}
	ms := int64(d / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// errNotOwner is returned (over the wire as wire.Error) when an index op
// reaches a node that does not own the key; callers re-route.
var errNotOwner = errors.New("live: not the key owner")

// NewNode creates a node bound to a transport factory. attach is called
// with the node's handler and must return the listening transport (this
// inversion lets the caller pick TCP or an in-memory fabric).
func NewNode(cfg Config, attach func(transport.Handler) (transport.Transport, error)) (*Node, error) {
	if cfg.SuccListSize <= 0 {
		cfg.SuccListSize = 8
	}
	if cfg.FetchWorkers <= 0 {
		cfg.FetchWorkers = 2
	}
	if cfg.MaxServeConcurrent <= 0 {
		cfg.MaxServeConcurrent = 8
	}
	if cfg.AdmitQueue <= 0 {
		cfg.AdmitQueue = 2 * cfg.MaxServeConcurrent
	}
	if cfg.AdmitMaxWait <= 0 {
		cfg.AdmitMaxWait = 600 * time.Millisecond
	}
	if cfg.CensusProbes <= 0 {
		cfg.CensusProbes = 2
	}
	if cfg.MemberCacheSize <= 0 {
		cfg.MemberCacheSize = 128
	}
	burst := cfg.AdmitBurst
	if burst <= 0 {
		// Default burst: a few chunks of slack or a quarter-second of the
		// budget, whichever is larger — enough to absorb a startup spike
		// without defeating the steady-state cap.
		chunkBytes := cfg.Channel.ChunkBits / 8
		if chunkBytes < 1 {
			chunkBytes = 1
		}
		burst = 4 * chunkBytes
		if quarter := cfg.UpBps / 8 / 4; quarter > burst {
			burst = quarter
		}
	}
	if cfg.ManifestWindow == 0 {
		cfg.ManifestWindow = 4096
	}
	if cfg.InsertRate == 0 {
		cfg.InsertRate = 200
	}
	if cfg.InsertHorizon == 0 {
		cfg.InsertHorizon = 1024
	}
	if cfg.MaxProvidersPerSeq == 0 {
		cfg.MaxProvidersPerSeq = 128
	}
	if cfg.PollutionReporters <= 0 {
		cfg.PollutionReporters = 2
	}
	n := &Node{
		cfg:        cfg,
		chunks:     make(map[int64][]byte),
		registered: make(map[int64]bool),
		index:      make(map[int64]*indexEntry),
		replicas:   make(map[string]*replicaSet),
		blacklist:  make(map[string]time.Time),
		provLoad:   make(map[string]provLoadRec),
		manifest:   make(map[int64]manifestRec),
		insRate:    make(map[string]*insertBucket),
		pollution:  make(map[string]map[string]time.Time),
		quarLog:    make(map[string]bool),
		pace:       newPacer(cfg.UpBps, burst, cfg.AdmitQueue),
		closed:     make(chan struct{}),
		latestGen:  -1,
	}
	tr, err := attach(transport.HandlerFunc(n.serve))
	if err != nil {
		return nil, err
	}
	n.tr = tr
	n.self = dht.Member{ID: dht.IDOf(tr.Addr()), Addr: tr.Addr()}
	n.health = health.NewTracker(health.Config{
		HalfLife:            cfg.HealthHalfLife,
		SuspectThreshold:    cfg.HealthSuspect,
		IntegrityHalfLife:   cfg.IntegrityHalfLife,
		QuarantineThreshold: cfg.QuarantineThreshold,
		QuarantineTTL:       cfg.QuarantineTTL,
	})
	// Feed health scoring from the transport's per-call observer hook when
	// the transport (or its fault-injecting decorator) offers one. The
	// observer reports application-level rejections with err == nil — a
	// peer that answered, even with a nack, is alive.
	if os, ok := tr.(transport.ObserverSetter); ok {
		os.SetObserver(func(addr string, rtt time.Duration, err error) {
			n.health.Observe(addr, rtt, err == nil)
		})
	}
	if cfg.IOReadTimeout > 0 || cfg.IOWriteTimeout > 0 {
		if io, ok := tr.(interface {
			SetIOTimeouts(read, write time.Duration)
		}); ok {
			io.SetIOTimeouts(cfg.IOReadTimeout, cfg.IOWriteTimeout)
		}
	}
	n.members = dht.NewMemberCache(n.self.Addr, cfg.MemberCacheSize)
	seed := cfg.RetrySeed
	if seed == 0 {
		// Stable per-address seed: same deployment, same jitter schedule.
		seed = int64(n.self.ID)
	}
	n.retrier = retry.New(cfg.Retry, retry.NewBreaker(cfg.Breaker), seed)
	n.jitter = rand.New(rand.NewSource(seed ^ 0x6a69747465726a69)) // distinct stream from the retrier's
	n.lm = newLiveMetrics(cfg.Telemetry, cfg.Trace)
	kern, err := n.newKernel()
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	// The transport is already serving: publish the kernel under the lock
	// serve reads it through (requests racing construction get a retryable
	// "starting" nack instead of a nil dispatch).
	n.mu.Lock()
	n.kern = kern
	n.mu.Unlock()
	n.registerGauges()
	n.hookResilience()
	return n, nil
}

// Addr returns the node's dialable address.
func (n *Node) Addr() string { return n.tr.Addr() }

// ID returns the node's position in the shared 64-bit key space.
func (n *Node) ID() uint64 { return n.self.ID }

// DHTName identifies the routing backend this node runs on.
func (n *Node) DHTName() string { return n.kern.Name() }

// Stats returns a snapshot of the node's counters, assembled lock-free
// from the telemetry registry (and the retrier's own accounting).
func (n *Node) Stats() Stats {
	return Stats{
		LookupsServed:        n.lm.lookupsServed.Value(),
		InsertsServed:        n.lm.insertsServed.Value(),
		ChunksServed:         n.lm.chunksServed.Value(),
		ChunksFetched:        n.lm.chunksFetched.Value(),
		FetchRetries:         n.lm.fetchRetries.Value(),
		BusyRejections:       n.lm.busyRejections.Value(),
		ChunksMissed:         n.lm.chunksMissed.Value(),
		ChunksShedBusy:       n.lm.busyRejections.Value(),
		ChunksAbandoned:      n.lm.chunksAbandoned.Value(),
		BusyNacksSeen:        n.lm.busyNacks.Value(),
		BusyNacksHintless:    n.lm.busyNacksHintless.Value(),
		PacedServes:          n.lm.pacedServes.Value(),
		CallRetries:          n.retrier.Retries(),
		BreakerOpens:         n.retrier.Breaker().Opens(),
		LookupFailovers:      n.lm.lookupFailovers.Value(),
		ProvidersBlacklisted: n.lm.providersBlacklisted.Value(),
		HedgesLaunched:       n.lm.hedgesLaunched.Value(),
		HedgeWins:            n.lm.hedgeWins.Value(),
		HedgesCancelled:      n.lm.hedgesCancelled.Value(),
		DeadlineSheds:        n.lm.deadlineSheds.Value(),
		SuspectedPeers:       uint64(n.health.SuspectedCount()),
		ReplicaOpsApplied:    n.lm.replicaOpsApplied.Value(),
		IndexTakeovers:       n.lm.takeovers.Value(),
		DigestRepairs:        n.lm.digestRepairOps.Value(),
		ProvidersExpired:     n.lm.indexExpired.Value(),
		LookupFailures:       n.lm.lookupFailures.Value(),
		CensusProbes:         n.lm.censusProbes.Value(),
		SplitsDetected:       n.lm.splitsDetected.Value(),
		RingMerges:           n.lm.ringMerges.Value(),
		IndexInsertBytes:     n.lm.indexInsertBytes.Value(),
		ReplicateBytes:       n.lm.replicateBytes.Value(),
		DigestBytes:          n.lm.digestBytes.Value(),
		IntegrityRejects:     n.lm.integrityRejects.Value(),
		PeersQuarantined:     n.lm.peersQuarantined.Value(),
		QuarantinedPeers:     uint64(n.health.QuarantinedCount()),
		InsertsRateLimited:   n.lm.insertsRateLimited.Value(),
		InsertsRejected:      n.lm.insertsRejected.Value(),
		PollutionReportsSent: n.lm.pollutionReportsSent.Value(),
		PollutionReportsSeen: n.lm.pollutionReportsSeen.Value(),
		LoadReportsClamped:   n.lm.loadReportsClamped.Value(),
		ManifestFetches:      n.lm.manifestFetches.Value(),
		ManifestServes:       n.lm.manifestServes.Value(),
	}
}

// HasChunk reports whether the node buffered seq.
func (n *Node) HasChunk(seq int64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.chunks[seq]
	return ok
}

// ChunkCount returns the number of buffered chunks.
func (n *Node) ChunkCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.chunks)
}

// Successor exposes the next member along the key space (tests,
// debugging): Chord's ring successor, or the backend's heir when the
// kernel has no explicit successor pointer.
func (n *Node) Successor() (id uint64, addr string) {
	if s, ok := n.kern.(interface{ Successor() dht.Member }); ok {
		m := s.Successor()
		return m.ID, m.Addr
	}
	if h, ok := n.kern.Heir(); ok {
		return h.ID, h.Addr
	}
	return n.self.ID, n.self.Addr
}

// startRingMaint schedules the kernel's periodic maintenance (Chord:
// stabilize + fix-fingers; Kademlia: bucket refresh + liveness probe).
func (n *Node) startRingMaint() {
	for _, t := range n.kern.Ticks() {
		n.loop(t.Every, t.Fn)
	}
}

// Start launches the maintenance loops and, for sources, the generator;
// viewers also start their fetch pipeline.
func (n *Node) Start() {
	n.startRingMaint()
	n.loop(n.cfg.RepublishEvery, n.republish)
	if n.cfg.Replicas > 0 {
		n.loop(n.cfg.ReplicateEvery, n.replicateFlush)
		n.loop(n.cfg.AntiEntropyEvery, n.antiEntropy)
	}
	n.loop(n.cfg.CensusEvery, n.census)
	if n.cfg.Source {
		n.wg.Add(1)
		go n.generateLoop()
	} else {
		n.wg.Add(1)
		go n.fetchLoop()
	}
}

func (n *Node) loop(period time.Duration, fn func()) {
	if period <= 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-n.closed:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// Close stops the node without the graceful-leave protocol (abrupt
// failure); use Leave for a polite departure.
func (n *Node) Close() error {
	n.closeMu.Do(func() { close(n.closed) })
	err := n.tr.Close()
	n.wg.Wait()
	return err
}

// Join attaches the node to the ring through one existing member. For
// failover across several candidate members, use JoinAny.
func (n *Node) Join(bootstrap string) error { return n.JoinAny([]string{bootstrap}) }

// JoinAny attaches the node to the ring via the first reachable address
// in bootstraps, making Config.JoinAttempts rounds over the whole list
// (with backoff between rounds) before giving up. A single dead or
// partitioned bootstrap no longer kills the join.
func (n *Node) JoinAny(bootstraps []string) error {
	rounds := n.cfg.JoinAttempts
	if rounds < 1 {
		rounds = 1
	}
	var errs []error
	for round := 0; round < rounds; round++ {
		if round > 0 {
			select {
			case <-n.closed:
				return errors.Join(errs...)
			case <-time.After(n.cfg.Retry.Pause(round)):
			}
		}
		for _, b := range bootstraps {
			if b == "" || b == n.Addr() {
				continue
			}
			if err := n.joinVia(b); err != nil {
				errs = append(errs, fmt.Errorf("live: join via %s: %w", b, err))
				continue
			}
			n.traceEvent("join.ok", "via="+b)
			return nil
		}
	}
	n.traceEvent("join.fail", fmt.Sprintf("bootstraps=%d rounds=%d", len(bootstraps), rounds))
	if len(errs) == 0 {
		return errors.New("live: no usable bootstrap address")
	}
	return errors.Join(errs...)
}

// joinVia performs one join attempt through bootstrap. The kernel runs
// the backend's attach protocol and reports everyone it met through the
// Seen event, which feeds the census member cache.
func (n *Node) joinVia(bootstrap string) error {
	return n.kern.Join(bootstrap)
}

// Leave departs gracefully: index handoff to the heir — the member that
// inherits this node's key range — replicated past it (so the handoff
// survives the heir dying too), then the backend's own departure protocol
// (Chord: ring unlink; Kademlia: goodbye to the neighborhood), then
// shutdown.
func (n *Node) Leave() error {
	heir, heirOK := n.kern.Heir()
	n.mu.Lock()
	now := time.Now()
	var entries []wire.HandoffEntry
	var ops []wire.ReplicaOp
	for seq, e := range n.index {
		key := uint64(n.cfg.Channel.Ref(seq).ID())
		he := wire.HandoffEntry{Key: key, Seq: seq}
		for _, p := range e.providers {
			he.Providers = append(he.Providers, p.ent)
			ops = append(ops, wire.ReplicaOp{
				Key: key, Seq: seq, Holder: p.ent, UpBps: p.upBps,
				TTLMillis: ttlMillis(p.expire, now),
			})
		}
		entries = append(entries, he)
		delete(n.index, seq)
	}
	var spares []dht.Member
	if heirOK {
		// Members past the heir, for replicating the handed-off range: ask
		// for one extra so skipping the heir itself still leaves Replicas.
		spares = n.kern.ReplicaSet(heir.ID, n.cfg.Replicas+1)
	}
	n.mu.Unlock()

	if heirOK && heir.Addr != n.Addr() {
		if len(entries) > 0 {
			_, _ = n.callIdem(heir.Addr, &wire.Handoff{Entries: entries})
		}
		// Replicate the handed-off range past the new owner on its behalf:
		// if the sole handoff target dies before republication kicks in,
		// its replicas still hold the entries and promote them (the PR 3
		// regression test pins exactly this failure).
		if n.cfg.Replicas > 0 && len(ops) > 0 {
			batch := &wire.ReplicateBatch{Owner: heir.Wire(), Full: true, Ops: ops}
			sent := 0
			for _, s := range spares {
				if s.Addr == n.Addr() || s.Addr == heir.Addr {
					continue
				}
				if _, err := n.callIdem(s.Addr, batch); err == nil {
					sent++
				}
				if sent == n.cfg.Replicas {
					break
				}
			}
		}
		n.kern.Leave()
	}
	return n.Close()
}

func (n *Node) wireSelf() wire.Entry { return n.self.Wire() }

// wireSelfLocked is wireSelf; self is immutable, so no lock is actually
// needed — the name survives for the call sites written under n.mu.
func (n *Node) wireSelfLocked() wire.Entry { return n.self.Wire() }

// rpcClassify maps the wire error taxonomy onto the retry layer: remote
// wire.Errors retry only when their code says so, and never count toward
// the circuit breaker (the peer answered — it is alive).
var rpcClassify = retry.Classify{
	Retryable: wire.Retryable,
	BreakerFailure: func(err error) bool {
		var we *wire.Error
		return !errors.As(err, &we)
	},
}

// call performs one single-shot RPC: no retry. This is the right shape
// for the maintenance loops, where a failure IS the signal (stabilize and
// check_predecessor exist to detect dead peers, and they run again on the
// next tick). Each outcome feeds the per-address breaker, so repeated
// probe failures accumulate into the conclusive evidence that finally
// purges the peer.
func (n *Node) call(addr string, req wire.Message) (wire.Message, error) {
	return n.callTimeout(addr, req, n.cfg.CallTimeout)
}

// callTimeout is call with an explicit per-call timeout — the deadline
// propagation seam: fetch paths derive the timeout from the chunk's
// remaining playback horizon instead of always paying the full
// CallTimeout against a stalled peer.
func (n *Node) callTimeout(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	resp, err := n.tr.Call(addr, req, timeout)
	br := n.retrier.Breaker()
	if err == nil {
		br.Success(addr)
		return resp, nil
	}
	if rpcClassify.BreakerFailure(err) {
		br.Failure(addr)
	} else {
		br.Success(addr)
	}
	n.noteCallFailure(addr, err)
	return resp, err
}

// deadlineTimeout derives a per-call transport timeout from the remaining
// playback horizon: CallTimeout when no deadline applies, otherwise the
// remaining budget clamped to [minDeadlineTimeout, CallTimeout]. The floor
// keeps a nearly expired fetch from dialing with a timeout too small to
// ever succeed — the fetch loop's own deadline check abandons it instead.
func (n *Node) deadlineTimeout(deadline time.Time) time.Duration {
	t := n.cfg.CallTimeout
	if deadline.IsZero() {
		return t
	}
	r := time.Until(deadline)
	if t <= 0 || r < t {
		t = r
	}
	if t < minDeadlineTimeout {
		t = minDeadlineTimeout
	}
	return t
}

// minDeadlineTimeout floors deadline-derived call timeouts.
const minDeadlineTimeout = 50 * time.Millisecond

// deadlineMs converts the remaining playback horizon into the wire's
// relative DeadlineMs budget (0 = unbounded, like TTLMillis the receiver
// restamps against its own clock).
func deadlineMs(deadline time.Time) uint32 {
	if deadline.IsZero() {
		return 0
	}
	d := time.Until(deadline)
	if d <= 0 {
		return 1 // expired in flight: minimal budget, server sheds immediately
	}
	ms := int64(d / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return uint32(ms)
}

// callIdem performs a retried RPC for idempotent requests (every DCO
// request except the maintenance probes is idempotent by construction:
// inserts dedupe by address, lookups and fetches are reads, notify and
// handoff are merges). Transient failures are absorbed by jittered
// backoff; a per-address circuit breaker fails fast once the peer looks
// dead, and only the final failure purges it from the routing tables.
func (n *Node) callIdem(addr string, req wire.Message) (wire.Message, error) {
	return n.callIdemTimeout(addr, req, n.cfg.CallTimeout)
}

// callIdemTimeout is callIdem with an explicit per-attempt timeout (the
// deadline-propagation seam for retried RPCs).
func (n *Node) callIdemTimeout(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	var resp wire.Message
	err := n.retrier.Do(n.closed, addr, rpcClassify, func() error {
		var cerr error
		resp, cerr = n.tr.Call(addr, req, timeout)
		return cerr
	})
	if err != nil {
		n.noteCallFailure(addr, err)
		return nil, err
	}
	return resp, nil
}

// peerCondemned reports whether err against addr is conclusive evidence
// that the peer is down, as opposed to a transient hiccup. A remote
// application reply proves the peer alive. With a breaker configured, a
// lone transport error is presumed transient — only addr's circuit
// opening (threshold consecutive failures) condemns it; under lossy
// links this is what keeps live successors from being purged on every
// dropped probe. Without a breaker, any transport failure condemns.
func (n *Node) peerCondemned(addr string, err error) bool {
	var we *wire.Error
	if errors.As(err, &we) {
		return false
	}
	br := n.retrier.Breaker()
	return !br.Enabled() || br.Open(addr) || errors.Is(err, retry.ErrOpen)
}

// noteCallFailure purges addr from the kernel's routing tables once the
// failure evidence is conclusive; maintenance re-adds the peer if it was
// only a hiccup after all. A condemned peer whose key range fell to this
// node triggers index takeover: its replicated entries are promoted to
// owned state on the spot (promoteReplicasLocked checks Owns per key, so
// a dead peer whose range went elsewhere promotes nothing).
func (n *Node) noteCallFailure(addr string, err error) {
	if !n.peerCondemned(addr, err) {
		return
	}
	n.mu.Lock()
	n.kern.PeerFailed(addr)
	promoted := n.promoteReplicasLocked(addr)
	n.mu.Unlock()
	n.traceEvent("ring.purge", "peer="+addr)
	if promoted > 0 {
		n.traceEvent("replica.takeover", fmt.Sprintf("owner=%s entries=%d", addr, promoted))
	}
}

// ---------------------------------------------------------------------------
// Chunk payloads: deterministic synthetic media so any node can verify
// integrity end-to-end.

// MakeChunkPayload builds the synthetic chunk body for seq: an 8-byte
// big-endian seq header followed by SHA-256 keystream bytes.
func MakeChunkPayload(p stream.Params, seq int64) []byte {
	size := int(p.ChunkBits / 8)
	if size < 8 {
		size = 8
	}
	out := make([]byte, size)
	binary.BigEndian.PutUint64(out, uint64(seq))
	var counter uint64
	for off := 8; off < size; off += sha256.Size {
		var block [16]byte
		binary.BigEndian.PutUint64(block[:8], uint64(seq))
		binary.BigEndian.PutUint64(block[8:], counter)
		sum := sha256.Sum256(block[:])
		copy(out[off:], sum[:])
		counter++
	}
	return out
}

// VerifyChunkPayload checks a received body against the generator.
func VerifyChunkPayload(p stream.Params, seq int64, data []byte) bool {
	if len(data) < 8 || int64(binary.BigEndian.Uint64(data)) != seq {
		return false
	}
	want := MakeChunkPayload(p, seq)
	if len(want) != len(data) {
		return false
	}
	for i := range want {
		if want[i] != data[i] {
			return false
		}
	}
	return true
}
