package live

import (
	"sync"
	"testing"
	"time"

	"dco/internal/stream"
	"dco/internal/telemetry"
	"dco/internal/transport"
)

// TestFlashCrowdSoak is the PR 4 acceptance scenario: 30 viewers all join
// a 1-source stream inside one chunk period while the source's upload
// budget covers barely two chunk serves per period. The admission layer
// must turn that stampede into an orderly spread:
//
//   - every viewer still delivers >= 95% of the stream (the crowd feeds
//     itself once chunks escape the source);
//   - the source's served bytes stay inside UpBps x elapsed + burst — the
//     pacer actually enforced the configured budget;
//   - sheds happened (the test exercised overload, it didn't pass by
//     having capacity to spare) and every Busy nack the viewers saw
//     carried a nonzero RetryAfterMs hint;
//   - shutdown completes promptly: no fetch worker is wedged on a chunk
//     nobody will ever serve.
func TestFlashCrowdSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		nViewers   = 30
		nChunks    = 20
		chunkBytes = 1024
	)
	period := 150 * time.Millisecond

	f := transport.NewFabric()
	mkCfg := func(source bool) Config {
		cfg := fastConfig(source)
		cfg.Channel = stream.Params{Channel: "FC", ChunkBits: chunkBytes * 8, Period: period, Count: nChunks}
		cfg.Telemetry = telemetry.NewRegistry()
		cfg.Trace = telemetry.NewTrace(4096)
		cfg.FetchDeadlineChunks = 150 // generous playback horizon; abandonment is the backstop, not the plan
		if source {
			cfg.UpBps = 120_000 // ~2 chunk serves per period: the crowd must share
			cfg.AdmitQueue = 8
		} else {
			cfg.UpBps = 8_000_000
		}
		return cfg
	}

	src, err := NewNode(mkCfg(true), memAttach(f))
	if err != nil {
		t.Fatal(err)
	}
	viewers := make([]*Node, nViewers)
	for i := range viewers {
		nd, err := NewNode(mkCfg(false), memAttach(f))
		if err != nil {
			t.Fatal(err)
		}
		viewers[i] = nd
	}
	all := append([]*Node{src}, viewers...)
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			for _, nd := range all {
				nd.Close()
			}
		})
	}
	t.Cleanup(closeAll)

	src.Start()
	start := time.Now()

	// The flash crowd: every viewer joins concurrently. The arrival guard
	// below measures joins alone — fetch pipelines start after the guard,
	// so instrumentation overhead (race detector) in the fetch storm
	// cannot masquerade as slow arrival.
	var joinWG sync.WaitGroup
	for _, nd := range viewers {
		joinWG.Add(1)
		go func(nd *Node) {
			defer joinWG.Done()
			if err := nd.Join(src.Addr()); err != nil {
				t.Errorf("flash-crowd join: %v", err)
			}
		}(nd)
	}
	joinWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if d := time.Since(start); d > period {
		t.Fatalf("crowd took %v to join; the scenario requires arrival inside one period (%v)", d, period)
	}
	for _, nd := range viewers {
		nd.Start()
	}

	// Delivery: >= 95% of the stream at every viewer.
	const wantChunks = nChunks * 95 / 100
	waitFor(t, 120*time.Second, "every viewer to deliver >= 95% of the stream", func() bool {
		for _, v := range viewers {
			if v.ChunkCount() < wantChunks {
				return false
			}
		}
		return true
	})
	elapsed := time.Since(start)

	// Budget: the source's chunk bytes never exceeded rate x time + burst.
	srcStats := src.Stats()
	servedBytes := float64(srcStats.ChunksServed * chunkBytes)
	burst := float64(4 * chunkBytes) // the derived default for this config
	if q := float64(src.cfg.UpBps) / 8 / 4; q > burst {
		burst = q
	}
	budget := float64(src.cfg.UpBps)/8*elapsed.Seconds() + burst + chunkBytes
	if servedBytes > budget {
		t.Errorf("source served %.0f chunk bytes in %v, exceeding its paced budget of %.0f", servedBytes, elapsed, budget)
	}

	// Overload was real: the source shed requests, and every Busy nack the
	// viewers saw carried a usable retry hint.
	if srcStats.ChunksShedBusy == 0 {
		t.Error("source never shed a request; the flash crowd did not exercise admission control")
	}
	var nacksSeen, hintless, abandoned uint64
	for _, v := range viewers {
		st := v.Stats()
		nacksSeen += st.BusyNacksSeen
		hintless += st.BusyNacksHintless
		abandoned += st.ChunksAbandoned
	}
	if nacksSeen == 0 {
		t.Error("no viewer ever saw a Busy nack despite source sheds")
	}
	if hintless != 0 {
		t.Errorf("%d Busy nacks arrived without a RetryAfterMs hint, want 0", hintless)
	}
	t.Logf("flash crowd: elapsed=%v source_served=%d sheds=%d paced=%d nacks=%d abandoned=%d",
		elapsed.Round(time.Millisecond), srcStats.ChunksServed, srcStats.ChunksShedBusy, srcStats.PacedServes, nacksSeen, abandoned)

	// Shutdown must not wedge: every fetch worker exits promptly.
	done := make(chan struct{})
	go func() { closeAll(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown wedged: a fetch worker failed to exit")
	}
}
