// Package kademlia implements the dht.Kernel contract with a Kademlia
// routing table: XOR metric over the shared 64-bit key space, one k-bucket
// per distance prefix with least-recently-seen eviction order and a
// replacement cache, and iterative alpha-parallel lookups over the
// KadFindNode wire message. Where Chord routes recursively along a ring
// and maintains explicit successor/predecessor pointers, Kademlia learns
// its table passively from every message it sees and converges lookups by
// always querying the closest known contacts — a different churn/latency
// tradeoff the dhtcompare bench measures head to head.
//
// Deviations from the paper-standard 160-bit Kademlia, both deliberate:
// the key space is 64-bit because the whole DCO wire protocol and chunk
// key derivation are uint64 end to end (so the two backends are
// switchable without re-keying), and there is no FindValue RPC — chunk
// index reads stay on the existing owner-routed Lookup message, so the
// index layer above the kernel is identical across backends.
package kademlia

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dco/internal/dht"
	"dco/internal/telemetry"
	"dco/internal/wire"
)

// Config tunes the Kademlia backend.
type Config struct {
	// K is the bucket capacity and closest-set size (paper's k). 0 -> 16.
	K int
	// Alpha is the lookup parallelism (paper's alpha). 0 -> 3.
	Alpha int
	// RefreshEvery is the bucket-refresh cadence: each tick refreshes one
	// bucket (cursor rotation) by looking up a random key in its range.
	RefreshEvery time.Duration
	// ProbeEvery is the liveness-probe cadence: each tick pings the
	// least-recently-seen head of one bucket that has replacement
	// candidates waiting, so stale contacts make room for fresh ones.
	ProbeEvery time.Duration
}

// maxRounds bounds one iterative lookup (each round queries up to Alpha
// contacts); 32 is far past convergence for a 64-bit space.
const maxRounds = 32

type contact struct {
	m        dht.Member
	lastSeen time.Time
}

// bucket holds the contacts whose XOR distance from self shares one bit
// prefix. contacts is kept in least-recently-seen order (head oldest);
// replace is the replacement cache, newest last.
type bucket struct {
	contacts []contact
	replace  []dht.Member
}

// Kernel is the Kademlia backend. Safe for concurrent use; see the dht
// package comment for the locking contract.
type Kernel struct {
	cfg   Config
	self  dht.Member
	call  dht.Caller
	ev    dht.Events
	trace *telemetry.Trace
	done  <-chan struct{}

	mu      sync.Mutex
	buckets [64]bucket
	addrIdx map[string]int // contact addr -> bucket index
	cursor  int            // refresh rotation
	rng     *rand.Rand     // refresh key choice; guarded by mu

	tableChanges   *telemetry.Counter
	failuresPurged *telemetry.Counter
	lookups        *telemetry.Counter
	lookupHops     *telemetry.Counter
	refreshes      *telemetry.Counter
	hopHist        *telemetry.Histogram
	inflight       *telemetry.Gauge
}

// New builds a Kademlia kernel for opts.Self. The registry gains the
// backend-neutral lookup-hop histogram (dco_dht_lookup_hops), the
// alpha-parallelism in-flight gauge (dco_kad_inflight), and the table
// occupancy gauges (dco_kad_bucket_contacts, dco_kad_replacements).
func New(cfg Config, opts dht.Options) *Kernel {
	if cfg.K <= 0 {
		cfg.K = 16
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	k := &Kernel{
		cfg:     cfg,
		self:    opts.Self,
		call:    opts.Caller,
		ev:      opts.Events,
		trace:   opts.Trace,
		done:    opts.Done,
		addrIdx: make(map[string]int),
		rng:     rand.New(rand.NewSource(int64(opts.Self.ID) ^ 0x6b61642d72656672)),

		tableChanges:   reg.Counter("dco_kad_table_inserts_total"),
		failuresPurged: reg.Counter("dco_kad_failures_purged_total"),
		lookups:        reg.Counter("dco_dht_lookups_total"),
		lookupHops:     reg.Counter("dco_dht_lookup_hops_total"),
		refreshes:      reg.Counter("dco_kad_refreshes_total"),
		hopHist:        reg.Histogram("dco_dht_lookup_hops", dht.HopBuckets),
		inflight:       reg.Gauge("dco_kad_inflight"),
	}
	reg.GaugeFunc("dco_kad_bucket_contacts", func() float64 {
		k.mu.Lock()
		defer k.mu.Unlock()
		return float64(len(k.addrIdx))
	})
	reg.GaugeFunc("dco_kad_replacements", func() float64 {
		k.mu.Lock()
		defer k.mu.Unlock()
		n := 0
		for i := range k.buckets {
			n += len(k.buckets[i].replace)
		}
		return float64(n)
	})
	return k
}

// bucketIndex maps a peer ID onto its distance-prefix bucket: the position
// of the highest differing bit. Self (distance 0) has no bucket.
func (k *Kernel) bucketIndex(id uint64) int {
	d := k.self.ID ^ id
	if d == 0 {
		return -1
	}
	return bits.Len64(d) - 1
}

// closer reports whether a is strictly XOR-closer to key than b.
func closer(key, a, b uint64) bool { return a^key < b^key }

func (k *Kernel) selfWire() wire.Entry { return wire.Entry{ID: k.self.ID, Addr: k.self.Addr} }

func (k *Kernel) seen(ms ...dht.Member) {
	if k.ev.Seen == nil || len(ms) == 0 {
		return
	}
	k.ev.Seen(ms...)
}

func (k *Kernel) traceEvent(kind, detail string) {
	if k.trace != nil {
		k.trace.Record(kind, k.self.Addr, detail)
	}
}

// Name identifies the backend.
func (k *Kernel) Name() string { return "kademlia" }

// Self returns this node's identity.
func (k *Kernel) Self() dht.Member { return k.self }

// Observe inserts or refreshes a sighted member. A known contact moves to
// the most-recently-seen tail; a new one fills its bucket or, when the
// bucket is full, waits in the replacement cache until a liveness probe
// evicts a stale head. Returns whether the table gained a contact.
// XOR ties are impossible for distinct IDs, so insertion needs no
// tie-breaking and ownership (no strictly closer contact) is unique.
func (k *Kernel) Observe(m dht.Member) bool {
	if m.Addr == "" || m.Addr == k.self.Addr || m.ID == k.self.ID {
		return false
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.observeLocked(m)
}

func (k *Kernel) observeLocked(m dht.Member) bool {
	bi := k.bucketIndex(m.ID)
	if bi < 0 {
		return false
	}
	b := &k.buckets[bi]
	now := time.Now()
	if have, ok := k.addrIdx[m.Addr]; ok {
		if have != bi {
			// The address re-keyed (restart under a new ID): drop the stale
			// entry and fall through to a fresh insert.
			k.removeLocked(m.Addr)
		} else {
			for i := range b.contacts {
				if b.contacts[i].m.Addr == m.Addr {
					c := b.contacts[i]
					c.m, c.lastSeen = m, now
					b.contacts = append(append(b.contacts[:i], b.contacts[i+1:]...), c)
					return false
				}
			}
		}
	}
	if len(b.contacts) < k.cfg.K {
		b.contacts = append(b.contacts, contact{m: m, lastSeen: now})
		k.addrIdx[m.Addr] = bi
		k.tableChanges.Inc()
		return true
	}
	// Bucket full: remember the candidate (newest last, bounded at K) and
	// let the probe tick evict a dead head to make room. Never displace a
	// live contact — long-lived contacts are the most reliable ones.
	for i, r := range b.replace {
		if r.Addr == m.Addr {
			b.replace = append(b.replace[:i], b.replace[i+1:]...)
			break
		}
	}
	b.replace = append(b.replace, m)
	if len(b.replace) > k.cfg.K {
		b.replace = b.replace[1:]
	}
	return false
}

// PeerFailed purges a conclusively dead contact and promotes the newest
// replacement candidate into the freed slot.
func (k *Kernel) PeerFailed(addr string) {
	if addr == "" || addr == k.self.Addr {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	bi, ok := k.addrIdx[addr]
	if !ok {
		// Not a contact; still scrub any replacement-cache mention.
		for i := range k.buckets {
			k.dropReplacementLocked(i, addr)
		}
		return
	}
	k.removeLocked(addr)
	k.failuresPurged.Inc()
	b := &k.buckets[bi]
	for len(b.replace) > 0 && len(b.contacts) < k.cfg.K {
		cand := b.replace[len(b.replace)-1]
		b.replace = b.replace[:len(b.replace)-1]
		if cand.Addr == addr {
			continue
		}
		k.observeLocked(cand)
	}
}

func (k *Kernel) removeLocked(addr string) {
	bi, ok := k.addrIdx[addr]
	if !ok {
		return
	}
	delete(k.addrIdx, addr)
	b := &k.buckets[bi]
	for i := range b.contacts {
		if b.contacts[i].m.Addr == addr {
			b.contacts = append(b.contacts[:i], b.contacts[i+1:]...)
			break
		}
	}
	k.dropReplacementLocked(bi, addr)
}

func (k *Kernel) dropReplacementLocked(bi int, addr string) {
	b := &k.buckets[bi]
	for i := range b.replace {
		if b.replace[i].Addr == addr {
			b.replace = append(b.replace[:i], b.replace[i+1:]...)
			return
		}
	}
}

// closestLocked returns up to n contacts nearest key by XOR distance.
// Caller holds k.mu.
func (k *Kernel) closestLocked(key uint64, n int) []dht.Member {
	out := make([]dht.Member, 0, len(k.addrIdx))
	for i := range k.buckets {
		for _, c := range k.buckets[i].contacts {
			out = append(out, c.m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return closer(key, out[i].ID, out[j].ID) })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Owns reports whether no known contact is strictly XOR-closer to key than
// self. An empty table conservatively claims everything (the lone-node
// case, mirroring Chord's no-predecessor claim).
func (k *Kernel) Owns(key uint64) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.ownsLocked(key)
}

func (k *Kernel) ownsLocked(key uint64) bool {
	for i := range k.buckets {
		for _, c := range k.buckets[i].contacts {
			if closer(key, c.m.ID, k.self.ID) {
				return false
			}
		}
	}
	return true
}

// OwnsSettled is Owns with the empty-table claim removed: a node that
// knows nobody has no evidence it is the closest.
func (k *Kernel) OwnsSettled(key uint64) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.addrIdx) > 0 && k.ownsLocked(key)
}

// ReplicaSet returns the r contacts nearest key (never self): the members
// that should mirror the key's index entries. Unlike Chord, any node can
// compute this locally for any key, but the answer is only as good as the
// local table — the "meaningful on the owner" caveat still applies since
// the owner's table is densest around its own region.
func (k *Kernel) ReplicaSet(key uint64, r int) []dht.Member {
	if r <= 0 {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.closestLocked(key, r)
}

// Heir is the contact nearest self — the member that becomes closest to
// most of this node's keys once it departs.
func (k *Kernel) Heir() (dht.Member, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	cs := k.closestLocked(k.self.ID, 1)
	if len(cs) == 0 {
		return dht.Member{}, false
	}
	return cs[0], true
}

// View is self plus the K contacts nearest self. Size one means a lone
// node (the census's re-bootstrap trigger, same as a Chord ring of one).
func (k *Kernel) View() []dht.Member {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]dht.Member{k.self}, k.closestLocked(k.self.ID, k.cfg.K)...)
}

// Stats reports the table maintenance accounting.
func (k *Kernel) Stats() dht.Stats {
	return dht.Stats{
		TableChanges:   k.tableChanges.Value(),
		FailuresPurged: k.failuresPurged.Value(),
		Lookups:        k.lookups.Value(),
		LookupHops:     k.lookupHops.Value(),
	}
}

// ---------------------------------------------------------------------------
// Iterative lookup.

// lkCand is one lookup-shortlist row.
type lkCand struct {
	m       dht.Member
	queried bool
	failed  bool
}

// lookup is the iterative Kademlia FIND_NODE procedure: keep a shortlist
// of the closest known candidates, query the alpha nearest unqueried ones
// in parallel, merge every answer back in, and stop once the K nearest are
// all queried or a round makes no progress. seeds are the starting
// candidates; self is an eligible owner only if seeded or named by a
// response. Returns the surviving candidates nearest-first and the number
// of rounds taken.
func (k *Kernel) lookup(key uint64, seeds []lkCand, refresh bool) ([]dht.Member, int) {
	cands := make([]lkCand, 0, len(seeds)+2*k.cfg.K)
	have := make(map[string]int)
	add := func(m dht.Member, queried bool) {
		if m.Addr == "" {
			return
		}
		if i, ok := have[m.Addr]; ok {
			if queried {
				cands[i].queried = true
			}
			return
		}
		have[m.Addr] = len(cands)
		cands = append(cands, lkCand{m: m, queried: queried})
	}
	for _, s := range seeds {
		add(s.m, s.queried)
	}
	nearestFirst := func() {
		sort.SliceStable(cands, func(i, j int) bool { return closer(key, cands[i].m.ID, cands[j].m.ID) })
		// Rebuild the index after sorting.
		for i := range cands {
			have[cands[i].m.Addr] = i
		}
	}
	rounds := 0
	for rounds < maxRounds {
		select {
		case <-k.done:
			return nil, rounds
		default:
		}
		nearestFirst()
		// Frontier: the alpha nearest candidates not yet queried, drawn
		// from the K nearest overall — querying past the K-closest window
		// cannot change the answer.
		var frontier []dht.Member
		window := 0
		for i := 0; i < len(cands) && window < k.cfg.K; i++ {
			c := cands[i]
			if c.failed {
				continue
			}
			window++
			if c.queried || c.m.Addr == k.self.Addr {
				continue
			}
			frontier = append(frontier, c.m)
			if len(frontier) == k.cfg.Alpha {
				break
			}
		}
		if len(frontier) == 0 {
			break
		}
		rounds++
		type answer struct {
			from    dht.Member
			learned []dht.Member
			err     error
		}
		answers := make([]answer, len(frontier))
		var wg sync.WaitGroup
		for i, target := range frontier {
			wg.Add(1)
			k.inflight.Add(1)
			go func(i int, target dht.Member) {
				defer wg.Done()
				defer k.inflight.Add(-1)
				resp, err := k.call.CallIdem(target.Addr, &wire.KadFindNode{From: k.selfWire(), Key: key, Refresh: refresh})
				if err != nil {
					answers[i] = answer{from: target, err: err}
					return
				}
				kr, ok := resp.(*wire.KadFindNodeResp)
				if !ok {
					answers[i] = answer{from: target, err: fmt.Errorf("kademlia: unexpected response kind")}
					return
				}
				learned := make([]dht.Member, 0, len(kr.Closest)+1)
				if kr.From.Addr != "" {
					learned = append(learned, dht.FromWire(kr.From))
				}
				for _, e := range kr.Closest {
					if e.Addr != "" {
						learned = append(learned, dht.FromWire(e))
					}
				}
				answers[i] = answer{from: target, learned: learned}
			}(i, target)
		}
		wg.Wait()
		var sighted []dht.Member
		k.mu.Lock()
		for _, a := range answers {
			i := have[a.from.Addr]
			if a.err != nil {
				// The Caller's condemnation path already ran PeerFailed if
				// the evidence was conclusive; locally just stop asking.
				cands[i].failed = true
				continue
			}
			cands[i].queried = true
			// Only the responder itself enters the routing table — it just
			// proved itself alive. The members it named are hearsay: they go
			// into the shortlist (and, via Seen, the host's census cache) and
			// earn a table slot when they answer a query of their own.
			// Admitting hearsay would resurrect dead contacts from peers'
			// stale tables faster than failure purges remove them.
			k.observeLocked(a.from)
			for _, m := range a.learned {
				if m.Addr != k.self.Addr {
					sighted = append(sighted, m)
				}
			}
		}
		k.mu.Unlock()
		k.seen(sighted...)
		for _, a := range answers {
			if a.err != nil {
				continue
			}
			for _, m := range a.learned {
				add(m, false)
			}
		}
	}
	nearestFirst()
	out := make([]dht.Member, 0, k.cfg.K)
	for _, c := range cands {
		if c.failed {
			continue
		}
		out = append(out, c.m)
		if len(out) == k.cfg.K {
			break
		}
	}
	return out, rounds
}

// FindOwner routes to key's owner: an iterative lookup seeded from the
// local table, with self an eligible owner. fallbacks are the next-closest
// survivors — the members whose tables are densest around the key.
func (k *Kernel) FindOwner(key uint64) (dht.Member, []dht.Member, error) {
	k.mu.Lock()
	seedMs := k.closestLocked(key, k.cfg.K)
	k.mu.Unlock()
	seeds := make([]lkCand, 0, len(seedMs)+1)
	seeds = append(seeds, lkCand{m: k.self, queried: true})
	for _, m := range seedMs {
		seeds = append(seeds, lkCand{m: m})
	}
	ranked, rounds := k.lookup(key, seeds, false)
	if len(ranked) == 0 {
		return dht.Member{}, nil, fmt.Errorf("%w (kademlia: every candidate failed)", dht.ErrNoRoute)
	}
	k.lookups.Inc()
	if rounds > 0 {
		k.lookupHops.Add(uint64(rounds))
		k.hopHist.Observe(float64(rounds))
	}
	k.traceEvent("lookup.route", fmt.Sprintf("key=%016x hops=%d owner=%s", key, rounds, ranked[0].Addr))
	return ranked[0], ranked[1:], nil
}

// FindOwnerFrom routes to key's owner through start's network only: the
// shortlist is seeded by querying start, never from the local table, and
// self is not pre-seeded — it wins only if start's network names it. The
// census leans on exactly that: in a single network the confirmation
// lookup for this node's own ID lands back on self (distance zero always
// wins), while a split network answers with a stranger.
func (k *Kernel) FindOwnerFrom(start string, key uint64) (dht.Member, []dht.Member, error) {
	resp, err := k.call.CallIdem(start, &wire.KadFindNode{From: k.selfWire(), Key: key})
	if err != nil {
		return dht.Member{}, nil, err
	}
	kr, ok := resp.(*wire.KadFindNodeResp)
	if !ok {
		return dht.Member{}, nil, fmt.Errorf("kademlia: unexpected response kind")
	}
	seeds := []lkCand{{m: dht.FromWire(kr.From), queried: true}}
	var sighted []dht.Member
	k.mu.Lock()
	if kr.From.Addr != "" && kr.From.Addr != k.self.Addr {
		// start answered directly; its named closest are hearsay and only
		// seed the shortlist (see lookup).
		k.observeLocked(dht.FromWire(kr.From))
		sighted = append(sighted, dht.FromWire(kr.From))
	}
	for _, e := range kr.Closest {
		if e.Addr == "" {
			continue
		}
		if e.Addr != k.self.Addr {
			sighted = append(sighted, dht.FromWire(e))
		}
		seeds = append(seeds, lkCand{m: dht.FromWire(e)})
	}
	k.mu.Unlock()
	k.seen(sighted...)
	ranked, rounds := k.lookup(key, seeds, false)
	if len(ranked) == 0 {
		return dht.Member{}, nil, fmt.Errorf("%w (kademlia: every candidate failed)", dht.ErrNoRoute)
	}
	k.lookups.Inc()
	k.lookupHops.Add(uint64(rounds + 1))
	k.hopHist.Observe(float64(rounds + 1))
	return ranked[0], ranked[1:], nil
}

// ---------------------------------------------------------------------------
// Join / leave / merge.

// Join attaches through bootstrap: one direct query learns the bootstrap's
// identity and neighborhood, then a self-lookup walks toward our own
// region — every node queried on the way observes us (KadFindNode carries
// the caller), which is how the network learns a joiner exists.
func (k *Kernel) Join(bootstrap string) error {
	resp, err := k.call.CallIdem(bootstrap, &wire.KadFindNode{From: k.selfWire(), Key: k.self.ID})
	if err != nil {
		return err
	}
	kr, ok := resp.(*wire.KadFindNodeResp)
	if !ok {
		return fmt.Errorf("kademlia: unexpected response kind from bootstrap %s", bootstrap)
	}
	var sighted []dht.Member
	k.mu.Lock()
	if kr.From.Addr != "" && kr.From.Addr != k.self.Addr {
		// Only the bootstrap proved itself alive; its neighborhood is
		// hearsay that the advertising self-lookup below will verify
		// contact by contact (each answer earns its responder a slot).
		k.observeLocked(dht.FromWire(kr.From))
		sighted = append(sighted, dht.FromWire(kr.From))
	}
	for _, e := range kr.Closest {
		if e.Addr != "" && e.Addr != k.self.Addr {
			sighted = append(sighted, dht.FromWire(e))
		}
	}
	k.mu.Unlock()
	k.seen(sighted...)
	// The advertising self-lookup (walk toward our own region so the
	// network learns we exist) runs off the arrival path: a flash crowd
	// joining through one bootstrap must not serialize behind each
	// joiner's full table construction. Routing works as soon as the
	// bootstrap is known — lookups iterate outward from it — and the
	// refresh tick backstops discovery if this walk races a shutdown.
	// The jitter spreads a crowd's simultaneous walks so they do not
	// collectively swamp the bootstrap's neighborhood on arrival.
	go func() {
		if d := k.cfg.RefreshEvery / 2; d > 0 {
			k.mu.Lock()
			j := time.Duration(k.rng.Int63n(int64(d)))
			k.mu.Unlock()
			select {
			case <-k.done:
				return
			case <-time.After(j):
			}
		}
		_, _, _ = k.FindOwner(k.self.ID)
	}()
	return nil
}

// Leave is a best-effort goodbye to the K contacts nearest self, so their
// buckets drop this node immediately instead of after probe timeouts. The
// host hands off its index separately (to Heir) before calling this.
func (k *Kernel) Leave() {
	k.mu.Lock()
	targets := k.closestLocked(k.self.ID, k.cfg.K)
	k.mu.Unlock()
	leave := &wire.Leave{From: k.selfWire()}
	for _, t := range targets {
		_, _ = k.call.Call(t.Addr, leave)
	}
}

// Merge folds a confirmed foreign network in: observe its members, then
// self-lookup — the lookup routes into the foreign region (the folded
// contacts are now in the table) and every foreign node it queries
// observes us back. Passive learning does the rest; there is no Chord-style
// pointer surgery to perform.
func (k *Kernel) Merge(target dht.Member, others []dht.Member) {
	k.mu.Lock()
	k.observeLocked(target)
	for _, m := range others {
		if m.Addr != "" && m.Addr != k.self.Addr {
			k.observeLocked(m)
		}
	}
	k.mu.Unlock()
	_, _, _ = k.FindOwner(k.self.ID)
}

// ---------------------------------------------------------------------------
// Maintenance ticks.

// Ticks lists the Kademlia maintenance steps: bucket refresh (one bucket
// per tick, random key in its range) and the stale-head liveness probe
// that lets replacement candidates in.
func (k *Kernel) Ticks() []dht.Tick {
	return []dht.Tick{
		{Name: "refresh", Every: k.cfg.RefreshEvery, Fn: k.refreshTick},
		{Name: "probe", Every: k.cfg.ProbeEvery, Fn: k.probeTick},
	}
}

// refreshTick refreshes one bucket: look up a random key at that distance
// prefix, repopulating the bucket from whatever the lookup touches.
func (k *Kernel) refreshTick() {
	k.mu.Lock()
	if len(k.addrIdx) == 0 {
		k.mu.Unlock()
		return // lone node: nothing to walk
	}
	bi := k.cursor % 64
	k.cursor++
	// A random key whose highest differing bit from self is bi.
	key := k.self.ID ^ ((1 << uint(bi)) | (uint64(k.rng.Int63()) & ((1 << uint(bi)) - 1)))
	seedMs := k.closestLocked(key, k.cfg.K)
	k.mu.Unlock()
	seeds := make([]lkCand, 0, len(seedMs))
	for _, m := range seedMs {
		seeds = append(seeds, lkCand{m: m})
	}
	k.refreshes.Inc()
	k.lookup(key, seeds, true)
}

// probeTick pings the least-recently-seen head of one bucket that has
// replacement candidates waiting. A live head is re-observed (moves to the
// tail); a conclusively dead one is purged by the Caller's condemnation
// path, which promotes a replacement.
func (k *Kernel) probeTick() {
	k.mu.Lock()
	var target dht.Member
	found := false
	for i := 0; i < 64 && !found; i++ {
		b := &k.buckets[(k.cursor+i)%64]
		if len(b.replace) > 0 && len(b.contacts) > 0 {
			target = b.contacts[0].m
			found = true
		}
	}
	k.mu.Unlock()
	if !found {
		return
	}
	if _, err := k.call.Call(target.Addr, &wire.Ping{}); err == nil {
		k.Observe(target)
	}
}

// ---------------------------------------------------------------------------
// Inbound protocol.

// HandleRPC serves KadFindNode (the routing primitive) and Leave (the
// graceful goodbye); anything else is the host's or the other backend's.
func (k *Kernel) HandleRPC(from string, req wire.Message) (wire.Message, bool) {
	switch m := req.(type) {
	case *wire.KadFindNode:
		return k.onFindNode(m), true
	case *wire.Leave:
		return k.onLeave(m), true
	default:
		return nil, false
	}
}

func (k *Kernel) onFindNode(m *wire.KadFindNode) wire.Message {
	caller := dht.FromWire(m.From)
	inserted := false
	k.mu.Lock()
	// Answer from the table as it stood BEFORE this query, then observe
	// the caller. Ordering is load-bearing for the census: a confirmation
	// lookup through a foreign network must not find the asker just
	// because the query itself introduced it — only peers that already
	// knew the asker (its real network) may name it. The caller is not
	// filtered from the answer either: "the network names the asker" is
	// exactly the same-network signal FindOwnerFrom exists to measure
	// (lkCand dedup makes the echo harmless in ordinary lookups).
	closest := k.closestLocked(m.Key, k.cfg.K)
	if caller.Addr != "" && caller.Addr != k.self.Addr {
		inserted = k.observeLocked(caller)
	}
	k.mu.Unlock()
	if caller.Addr != "" && caller.Addr != k.self.Addr {
		k.seen(caller)
	}
	if inserted && k.ev.RangeChanged != nil {
		// A brand-new contact may be XOR-closer than self to keys this
		// node's host currently indexes (the Kademlia analogue of Chord
		// adopting a closer predecessor on Notify): let the host hand off
		// whatever it no longer owns. The host re-checks ownership per
		// key, so a contact that takes nothing costs one cheap scan.
		k.ev.RangeChanged(caller)
	}
	// The caller is NOT filtered out of the answer: the census
	// confirmation lookup routes a node's own ID through a suspected
	// foreign member and decides "same network" exactly when the answers
	// name the asker (lkCand dedup makes the echo harmless otherwise).
	resp := &wire.KadFindNodeResp{From: k.selfWire()}
	for _, c := range closest {
		resp.Closest = append(resp.Closest, c.Wire())
	}
	return resp
}

func (k *Kernel) onLeave(m *wire.Leave) wire.Message {
	k.mu.Lock()
	k.removeLocked(m.From.Addr)
	k.mu.Unlock()
	if k.ev.Departed != nil {
		k.ev.Departed(dht.FromWire(m.From))
	}
	return &wire.Ack{}
}
