package kademlia_test

import (
	"testing"
	"time"

	"dco/internal/dht"
	"dco/internal/dht/dhttest"
	"dco/internal/kademlia"
)

func TestConformance(t *testing.T) {
	dhttest.Run(t, func(opts dht.Options) dht.Kernel {
		return kademlia.New(kademlia.Config{
			K:            16,
			Alpha:        3,
			RefreshEvery: 40 * time.Millisecond,
			ProbeEvery:   10 * time.Millisecond,
		}, opts)
	})
}
