package kademlia

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"dco/internal/dht"
	"dco/internal/wire"
)

// stubCaller serves KadFindNode against a shared set of stub kernels, so
// table mechanics are testable without a transport.
type stubCaller struct {
	mu    sync.Mutex
	peers map[string]*Kernel
	dead  map[string]bool
	calls map[string]int
}

func newStubCaller() *stubCaller {
	return &stubCaller{
		peers: map[string]*Kernel{},
		dead:  map[string]bool{},
		calls: map[string]int{},
	}
}

func (s *stubCaller) Call(addr string, req wire.Message) (wire.Message, error) {
	s.mu.Lock()
	s.calls[addr]++
	k, ok := s.peers[addr]
	dead := s.dead[addr]
	s.mu.Unlock()
	if !ok || dead {
		return nil, fmt.Errorf("stub: %s unreachable", addr)
	}
	if _, isPing := req.(*wire.Ping); isPing {
		return &wire.Pong{}, nil
	}
	resp, handled := k.HandleRPC("test", req)
	if !handled {
		return nil, fmt.Errorf("stub: %s does not handle %T", addr, req)
	}
	return resp, nil
}

func (s *stubCaller) CallIdem(addr string, req wire.Message) (wire.Message, error) {
	return s.Call(addr, req)
}

func member(id uint64) dht.Member {
	return dht.Member{ID: id, Addr: fmt.Sprintf("stub://%d", id)}
}

func newTestKernel(c *stubCaller, self dht.Member, cfg Config) *Kernel {
	k := New(cfg, dht.Options{Self: self, Caller: c})
	c.mu.Lock()
	c.peers[self.Addr] = k
	c.mu.Unlock()
	return k
}

func TestBucketIndex(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(0), Config{})
	cases := []struct {
		id   uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {0x8000000000000000, 63},
	}
	for _, tc := range cases {
		if got := k.bucketIndex(tc.id); got != tc.want {
			t.Errorf("bucketIndex(%#x) = %d, want %d", tc.id, got, tc.want)
		}
	}
	if got := k.bucketIndex(0); got != -1 {
		t.Errorf("bucketIndex(self) = %d, want -1", got)
	}
}

func TestObserveInsertRefreshAndLRU(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(0), Config{K: 3})

	// Self and empty addresses are rejected.
	if k.Observe(dht.Member{ID: 0, Addr: "stub://0"}) {
		t.Fatal("observed self")
	}
	if k.Observe(dht.Member{ID: 9, Addr: ""}) {
		t.Fatal("observed empty address")
	}

	// IDs 4..7 share bucket 2 (distance prefix bit 2). K=3: the first
	// three insert, the fourth waits in the replacement cache.
	for id := uint64(4); id <= 6; id++ {
		if !k.Observe(member(id)) {
			t.Fatalf("insert of %d rejected", id)
		}
	}
	if k.Observe(member(7)) {
		t.Fatal("full bucket accepted a fourth contact")
	}
	k.mu.Lock()
	b := &k.buckets[2]
	head := b.contacts[0].m.ID
	repl := len(b.replace)
	k.mu.Unlock()
	if head != 4 || repl != 1 {
		t.Fatalf("head=%d replacements=%d, want head=4 replacements=1", head, repl)
	}

	// Re-observing a known contact moves it to the most-recently-seen
	// tail without counting as an insert.
	if k.Observe(member(4)) {
		t.Fatal("refresh of a known contact counted as insert")
	}
	k.mu.Lock()
	tail := b.contacts[len(b.contacts)-1].m.ID
	k.mu.Unlock()
	if tail != 4 {
		t.Fatalf("refreshed contact at tail = %d, want 4", tail)
	}
}

func TestPeerFailedPromotesReplacement(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(0), Config{K: 2})
	// Bucket 2 holds 4,5; 6 and 7 queue as replacements (newest last).
	for id := uint64(4); id <= 7; id++ {
		k.Observe(member(id))
	}
	k.PeerFailed(member(4).Addr)
	k.mu.Lock()
	var ids []uint64
	for _, ct := range k.buckets[2].contacts {
		ids = append(ids, ct.m.ID)
	}
	repl := len(k.buckets[2].replace)
	k.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// The newest replacement (7) takes the freed slot; 6 keeps waiting.
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 7 {
		t.Fatalf("bucket after purge = %v, want [5 7]", ids)
	}
	if repl != 1 {
		t.Fatalf("replacements after promotion = %d, want 1", repl)
	}
	// Failing an unknown address only scrubs replacement caches.
	k.PeerFailed("stub://999")
}

func TestRekeyedAddressReplacesStaleEntry(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(0), Config{})
	m := dht.Member{ID: 4, Addr: "stub://fixed"}
	k.Observe(m)
	// Same address returns under a different ID (process restart): the
	// stale entry must vanish, not linger in the old bucket.
	k.Observe(dht.Member{ID: 0x8000000000000001, Addr: "stub://fixed"})
	k.mu.Lock()
	oldBucket := len(k.buckets[2].contacts)
	newBucket := len(k.buckets[63].contacts)
	k.mu.Unlock()
	if oldBucket != 0 || newBucket != 1 {
		t.Fatalf("after re-key: old bucket %d entries, new bucket %d, want 0 and 1", oldBucket, newBucket)
	}
}

func TestOwnsAndOwnsSettled(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(8), Config{})
	// Empty table: Owns claims everything, OwnsSettled claims nothing.
	if !k.Owns(0x7000) {
		t.Fatal("lone node must claim every key")
	}
	if k.OwnsSettled(0x7000) {
		t.Fatal("lone node must not be settled on any key")
	}
	k.Observe(member(0x1000))
	// Key 9: 8^9=1, 0x1000^9 is much larger -> self is closest.
	if !k.Owns(9) || !k.OwnsSettled(9) {
		t.Fatal("self is XOR-closest to 9 and must own it")
	}
	// Key 0x1001: contact distance 1 beats self's -> not owned.
	if k.Owns(0x1001) {
		t.Fatal("key next to a contact must not be owned")
	}
}

func TestClosestOrderingAndReplicaSet(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(0), Config{})
	for _, id := range []uint64{0x10, 0x11, 0x20, 0x40, 0x80} {
		k.Observe(member(id))
	}
	rs := k.ReplicaSet(0x12, 3)
	if len(rs) != 3 {
		t.Fatalf("ReplicaSet returned %d members, want 3", len(rs))
	}
	// XOR distance from 0x12: 0x10->2, 0x11->3, 0x20->0x32, ...
	if rs[0].ID != 0x10 || rs[1].ID != 0x11 || rs[2].ID != 0x20 {
		t.Fatalf("ReplicaSet order = %v", rs)
	}
	if got := k.ReplicaSet(0x12, 0); got != nil {
		t.Fatalf("ReplicaSet(r=0) = %v, want nil", got)
	}
	for _, m := range rs {
		if m.Addr == k.self.Addr {
			t.Fatal("ReplicaSet must never include self")
		}
	}
}

func TestHeirAndView(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(8), Config{K: 2})
	if _, ok := k.Heir(); ok {
		t.Fatal("lone node has no heir")
	}
	if v := k.View(); len(v) != 1 || v[0].ID != 8 {
		t.Fatalf("lone view = %v", v)
	}
	k.Observe(member(9))  // distance 1
	k.Observe(member(12)) // distance 4
	k.Observe(member(40)) // distance 32
	h, ok := k.Heir()
	if !ok || h.ID != 9 {
		t.Fatalf("heir = %v ok=%v, want member 9", h, ok)
	}
	v := k.View()
	if len(v) != 3 || v[0].ID != 8 || v[1].ID != 9 || v[2].ID != 12 {
		t.Fatalf("view = %v, want [8 9 12] (self + K nearest)", v)
	}
}

func TestIterativeLookupConverges(t *testing.T) {
	c := newStubCaller()
	// A chain of knowledge: each kernel knows only its neighbors, so the
	// lookup must iterate through strangers to reach the key's region.
	ids := []uint64{0x01, 0x10, 0x20, 0x40, 0x80, 0xF0}
	kerns := make([]*Kernel, len(ids))
	for i, id := range ids {
		kerns[i] = newTestKernel(c, member(id), Config{K: 16, Alpha: 2})
	}
	for i := range kerns {
		if i > 0 {
			kerns[i].Observe(member(ids[i-1]))
		}
		if i < len(kerns)-1 {
			kerns[i].Observe(member(ids[i+1]))
		}
	}
	owner, fallbacks, err := kerns[0].FindOwner(0xF1)
	if err != nil {
		t.Fatalf("FindOwner: %v", err)
	}
	if owner.ID != 0xF0 {
		t.Fatalf("owner = %#x, want 0xF0 (XOR-closest to 0xF1)", owner.ID)
	}
	if len(fallbacks) == 0 {
		t.Fatal("no fallbacks returned")
	}
	// The iterative walk verified responders along the way: the starting
	// kernel's table must now hold contacts it was never told about.
	kerns[0].mu.Lock()
	learned := len(kerns[0].addrIdx)
	kerns[0].mu.Unlock()
	if learned < 3 {
		t.Fatalf("table after lookup has %d contacts, want the walk to verify several", learned)
	}
	if st := kerns[0].Stats(); st.Lookups != 1 || st.LookupHops == 0 {
		t.Fatalf("stats after lookup = %+v", st)
	}
}

func TestLookupRoutesAroundFailures(t *testing.T) {
	c := newStubCaller()
	ids := []uint64{0x01, 0x80, 0x90, 0xA0}
	kerns := make([]*Kernel, len(ids))
	for i, id := range ids {
		kerns[i] = newTestKernel(c, member(id), Config{K: 16, Alpha: 2})
	}
	// Kernel 0 knows everyone; 0x90 (the key's closest) is dead.
	for _, id := range ids[1:] {
		kerns[0].Observe(member(id))
	}
	c.mu.Lock()
	c.dead[member(0x90).Addr] = true
	c.mu.Unlock()
	owner, _, err := kerns[0].FindOwner(0x91)
	if err != nil {
		t.Fatalf("FindOwner with one dead candidate: %v", err)
	}
	if owner.ID == 0x90 {
		t.Fatal("lookup returned the dead candidate as owner")
	}
	if owner.ID != 0x90 && owner.ID != 0xA0 && owner.ID != 0x80 {
		t.Fatalf("owner = %#x, want a live near contact", owner.ID)
	}
}

func TestFindOwnerFromIgnoresLocalTable(t *testing.T) {
	c := newStubCaller()
	a := newTestKernel(c, member(0x10), Config{})
	b := newTestKernel(c, member(0x80), Config{})
	_ = b
	// a's own table says a is closest to 0x11, but FindOwnerFrom must
	// route exclusively through b's network, which has never heard of a's
	// neighbors (only of a itself, once the query arrives).
	a.Observe(member(0x80))
	owner, _, err := a.FindOwnerFrom(member(0x80).Addr, 0x11)
	if err != nil {
		t.Fatalf("FindOwnerFrom: %v", err)
	}
	// b knows nobody, so it answers with itself only; a is not pre-seeded
	// and must not win from its own table.
	if owner.ID != 0x80 {
		t.Fatalf("owner = %#x, want 0x80 (start's network only)", owner.ID)
	}
}

func TestJoinPopulatesBothSides(t *testing.T) {
	c := newStubCaller()
	boot := newTestKernel(c, member(0x10), Config{})
	joiner := newTestKernel(c, member(0x90), Config{})
	if err := joiner.Join(boot.self.Addr); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if _, ok := joiner.Heir(); !ok {
		t.Fatal("joiner learned nobody")
	}
	boot.mu.Lock()
	knows := len(boot.addrIdx)
	boot.mu.Unlock()
	if knows != 1 {
		t.Fatalf("bootstrap learned %d contacts from the join, want 1", knows)
	}
}

func TestLeaveNotifiesNeighbors(t *testing.T) {
	c := newStubCaller()
	a := newTestKernel(c, member(0x10), Config{})
	departed := make(chan dht.Member, 1)
	bOpts := dht.Options{Self: member(0x20), Caller: c, Events: dht.Events{
		Departed: func(m dht.Member) { departed <- m },
	}}
	b := New(Config{}, bOpts)
	c.mu.Lock()
	c.peers[member(0x20).Addr] = b
	c.mu.Unlock()

	a.Observe(member(0x20))
	b.Observe(member(0x10))
	a.Leave()
	select {
	case m := <-departed:
		if m.ID != 0x10 {
			t.Fatalf("departed %v, want member 0x10", m)
		}
	case <-time.After(time.Second):
		t.Fatal("Leave never reached the neighbor")
	}
	if _, ok := b.Heir(); ok {
		t.Fatal("leaver still in the neighbor's table")
	}
}

func TestOnFindNodeFiresRangeChangedOncePerNewContact(t *testing.T) {
	c := newStubCaller()
	var mu sync.Mutex
	var changed []dht.Member
	opts := dht.Options{Self: member(0x10), Caller: c, Events: dht.Events{
		RangeChanged: func(m dht.Member) {
			mu.Lock()
			changed = append(changed, m)
			mu.Unlock()
		},
	}}
	k := New(Config{}, opts)
	req := &wire.KadFindNode{From: wire.Entry{ID: 0x20, Addr: "stub://32"}, Key: 5}
	k.HandleRPC("stub://32", req)
	k.HandleRPC("stub://32", req) // already known: no second event
	mu.Lock()
	defer mu.Unlock()
	if len(changed) != 1 || changed[0].ID != 0x20 {
		t.Fatalf("RangeChanged events = %v, want exactly one for the new contact", changed)
	}
}

func TestRefreshTickWalksBuckets(t *testing.T) {
	c := newStubCaller()
	a := newTestKernel(c, member(0x10), Config{RefreshEvery: time.Hour, ProbeEvery: time.Hour})
	// Lone node: refresh is a no-op, not a crash.
	a.refreshTick()
	b := newTestKernel(c, member(0x80), Config{})
	a.Observe(b.self)
	b.Observe(a.self)
	before := a.Stats().Lookups
	for i := 0; i < 64; i++ {
		a.refreshTick()
	}
	if got := c.calls[b.self.Addr]; got == 0 {
		t.Fatal("a full refresh rotation never queried the only contact")
	}
	// Refresh lookups are maintenance: they must not count as demand
	// lookups (the dhtcompare hop distribution would be polluted).
	if a.Stats().Lookups != before {
		t.Fatal("refresh counted toward dco_dht_lookups_total")
	}
	ticks := a.Ticks()
	if len(ticks) != 2 || ticks[0].Name != "refresh" || ticks[1].Name != "probe" {
		t.Fatalf("Ticks = %v", ticks)
	}
}

func TestProbeTickRevivesOrEvicts(t *testing.T) {
	c := newStubCaller()
	k := newTestKernel(c, member(0), Config{K: 1})
	live := newTestKernel(c, member(4), Config{})
	_ = live
	k.Observe(member(4)) // bucket 2 head
	k.Observe(member(5)) // replacement candidate for bucket 2
	k.probeTick()
	c.mu.Lock()
	probed := c.calls[member(4).Addr]
	c.mu.Unlock()
	if probed == 0 {
		t.Fatal("probe tick never pinged the stale head")
	}
	// The live head stays; the replacement keeps waiting.
	k.mu.Lock()
	headID := k.buckets[2].contacts[0].m.ID
	k.mu.Unlock()
	if headID != 4 {
		t.Fatalf("live head evicted: bucket head = %d", headID)
	}
}

func TestMergeFoldsForeignMembers(t *testing.T) {
	c := newStubCaller()
	a := newTestKernel(c, member(0x10), Config{})
	b := newTestKernel(c, member(0x80), Config{})
	b2 := newTestKernel(c, member(0x90), Config{})
	b.Observe(b2.self)
	b2.Observe(b.self)
	a.Merge(b.self, []dht.Member{b2.self, a.self /* self must be skipped */})
	a.mu.Lock()
	n := len(a.addrIdx)
	a.mu.Unlock()
	if n < 2 {
		t.Fatalf("merge folded %d contacts, want both foreign members", n)
	}
	// The advertising self-lookup told the foreign side about a.
	b.mu.Lock()
	knowsA := false
	if _, ok := b.addrIdx[a.self.Addr]; ok {
		knowsA = true
	}
	b.mu.Unlock()
	if !knowsA {
		t.Fatal("foreign network never learned the merging node")
	}
}
