// Package stable implements the stable-node (coordinator candidate)
// identification of §III-B1a: the longevity probability that a node stays
// in the overlay past time t, computed with the Cox proportional-hazards
// model (Eq. 1):
//
//	p_l(t) = 1 − h0(t) · exp(βᵀ z)
//
// with covariates z = (streaming quality, joining time-of-day). The paper
// takes the covariates and coefficients from [42] without publishing fitted
// values, so the coefficients are inputs here; DefaultModel supplies a
// qualitative fit with the properties the paper relies on: nodes that have
// stayed longer, buffer better, and joined at "sticky" hours score higher.
package stable

import (
	"math"
	"time"
)

// Covariates is the vector z of Eq. (1).
type Covariates struct {
	// BufferingLevel is the streaming-quality covariate: the number of
	// consecutive chunks buffered ahead of the playback position.
	BufferingLevel float64
	// JoinHour is the time of day the node joined, in fractional hours
	// [0, 24).
	JoinHour float64
}

// Vector flattens the covariates in the order β expects.
func (c Covariates) Vector() []float64 { return []float64{c.BufferingLevel, c.JoinHour} }

// Model is a Cox proportional-hazards longevity model.
type Model struct {
	// Beta holds the coefficients β. Negative coefficients mean the
	// covariate reduces the hazard (increases longevity).
	Beta []float64
	// Baseline is h0(t), the non-negative baseline hazard. It must be
	// small enough that p_l stays within [0,1]; Longevity clamps regardless.
	Baseline func(t time.Duration) float64
}

// DefaultModel returns a model with the qualitative shape the paper
// assumes: hazard decays with session age (nodes that stayed long keep
// staying, per [44]), a full buffer halves the hazard versus an empty one,
// and evening joiners (prime-time viewers) are stickier.
func DefaultModel() Model {
	return Model{
		// β1 < 0: each buffered chunk lowers the hazard ~1.5% — strong
		// enough to separate smooth viewers from stallers, weak enough
		// that session age stays the dominant factor (a brand-new node
		// cannot buy stability with one full buffer).
		// β2: hour effect, encoded via distance from 20:00 prime time.
		Beta: []float64{-0.015, 0.02},
		Baseline: func(t time.Duration) float64 {
			// h0 decays from 0.5 toward 0.05 with a 60 s constant: a node
			// alive for several lifetimes is very likely to stay.
			return 0.05 + 0.45*math.Exp(-t.Seconds()/60)
		},
	}
}

// Longevity evaluates Eq. (1) and clamps into [0, 1].
func (m Model) Longevity(t time.Duration, z Covariates) float64 {
	v := z.Vector()
	if len(v) != len(m.Beta) {
		panic("stable: covariate/coefficient length mismatch")
	}
	dot := 0.0
	for i, b := range m.Beta {
		dot += b * v[i]
	}
	p := 1 - m.Baseline(t)*math.Exp(dot)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Classifier decides coordinator eligibility by thresholding longevity, the
// test a lower-tier node runs periodically before volunteering for the DHT
// (§III-B1b).
type Classifier struct {
	Model     Model
	Threshold float64 // e.g. 0.8: stay-probability required to be "stable"
}

// NewClassifier returns a classifier with the given threshold over the
// default model.
func NewClassifier(threshold float64) Classifier {
	return Classifier{Model: DefaultModel(), Threshold: threshold}
}

// IsStable reports whether a node with session age t and covariates z
// qualifies as a stable node.
func (c Classifier) IsStable(t time.Duration, z Covariates) bool {
	return c.Model.Longevity(t, z) >= c.Threshold
}
