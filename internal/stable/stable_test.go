package stable

import (
	"testing"
	"time"
)

func TestLongevityBounds(t *testing.T) {
	m := DefaultModel()
	for _, age := range []time.Duration{0, time.Second, time.Minute, time.Hour} {
		for _, z := range []Covariates{
			{}, {BufferingLevel: 60}, {BufferingLevel: 5, JoinHour: 23},
		} {
			p := m.Longevity(age, z)
			if p < 0 || p > 1 {
				t.Fatalf("p_l(%v, %+v) = %f outside [0,1]", age, z, p)
			}
		}
	}
}

func TestLongevityIncreasesWithSessionAge(t *testing.T) {
	m := DefaultModel()
	z := Covariates{BufferingLevel: 10}
	young := m.Longevity(5*time.Second, z)
	old := m.Longevity(5*time.Minute, z)
	if old <= young {
		t.Fatalf("longevity should grow with session age: %f (old) <= %f (young)", old, young)
	}
}

func TestBufferingLevelReducesHazard(t *testing.T) {
	m := DefaultModel()
	empty := m.Longevity(time.Minute, Covariates{BufferingLevel: 0})
	full := m.Longevity(time.Minute, Covariates{BufferingLevel: 60})
	if full <= empty {
		t.Fatalf("well-buffered nodes must score higher: full=%f empty=%f", full, empty)
	}
}

func TestClassifierThreshold(t *testing.T) {
	c := NewClassifier(0.8)
	z := Covariates{BufferingLevel: 30}
	if c.IsStable(time.Second, z) {
		t.Fatal("a brand-new node should not be stable at threshold 0.8")
	}
	if !c.IsStable(10*time.Minute, z) {
		t.Fatal("a long-lived well-buffered node should be stable")
	}
	// A zero threshold accepts everyone.
	if !NewClassifier(0).IsStable(0, Covariates{}) {
		t.Fatal("threshold 0 should accept all")
	}
}

func TestMismatchedCovariatesPanic(t *testing.T) {
	m := Model{Beta: []float64{1}, Baseline: func(time.Duration) float64 { return 0.1 }}
	defer func() {
		if recover() == nil {
			t.Fatal("covariate length mismatch must panic")
		}
	}()
	m.Longevity(time.Second, Covariates{})
}

func TestLongevityClamping(t *testing.T) {
	// A pathological baseline > 1 must clamp to 0, not go negative.
	m := Model{
		Beta:     []float64{0, 0},
		Baseline: func(time.Duration) float64 { return 5 },
	}
	if p := m.Longevity(0, Covariates{}); p != 0 {
		t.Fatalf("clamp low failed: %f", p)
	}
	// A negative-hazard abuse clamps to 1.
	m.Baseline = func(time.Duration) float64 { return -5 }
	if p := m.Longevity(0, Covariates{}); p != 1 {
		t.Fatalf("clamp high failed: %f", p)
	}
}
