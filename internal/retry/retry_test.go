package retry

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{InitialBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 80, 80}
	for i, w := range want {
		if got := p.backoff(i+1, nil); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterSeeded(t *testing.T) {
	p := Policy{InitialBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Multiplier: 2, Jitter: 0.5}
	a := New(p, nil, 42)
	b := New(p, nil, 42)
	c := New(p, nil, 43)
	var sa, sb, sc []time.Duration
	for i := 1; i <= 8; i++ {
		sa = append(sa, a.pause(i))
		sb = append(sb, b.pause(i))
		sc = append(sc, c.pause(i))
	}
	same, diff := true, false
	for i := range sa {
		if sa[i] != sb[i] {
			same = false
		}
		if sa[i] != sc[i] {
			diff = true
		}
		lo := time.Duration(float64(p.backoff(i+1, nil)) * 0.5)
		if sa[i] < lo-time.Millisecond || sa[i] > p.backoff(i+1, nil) {
			t.Fatalf("jittered pause %v outside [%v, %v]", sa[i], lo, p.backoff(i+1, nil))
		}
	}
	if !same {
		t.Fatal("equal seeds produced different backoff schedules")
	}
	if !diff {
		t.Fatal("different seeds produced identical backoff schedules")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	r := New(Policy{MaxAttempts: 5, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}, nil, 1)
	calls := 0
	err := r.Do(nil, "a", Classify{}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestDoStopsOnTerminalError(t *testing.T) {
	terminal := errors.New("terminal")
	r := New(Policy{MaxAttempts: 5, InitialBackoff: time.Millisecond}, nil, 1)
	calls := 0
	err := r.Do(nil, "a", Classify{Retryable: func(err error) bool { return !errors.Is(err, terminal) }}, func() error {
		calls++
		return terminal
	})
	if !errors.Is(err, terminal) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want terminal after 1 call", err, calls)
	}
}

func TestDoRespectsAttemptCap(t *testing.T) {
	r := New(Policy{MaxAttempts: 3, InitialBackoff: time.Millisecond}, nil, 1)
	calls := 0
	fail := errors.New("nope")
	if err := r.Do(nil, "a", Classify{}, func() error { calls++; return fail }); !errors.Is(err, fail) {
		t.Fatalf("err=%v", err)
	}
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
}

func TestDoRespectsBudget(t *testing.T) {
	r := New(Policy{MaxAttempts: 100, InitialBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond, Budget: 60 * time.Millisecond}, nil, 1)
	calls := 0
	start := time.Now()
	_ = r.Do(nil, "a", Classify{}, func() error { calls++; return errors.New("x") })
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("budget ignored: ran %v", elapsed)
	}
	if calls > 3 {
		t.Fatalf("calls=%d, budget should have stopped the loop early", calls)
	}
}

func TestDoAbortsWhenDoneCloses(t *testing.T) {
	done := make(chan struct{})
	close(done)
	r := New(Policy{MaxAttempts: 100, InitialBackoff: time.Hour}, nil, 1)
	calls := 0
	start := time.Now()
	_ = r.Do(done, "a", Classify{}, func() error { calls++; return errors.New("x") })
	if calls != 1 || time.Since(start) > time.Second {
		t.Fatalf("calls=%d elapsed=%v; done should abort before the pause", calls, time.Since(start))
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Hour})
	now := time.Unix(0, 0)
	b.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		b.Failure("x")
		if !b.Allow("x") {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure("x")
	if b.Allow("x") {
		t.Fatal("breaker still closed after threshold failures")
	}
	if !b.Open("x") {
		t.Fatal("Open() disagrees with Allow()")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens=%d", b.Opens())
	}

	// After cooldown: exactly one half-open probe.
	now = now.Add(2 * time.Hour)
	if !b.Allow("x") {
		t.Fatal("no probe admitted after cooldown")
	}
	if b.Allow("x") {
		t.Fatal("second concurrent probe admitted in half-open")
	}
	// Failed probe re-opens immediately.
	b.Failure("x")
	if b.Allow("x") {
		t.Fatal("breaker closed after failed probe")
	}
	// Next probe succeeds → closed again.
	now = now.Add(2 * time.Hour)
	if !b.Allow("x") {
		t.Fatal("no probe after second cooldown")
	}
	b.Success("x")
	if !b.Allow("x") || !b.Allow("x") {
		t.Fatal("breaker not closed after successful probe")
	}
}

func TestBreakerIsPerAddress(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	b.Failure("dead")
	if b.Allow("dead") {
		t.Fatal("dead address allowed")
	}
	if !b.Allow("alive") {
		t.Fatal("unrelated address rejected")
	}
}

func TestDoBreakerIgnoresApplicationErrors(t *testing.T) {
	// An error classified as non-breaker (the peer answered, it just said
	// no) must never open the circuit, however often it repeats.
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Hour})
	r := New(Policy{MaxAttempts: 1}, b, 1)
	appErr := errors.New("rejected")
	c := Classify{BreakerFailure: func(err error) bool { return !errors.Is(err, appErr) }}
	for i := 0; i < 10; i++ {
		_ = r.Do(nil, "x", c, func() error { return appErr })
	}
	if !b.Allow("x") {
		t.Fatal("application-level rejections opened the circuit")
	}
	// And an application answer resets prior transport failures.
	b.Failure("x")
	_ = r.Do(nil, "x", c, func() error { return appErr })
	b.Failure("x")
	if !b.Allow("x") {
		t.Fatal("consecutive-failure count not reset by an application answer")
	}
}

func TestDoFailsFastWhenOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	r := New(Policy{MaxAttempts: 3, InitialBackoff: time.Millisecond}, b, 1)
	calls := 0
	_ = r.Do(nil, "x", Classify{}, func() error { calls++; return errors.New("down") })
	if calls != 1 {
		t.Fatalf("calls=%d; breaker (threshold 1) should stop retries", calls)
	}
	err := r.Do(nil, "x", Classify{}, func() error { calls++; return nil })
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err=%v, want ErrOpen", err)
	}
	if calls != 1 {
		t.Fatal("open circuit still let the op run")
	}
}

func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	var mu sync.Mutex
	now := time.Unix(0, 0)
	b.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	b.Failure("x")
	if b.Allow("x") {
		t.Fatal("circuit should be open")
	}
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()

	// A stampede of callers races for the half-open slot: exactly one
	// probe is admitted, every loser is rejected deterministically (no
	// queueing, no second probe).
	const racers = 32
	var wg sync.WaitGroup
	var admitted atomic.Int64
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow("x") {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}

	// While the probe is outstanding, later callers keep losing.
	if b.Allow("x") {
		t.Fatal("second probe admitted while the first is outstanding")
	}

	// Probe failure re-opens: everyone is rejected until the next cooldown.
	b.Failure("x")
	var rejected int
	for i := 0; i < racers; i++ {
		if !b.Allow("x") {
			rejected++
		}
	}
	if rejected != racers {
		t.Fatalf("re-opened circuit admitted %d callers, want 0", racers-rejected)
	}

	// Next cooldown: again exactly one winner, and its success closes the
	// circuit for everyone.
	mu.Lock()
	now = now.Add(2 * time.Hour)
	mu.Unlock()
	admitted.Store(0)
	start = make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.Allow("x") {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("second half-open round admitted %d probes, want exactly 1", got)
	}
	b.Success("x")
	for i := 0; i < racers; i++ {
		if !b.Allow("x") {
			t.Fatal("closed circuit rejected a caller")
		}
	}
}
