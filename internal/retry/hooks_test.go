package retry

import (
	"errors"
	"testing"
	"time"
)

func TestRetrierOnRetryHook(t *testing.T) {
	r := New(Policy{MaxAttempts: 4, InitialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}, nil, 1)
	type retryEvt struct {
		addr    string
		attempt int
		pause   time.Duration
	}
	var seen []retryEvt
	r.SetOnRetry(func(addr string, attempt int, pause time.Duration, err error) {
		if err == nil {
			t.Error("hook must carry the failing error")
		}
		seen = append(seen, retryEvt{addr, attempt, pause})
	})
	calls := 0
	err := r.Do(nil, "peer-a", Classify{}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("hook fired %d times, want 2 (attempts before the successful third)", len(seen))
	}
	for i, e := range seen {
		if e.addr != "peer-a" || e.attempt != i+1 || e.pause <= 0 {
			t.Fatalf("hook event %d = %+v", i, e)
		}
	}
	if r.BackoffTotal() < seen[0].pause+seen[1].pause {
		t.Fatalf("BackoffTotal %v < sum of hook pauses", r.BackoffTotal())
	}
}

func TestBreakerTransitionHook(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Millisecond})
	type transition struct {
		addr   string
		opened bool
	}
	var seen []transition
	b.SetOnTransition(func(addr string, opened bool) {
		seen = append(seen, transition{addr, opened})
	})

	b.Failure("x")
	if len(seen) != 0 {
		t.Fatal("hook fired before the threshold")
	}
	b.Failure("x") // opens
	if len(seen) != 1 || !seen[0].opened || seen[0].addr != "x" {
		t.Fatalf("after open: %+v", seen)
	}
	b.Failure("x") // already open: no transition
	if len(seen) != 1 {
		t.Fatalf("re-failure of an open circuit fired the hook: %+v", seen)
	}

	time.Sleep(2 * time.Millisecond)
	if !b.Allow("x") {
		t.Fatal("half-open probe not admitted after cooldown")
	}
	b.Success("x") // closes
	if len(seen) != 2 || seen[1].opened {
		t.Fatalf("after close: %+v", seen)
	}
	if b.Opens() != 1 || b.Closes() != 1 {
		t.Fatalf("opens=%d closes=%d, want 1/1", b.Opens(), b.Closes())
	}

	// Success on a clean (never-tripped) peer is not a close transition.
	b.Success("y")
	if len(seen) != 2 || b.Closes() != 1 {
		t.Fatalf("clean success counted as a close: %+v closes=%d", seen, b.Closes())
	}
}

func TestNilBreakerHookSafe(t *testing.T) {
	var b *Breaker
	b.SetOnTransition(func(string, bool) {}) // must not panic
	b.Failure("x")
	b.Success("x")
}
