// Package retry gives the live DCO stack its failure discipline: jittered
// exponential backoff with a per-operation budget, and a per-address
// circuit breaker that stops hammering peers that keep failing. The
// simulator models churn recovery structurally (dead-hop re-picks, busy
// nacks); this package is the equivalent machinery for the real-network
// path, where failures are timeouts and refused connections rather than
// scripted events.
//
// Reproducibility: the jitter source is seeded, so a node constructed with
// the same seed produces the same backoff schedule — matching the repo's
// rule that equal seeds yield equal runs.
package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes one operation's retry loop.
type Policy struct {
	// MaxAttempts caps tries per operation (first call included).
	// Values below 1 mean a single attempt.
	MaxAttempts int
	// InitialBackoff is the pause after the first failure.
	InitialBackoff time.Duration
	// MaxBackoff caps the grown pause.
	MaxBackoff time.Duration
	// Multiplier grows the pause between attempts (values <= 1 mean 2).
	Multiplier float64
	// Jitter is the fraction of each pause that is randomized, in [0, 1].
	// 0.5 turns a 100ms pause into uniform [50ms, 100ms].
	Jitter float64
	// Budget bounds the operation's total wall-clock spend across
	// attempts and pauses. Zero means attempts alone limit the loop.
	Budget time.Duration
}

// DefaultPolicy suits LAN control-plane RPCs: fast first retry, bounded
// total spend well under a chunk period at streaming timescales.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:    3,
		InitialBackoff: 30 * time.Millisecond,
		MaxBackoff:     500 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.5,
		Budget:         3 * time.Second,
	}
}

// Pause returns the unjittered pause before retry number n (n = 1 is the
// pause after the first failure) — for callers pacing their own loops.
func (p Policy) Pause(n int) time.Duration { return p.backoff(n, nil) }

// backoff returns the pause before retry number n (n = 1 is the pause
// after the first failure). rng may be nil for no jitter.
func (p Policy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.InitialBackoff
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	for i := 1; i < n; i++ {
		d = time.Duration(float64(d) * mult)
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if rng != nil && p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		// Uniform in [d*(1-j), d].
		d = d - time.Duration(rng.Float64()*j*float64(d))
	}
	return d
}

// ---------------------------------------------------------------------------
// Circuit breaker.

// BreakerConfig parameterizes the per-address circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open the circuit.
	// Values below 1 disable the breaker (always closed).
	Threshold int
	// Cooldown is how long an open circuit rejects calls before allowing
	// a half-open probe.
	Cooldown time.Duration
}

// DefaultBreakerConfig trips after a burst of failures and probes again
// two seconds later — long enough for stabilization to have purged a dead
// peer, short enough that a rebooted peer rejoins service quickly.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 5, Cooldown: 2 * time.Second}
}

// ErrOpen is returned when the breaker rejects a call without trying the
// network. Callers should treat it like a fast connection failure and
// fail over to another address.
var ErrOpen = errors.New("retry: circuit open")

type breakerPhase uint8

const (
	phaseClosed breakerPhase = iota
	phaseOpen
	phaseHalfOpen
)

type breakerState struct {
	phase    breakerPhase
	failures int
	openedAt time.Time
	probing  bool
}

// Breaker tracks consecutive failures per address and short-circuits
// calls to addresses that keep failing. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu     sync.Mutex
	states map[string]*breakerState
	opens  uint64
	closes uint64
	hook   func(addr string, opened bool)
}

// NewBreaker returns a breaker with cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, now: time.Now, states: make(map[string]*breakerState)}
}

// SetOnTransition installs a hook invoked after a circuit opens
// (opened=true) or closes again after having been open (opened=false) —
// the telemetry seam for breaker events. The hook runs outside the
// breaker's lock but must still be fast and must not block.
func (b *Breaker) SetOnTransition(fn func(addr string, opened bool)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.hook = fn
	b.mu.Unlock()
}

// Allow reports whether a call to addr may proceed. In the open phase it
// returns false until Cooldown has elapsed, then admits exactly one
// half-open probe; the probe's Success or Failure decides whether the
// circuit closes again or re-opens.
func (b *Breaker) Allow(addr string) bool {
	if b == nil || b.cfg.Threshold < 1 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.states[addr]
	if s == nil {
		return true
	}
	switch s.phase {
	case phaseClosed:
		return true
	case phaseOpen:
		if b.now().Sub(s.openedAt) < b.cfg.Cooldown {
			return false
		}
		s.phase = phaseHalfOpen
		s.probing = true
		return true
	default: // half-open
		if s.probing {
			return false // one probe at a time
		}
		s.probing = true
		return true
	}
}

// Success records a successful call to addr and closes its circuit.
func (b *Breaker) Success(addr string) {
	if b == nil || b.cfg.Threshold < 1 {
		return
	}
	b.mu.Lock()
	s := b.states[addr]
	closed := s != nil && s.phase != phaseClosed
	if closed {
		b.closes++
	}
	delete(b.states, addr)
	hook := b.hook
	b.mu.Unlock()
	if closed && hook != nil {
		hook(addr, false)
	}
}

// Failure records a failed call to addr; enough consecutive failures open
// the circuit, and a failed half-open probe re-opens it.
func (b *Breaker) Failure(addr string) {
	if b == nil || b.cfg.Threshold < 1 {
		return
	}
	b.mu.Lock()
	s := b.states[addr]
	if s == nil {
		s = &breakerState{}
		b.states[addr] = s
	}
	s.failures++
	s.probing = false
	opened := false
	if s.phase == phaseHalfOpen || s.failures >= b.cfg.Threshold {
		if s.phase != phaseOpen {
			b.opens++
			opened = true
		}
		s.phase = phaseOpen
		s.openedAt = b.now()
		s.failures = 0
	}
	hook := b.hook
	b.mu.Unlock()
	if opened && hook != nil {
		hook(addr, true)
	}
}

// Enabled reports whether the breaker can ever trip (a nil breaker or a
// zero threshold means failures are never accumulated).
func (b *Breaker) Enabled() bool { return b != nil && b.cfg.Threshold >= 1 }

// Open reports whether addr's circuit is currently open (rejecting).
func (b *Breaker) Open(addr string) bool {
	if b == nil || b.cfg.Threshold < 1 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.states[addr]
	return s != nil && s.phase == phaseOpen && b.now().Sub(s.openedAt) < b.cfg.Cooldown
}

// Opens returns how many times any circuit transitioned to open.
func (b *Breaker) Opens() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Closes returns how many times an open (or half-open) circuit closed
// again after a successful call.
func (b *Breaker) Closes() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closes
}

// Forget drops all state for addr (e.g. the peer left the ring).
func (b *Breaker) Forget(addr string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, addr)
}

// ---------------------------------------------------------------------------
// Retrier: policy + breaker + seeded jitter.

// Retrier executes operations under a Policy with an optional Breaker.
type Retrier struct {
	policy  Policy
	breaker *Breaker

	mu       sync.Mutex
	rng      *rand.Rand
	attempts uint64        // total retry attempts beyond the first try
	slept    time.Duration // total backoff pause scheduled
	onRetry  func(addr string, attempt int, pause time.Duration, err error)
}

// New builds a Retrier. breaker may be nil. seed fixes the jitter
// sequence; equal seeds give equal backoff schedules.
func New(policy Policy, breaker *Breaker, seed int64) *Retrier {
	return &Retrier{policy: policy, breaker: breaker, rng: rand.New(rand.NewSource(seed))}
}

// Breaker exposes the retrier's breaker (may be nil).
func (r *Retrier) Breaker() *Breaker { return r.breaker }

// Retries returns the total number of retry attempts performed (attempts
// beyond each operation's first try).
func (r *Retrier) Retries() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempts
}

// BackoffTotal returns the cumulative pause time scheduled between
// attempts (the wall-clock cost of the retry discipline).
func (r *Retrier) BackoffTotal() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.slept
}

// SetOnRetry installs a hook invoked each time Do schedules a retry:
// attempt is the failed attempt number (1-based), pause the backoff about
// to be slept, err the failure that caused it. The telemetry seam for
// retry events; must be fast and non-blocking.
func (r *Retrier) SetOnRetry(fn func(addr string, attempt int, pause time.Duration, err error)) {
	r.mu.Lock()
	r.onRetry = fn
	r.mu.Unlock()
}

func (r *Retrier) pause(n int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts++
	d := r.policy.backoff(n, r.rng)
	r.slept += d
	return d
}

// Classify tells Do how to treat op errors.
type Classify struct {
	// Retryable reports whether the error is worth retrying at the same
	// address. nil means every error retries.
	Retryable func(error) bool
	// BreakerFailure reports whether the error indicates the peer is
	// unreachable (counts toward opening its circuit). nil means every
	// error counts. Remote application-level errors should return false:
	// a peer that answered — even with a rejection — is alive.
	BreakerFailure func(error) bool
}

// Do runs op against addr until it succeeds, exhausts the policy, hits a
// non-retryable error, or done closes. The breaker is consulted before
// each attempt and updated after it: when the circuit for addr is open,
// Do fails fast with ErrOpen so the caller can fail over.
func (r *Retrier) Do(done <-chan struct{}, addr string, c Classify, op func() error) error {
	attempts := r.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var deadline time.Time
	if r.policy.Budget > 0 {
		deadline = time.Now().Add(r.policy.Budget)
	}
	var err error
	for n := 1; ; n++ {
		if r.breaker != nil && !r.breaker.Allow(addr) {
			if err != nil {
				return fmt.Errorf("%w (last error: %v)", ErrOpen, err)
			}
			return ErrOpen
		}
		err = op()
		if err == nil {
			if r.breaker != nil {
				r.breaker.Success(addr)
			}
			return nil
		}
		if r.breaker != nil {
			if c.BreakerFailure == nil || c.BreakerFailure(err) {
				r.breaker.Failure(addr)
			} else {
				// The peer responded (application-level error): it is
				// reachable, so reset its consecutive-failure count.
				r.breaker.Success(addr)
			}
		}
		if c.Retryable != nil && !c.Retryable(err) {
			return err
		}
		if n >= attempts {
			return err
		}
		pause := r.pause(n)
		if !deadline.IsZero() && time.Now().Add(pause).After(deadline) {
			return err
		}
		r.mu.Lock()
		hook := r.onRetry
		r.mu.Unlock()
		if hook != nil {
			hook(addr, n, pause, err)
		}
		select {
		case <-done:
			return err
		case <-time.After(pause):
		}
	}
}
