package churn

import (
	"testing"
	"time"

	"dco/internal/sim"
)

type fakePeer struct {
	departed bool
	graceful bool
	departAt time.Duration
	k        *sim.Kernel
}

func (f *fakePeer) Depart(graceful bool) {
	f.departed = true
	f.graceful = graceful
	f.departAt = f.k.Now()
}

func TestSeedSchedulesDepartures(t *testing.T) {
	k := sim.NewKernel(3)
	d := NewDriver(k, Config{MeanLife: 10 * time.Second, GracefulFrac: 0.5}, nil)
	peers := make([]Peer, 50)
	fakes := make([]*fakePeer, 50)
	for i := range peers {
		fakes[i] = &fakePeer{k: k}
		peers[i] = fakes[i]
	}
	d.Seed(peers)
	k.SetHorizon(10 * time.Minute)
	k.Run()
	departed := 0
	for _, f := range fakes {
		if f.departed {
			departed++
		}
	}
	if departed != 50 {
		t.Fatalf("departed %d of 50", departed)
	}
	dep, arr := d.Stats()
	if dep != 50 || arr != 0 {
		t.Fatalf("stats = %d/%d", dep, arr)
	}
}

func TestGracefulFraction(t *testing.T) {
	k := sim.NewKernel(5)
	d := NewDriver(k, Config{MeanLife: time.Second, GracefulFrac: 0.5}, nil)
	n := 400
	fakes := make([]*fakePeer, n)
	for i := range fakes {
		fakes[i] = &fakePeer{k: k}
		d.Track(fakes[i])
	}
	k.SetHorizon(time.Minute)
	k.Run()
	graceful := 0
	for _, f := range fakes {
		if f.graceful {
			graceful++
		}
	}
	frac := float64(graceful) / float64(n)
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("graceful fraction %.2f far from 0.5", frac)
	}
}

func TestArrivalsKeepPopulationStable(t *testing.T) {
	k := sim.NewKernel(7)
	alive := 100
	var d *Driver
	spawn := func() Peer {
		alive++
		return &spawnedPeer{onDepart: func() { alive-- }}
	}
	d = NewDriver(k, Config{
		MeanLife:     30 * time.Second,
		MeanJoin:     30 * time.Second / 100, // stationary balance
		GracefulFrac: 1,
	}, spawn)
	for i := 0; i < 100; i++ {
		d.Track(&spawnedPeer{onDepart: func() { alive-- }})
	}
	d.StartArrivals()
	k.SetHorizon(5 * time.Minute)
	k.Run()
	if alive < 50 || alive > 200 {
		t.Fatalf("population drifted to %d (started at 100)", alive)
	}
	dep, arr := d.Stats()
	if dep == 0 || arr == 0 {
		t.Fatalf("no churn happened: dep=%d arr=%d", dep, arr)
	}
	// Rates should be within 2x of each other over 5 minutes.
	ratio := float64(arr) / float64(dep)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("arrival/departure ratio %.2f not stationary", ratio)
	}
}

type spawnedPeer struct{ onDepart func() }

func (s *spawnedPeer) Depart(bool) { s.onDepart() }

func TestStopHaltsChurn(t *testing.T) {
	k := sim.NewKernel(9)
	spawned := 0
	d := NewDriver(k, Config{MeanLife: time.Second, MeanJoin: 100 * time.Millisecond}, func() Peer {
		spawned++
		return &spawnedPeer{onDepart: func() {}}
	})
	d.StartArrivals()
	k.At(2*time.Second, d.Stop)
	k.SetHorizon(time.Minute)
	k.Run()
	if spawned == 0 {
		t.Fatal("nothing spawned before Stop")
	}
	// All spawns happened before (roughly) the stop point.
	if k.Now() > time.Minute {
		t.Fatal("horizon overrun")
	}
	depBefore, arrBefore := d.Stats()
	k.SetHorizon(2 * time.Minute)
	k.Run()
	dep, arr := d.Stats()
	if dep != depBefore || arr != arrBefore {
		t.Fatal("churn continued after Stop")
	}
}

func TestStopWindowConfig(t *testing.T) {
	k := sim.NewKernel(11)
	d := NewDriver(k, Config{MeanLife: time.Second, MeanJoin: 200 * time.Millisecond, Stop: 3 * time.Second}, func() Peer {
		return &spawnedPeer{onDepart: func() {}}
	})
	d.StartArrivals()
	k.SetHorizon(time.Minute)
	k.Run()
	_, arr := d.Stats()
	if arr == 0 {
		t.Fatal("no arrivals before the stop window")
	}
	// Generously: nothing should arrive long after Stop. The exact count
	// depends on exponential draws; assert via time instead.
	if k.Now() < 3*time.Second {
		t.Fatal("simulation ended before the churn window")
	}
}

func TestBadGracefulFracPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GracefulFrac > 1 must panic")
		}
	}()
	NewDriver(sim.NewKernel(1), Config{MeanLife: time.Second, GracefulFrac: 2}, nil)
}
