// Package churn drives node arrivals and departures with the model of the
// paper's §IV-D: node life spans drawn from an exponential distribution
// (mean 60–120 s) and join intervals from the same distribution, so the
// network scale stays roughly stationary while membership turns over.
package churn

import (
	"time"

	"dco/internal/sim"
)

// Peer is whatever the overlay under test uses to represent a member that
// churn can remove.
type Peer interface {
	// Depart removes the peer. graceful=true is an announced leave;
	// graceful=false is an abrupt failure detected only by timeouts.
	Depart(graceful bool)
}

// Config parameterizes the churn process.
type Config struct {
	MeanLife     time.Duration // exponential mean session length
	MeanJoin     time.Duration // exponential mean inter-arrival gap
	GracefulFrac float64       // fraction of departures that are graceful (rest fail abruptly)
	Start        time.Duration // churn begins at this virtual time
	Stop         time.Duration // no new churn events after this time (0 = forever)
}

// Driver schedules departures for existing peers and arrivals of new ones.
type Driver struct {
	K     *sim.Kernel
	Cfg   Config
	Spawn func() Peer // creates and joins a fresh peer; nil return = skip

	departures uint64
	arrivals   uint64
	stopped    bool
}

// NewDriver returns a driver; call Seed for the initial population and
// StartArrivals to begin the arrival process.
func NewDriver(k *sim.Kernel, cfg Config, spawn func() Peer) *Driver {
	if cfg.GracefulFrac < 0 || cfg.GracefulFrac > 1 {
		panic("churn: GracefulFrac outside [0,1]")
	}
	return &Driver{K: k, Cfg: cfg, Spawn: spawn}
}

// Seed assigns an exponential residual lifetime to each existing peer. The
// memorylessness of the exponential makes residual and full lifetimes
// identically distributed, so this matches the paper's stationary regime.
func (d *Driver) Seed(peers []Peer) {
	for _, p := range peers {
		d.scheduleDeparture(p)
	}
}

// Track schedules a departure for one peer joined outside the driver.
func (d *Driver) Track(p Peer) { d.scheduleDeparture(p) }

func (d *Driver) scheduleDeparture(p Peer) {
	life := d.K.Exponential(d.Cfg.MeanLife)
	at := d.K.Now() + life
	if at < d.Cfg.Start {
		at = d.Cfg.Start + d.K.Exponential(d.Cfg.MeanLife)
	}
	d.K.At(at, func() {
		if d.stopped || (d.Cfg.Stop > 0 && d.K.Now() > d.Cfg.Stop) {
			return
		}
		graceful := d.K.Rand().Float64() < d.Cfg.GracefulFrac
		d.departures++
		p.Depart(graceful)
	})
}

// StartArrivals begins the exponential arrival process at Cfg.Start.
func (d *Driver) StartArrivals() {
	if d.Spawn == nil {
		return
	}
	var arrive func()
	arrive = func() {
		if d.stopped || (d.Cfg.Stop > 0 && d.K.Now() > d.Cfg.Stop) {
			return
		}
		if p := d.Spawn(); p != nil {
			d.arrivals++
			d.scheduleDeparture(p)
		}
		d.K.After(d.K.Exponential(d.Cfg.MeanJoin), arrive)
	}
	d.K.At(d.Cfg.Start+d.K.Exponential(d.Cfg.MeanJoin), arrive)
}

// Stop halts all future churn events.
func (d *Driver) Stop() { d.stopped = true }

// Stats reports how many departures and arrivals the driver has executed.
func (d *Driver) Stats() (departures, arrivals uint64) { return d.departures, d.arrivals }
