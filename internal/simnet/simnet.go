// Package simnet models the network underneath the simulated overlays.
//
// It is the stand-in for the P2PSim substrate used in the paper's
// evaluation. Two properties of that substrate drive every result in the
// paper and are reproduced faithfully here:
//
//   - Control messages (buffer maps, lookups, requests, index inserts) cost
//     one "extra overhead" unit per forwarding operation and are delivered
//     after a per-link propagation latency.
//
//   - Chunk transfers are serialized by per-node upload and download
//     bandwidth: a 300 kbit chunk over a 600 kbps link occupies the link for
//     0.5 s, and an overloaded node queues chunks until it has bandwidth
//     (paper §IV).
package simnet

import (
	"fmt"
	"time"

	"dco/internal/sim"
)

// NodeID identifies a simulated host. IDs are dense small integers assigned
// by the Network.
type NodeID int

// Invalid is the zero-value NodeID and never names a real node.
const Invalid NodeID = -1

// Message is a unit of communication between two simulated hosts.
type Message struct {
	From, To NodeID
	Kind     string // protocol-defined tag
	Payload  any
	Bits     int64 // payload size; only data messages set this
	Data     bool  // true for chunk payloads (bandwidth-bound, not overhead)
	SentAt   time.Duration
}

// Handler receives messages addressed to a node.
type Handler interface {
	HandleMessage(m *Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(m *Message)

// HandleMessage calls f(m).
func (f HandlerFunc) HandleMessage(m *Message) { f(m) }

// Config sets the physical parameters of the simulated network.
type Config struct {
	// BaseLatency is the one-way propagation delay floor between any two
	// hosts. The paper assumes "typical delay in today's broadband Internet
	// connection is below 0.1s"; the default spreads links over
	// [BaseLatency, BaseLatency+LatencySpread].
	BaseLatency   time.Duration
	LatencySpread time.Duration

	// Zones, when > 1, places hosts round-robin into geographic zones and
	// adds InterZone to links that cross a zone boundary (a transit-stub
	// style topology). Zero keeps the flat single-zone model.
	Zones     int
	InterZone time.Duration
}

// DefaultConfig matches the paper's assumptions: per-hop delays below 0.1 s.
func DefaultConfig() Config {
	return Config{BaseLatency: 30 * time.Millisecond, LatencySpread: 60 * time.Millisecond}
}

// WideAreaConfig models a multi-region deployment: four zones with an
// extra 80 ms across zone boundaries.
func WideAreaConfig() Config {
	return Config{
		BaseLatency:   10 * time.Millisecond,
		LatencySpread: 30 * time.Millisecond,
		Zones:         4,
		InterZone:     80 * time.Millisecond,
	}
}

type node struct {
	id       NodeID
	handler  Handler
	upBps    int64 // upload capacity, bits/s
	downBps  int64
	upFree   time.Duration // virtual time the uplink drains
	downFree time.Duration
	alive    bool
}

// Network connects simulated hosts through the kernel.
type Network struct {
	K   *sim.Kernel
	cfg Config

	nodes []*node

	// Overhead accounting (paper metric 3): one unit per control-message
	// forwarding operation. Data (chunk) messages are excluded, as are
	// tree-push transfers, matching the paper's definition.
	overhead       uint64
	overheadByKind map[string]uint64
	overheadSeries map[int64]uint64 // virtual second -> units

	// Data accounting for diagnostics.
	dataMsgs uint64
	dataBits int64

	dropDead uint64 // messages dropped because destination was dead
}

// New creates an empty network on top of kernel k.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.BaseLatency <= 0 {
		cfg = DefaultConfig()
	}
	return &Network{
		K:              k,
		cfg:            cfg,
		overheadByKind: make(map[string]uint64),
		overheadSeries: make(map[int64]uint64),
	}
}

// AddNode registers a host with the given bandwidth capacities (bits/s) and
// returns its ID. The node starts alive with a nil handler; call SetHandler
// before any traffic can be delivered to it.
func (n *Network) AddNode(upBps, downBps int64) NodeID {
	if upBps <= 0 || downBps <= 0 {
		panic(fmt.Sprintf("simnet: non-positive bandwidth %d/%d", upBps, downBps))
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &node{id: id, upBps: upBps, downBps: downBps, alive: true})
	return id
}

// SetHandler installs the message handler for id.
func (n *Network) SetHandler(id NodeID, h Handler) { n.nodes[id].handler = h }

// Alive reports whether id is up.
func (n *Network) Alive(id NodeID) bool {
	return int(id) >= 0 && int(id) < len(n.nodes) && n.nodes[id].alive
}

// Kill marks a node as failed. In-flight messages to it are dropped on
// arrival; it sends and receives nothing afterwards.
func (n *Network) Kill(id NodeID) { n.nodes[id].alive = false }

// Revive brings a previously killed node back (a rejoining peer reuses its
// slot in some churn scenarios). Its bandwidth queues are reset.
func (n *Network) Revive(id NodeID) {
	nd := n.nodes[id]
	nd.alive = true
	nd.upFree, nd.downFree = 0, 0
}

// NumNodes returns how many node slots exist (alive or dead).
func (n *Network) NumNodes() int { return len(n.nodes) }

// Zone returns the zone a host lives in (0 when zoning is off).
func (n *Network) Zone(id NodeID) int {
	if n.cfg.Zones <= 1 {
		return 0
	}
	return int(id) % n.cfg.Zones
}

// latency returns the one-way delay for a link. It is a deterministic
// function of the endpoint pair so repeated messages see a stable RTT.
func (n *Network) latency(a, b NodeID) time.Duration {
	var zonePenalty time.Duration
	if n.cfg.Zones > 1 && n.Zone(a) != n.Zone(b) {
		zonePenalty = n.cfg.InterZone
	}
	if n.cfg.LatencySpread <= 0 {
		return n.cfg.BaseLatency + zonePenalty
	}
	x, y := int64(a), int64(b)
	if x > y {
		x, y = y, x
	}
	// Cheap deterministic pair hash (SplitMix64 finalizer over the pair).
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xBF58476D1CE4E5B9
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return n.cfg.BaseLatency + zonePenalty + time.Duration(h%uint64(n.cfg.LatencySpread))
}

// Send delivers a control message from src to dst after the link latency.
// It accounts one unit of extra overhead (one forwarding operation). The
// send is silently dropped if either endpoint is dead; protocols detect
// failures with their own timeouts, as real ones do.
func (n *Network) Send(src, dst NodeID, kind string, payload any) {
	n.send(src, dst, kind, payload, 0, false)
}

// TrySend is Send over a connection-oriented link: if the destination is
// dead the sender finds out (a TCP connect to a crashed host fails) and no
// delivery happens. The attempt still costs one overhead unit — the probe
// traffic is real. Returns whether the destination was alive.
func (n *Network) TrySend(src, dst NodeID, kind string, payload any) bool {
	if !n.Alive(dst) {
		if n.Alive(src) {
			n.overhead++
			n.overheadByKind[kind]++
			n.overheadSeries[int64(n.K.Now()/time.Second)]++
		}
		return false
	}
	n.send(src, dst, kind, payload, 0, false)
	return true
}

// SendData delivers a data (chunk) message. Delivery time is the link
// latency plus the transmission time implied by the smaller of the sender's
// upload and receiver's download capacity; both endpoints' links are
// occupied for the transmission. Data messages do not count as overhead.
func (n *Network) SendData(src, dst NodeID, kind string, payload any, bits int64) {
	n.send(src, dst, kind, payload, bits, true)
}

func (n *Network) send(src, dst NodeID, kind string, payload any, bits int64, data bool) {
	if int(src) < 0 || int(src) >= len(n.nodes) || int(dst) < 0 || int(dst) >= len(n.nodes) {
		panic(fmt.Sprintf("simnet: send %s between unknown nodes %d -> %d", kind, src, dst))
	}
	s, d := n.nodes[src], n.nodes[dst]
	if !s.alive {
		return
	}
	now := n.K.Now()
	arrive := now + n.latency(src, dst)

	if data {
		n.dataMsgs++
		n.dataBits += bits
		// Store-and-forward per link: the transfer occupies the sender's
		// uplink for bits/upBps, then the receiver's downlink for
		// bits/downBps, each serialized behind that link's queue. An
		// overloaded node thus queues chunks until it has bandwidth (§IV).
		sStart := now
		if s.upFree > sStart {
			sStart = s.upFree
		}
		upTx := time.Duration(float64(bits) / float64(s.upBps) * float64(time.Second))
		s.upFree = sStart + upTx
		rStart := s.upFree
		if d.downFree > rStart {
			rStart = d.downFree
		}
		downTx := time.Duration(float64(bits) / float64(d.downBps) * float64(time.Second))
		d.downFree = rStart + downTx
		arrive = d.downFree + n.latency(src, dst)
	} else {
		n.overhead++
		n.overheadByKind[kind]++
		n.overheadSeries[int64(now/time.Second)]++
	}

	m := &Message{From: src, To: dst, Kind: kind, Payload: payload, Bits: bits, Data: data, SentAt: now}
	n.K.At(arrive, func() {
		dd := n.nodes[dst]
		if !dd.alive || dd.handler == nil {
			n.dropDead++
			return
		}
		dd.handler.HandleMessage(m)
	})
}

// Overhead returns the total extra-overhead units accrued so far.
func (n *Network) Overhead() uint64 { return n.overhead }

// OverheadByKind returns a copy of the per-kind overhead breakdown.
func (n *Network) OverheadByKind() map[string]uint64 {
	out := make(map[string]uint64, len(n.overheadByKind))
	for k, v := range n.overheadByKind {
		out[k] = v
	}
	return out
}

// OverheadAtSecond returns overhead units accrued during virtual second s.
func (n *Network) OverheadAtSecond(s int64) uint64 { return n.overheadSeries[s] }

// DataStats returns the number of data messages and total data bits sent.
func (n *Network) DataStats() (msgs uint64, bits int64) { return n.dataMsgs, n.dataBits }

// DroppedDead returns how many messages were dropped at dead destinations.
func (n *Network) DroppedDead() uint64 { return n.dropDead }

// UploadBusyUntil exposes the sender-side queue horizon for id; the DCO
// coordinator uses it as the ground truth for "available bandwidth" when a
// node reports its state.
func (n *Network) UploadBusyUntil(id NodeID) time.Duration { return n.nodes[id].upFree }
