package simnet

import (
	"testing"
	"time"

	"dco/internal/sim"
)

func newNet(t *testing.T) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, New(k, Config{BaseLatency: 50 * time.Millisecond, LatencySpread: 0})
}

type capture struct {
	got []*Message
	at  []time.Duration
	k   *sim.Kernel
}

func (c *capture) HandleMessage(m *Message) {
	c.got = append(c.got, m)
	c.at = append(c.at, c.k.Now())
}

func TestControlMessageDelivery(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(1e6, 1e6)
	b := n.AddNode(1e6, 1e6)
	c := &capture{k: k}
	n.SetHandler(b, c)
	n.Send(a, b, "ping", 42)
	k.Run()
	if len(c.got) != 1 || c.got[0].Payload.(int) != 42 {
		t.Fatalf("message not delivered: %v", c.got)
	}
	if c.at[0] != 50*time.Millisecond {
		t.Fatalf("arrival at %v, want base latency 50ms", c.at[0])
	}
	if n.Overhead() != 1 {
		t.Fatalf("overhead = %d, want 1", n.Overhead())
	}
}

func TestDataTransferTiming(t *testing.T) {
	k, n := newNet(t)
	// Sender uplink 4 Mbps, receiver downlink 600 kbps: a 300 kbit chunk
	// spends 0.075 s on the uplink, then 0.5 s on the downlink.
	a := n.AddNode(4_000_000, 4_000_000)
	b := n.AddNode(600_000, 600_000)
	c := &capture{k: k}
	n.SetHandler(b, c)
	n.SendData(a, b, "chunk", nil, 300_000)
	k.Run()
	want := 75*time.Millisecond + 500*time.Millisecond + 50*time.Millisecond
	if len(c.at) != 1 || c.at[0] != want {
		t.Fatalf("data arrival %v, want %v", c.at, want)
	}
	if n.Overhead() != 0 {
		t.Fatal("data transfers must not count as overhead")
	}
}

func TestUplinkSerialization(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(600_000, 600_000) // 0.5 s per 300 kbit chunk
	b := n.AddNode(10_000_000, 10_000_000)
	c1 := &capture{k: k}
	n.SetHandler(b, c1)
	n.SendData(a, b, "chunk", 1, 300_000)
	n.SendData(a, b, "chunk", 2, 300_000)
	k.Run()
	if len(c1.at) != 2 {
		t.Fatalf("deliveries: %d", len(c1.at))
	}
	// Second transfer waits for the first to clear the uplink.
	gap := c1.at[1] - c1.at[0]
	if gap < 450*time.Millisecond {
		t.Fatalf("transfers not serialized on the uplink: gap %v", gap)
	}
	if until := n.UploadBusyUntil(a); until < time.Second {
		t.Fatalf("uplink horizon %v, want >= 1s for two chunks", until)
	}
}

func TestDownlinkSerialization(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(10_000_000, 10_000_000)
	b := n.AddNode(10_000_000, 10_000_000)
	dst := n.AddNode(10_000_000, 600_000)
	c := &capture{k: k}
	n.SetHandler(dst, c)
	n.SendData(a, dst, "chunk", 1, 300_000)
	n.SendData(b, dst, "chunk", 2, 300_000)
	k.Run()
	gap := c.at[1] - c.at[0]
	if gap < 450*time.Millisecond {
		t.Fatalf("transfers not serialized on the downlink: gap %v", gap)
	}
}

func TestDeadNodeDropsTraffic(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(1e6, 1e6)
	b := n.AddNode(1e6, 1e6)
	c := &capture{k: k}
	n.SetHandler(b, c)
	n.Kill(b)
	n.Send(a, b, "ping", nil)
	k.Run()
	if len(c.got) != 0 {
		t.Fatal("dead node received a message")
	}
	if n.DroppedDead() != 1 {
		t.Fatalf("dropped = %d, want 1", n.DroppedDead())
	}
	// Dead sender transmits nothing.
	n.Kill(a)
	n.Send(a, b, "ping", nil)
	k.Run()
	if n.Overhead() != 1 { // only the first send counted
		t.Fatalf("overhead = %d, want 1", n.Overhead())
	}
}

func TestRevive(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(1e6, 1e6)
	b := n.AddNode(1e6, 1e6)
	c := &capture{k: k}
	n.SetHandler(b, c)
	n.Kill(b)
	n.Revive(b)
	n.Send(a, b, "ping", nil)
	k.Run()
	if len(c.got) != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestLatencyDeterministicPerPair(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{BaseLatency: 30 * time.Millisecond, LatencySpread: 60 * time.Millisecond})
	a := n.AddNode(1e6, 1e6)
	b := n.AddNode(1e6, 1e6)
	c := &capture{k: k}
	n.SetHandler(b, c)
	n.Send(a, b, "x", nil)
	n.Send(a, b, "x", nil)
	k.Run()
	if c.at[1]-c.at[0] != 0 {
		t.Fatalf("same-pair latency varies: %v vs %v", c.at[0], c.at[1])
	}
	if c.at[0] < 30*time.Millisecond || c.at[0] >= 90*time.Millisecond {
		t.Fatalf("latency %v outside configured band", c.at[0])
	}
}

func TestOverheadAccounting(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(1e6, 1e6)
	b := n.AddNode(1e6, 1e6)
	n.SetHandler(b, &capture{k: k})
	n.Send(a, b, "lookup", nil)
	n.Send(a, b, "lookup", nil)
	n.Send(a, b, "insert", nil)
	n.SendData(a, b, "chunk", nil, 1000)
	k.Run()
	if n.Overhead() != 3 {
		t.Fatalf("overhead = %d, want 3", n.Overhead())
	}
	by := n.OverheadByKind()
	if by["lookup"] != 2 || by["insert"] != 1 {
		t.Fatalf("per-kind overhead wrong: %v", by)
	}
	if n.OverheadAtSecond(0) != 3 {
		t.Fatalf("second-0 overhead = %d", n.OverheadAtSecond(0))
	}
	msgs, bits := n.DataStats()
	if msgs != 1 || bits != 1000 {
		t.Fatalf("data stats %d/%d", msgs, bits)
	}
}

func TestBadBandwidthPanics(t *testing.T) {
	_, n := newNet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth must panic")
		}
	}()
	n.AddNode(0, 1)
}

func TestZonedLatency(t *testing.T) {
	k := sim.NewKernel(1)
	n := New(k, Config{BaseLatency: 10 * time.Millisecond, LatencySpread: 0, Zones: 2, InterZone: 80 * time.Millisecond})
	a := n.AddNode(1e6, 1e6)  // zone 0
	b := n.AddNode(1e6, 1e6)  // zone 1
	c0 := n.AddNode(1e6, 1e6) // zone 0
	if n.Zone(a) != 0 || n.Zone(b) != 1 || n.Zone(c0) != 0 {
		t.Fatalf("zone assignment wrong: %d %d %d", n.Zone(a), n.Zone(b), n.Zone(c0))
	}
	cb := &capture{k: k}
	n.SetHandler(b, cb)
	cc := &capture{k: k}
	n.SetHandler(c0, cc)
	n.Send(a, b, "x", nil)  // cross-zone
	n.Send(a, c0, "x", nil) // intra-zone
	k.Run()
	if cb.at[0] != 90*time.Millisecond {
		t.Fatalf("cross-zone latency %v, want 90ms", cb.at[0])
	}
	if cc.at[0] != 10*time.Millisecond {
		t.Fatalf("intra-zone latency %v, want 10ms", cc.at[0])
	}
}

func TestTrySend(t *testing.T) {
	k, n := newNet(t)
	a := n.AddNode(1e6, 1e6)
	b := n.AddNode(1e6, 1e6)
	c := &capture{k: k}
	n.SetHandler(b, c)
	if !n.TrySend(a, b, "x", nil) {
		t.Fatal("send to live node reported failure")
	}
	k.Run() // deliver before the kill below
	if len(c.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(c.got))
	}
	n.Kill(b)
	if n.TrySend(a, b, "x", nil) {
		t.Fatal("send to dead node reported success")
	}
	// Both attempts cost overhead (the probe is real traffic).
	if n.Overhead() != 2 {
		t.Fatalf("overhead = %d, want 2", n.Overhead())
	}
	// A dead sender pays nothing and sends nothing.
	n.Kill(a)
	if n.TrySend(a, b, "x", nil) || n.Overhead() != 2 {
		t.Fatal("dead sender accounting wrong")
	}
}
