package core

import (
	"testing"
	"time"

	"dco/internal/sim"
)

func TestPlaybackQoS(t *testing.T) {
	cfg := smallConfig()
	cfg.Stream.Count = 30
	cfg.Playback.Enabled = true
	cfg.Playback.StartupChunks = 3
	k := sim.NewKernel(71)
	s := NewSystem(k, cfg, 48)
	// Run past full delivery: the playhead consumes chunks at stream rate
	// and trails the last delivery by a few periods.
	s.DisableCompletionStop()
	s.Run(150 * time.Second)

	q := s.QoS()
	if q.Viewers != 47 {
		t.Fatalf("viewers = %d", q.Viewers)
	}
	if q.Playing != 47 {
		t.Fatalf("only %d viewers ever started playing", q.Playing)
	}
	if q.MeanStartup <= 0 || q.MeanStartup > 60*time.Second {
		t.Fatalf("mean startup delay %v implausible", q.MeanStartup)
	}
	if q.MeanContinuity < 0.5 || q.MeanContinuity > 1 {
		t.Fatalf("mean continuity %f implausible", q.MeanContinuity)
	}
	// Every viewer's playhead should have consumed the full stream.
	for _, p := range s.Peers() {
		if p.ID() == s.Server().ID() {
			continue
		}
		played, _ := p.PlaybackStats()
		if played != cfg.Stream.Count {
			t.Fatalf("viewer %d played %d of %d chunks", p.ID(), played, cfg.Stream.Count)
		}
	}
}

func TestPlaybackStartupDelayBeforeStart(t *testing.T) {
	cfg := smallConfig()
	cfg.Playback.Enabled = true
	k := sim.NewKernel(73)
	s := NewSystem(k, cfg, 16)
	// Before running, nobody has started.
	for _, p := range s.Peers() {
		if _, ok := p.StartupDelay(); ok {
			t.Fatal("playback started before the simulation ran")
		}
		if p.ContinuityIndex() != 1 {
			t.Fatal("continuity before playback should be 1")
		}
	}
	s.Run(200 * time.Second)
}

func TestPlaybackDisabledCostsNothing(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel(79)
	s := NewSystem(k, cfg, 16)
	s.Run(200 * time.Second)
	q := s.QoS()
	if q.Playing != 0 || q.TotalStalls != 0 {
		t.Fatalf("disabled playback produced stats: %+v", q)
	}
}

func TestPlaybackStallsUnderScarcity(t *testing.T) {
	// Starve the swarm: a tiny upload-constrained population watching a
	// fast stream must stall at least occasionally. (The server alone can
	// serve ~2 viewers at full rate; we give it 6.)
	cfg := smallConfig()
	cfg.Stream.Count = 40
	cfg.Playback.Enabled = true
	cfg.Playback.StartupChunks = 1
	cfg.PeerUpBps = 150_000 // quarter of the stream rate
	cfg.ServerUpBps = 600_000
	k := sim.NewKernel(83)
	s := NewSystem(k, cfg, 7)
	s.Run(120 * time.Second)
	q := s.QoS()
	if q.TotalStalls == 0 {
		t.Fatal("an under-provisioned swarm should stall")
	}
	if q.MeanContinuity >= 1 {
		t.Fatalf("continuity should dip below 1, got %f", q.MeanContinuity)
	}
}
