package core

import (
	"fmt"
	"sort"
	"time"

	"dco/internal/chord"
	"dco/internal/metrics"
	"dco/internal/sim"
	"dco/internal/simnet"
	"dco/internal/stable"
	"dco/internal/trace"
)

// System wires a DCO deployment onto the simulator: one streaming server,
// n-1 viewers, the Chord ring, and the metric collectors.
type System struct {
	K          *sim.Kernel
	Net        *simnet.Network
	Cfg        Config
	Log        *metrics.DeliveryLog
	Classifier stable.Classifier

	server     *Peer
	peers      map[simnet.NodeID]*Peer
	alivePeers int
	rr         int
	nameSeq    int

	droppedRoutes uint64
	received      int64
	target        int64 // K.Stop() once this many first-receipts happen (0 = run to horizon)

	Counters Counters

	// Trace, when set (before or after NewSystem), receives structured
	// protocol events: fetch.done, fetch.timeout, provider.fail,
	// peer.join, peer.depart, coord.promote, lookup.queued.
	Trace *trace.Recorder
}

// Counters aggregates protocol-event tallies across all peers; tests and
// diagnostics read them to see where fetch latency is spent.
type Counters struct {
	Lookups        uint64 // lookups issued by clients
	LookupTimeouts uint64
	BusyNacks      uint64 // provider admission-control rejections
	MissingNacks   uint64 // provider did not have the chunk
	FetchTimeouts  uint64
	PendingQueued  uint64 // lookups parked in a coordinator pending queue
	Assignments    uint64 // provider handouts
	LeaseExpiries  uint64 // assignment slots reclaimed by lease timeout
	FetchLatency   time.Duration
	FetchCount     uint64 // completed first-receipt fetches
}

// NewSystem builds a static DCO network of n nodes (the server plus n-1
// viewers) at virtual time zero. In the default all-DHT mode (the paper's
// §IV comparability setting) every node is a ring member; with
// Cfg.Hierarchy.Enabled only the server and the configured number of
// initial coordinators form the ring and everyone else attaches as a
// lower-tier client.
func NewSystem(k *sim.Kernel, cfg Config, n int) *System {
	if n < 2 {
		panic("core: need at least a server and one viewer")
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 4 * n
		if cfg.MaxHops < 256 {
			cfg.MaxHops = 256
		}
	}
	netCfg := cfg.Net
	if netCfg.BaseLatency <= 0 {
		netCfg = simnet.DefaultConfig()
	}
	s := &System{
		K:          k,
		Net:        simnet.New(k, netCfg),
		Cfg:        cfg,
		Classifier: stable.NewClassifier(cfg.Hierarchy.LongevityThreshold),
		peers:      make(map[simnet.NodeID]*Peer, n),
	}

	// Create hosts. Node 0 is the server.
	all := make([]*Peer, 0, n)
	for i := 0; i < n; i++ {
		up, down := cfg.drawPeerBandwidth(k.Rand().Float64())
		if i == 0 {
			up, down = cfg.ServerUpBps, cfg.ServerDownBps
		}
		id := s.Net.AddNode(up, down)
		p := newPeer(s, id, s.freshChordID(), up, down)
		p.alive = true
		s.Net.SetHandler(id, p)
		s.peers[id] = p
		all = append(all, p)
	}
	s.server = all[0]
	s.server.isSource = true
	s.alivePeers = n

	// Decide ring membership.
	ringMembers := all
	if cfg.Hierarchy.Enabled {
		nc := cfg.Hierarchy.InitialCoordinators
		if nc < 1 {
			nc = 1
		}
		if nc > n-1 {
			nc = n - 1
		}
		ringMembers = all[:nc+1] // server + nc coordinators
	}
	entries := make([]entry, len(ringMembers))
	for i, p := range ringMembers {
		entries[i] = p.entry()
	}
	states := chord.BuildRing(entries, cfg.Neighbors)
	for _, p := range ringMembers {
		p.cs = states[p.id]
		p.inDHT = true
		p.joined = true
	}
	// Attach lower-tier clients round-robin (static build skips the
	// bootstrap handshake; dynamic joins via SpawnPeer exercise it).
	if cfg.Hierarchy.Enabled {
		for i, p := range all[len(ringMembers):] {
			c := ringMembers[1+i%(len(ringMembers)-1)] // skip the server for client load
			p.coordinator = c.id
			p.joined = true
			c.clients[p.id] = true
		}
	}

	// Metrics.
	s.Log = metrics.NewDeliveryLog(cfg.Stream.Count, s.server.id)
	for _, p := range all[1:] {
		s.Log.NodeJoined(p.id, 0)
	}
	s.target = int64(n-1) * cfg.Stream.Count

	// Chunk production schedule.
	for seq := int64(0); seq < cfg.Stream.Count; seq++ {
		seq := seq
		k.At(cfg.Stream.GenerationTime(seq), func() { s.server.generate(seq) })
	}

	for _, p := range all {
		s.startTickers(p)
	}
	return s
}

// freshChordID derives a collision-free ring ID from a process-unique name.
func (s *System) freshChordID() chord.ID {
	for {
		id := chord.HashString(fmt.Sprintf("dco-node-%d", s.nameSeq))
		s.nameSeq++
		collision := false
		for _, p := range s.peers {
			if p.cs != nil && p.cs.Self.ID == id {
				collision = true
				break
			}
		}
		if !collision {
			return id
		}
	}
}

func (s *System) startTickers(p *Peer) {
	cfg := &s.Cfg
	add := func(t *sim.Ticker) { p.tickers = append(p.tickers, t) }
	if !p.isSource {
		add(s.K.Every(s.K.Uniform(0, cfg.TickPeriod), cfg.TickPeriod, p.tick))
		if cfg.Playback.Enabled {
			add(s.K.Every(s.K.Uniform(0, cfg.Stream.Period), cfg.Stream.Period, p.playbackTick))
		}
	}
	if cfg.Maintenance {
		add(s.K.Every(s.K.Uniform(0, cfg.StabilizeEvery), cfg.StabilizeEvery, p.stabilizeTick))
		if cfg.UseFingers {
			add(s.K.Every(s.K.Uniform(0, cfg.FixFingersOp), cfg.FixFingersOp, p.fixFingersTick))
		}
		if cfg.RepublishEvery > 0 {
			// The source republishes too: it is the only holder of a
			// brand-new chunk, and if its insert dies with a failing
			// coordinator nobody else can ever restore that index entry.
			add(s.K.Every(s.K.Uniform(0, cfg.RepublishEvery), cfg.RepublishEvery, p.republishTick))
		}
	}
	if cfg.Hierarchy.Enabled {
		add(s.K.Every(s.K.Uniform(0, time.Second), time.Second, p.loadTick))
		if !p.isSource {
			add(s.K.Every(s.K.Uniform(0, cfg.Hierarchy.EvalEvery), cfg.Hierarchy.EvalEvery, p.longevityTick))
		}
	}
}

// SpawnPeer adds a brand-new viewer at the current virtual time. It
// bootstraps through the server (§III-B1b): all-DHT deployments join the
// ring, hierarchical ones attach to an assigned coordinator. The returned
// peer satisfies churn.Peer.
func (s *System) SpawnPeer() *Peer {
	up, down := s.Cfg.drawPeerBandwidth(s.K.Rand().Float64())
	id := s.Net.AddNode(up, down)
	p := newPeer(s, id, s.freshChordID(), up, down)
	p.alive = true
	p.joinAt = s.K.Now()
	p.wantDHT = !s.Cfg.Hierarchy.Enabled
	// A latecomer watches live from its join point onward: it is expected
	// to receive the chunks generated after it arrived.
	seq := int64(s.K.Now() / s.Cfg.Stream.Period)
	if s.Cfg.Stream.GenerationTime(seq) < s.K.Now() {
		seq++
	}
	p.startSeq = seq
	p.cursor = seq
	s.Net.SetHandler(id, p)
	s.peers[id] = p
	s.alivePeers++
	s.Log.NodeJoined(id, s.K.Now())
	s.startTickers(p)
	// Bootstrap, with retries until membership is established.
	p.send(s.server.id, kBootstrap, nil)
	retry := s.K.Every(2*time.Second, 2*time.Second, func() {
		if p.alive && !p.joined {
			p.send(s.server.id, kBootstrap, nil)
		}
	})
	p.tickers = append(p.tickers, retry)
	return p
}

// nextCoordinator returns the next upper-tier node for a newcomer, cycling
// round-robin through the server's view of the ring for load balance.
func (s *System) nextCoordinator() entry {
	candidates := s.server.cs.Neighbors()
	candidates = append(candidates, s.server.entry())
	// Keep only live DHT members.
	live := candidates[:0]
	for _, e := range candidates {
		if p, ok := s.peers[e.Addr]; ok && p.alive && p.inDHT {
			live = append(live, e)
		}
	}
	if len(live) == 0 {
		return entry{}
	}
	s.rr++
	return live[s.rr%len(live)]
}

func (s *System) noteReceived() {
	s.received++
	if s.target > 0 && s.received >= s.target {
		s.K.Stop()
	}
}

func (s *System) peerDeparted(p *Peer) {
	s.alivePeers--
	_ = p
}

// DisableCompletionStop makes Run continue to the horizon even after every
// static viewer has every chunk — required for churn runs, where the
// initial target is meaningless.
func (s *System) DisableCompletionStop() { s.target = 0 }

// Run executes the simulation until the horizon, full delivery (static
// runs), or event exhaustion, returning the final virtual time.
func (s *System) Run(horizon time.Duration) time.Duration {
	s.K.SetHorizon(horizon)
	return s.K.Run()
}

// Server returns the source node.
func (s *System) Server() *Peer { return s.server }

// Peer returns the peer with the given network ID (nil if unknown).
func (s *System) Peer(id simnet.NodeID) *Peer { return s.peers[id] }

// Peers returns all peers ever created, including departed ones, in
// network-ID order (stable across runs).
func (s *System) Peers() []*Peer {
	out := make([]*Peer, 0, len(s.peers))
	for _, p := range s.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// AlivePeers returns the current live population (server included).
func (s *System) AlivePeers() int { return s.alivePeers }

// ReceivedTotal returns the number of first-receipt chunk deliveries so far.
func (s *System) ReceivedTotal() int64 { return s.received }

// DroppedRoutes reports routed messages abandoned by the hop limit.
func (s *System) DroppedRoutes() uint64 { return s.droppedRoutes }

// Coordinators returns the live upper-tier members in network-ID order.
func (s *System) Coordinators() []*Peer {
	var out []*Peer
	for _, p := range s.Peers() {
		if p.alive && p.inDHT {
			out = append(out, p)
		}
	}
	return out
}
