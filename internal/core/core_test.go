package core

import (
	"testing"
	"time"

	"dco/internal/churn"
	"dco/internal/sim"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Stream.Count = 10
	cfg.Neighbors = 8
	return cfg
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64, time.Duration) {
		cfg := smallConfig()
		k := sim.NewKernel(123)
		s := NewSystem(k, cfg, 48)
		end := s.Run(200 * time.Second)
		return s.ReceivedTotal(), s.Net.Overhead(), end
	}
	r1, o1, e1 := run()
	r2, o2, e2 := run()
	if r1 != r2 || o1 != o2 || e1 != e2 {
		t.Fatalf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", r1, o1, e1, r2, o2, e2)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed int64) uint64 {
		cfg := smallConfig()
		k := sim.NewKernel(seed)
		s := NewSystem(k, cfg, 48)
		s.Run(200 * time.Second)
		return s.Net.Overhead()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical overhead — RNG likely unused")
	}
}

func TestEveryViewerGetsEveryChunk(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel(5)
	s := NewSystem(k, cfg, 64)
	s.Run(300 * time.Second)
	for _, p := range s.Peers() {
		if p.ID() == s.Server().ID() {
			continue
		}
		for seq := int64(0); seq < cfg.Stream.Count; seq++ {
			if !p.HasChunk(seq) {
				t.Fatalf("node %d missing chunk %d", p.ID(), seq)
			}
		}
	}
}

func TestCompletionStopsEarly(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel(5)
	s := NewSystem(k, cfg, 32)
	end := s.Run(1000 * time.Second)
	if end >= 1000*time.Second {
		t.Fatal("run did not stop at completion")
	}
	if s.ReceivedTotal() != int64(31*cfg.Stream.Count) {
		t.Fatalf("received %d", s.ReceivedTotal())
	}
}

func TestPendingQueueGuaranteesAnswer(t *testing.T) {
	// With the pending queue, lookups for a not-yet-generated chunk are
	// held and answered once the server registers it; the ablation drops
	// them and forces retries. Both must deliver; the queue should need
	// fewer lookups.
	lookups := func(pending bool) uint64 {
		cfg := smallConfig()
		cfg.PendingQueue = pending
		k := sim.NewKernel(9)
		s := NewSystem(k, cfg, 32)
		s.Run(300 * time.Second)
		if s.ReceivedTotal() != int64(31*cfg.Stream.Count) {
			t.Fatalf("pending=%v: incomplete delivery %d", pending, s.ReceivedTotal())
		}
		return s.Counters.Lookups
	}
	withQ := lookups(true)
	withoutQ := lookups(false)
	if withQ >= withoutQ {
		t.Fatalf("pending queue should reduce lookup retries: with=%d without=%d", withQ, withoutQ)
	}
}

func TestSelectionPolicies(t *testing.T) {
	for _, sel := range []SelectionPolicy{SelectLeastLoaded, SelectRandom} {
		cfg := smallConfig()
		cfg.Selection = sel
		k := sim.NewKernel(7)
		s := NewSystem(k, cfg, 32)
		s.Run(300 * time.Second)
		if s.ReceivedTotal() != int64(31*cfg.Stream.Count) {
			t.Fatalf("selection %v failed to deliver", sel)
		}
	}
}

func TestFingerRoutingReducesOverhead(t *testing.T) {
	overhead := func(fingers bool) uint64 {
		cfg := DefaultConfig()
		cfg.Stream.Count = 20
		cfg.Neighbors = 8
		cfg.UseFingers = fingers
		k := sim.NewKernel(11)
		s := NewSystem(k, cfg, 128)
		s.Run(400 * time.Second)
		if s.ReceivedTotal() != int64(127*20) {
			t.Fatalf("fingers=%v incomplete: %d", fingers, s.ReceivedTotal())
		}
		return s.Net.Overhead()
	}
	with := overhead(true)
	without := overhead(false)
	if with >= without {
		t.Fatalf("finger routing should cut hops: with=%d without=%d", with, without)
	}
}

func TestChunkIndexOwnership(t *testing.T) {
	// After a static run, each chunk's index entries live only at ring
	// members that own (or once owned) the chunk's key — and the key's
	// current owner must have one.
	cfg := smallConfig()
	k := sim.NewKernel(13)
	s := NewSystem(k, cfg, 32)
	s.Run(300 * time.Second)
	for seq := int64(0); seq < cfg.Stream.Count; seq++ {
		key := cfg.Stream.Ref(seq).ID()
		found := false
		for _, p := range s.Peers() {
			if p.cs.OwnsKey(key) && p.IndexSize() > 0 {
				if _, ok := p.index[seq]; ok {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("chunk %d has no index entry at its owner", seq)
		}
	}
}

func TestGracefulLeaveKeepsAvailability(t *testing.T) {
	cfg := smallConfig()
	cfg.Maintenance = true
	k := sim.NewKernel(17)
	s := NewSystem(k, cfg, 48)
	s.DisableCompletionStop()
	// Gracefully remove a third of the viewers mid-stream.
	removed := 0
	k.At(4*time.Second, func() {
		for _, p := range s.Peers() {
			if removed >= 15 || p.ID() == s.Server().ID() {
				continue
			}
			p.Depart(true)
			removed++
		}
	})
	s.Run(300 * time.Second)
	// Every survivor still gets every chunk.
	for _, p := range s.Peers() {
		if !p.Alive() || p.ID() == s.Server().ID() {
			continue
		}
		for seq := int64(0); seq < cfg.Stream.Count; seq++ {
			if !p.HasChunk(seq) {
				t.Fatalf("survivor %d missing chunk %d after graceful exodus", p.ID(), seq)
			}
		}
	}
}

func TestAbruptFailuresRecovered(t *testing.T) {
	cfg := smallConfig()
	cfg.Maintenance = true
	k := sim.NewKernel(19)
	s := NewSystem(k, cfg, 48)
	s.DisableCompletionStop()
	killed := 0
	k.At(3*time.Second, func() {
		for _, p := range s.Peers() {
			if killed >= 12 || p.ID() == s.Server().ID() {
				continue
			}
			p.Depart(false) // abrupt
			killed++
		}
	})
	s.Run(300 * time.Second)
	for _, p := range s.Peers() {
		if !p.Alive() || p.ID() == s.Server().ID() {
			continue
		}
		for seq := int64(0); seq < cfg.Stream.Count; seq++ {
			if !p.HasChunk(seq) {
				t.Fatalf("survivor %d missing chunk %d after failures", p.ID(), seq)
			}
		}
	}
}

func TestLateJoinerCatchesStream(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Count = 20
	cfg.Neighbors = 8
	cfg.Maintenance = true
	k := sim.NewKernel(23)
	s := NewSystem(k, cfg, 32)
	s.DisableCompletionStop()
	var late *Peer
	k.At(8*time.Second, func() { late = s.SpawnPeer() })
	s.Run(300 * time.Second)
	if late == nil || !late.Alive() {
		t.Fatal("late joiner missing")
	}
	// It should have everything generated after it joined.
	missing := 0
	for seq := int64(9); seq < cfg.Stream.Count; seq++ {
		if !late.HasChunk(seq) {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("late joiner missing %d of its expected chunks", missing)
	}
}

func TestChurnComparableToStatic(t *testing.T) {
	// Under the paper's churn model DCO should still deliver the large
	// majority of expected chunks (Fig. 11/12 plateau near 90%+).
	cfg := DefaultConfig()
	cfg.Stream.Count = 60
	cfg.Neighbors = 16
	cfg.Maintenance = true
	k := sim.NewKernel(29)
	s := NewSystem(k, cfg, 96)
	s.DisableCompletionStop()
	d := churn.NewDriver(k, churn.Config{
		MeanLife: 60 * time.Second, MeanJoin: 60 * time.Second / 95, GracefulFrac: 0.5,
	}, func() churn.Peer { return s.SpawnPeer() })
	for _, p := range s.Peers() {
		if p.Alive() && p.ID() != s.Server().ID() {
			d.Track(p)
		}
	}
	d.StartArrivals()
	s.Run(150 * time.Second)
	if pct := s.Log.ReceivedPercent(150 * time.Second); pct < 70 {
		t.Fatalf("churn delivery too low: %.1f%%", pct)
	}
}

func TestAdaptivePrefetchGrowsUnderFailures(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel(31)
	s := NewSystem(k, cfg, 16)
	s.Run(200 * time.Second)
	p := s.Peers()[3]
	base := p.PrefetchWindow()
	// Force failures through the tracker and confirm Eq. 2 reacts.
	for i := 0; i < 10; i++ {
		p.ft.Record(true)
	}
	if p.PrefetchWindow() <= base {
		t.Fatalf("window did not grow: base=%d now=%d", base, p.PrefetchWindow())
	}
}

func TestDroppedRoutesZeroWhenStatic(t *testing.T) {
	cfg := smallConfig()
	k := sim.NewKernel(37)
	s := NewSystem(k, cfg, 64)
	s.Run(300 * time.Second)
	if s.DroppedRoutes() != 0 {
		t.Fatalf("static run dropped %d routed messages", s.DroppedRoutes())
	}
}

func TestHeterogeneousDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		cfg := smallConfig()
		cfg.PeerClasses = HeterogeneousClasses()
		k := sim.NewKernel(321)
		s := NewSystem(k, cfg, 48)
		s.Run(300 * time.Second)
		return s.ReceivedTotal(), s.Net.Overhead()
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 || o1 != o2 {
		t.Fatalf("heterogeneous run diverged: (%d,%d) vs (%d,%d)", r1, o1, r2, o2)
	}
}

func TestHeterogeneousClassesAssigned(t *testing.T) {
	cfg := smallConfig()
	cfg.PeerClasses = HeterogeneousClasses()
	k := sim.NewKernel(5)
	s := NewSystem(k, cfg, 128)
	counts := map[int64]int{}
	for _, p := range s.Peers() {
		if p.ID() == s.Server().ID() {
			continue
		}
		counts[p.upBps]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected 3 bandwidth classes, got %v", counts)
	}
	// Roughly the configured 30/50/20 split over 127 viewers.
	if counts[200_000] < 20 || counts[600_000] < 40 || counts[1_800_000] < 10 {
		t.Fatalf("implausible class split: %v", counts)
	}
	s.Run(300 * time.Second)
	if s.ReceivedTotal() != int64(127*cfg.Stream.Count) {
		t.Fatalf("heterogeneous swarm incomplete: %d", s.ReceivedTotal())
	}
}

func TestMaxHopsDropsRunawayRoutes(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxHops = 1 // absurdly tight: multi-hop routes must be dropped
	k := sim.NewKernel(17)
	s := NewSystem(k, cfg, 64)
	s.DisableCompletionStop()
	s.Run(30 * time.Second)
	if s.DroppedRoutes() == 0 {
		t.Fatal("hop limit of 1 should drop some routed messages in a 64-node ring")
	}
}
