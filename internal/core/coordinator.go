package core

import (
	"sort"
	"time"

	"dco/internal/chord"
	"dco/internal/simnet"
)

// providerInfo is one provider's row inside an index-table entry (paper
// Fig. 3: IP address, buffer map, bandwidth), augmented with the
// coordinator's outstanding-assignment accounting that realizes "a chunk
// provider with sufficient bandwidth".
type providerInfo struct {
	node        simnet.NodeID
	upBps       int64
	bufferCount int
	cap         int    // concurrent assignments its uplink sustains
	outstanding int    // live assignments
	assigned    uint64 // lifetime assignments (tie-breaking)
	coolUntil   time.Duration
}

type assignment struct {
	pr  *providerInfo
	gen uint64
}

// indexEntry is the coordinator-side record for one chunk ID: its known
// providers plus the requesters waiting for the first provider to appear.
type indexEntry struct {
	seq            int64
	key            chord.ID
	providers      []*providerInfo
	pending        []simnet.NodeID
	pendingSet     map[simnet.NodeID]bool
	assignedTo     map[simnet.NodeID]*assignment
	genCounter     uint64
	flushScheduled bool
}

func (p *Peer) indexEntry(seq int64) *indexEntry {
	e := p.index[seq]
	if e == nil {
		e = &indexEntry{
			seq:        seq,
			key:        p.sys.Cfg.Stream.Ref(seq).ID(),
			pendingSet: make(map[simnet.NodeID]bool),
			assignedTo: make(map[simnet.NodeID]*assignment),
		}
		p.index[seq] = e
	}
	return e
}

// IndexSize reports how many chunk entries this peer coordinates (tests,
// load accounting).
func (p *Peer) IndexSize() int { return len(p.index) }

func (e *indexEntry) findProvider(node simnet.NodeID) (int, *providerInfo) {
	for i, pr := range e.providers {
		if pr.node == node {
			return i, pr
		}
	}
	return -1, nil
}

func (e *indexEntry) removeProvider(node simnet.NodeID) {
	if i, pr := e.findProvider(node); pr != nil {
		e.providers[i] = e.providers[len(e.providers)-1]
		e.providers = e.providers[:len(e.providers)-1]
	}
}

// coordLookup handles a Lookup that reached its owner: answer with a
// provider, or queue the requester until one registers (the paper's
// guarantee that "a chunk request in DCO is always answered with a chunk
// provider").
func (p *Peer) coordLookup(seq int64, origin simnet.NodeID) {
	p.opsThisSec++
	e := p.indexEntry(seq)
	if pr := p.selectProvider(e, origin); pr != nil {
		p.assignProvider(e, origin, pr)
		p.send(origin, kLookupResp, &lookupResp{Seq: seq, Provider: pr.node, Coord: p.id, OK: true})
		return
	}
	if p.sys.Cfg.PendingQueue {
		if !e.pendingSet[origin] {
			e.pendingSet[origin] = true
			e.pending = append(e.pending, origin)
			p.sys.Counters.PendingQueued++
			p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "lookup.queued", "seq=%d origin=%d", seq, origin)
		}
		// Ack the queue position so the requester parks instead of
		// re-routing the whole lookup on its short timeout.
		p.send(origin, kLookupResp, &lookupResp{Seq: seq, Coord: p.id, Queued: true})
		return
	}
	p.send(origin, kLookupResp, &lookupResp{Seq: seq, Coord: p.id, OK: false})
}

// coordInsert handles an Insert that reached its owner: record (or remove)
// the provider, settle the provider-capacity accounting for the requester
// that just finished, and serve anyone still waiting.
func (p *Peer) coordInsert(m *insertMsg) {
	p.opsThisSec++
	e := p.indexEntry(m.Seq)
	holder := m.Index.Holder
	if m.Unregister {
		e.removeProvider(holder)
		return
	}
	// The holder completing a fetch frees its provider's capacity.
	if a, ok := e.assignedTo[holder]; ok {
		delete(e.assignedTo, holder)
		a.pr.outstanding--
	}
	if _, pr := e.findProvider(holder); pr != nil {
		pr.upBps = m.Index.UpBps
		pr.bufferCount = m.Index.BufferCount
	} else {
		e.providers = append(e.providers, &providerInfo{
			node:        holder,
			upBps:       m.Index.UpBps,
			bufferCount: m.Index.BufferCount,
			cap:         p.sys.Cfg.providerCap(m.Index.UpBps),
		})
	}
	p.flushPending(e)
}

// onFail implements the failure path of §III-B1b: drop the dead provider
// (or cool down a merely saturated one) and immediately re-serve the
// reporting requester.
func (p *Peer) onFail(m *failMsg) {
	p.opsThisSec++
	e := p.indexEntry(m.Seq)
	if m.Busy {
		if _, pr := e.findProvider(m.Provider); pr != nil {
			pr.coolUntil = p.sys.K.Now() + p.sys.Cfg.ProviderCooldown
		}
	} else {
		e.removeProvider(m.Provider)
		p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "provider.fail", "seq=%d provider=%d", m.Seq, m.Provider)
	}
	if a, ok := e.assignedTo[m.Origin]; ok {
		delete(e.assignedTo, m.Origin)
		a.pr.outstanding--
	}
	p.coordLookup(m.Seq, m.Origin)
}

// selectProvider picks a provider with spare capacity for origin, or nil.
func (p *Peer) selectProvider(e *indexEntry, origin simnet.NodeID) *providerInfo {
	now := p.sys.K.Now()
	var candidates []*providerInfo
	for _, pr := range e.providers {
		if pr.node == origin || pr.outstanding >= pr.cap || pr.coolUntil > now {
			continue
		}
		candidates = append(candidates, pr)
	}
	if len(candidates) == 0 {
		return nil
	}
	switch p.sys.Cfg.Selection {
	case SelectRandom:
		return candidates[p.sys.K.Rand().Intn(len(candidates))]
	default: // SelectLeastLoaded
		best := candidates[0]
		bestScore := float64(best.outstanding) / float64(best.cap)
		for _, pr := range candidates[1:] {
			score := float64(pr.outstanding) / float64(pr.cap)
			if score < bestScore || (score == bestScore && pr.assigned < best.assigned) {
				best, bestScore = pr, score
			}
		}
		return best
	}
}

// assignProvider charges one outstanding slot against pr and leases it: if
// the requester never completes (it died, or its chunk message was lost),
// the slot is reclaimed after LeaseTime so a vanished requester cannot pin
// provider capacity forever.
func (p *Peer) assignProvider(e *indexEntry, origin simnet.NodeID, pr *providerInfo) {
	pr.outstanding++
	pr.assigned++
	p.sys.Counters.Assignments++
	e.genCounter++
	a := &assignment{pr: pr, gen: e.genCounter}
	e.assignedTo[origin] = a
	gen := a.gen
	p.sys.K.After(p.sys.Cfg.LeaseTime, func() {
		if cur, ok := e.assignedTo[origin]; ok && cur.gen == gen {
			p.sys.Counters.LeaseExpiries++
			delete(e.assignedTo, origin)
			cur.pr.outstanding--
			if p.alive {
				p.flushPending(e)
			}
		}
	})
}

// flushPending serves queued requesters while providers have capacity. If
// requesters remain queued against known-but-saturated providers, a retry
// flush is scheduled so a cooldown ending cannot strand the queue.
func (p *Peer) flushPending(e *indexEntry) {
	for len(e.pending) > 0 {
		origin := e.pending[0]
		pr := p.selectProvider(e, origin)
		if pr == nil {
			if len(e.providers) > 0 && !e.flushScheduled {
				e.flushScheduled = true
				p.sys.K.After(p.sys.Cfg.ProviderCooldown, func() {
					e.flushScheduled = false
					if p.alive {
						p.flushPending(e)
					}
				})
			}
			return
		}
		e.pending = e.pending[1:]
		delete(e.pendingSet, origin)
		p.assignProvider(e, origin, pr)
		p.send(origin, kLookupResp, &lookupResp{Seq: e.seq, Provider: pr.node, Coord: p.id, OK: true})
	}
}

// exportEntries serializes index entries matching keep for a handoff; the
// exported entries are deleted locally. Iteration is in seq order for
// reproducibility.
func (p *Peer) exportEntries(keep func(key chord.ID) bool) []handoffEntry {
	seqs := make([]int64, 0, len(p.index))
	for seq := range p.index {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var out []handoffEntry
	for _, seq := range seqs {
		e := p.index[seq]
		if !keep(e.key) {
			continue
		}
		he := handoffEntry{Seq: seq, Key: e.key}
		for _, pr := range e.providers {
			he.Providers = append(he.Providers, ChunkIndex{Holder: pr.node, UpBps: pr.upBps, BufferCount: pr.bufferCount})
		}
		he.Pending = append(he.Pending, e.pending...)
		out = append(out, he)
		delete(p.index, seq)
	}
	return out
}

// onHandoff merges transferred index entries (graceful coordinator leave,
// or ownership change after a join). Pending requesters are re-queued and
// served from the merged provider set.
func (p *Peer) onHandoff(m *handoffMsg) {
	for _, he := range m.Entries {
		e := p.indexEntry(he.Seq)
		for _, idx := range he.Providers {
			if _, pr := e.findProvider(idx.Holder); pr == nil {
				e.providers = append(e.providers, &providerInfo{
					node:        idx.Holder,
					upBps:       idx.UpBps,
					bufferCount: idx.BufferCount,
					cap:         p.sys.Cfg.providerCap(idx.UpBps),
				})
			}
		}
		for _, origin := range he.Pending {
			if !e.pendingSet[origin] {
				e.pendingSet[origin] = true
				e.pending = append(e.pending, origin)
			}
		}
		p.flushPending(e)
	}
}
