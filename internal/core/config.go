// Package core implements DCO — the DHT-aided chunk-driven overlay that is
// the paper's contribution (§III) — as actors on the discrete-event
// simulator. Every viewer runs the chunk-sharing algorithm (Algorithm 1):
// it looks a missing chunk's ID up in the Chord ring, fetches the chunk
// from the provider the coordinator returns, and then registers itself as a
// provider by inserting its own chunk index.
package core

import (
	"time"

	"dco/internal/simnet"
	"dco/internal/stream"
)

// SelectionPolicy decides which registered provider a coordinator hands to
// a requester.
type SelectionPolicy int

const (
	// SelectLeastLoaded returns the provider with the most residual upload
	// capacity — the paper's "chunk provider with sufficient bandwidth".
	SelectLeastLoaded SelectionPolicy = iota
	// SelectRandom picks uniformly among providers with spare capacity
	// (ablation baseline).
	SelectRandom
)

// Config parameterizes a DCO deployment.
type Config struct {
	Stream stream.Params

	// Net sets the physical network model (latency, zones). The zero
	// value takes simnet's defaults (flat broadband, per the paper).
	Net simnet.Config

	// Neighbors is the successor-list size; the paper's evaluation calls
	// these entries the node's neighbors and sweeps 8..64.
	Neighbors int

	// UseFingers enables Chord finger-table routing. The figure experiments
	// run with false (successor-list routing only) to match the paper's
	// neighbor-count semantics; tests and the live node use true.
	UseFingers bool

	// Bandwidths (bits/s). Paper §IV: server 4000 kbps, peers 600 kbps.
	ServerUpBps, ServerDownBps int64
	PeerUpBps, PeerDownBps     int64

	// PeerClasses, when non-empty, draws each viewer's bandwidth from a
	// weighted mix instead of the flat PeerUpBps/PeerDownBps — the
	// heterogeneous populations the paper's related work (§II) discusses.
	// Fractions should sum to 1; the last class absorbs rounding.
	PeerClasses []BandwidthClass

	// Client-side timing.
	TickPeriod       time.Duration // fetch-scheduler period
	LookupTimeout    time.Duration // resend a Lookup that got no answer
	FetchTimeout     time.Duration // declare a provider failed
	RetryInterval    time.Duration // pause after a not-found Lookup (no pending queue)
	MaxParallelFetch int           // concurrent chunk fetches per node

	Prefetch stream.PrefetchConfig

	// Coordinator behavior.
	PendingQueue bool            // hold unanswerable lookups until a provider registers (paper behavior)
	Selection    SelectionPolicy //
	LeaseTime    time.Duration   // assignment lease; reclaims capacity if a requester vanishes

	// Provider-side admission control: a provider whose uplink queue
	// exceeds BusyQueueLimit turns requesters away with a busy nack; the
	// coordinator then skips it for ProviderCooldown instead of evicting it.
	BusyQueueLimit   time.Duration
	ProviderCooldown time.Duration

	// DHT maintenance (needed under churn; static runs skip it, mirroring
	// the paper's churn-free overhead accounting).
	Maintenance    bool
	StabilizeEvery time.Duration
	FixFingersOp   time.Duration // one finger refresh per interval (only if UseFingers)
	// RepublishEvery re-inserts a few of a node's chunk indices (DHT
	// soft-state refresh): heals registrations lost to dead hops and
	// follows key ranges as ownership moves under churn.
	RepublishEvery time.Duration
	RepublishBatch int

	// MaxHops drops a routed message after this many forwards (loop guard
	// during ring convergence). BuildStatic sets it from the network size
	// when zero.
	MaxHops int

	// Playback, when enabled, drives a playhead over every viewer's buffer
	// and reports startup delay / continuity (the QoS the paper motivates).
	Playback PlaybackConfig

	// Hierarchy enables the two-tier infrastructure of §III-B1: only
	// coordinators sit in the DHT; other nodes attach to a coordinator and
	// proxy their Insert/Lookup traffic through it. Off in the figure
	// experiments (§IV runs all nodes in the DHT "to make results
	// comparable").
	Hierarchy HierarchyConfig
}

// BandwidthClass is one stratum of a heterogeneous peer population.
type BandwidthClass struct {
	Frac    float64 // fraction of viewers in this class
	UpBps   int64
	DownBps int64
}

// HeterogeneousClasses is a convenient DSL/cable/fiber-style mix whose mean
// upload roughly matches the paper's flat 600 kbps population.
func HeterogeneousClasses() []BandwidthClass {
	return []BandwidthClass{
		{Frac: 0.3, UpBps: 200_000, DownBps: 600_000},     // constrained DSL
		{Frac: 0.5, UpBps: 600_000, DownBps: 1_200_000},   // cable
		{Frac: 0.2, UpBps: 1_800_000, DownBps: 4_000_000}, // fiber
	}
}

// HierarchyConfig tunes the two-tier mode.
type HierarchyConfig struct {
	Enabled bool
	// InitialCoordinators is how many stable nodes (besides the server)
	// seed the upper-tier ring in a static build.
	InitialCoordinators int
	// OverloadOpsPerSec marks a coordinator overloaded when its index
	// operations exceed this rate, triggering promotion of a stable client.
	OverloadOpsPerSec float64
	// LongevityThreshold is the stay-probability a client needs before
	// volunteering as a coordinator.
	LongevityThreshold float64
	// EvalEvery is how often clients re-evaluate their longevity.
	EvalEvery time.Duration
}

// DefaultConfig returns the paper's §IV settings.
func DefaultConfig() Config {
	return Config{
		Stream:           stream.DefaultParams(),
		Neighbors:        32,
		UseFingers:       false,
		ServerUpBps:      4_000_000,
		ServerDownBps:    4_000_000,
		PeerUpBps:        600_000,
		PeerDownBps:      600_000,
		TickPeriod:       500 * time.Millisecond,
		LookupTimeout:    4 * time.Second,
		FetchTimeout:     6 * time.Second,
		RetryInterval:    time.Second,
		MaxParallelFetch: 8,
		Prefetch:         stream.DefaultPrefetchConfig(),
		PendingQueue:     true,
		Selection:        SelectLeastLoaded,
		LeaseTime:        2500 * time.Millisecond,
		BusyQueueLimit:   700 * time.Millisecond,
		ProviderCooldown: 700 * time.Millisecond,
		Maintenance:      false,
		StabilizeEvery:   time.Second,
		RepublishEvery:   2 * time.Second,
		RepublishBatch:   3,
		FixFingersOp:     500 * time.Millisecond,
		Playback:         PlaybackConfig{Enabled: false, StartupChunks: 3},
		Hierarchy: HierarchyConfig{
			InitialCoordinators: 8,
			OverloadOpsPerSec:   50,
			LongevityThreshold:  0.8,
			EvalEvery:           5 * time.Second,
		},
	}
}

// providerCap derives how many outstanding assignments a provider can carry
// from its upload bandwidth. An assignment slot is held for the whole
// control round-trip (handout → transfer → the requester's Insert landing
// back at the coordinator), which is several times the raw transmission
// time, so the cap oversubscribes the uplink by 2x; the provider's own
// admission control (busy nacks) bounds the real queue.
func (c Config) providerCap(upBps int64) int {
	perSec := float64(upBps) * c.Stream.Period.Seconds() / float64(c.Stream.ChunkBits)
	n := int(2 * perSec)
	if n < 1 {
		n = 1
	}
	return n
}

// drawPeerBandwidth picks a viewer's capacities: the flat defaults, or a
// class sampled from PeerClasses with the run's deterministic RNG.
func (c Config) drawPeerBandwidth(pick float64) (up, down int64) {
	if len(c.PeerClasses) == 0 {
		return c.PeerUpBps, c.PeerDownBps
	}
	acc := 0.0
	for _, cl := range c.PeerClasses {
		acc += cl.Frac
		if pick < acc {
			return cl.UpBps, cl.DownBps
		}
	}
	last := c.PeerClasses[len(c.PeerClasses)-1]
	return last.UpBps, last.DownBps
}
