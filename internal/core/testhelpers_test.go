package core

import "dco/internal/sim"

func newKernelForTest() *sim.Kernel { return sim.NewKernel(42) }
