package core

import (
	"math"
	"sort"

	"dco/internal/simnet"
	"dco/internal/stable"
)

// This file implements the two-tier hierarchical infrastructure of
// §III-B1: a small set of stable coordinators forms the DHT; every other
// node is a lower-tier client that reports and looks up chunks *via* its
// coordinator. The DHT grows on demand — an overloaded coordinator promotes
// a stable client into the ring to shed load.

func (p *Peer) onAttach(m *attachMsg) {
	p.clients[m.From] = true
	p.send(m.From, kAttachOK, nil)
}

func (p *Peer) onAttachOK(from simnet.NodeID) {
	if p.inDHT {
		return
	}
	p.coordinator = from
	p.coordFails = 0
	p.joined = true
}

// onProxyLookup forwards a lower-tier client's Lookup into the DHT with the
// client as origin, so the owning coordinator answers the client directly.
func (p *Peer) onProxyLookup(m *proxyLookup) {
	p.opsThisSec++
	p.routeLookup(&lookupMsg{Key: p.sys.Cfg.Stream.Ref(m.Seq).ID(), Seq: m.Seq, Origin: m.Origin})
}

func (p *Peer) onProxyInsert(m *proxyInsert) {
	p.opsThisSec++
	p.routeInsert(&insertMsg{
		Key:        p.sys.Cfg.Stream.Ref(m.Seq).ID(),
		Seq:        m.Seq,
		Index:      m.Index,
		Unregister: m.Unregister,
	})
}

// loadTick resets the coordinator's per-second op counter and records
// whether the last second exceeded the overload threshold.
func (p *Peer) loadTick() {
	if !p.alive {
		return
	}
	p.overloaded = float64(p.opsThisSec) > p.sys.Cfg.Hierarchy.OverloadOpsPerSec
	p.opsThisSec = 0
}

// Overloaded reports whether the coordinator exceeded its op-rate threshold
// during the last accounting second.
func (p *Peer) Overloaded() bool { return p.overloaded }

// ClientCount reports attached lower-tier clients.
func (p *Peer) ClientCount() int { return len(p.clients) }

// longevityTick is the lower-tier client's periodic §III-B1b step: compute
// the Cox-model stay probability and volunteer for coordinator duty when it
// crosses the threshold.
func (p *Peer) longevityTick() {
	if !p.alive || p.inDHT || !p.joined || p.coordinator == simnet.Invalid {
		return
	}
	pl := p.Longevity()
	if pl >= p.sys.Cfg.Hierarchy.LongevityThreshold {
		p.send(p.coordinator, kVolunteer, &volunteerMsg{From: p.entry(), Longevity: pl})
	}
}

// Longevity evaluates Eq. (1) for this node right now: session age plus the
// streaming-quality and join-time covariates.
func (p *Peer) Longevity() float64 {
	age := p.sys.K.Now() - p.joinAt
	z := stable.Covariates{
		BufferingLevel: float64(p.buf.ConsecutiveFrom(p.cursor)),
		JoinHour:       math.Mod(p.joinAt.Hours(), 24),
	}
	return p.sys.Classifier.Model.Longevity(age, z)
}

// onVolunteer: an overloaded coordinator accepts a stable client's offer
// and sponsors its DHT join, shedding part of its key range and load.
func (p *Peer) onVolunteer(m *volunteerMsg) {
	if !p.overloaded || !p.inDHT {
		return
	}
	p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "coord.promote", "client=%d longevity=%.2f", m.From.Addr, m.Longevity)
	p.send(m.From.Addr, kPromote, &promoteMsg{Sponsor: p.entry()})
	// Clear the flag so one overload burst promotes one client, not all.
	p.overloaded = false
}

func (p *Peer) onPromote(m *promoteMsg) {
	if p.inDHT || !p.alive {
		return
	}
	p.wantDHT = true
	p.send(m.Sponsor.Addr, kFind, &findMsg{Key: p.cs.Self.ID, Origin: p.id, Tag: tagJoin})
}

// redirectClients implements departure duty (1): recommend the successor to
// half the clients and the predecessor to the other half.
func (p *Peer) redirectClients(succ, pred entry) {
	if len(p.clients) == 0 {
		return
	}
	targets := make([]entry, 0, 2)
	if succ.OK && succ.Addr != p.id {
		targets = append(targets, succ)
	}
	if pred.OK && pred.Addr != p.id && (len(targets) == 0 || pred.Addr != targets[0].Addr) {
		targets = append(targets, pred)
	}
	if len(targets) == 0 {
		return
	}
	ids := make([]simnet.NodeID, 0, len(p.clients))
	for c := range p.clients {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, c := range ids {
		t := targets[i%len(targets)]
		p.send(c, kRedirect, &redirectMsg{Coordinators: []entry{t}})
	}
	p.clients = make(map[simnet.NodeID]bool)
}

// onRedirect re-attaches a client whose coordinator is departing.
func (p *Peer) onRedirect(m *redirectMsg) {
	if p.inDHT || len(m.Coordinators) == 0 {
		return
	}
	p.joined = false
	p.coordinator = m.Coordinators[0].Addr
	p.send(p.coordinator, kAttach, &attachMsg{From: p.id})
}
