package core

import (
	"sort"

	"dco/internal/chord"
	"dco/internal/simnet"
)

// sortedKeys returns a map's keys in ascending order; every simulated
// iteration over a map must use it (or an equivalent) so that Go's
// randomized map order cannot change the event sequence between runs.
func sortedKeys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// forward routes a message one step toward key over connection-oriented
// links: a dead next hop is detected at connect time (as real TCP-based
// Chord implementations do), removed from the local tables, and routing
// re-picks until a live hop accepts or this node turns out to own the key.
// Returns mine=true when this node is the owner.
func (p *Peer) forward(key chord.ID, hops *int, kind string, payload any) (mine bool) {
	for tries := 0; ; tries++ {
		if *hops > p.sys.Cfg.MaxHops || tries > p.sys.Cfg.Neighbors+2 {
			p.sys.droppedRoutes++
			return false
		}
		hop, done := p.cs.NextHopUsing(key, p.sys.Cfg.UseFingers)
		if done && hop.Addr == p.id {
			return true
		}
		if !hop.OK {
			p.sys.droppedRoutes++
			return false
		}
		*hops++
		if p.sys.Net.TrySend(p.id, hop.Addr, kind, payload) {
			return false
		}
		// Connect failed: the hop is dead. Purge and re-route.
		p.cs.RemoveFailed(hop.Addr)
	}
}

func (p *Peer) routeLookup(m *lookupMsg) {
	if p.forward(m.Key, &m.Hops, kLookup, m) {
		p.coordLookup(m.Seq, m.Origin)
	}
}

func (p *Peer) routeInsert(m *insertMsg) {
	if p.forward(m.Key, &m.Hops, kInsert, m) {
		p.coordInsert(m)
	}
}

func (p *Peer) routeFind(m *findMsg) {
	if p.forward(m.Key, &m.Hops, kFind, m) {
		resp := &findResp{Tag: m.Tag, Owner: p.entry()}
		if m.Tag == tagJoin {
			resp.Succs = p.cs.SuccessorList()
			resp.Pred = p.cs.Predecessor()
		}
		p.send(m.Origin, kFindResp, resp)
	}
}

func (p *Peer) onFindResp(r *findResp) {
	if r.Tag >= 0 {
		// A fix-fingers refresh completed.
		p.cs.SetFinger(int(r.Tag), r.Owner)
		return
	}
	p.completeJoin(r)
}

// ---------------------------------------------------------------------------
// Join (§III-B1b "Node Join").

// onBootstrap: the server hands each newcomer one coordinator in
// round-robin order for load balance.
func (p *Peer) onBootstrap(from simnet.NodeID) {
	coord := p.sys.nextCoordinator()
	if !coord.OK {
		coord = p.entry()
	}
	p.send(from, kBootstrapR, &bootstrapResp{Coordinator: coord})
}

func (p *Peer) onBootstrapResp(r *bootstrapResp) {
	if p.joined {
		return
	}
	if p.sys.Cfg.Hierarchy.Enabled && !p.wantDHT {
		// Lower tier: attach to the assigned coordinator.
		p.coordinator = r.Coordinator.Addr
		p.send(r.Coordinator.Addr, kAttach, &attachMsg{From: p.id})
		return
	}
	// Upper tier: find our ring position through the coordinator.
	p.send(r.Coordinator.Addr, kFind, &findMsg{Key: p.cs.Self.ID, Origin: p.id, Tag: tagJoin})
}

// completeJoin installs the discovered successor and announces ourselves.
func (p *Peer) completeJoin(r *findResp) {
	if p.joined && p.inDHT {
		return
	}
	p.cs.SetSuccessor(r.Owner)
	p.cs.AdoptSuccessorList(r.Owner, r.Succs)
	if r.Pred.OK {
		// Provisional predecessor so OwnsKey is sane before the first
		// stabilize round; our successor's notify handling will correct it.
		p.cs.SetPredecessor(r.Pred)
	}
	p.joined = true
	p.inDHT = true
	p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "peer.join", "ring=%s", p.cs.Self.ID)
	if p.coordinator != simnet.Invalid {
		// A promoted client no longer proxies through its old coordinator.
		p.send(p.coordinator, kDetach, nil)
		p.coordinator = simnet.Invalid
	}
	p.send(r.Owner.Addr, kNotify, &notifyMsg{From: p.entry()})
}

// ---------------------------------------------------------------------------
// Stabilization (Chord's periodic repair; runs when Cfg.Maintenance).

func (p *Peer) stabilizeTick() {
	if !p.alive || !p.inDHT {
		return
	}
	p.checkPredecessor()
	if !p.joined {
		return
	}
	succ := p.cs.Successor()
	if succ.Addr == p.id {
		p.stabWaiting = false
		if !p.isSource {
			// Islanded: every known successor died before repair could
			// follow the ring. Re-enter through the server, like a fresh
			// joiner (§III-B1b node-failure handling).
			p.joined = false
			p.send(p.sys.server.id, kBootstrap, nil)
		}
		return
	}
	if p.stabWaiting && p.stabTarget == succ.Addr {
		// The previous probe went unanswered: the successor is dead.
		p.cs.RemoveFailed(succ.Addr)
		succ = p.cs.Successor()
		if succ.Addr == p.id {
			p.stabWaiting = false
			return
		}
	}
	p.stabWaiting = true
	p.stabTarget = succ.Addr
	p.send(succ.Addr, kStabQ, &stabQ{From: p.entry()})
	// Probe one random deeper list entry too: routing picks hops from the
	// whole successor list, and a dead entry deep in the list otherwise
	// lingers for many rounds (it propagates backward from the successor's
	// own list faster than it is purged). Entries that did not answer by
	// the next tick are removed.
	for addr := range p.listProbes {
		if !p.listProbes[addr] {
			continue
		}
		p.cs.RemoveFailed(addr)
		delete(p.listProbes, addr)
	}
	list := p.cs.SuccessorList()
	if len(list) > 1 {
		e := list[1+p.sys.K.Rand().Intn(len(list)-1)]
		if e.Addr != p.id {
			if p.listProbes == nil {
				p.listProbes = make(map[simnet.NodeID]bool)
			}
			p.listProbes[e.Addr] = true
			p.send(e.Addr, kPredQ, nil)
		}
	}
}

// checkPredecessor is Chord's check_predecessor step: probe the current
// predecessor and clear it if the previous probe went unanswered. Without
// this, a dead predecessor is endlessly re-advertised to the node behind it
// (stabilize adopts the successor's predecessor), and the ring never heals.
func (p *Peer) checkPredecessor() {
	pred := p.cs.Predecessor()
	if !pred.OK || pred.Addr == p.id {
		p.predWaiting = false
		return
	}
	if p.predWaiting && p.predTarget == pred.Addr {
		p.cs.ClearPredecessor()
		p.predWaiting = false
		return
	}
	p.predWaiting = true
	p.predTarget = pred.Addr
	p.send(pred.Addr, kPredQ, nil)
}

func (p *Peer) onStabQ(q *stabQ) {
	p.send(q.From.Addr, kStabR, &stabR{Pred: p.cs.Predecessor(), List: p.cs.SuccessorList()})
}

func (p *Peer) onStabR(from simnet.NodeID, r *stabR) {
	if !p.stabWaiting || p.stabTarget != from {
		return
	}
	p.stabWaiting = false
	succ := p.cs.Successor()
	if r.Pred.OK && r.Pred.Addr != p.id && chord.InOO(p.cs.Self.ID, r.Pred.ID, succ.ID) {
		// Someone joined between us and our successor.
		p.cs.SetSuccessor(r.Pred)
		succ = r.Pred
	} else {
		p.cs.AdoptSuccessorList(succ, r.List)
	}
	p.send(succ.Addr, kNotify, &notifyMsg{From: p.entry()})
}

// onNotify adopts a closer predecessor and hands it the index entries that
// now fall in its key range, preserving chunk availability across joins.
func (p *Peer) onNotify(n *notifyMsg) {
	if !p.cs.Notify(n.From) {
		return
	}
	moved := p.exportEntries(func(key chord.ID) bool { return !p.cs.OwnsKey(key) })
	if len(moved) > 0 {
		p.send(n.From.Addr, kHandoff, &handoffMsg{Entries: moved})
	}
}

// republishTick re-inserts a few random registered chunk indices (soft
// state). Under churn a routed insert can vanish at a dead hop and a
// coordinator can die with its table; periodic republication restores the
// paper's chunk-availability guarantee.
func (p *Peer) republishTick() {
	if !p.alive || !p.joined {
		return
	}
	n := p.sys.Cfg.RepublishBatch
	if n <= 0 || len(p.registered) == 0 {
		return
	}
	// Sample from a sorted snapshot so the kernel RNG, not map iteration
	// order, decides the picks (reproducibility).
	seqs := sortedKeys(p.registered)
	picks := make([]int64, 0, n)
	for len(picks) < n && len(seqs) > 0 {
		i := p.sys.K.Rand().Intn(len(seqs))
		picks = append(picks, seqs[i])
		seqs[i] = seqs[len(seqs)-1]
		seqs = seqs[:len(seqs)-1]
	}
	idx := ChunkIndex{Holder: p.id, UpBps: p.upBps, BufferCount: p.buf.Count()}
	for _, seq := range picks {
		if p.inDHT {
			p.routeInsert(&insertMsg{Key: p.sys.Cfg.Stream.Ref(seq).ID(), Seq: seq, Index: idx})
		} else if p.coordinator != simnet.Invalid {
			p.send(p.coordinator, kProxyInsert, &proxyInsert{Seq: seq, Index: idx})
		}
	}
}

func (p *Peer) fixFingersTick() {
	if !p.alive || !p.joined || !p.inDHT {
		return
	}
	i, start := p.cs.NextFingerToFix()
	p.routeFind(&findMsg{Key: start, Origin: p.id, Tag: int64(i)})
}

// ---------------------------------------------------------------------------
// Departure (§III-B1b "Node Departure" / "Node Failure").

// Depart removes the peer from the system. A graceful departure performs
// the paper's three coordinator duties (redirect clients, transfer chunk
// indices, standard Chord leave) plus provider unregistration; an abrupt
// one vanishes and leaves repair to timeouts and stabilization.
func (p *Peer) Depart(graceful bool) {
	if !p.alive || p.isSource {
		return
	}
	if graceful {
		p.gracefulLeave()
	}
	p.alive = false
	for _, t := range p.tickers {
		t.Stop()
	}
	p.tickers = nil
	for _, f := range p.fetches {
		f.clearTimeout()
	}
	p.fetches = make(map[int64]*fetch)
	p.sys.Log.NodeLeft(p.id, p.sys.K.Now())
	p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "peer.depart", "graceful=%v", graceful)
	p.sys.Net.Kill(p.id)
	p.sys.peerDeparted(p)
}

func (p *Peer) gracefulLeave() {
	// Withdraw our provider registrations so coordinators stop advertising
	// us ("it informs the coordinators to which it has reported its chunks").
	// Sorted order keeps the run reproducible: map iteration order must
	// never leak into the event sequence.
	for _, seq := range sortedKeys(p.registered) {
		p.unregister(seq)
	}
	if !p.inDHT {
		if p.coordinator != simnet.Invalid {
			p.send(p.coordinator, kDetach, nil)
		}
		return
	}
	succ := p.cs.Successor()
	pred := p.cs.Predecessor()
	if succ.Addr != p.id {
		// (1) Redirect lower-tier clients to our ring neighbors, half each.
		p.redirectClients(succ, pred)
		// (2) Transfer every index entry to the successor, the new owner of
		// our key range under the DHT file-assignment policy.
		all := p.exportEntries(func(chord.ID) bool { return true })
		if len(all) > 0 {
			p.send(succ.Addr, kHandoff, &handoffMsg{Entries: all})
		}
		// (3) Standard Chord leave: link predecessor and successor.
		p.send(succ.Addr, kLeave, &leaveMsg{From: p.entry(), NewPred: pred})
		if pred.OK && pred.Addr != p.id {
			p.send(pred.Addr, kLeave, &leaveMsg{From: p.entry(), NewSucc: p.cs.SuccessorList()})
		}
	}
}

func (p *Peer) onLeave(m *leaveMsg) {
	if m.NewPred.OK || m.NewSucc == nil {
		// Sent to the successor: our predecessor left.
		if pr := p.cs.Predecessor(); pr.OK && pr.Addr == m.From.Addr {
			p.cs.SetPredecessor(m.NewPred)
		}
	}
	if m.NewSucc != nil {
		// Sent to the predecessor: our successor left.
		p.cs.RemoveFailed(m.From.Addr)
		if len(m.NewSucc) > 0 {
			filtered := m.NewSucc[:0]
			for _, e := range m.NewSucc {
				if e.Addr != m.From.Addr && e.Addr != p.id {
					filtered = append(filtered, e)
				}
			}
			if len(filtered) > 0 {
				p.cs.AdoptSuccessorList(filtered[0], filtered[1:])
			}
		}
	}
}
