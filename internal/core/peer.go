package core

import (
	"time"

	"dco/internal/chord"
	"dco/internal/sim"
	"dco/internal/simnet"
	"dco/internal/stream"
)

// Peer is one DCO node. Every peer is simultaneously a viewer (fetching
// chunks per Algorithm 1), a provider (serving chunks it buffered), and —
// when it is a DHT member — a coordinator for the chunk IDs it owns.
type Peer struct {
	sys *System
	id  simnet.NodeID
	cs  *chord.State[simnet.NodeID]

	isSource bool // the streaming server
	alive    bool
	joined   bool // DHT position established (or attached, in hierarchy mode)
	inDHT    bool // upper tier member
	wantDHT  bool // a promoted/volunteering node joining the upper tier
	joinAt   time.Duration

	upBps, downBps int64

	// Viewer state.
	buf        *stream.BufferMap
	startSeq   int64 // first chunk this node is expected to receive
	cursor     int64 // first potentially-missing sequence
	ft         *stream.FailureTracker
	fetches    map[int64]*fetch
	registered map[int64]bool

	// Coordinator state.
	index map[int64]*indexEntry

	// Hierarchy (two-tier) state.
	coordinator simnet.NodeID          // upper-tier contact for a lower-tier client
	coordFails  int                    // consecutive unanswered proxy lookups
	clients     map[simnet.NodeID]bool // lower-tier clients attached to this coordinator
	opsThisSec  int                    // coordinator load, reset each second
	overloaded  bool

	playback playbackState

	// Maintenance state.
	stabWaiting bool
	stabTarget  simnet.NodeID
	predWaiting bool
	predTarget  simnet.NodeID
	listProbes  map[simnet.NodeID]bool // outstanding deep successor-list pings

	tickers []*sim.Ticker
}

func newPeer(sys *System, id simnet.NodeID, cid chord.ID, upBps, downBps int64) *Peer {
	self := entry{ID: cid, Addr: id, OK: true}
	return &Peer{
		sys:         sys,
		id:          id,
		cs:          chord.NewState(self, sys.Cfg.Neighbors),
		upBps:       upBps,
		downBps:     downBps,
		buf:         stream.NewBufferMap(0),
		ft:          stream.NewFailureTracker(0.1),
		fetches:     make(map[int64]*fetch),
		registered:  make(map[int64]bool),
		index:       make(map[int64]*indexEntry),
		coordinator: simnet.Invalid,
		clients:     make(map[simnet.NodeID]bool),
	}
}

// ID returns the peer's network identity.
func (p *Peer) ID() simnet.NodeID { return p.id }

// ChordID returns the peer's position on the identifier circle.
func (p *Peer) ChordID() chord.ID { return p.cs.Self.ID }

// Alive reports liveness.
func (p *Peer) Alive() bool { return p.alive }

// InDHT reports upper-tier membership.
func (p *Peer) InDHT() bool { return p.inDHT }

// HasChunk reports whether the peer buffered chunk seq.
func (p *Peer) HasChunk(seq int64) bool { return p.buf.Has(seq) }

// ChunkCount returns how many chunks the peer holds.
func (p *Peer) ChunkCount() int { return p.buf.Count() }

// FailureProb exposes the node's p_f estimate (drives Eq. 2).
func (p *Peer) FailureProb() float64 { return p.ft.Prob() }

// PrefetchWindow returns the node's current adaptive window size.
func (p *Peer) PrefetchWindow() int {
	return p.sys.Cfg.Prefetch.Window(p.downBps, p.ft.Prob())
}

func (p *Peer) entry() entry { return p.cs.Self }

func (p *Peer) send(to simnet.NodeID, kind string, payload any) {
	p.sys.Net.Send(p.id, to, kind, payload)
}

// HandleMessage dispatches every message addressed to this peer.
func (p *Peer) HandleMessage(m *simnet.Message) {
	if !p.alive {
		return
	}
	switch m.Kind {
	case kLookup:
		p.routeLookup(m.Payload.(*lookupMsg))
	case kLookupResp:
		p.onLookupResp(m.Payload.(*lookupResp))
	case kInsert:
		p.routeInsert(m.Payload.(*insertMsg))
	case kGet:
		p.onGet(m.Payload.(*getMsg))
	case kGetNack:
		p.onGetNack(m.From, m.Payload.(*getNack))
	case kChunk:
		p.onChunk(m.From, m.Payload.(*chunkMsg))
	case kFail:
		p.onFail(m.Payload.(*failMsg))
	case kFind:
		p.routeFind(m.Payload.(*findMsg))
	case kFindResp:
		p.onFindResp(m.Payload.(*findResp))
	case kBootstrap:
		p.onBootstrap(m.From)
	case kBootstrapR:
		p.onBootstrapResp(m.Payload.(*bootstrapResp))
	case kStabQ:
		p.onStabQ(m.Payload.(*stabQ))
	case kStabR:
		p.onStabR(m.From, m.Payload.(*stabR))
	case kPredQ:
		p.send(m.From, kPredR, nil)
	case kPredR:
		if p.predWaiting && p.predTarget == m.From {
			p.predWaiting = false
		}
		delete(p.listProbes, m.From)
	case kNotify:
		p.onNotify(m.Payload.(*notifyMsg))
	case kHandoff:
		p.onHandoff(m.Payload.(*handoffMsg))
	case kLeave:
		p.onLeave(m.Payload.(*leaveMsg))
	case kAttach:
		p.onAttach(m.Payload.(*attachMsg))
	case kAttachOK:
		p.onAttachOK(m.From)
	case kDetach:
		delete(p.clients, m.From)
	case kProxyLookup:
		p.onProxyLookup(m.Payload.(*proxyLookup))
	case kProxyInsert:
		p.onProxyInsert(m.Payload.(*proxyInsert))
	case kVolunteer:
		p.onVolunteer(m.Payload.(*volunteerMsg))
	case kPromote:
		p.onPromote(m.Payload.(*promoteMsg))
	case kRedirect:
		p.onRedirect(m.Payload.(*redirectMsg))
	}
}

// ---------------------------------------------------------------------------
// Viewer: the chunk-sharing client loop (Algorithm 1, lines 1–9).

// tick is the fetch scheduler: it keeps up to MaxParallelFetch chunk
// acquisitions in flight inside the adaptive prefetching window.
func (p *Peer) tick() {
	if !p.alive || p.isSource || !p.joined {
		return
	}
	cfg := &p.sys.Cfg
	latest := cfg.Stream.SeqAt(p.sys.K.Now())
	if latest < p.startSeq {
		return
	}
	if p.cursor < p.startSeq {
		p.cursor = p.startSeq
	}
	for p.cursor <= latest && p.buf.Has(p.cursor) {
		p.cursor++
	}
	win := int64(cfg.Prefetch.Window(p.downBps, p.ft.Prob()))
	hi := p.cursor + win - 1
	if hi > latest {
		hi = latest
	}
	free := cfg.MaxParallelFetch - len(p.fetches)
	if free <= 0 {
		return
	}
	var missing []int64
	for seq := p.cursor; seq <= hi; seq++ {
		if !p.buf.Has(seq) && p.fetches[seq] == nil {
			missing = append(missing, seq)
		}
	}
	if len(missing) == 0 {
		return
	}
	// One slot always chases the most urgent (oldest) missing chunk; the
	// remaining slots pick randomly across the prefetching window. The
	// random spread keeps system-wide demand from piling onto the newest
	// chunk, whose provider population is still small — the same reason
	// swarming protocols randomize piece selection.
	p.startFetch(missing[0])
	missing = missing[1:]
	free--
	for free > 0 && len(missing) > 0 {
		i := p.sys.K.Rand().Intn(len(missing))
		p.startFetch(missing[i])
		missing[i] = missing[len(missing)-1]
		missing = missing[:len(missing)-1]
		free--
	}
}

func (p *Peer) startFetch(seq int64) {
	f := &fetch{seq: seq, phase: phaseLookup, started: p.sys.K.Now()}
	p.fetches[seq] = f
	p.sendLookup(f)
}

// sendLookup issues (or reissues) the Lookup(ID) for a fetch. Lower-tier
// clients proxy through their coordinator (§III-B1b); DHT members route the
// query themselves starting locally.
func (p *Peer) sendLookup(f *fetch) {
	f.attempts++
	p.sys.Counters.Lookups++
	cfg := &p.sys.Cfg
	if p.inDHT {
		msg := &lookupMsg{Key: cfg.Stream.Ref(f.seq).ID(), Seq: f.seq, Origin: p.id}
		p.routeLookup(msg)
	} else {
		if p.coordinator == simnet.Invalid {
			// Detached client (coordinator died): re-bootstrap, retry later.
			p.send(p.sys.server.id, kBootstrap, nil)
		} else {
			p.send(p.coordinator, kProxyLookup, &proxyLookup{Seq: f.seq, Origin: p.id})
		}
	}
	seq := f.seq
	f.setTimeout(p.sys.K, cfg.LookupTimeout, func() { p.onLookupTimeout(seq) })
}

func (p *Peer) onLookupTimeout(seq int64) {
	f := p.fetches[seq]
	if f == nil || f.phase != phaseLookup || !p.alive {
		return
	}
	// The coordinator (or the route to it) failed; count it toward p_f and
	// retry — stabilization will have repaired the ring by the next attempt.
	p.sys.Counters.LookupTimeouts++
	p.ft.Record(true)
	if !p.inDHT && p.coordinator != simnet.Invalid {
		// A lower-tier client that keeps hearing nothing concludes its
		// coordinator failed and asks the server for a new one (§III-B1b
		// "Node Failure").
		p.coordFails++
		if p.coordFails >= 2 {
			p.coordFails = 0
			p.coordinator = simnet.Invalid
			p.joined = false
		}
	}
	p.sendLookup(f)
}

func (p *Peer) onLookupResp(r *lookupResp) {
	f := p.fetches[r.Seq]
	p.coordFails = 0
	if f == nil || f.phase != phaseLookup {
		return // stale answer (chunk already obtained or re-looked-up)
	}
	if !r.OK {
		seq := r.Seq
		if r.Queued {
			// Parked in the coordinator's pending queue; it will answer
			// when a provider registers. Keep a slow re-lookup timer as
			// insurance against the coordinator dying with our queue slot.
			f.coord = r.Coord
			f.setTimeout(p.sys.K, 2*p.sys.Cfg.LookupTimeout, func() { p.onLookupTimeout(seq) })
			return
		}
		// No provider registered yet and the coordinator doesn't queue
		// (ablation mode): back off and re-ask.
		f.setTimeout(p.sys.K, p.sys.Cfg.RetryInterval, func() {
			if ff := p.fetches[seq]; ff != nil && ff.phase == phaseLookup && p.alive {
				p.sendLookup(ff)
			}
		})
		return
	}
	f.phase = phaseGet
	f.provider = r.Provider
	f.coord = r.Coord
	if !p.sys.Net.TrySend(p.id, r.Provider, kGet, &getMsg{Seq: r.Seq, From: p.id}) {
		// Dead provider detected at connect time: report and re-ask now
		// instead of burning the fetch timeout.
		p.ft.Record(true)
		p.reportProviderProblem(f, false)
		return
	}
	seq := r.Seq
	f.setTimeout(p.sys.K, p.sys.Cfg.FetchTimeout, func() { p.onFetchTimeout(seq) })
}

func (p *Peer) onFetchTimeout(seq int64) {
	f := p.fetches[seq]
	if f == nil || f.phase != phaseGet || !p.alive {
		return
	}
	p.ft.Record(true)
	p.sys.Counters.FetchTimeouts++
	p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "fetch.timeout", "seq=%d provider=%d", seq, f.provider)
	// A first timeout usually means congestion (the chunk is queued behind
	// other transfers), so report "busy" and try another provider without
	// evicting this one; a repeat timeout means the provider is dead.
	busy := f.ntimeouts == 0
	f.ntimeouts++
	p.reportProviderProblem(f, busy)
}

func (p *Peer) onGetNack(from simnet.NodeID, n *getNack) {
	f := p.fetches[n.Seq]
	if f == nil || f.phase != phaseGet || f.provider != from {
		return
	}
	if n.Busy {
		p.sys.Counters.BusyNacks++
	} else {
		p.sys.Counters.MissingNacks++
		p.ft.Record(true)
	}
	p.reportProviderProblem(f, n.Busy)
}

// reportProviderProblem tells the chunk's coordinator the provider failed
// (or is saturated) and waits for a replacement — the coordinator answers a
// kFail exactly like a fresh lookup (§III-B1b "Node Failure").
func (p *Peer) reportProviderProblem(f *fetch, busy bool) {
	p.send(f.coord, kFail, &failMsg{Seq: f.seq, Provider: f.provider, Origin: p.id, Busy: busy})
	f.phase = phaseLookup
	f.provider = simnet.Invalid
	seq := f.seq
	f.setTimeout(p.sys.K, p.sys.Cfg.LookupTimeout, func() { p.onLookupTimeout(seq) })
}

// onGet serves a chunk request if the chunk is buffered (Algorithm 1,
// lines 10–14); the bandwidth model in simnet provides the "idle bandwidth"
// queueing behavior.
func (p *Peer) onGet(g *getMsg) {
	if !p.buf.Has(g.Seq) {
		p.send(g.From, kGetNack, &getNack{Seq: g.Seq})
		return
	}
	// Admission control: coordinators only know the bandwidth we reported
	// at insert time, which can be stale across many chunk entries. If our
	// uplink queue already exceeds the limit, turn the requester away as
	// "busy" rather than letting the transfer crawl past its fetch timeout.
	queued := p.sys.Net.UploadBusyUntil(p.id) - p.sys.K.Now()
	if queued > p.sys.Cfg.BusyQueueLimit {
		p.send(g.From, kGetNack, &getNack{Seq: g.Seq, Busy: true})
		return
	}
	p.sys.Net.SendData(p.id, g.From, kChunk, &chunkMsg{Seq: g.Seq}, p.sys.Cfg.Stream.ChunkBits)
}

func (p *Peer) onChunk(from simnet.NodeID, c *chunkMsg) {
	first := !p.buf.Has(c.Seq)
	p.buf.Set(c.Seq)
	if f := p.fetches[c.Seq]; f != nil {
		f.clearTimeout()
		delete(p.fetches, c.Seq)
		p.ft.Record(false)
		p.sys.Counters.FetchLatency += p.sys.K.Now() - f.started
		p.sys.Counters.FetchCount++
	}
	if first {
		p.sys.Log.Received(p.id, c.Seq, p.sys.K.Now())
		p.sys.noteReceived()
		p.sys.Trace.Recordf(p.sys.K.Now(), int64(p.id), "fetch.done", "seq=%d from=%d", c.Seq, from)
		p.register(c.Seq)
		// Immediately pull the next window entry rather than waiting a tick.
		p.tick()
	}
	_ = from
}

// register announces this node as a provider of seq: Insert(ID, index) into
// the DHT (Algorithm 1, line 8).
func (p *Peer) register(seq int64) {
	if p.registered[seq] {
		return
	}
	p.registered[seq] = true
	idx := ChunkIndex{Holder: p.id, UpBps: p.upBps, BufferCount: p.buf.Count()}
	if p.inDHT {
		p.routeInsert(&insertMsg{Key: p.sys.Cfg.Stream.Ref(seq).ID(), Seq: seq, Index: idx})
	} else if p.coordinator != simnet.Invalid {
		p.send(p.coordinator, kProxyInsert, &proxyInsert{Seq: seq, Index: idx})
	}
}

// unregister removes this node's provider records on graceful departure.
func (p *Peer) unregister(seq int64) {
	idx := ChunkIndex{Holder: p.id}
	if p.inDHT {
		p.routeInsert(&insertMsg{Key: p.sys.Cfg.Stream.Ref(seq).ID(), Seq: seq, Index: idx, Unregister: true})
	} else if p.coordinator != simnet.Invalid {
		p.send(p.coordinator, kProxyInsert, &proxyInsert{Seq: seq, Index: idx, Unregister: true})
	}
}

// generate is the server's chunk production step: buffer the new chunk and
// insert its index into the DHT (§III-B2: "when a video server generates a
// new chunk ... it stores the index of the new chunk in the DHT").
func (p *Peer) generate(seq int64) {
	if !p.alive {
		return
	}
	p.buf.Set(seq)
	p.sys.Log.Generated(seq, p.sys.K.Now())
	p.register(seq)
}

func (f *fetch) setTimeout(k *sim.Kernel, d time.Duration, fn func()) {
	f.clearTimeout()
	f.timeout = k.After(d, fn)
}

func (f *fetch) clearTimeout() {
	if f.timeout != nil {
		f.timeout.Cancel()
		f.timeout = nil
	}
}
