package core

import (
	"time"

	"dco/internal/chord"
	"dco/internal/simnet"
)

// Message kinds on the simulated wire. Each Send of one of these counts as
// one unit of "extra overhead" (paper metric 3); only kChunk is a data
// message and exempt.
const (
	kLookup     = "dco.lookup"      // routed Lookup(ID) for a chunk provider
	kLookupResp = "dco.lookup.resp" // coordinator -> requester
	kInsert     = "dco.insert"      // routed Insert(ID, index) / unregister
	kGet        = "dco.get"         // requester -> provider chunk request
	kGetNack    = "dco.get.nack"    // provider lacks the chunk
	kChunk      = "dco.chunk"       // provider -> requester (data)
	kFail       = "dco.fail"        // requester -> coordinator: provider failed
	kFind       = "dco.find"        // routed owner discovery (join, fix-fingers)
	kFindResp   = "dco.find.resp"
	kBootstrap  = "dco.bootstrap"      // newcomer -> server
	kBootstrapR = "dco.bootstrap.resp" // server -> newcomer: a coordinator to use
	kStabQ      = "dco.stab.q"         // stabilization probe to successor
	kStabR      = "dco.stab.r"
	kPredQ      = "dco.pred.q" // check_predecessor probe
	kPredR      = "dco.pred.r"
	kNotify     = "dco.notify"
	kHandoff    = "dco.handoff" // index-entry transfer (leave, join, notify)
	kLeave      = "dco.leave"   // graceful DHT departure notice

	// Hierarchical lower tier (§III-B1b).
	kAttach      = "dco.attach"       // client -> coordinator: become my upper-tier contact
	kAttachOK    = "dco.attach.ok"    //
	kProxyLookup = "dco.proxy.lookup" // client -> coordinator -> DHT
	kProxyInsert = "dco.proxy.insert"
	kDetach      = "dco.detach"    // client leaves its coordinator
	kVolunteer   = "dco.volunteer" // stable client offers to join the DHT
	kPromote     = "dco.promote"   // overloaded coordinator accepts the offer
	kRedirect    = "dco.redirect"  // departing coordinator points clients elsewhere
)

type entry = chord.Entry[simnet.NodeID]

// ChunkIndex is one row of a coordinator's index table (paper Fig. 3): the
// chunk's holder, the holder's buffer-map summary and its bandwidth.
type ChunkIndex struct {
	Holder      simnet.NodeID
	UpBps       int64
	BufferCount int // holder's buffer-map population at insert time
}

type lookupMsg struct {
	Key    chord.ID
	Seq    int64
	Origin simnet.NodeID
	Hops   int
}

type lookupResp struct {
	Seq      int64
	Provider simnet.NodeID
	Coord    simnet.NodeID // who answered, for failure notices
	OK       bool
	Queued   bool // no provider yet; the coordinator holds the request
}

type insertMsg struct {
	Key        chord.ID
	Seq        int64
	Index      ChunkIndex
	Unregister bool
	Hops       int
}

type getMsg struct {
	Seq  int64
	From simnet.NodeID
}

type getNack struct {
	Seq  int64
	Busy bool // provider alive but uplink saturated; do not evict it
}

type chunkMsg struct{ Seq int64 }

type failMsg struct {
	Seq      int64
	Provider simnet.NodeID
	Origin   simnet.NodeID
	Busy     bool // overload report, not a death report
}

type findMsg struct {
	Key    chord.ID
	Origin simnet.NodeID
	Tag    int64 // >=0: finger index; tagJoin: a join
	Hops   int
}

type findResp struct {
	Tag   int64
	Owner entry
	Succs []entry
	Pred  entry
}

const tagJoin = int64(-1)

type bootstrapResp struct {
	Coordinator entry
}

type stabQ struct{ From entry }

type stabR struct {
	Pred entry
	List []entry
}

type notifyMsg struct{ From entry }

type handoffEntry struct {
	Seq       int64
	Key       chord.ID
	Providers []ChunkIndex
	Pending   []simnet.NodeID
}

type handoffMsg struct{ Entries []handoffEntry }

type leaveMsg struct {
	From    entry
	NewPred entry   // set when sent to the successor
	NewSucc []entry // set when sent to the predecessor
}

type attachMsg struct{ From simnet.NodeID }

type proxyLookup struct {
	Seq    int64
	Origin simnet.NodeID
}

type proxyInsert struct {
	Seq        int64
	Index      ChunkIndex
	Unregister bool
}

type volunteerMsg struct {
	From      entry
	Longevity float64
}

type promoteMsg struct {
	Sponsor entry // the coordinator the newcomer should join through
}

type redirectMsg struct {
	Coordinators []entry
}

// fetchPhase tracks a client-side fetch state machine.
type fetchPhase int

const (
	phaseLookup fetchPhase = iota // waiting for a lookupResp
	phaseGet                      // waiting for the chunk from a provider
)

// fetch is one in-flight chunk acquisition.
type fetch struct {
	seq       int64
	phase     fetchPhase
	provider  simnet.NodeID
	coord     simnet.NodeID
	attempts  int
	ntimeouts int // provider timeouts on this fetch; first is treated as congestion
	started   time.Duration
	timeout   interface{ Cancel() }
}
