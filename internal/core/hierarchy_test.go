package core

import (
	"testing"
	"time"

	"dco/internal/sim"
)

func hierConfig() Config {
	cfg := DefaultConfig()
	cfg.Stream.Count = 12
	cfg.Neighbors = 8
	cfg.Hierarchy.Enabled = true
	cfg.Hierarchy.InitialCoordinators = 6
	cfg.Maintenance = true
	return cfg
}

func TestHierarchyDelivers(t *testing.T) {
	cfg := hierConfig()
	k := sim.NewKernel(41)
	s := NewSystem(k, cfg, 48)
	s.Run(300 * time.Second)
	if got, want := s.ReceivedTotal(), int64(47*cfg.Stream.Count); got != want {
		t.Fatalf("two-tier delivery incomplete: %d/%d", got, want)
	}
	// Only the configured upper tier should be in the DHT.
	if n := len(s.Coordinators()); n != 7 { // server + 6
		t.Fatalf("coordinators = %d, want 7", n)
	}
}

func TestHierarchyClientsProxy(t *testing.T) {
	cfg := hierConfig()
	k := sim.NewKernel(43)
	s := NewSystem(k, cfg, 48)
	s.Run(300 * time.Second)
	by := s.Net.OverheadByKind()
	if by[kProxyLookup] == 0 || by[kProxyInsert] == 0 {
		t.Fatalf("no proxy traffic observed: %v", by)
	}
	// Clients' chord state should remain tiny (they are not ring members).
	for _, p := range s.Peers() {
		if !p.inDHT && p.Alive() {
			if len(p.cs.Neighbors()) > 0 {
				t.Fatalf("lower-tier client %d has ring neighbors", p.ID())
			}
		}
	}
}

func TestOverloadPromotesStableClient(t *testing.T) {
	cfg := hierConfig()
	// Very low overload threshold: the coordinators are overloaded from the
	// first second, and stable clients volunteer early.
	cfg.Hierarchy.OverloadOpsPerSec = 1
	cfg.Hierarchy.LongevityThreshold = 0.5
	cfg.Hierarchy.EvalEvery = 2 * time.Second
	cfg.Stream.Count = 40
	k := sim.NewKernel(47)
	s := NewSystem(k, cfg, 48)
	s.Run(400 * time.Second)
	if got := len(s.Coordinators()); got <= 7 {
		t.Fatalf("no promotions happened: coordinators = %d", got)
	}
	// Promoted nodes must actually serve index traffic.
	promotedWithIndex := 0
	for _, p := range s.Coordinators() {
		if !p.isSource && p.IndexSize() > 0 {
			promotedWithIndex++
		}
	}
	if promotedWithIndex == 0 {
		t.Fatal("promoted coordinators hold no index entries")
	}
}

func TestCoordinatorDepartureRedirectsClients(t *testing.T) {
	cfg := hierConfig()
	k := sim.NewKernel(53)
	s := NewSystem(k, cfg, 48)
	s.DisableCompletionStop()
	// Gracefully remove one non-server coordinator mid-stream.
	k.At(3*time.Second, func() {
		for _, p := range s.Coordinators() {
			if !p.isSource && p.ClientCount() > 0 {
				p.Depart(true)
				return
			}
		}
		t.Error("no coordinator with clients found")
	})
	s.Run(300 * time.Second)
	// All surviving viewers still complete the stream.
	for _, p := range s.Peers() {
		if !p.Alive() || p.isSource {
			continue
		}
		for seq := int64(0); seq < cfg.Stream.Count; seq++ {
			if !p.HasChunk(seq) {
				t.Fatalf("viewer %d missing chunk %d after coordinator left", p.ID(), seq)
			}
		}
	}
}

func TestCoordinatorFailureReattachesClients(t *testing.T) {
	// Every possible victim: whichever coordinator dies abruptly, its
	// clients must re-bootstrap and finish the stream.
	for victim := 0; victim < 6; victim++ {
		victim := victim
		cfg := hierConfig()
		k := sim.NewKernel(59)
		s := NewSystem(k, cfg, 48)
		s.DisableCompletionStop()
		k.At(3*time.Second, func() {
			nonServer := 0
			for _, p := range s.Coordinators() {
				if p.isSource {
					continue
				}
				if nonServer == victim {
					p.Depart(false) // abrupt death
					return
				}
				nonServer++
			}
		})
		s.Run(400 * time.Second)
		incomplete := 0
		for _, p := range s.Peers() {
			if !p.Alive() || p.isSource {
				continue
			}
			for seq := int64(0); seq < cfg.Stream.Count; seq++ {
				if !p.HasChunk(seq) {
					incomplete++
					break
				}
			}
		}
		if incomplete > 0 {
			t.Fatalf("victim %d: %d viewers never recovered from the coordinator failure", victim, incomplete)
		}
	}
}

func TestLongevityGrowsWithAge(t *testing.T) {
	cfg := hierConfig()
	k := sim.NewKernel(61)
	s := NewSystem(k, cfg, 16)
	var early, late float64
	p := s.Peers()[5]
	k.At(2*time.Second, func() { early = p.Longevity() })
	k.At(60*time.Second, func() { late = p.Longevity() })
	s.DisableCompletionStop()
	s.Run(70 * time.Second)
	if late <= early {
		t.Fatalf("longevity did not grow with session age: %f -> %f", early, late)
	}
}
