package core

import (
	"testing"
	"time"
)

// TestSmokeDissemination is the basic sanity check: a small static DCO
// network delivers every chunk to every viewer.
func TestSmokeDissemination(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Count = 10
	cfg.Neighbors = 8
	k := newKernelForTest()
	s := NewSystem(k, cfg, 32)
	end := s.Run(120 * time.Second)

	if got, want := s.ReceivedTotal(), int64(31*10); got != want {
		t.Fatalf("received %d chunk deliveries, want %d (ended at %v, overhead %d, dropped %d)",
			got, want, end, s.Net.Overhead(), s.DroppedRoutes())
	}
	mean, complete, total := s.Log.MeshDelay()
	t.Logf("end=%v meshDelay=%v complete=%d/%d overhead=%d", end, mean, complete, total, s.Net.Overhead())
	if complete != total {
		t.Fatalf("only %d/%d chunks reached everyone", complete, total)
	}
}
