package core

import (
	"testing"
	"time"

	"dco/internal/churn"
	"dco/internal/simnet"
)

// TestChurnRingHeals drives heavy churn (mean life 60 s, stationary
// arrivals) and asserts both delivery and ring-repair health: the paper's
// claim that DCO keeps chunk availability through node dynamics.
func TestChurnRingHeals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Count = 100
	cfg.Neighbors = 16
	cfg.Maintenance = true
	k := newKernelForTest()
	s := NewSystem(k, cfg, 128)
	s.DisableCompletionStop()
	d := churn.NewDriver(k, churn.Config{MeanLife: 60 * time.Second, MeanJoin: 60 * time.Second / 127, GracefulFrac: 0.5},
		func() churn.Peer { return s.SpawnPeer() })
	for _, p := range s.Peers() {
		if p.Alive() && p.ID() != s.Server().ID() {
			d.Track(p)
		}
	}
	d.StartArrivals()
	s.Run(200 * time.Second)

	if pct := s.Log.ReceivedPercent(200 * time.Second); pct < 75 {
		t.Fatalf("delivery under churn %.2f%%, want >= 75%%", pct)
	}
	// Ring health: most live ring members point at a live successor.
	deadSucc, joined := 0, 0
	for _, p := range s.Peers() {
		if !p.alive || !p.joined || !p.inDHT {
			continue
		}
		joined++
		succ := p.cs.Successor()
		if succ.Addr != p.id {
			if q := s.Peer(succ.Addr); q == nil || !q.alive {
				deadSucc++
			}
		}
	}
	if joined == 0 || deadSucc > joined/4 {
		t.Fatalf("ring unhealthy: %d/%d members have dead successors", deadSucc, joined)
	}
	if s.Net.DroppedDead() == 0 {
		t.Fatal("suspicious: churn run without any message loss")
	}
	_ = simnet.Invalid
}
