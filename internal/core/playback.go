package core

import (
	"time"
)

// Playback modeling: the paper's motivation is viewer QoS ("image freezes
// and poor resolution"), so the simulator can drive a playhead over each
// viewer's buffer and report startup delay and continuity — the
// user-visible counterparts of mesh delay and fill ratio.

// PlaybackConfig enables playhead simulation on every viewer.
type PlaybackConfig struct {
	Enabled bool
	// StartupChunks is how many consecutive chunks (from the viewer's
	// first expected sequence) must be buffered before playback starts —
	// the initial buffering spinner.
	StartupChunks int
}

// playbackState tracks one viewer's playhead.
type playbackState struct {
	playing   bool
	playhead  int64
	startedAt time.Duration
	played    int64
	stalls    int64
}

// playbackTick advances the playhead one chunk interval: play if buffered,
// stall otherwise. It starts playing only after the startup buffer fills.
func (p *Peer) playbackTick() {
	if !p.alive || p.isSource {
		return
	}
	pb := &p.playback
	if !pb.playing {
		need := p.sys.Cfg.Playback.StartupChunks
		if need < 1 {
			need = 1
		}
		run := 0
		for p.buf.Has(p.startSeq + int64(run)) {
			run++
			if run >= need {
				break
			}
		}
		if run < need {
			return // still buffering; not a stall (playback never started)
		}
		pb.playing = true
		pb.playhead = p.startSeq
		pb.startedAt = p.sys.K.Now()
	}
	if pb.playhead >= p.sys.Cfg.Stream.Count {
		return // stream over
	}
	// Nothing to play yet if the stream has not produced this chunk.
	if p.sys.Cfg.Stream.GenerationTime(pb.playhead) > p.sys.K.Now() {
		return
	}
	if p.buf.Has(pb.playhead) {
		pb.playhead++
		pb.played++
	} else {
		pb.stalls++
	}
}

// StartupDelay returns how long the viewer buffered before playback began
// (0, false while still buffering).
func (p *Peer) StartupDelay() (time.Duration, bool) {
	if !p.playback.playing {
		return 0, false
	}
	start := p.joinAt
	return p.playback.startedAt - start, true
}

// ContinuityIndex is played/(played+stalls) — 1.0 is a freeze-free viewing
// session.
func (p *Peer) ContinuityIndex() float64 {
	total := p.playback.played + p.playback.stalls
	if total == 0 {
		return 1
	}
	return float64(p.playback.played) / float64(total)
}

// PlaybackStats returns chunks played and stall ticks.
func (p *Peer) PlaybackStats() (played, stalls int64) {
	return p.playback.played, p.playback.stalls
}

// QoSSummary aggregates viewer experience across the system.
type QoSSummary struct {
	Viewers        int
	Playing        int           // viewers whose playback started
	MeanStartup    time.Duration // mean startup delay over playing viewers
	MeanContinuity float64       // mean continuity index over playing viewers
	TotalStalls    int64
}

// QoS computes the summary at the current virtual time (zero-valued when
// playback simulation is disabled).
func (s *System) QoS() QoSSummary {
	var out QoSSummary
	var startupSum time.Duration
	var contSum float64
	for _, p := range s.Peers() {
		if p.isSource || p.joinAt > 0 && !p.alive && p.playback.played == 0 {
			continue
		}
		if p.isSource {
			continue
		}
		out.Viewers++
		if d, ok := p.StartupDelay(); ok {
			out.Playing++
			startupSum += d
			contSum += p.ContinuityIndex()
		}
		_, stalls := p.PlaybackStats()
		out.TotalStalls += stalls
	}
	if out.Playing > 0 {
		out.MeanStartup = startupSum / time.Duration(out.Playing)
		out.MeanContinuity = contSum / float64(out.Playing)
	}
	return out
}
