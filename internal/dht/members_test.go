package dht

import (
	"testing"
	"time"
)

func at(s int) time.Time { return time.Unix(int64(s), 0) }

func mm(id uint64, addr string) Member { return Member{ID: id, Addr: addr} }

func TestMemberCacheNeverStoresSelf(t *testing.T) {
	c := NewMemberCache("a", 4)
	c.Note(mm(100, "a"), at(0)) // self
	c.Note(mm(5, ""), at(0))    // empty address
	if c.Len() != 0 {
		t.Fatalf("cache stored self or an empty entry: len=%d", c.Len())
	}
}

func TestMemberCacheDedupesByAddr(t *testing.T) {
	c := NewMemberCache("a", 4)
	c.Note(mm(100, "b"), at(1))
	c.Note(mm(100, "b"), at(2))
	c.Note(mm(777, "b"), at(3)) // same addr, new ID: refresh, not grow
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	m := c.Members()
	if len(m) != 1 || m[0].ID != 777 {
		t.Fatalf("members = %v, want single entry with refreshed ID 777", m)
	}
}

func TestMemberCacheEvictsOldestSeen(t *testing.T) {
	c := NewMemberCache("a", 3)
	c.Note(mm(10, "b"), at(10))
	c.Note(mm(20, "c"), at(20))
	c.Note(mm(30, "d"), at(30))
	// Refresh the oldest so it is no longer the eviction victim.
	c.Note(mm(10, "b"), at(40))
	// Insert beyond capacity: addr "c" (seen at 20) must go.
	c.Note(mm(50, "e"), at(50))
	if c.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", c.Len())
	}
	for _, m := range c.Members() {
		if m.Addr == "c" {
			t.Fatal("oldest-seen member (addr c) survived eviction")
		}
	}
	found := false
	for _, m := range c.Members() {
		if m.Addr == "b" {
			found = true
		}
	}
	if !found {
		t.Fatal("refreshed member (addr b) was evicted despite newest sighting")
	}
}

func TestMemberCacheMembersSortedByID(t *testing.T) {
	c := NewMemberCache("a", 8)
	for _, m := range []Member{mm(300, "b"), mm(100, "c"), mm(200, "d")} {
		c.Note(m, at(0))
	}
	got := c.Members()
	if len(got) != 3 || got[0].ID != 100 || got[1].ID != 200 || got[2].ID != 300 {
		t.Fatalf("members not sorted by ID: %v", got)
	}
}

func TestMemberCacheForget(t *testing.T) {
	c := NewMemberCache("a", 4)
	c.Note(mm(10, "b"), at(0))
	c.Forget("b")
	if c.Len() != 0 {
		t.Fatalf("len after Forget = %d, want 0", c.Len())
	}
}

func TestMemberCacheCapFloor(t *testing.T) {
	c := NewMemberCache("a", 0)
	c.Note(mm(10, "b"), at(0))
	c.Note(mm(20, "c"), at(1))
	if c.Len() != 1 {
		t.Fatalf("capacity floor of 1 not enforced: len=%d", c.Len())
	}
}

func TestIDOfMatchesHashFamily(t *testing.T) {
	// Node identity must be stable across backends and releases: the seed
	// deployments hashed "live-node-"+addr with SHA-1/first-8-bytes.
	if IDOf("x") == IDOf("y") {
		t.Fatal("distinct addresses collided")
	}
	if IDOf("mem://1") != IDOf("mem://1") {
		t.Fatal("IDOf not deterministic")
	}
}
