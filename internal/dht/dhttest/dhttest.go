// Package dhttest is the backend conformance suite for the dht.Kernel
// contract. Every backend must pass it (see conformance_test.go in
// internal/chordkern and internal/kademlia); CI runs it for both, so a
// contract change that only one backend satisfies fails loudly instead of
// surfacing as a live-plane heisenbug.
//
// The suite spins real kernels over a transport.Fabric with a minimal
// host (RPC dispatch, tick loops, immediate failure condemnation — the
// live node's resilience stack boiled down to the parts the contract
// depends on) and checks the properties the live plane leans on:
//
//   - Ownership is total and unique: after convergence every key has
//     exactly one claimant (Owns is how coordinators accept index ops).
//   - ReplicaSet on the owner yields r live, distinct, non-self members
//     (the replication layer's fan-out set).
//   - Lookups from every member converge on the claimant, including
//     after churn kills members (the lookup is how index ops route).
//   - FindOwnerFrom through any member of the same network lands back on
//     the asking node for its own ID (the census split-confirmation
//     soundness property).
package dhttest

import (
	"fmt"
	"testing"
	"time"

	"dco/internal/dht"
	"dco/internal/transport"
	"dco/internal/wire"
)

// Factory builds one kernel for opts. The factory chooses backend tuning
// (tick cadences fast enough for the suite's deadlines).
type Factory func(opts dht.Options) dht.Kernel

// clusterSize is chosen below Kademlia's default K so full-mesh routing
// tables are reachable, and above Chord's conformance successor-list
// size so the ring is not trivially fully connected.
const clusterSize = 8

// sampleKeys is the deterministic key set ownership properties are
// checked over.
func sampleKeys() []uint64 {
	keys := make([]uint64, 48)
	for i := range keys {
		keys[i] = dht.IDOf(fmt.Sprintf("dhttest-key-%d", i))
	}
	return keys
}

// host is the minimal kernel host: fabric endpoint, RPC dispatch, tick
// loops, and a Caller that condemns on any transport failure (fabric
// errors are conclusive — there is no lossy link to excuse).
type host struct {
	kern dht.Kernel
	tr   *transport.Mem
	done chan struct{}
}

func (h *host) Serve(from string, req wire.Message) wire.Message {
	if _, ok := req.(*wire.Ping); ok {
		return &wire.Pong{}
	}
	if h.kern == nil {
		return &wire.Error{Code: wire.CodeShutdown, Msg: "starting"}
	}
	if resp, ok := h.kern.HandleRPC(from, req); ok {
		return resp
	}
	return &wire.Error{Code: wire.CodeBadRequest, Msg: "dhttest: unsupported"}
}

func (h *host) Call(addr string, req wire.Message) (wire.Message, error) {
	resp, err := h.tr.Call(addr, req, 2*time.Second)
	if err != nil {
		h.kern.PeerFailed(addr)
		return nil, err
	}
	if we, ok := resp.(*wire.Error); ok {
		return nil, we
	}
	return resp, nil
}

func (h *host) CallIdem(addr string, req wire.Message) (wire.Message, error) {
	return h.Call(addr, req)
}

func (h *host) start() {
	for _, tk := range h.kern.Ticks() {
		if tk.Every <= 0 {
			continue
		}
		go func(tk dht.Tick) {
			t := time.NewTicker(tk.Every)
			defer t.Stop()
			for {
				select {
				case <-h.done:
					return
				case <-t.C:
					tk.Fn()
				}
			}
		}(tk)
	}
}

func (h *host) close() {
	select {
	case <-h.done:
	default:
		close(h.done)
	}
	_ = h.tr.Close()
}

// cluster builds and converges a clusterSize-member network.
func cluster(t *testing.T, factory Factory) []*host {
	t.Helper()
	f := transport.NewFabric()
	hosts := make([]*host, 0, clusterSize)
	for i := 0; i < clusterSize; i++ {
		h := &host{done: make(chan struct{})}
		h.tr = f.Attach(h)
		h.kern = factory(dht.Options{
			Self:   dht.Member{ID: dht.IDOf(h.tr.Addr()), Addr: h.tr.Addr()},
			Caller: h,
			Done:   h.done,
		})
		if i > 0 {
			if err := h.kern.Join(hosts[0].tr.Addr()); err != nil {
				t.Fatalf("join %d: %v", i, err)
			}
		}
		hosts = append(hosts, h)
	}
	for _, h := range hosts {
		h.start()
	}
	t.Cleanup(func() {
		for _, h := range hosts {
			h.close()
		}
	})
	waitFor(t, 20*time.Second, "ownership to converge", func() bool {
		return ownershipTotalAndUnique(hosts, sampleKeys())
	})
	return hosts
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("dhttest: timeout waiting for %s", what)
}

// ownershipTotalAndUnique reports whether every key has exactly one
// claimant among hosts.
func ownershipTotalAndUnique(hosts []*host, keys []uint64) bool {
	for _, key := range keys {
		claimants := 0
		for _, h := range hosts {
			if h.kern.Owns(key) {
				claimants++
			}
		}
		if claimants != 1 {
			return false
		}
	}
	return true
}

// ownerOf returns the unique claimant, or nil.
func ownerOf(hosts []*host, key uint64) *host {
	var owner *host
	for _, h := range hosts {
		if h.kern.Owns(key) {
			if owner != nil {
				return nil
			}
			owner = h
		}
	}
	return owner
}

// Run executes the conformance suite against the backend factory builds.
func Run(t *testing.T, factory Factory) {
	t.Run("OwnershipTotalAndUnique", func(t *testing.T) {
		hosts := cluster(t, factory)
		// cluster already waited for convergence; assert it holds steadily
		// rather than as a single lucky sample.
		for round := 0; round < 3; round++ {
			if !ownershipTotalAndUnique(hosts, sampleKeys()) {
				t.Fatalf("ownership not total and unique on settled round %d", round)
			}
			time.Sleep(50 * time.Millisecond)
		}
	})

	t.Run("OwnerReplicaSetLiveDistinct", func(t *testing.T) {
		hosts := cluster(t, factory)
		const r = 3
		live := map[string]bool{}
		for _, h := range hosts {
			live[h.tr.Addr()] = true
		}
		for _, key := range sampleKeys() {
			owner := ownerOf(hosts, key)
			if owner == nil {
				t.Fatalf("key %016x has no unique owner", key)
			}
			rs := owner.kern.ReplicaSet(key, r)
			if len(rs) != r {
				t.Fatalf("key %016x: ReplicaSet returned %d members, want %d", key, len(rs), r)
			}
			seen := map[string]bool{}
			for _, m := range rs {
				if m.Addr == owner.tr.Addr() {
					t.Fatalf("key %016x: ReplicaSet includes the owner itself", key)
				}
				if !live[m.Addr] {
					t.Fatalf("key %016x: ReplicaSet includes non-member %s", key, m.Addr)
				}
				if seen[m.Addr] {
					t.Fatalf("key %016x: ReplicaSet repeats %s", key, m.Addr)
				}
				seen[m.Addr] = true
			}
		}
	})

	t.Run("LookupsConvergeOnOwner", func(t *testing.T) {
		hosts := cluster(t, factory)
		for _, key := range sampleKeys()[:16] {
			owner := ownerOf(hosts, key)
			if owner == nil {
				t.Fatalf("key %016x has no unique owner", key)
			}
			for _, h := range hosts {
				got, _, err := h.kern.FindOwner(key)
				if err != nil {
					t.Fatalf("FindOwner(%016x) from %s: %v", key, h.tr.Addr(), err)
				}
				if got.Addr != owner.tr.Addr() {
					t.Fatalf("FindOwner(%016x) from %s = %s, owner claims %s",
						key, h.tr.Addr(), got.Addr, owner.tr.Addr())
				}
			}
		}
	})

	t.Run("LookupsConvergeAfterChurn", func(t *testing.T) {
		hosts := cluster(t, factory)
		// Abrupt kill (no Leave) of two members.
		for _, h := range hosts[len(hosts)-2:] {
			h.close()
		}
		survivors := hosts[:len(hosts)-2]
		keys := sampleKeys()[:16]
		waitFor(t, 20*time.Second, "ownership to re-converge after churn", func() bool {
			return ownershipTotalAndUnique(survivors, keys)
		})
		for _, key := range keys {
			owner := ownerOf(survivors, key)
			if owner == nil {
				t.Fatalf("key %016x has no unique owner after churn", key)
			}
			for _, h := range survivors {
				var got dht.Member
				var err error
				// Routing may still be mid-repair on individual survivors;
				// what must hold is that every survivor converges.
				waitFor(t, 10*time.Second, fmt.Sprintf("lookup of %016x from %s to converge", key, h.tr.Addr()), func() bool {
					got, _, err = h.kern.FindOwner(key)
					return err == nil && got.Addr == owner.tr.Addr()
				})
			}
		}
	})

	t.Run("FindOwnerFromLandsHome", func(t *testing.T) {
		hosts := cluster(t, factory)
		for i, h := range hosts {
			via := hosts[(i+1)%len(hosts)]
			self := h.kern.Self()
			owner, _, err := h.kern.FindOwnerFrom(via.tr.Addr(), self.ID)
			if err != nil {
				t.Fatalf("FindOwnerFrom(%s) for %s: %v", via.tr.Addr(), h.tr.Addr(), err)
			}
			if owner.Addr != self.Addr {
				t.Fatalf("confirmation lookup for %s through %s landed on %s; same-network lookups must land home",
					h.tr.Addr(), via.tr.Addr(), owner.Addr)
			}
		}
	})
}
