package dht

import (
	"sort"
	"time"
)

// MemberCache is a bounded memory of previously-seen overlay members, kept
// beside (not inside) a kernel's routing tables. Routing tables forget a
// peer the moment it is purged, which is correct for failure handling but
// fatal for partitions: after a network split heals, maintenance alone can
// never re-merge two self-consistent overlays because neither side retains
// any pointer into the other. The cache deliberately keeps condemned
// members — an unreachable entry is exactly the breadcrumb the census
// needs to rediscover the other half once the partition heals.
//
// It is pure local bookkeeping with no I/O and no locking; the caller
// (internal/live) guards it with the node's mutex and feeds it passively
// from the kernel's Seen events.
type MemberCache struct {
	self string
	cap  int
	recs map[string]*memberRec
}

type memberRec struct {
	m    Member
	seen time.Time
}

// NewMemberCache builds a cache that never stores self and holds at most
// capacity entries (oldest last-seen evicted first).
func NewMemberCache(self string, capacity int) *MemberCache {
	if capacity < 1 {
		capacity = 1
	}
	return &MemberCache{self: self, cap: capacity, recs: make(map[string]*memberRec)}
}

// Cap returns the configured capacity.
func (c *MemberCache) Cap() int { return c.cap }

// Len returns the number of cached members.
func (c *MemberCache) Len() int { return len(c.recs) }

// Note records (or refreshes) a sighting of m at time now. Entries dedupe
// by address — a re-noted member updates its ID and last-seen stamp instead
// of growing the cache. When the cache is full the member with the oldest
// sighting is evicted to make room.
func (c *MemberCache) Note(m Member, now time.Time) {
	if m.Addr == "" || m.Addr == c.self {
		return
	}
	if rec, ok := c.recs[m.Addr]; ok {
		rec.m = m
		if now.After(rec.seen) {
			rec.seen = now
		}
		return
	}
	if len(c.recs) >= c.cap {
		c.evictOldest()
	}
	c.recs[m.Addr] = &memberRec{m: m, seen: now}
}

func (c *MemberCache) evictOldest() {
	var victim string
	var oldest time.Time
	first := true
	for addr, rec := range c.recs {
		if first || rec.seen.Before(oldest) {
			victim, oldest, first = addr, rec.seen, false
		}
	}
	if !first {
		delete(c.recs, victim)
	}
}

// Forget drops addr from the cache. Used when a member departs for good
// (graceful leave) — abrupt failures are deliberately NOT forgotten, since
// an unreachable member may just be on the far side of a partition.
func (c *MemberCache) Forget(addr string) { delete(c.recs, addr) }

// Members returns the cached members sorted by ID (deterministic iteration
// for probe rotation and tests).
func (c *MemberCache) Members() []Member {
	out := make([]Member, 0, len(c.recs))
	for _, rec := range c.recs {
		out = append(out, rec.m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
