// Package dht defines the backend-neutral key-routing substrate the live
// DCO node runs on. The paper's chunk-driven overlay only needs a handful
// of operations from its DHT — route a key to its owning coordinator, test
// ownership locally, enumerate the members that should replicate a key,
// join/leave, and surface membership changes — so those operations are the
// whole contract here. internal/chordkern implements it with the Chord ring
// the paper assumes; internal/kademlia implements it with XOR-metric
// k-buckets and iterative parallel lookups. internal/live is written
// against this package only and never names a backend type.
//
// Division of labor: a Kernel owns the routing tables and the maintenance
// protocol (stabilization or bucket refresh), but performs no I/O of its
// own — every RPC goes through the Caller the host node supplies, which is
// where timeouts, retries, circuit breaking, and failure condemnation
// live. The host learns about membership changes through Events callbacks.
//
// Locking contract (what keeps the host's mutex and the kernel's internal
// mutex from deadlocking): kernel methods the host may call while holding
// its own lock — Self, Owns, View, ReplicaSet, Heir, Stats — are pure
// local reads that never block, never call the Caller, and never fire
// Events. Methods that do I/O (Join, Leave, FindOwner*, Merge, the Ticks)
// and HandleRPC may fire Events and use the Caller, but never while
// holding the kernel's internal lock; the host's Events handlers are free
// to take the host lock and call the pure-read methods back.
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"time"

	"dco/internal/telemetry"
	"dco/internal/wire"
)

// Member names one overlay participant: its position in the shared 64-bit
// key space and its dialable transport address.
type Member struct {
	ID   uint64
	Addr string
}

// Wire converts a member to its wire representation.
func (m Member) Wire() wire.Entry { return wire.Entry{ID: m.ID, Addr: m.Addr} }

// FromWire converts a wire entry to a member.
func FromWire(e wire.Entry) Member { return Member{ID: e.ID, Addr: e.Addr} }

// IDOf maps a node address onto the key space. Both backends share it (and
// it matches the chunk-key hash family), so a deployment can switch
// backends without nodes changing identity.
func IDOf(addr string) uint64 {
	sum := sha1.Sum([]byte("live-node-" + addr))
	return binary.BigEndian.Uint64(sum[:8])
}

// Caller is the RPC seam the host node supplies. Both calls block until a
// reply, an error, or the host's timeout; the host's failure handling
// (breaker accounting, conclusive-death condemnation feeding back into
// Kernel.PeerFailed) runs inside them, so a kernel never reasons about
// liveness policy itself.
type Caller interface {
	// Call performs one single-shot RPC: no retry. The right shape for
	// maintenance probes, where a failure is itself the signal.
	Call(addr string, req wire.Message) (wire.Message, error)
	// CallIdem performs a retried RPC for idempotent requests (routing
	// steps are reads; they qualify).
	CallIdem(addr string, req wire.Message) (wire.Message, error)
}

// Events are the host's subscriptions to membership activity. Any field
// may be nil. Kernels fire them without holding internal locks (see the
// package comment); handlers may block briefly but must not call back into
// kernel methods that do I/O.
type Events struct {
	// Seen reports members sighted in protocol traffic (routing answers,
	// notifies, joins). The host feeds its census member cache from it.
	Seen func(ms ...Member)
	// RangeChanged reports that part of this node's key range now belongs
	// to newOwner (a closer member appeared). The host hands off index
	// entries it no longer owns.
	RangeChanged func(newOwner Member)
	// Departed reports a member's graceful leave — the one conclusive
	// "gone for good" signal (abrupt unreachability may be a partition).
	Departed func(m Member)
}

// Tick is one periodic maintenance step the host schedules on the kernel's
// behalf (the host owns goroutine lifecycle; kernels stay passive).
type Tick struct {
	Name  string
	Every time.Duration
	Fn    func()
}

// Stats is a kernel's maintenance accounting, backend-interpreted:
// TableChanges counts routing-table repairs (Chord: successor changes;
// Kademlia: bucket insertions), FailuresPurged counts dead peers removed,
// Lookups and LookupHops aggregate FindOwner routing work (hops per lookup
// is also exported as the dco_dht_lookup_hops histogram).
type Stats struct {
	TableChanges   uint64
	FailuresPurged uint64
	Lookups        uint64
	LookupHops     uint64
}

// Options carries the host-supplied plumbing every backend needs; backend
// tuning lives in each backend's own Config struct.
type Options struct {
	Self     Member
	Caller   Caller
	Events   Events
	Registry *telemetry.Registry
	Trace    *telemetry.Trace
	// Done is closed when the host shuts down; kernels abort in-progress
	// waits (routing retries, lookup rounds) instead of finishing them.
	// nil means never.
	Done <-chan struct{}
}

// HopBuckets are the shared dco_dht_lookup_hops histogram bounds: routing
// path lengths, not latencies. Both backends register the histogram with
// these bounds so the dhtcompare bench can aggregate them directly.
var HopBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// Kernel is the DHT backend contract. Implementations are safe for
// concurrent use.
type Kernel interface {
	// Name identifies the backend ("chord", "kademlia").
	Name() string

	// Self returns this node's identity. Pure read.
	Self() Member

	// Owns reports whether this node is key's coordinator under the
	// backend's ownership rule (Chord: key in (pred, self]; Kademlia: no
	// known live contact XOR-closer than self). Pure read; conservative
	// under incomplete tables — maintenance converges it.
	Owns(key uint64) bool

	// OwnsSettled is Owns minus the conservative bootstrap claim: false
	// unless the routing tables hold positive evidence of ownership
	// (Chord: a known predecessor bounding the range; Kademlia: at least
	// one live contact, none of them closer). The replication layer uses
	// it so a freshly joined node does not fold other owners' replicated
	// entries into its own index. Pure read.
	OwnsSettled(key uint64) bool

	// FindOwner routes from this node to key's owner. fallbacks are the
	// members to try if the owner is unreachable, nearest-responsibility
	// first (Chord: the owner's successor list; Kademlia: the next
	// closest members from the lookup shortlist). Performs RPCs.
	FindOwner(key uint64) (owner Member, fallbacks []Member, err error)

	// FindOwnerFrom is FindOwner routed through start instead of this
	// node's own tables — the census uses it to probe a foreign network
	// through one of its members. Performs RPCs.
	FindOwnerFrom(start string, key uint64) (owner Member, fallbacks []Member, err error)

	// ReplicaSet returns up to r distinct live members (never self) that
	// should mirror key's index entries. Only meaningful on the key's
	// owner (Chord cannot compute another owner's successors locally);
	// non-owners may get a best-effort or empty answer. Pure read.
	ReplicaSet(key uint64, r int) []Member

	// Join attaches this node to the overlay through bootstrap. Performs
	// RPCs; an error means this bootstrap did not work (try another).
	Join(bootstrap string) error

	// Leave runs the backend's graceful-departure protocol (Chord:
	// re-link neighbors; Kademlia: best-effort goodbye so buckets drop
	// this node early). The host hands off its index separately, to Heir.
	// Performs RPCs.
	Leave()

	// Heir returns the member that inherits this node's key range when it
	// departs (ok=false on a lone node). Pure read.
	Heir() (m Member, ok bool)

	// PeerFailed purges a conclusively dead peer from the routing tables.
	// The host calls it from its failure-condemnation path; maintenance
	// re-adds the peer if it was only a hiccup after all.
	PeerFailed(addr string)

	// Observe passively records a sighted member (Kademlia: bucket
	// insert; Chord: no-op — its ring pointers only move through the
	// Notify/stabilize protocol). Returns whether the tables changed.
	// Local only, no RPCs.
	Observe(m Member) bool

	// View is this node's bounded membership view (self always included)
	// — the census exchanges and compares it to detect split networks.
	// Pure read.
	View() []Member

	// Merge folds a confirmed foreign network into this node's tables —
	// target is the foreign member whose range covers this node's ID,
	// others its advertised view — and seeds the backend's convergence
	// (Chord: monotone candidate folds + notifies; Kademlia: bucket
	// inserts + a self-lookup that advertises this node). Performs RPCs.
	Merge(target Member, others []Member)

	// Ticks lists the kernel's periodic maintenance steps for the host to
	// schedule.
	Ticks() []Tick

	// HandleRPC serves one inbound protocol message. ok=false means the
	// message is not this kernel's (the host dispatches it elsewhere).
	// Runs on transport goroutines.
	HandleRPC(from string, req wire.Message) (resp wire.Message, ok bool)

	// Stats reports maintenance accounting. Pure read.
	Stats() Stats
}

// ErrNoRoute is returned by FindOwner when routing cannot reach an owner
// (no live contacts, no progress, or the hop bound tripped).
var ErrNoRoute = errors.New("dht: no route to key owner")
