package overlay

import (
	"testing"
	"time"

	"dco/internal/churn"
	"dco/internal/sim"
)

func small(kind Kind) Config {
	cfg := DefaultConfig(kind)
	cfg.Stream.Count = 10
	cfg.Neighbors = 8
	if kind == Tree {
		cfg.Neighbors = 2
	}
	return cfg
}

func TestMeshConstruction(t *testing.T) {
	cfg := small(Pull)
	cfg.Neighbors = 6
	k := sim.NewKernel(1)
	s := NewSystem(k, cfg, 40)
	// Degree: every node has at least the target degree (ring + random
	// edges may add a few).
	for _, nd := range s.nodes {
		if len(nd.neighbors) < 6 {
			t.Fatalf("node %d degree %d < 6", nd.id, len(nd.neighbors))
		}
		if _, self := nd.neighbors[nd.id]; self {
			t.Fatal("self-loop in mesh")
		}
	}
	// Symmetry.
	for _, nd := range s.nodes {
		for nid := range nd.neighbors {
			if _, back := s.nodes[nid].neighbors[nd.id]; !back {
				t.Fatalf("asymmetric edge %d-%d", nd.id, nid)
			}
		}
	}
}

func TestMeshDegreeCappedBySize(t *testing.T) {
	cfg := small(Pull)
	cfg.Neighbors = 100 // larger than the network
	k := sim.NewKernel(1)
	s := NewSystem(k, cfg, 10)
	for _, nd := range s.nodes {
		if len(nd.neighbors) > 9 {
			t.Fatalf("degree %d exceeds n-1", len(nd.neighbors))
		}
	}
}

func TestTreeShape(t *testing.T) {
	cfg := small(Tree)
	cfg.Neighbors = 3
	k := sim.NewKernel(1)
	s := NewSystem(k, cfg, 14)
	if len(s.server.children) != 3 {
		t.Fatalf("root out-degree %d", len(s.server.children))
	}
	// Every non-root node appears exactly once as a child.
	seen := map[int]int{}
	for _, nd := range s.nodes {
		for _, c := range nd.children {
			seen[int(c)]++
		}
	}
	for i := 1; i < 14; i++ {
		if seen[i] != 1 {
			t.Fatalf("node %d has %d parents", i, seen[i])
		}
	}
}

func TestTreeZeroOverhead(t *testing.T) {
	cfg := small(Tree)
	k := sim.NewKernel(2)
	s := NewSystem(k, cfg, 30)
	s.Run(200 * time.Second)
	if s.Net.Overhead() != 0 {
		t.Fatalf("tree produced %d overhead messages; the paper requires 0", s.Net.Overhead())
	}
	if s.ReceivedTotal() != int64(29*cfg.Stream.Count) {
		t.Fatalf("tree delivery incomplete: %d", s.ReceivedTotal())
	}
}

func TestTreeHighDegreeDegrades(t *testing.T) {
	// The paper's Fig. 5/6 cliff: out-degree above the uplink budget
	// (600 kbps / 300 kbps stream = 2) makes the tree fall behind.
	delay := func(degree int) time.Duration {
		cfg := DefaultConfig(Tree)
		cfg.Stream.Count = 20
		cfg.Neighbors = degree
		k := sim.NewKernel(3)
		s := NewSystem(k, cfg, 64)
		s.Run(600 * time.Second)
		mean, complete, total := s.Log.MeshDelay()
		if complete != total {
			t.Fatalf("degree %d: %d/%d complete", degree, complete, total)
		}
		return mean
	}
	if d2, d8 := delay(2), delay(8); d8 <= d2 {
		t.Fatalf("tree should degrade with fan-out: d2=%v d8=%v", d2, d8)
	}
}

func TestPullDeliversAll(t *testing.T) {
	cfg := small(Pull)
	k := sim.NewKernel(4)
	s := NewSystem(k, cfg, 48)
	s.Run(300 * time.Second)
	if s.ReceivedTotal() != int64(47*cfg.Stream.Count) {
		t.Fatalf("pull incomplete: %d", s.ReceivedTotal())
	}
	by := s.Net.OverheadByKind()
	if by[kBufferMap] == 0 || by[kRequest] == 0 {
		t.Fatalf("pull must gossip maps and send requests: %v", by)
	}
	if by[kOffer] != 0 {
		t.Fatal("pull must not send push offers")
	}
}

func TestPushDeliversAll(t *testing.T) {
	cfg := small(Push)
	k := sim.NewKernel(4)
	s := NewSystem(k, cfg, 48)
	s.Run(300 * time.Second)
	if s.ReceivedTotal() != int64(47*cfg.Stream.Count) {
		t.Fatalf("push incomplete: %d", s.ReceivedTotal())
	}
	by := s.Net.OverheadByKind()
	if by[kOffer] == 0 || by[kAccept] == 0 {
		t.Fatalf("push must offer and accept: %v", by)
	}
	if by[kRequest] != 0 {
		t.Fatal("push must not send pull requests")
	}
}

func TestPushDuplicateOffersDeclined(t *testing.T) {
	cfg := small(Push)
	cfg.Neighbors = 16
	k := sim.NewKernel(5)
	s := NewSystem(k, cfg, 64)
	s.Run(300 * time.Second)
	by := s.Net.OverheadByKind()
	if by[kDecline] == 0 {
		t.Fatal("dense push should produce duplicate offers (declines)")
	}
	// Redundant chunk data itself should stay rare thanks to the handshake.
	if dup := s.Duplicates(); dup > s.ReceivedTotal()/2 {
		t.Fatalf("too many duplicate chunks: %d of %d", dup, s.ReceivedTotal())
	}
}

func TestOverheadOrderingPullVsTree(t *testing.T) {
	run := func(kind Kind) uint64 {
		cfg := small(kind)
		k := sim.NewKernel(6)
		s := NewSystem(k, cfg, 48)
		s.Run(300 * time.Second)
		return s.Net.Overhead()
	}
	if run(Tree) != 0 {
		t.Fatal("tree overhead must be zero")
	}
	if run(Pull) == 0 {
		t.Fatal("pull overhead must be positive")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		cfg := small(Push)
		k := sim.NewKernel(77)
		s := NewSystem(k, cfg, 40)
		s.Run(300 * time.Second)
		return s.ReceivedTotal(), s.Net.Overhead()
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1 != r2 || o1 != o2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", r1, o1, r2, o2)
	}
}

func TestChurnMeshSurvives(t *testing.T) {
	for _, kind := range []Kind{Pull, Push} {
		cfg := small(kind)
		cfg.Stream.Count = 40
		k := sim.NewKernel(8)
		s := NewSystem(k, cfg, 64)
		s.DisableCompletionStop()
		d := churn.NewDriver(k, churn.Config{
			MeanLife: 60 * time.Second, MeanJoin: 60 * time.Second / 63, GracefulFrac: 0.5,
		}, func() churn.Peer { return s.SpawnPeer() })
		for _, nd := range s.ViewerPeers() {
			d.Track(nd)
		}
		d.StartArrivals()
		s.Run(120 * time.Second)
		if pct := s.Log.ReceivedPercent(120 * time.Second); pct < 60 {
			t.Fatalf("%v under churn delivered only %.1f%%", kind, pct)
		}
	}
}

func TestChurnTreeCollapses(t *testing.T) {
	cfg := small(Tree)
	cfg.Stream.Count = 40
	k := sim.NewKernel(8)
	s := NewSystem(k, cfg, 64)
	s.DisableCompletionStop()
	d := churn.NewDriver(k, churn.Config{
		MeanLife: 60 * time.Second, MeanJoin: 60 * time.Second / 63, GracefulFrac: 0.5,
	}, func() churn.Peer { return s.SpawnPeer() })
	for _, nd := range s.ViewerPeers() {
		d.Track(nd)
	}
	d.StartArrivals()
	s.Run(120 * time.Second)
	tree := s.Log.ReceivedPercent(120 * time.Second)

	// Compare against pull under identical churn.
	cfgP := small(Pull)
	cfgP.Stream.Count = 40
	k2 := sim.NewKernel(8)
	s2 := NewSystem(k2, cfgP, 64)
	s2.DisableCompletionStop()
	d2 := churn.NewDriver(k2, churn.Config{
		MeanLife: 60 * time.Second, MeanJoin: 60 * time.Second / 63, GracefulFrac: 0.5,
	}, func() churn.Peer { return s2.SpawnPeer() })
	for _, nd := range s2.ViewerPeers() {
		d2.Track(nd)
	}
	d2.StartArrivals()
	s2.Run(120 * time.Second)
	pull := s2.Log.ReceivedPercent(120 * time.Second)

	if tree >= pull {
		t.Fatalf("tree (%.1f%%) should be far below pull (%.1f%%) under churn", tree, pull)
	}
}

func TestGracefulLeaveCleansNeighborSets(t *testing.T) {
	cfg := small(Pull)
	k := sim.NewKernel(9)
	s := NewSystem(k, cfg, 24)
	s.DisableCompletionStop()
	victim := s.nodes[5]
	k.At(2*time.Second, func() { victim.Depart(true) })
	s.Run(60 * time.Second)
	for _, nd := range s.nodes {
		if nd == victim || !nd.alive {
			continue
		}
		if _, still := nd.neighbors[victim.id]; still {
			t.Fatalf("node %d still lists the departed node", nd.id)
		}
	}
}

func TestSpawnPeerJoinsMesh(t *testing.T) {
	cfg := small(Push)
	cfg.Stream.Count = 30
	k := sim.NewKernel(10)
	s := NewSystem(k, cfg, 32)
	s.DisableCompletionStop()
	var nd *node
	k.At(5*time.Second, func() { nd = s.SpawnPeer() })
	s.Run(200 * time.Second)
	if nd == nil || len(nd.neighbors) == 0 {
		t.Fatal("joiner has no neighbors")
	}
	missing := 0
	for seq := nd.startSeq; seq < cfg.Stream.Count; seq++ {
		if !nd.buf.Has(seq) {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("mesh joiner missing %d expected chunks", missing)
	}
}
