// Package overlay implements the three baselines the paper evaluates DCO
// against (§IV):
//
//   - pull: a random mesh whose nodes exchange buffer maps with every
//     neighbor each second and request missing chunks round-robin;
//   - push: the same mesh, but nodes eagerly push chunks their neighbors
//     lack, accepting duplicate deliveries;
//   - tree: a balanced out-degree-d tree rooted at the server that pushes
//     chunks top-down with zero extra overhead.
//
// All three run on the same simnet substrate (latency + bandwidth-queued
// chunk transfers) as DCO, so the four metrics are directly comparable.
package overlay

import (
	"time"

	"dco/internal/metrics"
	"dco/internal/sim"
	"dco/internal/simnet"
	"dco/internal/stream"
)

// Kind selects a baseline protocol.
type Kind int

const (
	// Pull is the pull-based mesh (CoolStreaming/Chainsaw style).
	Pull Kind = iota
	// Push is the push-based mesh.
	Push
	// Tree is the single-tree top-down overlay.
	Tree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Pull:
		return "pull"
	case Push:
		return "push"
	case Tree:
		return "tree"
	default:
		return "unknown"
	}
}

// Config parameterizes a baseline overlay run. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	Kind   Kind
	Stream stream.Params

	// Net sets the physical network model (latency, zones). The zero
	// value takes simnet's defaults.
	Net simnet.Config

	// Neighbors is the mesh degree (pull/push). For Tree it is the
	// out-degree of every internal node (the paper's default tree uses
	// neighbors/8, i.e. 3 when others use 24; "tree*" uses the full count).
	Neighbors int

	// ExchangeEvery is the buffer-map gossip period (paper: 1 s).
	ExchangeEvery time.Duration

	// Bandwidths (bits/s), as in the paper: server 4000 kbps, peers 600.
	ServerUpBps, ServerDownBps int64
	PeerUpBps, PeerDownBps     int64

	// RequestTimeout (pull): give up on a neighbor and re-request elsewhere.
	RequestTimeout time.Duration

	// ServeQueueLimit is the responder-side admission gate: requests are
	// ignored while the uplink backlog exceeds it (the requester's timeout
	// rotates to another holder).
	ServeQueueLimit time.Duration

	// MaxOfferDegree (push): fresh offers of one chunk go to at most this
	// many of a holder's neighbors (a per-chunk pseudo-random subset); the
	// repair pass remains uncapped.
	MaxOfferDegree int

	// OfferLease (push): how long an unanswered offer stays charged against
	// the sender's uplink budget.
	OfferLease time.Duration

	// AcceptLease (push): how long the receiver reserves a chunk for its
	// accepted sender before it will accept a different offer. Must exceed
	// the worst queued-transfer time or duplicate accepts spiral.
	AcceptLease time.Duration

	// MaxParallelRequests (pull): outstanding chunk requests per node.
	MaxParallelRequests int

	// Window limits how far ahead of its first missing chunk a pull node
	// requests (mirrors DCO's prefetch window).
	Window int
}

// DefaultConfig returns the paper's §IV settings for the given kind.
func DefaultConfig(kind Kind) Config {
	return Config{
		Kind:                kind,
		Stream:              stream.DefaultParams(),
		Neighbors:           32,
		ExchangeEvery:       time.Second,
		ServerUpBps:         4_000_000,
		ServerDownBps:       4_000_000,
		PeerUpBps:           600_000,
		PeerDownBps:         600_000,
		RequestTimeout:      4 * time.Second,
		ServeQueueLimit:     2 * time.Second,
		MaxOfferDegree:      12,
		OfferLease:          1500 * time.Millisecond,
		AcceptLease:         5 * time.Second,
		MaxParallelRequests: 8,
		Window:              20,
	}
}

// System is one baseline deployment on the simulator.
type System struct {
	K   *sim.Kernel
	Net *simnet.Network
	Cfg Config
	Log *metrics.DeliveryLog

	nodes      []*node
	server     *node
	received   int64
	duplicates int64
	target     int64
}

// message kinds
const (
	kBufferMap = "mesh.bufmap"
	kRequest   = "mesh.request" // pull: ask a neighbor for one chunk
	kOffer     = "mesh.offer"   // push: sender offers a chunk
	kAccept    = "mesh.accept"  // push: receiver accepts the first offer
	kDecline   = "mesh.decline" // push: duplicate offer turned away
	kChunk     = "mesh.chunk"   // data
)

type offerMsg struct {
	Seq  int64
	From simnet.NodeID
}

type acceptMsg struct{ Seq int64 }

// offKey identifies one outstanding offer (target neighbor, chunk).
type offKey struct {
	nid simnet.NodeID
	seq int64
}

type bufMapMsg struct {
	Map *stream.BufferMap // read-only shared snapshot
}

type requestMsg struct {
	Seq  int64
	From simnet.NodeID
}

type chunkMsg struct{ Seq int64 }

type node struct {
	sys      *System
	id       simnet.NodeID
	isSource bool
	alive    bool
	joinAt   time.Duration

	buf      *stream.BufferMap
	startSeq int64
	cursor   int64

	neighbors map[simnet.NodeID]*neighborState

	// pull state
	outstanding map[int64]*pullReq
	rrCursor    int // round-robin position over neighbors

	// push state
	newest       int64 // newest chunk held (push scan origin)
	nbrOrder     []simnet.NodeID
	pushedTo     map[simnet.NodeID]*stream.BufferMap // chunks offered, per neighbor
	offersOut    int                                 // unanswered offers (budget charge)
	offerCharges map[offKey]bool                     // offers still charged
	offerPending map[int64]time.Duration             // receiver-side accept reservations

	// tree state
	children []simnet.NodeID

	tickers []*sim.Ticker
}

type neighborState struct {
	id      simnet.NodeID
	lastMap *stream.BufferMap
}

type pullReq struct {
	seq     int64
	target  simnet.NodeID
	timeout *sim.Event
	tried   map[simnet.NodeID]bool
}
