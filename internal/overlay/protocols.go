package overlay

import (
	"sort"
	"time"

	"dco/internal/simnet"
	"dco/internal/stream"
)

// generate is the server's production step for all three baselines.
func (nd *node) generate(seq int64) {
	if !nd.alive {
		return
	}
	nd.buf.Set(seq)
	nd.sys.Log.Generated(seq, nd.sys.K.Now())
	switch nd.sys.Cfg.Kind {
	case Tree:
		nd.treeForward(seq)
	case Push:
		nd.queuePush(seq)
	}
	// Pull: neighbors learn about the chunk from the next buffer-map
	// exchange and request it.
}

// HandleMessage dispatches baseline traffic.
func (nd *node) HandleMessage(m *simnet.Message) {
	if !nd.alive {
		return
	}
	switch m.Kind {
	case kBufferMap:
		if st, ok := nd.neighbors[m.From]; ok {
			st.lastMap = m.Payload.(*bufMapMsg).Map
		}
		if nd.sys.Cfg.Kind == Push {
			nd.drainPush()
		}
	case kRequest:
		req := m.Payload.(*requestMsg)
		// Serve only when the uplink queue is sane; a saturated responder
		// stays silent and the requester's timeout rotates it to another
		// holder. Without this gate the first holders of a popular chunk
		// accumulate unbounded upload queues and the swarm collapses.
		busy := nd.sys.Net.UploadBusyUntil(nd.id)-nd.sys.K.Now() > nd.sys.Cfg.ServeQueueLimit
		if nd.buf.Has(req.Seq) && !busy {
			nd.sys.Net.SendData(nd.id, req.From, kChunk, &chunkMsg{Seq: req.Seq}, nd.sys.Cfg.Stream.ChunkBits)
		}
		// A stale request (we do not have it) simply times out at the
		// requester, which retries the next neighbor round-robin.
	case kOffer:
		nd.onOffer(m.Payload.(*offerMsg))
	case kAccept:
		nd.onAccept(m.From, m.Payload.(*acceptMsg))
	case kDecline:
		nd.settleOffer(offKey{nid: m.From, seq: m.Payload.(*acceptMsg).Seq})
		nd.drainOffers()
	case kChunk:
		nd.onChunk(m.Payload.(*chunkMsg).Seq)
	}
}

func (nd *node) onChunk(seq int64) {
	if nd.buf.Has(seq) {
		nd.sys.duplicates++ // push's redundant-delivery cost
		return
	}
	nd.buf.Set(seq)
	delete(nd.offerPending, seq)
	nd.sys.Log.Received(nd.id, seq, nd.sys.K.Now())
	nd.sys.noteReceived()
	if r, ok := nd.outstanding[seq]; ok {
		r.timeout.Cancel()
		delete(nd.outstanding, seq)
	}
	switch nd.sys.Cfg.Kind {
	case Tree:
		nd.treeForward(seq)
	case Push:
		nd.queuePush(seq)
	case Pull:
		nd.pullTick() // free request slot: schedule the next pull now
	}
}

// ---------------------------------------------------------------------------
// Buffer-map gossip (pull + push, §IV: every second).

func (nd *node) exchangeTick() {
	if !nd.alive || len(nd.neighbors) == 0 {
		return
	}
	snapshot := nd.buf.Clone() // one copy shared read-only by all receivers
	msg := &bufMapMsg{Map: snapshot}
	for _, nid := range nd.neighborOrder() {
		nd.sys.Net.Send(nd.id, nid, kBufferMap, msg)
	}
}

// ---------------------------------------------------------------------------
// Pull: request missing chunks round-robin from neighbors that advertise
// them, one request outstanding per chunk, retrying on timeout.

func (nd *node) pullTick() {
	if !nd.alive || nd.isSource {
		return
	}
	cfg := &nd.sys.Cfg
	latest := cfg.Stream.SeqAt(nd.sys.K.Now())
	if latest < nd.startSeq {
		return
	}
	if nd.cursor < nd.startSeq {
		nd.cursor = nd.startSeq
	}
	for nd.cursor <= latest && nd.buf.Has(nd.cursor) {
		nd.cursor++
	}
	hi := nd.cursor + int64(cfg.Window) - 1
	if hi > latest {
		hi = latest
	}
	for seq := nd.cursor; seq <= hi; seq++ {
		if len(nd.outstanding) >= cfg.MaxParallelRequests {
			return
		}
		if nd.buf.Has(seq) || nd.outstanding[seq] != nil {
			continue
		}
		nd.requestChunk(seq, nil)
	}
}

// requestChunk asks the next neighbor (round-robin) that advertises seq.
// tried carries the neighbors already asked for this chunk, so a retry
// moves on; when every holder was tried the cycle restarts.
func (nd *node) requestChunk(seq int64, tried map[simnet.NodeID]bool) {
	holders := nd.holdersOf(seq, tried)
	if len(holders) == 0 && len(tried) > 0 {
		tried = nil // all holders tried once; start the round-robin over
		holders = nd.holdersOf(seq, nil)
	}
	if len(holders) == 0 {
		return // no neighbor advertises it yet; the next tick retries
	}
	target := holders[nd.rrCursor%len(holders)]
	nd.rrCursor++
	if tried == nil {
		tried = make(map[simnet.NodeID]bool)
	}
	tried[target] = true
	nd.sys.Net.Send(nd.id, target, kRequest, &requestMsg{Seq: seq, From: nd.id})
	r := &pullReq{seq: seq, target: target, tried: tried}
	r.timeout = nd.sys.K.After(nd.sys.Cfg.RequestTimeout, func() {
		if cur, ok := nd.outstanding[seq]; ok && cur == r && nd.alive {
			delete(nd.outstanding, seq)
			nd.requestChunk(seq, r.tried)
		}
	})
	nd.outstanding[seq] = r
}

// holdersOf lists neighbors advertising seq, in stable ID order (map
// iteration order must not leak into target selection, or runs stop being
// reproducible).
func (nd *node) holdersOf(seq int64, skip map[simnet.NodeID]bool) []simnet.NodeID {
	var out []simnet.NodeID
	for _, nid := range nd.neighborOrder() {
		if skip[nid] {
			continue
		}
		if st := nd.neighbors[nid]; st != nil && st.lastMap != nil && st.lastMap.Has(seq) {
			out = append(out, nid)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Push: sender-initiated dissemination. A holder offers fresh chunks to
// neighbors whose last buffer map lacks them; a neighbor accepts the first
// offer per chunk and declines the rest, and the data follows an accept.
// The paper's blind push mails full chunks into 1-second-stale buffer maps;
// under a serialized-bandwidth substrate that wastes most of the uplink on
// duplicate 300 kbit chunks, so the handshake converts the push method's
// signature redundancy ("a node may receive many identical chunks") into
// duplicate *offers* — extra control messages, the same cost class the
// paper already charges against push. While a chunk is fresh, each holder
// also caps its accepted sends so early holders do not soak their uplinks
// on one chunk.

func (nd *node) queuePush(seq int64) {
	if seq > nd.newest {
		nd.newest = seq
	}
	nd.drainOffers()
}

// drainOffers walks neighbors round-robin offering the newest chunk each
// lacks, bounded by the uplink budget with unanswered offers charged until
// they settle.
func (nd *node) drainOffers() {
	if !nd.alive || len(nd.neighbors) == 0 {
		return
	}
	budget := nd.uplinkBudget() - nd.offersOut
	if budget <= 0 {
		return
	}
	order := nd.neighborOrder()
	idle := 0
	walk := len(order)
	if walk > 12 {
		walk = 12 // bound per-call work; round-robin resumes next call
	}
	for budget > 0 && idle < walk {
		nid := order[nd.rrCursor%len(order)]
		nd.rrCursor++
		st := nd.neighbors[nid]
		if st == nil {
			idle++
			continue
		}
		seq, ok := nd.newestOfferFor(nid, st)
		if !ok {
			idle++
			continue
		}
		idle = 0
		nd.markPushed(nid, seq)
		nd.offersOut++
		key := offKey{nid: nid, seq: seq}
		nd.offerCharges[key] = true
		nd.sys.Net.Send(nd.id, nid, kOffer, &offerMsg{Seq: seq, From: nd.id})
		nd.sys.K.After(nd.sys.Cfg.OfferLease, func() { nd.settleOffer(key) })
		budget--
	}
}

// newestOfferFor scans from our newest chunk downward for one the neighbor
// lacks (per its advertised map) that we have not offered yet.
//
// In dense meshes each node restricts its fresh offers of a given chunk to
// a deterministic pseudo-random subset of its neighbors (offerCandidate):
// with 64 neighbors, 60+ holders racing to offer the same chunk to the
// same receiver drown the swarm in declines. The subsets differ per chunk
// and per holder, so any receiver is covered with overwhelming probability
// once a handful of its neighbors hold the chunk; the repair pass is
// uncapped and guarantees completion regardless.
func (nd *node) newestOfferFor(nid simnet.NodeID, st *neighborState) (int64, bool) {
	pushed := nd.pushedTo[nid]
	cfg := &nd.sys.Cfg
	floor := nd.newest - int64(cfg.Window) // older holes belong to the repair pass
	if floor < 0 {
		floor = 0
	}
	for seq := nd.newest; seq >= floor; seq-- {
		if !nd.buf.Has(seq) || (pushed != nil && pushed.Has(seq)) {
			continue
		}
		if st.lastMap != nil && st.lastMap.Has(seq) {
			continue
		}
		if !nd.offerCandidate(nid, seq) {
			continue
		}
		return seq, true
	}
	return 0, false
}

// offerCandidate decides whether this node fresh-offers chunk seq to
// neighbor nid: a SplitMix64-style hash selects ~MaxOfferDegree of the
// neighbor set per (holder, chunk).
func (nd *node) offerCandidate(nid simnet.NodeID, seq int64) bool {
	deg := len(nd.neighbors)
	max := nd.sys.Cfg.MaxOfferDegree
	if nd.isSource || max <= 0 || deg <= max {
		return true
	}
	h := uint64(nd.id)*0x9E3779B97F4A7C15 ^ uint64(nid)*0xBF58476D1CE4E5B9 ^ uint64(seq)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h%uint64(deg) < uint64(max)
}

func (nd *node) markPushed(nid simnet.NodeID, seq int64) {
	bm := nd.pushedTo[nid]
	if bm == nil {
		bm = stream.NewBufferMap(0)
		nd.pushedTo[nid] = bm
	}
	bm.Set(seq)
}

func (nd *node) wasPushed(nid simnet.NodeID, seq int64) bool {
	bm := nd.pushedTo[nid]
	return bm != nil && bm.Has(seq)
}

// onOffer accepts the first offer for a chunk we lack; every other offer is
// declined — the push method's redundancy, paid in control messages.
func (nd *node) onOffer(m *offerMsg) {
	if nd.buf.Has(m.Seq) {
		nd.sys.Net.Send(nd.id, m.From, kDecline, &acceptMsg{Seq: m.Seq})
		return
	}
	if until, pending := nd.offerPending[m.Seq]; pending && until > nd.sys.K.Now() {
		nd.sys.Net.Send(nd.id, m.From, kDecline, &acceptMsg{Seq: m.Seq})
		return
	}
	if nd.offerPending == nil {
		nd.offerPending = make(map[int64]time.Duration)
	}
	nd.offerPending[m.Seq] = nd.sys.K.Now() + nd.sys.Cfg.AcceptLease
	nd.sys.Net.Send(nd.id, m.From, kAccept, &acceptMsg{Seq: m.Seq})
}

func (nd *node) onAccept(from simnet.NodeID, m *acceptMsg) {
	nd.settleOffer(offKey{nid: from, seq: m.Seq})
	if nd.buf.Has(m.Seq) {
		nd.sys.Net.SendData(nd.id, from, kChunk, &chunkMsg{Seq: m.Seq}, nd.sys.Cfg.Stream.ChunkBits)
	}
	nd.drainOffers()
}

// settleOffer releases an offer's budget charge exactly once, whether it
// was accepted, declined, or its lease expired unanswered.
func (nd *node) settleOffer(key offKey) {
	if nd.offerCharges[key] {
		delete(nd.offerCharges, key)
		if nd.offersOut > 0 {
			nd.offersOut--
		}
	}
}

// drainPush is the 1 Hz repair tick. The hot path only scans a recent
// window; here each neighbor's advertised holes (bounded per tick) are
// enumerated so older gaps still fill, guaranteeing complete dissemination.
func (nd *node) drainPush() {
	nd.drainOffers()
	if !nd.alive || len(nd.neighbors) == 0 {
		return
	}
	budget := nd.uplinkBudget() - nd.offersOut
	if budget <= 0 {
		return
	}
	const holesPerNeighbor = 16
	order := nd.neighborOrder()
	for i := 0; budget > 0 && i < len(order); i++ {
		nid := order[nd.rrCursor%len(order)]
		nd.rrCursor++
		st := nd.neighbors[nid]
		if st == nil || st.lastMap == nil {
			continue
		}
		for _, seq := range st.lastMap.Missing(0, nd.newest, holesPerNeighbor) {
			if budget <= 0 {
				break
			}
			if !nd.buf.Has(seq) || nd.wasPushed(nid, seq) {
				continue
			}
			nd.markPushed(nid, seq)
			nd.offersOut++
			key := offKey{nid: nid, seq: seq}
			nd.offerCharges[key] = true
			nd.sys.Net.Send(nd.id, nid, kOffer, &offerMsg{Seq: seq, From: nd.id})
			nd.sys.K.After(nd.sys.Cfg.OfferLease, func() { nd.settleOffer(key) })
			budget--
		}
	}
}

// neighborOrder returns a stable slice of neighbor IDs for round-robin.
func (nd *node) neighborOrder() []simnet.NodeID {
	if len(nd.nbrOrder) != len(nd.neighbors) {
		nd.nbrOrder = nd.nbrOrder[:0]
		for nid := range nd.neighbors {
			nd.nbrOrder = append(nd.nbrOrder, nid)
		}
		sort.Slice(nd.nbrOrder, func(i, j int) bool { return nd.nbrOrder[i] < nd.nbrOrder[j] })
	}
	return nd.nbrOrder
}

// uplinkBudget converts free uplink time into a number of chunk sends.
func (nd *node) uplinkBudget() int {
	cfg := &nd.sys.Cfg
	free := time.Second - (nd.sys.Net.UploadBusyUntil(nd.id) - nd.sys.K.Now())
	if free <= 0 {
		return 0
	}
	chunkTime := time.Duration(float64(cfg.Stream.ChunkBits) / float64(nd.upBps()) * float64(time.Second))
	return int(free / chunkTime)
}

func (nd *node) upBps() int64 {
	if nd.isSource {
		return nd.sys.Cfg.ServerUpBps
	}
	return nd.sys.Cfg.PeerUpBps
}

// ---------------------------------------------------------------------------
// Tree: forward every chunk to all children; the only traffic is data, so
// the tree contributes zero extra overhead by construction.

func (nd *node) treeForward(seq int64) {
	for _, c := range nd.children {
		nd.sys.Net.SendData(nd.id, c, kChunk, &chunkMsg{Seq: seq}, nd.sys.Cfg.Stream.ChunkBits)
	}
}
