package overlay

import (
	"testing"
	"time"

	"dco/internal/sim"
)

// TestBaselineSmoke checks each baseline fully disseminates a short stream.
func TestBaselineSmoke(t *testing.T) {
	for _, kind := range []Kind{Pull, Push, Tree} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig(kind)
			cfg.Stream.Count = 10
			cfg.Neighbors = 8
			if kind == Tree {
				cfg.Neighbors = 3
			}
			k := sim.NewKernel(7)
			s := NewSystem(k, cfg, 64)
			end := s.Run(200 * time.Second)
			want := int64(63 * 10)
			if s.ReceivedTotal() != want {
				t.Fatalf("%v: received %d of %d (end %v, overhead %d)",
					kind, s.ReceivedTotal(), want, end, s.Net.Overhead())
			}
			mean, complete, total := s.Log.MeshDelay()
			t.Logf("%v: end=%v meshDelay=%v complete=%d/%d overhead=%d dup=%d",
				kind, end, mean, complete, total, s.Net.Overhead(), s.Duplicates())
		})
	}
}
