package overlay

import (
	"time"

	"dco/internal/metrics"
	"dco/internal/sim"
	"dco/internal/simnet"
	"dco/internal/stream"
)

// NewSystem builds a static baseline overlay of n nodes (server + n-1
// viewers) at virtual time zero.
func NewSystem(k *sim.Kernel, cfg Config, n int) *System {
	if n < 2 {
		panic("overlay: need at least a server and one viewer")
	}
	netCfg := cfg.Net
	if netCfg.BaseLatency <= 0 {
		netCfg = simnet.DefaultConfig()
	}
	s := &System{
		K:   k,
		Net: simnet.New(k, netCfg),
		Cfg: cfg,
	}
	for i := 0; i < n; i++ {
		up, down := cfg.PeerUpBps, cfg.PeerDownBps
		if i == 0 {
			up, down = cfg.ServerUpBps, cfg.ServerDownBps
		}
		id := s.Net.AddNode(up, down)
		nd := &node{
			sys:          s,
			id:           id,
			alive:        true,
			buf:          stream.NewBufferMap(0),
			neighbors:    make(map[simnet.NodeID]*neighborState),
			outstanding:  make(map[int64]*pullReq),
			pushedTo:     make(map[simnet.NodeID]*stream.BufferMap),
			offerCharges: make(map[offKey]bool),
			offerPending: make(map[int64]time.Duration),
		}
		s.Net.SetHandler(id, nd)
		s.nodes = append(s.nodes, nd)
	}
	s.server = s.nodes[0]
	s.server.isSource = true

	switch cfg.Kind {
	case Tree:
		s.buildTree()
	default:
		s.buildMesh()
	}

	s.Log = metrics.NewDeliveryLog(cfg.Stream.Count, s.server.id)
	for _, nd := range s.nodes[1:] {
		s.Log.NodeJoined(nd.id, 0)
	}
	s.target = int64(n-1) * cfg.Stream.Count

	for seq := int64(0); seq < cfg.Stream.Count; seq++ {
		seq := seq
		k.At(cfg.Stream.GenerationTime(seq), func() { s.server.generate(seq) })
	}
	for _, nd := range s.nodes {
		s.startTickers(nd)
	}
	return s
}

// buildMesh wires a connected random graph with average degree ≈ Neighbors:
// a ring guarantees connectivity, then random edges raise each node's
// degree to the target.
func (s *System) buildMesh() {
	n := len(s.nodes)
	connect := func(a, b *node) {
		if a == b {
			return
		}
		if _, dup := a.neighbors[b.id]; dup {
			return
		}
		a.neighbors[b.id] = &neighborState{id: b.id}
		b.neighbors[a.id] = &neighborState{id: a.id}
	}
	for i := range s.nodes {
		connect(s.nodes[i], s.nodes[(i+1)%n])
	}
	deg := s.Cfg.Neighbors
	if deg > n-1 {
		deg = n - 1
	}
	rng := s.K.Rand()
	for _, nd := range s.nodes {
		for attempts := 0; len(nd.neighbors) < deg && attempts < 8*deg; attempts++ {
			connect(nd, s.nodes[rng.Intn(n)])
		}
	}
}

// buildTree lays the nodes out as a complete d-ary tree in index order,
// rooted at the server.
func (s *System) buildTree() {
	d := s.Cfg.Neighbors
	if d < 1 {
		d = 1
	}
	for i, nd := range s.nodes {
		for c := 1; c <= d; c++ {
			child := d*i + c
			if child >= len(s.nodes) {
				break
			}
			nd.children = append(nd.children, s.nodes[child].id)
		}
	}
}

func (s *System) startTickers(nd *node) {
	cfg := &s.Cfg
	add := func(t *sim.Ticker) { nd.tickers = append(nd.tickers, t) }
	switch cfg.Kind {
	case Pull, Push:
		add(s.K.Every(s.K.Uniform(0, cfg.ExchangeEvery), cfg.ExchangeEvery, nd.exchangeTick))
		if cfg.Kind == Pull && !nd.isSource {
			period := cfg.ExchangeEvery / 2
			add(s.K.Every(s.K.Uniform(0, period), period, nd.pullTick))
		}
		if cfg.Kind == Push {
			period := time.Second
			add(s.K.Every(s.K.Uniform(0, period), period, nd.drainPush))
		}
	case Tree:
		// Tree is fully event-driven: chunks are forwarded on receipt.
	}
}

// SpawnPeer adds a new viewer mid-run (churn). Mesh joiners connect to
// random live nodes; tree joiners attach under a live parent with spare
// out-degree (orphaned subtrees are NOT repaired, matching the fragility
// the paper attributes to tree overlays).
func (s *System) SpawnPeer() *node {
	id := s.Net.AddNode(s.Cfg.PeerUpBps, s.Cfg.PeerDownBps)
	nd := &node{
		sys:          s,
		id:           id,
		alive:        true,
		joinAt:       s.K.Now(),
		buf:          stream.NewBufferMap(0),
		neighbors:    make(map[simnet.NodeID]*neighborState),
		outstanding:  make(map[int64]*pullReq),
		pushedTo:     make(map[simnet.NodeID]*stream.BufferMap),
		offerCharges: make(map[offKey]bool),
		offerPending: make(map[int64]time.Duration),
	}
	seq := int64(s.K.Now() / s.Cfg.Stream.Period)
	if s.Cfg.Stream.GenerationTime(seq) < s.K.Now() {
		seq++
	}
	nd.startSeq = seq
	nd.cursor = seq
	s.Net.SetHandler(id, nd)
	s.nodes = append(s.nodes, nd)
	s.Log.NodeJoined(id, s.K.Now())

	rng := s.K.Rand()
	switch s.Cfg.Kind {
	case Tree:
		d := s.Cfg.Neighbors
		var parent *node
		for _, cand := range s.nodes {
			if cand.alive && cand != nd && len(cand.children) < d {
				parent = cand
				break
			}
		}
		if parent == nil {
			parent = s.server
		}
		parent.children = append(parent.children, id)
	default:
		deg := s.Cfg.Neighbors
		alive := s.aliveNodes()
		for attempts := 0; len(nd.neighbors) < deg && attempts < 8*deg && len(alive) > 1; attempts++ {
			other := alive[rng.Intn(len(alive))]
			if other == nd {
				continue
			}
			if _, dup := nd.neighbors[other.id]; dup {
				continue
			}
			nd.neighbors[other.id] = &neighborState{id: other.id}
			other.neighbors[nd.id] = &neighborState{id: nd.id}
		}
	}
	s.startTickers(nd)
	return nd
}

func (s *System) aliveNodes() []*node {
	out := make([]*node, 0, len(s.nodes))
	for _, nd := range s.nodes {
		if nd.alive {
			out = append(out, nd)
		}
	}
	return out
}

// Depart removes the node. Graceful mesh leavers tell their neighbors;
// abrupt ones just vanish (pull requesters hit timeouts). Tree nodes never
// announce — their subtree starves either way, per the paper's model.
func (nd *node) Depart(graceful bool) {
	if !nd.alive || nd.isSource {
		return
	}
	nd.alive = false
	for _, t := range nd.tickers {
		t.Stop()
	}
	nd.tickers = nil
	for _, r := range nd.outstanding {
		r.timeout.Cancel()
	}
	nd.outstanding = make(map[int64]*pullReq)
	if graceful && nd.sys.Cfg.Kind != Tree {
		for nid := range nd.neighbors {
			if other := nd.sys.nodeByID(nid); other != nil {
				delete(other.neighbors, nd.id)
			}
		}
	}
	nd.sys.Log.NodeLeft(nd.id, nd.sys.K.Now())
	nd.sys.Net.Kill(nd.id)
}

func (s *System) nodeByID(id simnet.NodeID) *node {
	if int(id) < len(s.nodes) {
		return s.nodes[id]
	}
	return nil
}

func (s *System) noteReceived() {
	s.received++
	if s.target > 0 && s.received >= s.target {
		s.K.Stop()
	}
}

// DisableCompletionStop keeps Run going to the horizon (churn runs).
func (s *System) DisableCompletionStop() { s.target = 0 }

// Run executes until the horizon or full delivery, returning the end time.
func (s *System) Run(horizon time.Duration) time.Duration {
	s.K.SetHorizon(horizon)
	return s.K.Run()
}

// ReceivedTotal returns first-receipt deliveries so far.
func (s *System) ReceivedTotal() int64 { return s.received }

// Duplicates returns how many redundant chunk deliveries occurred (push's
// characteristic waste).
func (s *System) Duplicates() int64 { return s.duplicates }

// ViewerPeers returns the live non-server nodes (churn drivers schedule
// their departures through the returned handles).
func (s *System) ViewerPeers() []*node {
	var out []*node
	for _, nd := range s.nodes {
		if nd.alive && !nd.isSource {
			out = append(out, nd)
		}
	}
	return out
}
