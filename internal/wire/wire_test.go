package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("write %T: %v", m, err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read %T: %v", m, err)
	}
	return out
}

func TestRoundTripAllKinds(t *testing.T) {
	e1 := Entry{ID: 0xDEADBEEF, Addr: "10.0.0.1:4000"}
	e2 := Entry{ID: 42, Addr: "peer.example:9"}
	msgs := []Message{
		&Error{Msg: "boom"},
		&Error{Code: CodeBusy, Msg: "overloaded"},
		&Error{Code: CodeNotOwner, Msg: "moved"},
		&Ping{},
		&Pong{},
		&FindSuccessor{Key: 0xFFFFFFFFFFFFFFFF},
		&FindSuccessorResp{Done: true, Owner: e1, Succs: []Entry{e1, e2}, Pred: e2, OK: true},
		&FindSuccessorResp{Done: false, Owner: e2},
		&GetState{},
		&GetStateResp{Pred: e1, PredOK: true, Succs: []Entry{e2}},
		&Notify{From: e1},
		&Ack{},
		&Lookup{Key: 7, Seq: -3, MaxWait: 1500},
		&Lookup{Key: 7, Seq: -3, MaxWait: 1500, DeadlineMs: 2500},
		&LookupResp{Seq: 9, Providers: []Entry{e1, e2}},
		&LookupResp{Seq: 9},
		&Insert{Key: 1, Seq: 2, Holder: e1, UpBps: 600000, BufCount: 10, Unregister: true},
		&Insert{Key: 1, Seq: 2, Holder: e2, UpBps: 600000, BufCount: 10, LoadMilli: 850},
		&GetChunk{Seq: 123456789},
		&GetChunk{Seq: 3, WaitMs: 250},
		&GetChunk{Seq: 4, WaitMs: 250, DeadlineMs: 900},
		&ChunkResp{Seq: 5, OK: true, Data: []byte{1, 2, 3}},
		&ChunkResp{Seq: 5, OK: true, LoadMilli: 420, Data: []byte{9}},
		&ChunkResp{Seq: 5, Busy: true},
		&ChunkResp{Seq: 6, Busy: true, RetryAfterMs: 40, LoadMilli: 2250},
		&Handoff{Entries: []HandoffEntry{{Key: 1, Seq: 2, Providers: []Entry{e1}}, {Key: 3, Seq: 4}}},
		&Leave{From: e1, NewPred: e2, PredOK: true, NewSucc: []Entry{e1}},
		&Leave{From: e2},
		&ReplicateBatch{Owner: e1, Ops: []ReplicaOp{
			{Key: 7, Seq: 3, Holder: e2, UpBps: 500000, TTLMillis: 45000},
			{Key: 8, Seq: 4, Holder: e1, Unregister: true},
		}},
		&ReplicateBatch{Owner: e2, Full: true},
		&DigestReq{Owner: e1, Digests: []SeqDigest{{Key: 1, Seq: 2, Hash: 0xABCD}, {Key: 3, Seq: 4, Hash: 0}}},
		&DigestReq{Owner: e2},
		&DigestResp{Need: []int64{1, -2, 3}},
		&DigestResp{},
		&CensusProbe{From: e1, Digest: 0xFEEDF00D, Members: []Entry{e1, e2}},
		&CensusProbe{From: e2},
		&CensusResp{From: e2, Digest: 1, Members: []Entry{e1}},
		&CensusResp{From: e1},
		&KadFindNode{From: e1, Key: 0x8000000000000001, Refresh: true},
		&KadFindNode{From: e2, Key: 0},
		&KadFindNodeResp{From: e2, Closest: []Entry{e1, e2}},
		&KadFindNodeResp{From: e1},
		&Insert{Key: 1, Seq: 2, Holder: e1, UpBps: 100, ManifestHead: 77, ManifestDigest: 0xABCDEF01},
		&ChunkResp{Seq: 5, OK: true, Data: []byte{1}, ManifestHead: 42, ManifestDigest: 0xFEED},
		&ReplicateBatch{Owner: e1, Ops: []ReplicaOp{
			{Key: 7, Seq: 3, Holder: e2, UpBps: 500, TTLMillis: 45000,
				ManifestHash: bytes.Repeat([]byte{0xAA}, 32), ManifestTag: bytes.Repeat([]byte{0xBB}, 32)},
		}},
		&ManifestReq{FromSeq: 100, Max: 512},
		&ManifestReq{},
		&ManifestResp{Head: 200, Entries: []ManifestEntry{
			{Seq: 198, Hash: bytes.Repeat([]byte{1}, 32), Tag: bytes.Repeat([]byte{2}, 32)},
			{Seq: 199, Hash: bytes.Repeat([]byte{3}, 32), Tag: bytes.Repeat([]byte{4}, 32)},
		}},
		&ManifestResp{Head: -1},
		&PollutionReport{From: e1, Key: 9, Seq: 10, Target: e2},
		&PollutionReport{},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%T round-trip mismatch:\n  sent %#v\n  got  %#v", m, m, got)
		}
	}
}

// TestBusyNackRoundTrip pins the overload-control contract on the wire: a
// Busy shed keeps its RetryAfterMs hint and load factor across encoding,
// carries no payload, and stays distinguishable from a plain miss.
func TestBusyNackRoundTrip(t *testing.T) {
	shed := &ChunkResp{Seq: 77, Busy: true, RetryAfterMs: 125, LoadMilli: 1800}
	got := roundTrip(t, shed).(*ChunkResp)
	if !got.Busy || got.OK {
		t.Fatalf("busy nack flags mutated: %#v", got)
	}
	if got.RetryAfterMs != 125 || got.LoadMilli != 1800 {
		t.Fatalf("busy nack lost its hints: retry=%d load=%d", got.RetryAfterMs, got.LoadMilli)
	}
	if len(got.Data) != 0 {
		t.Fatalf("busy nack grew a payload: %d bytes", len(got.Data))
	}
	miss := roundTrip(t, &ChunkResp{Seq: 77, LoadMilli: 300}).(*ChunkResp)
	if miss.Busy || miss.OK || miss.RetryAfterMs != 0 {
		t.Fatalf("miss response mutated: %#v", miss)
	}
}

func TestRoundTripEmptyCollections(t *testing.T) {
	// nil vs empty slices: the codec may decode nil for empty; the
	// semantics must survive regardless.
	m := &GetStateResp{}
	got := roundTrip(t, m).(*GetStateResp)
	if got.PredOK || len(got.Succs) != 0 {
		t.Fatalf("empty GetStateResp mutated: %#v", got)
	}
}

func TestMultipleFramesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := WriteMessage(&buf, &GetChunk{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := ReadMessage(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.(*GetChunk).Seq != int64(i) {
			t.Fatalf("frame %d out of order", i)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("expected EOF-ish error on drained stream")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	big := &ChunkResp{Seq: 1, OK: true, Data: make([]byte, MaxFrame)}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, big); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	// A forged oversized header must be rejected before allocation.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&hdr); err != ErrFrameTooLarge {
		t.Fatalf("want ErrFrameTooLarge on read, got %v", err)
	}
}

func TestUnknownKindRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 1, 0xEE})
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTruncatedPayloadsNeverPanic(t *testing.T) {
	// Fuzz-ish robustness: valid frames truncated at every byte boundary
	// must produce errors, not panics.
	e1 := Entry{ID: 9, Addr: "a:1"}
	full := func() []byte {
		var buf bytes.Buffer
		_ = WriteMessage(&buf, &FindSuccessorResp{Done: true, Owner: e1, Succs: []Entry{e1, e1}, Pred: e1, OK: true})
		return buf.Bytes()
	}()
	for cut := 5; cut < len(full); cut++ {
		frame := append([]byte(nil), full[:cut]...)
		// Fix up the length header to claim only the truncated payload.
		frame[0], frame[1], frame[2], frame[3] = 0, 0, 0, byte(cut-4)
		if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
			// Some prefixes happen to parse (e.g. fewer list items); that
			// is fine as long as nothing panicked.
			continue
		}
	}
}

func TestRandomJunkNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := 5 + rng.Intn(64)
		junk := make([]byte, n)
		rng.Read(junk)
		junk[0], junk[1], junk[2] = 0, 0, 0
		junk[3] = byte(n - 4)
		junk[4] = byte(1 + rng.Intn(16)) // a known kind
		_, _ = ReadMessage(bytes.NewReader(junk))
	}
}

func TestReadFromShortStream(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, &Ping{})
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadMessage(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("short stream (%d bytes) parsed", cut)
		}
	}
}

func TestErrorImplementsError(t *testing.T) {
	var err error = &Error{Msg: "x"}
	if err.Error() != "remote: x" {
		t.Fatalf("error text %q", err.Error())
	}
}

func TestErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		retryable bool
		notOwner  bool
	}{
		{&Error{Code: CodeBusy, Msg: "b"}, true, false},
		{&Error{Code: CodeNotOwner, Msg: "n"}, false, true},
		{&Error{Code: CodeGeneric, Msg: "g"}, false, false},
		{&Error{Code: CodeShutdown, Msg: "s"}, false, false},
		{&Error{Code: CodeBadRequest, Msg: "q"}, false, false},
		{io.ErrClosedPipe, true, false}, // transport-level: presumed transient
		{nil, false, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.retryable)
		}
		if got := IsNotOwner(c.err); got != c.notOwner {
			t.Errorf("IsNotOwner(%v) = %v, want %v", c.err, got, c.notOwner)
		}
	}
}

func TestReadMessageLimit(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, &ChunkResp{Seq: 1, OK: true, Data: make([]byte, 1024)})
	frame := buf.Bytes()
	if _, err := ReadMessageLimit(bytes.NewReader(frame), 128); err != ErrFrameTooLarge {
		t.Fatalf("limit 128 accepted a ~1KiB frame: %v", err)
	}
	if _, err := ReadMessageLimit(bytes.NewReader(frame), 4096); err != nil {
		t.Fatalf("limit 4096 rejected a ~1KiB frame: %v", err)
	}
	// 0 and oversized limits clamp to MaxFrame.
	if _, err := ReadMessageLimit(bytes.NewReader(frame), 0); err != nil {
		t.Fatalf("limit 0 (= MaxFrame) rejected: %v", err)
	}
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadMessageLimit(bytes.NewReader(hdr), 1<<30); err != ErrFrameTooLarge {
		t.Fatalf("forged huge prefix accepted: %v", err)
	}
}

func TestChunkRespDataIsCopied(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMessage(&buf, &ChunkResp{Seq: 1, OK: true, Data: []byte{1, 2, 3}})
	raw := buf.Bytes()
	m, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the source buffer must not affect the decoded payload.
	for i := range raw {
		raw[i] = 0xFF
	}
	if got := m.(*ChunkResp).Data; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("decoded data aliases the input buffer: %v", got)
	}
}

func TestWriteToFailingWriter(t *testing.T) {
	if err := WriteMessage(failWriter{}, &Ping{}); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func BenchmarkEncodeDecodeLookupResp(b *testing.B) {
	m := &LookupResp{Seq: 42, Providers: []Entry{
		{ID: 1, Addr: "10.0.0.1:7001"}, {ID: 2, Addr: "10.0.0.2:7002"}, {ID: 3, Addr: "10.0.0.3:7003"},
	}}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeChunkResp(b *testing.B) {
	m := &ChunkResp{Seq: 42, OK: true, Data: make([]byte, 64*1024)}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.SetBytes(int64(len(m.Data)))
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCensusRoundTrip pins the ring-census contract on the wire: probe and
// response carry the sender identity, the view digest, and the full member
// list unchanged — the split-brain detector compares exactly these fields.
func TestCensusRoundTrip(t *testing.T) {
	view := []Entry{
		{ID: 10, Addr: "a:1"},
		{ID: 20, Addr: "b:2"},
		{ID: 30, Addr: "c:3"},
	}
	probe := &CensusProbe{From: view[0], Digest: 0x1234567890ABCDEF, Members: view}
	gotP := roundTrip(t, probe).(*CensusProbe)
	if !reflect.DeepEqual(probe, gotP) {
		t.Fatalf("census probe mutated:\n  sent %#v\n  got  %#v", probe, gotP)
	}
	resp := &CensusResp{From: view[2], Digest: 0xFFFFFFFFFFFFFFFF, Members: view[1:]}
	gotR := roundTrip(t, resp).(*CensusResp)
	if !reflect.DeepEqual(resp, gotR) {
		t.Fatalf("census resp mutated:\n  sent %#v\n  got  %#v", resp, gotR)
	}
	// An empty view (lone node probing from its member cache) must survive.
	lone := roundTrip(t, &CensusProbe{From: view[0], Digest: 0}).(*CensusProbe)
	if lone.From != view[0] || lone.Digest != 0 || len(lone.Members) != 0 {
		t.Fatalf("lone-node probe mutated: %#v", lone)
	}
}

// TestKadFindNodeRoundTrip pins the Kademlia routing contract on the wire:
// the caller identity, target key, and refresh flag survive in the request,
// and the responder identity plus the ordered k-closest list survive in the
// response — iterative lookups merge exactly these fields.
func TestKadFindNodeRoundTrip(t *testing.T) {
	caller := Entry{ID: 0x00FF00FF00FF00FF, Addr: "kad-a:1"}
	closest := []Entry{
		{ID: 0x8000000000000000, Addr: "kad-b:2"},
		{ID: 0x8000000000000001, Addr: "kad-c:3"},
		{ID: 0xC000000000000000, Addr: "kad-d:4"},
	}
	req := &KadFindNode{From: caller, Key: 0x8000000000000002, Refresh: true}
	gotReq := roundTrip(t, req).(*KadFindNode)
	if !reflect.DeepEqual(req, gotReq) {
		t.Fatalf("KadFindNode mutated:\n  sent %#v\n  got  %#v", req, gotReq)
	}
	resp := &KadFindNodeResp{From: closest[0], Closest: closest}
	gotResp := roundTrip(t, resp).(*KadFindNodeResp)
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("KadFindNodeResp mutated:\n  sent %#v\n  got  %#v", resp, gotResp)
	}
	// A responder with an empty routing table (fresh bootstrap target) must
	// still answer with its identity intact.
	empty := roundTrip(t, &KadFindNodeResp{From: caller}).(*KadFindNodeResp)
	if empty.From != caller || len(empty.Closest) != 0 {
		t.Fatalf("empty-table response mutated: %#v", empty)
	}
}

// TestManifestRoundTrip pins the chunk-authentication contract on the
// wire: manifest rows carry the exact 32-byte hash and tag (verification
// compares them bit-for-bit), the head survives, and the piggybacked
// manifest ad on Insert/ChunkResp rides along without disturbing the
// pre-existing fields.
func TestManifestRoundTrip(t *testing.T) {
	rows := []ManifestEntry{
		{Seq: 1000, Hash: bytes.Repeat([]byte{0x11}, 32), Tag: bytes.Repeat([]byte{0x22}, 32)},
		{Seq: 1001, Hash: bytes.Repeat([]byte{0x33}, 32), Tag: bytes.Repeat([]byte{0x44}, 32)},
	}
	resp := &ManifestResp{Head: 1002, Entries: rows}
	got := roundTrip(t, resp).(*ManifestResp)
	if !reflect.DeepEqual(resp, got) {
		t.Fatalf("manifest resp mutated:\n  sent %#v\n  got  %#v", resp, got)
	}
	req := &ManifestReq{FromSeq: 990, Max: 512}
	if gr := roundTrip(t, req).(*ManifestReq); *gr != *req {
		t.Fatalf("manifest req mutated: %#v", gr)
	}
	// Piggybacked ad on a chunk response: old fields and new coexist.
	cr := &ChunkResp{Seq: 9, OK: true, Data: []byte{5, 6}, LoadMilli: 300, ManifestHead: 1002, ManifestDigest: 0xDEAD}
	gc := roundTrip(t, cr).(*ChunkResp)
	if !reflect.DeepEqual(cr, gc) {
		t.Fatalf("chunk resp with manifest ad mutated:\n  sent %#v\n  got  %#v", cr, gc)
	}
	// An oversized row count claim must be rejected before allocation.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, resp); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// Bytes 4 (kind) + 8 (head): the row count lives at offset 13.
	frame[13], frame[14], frame[15], frame[16] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
		t.Fatal("forged huge manifest row count accepted")
	}
}

// TestPollutionReportRoundTrip pins the quarantine-gossip contract: the
// reporter identity (transport 'from' is unreliable over TCP, so it rides
// in-band), the polluted key/seq, and the accused provider all survive.
func TestPollutionReportRoundTrip(t *testing.T) {
	rep := &PollutionReport{
		From:   Entry{ID: 5, Addr: "honest:1"},
		Key:    0xFEEDFACE,
		Seq:    321,
		Target: Entry{ID: 66, Addr: "evil:2"},
	}
	got := roundTrip(t, rep).(*PollutionReport)
	if *got != *rep {
		t.Fatalf("pollution report mutated:\n  sent %#v\n  got  %#v", rep, got)
	}
}
