package wire

import (
	"bytes"
	"testing"
)

// FuzzReadMessage feeds arbitrary frames through the decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to the
// same kind (decode/encode stability).
func FuzzReadMessage(f *testing.F) {
	// Seed with one valid frame of each kind.
	e := Entry{ID: 7, Addr: "seed:1"}
	seeds := []Message{
		&Error{Msg: "x"},
		&Ping{}, &Pong{},
		&FindSuccessor{Key: 1},
		&FindSuccessorResp{Done: true, Owner: e, Succs: []Entry{e}, Pred: e, OK: true},
		&GetState{}, &GetStateResp{Pred: e, PredOK: true, Succs: []Entry{e}},
		&Notify{From: e}, &Ack{},
		&Lookup{Key: 2, Seq: 3, MaxWait: 4},
		&Lookup{Key: 2, Seq: 3, MaxWait: 4, DeadlineMs: 1200},
		&LookupResp{Seq: 3, Providers: []Entry{e}},
		&Insert{Key: 5, Seq: 6, Holder: e, UpBps: 7, BufCount: 8, LoadMilli: 900},
		&GetChunk{Seq: 9, WaitMs: 150},
		&GetChunk{Seq: 9, WaitMs: 150, DeadlineMs: 800},
		&ChunkResp{Seq: 10, OK: true, LoadMilli: 330, Data: []byte{1, 2}},
		&ChunkResp{Seq: 11, Busy: true, RetryAfterMs: 60, LoadMilli: 1500},
		&Handoff{Entries: []HandoffEntry{{Key: 1, Seq: 2, Providers: []Entry{e}}}},
		&Leave{From: e, NewSucc: []Entry{e}},
		&ReplicateBatch{Owner: e, Ops: []ReplicaOp{{Key: 1, Seq: 2, Holder: e, UpBps: 3, TTLMillis: 4}}},
		&DigestReq{Owner: e, Digests: []SeqDigest{{Key: 1, Seq: 2, Hash: 3}}},
		&DigestResp{Need: []int64{5}},
		&CensusProbe{From: e, Digest: 6, Members: []Entry{e}},
		&CensusResp{From: e, Digest: 6, Members: []Entry{e}},
		&KadFindNode{From: e, Key: 12, Refresh: true},
		&KadFindNodeResp{From: e, Closest: []Entry{e}},
		&Insert{Key: 5, Seq: 6, Holder: e, UpBps: 7, ManifestHead: 80, ManifestDigest: 0x1234},
		&ChunkResp{Seq: 10, OK: true, Data: []byte{1, 2}, ManifestHead: 81, ManifestDigest: 0x5678},
		&ReplicateBatch{Owner: e, Ops: []ReplicaOp{{Key: 1, Seq: 2, Holder: e,
			ManifestHash: bytes.Repeat([]byte{9}, 32), ManifestTag: bytes.Repeat([]byte{8}, 32)}}},
		&ManifestReq{FromSeq: 4, Max: 128},
		&ManifestResp{Head: 5, Entries: []ManifestEntry{{Seq: 4, Hash: bytes.Repeat([]byte{6}, 32), Tag: bytes.Repeat([]byte{7}, 32)}}},
		&PollutionReport{From: e, Key: 3, Seq: 4, Target: e},
	}
	for _, m := range seeds {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return // rejects are fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		m2, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if m.Kind() != m2.Kind() {
			t.Fatalf("kind changed across round-trip: %v -> %v", m.Kind(), m2.Kind())
		}
	})
}
