// Package wire defines the binary protocol the live (real-network) DCO
// node speaks: a compact, length-prefixed framing with explicit field
// encoding. Every RPC the simulated protocol performs — DHT routing steps,
// stabilization, chunk index Insert/Lookup, chunk fetches, index handoff —
// has a message pair here.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind tags a message.
type Kind uint8

// Message kinds. Requests and responses are distinct kinds so a frame is
// self-describing.
const (
	KindInvalid Kind = iota
	KindError
	KindPing
	KindPong
	KindFindSuccessor
	KindFindSuccessorResp
	KindGetState
	KindGetStateResp
	KindNotify
	KindAck
	KindLookup
	KindLookupResp
	KindInsert
	KindGetChunk
	KindChunkResp
	KindHandoff
	KindLeave
	KindReplicateBatch
	KindDigestReq
	KindDigestResp
	KindCensusProbe
	KindCensusResp
	KindKadFindNode
	KindKadFindNodeResp
	KindManifestReq
	KindManifestResp
	KindPollutionReport
)

// MaxFrame bounds a frame (type byte + payload). Chunks dominate; 4 MiB
// accommodates seconds of HD video per chunk with headroom.
const MaxFrame = 4 << 20

// Errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("wire: truncated message")
	ErrUnknownKind   = errors.New("wire: unknown message kind")
)

// Message is anything that can travel in a frame.
type Message interface {
	Kind() Kind
	encode(b []byte) []byte
	decode(r *reader) error
}

// Entry mirrors chord.Entry[string] on the wire.
type Entry struct {
	ID   uint64
	Addr string
}

// ---------------------------------------------------------------------------
// Concrete messages.

// Code classifies an Error so callers can tell retryable conditions from
// terminal ones without parsing message strings (the live stack's retry
// and failover layers key off it).
type Code uint8

// Error codes.
const (
	// CodeGeneric is an unclassified failure: not retried.
	CodeGeneric Code = iota
	// CodeNotOwner means the receiver does not own the key. Terminal at
	// this address, but the caller should re-route: ownership moved.
	CodeNotOwner
	// CodeBusy means the receiver turned the request away under load.
	// Retryable after a pause (or at another provider).
	CodeBusy
	// CodeShutdown means the receiver is closing. Terminal there.
	CodeShutdown
	// CodeBadRequest means the request was malformed. Terminal.
	CodeBadRequest
)

// Error carries a failure back to the caller, classified by Code.
type Error struct {
	Code Code
	Msg  string
}

// Retryable reports whether the remote condition is worth retrying at
// the same address.
func (m *Error) Retryable() bool { return m.Code == CodeBusy }

// Retryable classifies err for retry loops: remote wire.Errors retry only
// when their code says so; anything else (dial failures, timeouts, reset
// connections — the transport-level failures) is presumed transient and
// retryable.
func Retryable(err error) bool {
	var we *Error
	if errors.As(err, &we) {
		return we.Retryable()
	}
	return err != nil
}

// IsNotOwner reports whether err is a remote not-the-owner rejection,
// which calls for re-routing rather than retrying.
func IsNotOwner(err error) bool {
	var we *Error
	return errors.As(err, &we) && we.Code == CodeNotOwner
}

// Ping checks liveness; Pong answers.
type Ping struct{}

// Pong answers a Ping.
type Pong struct{}

// FindSuccessor asks the receiver for the next routing step toward Key.
type FindSuccessor struct{ Key uint64 }

// FindSuccessorResp: if Done, Owner is the key's owner; otherwise the
// caller should continue at Owner (the closest preceding node).
type FindSuccessorResp struct {
	Done  bool
	Owner Entry
	// Populated when Done (join support):
	Succs []Entry
	Pred  Entry
	OK    bool // Pred valid
}

// GetState fetches the receiver's predecessor and successor list
// (stabilization).
type GetState struct{}

// GetStateResp answers GetState.
type GetStateResp struct {
	Pred   Entry
	PredOK bool
	Succs  []Entry
}

// Notify tells the receiver the sender may be its predecessor.
type Notify struct{ From Entry }

// Ack is the generic empty success reply.
type Ack struct{}

// Lookup asks the chunk's coordinator for providers. MaxWait is how long
// the coordinator may hold the request waiting for a provider to register
// (the paper's pending queue), in milliseconds. DeadlineMs is the
// requester's remaining per-call budget at send time (0 = unbounded, old
// clients); like TTLMillis it is relative, restamped by each sender, so
// absolute clocks never cross the wire. A coordinator clamps its pending
// wait by it — holding past the caller's deadline only produces an answer
// nobody is waiting for.
type Lookup struct {
	Key        uint64
	Seq        int64
	MaxWait    uint32
	DeadlineMs uint32
}

// LookupResp lists providers (possibly empty when MaxWait elapsed).
type LookupResp struct {
	Seq       int64
	Providers []Entry
}

// Insert registers (or withdraws) a chunk index with its coordinator.
// LoadMilli is the holder's upload load factor in thousandths (0 = idle,
// 1000 = the advertised UpBps is fully committed, >1000 = backlog beyond
// the budget); republish Inserts piggyback it so coordinators keep a
// recent load report per provider and can answer Lookups with nodes that
// actually have spare capacity (the paper's "sufficient bandwidth" rule).
type Insert struct {
	Key        uint64
	Seq        int64
	Holder     Entry
	UpBps      int64
	BufCount   int64
	LoadMilli  uint32
	Unregister bool
	// ManifestHead/ManifestDigest piggyback the sender's chunk-manifest
	// coverage (see ManifestResp): Head is the exclusive upper bound of
	// the seqs its manifest covers (0 = none), Digest a cheap fingerprint
	// of the newest entry so divergent manifests are detectable without a
	// fetch. Advisory only — never trusted for anything destructive.
	ManifestHead   int64
	ManifestDigest uint64
}

// GetChunk requests chunk data from a provider. WaitMs is how long the
// requester is willing to be queued behind the provider's upload pacer
// before it would rather take a Busy nack and try elsewhere (0 = serve
// immediately or shed). DeadlineMs is the requester's remaining per-call
// budget at send time (0 = unbounded), a relative duration like TTLMillis;
// a provider sheds work that cannot arrive in time instead of paying
// upload budget for a reply the caller has already abandoned.
type GetChunk struct {
	Seq        int64
	WaitMs     uint32
	DeadlineMs uint32
}

// ChunkResp returns chunk data; OK=false means the provider lacks it (or
// turned the request away). Every response carries LoadMilli, the
// provider's current upload load factor in thousandths; Busy sheds also
// carry RetryAfterMs, the provider's estimate of when its pacer could
// admit the transfer (always nonzero on a shed).
type ChunkResp struct {
	Seq          int64
	OK           bool
	Busy         bool
	RetryAfterMs uint32
	LoadMilli    uint32
	Data         []byte
	// ManifestHead/ManifestDigest mirror the fields on Insert: the
	// provider's manifest coverage, so viewers learn the current window
	// from the responses they are already receiving.
	ManifestHead   int64
	ManifestDigest uint64
}

// HandoffEntry is one chunk's index rows in a Handoff.
type HandoffEntry struct {
	Key       uint64
	Seq       int64
	Providers []Entry
}

// Handoff transfers index entries to their new owner.
type Handoff struct{ Entries []HandoffEntry }

// Leave announces a graceful departure to a ring neighbor.
type Leave struct {
	From    Entry
	NewPred Entry
	PredOK  bool
	NewSucc []Entry
}

// ReplicaOp is one replicated index mutation: a provider registration (or
// withdrawal) the owning coordinator mirrors onto its successors. TTLMillis
// is the provider lease's remaining lifetime when the op was sent (0 = no
// lease); receivers restamp against their own clock, so absolute times
// never cross the wire.
type ReplicaOp struct {
	Key        uint64
	Seq        int64
	Holder     Entry
	UpBps      int64
	TTLMillis  uint32
	Unregister bool
	// ManifestHash/ManifestTag carry the owner's manifest entry for Seq
	// (empty when the owner has none), so manifests replicate with the
	// chunk index and survive coordinator failover. Receivers verify the
	// tag before caching — a replica never stores an unauthenticated row.
	ManifestHash []byte
	ManifestTag  []byte
}

// ReplicateBatch mirrors a batch of index mutations from Owner onto a
// successor. Full means the ops are the owner's complete record for every
// seq they mention — the receiver replaces those entries instead of
// merging (anti-entropy repair uses this to erase divergence).
type ReplicateBatch struct {
	Owner Entry
	Full  bool
	Ops   []ReplicaOp
}

// SeqDigest summarizes one owned index entry for anti-entropy: a hash over
// the entry's live provider set.
type SeqDigest struct {
	Key  uint64
	Seq  int64
	Hash uint64
}

// DigestReq carries the owner's complete per-entry digests for its owned
// range. A replica drops its copies of entries absent from the digest (the
// owner no longer has them) and answers with the seqs it needs re-sent.
type DigestReq struct {
	Owner   Entry
	Digests []SeqDigest
}

// DigestResp lists the seqs the replica is missing or holds divergently;
// the owner follows up with a Full ReplicateBatch for them.
type DigestResp struct {
	Need []int64
}

// ManifestEntry is one row of the source's chunk manifest: the SHA-256 of
// the chunk payload plus the source's authenticator tag over (seq, hash).
// The tag lets any peer relay and cache rows it did not mint — a receiver
// verifies the tag against the channel parameters before trusting the row.
type ManifestEntry struct {
	Seq  int64
	Hash []byte // SHA-256 of the chunk payload (32 bytes)
	Tag  []byte // channel-keyed authenticator over seq|hash (32 bytes)
}

// ManifestReq asks a peer for its manifest rows covering seqs in
// [FromSeq, FromSeq+Max). Peers answer with whatever subset they hold.
type ManifestReq struct {
	FromSeq int64
	Max     uint32
}

// ManifestResp returns manifest rows. Head is the exclusive upper bound of
// the responder's total coverage (it may exceed the rows returned).
type ManifestResp struct {
	Head    int64
	Entries []ManifestEntry
}

// PollutionReport accuses Target of serving a chunk under Key/Seq whose
// payload failed integrity verification. From identifies the reporter
// explicitly (transport source addresses are ephemeral over TCP). The
// coordinator quarantines Target once enough distinct reporters agree —
// a single report is never enough, so one slanderer cannot evict a peer.
type PollutionReport struct {
	From   Entry
	Key    uint64
	Seq    int64
	Target Entry
}

// CensusProbe is the ring census beacon: From asks a cached member (usually
// one outside its current successor list) for its ring view. Digest is a
// hash over the sender's sorted view addresses and Members the view itself
// (self + successor list + predecessor), so the receiver can detect a
// split-brain symmetrically from the same exchange.
type CensusProbe struct {
	From    Entry
	Digest  uint64
	Members []Entry
}

// CensusResp answers a probe with the receiver's own ring view, mirrored
// fields. Matching digests short-circuit comparison; member-disjoint views
// flag a suspected split, confirmed by routing the prober's own ID through
// the responder.
type CensusResp struct {
	From    Entry
	Digest  uint64
	Members []Entry
}

// KadFindNode is the Kademlia routing primitive: From asks the receiver for
// the k contacts it knows closest (by XOR distance) to Key. From doubles as
// a passive sighting — the receiver inserts the caller into its own buckets.
// Refresh marks bucket-refresh traffic so telemetry can split maintenance
// lookups from demand lookups; the receiver answers both identically.
// There is no separate FindValue: chunk-index reads stay on the existing
// Lookup message, routed to the key's owner first.
type KadFindNode struct {
	From    Entry
	Key     uint64
	Refresh bool
}

// KadFindNodeResp returns the receiver's identity (the caller refreshes its
// bucket entry for the responder) and its k-closest contacts to the asked
// key, nearest first.
type KadFindNodeResp struct {
	From    Entry
	Closest []Entry
}

// ---------------------------------------------------------------------------
// Framing.

// WriteMessage frames and writes m: uint32 length, kind byte, payload.
func WriteMessage(w io.Writer, m Message) error {
	_, err := WriteMessageN(w, m)
	return err
}

// WriteMessageN is WriteMessage returning the number of bytes put on the
// wire (header included), so transports can meter traffic without
// encoding the message twice.
func WriteMessageN(w io.Writer, m Message) (int, error) {
	payload := m.encode(nil)
	if len(payload)+1 > MaxFrame {
		return 0, ErrFrameTooLarge
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = byte(m.Kind())
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return len(hdr), err
	}
	return len(hdr) + len(payload), nil
}

// ReadMessage reads one framed message, bounded by MaxFrame.
func ReadMessage(r io.Reader) (Message, error) {
	return ReadMessageLimit(r, MaxFrame)
}

// ReadMessageLimit reads one framed message, rejecting frames whose
// declared length exceeds limit — before allocating anything — so a
// hostile or corrupt length prefix cannot balloon memory. limit values
// of 0 or above MaxFrame clamp to MaxFrame.
func ReadMessageLimit(r io.Reader, limit uint32) (Message, error) {
	m, _, err := ReadMessageLimitN(r, limit)
	return m, err
}

// ReadMessageLimitN is ReadMessageLimit returning the number of bytes the
// frame occupied on the wire (header included).
func ReadMessageLimitN(r io.Reader, limit uint32) (Message, int, error) {
	if limit == 0 || limit > MaxFrame {
		limit = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, len(hdr), ErrTruncated
	}
	if n > limit {
		return nil, len(hdr), ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, len(hdr), err
	}
	size := len(hdr) + int(n)
	m, err := New(Kind(buf[0]))
	if err != nil {
		return nil, size, err
	}
	rd := &reader{b: buf[1:]}
	if err := m.decode(rd); err != nil {
		return nil, size, err
	}
	return m, size, nil
}

// New returns a zero message of the given kind.
func New(k Kind) (Message, error) {
	switch k {
	case KindError:
		return &Error{}, nil
	case KindPing:
		return &Ping{}, nil
	case KindPong:
		return &Pong{}, nil
	case KindFindSuccessor:
		return &FindSuccessor{}, nil
	case KindFindSuccessorResp:
		return &FindSuccessorResp{}, nil
	case KindGetState:
		return &GetState{}, nil
	case KindGetStateResp:
		return &GetStateResp{}, nil
	case KindNotify:
		return &Notify{}, nil
	case KindAck:
		return &Ack{}, nil
	case KindLookup:
		return &Lookup{}, nil
	case KindLookupResp:
		return &LookupResp{}, nil
	case KindInsert:
		return &Insert{}, nil
	case KindGetChunk:
		return &GetChunk{}, nil
	case KindChunkResp:
		return &ChunkResp{}, nil
	case KindHandoff:
		return &Handoff{}, nil
	case KindLeave:
		return &Leave{}, nil
	case KindReplicateBatch:
		return &ReplicateBatch{}, nil
	case KindDigestReq:
		return &DigestReq{}, nil
	case KindDigestResp:
		return &DigestResp{}, nil
	case KindCensusProbe:
		return &CensusProbe{}, nil
	case KindCensusResp:
		return &CensusResp{}, nil
	case KindKadFindNode:
		return &KadFindNode{}, nil
	case KindKadFindNodeResp:
		return &KadFindNodeResp{}, nil
	case KindManifestReq:
		return &ManifestReq{}, nil
	case KindManifestResp:
		return &ManifestResp{}, nil
	case KindPollutionReport:
		return &PollutionReport{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, k)
	}
}

// ---------------------------------------------------------------------------
// Field codec: append-style writers, cursor-style reader.

func putU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func putI64(b []byte, v int64) []byte { return putU64(b, uint64(v)) }

func putU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func putBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func putBytes(b, v []byte) []byte {
	b = putU32(b, uint32(len(v)))
	return append(b, v...)
}

func putString(b []byte, s string) []byte { return putBytes(b, []byte(s)) }

func putEntry(b []byte, e Entry) []byte {
	b = putU64(b, e.ID)
	return putString(b, e.Addr)
}

func putEntries(b []byte, es []Entry) []byte {
	b = putU32(b, uint32(len(es)))
	for _, e := range es {
		b = putEntry(b, e)
	}
	return b
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) boolean() bool {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v != 0
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || uint32(len(r.b)) < n {
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

func (r *reader) str() string { return string(r.bytes()) }

// bytesCopy is bytes() with an owned copy, for fields retained past the
// frame buffer's lifetime (nil when empty, so round-trips DeepEqual).
func (r *reader) bytesCopy() []byte {
	v := r.bytes()
	if len(v) == 0 {
		return nil
	}
	return append([]byte(nil), v...)
}

func (r *reader) entry() Entry {
	return Entry{ID: r.u64(), Addr: r.str()}
}

func (r *reader) entries() []Entry {
	n := r.u32()
	if r.err != nil || n > MaxFrame/9 { // each entry is >= 12 bytes encoded
		r.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]Entry, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.entry())
	}
	return out
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// ---------------------------------------------------------------------------
// Per-message codecs.

func (m *Error) Kind() Kind { return KindError }
func (m *Error) encode(b []byte) []byte {
	b = append(b, byte(m.Code))
	return putString(b, m.Msg)
}
func (m *Error) decode(r *reader) error {
	m.Code = Code(r.u8())
	m.Msg = r.str()
	return r.err
}

// Error implements the error interface so transports can surface it.
func (m *Error) Error() string { return "remote: " + m.Msg }

func (m *Ping) Kind() Kind             { return KindPing }
func (m *Ping) encode(b []byte) []byte { return b }
func (m *Ping) decode(*reader) error   { return nil }

func (m *Pong) Kind() Kind             { return KindPong }
func (m *Pong) encode(b []byte) []byte { return b }
func (m *Pong) decode(*reader) error   { return nil }

func (m *FindSuccessor) Kind() Kind             { return KindFindSuccessor }
func (m *FindSuccessor) encode(b []byte) []byte { return putU64(b, m.Key) }
func (m *FindSuccessor) decode(r *reader) error { m.Key = r.u64(); return r.err }

func (m *FindSuccessorResp) Kind() Kind { return KindFindSuccessorResp }
func (m *FindSuccessorResp) encode(b []byte) []byte {
	b = putBool(b, m.Done)
	b = putEntry(b, m.Owner)
	b = putEntries(b, m.Succs)
	b = putEntry(b, m.Pred)
	return putBool(b, m.OK)
}
func (m *FindSuccessorResp) decode(r *reader) error {
	m.Done = r.boolean()
	m.Owner = r.entry()
	m.Succs = r.entries()
	m.Pred = r.entry()
	m.OK = r.boolean()
	return r.err
}

func (m *GetState) Kind() Kind             { return KindGetState }
func (m *GetState) encode(b []byte) []byte { return b }
func (m *GetState) decode(*reader) error   { return nil }

func (m *GetStateResp) Kind() Kind { return KindGetStateResp }
func (m *GetStateResp) encode(b []byte) []byte {
	b = putEntry(b, m.Pred)
	b = putBool(b, m.PredOK)
	return putEntries(b, m.Succs)
}
func (m *GetStateResp) decode(r *reader) error {
	m.Pred = r.entry()
	m.PredOK = r.boolean()
	m.Succs = r.entries()
	return r.err
}

func (m *Notify) Kind() Kind             { return KindNotify }
func (m *Notify) encode(b []byte) []byte { return putEntry(b, m.From) }
func (m *Notify) decode(r *reader) error { m.From = r.entry(); return r.err }

func (m *Ack) Kind() Kind             { return KindAck }
func (m *Ack) encode(b []byte) []byte { return b }
func (m *Ack) decode(*reader) error   { return nil }

func (m *Lookup) Kind() Kind { return KindLookup }
func (m *Lookup) encode(b []byte) []byte {
	b = putU64(b, m.Key)
	b = putI64(b, m.Seq)
	b = putU32(b, m.MaxWait)
	return putU32(b, m.DeadlineMs)
}
func (m *Lookup) decode(r *reader) error {
	m.Key = r.u64()
	m.Seq = r.i64()
	m.MaxWait = r.u32()
	m.DeadlineMs = r.u32()
	return r.err
}

func (m *LookupResp) Kind() Kind { return KindLookupResp }
func (m *LookupResp) encode(b []byte) []byte {
	b = putI64(b, m.Seq)
	return putEntries(b, m.Providers)
}
func (m *LookupResp) decode(r *reader) error {
	m.Seq = r.i64()
	m.Providers = r.entries()
	return r.err
}

func (m *Insert) Kind() Kind { return KindInsert }
func (m *Insert) encode(b []byte) []byte {
	b = putU64(b, m.Key)
	b = putI64(b, m.Seq)
	b = putEntry(b, m.Holder)
	b = putI64(b, m.UpBps)
	b = putI64(b, m.BufCount)
	b = putU32(b, m.LoadMilli)
	b = putBool(b, m.Unregister)
	b = putI64(b, m.ManifestHead)
	return putU64(b, m.ManifestDigest)
}
func (m *Insert) decode(r *reader) error {
	m.Key = r.u64()
	m.Seq = r.i64()
	m.Holder = r.entry()
	m.UpBps = r.i64()
	m.BufCount = r.i64()
	m.LoadMilli = r.u32()
	m.Unregister = r.boolean()
	m.ManifestHead = r.i64()
	m.ManifestDigest = r.u64()
	return r.err
}

func (m *GetChunk) Kind() Kind { return KindGetChunk }
func (m *GetChunk) encode(b []byte) []byte {
	b = putI64(b, m.Seq)
	b = putU32(b, m.WaitMs)
	return putU32(b, m.DeadlineMs)
}
func (m *GetChunk) decode(r *reader) error {
	m.Seq = r.i64()
	m.WaitMs = r.u32()
	m.DeadlineMs = r.u32()
	return r.err
}

func (m *ChunkResp) Kind() Kind { return KindChunkResp }
func (m *ChunkResp) encode(b []byte) []byte {
	b = putI64(b, m.Seq)
	b = putBool(b, m.OK)
	b = putBool(b, m.Busy)
	b = putU32(b, m.RetryAfterMs)
	b = putU32(b, m.LoadMilli)
	b = putBytes(b, m.Data)
	b = putI64(b, m.ManifestHead)
	return putU64(b, m.ManifestDigest)
}
func (m *ChunkResp) decode(r *reader) error {
	m.Seq = r.i64()
	m.OK = r.boolean()
	m.Busy = r.boolean()
	m.RetryAfterMs = r.u32()
	m.LoadMilli = r.u32()
	m.Data = append([]byte(nil), r.bytes()...)
	m.ManifestHead = r.i64()
	m.ManifestDigest = r.u64()
	return r.err
}

func (m *Handoff) Kind() Kind { return KindHandoff }
func (m *Handoff) encode(b []byte) []byte {
	b = putU32(b, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		b = putU64(b, e.Key)
		b = putI64(b, e.Seq)
		b = putEntries(b, e.Providers)
	}
	return b
}
func (m *Handoff) decode(r *reader) error {
	n := r.u32()
	if r.err != nil || n > MaxFrame/17 {
		r.fail()
		return r.err
	}
	m.Entries = make([]HandoffEntry, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		var e HandoffEntry
		e.Key = r.u64()
		e.Seq = r.i64()
		e.Providers = r.entries()
		m.Entries = append(m.Entries, e)
	}
	return r.err
}

func (m *Leave) Kind() Kind { return KindLeave }
func (m *Leave) encode(b []byte) []byte {
	b = putEntry(b, m.From)
	b = putEntry(b, m.NewPred)
	b = putBool(b, m.PredOK)
	return putEntries(b, m.NewSucc)
}
func (m *Leave) decode(r *reader) error {
	m.From = r.entry()
	m.NewPred = r.entry()
	m.PredOK = r.boolean()
	m.NewSucc = r.entries()
	return r.err
}

func (m *ReplicateBatch) Kind() Kind { return KindReplicateBatch }
func (m *ReplicateBatch) encode(b []byte) []byte {
	b = putEntry(b, m.Owner)
	b = putBool(b, m.Full)
	b = putU32(b, uint32(len(m.Ops)))
	for _, op := range m.Ops {
		b = putU64(b, op.Key)
		b = putI64(b, op.Seq)
		b = putEntry(b, op.Holder)
		b = putI64(b, op.UpBps)
		b = putU32(b, op.TTLMillis)
		b = putBool(b, op.Unregister)
		b = putBytes(b, op.ManifestHash)
		b = putBytes(b, op.ManifestTag)
	}
	return b
}
func (m *ReplicateBatch) decode(r *reader) error {
	m.Owner = r.entry()
	m.Full = r.boolean()
	n := r.u32()
	if r.err != nil || n > MaxFrame/49 { // each op is >= 49 bytes encoded
		r.fail()
		return r.err
	}
	if n == 0 {
		return r.err
	}
	m.Ops = make([]ReplicaOp, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		var op ReplicaOp
		op.Key = r.u64()
		op.Seq = r.i64()
		op.Holder = r.entry()
		op.UpBps = r.i64()
		op.TTLMillis = r.u32()
		op.Unregister = r.boolean()
		op.ManifestHash = r.bytesCopy()
		op.ManifestTag = r.bytesCopy()
		m.Ops = append(m.Ops, op)
	}
	return r.err
}

func (m *DigestReq) Kind() Kind { return KindDigestReq }
func (m *DigestReq) encode(b []byte) []byte {
	b = putEntry(b, m.Owner)
	b = putU32(b, uint32(len(m.Digests)))
	for _, d := range m.Digests {
		b = putU64(b, d.Key)
		b = putI64(b, d.Seq)
		b = putU64(b, d.Hash)
	}
	return b
}
func (m *DigestReq) decode(r *reader) error {
	m.Owner = r.entry()
	n := r.u32()
	if r.err != nil || n > MaxFrame/24 { // each digest is 24 bytes encoded
		r.fail()
		return r.err
	}
	if n == 0 {
		return r.err
	}
	m.Digests = make([]SeqDigest, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		var d SeqDigest
		d.Key = r.u64()
		d.Seq = r.i64()
		d.Hash = r.u64()
		m.Digests = append(m.Digests, d)
	}
	return r.err
}

func (m *DigestResp) Kind() Kind { return KindDigestResp }
func (m *DigestResp) encode(b []byte) []byte {
	b = putU32(b, uint32(len(m.Need)))
	for _, seq := range m.Need {
		b = putI64(b, seq)
	}
	return b
}
func (m *DigestResp) decode(r *reader) error {
	n := r.u32()
	if r.err != nil || n > MaxFrame/8 {
		r.fail()
		return r.err
	}
	if n == 0 {
		return r.err
	}
	m.Need = make([]int64, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		m.Need = append(m.Need, r.i64())
	}
	return r.err
}

func (m *CensusProbe) Kind() Kind { return KindCensusProbe }
func (m *CensusProbe) encode(b []byte) []byte {
	b = putEntry(b, m.From)
	b = putU64(b, m.Digest)
	return putEntries(b, m.Members)
}
func (m *CensusProbe) decode(r *reader) error {
	m.From = r.entry()
	m.Digest = r.u64()
	m.Members = r.entries()
	return r.err
}

func (m *CensusResp) Kind() Kind { return KindCensusResp }
func (m *CensusResp) encode(b []byte) []byte {
	b = putEntry(b, m.From)
	b = putU64(b, m.Digest)
	return putEntries(b, m.Members)
}
func (m *CensusResp) decode(r *reader) error {
	m.From = r.entry()
	m.Digest = r.u64()
	m.Members = r.entries()
	return r.err
}

func (m *KadFindNode) Kind() Kind { return KindKadFindNode }
func (m *KadFindNode) encode(b []byte) []byte {
	b = putEntry(b, m.From)
	b = putU64(b, m.Key)
	return putBool(b, m.Refresh)
}
func (m *KadFindNode) decode(r *reader) error {
	m.From = r.entry()
	m.Key = r.u64()
	m.Refresh = r.boolean()
	return r.err
}

func (m *KadFindNodeResp) Kind() Kind { return KindKadFindNodeResp }
func (m *KadFindNodeResp) encode(b []byte) []byte {
	b = putEntry(b, m.From)
	return putEntries(b, m.Closest)
}
func (m *KadFindNodeResp) decode(r *reader) error {
	m.From = r.entry()
	m.Closest = r.entries()
	return r.err
}

func (m *ManifestReq) Kind() Kind { return KindManifestReq }
func (m *ManifestReq) encode(b []byte) []byte {
	b = putI64(b, m.FromSeq)
	return putU32(b, m.Max)
}
func (m *ManifestReq) decode(r *reader) error {
	m.FromSeq = r.i64()
	m.Max = r.u32()
	return r.err
}

func (m *ManifestResp) Kind() Kind { return KindManifestResp }
func (m *ManifestResp) encode(b []byte) []byte {
	b = putI64(b, m.Head)
	b = putU32(b, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		b = putI64(b, e.Seq)
		b = putBytes(b, e.Hash)
		b = putBytes(b, e.Tag)
	}
	return b
}
func (m *ManifestResp) decode(r *reader) error {
	m.Head = r.i64()
	n := r.u32()
	if r.err != nil || n > MaxFrame/80 { // each entry is >= 80 bytes encoded
		r.fail()
		return r.err
	}
	if n == 0 {
		return r.err
	}
	m.Entries = make([]ManifestEntry, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		var e ManifestEntry
		e.Seq = r.i64()
		e.Hash = r.bytesCopy()
		e.Tag = r.bytesCopy()
		m.Entries = append(m.Entries, e)
	}
	return r.err
}

func (m *PollutionReport) Kind() Kind { return KindPollutionReport }
func (m *PollutionReport) encode(b []byte) []byte {
	b = putEntry(b, m.From)
	b = putU64(b, m.Key)
	b = putI64(b, m.Seq)
	return putEntry(b, m.Target)
}
func (m *PollutionReport) decode(r *reader) error {
	m.From = r.entry()
	m.Key = r.u64()
	m.Seq = r.i64()
	m.Target = r.entry()
	return r.err
}
