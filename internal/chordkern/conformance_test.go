package chordkern_test

import (
	"testing"
	"time"

	"dco/internal/chordkern"
	"dco/internal/dht"
	"dco/internal/dht/dhttest"
)

func TestConformance(t *testing.T) {
	dhttest.Run(t, func(opts dht.Options) dht.Kernel {
		return chordkern.New(chordkern.Config{
			SuccListSize:    4,
			StabilizeEvery:  10 * time.Millisecond,
			FixFingersEvery: 5 * time.Millisecond,
		}, opts)
	})
}
