// Package chordkern implements the dht.Kernel contract with the Chord ring
// the paper assumes: successor-list routing, finger tables, and the
// stabilize/notify maintenance protocol. The pure ring state machine stays
// in internal/chord (shared with the simulator); this package owns the
// networked half — the RPC handlers and maintenance loops that used to live
// inside internal/live — behind the backend-neutral interface.
package chordkern

import (
	"fmt"
	"sync"
	"time"

	"dco/internal/chord"
	"dco/internal/dht"
	"dco/internal/telemetry"
	"dco/internal/wire"
)

type entryT = chord.Entry[string]

// Config tunes the Chord backend.
type Config struct {
	// SuccListSize is the successor-list length (the paper varies it 8-64).
	SuccListSize int
	// StabilizeEvery is the stabilize + check-predecessor cadence.
	StabilizeEvery time.Duration
	// FixFingersEvery is the finger-repair cadence (one finger per tick).
	FixFingersEvery time.Duration
}

// Kernel is the Chord backend. Safe for concurrent use; see the dht package
// comment for the locking contract (events and RPCs never fire under mu).
type Kernel struct {
	cfg   Config
	self  dht.Member
	call  dht.Caller
	ev    dht.Events
	trace *telemetry.Trace
	done  <-chan struct{}

	mu          sync.Mutex
	cs          *chord.State[string]
	quarantined map[string]time.Time

	stabilizeRuns *telemetry.Counter
	fingerFixes   *telemetry.Counter
	lookups       *telemetry.Counter
	lookupHops    *telemetry.Counter
	hopHist       *telemetry.Histogram
}

// New builds a Chord kernel for opts.Self. The registry gains the ring
// maintenance gauges (dco_ring_*) and the backend-neutral lookup-hop
// histogram (dco_dht_lookup_hops).
func New(cfg Config, opts dht.Options) *Kernel {
	if cfg.SuccListSize <= 0 {
		cfg.SuccListSize = 8
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	k := &Kernel{
		cfg:   cfg,
		self:  opts.Self,
		call:  opts.Caller,
		ev:    opts.Events,
		trace: opts.Trace,
		done:  opts.Done,

		stabilizeRuns: reg.Counter("dco_ring_stabilize_runs_total"),
		fingerFixes:   reg.Counter("dco_ring_finger_fixes_total"),
		lookups:       reg.Counter("dco_dht_lookups_total"),
		lookupHops:    reg.Counter("dco_dht_lookup_hops_total"),
		hopHist:       reg.Histogram("dco_dht_lookup_hops", dht.HopBuckets),
	}
	k.cs = chord.NewState(toEntry(opts.Self), cfg.SuccListSize)
	reg.GaugeFunc("dco_ring_successor_changes", func() float64 {
		k.mu.Lock()
		defer k.mu.Unlock()
		c, _ := k.cs.MaintenanceStats()
		return float64(c)
	})
	reg.GaugeFunc("dco_ring_failures_removed", func() float64 {
		k.mu.Lock()
		defer k.mu.Unlock()
		_, r := k.cs.MaintenanceStats()
		return float64(r)
	})
	return k
}

func toEntry(m dht.Member) entryT {
	return entryT{ID: chord.ID(m.ID), Addr: m.Addr, OK: true}
}

func fromEntry(e entryT) dht.Member { return dht.Member{ID: uint64(e.ID), Addr: e.Addr} }

func wireEntry(e entryT) wire.Entry { return wire.Entry{ID: uint64(e.ID), Addr: e.Addr} }

func (k *Kernel) selfWire() wire.Entry { return wire.Entry{ID: k.self.ID, Addr: k.self.Addr} }

// seen fires the host's Seen callback for wire entries sighted in traffic.
func (k *Kernel) seen(es ...wire.Entry) {
	if k.ev.Seen == nil || len(es) == 0 {
		return
	}
	ms := make([]dht.Member, 0, len(es))
	for _, e := range es {
		if e.Addr != "" {
			ms = append(ms, dht.FromWire(e))
		}
	}
	if len(ms) > 0 {
		k.ev.Seen(ms...)
	}
}

func (k *Kernel) traceEvent(kind, detail string) {
	if k.trace != nil {
		k.trace.Record(kind, k.self.Addr, detail)
	}
}

// Name identifies the backend.
func (k *Kernel) Name() string { return "chord" }

// Self returns this node's identity.
func (k *Kernel) Self() dht.Member { return k.self }

// Owns reports whether key lies in (pred, self]. With no known predecessor
// the node conservatively claims the key (the ring-of-one case).
func (k *Kernel) Owns(key uint64) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cs.OwnsKey(chord.ID(key))
}

// OwnsSettled is Owns with the no-predecessor claim removed: a freshly
// joined node that has not yet learned its predecessor owns nothing for
// replication purposes.
func (k *Kernel) OwnsSettled(key uint64) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.cs.Predecessor().OK && k.cs.OwnsKey(chord.ID(key))
}

// Successor exposes the immediate successor (live status displays, ring
// walk tests). Not part of the Kernel contract.
func (k *Kernel) Successor() dht.Member {
	k.mu.Lock()
	defer k.mu.Unlock()
	return fromEntry(k.cs.Successor())
}

// Heir is the member that inherits this node's range on departure: the
// immediate successor.
func (k *Kernel) Heir() (dht.Member, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	succ := k.cs.Successor()
	if !succ.OK || succ.Addr == k.self.Addr {
		return dht.Member{}, false
	}
	return fromEntry(succ), true
}

// ReplicaSet returns the first r distinct live successors (never self).
// Chord's replica placement is range-based, so the key argument is unused:
// only the owner's own successors can be computed locally, which is exactly
// the contract's "meaningful on the owner" caveat.
func (k *Kernel) ReplicaSet(_ uint64, r int) []dht.Member {
	if r <= 0 {
		return nil
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []dht.Member
	for _, s := range k.cs.SuccessorList() {
		if !s.OK || s.Addr == k.self.Addr {
			continue
		}
		dup := false
		for _, o := range out {
			if o.Addr == s.Addr {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, fromEntry(s))
		if len(out) == r {
			break
		}
	}
	return out
}

// View is self + successor list + predecessor, deduped by address, self
// first. A view of size one means a ring of one.
func (k *Kernel) View() []dht.Member {
	k.mu.Lock()
	defer k.mu.Unlock()
	seen := map[string]bool{}
	var out []dht.Member
	add := func(e entryT) {
		if !e.OK || seen[e.Addr] {
			return
		}
		seen[e.Addr] = true
		out = append(out, fromEntry(e))
	}
	add(k.cs.Self)
	for _, e := range k.cs.SuccessorList() {
		add(e)
	}
	add(k.cs.Predecessor())
	return out
}

// peerQuarantine is how long a conclusively failed peer is barred from
// passive re-adoption (Notify, stabilize gossip). Without it, a one-way
// partitioned peer — unreachable, but with working outbound — re-inserts
// itself into its successor's tables every stabilize tick via Notify,
// gets condemned again by check_predecessor, and the pointer flap keeps
// mis-routing lookups for the peer's arc indefinitely. Active merge
// traffic bypasses the quarantine: a census probe that just reached the
// peer is fresh evidence the partition healed.
const peerQuarantine = 2 * time.Second

// PeerFailed purges a conclusively dead peer from the ring tables and
// quarantines it against passive re-adoption.
func (k *Kernel) PeerFailed(addr string) {
	k.mu.Lock()
	k.cs.RemoveFailed(addr)
	if k.quarantined == nil {
		k.quarantined = make(map[string]time.Time)
	}
	k.quarantined[addr] = time.Now().Add(peerQuarantine)
	k.mu.Unlock()
}

// quarantinedLocked reports whether addr is still barred from passive
// re-adoption. Caller holds k.mu. Expired entries are pruned in place so
// the map tracks only active suspects.
func (k *Kernel) quarantinedLocked(addr string) bool {
	until, ok := k.quarantined[addr]
	if !ok {
		return false
	}
	if time.Now().After(until) {
		delete(k.quarantined, addr)
		return false
	}
	return true
}

// Observe is a no-op for Chord: ring pointers only move through the
// Notify/stabilize protocol (arbitrary insertion would corrupt the ring
// invariant), so passive sightings go to the host's member cache only.
func (k *Kernel) Observe(dht.Member) bool { return false }

// Stats reports the ring maintenance accounting.
func (k *Kernel) Stats() dht.Stats {
	k.mu.Lock()
	changes, purged := k.cs.MaintenanceStats()
	k.mu.Unlock()
	return dht.Stats{
		TableChanges:   changes,
		FailuresPurged: purged,
		Lookups:        k.lookups.Value(),
		LookupHops:     k.lookupHops.Value(),
	}
}

// ---------------------------------------------------------------------------
// Routing.

// FindOwner routes iteratively from this node to the owner of key. A dead
// hop is purged by the Caller's failure handling and the route restarts, so
// routing self-heals in step with stabilization. fallbacks are the owner's
// successor list — the members that inherit the key if the owner dies.
func (k *Kernel) FindOwner(key uint64) (dht.Member, []dht.Member, error) {
	owner, succs, _, _, err := k.findOwner(key)
	if err != nil {
		return dht.Member{}, nil, err
	}
	return dht.FromWire(owner), membersFromWire(succs), nil
}

// FindOwnerFrom is FindOwner routed through start's tables instead of this
// node's own (census confirmation through a foreign member).
func (k *Kernel) FindOwnerFrom(start string, key uint64) (dht.Member, []dht.Member, error) {
	owner, succs, _, _, err := k.findOwnerFrom(start, key)
	if err != nil {
		return dht.Member{}, nil, err
	}
	return dht.FromWire(owner), membersFromWire(succs), nil
}

func membersFromWire(es []wire.Entry) []dht.Member {
	out := make([]dht.Member, 0, len(es))
	for _, e := range es {
		out = append(out, dht.FromWire(e))
	}
	return out
}

func (k *Kernel) findOwner(key uint64) (owner wire.Entry, succs []wire.Entry, pred wire.Entry, predOK bool, err error) {
	for attempt := 0; attempt < 4; attempt++ {
		k.mu.Lock()
		hop, done := k.cs.NextHop(chord.ID(key))
		k.mu.Unlock()
		if done && hop.Addr == k.self.Addr {
			// We own it ourselves: answer from local state.
			st := k.getState()
			k.lookups.Inc()
			return k.selfWire(), st.Succs, st.Pred, st.PredOK, nil
		}
		owner, succs, pred, predOK, err = k.findOwnerFrom(hop.Addr, key)
		if err == nil {
			return owner, succs, pred, predOK, nil
		}
		select {
		case <-k.done:
			return wire.Entry{}, nil, wire.Entry{}, false, err
		case <-time.After(100 * time.Millisecond):
		}
	}
	return wire.Entry{}, nil, wire.Entry{}, false, err
}

// findOwnerFrom iterates FindSuccessor starting at a remote node. Each hop
// is retried by the Caller (routing reads are idempotent); a hop that stays
// dead surfaces as an error and findOwner re-routes around it.
func (k *Kernel) findOwnerFrom(start string, key uint64) (owner wire.Entry, succs []wire.Entry, pred wire.Entry, predOK bool, err error) {
	cur := start
	for hops := 0; hops < 2*chord.M; hops++ {
		resp, cerr := k.call.CallIdem(cur, &wire.FindSuccessor{Key: key})
		if cerr != nil {
			return wire.Entry{}, nil, wire.Entry{}, false, cerr
		}
		fs, ok := resp.(*wire.FindSuccessorResp)
		if !ok {
			return wire.Entry{}, nil, wire.Entry{}, false, errUnexpected
		}
		if fs.Done {
			k.traceEvent("lookup.route", fmt.Sprintf("key=%016x hops=%d owner=%s", key, hops+1, fs.Owner.Addr))
			k.lookups.Inc()
			k.lookupHops.Add(uint64(hops + 1))
			k.hopHist.Observe(float64(hops + 1))
			k.seen(fs.Owner)
			k.seen(fs.Succs...)
			return fs.Owner, fs.Succs, fs.Pred, fs.OK, nil
		}
		if fs.Owner.Addr == "" || fs.Owner.Addr == cur {
			return wire.Entry{}, nil, wire.Entry{}, false, fmt.Errorf("%w (chord: no progress at %s)", dht.ErrNoRoute, cur)
		}
		cur = fs.Owner.Addr
	}
	return wire.Entry{}, nil, wire.Entry{}, false, fmt.Errorf("%w (chord: hop bound exceeded)", dht.ErrNoRoute)
}

var errUnexpected = fmt.Errorf("chordkern: unexpected response kind")

// ---------------------------------------------------------------------------
// Join / leave / merge.

// Join attaches through bootstrap: route to our own ID's owner, adopt it as
// successor (with its list and predecessor), then notify it.
func (k *Kernel) Join(bootstrap string) error {
	owner, succs, pred, predOK, err := k.findOwnerFrom(bootstrap, k.self.ID)
	if err != nil {
		return err
	}
	k.mu.Lock()
	oe := entryT{ID: chord.ID(owner.ID), Addr: owner.Addr, OK: true}
	k.cs.SetSuccessor(oe)
	if len(succs) > 0 {
		var list []entryT
		for _, e := range succs {
			list = append(list, entryT{ID: chord.ID(e.ID), Addr: e.Addr, OK: true})
		}
		k.cs.AdoptSuccessorList(oe, list)
	}
	if predOK {
		k.cs.SetPredecessor(entryT{ID: chord.ID(pred.ID), Addr: pred.Addr, OK: true})
	}
	k.mu.Unlock()
	if predOK {
		k.seen(pred)
	}
	// The first notify is best-effort: stabilization re-notifies every
	// cycle, so a dropped message must not fail an otherwise good join.
	if owner.Addr != k.self.Addr {
		_, _ = k.call.CallIdem(owner.Addr, &wire.Notify{From: k.selfWire()})
	}
	return nil
}

// Leave runs the ring-unlink half of a graceful departure: tell the
// successor who its new predecessor is and the predecessor what its new
// successor list is. Index handoff is the host's job (it goes to Heir).
func (k *Kernel) Leave() {
	k.mu.Lock()
	succ := k.cs.Successor()
	pred := k.cs.Predecessor()
	var succList []wire.Entry
	for _, e := range k.cs.SuccessorList() {
		succList = append(succList, wireEntry(e))
	}
	k.mu.Unlock()
	if !succ.OK || succ.Addr == k.self.Addr {
		return
	}
	leave := &wire.Leave{From: k.selfWire()}
	if pred.OK {
		leave.NewPred = wireEntry(pred)
		leave.PredOK = true
	}
	_, _ = k.call.Call(succ.Addr, leave)
	if pred.OK && pred.Addr != k.self.Addr {
		_, _ = k.call.Call(pred.Addr, &wire.Leave{From: k.selfWire(), NewSucc: succList})
	}
}

// Merge folds a confirmed foreign ring into the local tables via the
// monotone MergeCandidate repairs, then seeds the stabilize cascade by
// notifying the (possibly new) successor and the foreign owner — our ID
// lies in its claimed range, so its Notify rule adopts us as predecessor,
// which its next stabilize round propagates backward around that ring.
func (k *Kernel) Merge(target dht.Member, others []dht.Member) {
	k.mu.Lock()
	// The merge detector just reached the target — lift any quarantine so
	// the healed peer is re-adoptable immediately.
	delete(k.quarantined, target.Addr)
	k.cs.MergeCandidate(toEntry(target))
	for _, m := range others {
		if m.Addr == "" || m.Addr == k.self.Addr {
			continue
		}
		k.cs.MergeCandidate(toEntry(m))
	}
	succ := k.cs.Successor()
	k.mu.Unlock()
	if succ.OK && succ.Addr != k.self.Addr {
		_, _ = k.call.Call(succ.Addr, &wire.Notify{From: k.selfWire()})
	}
	if target.Addr != succ.Addr && target.Addr != k.self.Addr {
		_, _ = k.call.Call(target.Addr, &wire.Notify{From: k.selfWire()})
	}
}

// ---------------------------------------------------------------------------
// Maintenance ticks.

// Ticks lists the Chord maintenance steps: stabilize (which includes the
// predecessor liveness probe) and one-finger-per-tick repair.
func (k *Kernel) Ticks() []dht.Tick {
	return []dht.Tick{
		{Name: "stabilize", Every: k.cfg.StabilizeEvery, Fn: k.stabilize},
		{Name: "fix_fingers", Every: k.cfg.FixFingersEvery, Fn: k.fixFinger},
	}
}

func (k *Kernel) stabilize() {
	k.stabilizeRuns.Inc()
	k.traceEvent("ring.stabilize", "")
	k.checkPredecessor()
	k.mu.Lock()
	succ := k.cs.Successor()
	if succ.Addr == k.self.Addr {
		// Ring of one: when the first peer notifies us it becomes our
		// predecessor; adopting it as successor closes the two-node ring
		// (the standard Chord bootstrap step).
		if p := k.cs.Predecessor(); p.OK && p.Addr != k.self.Addr {
			k.cs.SetSuccessor(p)
		}
		k.mu.Unlock()
		return
	}
	k.mu.Unlock()
	if !succ.OK {
		return
	}
	resp, err := k.call.Call(succ.Addr, &wire.GetState{})
	if err != nil {
		// The Caller already fed the breaker and invoked PeerFailed if the
		// evidence was conclusive; a lone drop just waits for next tick.
		return
	}
	st, ok := resp.(*wire.GetStateResp)
	if !ok {
		return
	}
	k.mu.Lock()
	cur := k.cs.Successor()
	if cur.Addr == succ.Addr {
		if st.PredOK && st.Pred.Addr != k.self.Addr && !k.quarantinedLocked(st.Pred.Addr) &&
			chord.InOO(k.cs.Self.ID, chord.ID(st.Pred.ID), succ.ID) {
			k.cs.SetSuccessor(entryT{ID: chord.ID(st.Pred.ID), Addr: st.Pred.Addr, OK: true})
		} else {
			var list []entryT
			for _, e := range st.Succs {
				if k.quarantinedLocked(e.Addr) {
					continue
				}
				list = append(list, entryT{ID: chord.ID(e.ID), Addr: e.Addr, OK: true})
			}
			k.cs.AdoptSuccessorList(succ, list)
		}
	}
	target := k.cs.Successor()
	k.mu.Unlock()
	// Passive sightings: every stabilize answer names live ring members
	// worth remembering for the census.
	if st.PredOK {
		k.seen(st.Pred)
	}
	k.seen(st.Succs...)
	if target.OK && target.Addr != k.self.Addr {
		_, _ = k.call.Call(target.Addr, &wire.Notify{From: k.selfWire()})
	}
}

// checkPredecessor is Chord's check_predecessor: ping the predecessor so a
// dead one accumulates conclusive failure evidence. The Caller's
// condemnation path invokes PeerFailed, which clears the predecessor —
// without this probe, a dead predecessor is forever re-advertised to the
// node behind it and the ring never heals.
func (k *Kernel) checkPredecessor() {
	k.mu.Lock()
	pred := k.cs.Predecessor()
	k.mu.Unlock()
	if !pred.OK || pred.Addr == k.self.Addr {
		return
	}
	_, _ = k.call.Call(pred.Addr, &wire.Ping{})
}

func (k *Kernel) fixFinger() {
	k.mu.Lock()
	i, start := k.cs.NextFingerToFix()
	k.mu.Unlock()
	owner, _, _, _, err := k.findOwner(uint64(start))
	if err != nil {
		return
	}
	k.fingerFixes.Inc()
	k.mu.Lock()
	k.cs.SetFinger(i, entryT{ID: chord.ID(owner.ID), Addr: owner.Addr, OK: true})
	k.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Inbound protocol.

// HandleRPC serves the Chord protocol messages; anything else is the
// host's.
func (k *Kernel) HandleRPC(from string, req wire.Message) (wire.Message, bool) {
	switch m := req.(type) {
	case *wire.FindSuccessor:
		return k.onFindSuccessor(m), true
	case *wire.GetState:
		return k.getState(), true
	case *wire.Notify:
		return k.onNotify(m), true
	case *wire.Leave:
		return k.onLeave(m), true
	default:
		return nil, false
	}
}

func (k *Kernel) onFindSuccessor(m *wire.FindSuccessor) wire.Message {
	k.mu.Lock()
	defer k.mu.Unlock()
	hop, done := k.cs.NextHop(chord.ID(m.Key))
	resp := &wire.FindSuccessorResp{
		Done:  done && hop.Addr == k.self.Addr,
		Owner: wireEntry(hop),
	}
	if resp.Done {
		for _, e := range k.cs.SuccessorList() {
			resp.Succs = append(resp.Succs, wireEntry(e))
		}
		if p := k.cs.Predecessor(); p.OK {
			resp.Pred = wireEntry(p)
			resp.OK = true
		}
	} else if done {
		// The successor owns the key: the caller should finish there.
		resp.Done = false
	}
	return resp
}

func (k *Kernel) getState() *wire.GetStateResp {
	k.mu.Lock()
	defer k.mu.Unlock()
	resp := &wire.GetStateResp{}
	if p := k.cs.Predecessor(); p.OK {
		resp.Pred = wireEntry(p)
		resp.PredOK = true
	}
	for _, e := range k.cs.SuccessorList() {
		resp.Succs = append(resp.Succs, wireEntry(e))
	}
	return resp
}

func (k *Kernel) onNotify(m *wire.Notify) wire.Message {
	cand := entryT{ID: chord.ID(m.From.ID), Addr: m.From.Addr, OK: true}
	k.mu.Lock()
	adopted := false
	if !k.quarantinedLocked(cand.Addr) {
		adopted = k.cs.Notify(cand)
	}
	k.mu.Unlock()
	k.seen(m.From)
	if adopted && k.ev.RangeChanged != nil {
		// Part of our range now belongs to the new predecessor; the host
		// hands off the index entries it no longer owns.
		k.ev.RangeChanged(dht.FromWire(m.From))
	}
	return &wire.Ack{}
}

func (k *Kernel) onLeave(m *wire.Leave) wire.Message {
	k.mu.Lock()
	if m.NewSucc != nil {
		k.cs.RemoveFailed(m.From.Addr)
		var list []entryT
		for _, e := range m.NewSucc {
			if e.Addr != m.From.Addr && e.Addr != k.self.Addr {
				list = append(list, entryT{ID: chord.ID(e.ID), Addr: e.Addr, OK: true})
			}
		}
		if len(list) > 0 {
			k.cs.AdoptSuccessorList(list[0], list[1:])
		}
	} else {
		if p := k.cs.Predecessor(); p.OK && p.Addr == m.From.Addr {
			if m.PredOK {
				k.cs.SetPredecessor(entryT{ID: chord.ID(m.NewPred.ID), Addr: m.NewPred.Addr, OK: true})
			} else {
				k.cs.ClearPredecessor()
			}
		}
	}
	k.mu.Unlock()
	if k.ev.Departed != nil {
		// Graceful departure is the one conclusive "gone for good" signal;
		// the host drops the leaver's replica slice and forgets it.
		k.ev.Departed(dht.FromWire(m.From))
	}
	return &wire.Ack{}
}
