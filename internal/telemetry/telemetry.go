// Package telemetry is the live DCO stack's runtime observability core: a
// dependency-free registry of lock-free counters, gauges, and fixed-bucket
// histograms cheap enough for the chunk hot path, plus a bounded protocol
// event trace (trace.go) and HTTP exposition in Prometheus text and JSON
// formats (expose.go).
//
// Design rules:
//
//   - Recording is wait-free where Go's sync/atomic allows: counters and
//     histogram buckets are single atomic adds; only histogram sums use a
//     CAS loop. No metric operation ever takes a registry lock.
//   - Every metric type is safe on a nil receiver (a no-op), so callers can
//     instrument unconditionally and let configuration decide whether a
//     registry exists.
//   - Names follow Prometheus conventions: snake_case, `_total` suffix for
//     counters, base-unit suffixes (`_seconds`, `_bytes`). A name may carry
//     a fixed label set inline — `dco_rpc_total{kind="lookup"}` — which the
//     expositor folds under one TYPE header per base name.
//
// The simulator keeps its own offline metrics (internal/metrics computes
// the paper's figures from delivery logs); this package is the equivalent
// for the real-network stack, where the same four quantities — chunk
// latency, fill ratio, control-vs-data overhead, delivered percentage —
// must be observable on a running node.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ---------------------------------------------------------------------------
// Counter.

// Counter is a monotonically increasing uint64. The zero value is usable;
// a nil *Counter ignores all writes and reads as zero.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---------------------------------------------------------------------------
// Gauge.

// Gauge is an instantaneous int64 value. The zero value is usable; a nil
// *Gauge ignores all writes and reads as zero.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// ---------------------------------------------------------------------------
// Histogram.

// DefLatencyBuckets suits RPC and chunk-fetch latencies at streaming
// timescales: 1 ms up to 10 s.
var DefLatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations into fixed upper-bound buckets (cumulative
// rendering happens at exposition, so Observe touches exactly one bucket).
// A nil *Histogram ignores all observations.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf afterward
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // math.Float64bits accumulator
	count  atomic.Uint64
}

// NewHistogram builds an unregistered histogram with the given upper
// bounds (they are sorted defensively; empty bounds mean a single +Inf
// bucket). Most callers want Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~15) and the branch predictor
	// does well on latency distributions; this beats binary search below
	// ~30 buckets and keeps the code allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSeconds records d expressed in seconds — the conventional unit
// for latency histograms.
func (h *Histogram) ObserveSeconds(d float64) { h.Observe(d) }

// Snapshot returns a consistent-enough copy for exposition: per-bucket
// counts (non-cumulative, +Inf last), total count, and sum. Buckets are
// read without a global lock, so a snapshot taken mid-Observe may be off
// by the in-flight sample; exposition tolerates that.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64, count uint64, sum float64) {
	if h == nil {
		return nil, nil, 0, 0
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ---------------------------------------------------------------------------
// Registry.

// Registry is a named collection of metrics. Registration (the Counter /
// Gauge / GaugeFunc / Histogram constructors) takes a lock; recording on
// the returned metrics never does. The zero value is not usable; create
// with NewRegistry. All methods are safe on a nil *Registry, returning nil
// metrics whose operations are no-ops — so an uninstrumented node costs a
// handful of dead atomic adds and nothing else.
type Registry struct {
	mu     sync.Mutex
	kinds  map[string]string // name -> "counter" | "gauge" | "histogram"
	cnts   map[string]*Counter
	gauges map[string]*Gauge
	funcs  map[string]func() float64
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:  make(map[string]string),
		cnts:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		funcs:  make(map[string]func() float64),
		hists:  make(map[string]*Histogram),
	}
}

// claim records name's metric type, keyed by base name so that label
// variants of one metric cannot disagree on type (the Prometheus format
// emits a single TYPE header per base name).
func (r *Registry) claim(name, kind string) {
	base := baseName(name)
	if have, ok := r.kinds[base]; ok && have != kind {
		panic(fmt.Sprintf("telemetry: %q registered as %s, requested as %s", base, have, kind))
	}
	r.kinds[base] = kind
}

// Counter returns the counter registered under name, creating it on first
// use. Panics if name is already registered as a different metric type.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter")
	c := r.cnts[name]
	if c == nil {
		c = &Counter{}
		r.cnts[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as a computed gauge: it is evaluated at scrape
// time, so derived quantities (ratios, map sizes) cost nothing between
// scrapes. fn must be safe for concurrent calls. Re-registering a name
// replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge")
	r.funcs[name] = fn
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram")
	h := r.hists[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric's current value, suitable for
// JSON encoding (see expose.go) or test assertions.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.cnts)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.cnts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = float64(g.Value())
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		bounds, counts, count, sum := h.Snapshot()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: append([]float64(nil), bounds...),
			Counts: counts,
			Count:  count,
			Sum:    sum,
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is one histogram's state: per-bucket (non-cumulative)
// counts with Counts[len(Bounds)] holding the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}
