package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one metric of each type, with
// deterministic values for exact text comparison.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("dco_live_chunks_served_total").Add(12)
	r.Counter(`dco_rpc_total{kind="lookup"}`).Add(3)
	r.Counter(`dco_rpc_total{kind="insert"}`).Add(4)
	r.Gauge("dco_live_buffered_chunks").Set(30)
	r.GaugeFunc("dco_live_fill_ratio", func() float64 { return 0.75 })
	h := r.Histogram("dco_live_chunk_fetch_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(3)
	return r
}

const goldenPrometheus = `# TYPE dco_live_buffered_chunks gauge
dco_live_buffered_chunks 30
# TYPE dco_live_chunk_fetch_seconds histogram
dco_live_chunk_fetch_seconds_bucket{le="0.1"} 1
dco_live_chunk_fetch_seconds_bucket{le="1"} 3
dco_live_chunk_fetch_seconds_bucket{le="+Inf"} 4
dco_live_chunk_fetch_seconds_sum 4.05
dco_live_chunk_fetch_seconds_count 4
# TYPE dco_live_chunks_served_total counter
dco_live_chunks_served_total 12
# TYPE dco_live_fill_ratio gauge
dco_live_fill_ratio 0.75
# TYPE dco_rpc_total counter
dco_rpc_total{kind="insert"} 4
dco_rpc_total{kind="lookup"} 3
`

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WritePrometheus(&buf)
	if got := buf.String(); got != goldenPrometheus {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenPrometheus)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	r.WritePrometheus(&buf) // must not panic
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestWriteJSONParses(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if s.Counters["dco_live_chunks_served_total"] != 12 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Gauges["dco_live_fill_ratio"] != 0.75 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	if h := s.Histograms["dco_live_chunk_fetch_seconds"]; h.Count != 4 {
		t.Fatalf("histograms: %+v", s.Histograms)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := goldenRegistry()
	tr := NewTrace(16)
	tr.Record("chunk.serve", "n1", "seq=1")
	srv := httptest.NewServer(Handler(reg, tr))
	defer srv.Close()

	code, ctype, body := get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics: code=%d type=%q", code, ctype)
	}
	if body != goldenPrometheus {
		t.Fatalf("/metrics body mismatch:\n%s", body)
	}

	code, ctype, body = get(t, srv, "/debug/vars.json")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/vars.json: code=%d type=%q", code, ctype)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/debug/vars.json invalid: %v", err)
	}

	code, _, body = get(t, srv, "/debug/trace")
	if code != http.StatusOK || !strings.Contains(body, "chunk.serve") {
		t.Fatalf("/debug/trace: code=%d body=%q", code, body)
	}
	code, ctype, body = get(t, srv, "/debug/trace?format=json")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/trace json: code=%d type=%q", code, ctype)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace json invalid: %v", err)
	}

	code, _, body = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}

func TestHandlerNilTrace(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	if code, _, _ := get(t, srv, "/debug/trace"); code != http.StatusOK {
		t.Fatalf("/debug/trace with nil trace: code=%d", code)
	}
	if code, _, body := get(t, srv, "/debug/trace?format=json"); code != http.StatusOK || !strings.Contains(body, `"total": 0`) {
		t.Fatalf("/debug/trace json with nil trace: code=%d body=%q", code, body)
	}
}

func TestServeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dco_x_total").Inc()
	s, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "dco_x_total 1") {
		t.Fatalf("served metrics missing counter:\n%s", body)
	}
}

func TestBaseNameSplit(t *testing.T) {
	if baseName(`a_total{k="v"}`) != "a_total" || baseName("a_total") != "a_total" {
		t.Fatal("baseName")
	}
	b, l := splitName(`h_seconds{kind="x"}`)
	if b != "h_seconds" || l != `kind="x"` {
		t.Fatalf("splitName = %q, %q", b, l)
	}
}
