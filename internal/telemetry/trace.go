package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one protocol occurrence in a Trace: the acting node (its
// address, or "" when not applicable), a dotted kind ("chunk.serve",
// "breaker.open", ...), and free-form detail.
type Event struct {
	At     time.Time `json:"at"`
	Node   string    `json:"node,omitempty"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail,omitempty"`
}

// Trace is a bounded ring buffer of protocol events with per-kind counts
// that survive eviction. It is the live stack's flight recorder: cheap
// enough to leave on, dumpable on demand over HTTP (/debug/trace). A nil
// *Trace ignores all calls, so instrumentation sites never branch on
// configuration.
//
// Recording takes a short mutex (events are per-RPC, not per-byte; the
// lock-free hot-path budget belongs to Counter and Histogram).
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   uint64
	kinds   map[string]uint64
	clock   func() time.Time // test seam; time.Now when nil
}

// NewTrace returns a trace retaining the last capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity), kinds: make(map[string]uint64)}
}

func (t *Trace) now() time.Time {
	if t.clock != nil {
		return t.clock()
	}
	return time.Now()
}

// Record appends an event. Safe on a nil receiver.
func (t *Trace) Record(kind, node, detail string) {
	if t == nil {
		return
	}
	e := Event{Kind: kind, Node: node, Detail: detail}
	t.mu.Lock()
	e.At = t.now()
	t.total++
	t.kinds[kind]++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Recordf is Record with a formatted detail. The format arguments are only
// evaluated after the nil check, but callers on hot paths should still
// prefer Record with a precomputed string when the event fires per chunk.
func (t *Trace) Recordf(kind, node, format string, args ...any) {
	if t == nil {
		return
	}
	t.Record(kind, node, fmt.Sprintf(format, args...))
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, cap(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Total returns how many events were ever recorded (including evicted).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Count returns how many events of kind were ever recorded.
func (t *Trace) Count(kind string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kinds[kind]
}

// Counts returns a copy of the per-kind totals.
func (t *Trace) Counts() map[string]uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.kinds))
	for k, v := range t.kinds {
		out[k] = v
	}
	return out
}

// Dump writes a human-readable listing: per-kind totals (most frequent
// first), then the retained events oldest first.
func (t *Trace) Dump(w io.Writer) {
	if t == nil {
		return
	}
	type kc struct {
		kind string
		n    uint64
	}
	counts := t.Counts()
	rows := make([]kc, 0, len(counts))
	for k, n := range counts {
		rows = append(rows, kc{k, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].kind < rows[j].kind
	})
	fmt.Fprintf(w, "# %d events total, %d retained\n", t.Total(), len(t.Events()))
	for _, row := range rows {
		fmt.Fprintf(w, "# %10d  %s\n", row.n, row.kind)
	}
	for _, e := range t.Events() {
		fmt.Fprintf(w, "%s node=%s %-24s %s\n", e.At.Format(time.RFC3339Nano), e.Node, e.Kind, e.Detail)
	}
}

// traceJSON is the /debug/trace?format=json document.
type traceJSON struct {
	Total  uint64            `json:"total"`
	Counts map[string]uint64 `json:"counts"`
	Events []Event           `json:"events"`
}

// WriteJSON writes the retained events and per-kind totals as one JSON
// document.
func (t *Trace) WriteJSON(w io.Writer) error {
	doc := traceJSON{Total: t.Total(), Counts: t.Counts(), Events: t.Events()}
	if doc.Counts == nil {
		doc.Counts = map[string]uint64{}
	}
	if doc.Events == nil {
		doc.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
