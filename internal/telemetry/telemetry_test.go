package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-3)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	r.GaugeFunc("x", func() float64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	bounds, counts, count, sum := h.Snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d counts", len(bounds), len(counts))
	}
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive upper limits);
	// 0.5 in le=1; 2 in le=10; 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-102.65) > 1e-9 {
		t.Fatalf("sum = %g, want 102.65", sum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]float64{1, 0.1, 10})
	bounds, _, _, _ := h.Snapshot()
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] >= bounds[i] {
			t.Fatalf("bounds not sorted: %v", bounds)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dco_x_total")
	b := r.Counter("dco_x_total")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	h1 := r.Histogram("dco_lat_seconds", DefLatencyBuckets)
	h2 := r.Histogram("dco_lat_seconds", nil) // bounds ignored on reuse
	if h1 != h2 {
		t.Fatal("same name must return the same histogram")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dco_thing_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one base name as two types must panic")
		}
	}()
	// Same base name via a label variant: still a conflict.
	r.Gauge(`dco_thing_total{kind="x"}`)
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h_seconds", []float64{0.5})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	if math.Abs(h.Sum()-workers*perWorker*0.25) > 1e-6 {
		t.Fatalf("histogram sum = %g", h.Sum())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("dco_c_total").Add(3)
	r.Gauge("dco_g").Set(-7)
	r.GaugeFunc("dco_ratio", func() float64 { return 0.5 })
	r.Histogram("dco_h_seconds", []float64{1, 2}).Observe(1.5)

	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counters["dco_c_total"] != 3 {
		t.Fatalf("counter lost in round trip: %+v", got.Counters)
	}
	if got.Gauges["dco_g"] != -7 || got.Gauges["dco_ratio"] != 0.5 {
		t.Fatalf("gauges lost in round trip: %+v", got.Gauges)
	}
	h := got.Histograms["dco_h_seconds"]
	if h.Count != 1 || h.Sum != 1.5 || len(h.Counts) != 3 || h.Counts[1] != 1 {
		t.Fatalf("histogram lost in round trip: %+v", h)
	}
}
