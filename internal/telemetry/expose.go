package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// baseName strips an inline label set: "dco_rpc_total{kind=\"x\"}" ->
// "dco_rpc_total". Label variants of one base must share a metric type;
// Registry.claim enforces that through this function.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName returns the base name and the label body without braces
// ("" when unlabeled).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` header per base name,
// histogram buckets cumulative with the canonical `le` label.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	s := r.Snapshot()
	r.mu.Lock()
	kinds := make(map[string]string, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	r.mu.Unlock()

	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	// Sorting by (base, full name) keeps label variants of one metric
	// adjacent so their shared TYPE header is emitted exactly once.
	sort.Slice(names, func(i, j int) bool {
		bi, bj := baseName(names[i]), baseName(names[j])
		if bi != bj {
			return bi < bj
		}
		return names[i] < names[j]
	})

	lastBase := ""
	for _, name := range names {
		base, labels := splitName(name)
		if base != lastBase {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kinds[base])
			lastBase = base
		}
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(w, "%s %d\n", name, v)
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
			continue
		}
		h := s.Histograms[name]
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, joinLabels(labels), formatFloat(bound), cum)
		}
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, joinLabels(labels), h.Count)
		fmt.Fprintf(w, "%s_sum%s %s\n", base, braced(labels), formatFloat(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", base, braced(labels), h.Count)
	}
}

func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// WriteJSON renders the registry snapshot as one JSON document — the
// /debug/vars.json payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ---------------------------------------------------------------------------
// HTTP exposition.

// Handler serves the observability surface for one registry/trace pair:
//
//	/metrics          Prometheus text format
//	/debug/vars.json  JSON snapshot of every metric
//	/debug/trace      protocol event ring (text; ?format=json for JSON)
//	/debug/pprof/     the standard runtime profiles
//
// tr may be nil (the trace endpoint then serves an empty ring).
func Handler(reg *Registry, tr *Trace) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = tr.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		tr.Dump(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running exposition endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (":9090", or
// "127.0.0.1:0" for an ephemeral port) and returns the running server.
func Serve(addr string, reg *Registry, tr *Trace) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: Handler(reg, tr), ReadHeaderTimeout: 10 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ephemeral ports).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
