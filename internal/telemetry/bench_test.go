package telemetry

import "testing"

// The hot-path budget: chunk-rate instrumentation must stay in the
// nanoseconds-per-op range, uncontended and contended alike.

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(DefLatencyBuckets)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.042)
		}
	})
}

func BenchmarkTraceRecord(b *testing.B) {
	tr := NewTrace(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record("chunk.serve", "127.0.0.1:7000", "seq=1")
	}
}
