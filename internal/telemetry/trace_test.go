package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestTraceRetainsInOrder(t *testing.T) {
	tr := NewTrace(8)
	for i := 0; i < 5; i++ {
		tr.Record("k", "n1", strconv.Itoa(i))
	}
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("retained %d events, want 5", len(ev))
	}
	for i, e := range ev {
		if e.Detail != strconv.Itoa(i) {
			t.Fatalf("event %d detail = %q", i, e.Detail)
		}
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Record("k", "", strconv.Itoa(i))
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want capacity 4", len(ev))
	}
	// Oldest-first: the last 4 of 10 are 6,7,8,9.
	for i, e := range ev {
		if want := strconv.Itoa(6 + i); e.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, e.Detail, want)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10 (counts must survive eviction)", tr.Total())
	}
	if tr.Count("k") != 10 {
		t.Fatalf("count(k) = %d, want 10", tr.Count("k"))
	}
}

func TestTraceConcurrentAppend(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := fmt.Sprintf("kind.%d", w)
			for i := 0; i < perWorker; i++ {
				tr.Record(kind, "node", "d")
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != workers*perWorker {
		t.Fatalf("total = %d, want %d", tr.Total(), workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if n := tr.Count(fmt.Sprintf("kind.%d", w)); n != perWorker {
			t.Fatalf("count(kind.%d) = %d, want %d", w, n, perWorker)
		}
	}
	if got := len(tr.Events()); got != 64 {
		t.Fatalf("retained %d, want capacity 64", got)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Record("k", "n", "d")
	tr.Recordf("k", "n", "%d", 1)
	if tr.Total() != 0 || tr.Events() != nil || tr.Count("k") != 0 {
		t.Fatal("nil trace must ignore everything")
	}
	var buf bytes.Buffer
	tr.Dump(&buf) // must not panic
}

func TestTraceMinimumCapacity(t *testing.T) {
	tr := NewTrace(0)
	tr.Record("a", "", "1")
	tr.Record("b", "", "2")
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Kind != "b" {
		t.Fatalf("capacity-0 trace must retain exactly the newest event, got %+v", ev)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTrace(4)
	tr.clock = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	tr.Record("chunk.serve", "127.0.0.1:7000", "seq=3")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total  uint64            `json:"total"`
		Counts map[string]uint64 `json:"counts"`
		Events []Event           `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Total != 1 || doc.Counts["chunk.serve"] != 1 || len(doc.Events) != 1 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Events[0].Detail != "seq=3" || doc.Events[0].Node != "127.0.0.1:7000" {
		t.Fatalf("event lost fields: %+v", doc.Events[0])
	}
}

func TestTraceDumpFormat(t *testing.T) {
	tr := NewTrace(4)
	tr.clock = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	tr.Record("a.b", "n1", "x=1")
	tr.Record("a.b", "n1", "x=2")
	tr.Record("c.d", "n2", "")
	var buf bytes.Buffer
	tr.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"# 3 events total, 3 retained", "#          2  a.b", "#          1  c.d", "node=n1", "x=2"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
