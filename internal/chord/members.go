package chord

import (
	"sort"
	"time"
)

// MemberCache is a bounded memory of previously-seen ring members, kept
// beside (not inside) a node's routing tables. Chord's own tables forget a
// peer the moment it is purged, which is correct for failure handling but
// fatal for partitions: after a network split heals, stabilization alone can
// never re-merge two self-consistent rings because neither side retains any
// pointer into the other. The cache deliberately keeps condemned members —
// an unreachable entry is exactly the breadcrumb the ring census needs to
// rediscover the other half once the partition heals.
//
// Like State, it is pure local bookkeeping with no I/O and no locking; the
// caller (internal/live) guards it with the node's mutex and feeds it
// passively from successor lists, lookups, and replication traffic.
type MemberCache[A comparable] struct {
	self A
	cap  int
	recs map[A]*memberRec[A]
}

type memberRec[A comparable] struct {
	ent  Entry[A]
	seen time.Time
}

// NewMemberCache builds a cache that never stores self and holds at most
// capacity entries (oldest last-seen evicted first).
func NewMemberCache[A comparable](self A, capacity int) *MemberCache[A] {
	if capacity < 1 {
		capacity = 1
	}
	return &MemberCache[A]{self: self, cap: capacity, recs: make(map[A]*memberRec[A])}
}

// Cap returns the configured capacity.
func (c *MemberCache[A]) Cap() int { return c.cap }

// Len returns the number of cached members.
func (c *MemberCache[A]) Len() int { return len(c.recs) }

// Note records (or refreshes) a sighting of e at time now. Entries dedupe
// by address — a re-noted member updates its ID and last-seen stamp instead
// of growing the cache. When the cache is full the member with the oldest
// sighting is evicted to make room.
func (c *MemberCache[A]) Note(e Entry[A], now time.Time) {
	if !e.OK || e.Addr == c.self {
		return
	}
	if rec, ok := c.recs[e.Addr]; ok {
		rec.ent = e
		if now.After(rec.seen) {
			rec.seen = now
		}
		return
	}
	if len(c.recs) >= c.cap {
		c.evictOldest()
	}
	c.recs[e.Addr] = &memberRec[A]{ent: e, seen: now}
}

func (c *MemberCache[A]) evictOldest() {
	var victim A
	var oldest time.Time
	first := true
	for addr, rec := range c.recs {
		if first || rec.seen.Before(oldest) {
			victim, oldest, first = addr, rec.seen, false
		}
	}
	if !first {
		delete(c.recs, victim)
	}
}

// Forget drops addr from the cache. Used when a member departs for good
// (graceful leave) — abrupt failures are deliberately NOT forgotten, since
// an unreachable member may just be on the far side of a partition.
func (c *MemberCache[A]) Forget(addr A) { delete(c.recs, addr) }

// Members returns the cached entries sorted by ring ID (deterministic
// iteration for probe rotation and tests).
func (c *MemberCache[A]) Members() []Entry[A] {
	out := make([]Entry[A], 0, len(c.recs))
	for _, rec := range c.recs {
		out = append(out, rec.ent)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
