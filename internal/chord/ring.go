package chord

import "sort"

// BuildRing constructs fully converged States for a static membership set:
// successor lists, predecessors and finger tables all exact. The paper's
// evaluation starts from an already formed 512-node DHT; building it
// directly avoids simulating thousands of join rounds before t=0. Churn
// experiments still exercise the incremental join/leave/fail paths.
//
// Entries with duplicate IDs or addresses panic: the caller controls naming
// and collisions would corrupt ownership.
func BuildRing[A comparable](members []Entry[A], succListSize int) map[A]*State[A] {
	if len(members) == 0 {
		return map[A]*State[A]{}
	}
	sorted := make([]Entry[A], len(members))
	copy(sorted, members)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID == sorted[i-1].ID {
			panic("chord: duplicate ID in BuildRing")
		}
	}

	// successorOf returns the first member with ID >= k (circular).
	successorOf := func(k ID) Entry[A] {
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i].ID >= k })
		if i == len(sorted) {
			i = 0
		}
		return sorted[i]
	}

	out := make(map[A]*State[A], len(sorted))
	n := len(sorted)
	for i, self := range sorted {
		if _, dup := out[self.Addr]; dup {
			panic("chord: duplicate address in BuildRing")
		}
		self.OK = true
		st := NewState(self, succListSize)
		// Successor list: the next succListSize members clockwise.
		var list []Entry[A]
		for j := 1; j <= succListSize && j < n; j++ {
			list = append(list, sorted[(i+j)%n])
		}
		if len(list) > 0 {
			st.AdoptSuccessorList(list[0], list[1:])
		}
		st.SetPredecessor(sorted[(i-1+n)%n])
		for f := 0; f < M; f++ {
			st.SetFinger(f, successorOf(FingerStart(self.ID, f)))
		}
		out[self.Addr] = st
	}
	return out
}

// CheckRing verifies global ring invariants over a set of converged states
// (used by tests and the simulator's self-checks). It returns a list of
// violations; empty means the ring is consistent.
func CheckRing[A comparable](states map[A]*State[A]) []string {
	var problems []string
	byAddr := states
	for addr, st := range byAddr {
		succ := st.Successor()
		if succ.Addr == st.Self.Addr {
			if len(byAddr) > 1 {
				problems = append(problems, "node is its own successor on a multi-node ring")
			}
			continue
		}
		ss, ok := byAddr[succ.Addr]
		if !ok {
			problems = append(problems, "successor not in membership")
			continue
		}
		pred := ss.Predecessor()
		if !pred.OK || pred.Addr != addr {
			// Not fatal during convergence, but BuildRing output must hold it.
			problems = append(problems, "successor's predecessor is not this node")
		}
	}
	return problems
}
