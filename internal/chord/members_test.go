package chord

import (
	"testing"
	"time"
)

func at(s int) time.Time { return time.Unix(int64(s), 0) }

func TestMemberCacheNeverStoresSelf(t *testing.T) {
	c := NewMemberCache(1, 4)
	c.Note(e(100, 1), at(0)) // addr 1 == self
	c.Note(Entry[int]{ID: 5, Addr: 9}, at(0))
	if c.Len() != 0 {
		t.Fatalf("cache stored self or a !OK entry: len=%d", c.Len())
	}
}

func TestMemberCacheDedupesByAddr(t *testing.T) {
	c := NewMemberCache(1, 4)
	c.Note(e(100, 2), at(1))
	c.Note(e(100, 2), at(2))
	c.Note(e(777, 2), at(3)) // same addr, new ID: refresh, not grow
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	m := c.Members()
	if len(m) != 1 || m[0].ID != 777 {
		t.Fatalf("members = %v, want single entry with refreshed ID 777", m)
	}
}

func TestMemberCacheEvictsOldestSeen(t *testing.T) {
	c := NewMemberCache(1, 3)
	c.Note(e(10, 2), at(10))
	c.Note(e(20, 3), at(20))
	c.Note(e(30, 4), at(30))
	// Refresh the oldest so it is no longer the eviction victim.
	c.Note(e(10, 2), at(40))
	// Insert beyond capacity: addr 3 (seen at 20) must go.
	c.Note(e(50, 5), at(50))
	if c.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", c.Len())
	}
	for _, m := range c.Members() {
		if m.Addr == 3 {
			t.Fatal("oldest-seen member (addr 3) survived eviction")
		}
	}
	// The refreshed member must have survived.
	found := false
	for _, m := range c.Members() {
		if m.Addr == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("refreshed member (addr 2) was evicted despite newest sighting")
	}
}

func TestMemberCacheMembersSortedByID(t *testing.T) {
	c := NewMemberCache(1, 8)
	for _, m := range []Entry[int]{e(300, 2), e(100, 3), e(200, 4)} {
		c.Note(m, at(0))
	}
	got := c.Members()
	if len(got) != 3 || got[0].ID != 100 || got[1].ID != 200 || got[2].ID != 300 {
		t.Fatalf("members not sorted by ID: %v", got)
	}
}

func TestMemberCacheForget(t *testing.T) {
	c := NewMemberCache(1, 4)
	c.Note(e(10, 2), at(0))
	c.Forget(2)
	if c.Len() != 0 {
		t.Fatalf("len after Forget = %d, want 0", c.Len())
	}
}

func TestMemberCacheCapFloor(t *testing.T) {
	c := NewMemberCache(1, 0)
	c.Note(e(10, 2), at(0))
	c.Note(e(20, 3), at(1))
	if c.Len() != 1 {
		t.Fatalf("capacity floor of 1 not enforced: len=%d", c.Len())
	}
}
