package chord

import (
	"math/rand"
	"testing"
)

func e(id ID, addr int) Entry[int] { return Entry[int]{ID: id, Addr: addr, OK: true} }

func TestNewStateSingleton(t *testing.T) {
	s := NewState(e(100, 1), 4)
	if got := s.Successor(); got.Addr != 1 {
		t.Fatalf("lone node's successor = %v, want itself", got)
	}
	if !s.OwnsKey(0) || !s.OwnsKey(^ID(0)) {
		t.Fatal("lone node must own the whole circle")
	}
	hop, done := s.NextHop(12345)
	if !done || hop.Addr != 1 {
		t.Fatalf("lone node routes to itself, got %v done=%v", hop, done)
	}
}

func TestNotifyAdoptsCloserPredecessor(t *testing.T) {
	s := NewState(e(100, 1), 4)
	if !s.Notify(e(40, 2)) {
		t.Fatal("first notify should adopt")
	}
	if !s.Notify(e(90, 3)) {
		t.Fatal("closer candidate (90 in (40,100)) should be adopted")
	}
	if s.Notify(e(20, 4)) {
		t.Fatal("farther candidate (20 not in (90,100)) must be rejected")
	}
	if s.Notify(s.Self) {
		t.Fatal("self-notify must be ignored")
	}
	if p := s.Predecessor(); p.Addr != 3 {
		t.Fatalf("predecessor = %v, want node 3", p)
	}
}

func TestOwnsKeyWithPredecessor(t *testing.T) {
	s := NewState(e(100, 1), 4)
	s.SetPredecessor(e(50, 2))
	for _, c := range []struct {
		k    ID
		want bool
	}{{51, true}, {100, true}, {50, false}, {101, false}, {0, false}} {
		if got := s.OwnsKey(c.k); got != c.want {
			t.Errorf("OwnsKey(%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestSetSuccessorDedupes(t *testing.T) {
	s := NewState(e(100, 1), 3)
	s.SetSuccessor(e(200, 2))
	s.SetSuccessor(e(150, 3))
	s.SetSuccessor(e(150, 3)) // duplicate: no-op
	list := s.SuccessorList()
	if len(list) != 2 || list[0].Addr != 3 || list[1].Addr != 2 {
		t.Fatalf("successor list = %v", list)
	}
}

func TestAdoptSuccessorListTruncates(t *testing.T) {
	s := NewState(e(0, 1), 3)
	s.AdoptSuccessorList(e(10, 2), []Entry[int]{e(20, 3), e(30, 4), e(40, 5), e(50, 6)})
	list := s.SuccessorList()
	if len(list) != 3 {
		t.Fatalf("list should be capped at 3, got %d", len(list))
	}
	if list[0].Addr != 2 || list[1].Addr != 3 || list[2].Addr != 4 {
		t.Fatalf("unexpected list %v", list)
	}
}

func TestAdoptSuccessorListSkipsSelf(t *testing.T) {
	s := NewState(e(0, 1), 3)
	s.AdoptSuccessorList(e(10, 2), []Entry[int]{e(0, 1), e(30, 4)})
	for i, en := range s.SuccessorList() {
		if i > 0 && en.Addr == 1 {
			t.Fatalf("self leaked into successor list: %v", s.SuccessorList())
		}
	}
}

func TestRemoveFailed(t *testing.T) {
	s := NewState(e(0, 1), 3)
	s.AdoptSuccessorList(e(10, 2), []Entry[int]{e(20, 3), e(30, 4)})
	s.SetPredecessor(e(90, 4))
	s.SetFinger(5, e(10, 2))

	if changed := s.RemoveFailed(2); !changed {
		t.Fatal("removing the immediate successor must report a change")
	}
	if got := s.Successor(); got.Addr != 3 {
		t.Fatalf("successor after removal = %v, want node 3", got)
	}
	if f := s.Finger(5); f.OK {
		t.Fatal("finger pointing at the failed node must be cleared")
	}
	if changed := s.RemoveFailed(4); changed {
		t.Fatal("removing a non-successor must not report a successor change")
	}
	if s.Predecessor().OK {
		t.Fatal("failed predecessor must be cleared")
	}
	// Removing everything leaves the node pointing at itself.
	s.RemoveFailed(3)
	if got := s.Successor(); got.Addr != 1 {
		t.Fatalf("empty list should fall back to self, got %v", got)
	}
}

func TestNextHopForwardsToCloserNode(t *testing.T) {
	s := NewState(e(0, 1), 2)
	s.SetPredecessor(e(900, 9))
	s.AdoptSuccessorList(e(100, 2), []Entry[int]{e(200, 3)})
	s.SetFinger(9, e(512, 4)) // long-range finger

	// Key owned by us.
	if hop, done := s.NextHop(950); !done || hop.Addr != 1 {
		t.Fatalf("key in (pred,self] must terminate here, got %v %v", hop, done)
	}
	// Key owned by the successor.
	if hop, done := s.NextHop(50); !done || hop.Addr != 2 {
		t.Fatalf("key in (self,succ] must route to successor, got %v %v", hop, done)
	}
	// Distant key: with fingers, the long finger wins.
	if hop, done := s.NextHop(600); done || hop.Addr != 4 {
		t.Fatalf("distant key should use finger, got %v done=%v", hop, done)
	}
	// Without fingers, the farthest successor-list entry preceding the key.
	if hop, done := s.NextHopUsing(600, false); done || hop.Addr != 3 {
		t.Fatalf("succ-list routing should pick node 3, got %v done=%v", hop, done)
	}
}

func TestNeighborsDistinct(t *testing.T) {
	s := NewState(e(0, 1), 4)
	s.AdoptSuccessorList(e(10, 2), []Entry[int]{e(20, 3)})
	s.SetPredecessor(e(90, 4))
	s.SetFinger(3, e(10, 2)) // duplicate of successor
	s.SetFinger(7, e(50, 5))
	n := s.Neighbors()
	seen := map[int]bool{}
	for _, en := range n {
		if seen[en.Addr] || en.Addr == 1 {
			t.Fatalf("neighbors not distinct or contains self: %v", n)
		}
		seen[en.Addr] = true
	}
	if len(n) != 4 {
		t.Fatalf("expected 4 distinct neighbors, got %v", n)
	}
}

// Property: greedy succ-list-only routing on a converged ring always makes
// clockwise progress and terminates at the key's true owner.
func TestRingRoutingTerminatesAtOwner(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 16 + rng.Intn(64)
		members := make([]Entry[int], n)
		used := map[ID]bool{}
		for i := range members {
			id := ID(rng.Uint64())
			for used[id] {
				id = ID(rng.Uint64())
			}
			used[id] = true
			members[i] = e(id, i)
		}
		states := BuildRing(members, 8)
		if problems := CheckRing(states); len(problems) > 0 {
			t.Fatalf("BuildRing inconsistent: %v", problems)
		}

		// The true owner of k is the member with the first ID >= k.
		owner := func(k ID) int {
			best, bestDist := -1, ^ID(0)
			for _, m := range members {
				d := Dist(k, m.ID)
				if best == -1 || d < bestDist {
					best, bestDist = m.Addr, d
				}
			}
			return best
		}

		for q := 0; q < 50; q++ {
			k := ID(rng.Uint64())
			cur := members[rng.Intn(n)].Addr
			hops := 0
			for {
				if hops > 2*n {
					t.Fatalf("routing for key %v did not terminate", k)
				}
				st := states[cur]
				hop, done := st.NextHopUsing(k, false)
				if done && hop.Addr == cur {
					break
				}
				cur = hop.Addr
				hops++
				if done {
					// hop owns the key; one more iteration confirms.
					continue
				}
			}
			if want := owner(k); cur != want {
				t.Fatalf("key %v routed to %d, true owner %d", k, cur, want)
			}
		}
	}
}

// Property: with finger tables, routing hop counts stay O(log n).
func TestFingerRoutingLogHops(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 512
	members := make([]Entry[int], n)
	used := map[ID]bool{}
	for i := range members {
		id := ID(rng.Uint64())
		for used[id] {
			id = ID(rng.Uint64())
		}
		used[id] = true
		members[i] = e(id, i)
	}
	states := BuildRing(members, 8)
	maxHops := 0
	for q := 0; q < 500; q++ {
		k := ID(rng.Uint64())
		cur := members[rng.Intn(n)].Addr
		hops := 0
		for {
			st := states[cur]
			hop, done := st.NextHop(k)
			if done && hop.Addr == cur {
				break
			}
			cur = hop.Addr
			hops++
			if hops > 64 {
				t.Fatalf("excessive hops for key %v", k)
			}
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// log2(512) = 9; allow slack for the tail of the distribution.
	if maxHops > 16 {
		t.Fatalf("max hops %d exceeds O(log n) expectation for n=512", maxHops)
	}
}

func TestNextFingerToFixCycles(t *testing.T) {
	s := NewState(e(0, 1), 2)
	seen := map[int]bool{}
	for i := 0; i < M; i++ {
		idx, start := s.NextFingerToFix()
		if seen[idx] {
			t.Fatalf("finger index %d repeated before a full cycle", idx)
		}
		seen[idx] = true
		if start != FingerStart(0, idx) {
			t.Fatalf("wrong start for finger %d", idx)
		}
	}
	if idx, _ := s.NextFingerToFix(); idx != 0 {
		t.Fatalf("cursor should wrap to 0, got %d", idx)
	}
}

// stabilizeOnce runs one Chord stabilize round for s against the (shared,
// in-memory) states map: check the successor's predecessor, adopt it if it
// sits between, merge the successor list, then notify.
func stabilizeOnce(s *State[int], states map[int]*State[int]) {
	succ := s.Successor()
	if succ.Addr == s.Self.Addr {
		return
	}
	peer := states[succ.Addr]
	if x := peer.Predecessor(); x.OK && x.Addr != s.Self.Addr && InOO(s.Self.ID, x.ID, succ.ID) {
		s.SetSuccessor(x)
		succ = x
		peer = states[succ.Addr]
	}
	s.AdoptSuccessorList(succ, peer.SuccessorList())
	peer.Notify(s.Self)
}

// TestConcurrentJoinsConvergeAndPartitionKeys: two nodes join between the
// SAME pair of a converged two-node ring — the worst case for ownership
// transfer, because each joiner initially believes the old owner is its
// direct successor and neither knows about the other. Whatever order
// stabilization interleaves in, the ring must converge to the sorted order
// and key ownership must end exclusive and complete (every key owned by
// exactly one node: the index-takeover invariant the live replication
// layer leans on).
func TestConcurrentJoinsConvergeAndPartitionKeys(t *testing.T) {
	orders := map[string][]int{
		"first-joiner-first": {3, 4, 1, 2},
		"last-joiner-first":  {4, 3, 2, 1},
	}
	for name, order := range orders {
		t.Run(name, func(t *testing.T) {
			// Converged pair: A=10 (addr 1), B=100 (addr 2).
			a := NewState(e(10, 1), 4)
			b := NewState(e(100, 2), 4)
			a.SetSuccessor(b.Self)
			b.SetSuccessor(a.Self)
			a.SetPredecessor(b.Self)
			b.SetPredecessor(a.Self)

			// C=40 (addr 3) and D=70 (addr 4) both join between A and B: a
			// joiner's find_successor(self) resolves to B in both cases, and a
			// joiner starts with no predecessor.
			c := NewState(e(40, 3), 4)
			d := NewState(e(70, 4), 4)
			c.SetSuccessor(b.Self)
			d.SetSuccessor(b.Self)

			states := map[int]*State[int]{1: a, 2: b, 3: c, 4: d}
			for round := 0; round < 8; round++ {
				for _, addr := range order {
					stabilizeOnce(states[addr], states)
				}
			}

			// Sorted ring: A(10) -> C(40) -> D(70) -> B(100) -> A.
			wantSucc := map[int]int{1: 3, 3: 4, 4: 2, 2: 1}
			wantPred := map[int]int{3: 1, 4: 3, 2: 4, 1: 2}
			for addr, s := range states {
				if got := s.Successor().Addr; got != wantSucc[addr] {
					t.Fatalf("node %d successor = %d, want %d", addr, got, wantSucc[addr])
				}
				if p := s.Predecessor(); !p.OK || p.Addr != wantPred[addr] {
					t.Fatalf("node %d predecessor = %v, want %d", addr, p, wantPred[addr])
				}
			}

			// Ownership is exclusive and complete over the whole circle,
			// sampled densely around the member IDs and at the extremes.
			keys := []ID{0, 5, 10, 11, 39, 40, 41, 69, 70, 71, 99, 100, 101, 1 << 40, ^ID(0)}
			for _, k := range keys {
				owners := 0
				for _, s := range states {
					if s.OwnsKey(k) {
						owners++
					}
				}
				if owners != 1 {
					t.Errorf("key %d owned by %d nodes, want exactly 1", k, owners)
				}
			}

			// Successor lists absorbed the joiners: B's list must route around
			// the full ring, so a takeover walk from any node finds live heirs.
			list := a.SuccessorList()
			if len(list) < 3 || list[0].Addr != 3 || list[1].Addr != 4 || list[2].Addr != 2 {
				t.Fatalf("A's successor list %v did not absorb both joiners", list)
			}
		})
	}
}
