// Package chord implements the Chord DHT (Stoica et al.) as a pure state
// machine with no I/O: identifier-ring arithmetic, finger tables, successor
// lists, and the join/stabilize/fix-fingers maintenance steps.
//
// The paper (§III-A2) builds DCO directly on Chord's two functions,
// Insert(ID, object) and Lookup(ID), and on its key-ownership rule: an
// object is stored at the node whose ID equals or immediately succeeds the
// object's ID. Both the discrete-event simulation (internal/core) and the
// real-network node (internal/live) drive this package; only the message
// plumbing differs between them.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// M is the number of bits in the identifier space. Chord's guarantees are
// independent of M as long as collisions are rare; 64 bits keeps IDs in a
// machine word.
const M = 64

// ID is a point on the Chord identifier circle of size 2^M.
type ID uint64

// HashBytes maps arbitrary bytes onto the identifier circle using the first
// 8 bytes of their SHA-1 digest (consistent hashing, per the paper §III-A2).
func HashBytes(b []byte) ID {
	sum := sha1.Sum(b)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashString maps a string (a chunk name such as "CNN0240", or a node
// address) onto the identifier circle.
func HashString(s string) ID { return HashBytes([]byte(s)) }

// String renders the ID as fixed-width hex.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// InOO reports whether x lies in the open interval (a, b) on the circle.
// If a == b the interval is the whole circle minus the point a.
func InOO(a, x, b ID) bool {
	if a < b {
		return a < x && x < b
	}
	return a < x || x < b
}

// InOC reports whether x lies in the half-open interval (a, b] on the
// circle. This is Chord's ownership test: node n owns key k iff
// InOC(predecessor(n), k, n).
func InOC(a, x, b ID) bool {
	if a == b {
		return true // single-node ring owns everything
	}
	if a < b {
		return a < x && x <= b
	}
	return a < x || x <= b
}

// FingerStart returns the i-th finger origin for node n: n + 2^i (mod 2^M),
// for i in [0, M).
func FingerStart(n ID, i int) ID {
	return n + ID(1)<<uint(i) // uint64 addition wraps mod 2^64 by definition
}

// Dist returns the clockwise distance from a to b on the circle.
func Dist(a, b ID) ID { return b - a } // modular subtraction
