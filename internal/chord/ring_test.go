package chord

import (
	"math/rand"
	"testing"
)

func randomMembers(rng *rand.Rand, n int) []Entry[int] {
	used := map[ID]bool{}
	members := make([]Entry[int], n)
	for i := range members {
		id := ID(rng.Uint64())
		for used[id] {
			id = ID(rng.Uint64())
		}
		used[id] = true
		members[i] = e(id, i)
	}
	return members
}

func TestBuildRingEmptyAndSingleton(t *testing.T) {
	if got := BuildRing([]Entry[int]{}, 4); len(got) != 0 {
		t.Fatal("empty membership should build an empty map")
	}
	states := BuildRing([]Entry[int]{e(100, 1)}, 4)
	st := states[1]
	if st.Successor().Addr != 1 {
		t.Fatal("singleton ring must self-loop")
	}
	if !st.OwnsKey(0) || !st.OwnsKey(^ID(0)) {
		t.Fatal("singleton must own the whole circle")
	}
}

func TestBuildRingDuplicatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate IDs must panic")
		}
	}()
	BuildRing([]Entry[int]{e(5, 1), e(5, 2)}, 2)
}

// Property: BuildRing's ownership partitions the circle — every key has
// exactly one owner among the members.
func TestBuildRingOwnershipPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		members := randomMembers(rng, 8+rng.Intn(40))
		states := BuildRing(members, 4)
		for q := 0; q < 200; q++ {
			k := ID(rng.Uint64())
			owners := 0
			for _, st := range states {
				if st.OwnsKey(k) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("key %v has %d owners", k, owners)
			}
		}
	}
}

// Property: successor lists wrap the ring in ID order.
func TestBuildRingSuccessorListOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	members := randomMembers(rng, 24)
	states := BuildRing(members, 6)
	for _, st := range states {
		prev := st.Self.ID
		for _, s := range st.SuccessorList() {
			// Each entry is strictly clockwise of the previous.
			if Dist(st.Self.ID, s.ID) == 0 {
				t.Fatalf("self in successor list of %v", st.Self.Addr)
			}
			if Dist(st.Self.ID, s.ID) < Dist(st.Self.ID, prev) && prev != st.Self.ID {
				t.Fatalf("successor list out of ring order at %v", st.Self.Addr)
			}
			prev = s.ID
		}
		if got := len(st.SuccessorList()); got != 6 {
			t.Fatalf("successor list length %d, want 6", got)
		}
	}
}

// Property: every finger i points at the first member at or after
// self + 2^i.
func TestBuildRingFingerCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	members := randomMembers(rng, 16)
	states := BuildRing(members, 4)
	// Brute-force owner: minimal clockwise distance from the start point.
	ownerOf := func(k ID) int {
		best, bestDist := -1, ^ID(0)
		for _, m := range members {
			d := Dist(k, m.ID)
			if best == -1 || d < bestDist {
				best, bestDist = m.Addr, d
			}
		}
		return best
	}
	for _, st := range states {
		for i := 0; i < M; i += 7 { // sample fingers
			start := FingerStart(st.Self.ID, i)
			f := st.Finger(i)
			if !f.OK {
				t.Fatalf("finger %d unset", i)
			}
			if f.Addr != ownerOf(start) {
				t.Fatalf("finger %d of %d points at %d, want %d", i, st.Self.Addr, f.Addr, ownerOf(start))
			}
		}
	}
}

func TestCheckRingDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	members := randomMembers(rng, 12)
	states := BuildRing(members, 4)
	if problems := CheckRing(states); len(problems) != 0 {
		t.Fatalf("fresh ring reported problems: %v", problems)
	}
	// Corrupt one node's predecessor and expect a complaint.
	for _, st := range states {
		st.SetPredecessor(Entry[int]{ID: st.Self.ID + 1, Addr: 999, OK: true})
		break
	}
	if problems := CheckRing(states); len(problems) == 0 {
		t.Fatal("corrupted ring passed CheckRing")
	}
}
