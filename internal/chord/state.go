package chord

import "fmt"

// Entry names a remote node: its ring ID plus a transport address of
// caller-chosen type A (a simnet.NodeID in simulation, a TCP address in the
// live node).
type Entry[A comparable] struct {
	ID   ID
	Addr A
	OK   bool // false = no entry
}

// State is one node's view of the Chord ring. All methods are pure
// manipulations of local state; the caller performs the RPCs that feed them.
// State is not safe for concurrent use; wrap it in a mutex when the
// transport is concurrent (internal/live does).
type State[A comparable] struct {
	Self Entry[A]

	pred     Entry[A]
	succ     []Entry[A] // successor list, invariant: len <= succSize, [0] is the successor
	succSize int
	finger   [M]Entry[A]
	nextFix  int

	// Maintenance counters (pure, guarded by the caller's lock like the
	// rest of the state): how often the immediate successor changed and
	// how many failed peers were purged. The live node's telemetry layer
	// exposes them; the simulator ignores them.
	succChanges     uint64
	failuresRemoved uint64
}

// MaintenanceStats reports how many times the immediate successor changed
// and how many failed-peer purges removed at least one table entry, since
// the state was created.
func (s *State[A]) MaintenanceStats() (succChanges, failuresRemoved uint64) {
	return s.succChanges, s.failuresRemoved
}

// NewState creates the state for a node with the given identity.
// succListSize is the length of the successor list (the paper's evaluation
// treats it as the node's neighbor set, varying it from 8 to 64).
func NewState[A comparable](self Entry[A], succListSize int) *State[A] {
	if succListSize < 1 {
		panic("chord: successor list size must be >= 1")
	}
	s := &State[A]{Self: self, succSize: succListSize}
	// A lone node is its own successor: the ring of one.
	s.succ = []Entry[A]{self}
	return s
}

// Successor returns the immediate successor (self on a one-node ring).
func (s *State[A]) Successor() Entry[A] { return s.succ[0] }

// SuccessorList returns a copy of the successor list.
func (s *State[A]) SuccessorList() []Entry[A] {
	out := make([]Entry[A], len(s.succ))
	copy(out, s.succ)
	return out
}

// SuccessorListSize returns the configured capacity.
func (s *State[A]) SuccessorListSize() int { return s.succSize }

// Predecessor returns the predecessor entry (OK=false if unknown).
func (s *State[A]) Predecessor() Entry[A] { return s.pred }

// SetPredecessor overwrites the predecessor (used on explicit notifications
// such as a graceful leave).
func (s *State[A]) SetPredecessor(e Entry[A]) { s.pred = e }

// ClearPredecessor forgets the predecessor (e.g. after it fails).
func (s *State[A]) ClearPredecessor() { s.pred = Entry[A]{} }

// SetSuccessor replaces the head of the successor list (join/repair).
func (s *State[A]) SetSuccessor(e Entry[A]) {
	if !e.OK {
		panic("chord: SetSuccessor with empty entry")
	}
	if len(s.succ) == 0 {
		s.succ = []Entry[A]{e}
		return
	}
	if s.succ[0].ID == e.ID && s.succ[0].Addr == e.Addr {
		return
	}
	s.succChanges++
	s.succ = append([]Entry[A]{e}, s.succ...)
	s.dedupeSucc()
}

// AdoptSuccessorList installs succ's own successor list after a stabilize
// round: our list becomes [succ, succ.list...] truncated to capacity.
func (s *State[A]) AdoptSuccessorList(succ Entry[A], list []Entry[A]) {
	oldHead := s.Successor().Addr
	merged := make([]Entry[A], 0, s.succSize)
	merged = append(merged, succ)
	for _, e := range list {
		if len(merged) >= s.succSize {
			break
		}
		merged = append(merged, e)
	}
	s.succ = merged
	s.dedupeSucc()
	if len(s.succ) > 0 && s.Successor().Addr != oldHead {
		s.succChanges++
	}
}

func (s *State[A]) dedupeSucc() {
	seen := make(map[A]bool, len(s.succ))
	out := s.succ[:0]
	for _, e := range s.succ {
		if !e.OK || seen[e.Addr] {
			continue
		}
		// Never list ourselves behind other nodes; self only belongs on a
		// one-node ring.
		if e.Addr == s.Self.Addr && len(out) > 0 {
			continue
		}
		seen[e.Addr] = true
		out = append(out, e)
		if len(out) >= s.succSize {
			break
		}
	}
	if len(out) == 0 {
		out = append(out, s.Self)
	}
	s.succ = out
}

// Notify implements Chord's notify rule: candidate thinks it might be our
// predecessor. Adopt it if we have none or it falls in (pred, self). It
// returns true if the predecessor changed.
func (s *State[A]) Notify(candidate Entry[A]) bool {
	if !candidate.OK || candidate.Addr == s.Self.Addr {
		return false
	}
	if !s.pred.OK || InOO(s.pred.ID, candidate.ID, s.Self.ID) {
		s.pred = candidate
		return true
	}
	return false
}

// MergeCandidate folds a member discovered outside normal stabilization —
// census probes, ring-merge traffic — into this node's view. It applies only
// the two monotone Chord repairs: adopt the candidate as successor when it
// tightens (self, successor), and as predecessor under the standard Notify
// rule. Monotonicity is what makes concurrent merges safe: both operations
// only ever shrink their interval toward self, so two detectors merging two
// halves simultaneously can race but never oscillate — repeated application
// reaches a fixpoint. A candidate that tightens nothing is a no-op here
// (the caller's member cache remembers it). On a ring of one, any candidate
// becomes the successor: this is the lone-node re-bootstrap step.
// Returns true if the successor or predecessor changed.
func (s *State[A]) MergeCandidate(e Entry[A]) bool {
	if !e.OK || e.Addr == s.Self.Addr {
		return false
	}
	changed := false
	succ := s.Successor()
	if succ.Addr == s.Self.Addr || InOO(s.Self.ID, e.ID, succ.ID) {
		s.SetSuccessor(e)
		changed = true
	}
	if s.Notify(e) {
		changed = true
	}
	return changed
}

// OwnsKey reports whether this node is the owner (the paper's "owner of the
// ID"): the key lies in (predecessor, self]. With no known predecessor a
// node conservatively claims the key; stabilization corrects transients.
func (s *State[A]) OwnsKey(k ID) bool {
	if !s.pred.OK {
		return true
	}
	return InOC(s.pred.ID, k, s.Self.ID)
}

// NextHop decides the next routing step for key k:
//
//   - done=true, hop=self: this node owns k.
//   - done=true, hop=successor: k lies between self and successor, so the
//     successor owns it (Chord's find_successor base case).
//   - done=false: forward the query to hop (closest preceding node).
func (s *State[A]) NextHop(k ID) (hop Entry[A], done bool) {
	return s.NextHopUsing(k, true)
}

// NextHopUsing is NextHop with finger use selectable. The paper's
// evaluation treats a node's successor list as its whole neighbor set
// (§IV: "we regard the neighbors in a node's successor list in DCO as the
// node's neighbors"), so the simulated experiments route with
// useFingers=false; the live node routes with fingers for log n hops.
func (s *State[A]) NextHopUsing(k ID, useFingers bool) (hop Entry[A], done bool) {
	if s.OwnsKey(k) && s.pred.OK {
		return s.Self, true
	}
	succ := s.Successor()
	if succ.Addr == s.Self.Addr { // ring of one
		return s.Self, true
	}
	if InOC(s.Self.ID, k, succ.ID) {
		return succ, true
	}
	return s.closestPreceding(k, useFingers), false
}

// ClosestPreceding returns the finger or successor-list entry whose ID most
// closely precedes k, falling back to the immediate successor. This is
// Chord's closest_preceding_node.
func (s *State[A]) ClosestPreceding(k ID) Entry[A] { return s.closestPreceding(k, true) }

func (s *State[A]) closestPreceding(k ID, useFingers bool) Entry[A] {
	best := Entry[A]{}
	consider := func(e Entry[A]) {
		if !e.OK || e.Addr == s.Self.Addr {
			return
		}
		if !InOO(s.Self.ID, e.ID, k) {
			return
		}
		if !best.OK || InOO(best.ID, e.ID, k) {
			best = e
		}
	}
	if useFingers {
		for i := M - 1; i >= 0; i-- {
			consider(s.finger[i])
		}
	}
	for _, e := range s.succ {
		consider(e)
	}
	if best.OK {
		return best
	}
	return s.Successor()
}

// Finger returns finger i (OK=false when unset).
func (s *State[A]) Finger(i int) Entry[A] { return s.finger[i] }

// SetFinger installs finger i.
func (s *State[A]) SetFinger(i int, e Entry[A]) {
	if i < 0 || i >= M {
		panic(fmt.Sprintf("chord: finger index %d out of range", i))
	}
	s.finger[i] = e
}

// NextFingerToFix returns the index and ring origin of the next finger the
// periodic fix_fingers step should refresh, advancing the cursor.
func (s *State[A]) NextFingerToFix() (i int, start ID) {
	i = s.nextFix
	s.nextFix = (s.nextFix + 1) % M
	return i, FingerStart(s.Self.ID, i)
}

// RemoveFailed purges a dead node from every table. Returns true if the
// immediate successor changed (the caller should then re-stabilize).
func (s *State[A]) RemoveFailed(addr A) bool {
	oldSucc := s.Successor().Addr
	removed := false
	if s.pred.OK && s.pred.Addr == addr {
		s.pred = Entry[A]{}
		removed = true
	}
	out := s.succ[:0]
	for _, e := range s.succ {
		if e.Addr != addr {
			out = append(out, e)
		} else {
			removed = true
		}
	}
	s.succ = out
	if len(s.succ) == 0 {
		s.succ = []Entry[A]{s.Self}
	}
	for i := range s.finger {
		if s.finger[i].OK && s.finger[i].Addr == addr {
			s.finger[i] = Entry[A]{}
			removed = true
		}
	}
	if removed {
		s.failuresRemoved++
	}
	changed := s.Successor().Addr != oldSucc
	if changed {
		s.succChanges++
	}
	return changed
}

// Neighbors returns the distinct nodes this state knows about (successor
// list + fingers + predecessor), excluding self. In the paper's evaluation
// the successor-list members count as the node's "neighbors".
func (s *State[A]) Neighbors() []Entry[A] {
	seen := map[A]bool{s.Self.Addr: true}
	var out []Entry[A]
	add := func(e Entry[A]) {
		if e.OK && !seen[e.Addr] {
			seen[e.Addr] = true
			out = append(out, e)
		}
	}
	for _, e := range s.succ {
		add(e)
	}
	add(s.pred)
	for i := range s.finger {
		add(s.finger[i])
	}
	return out
}
