package chord

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInOOBasic(t *testing.T) {
	cases := []struct {
		a, x, b ID
		want    bool
	}{
		{1, 5, 10, true},
		{1, 1, 10, false},
		{1, 10, 10, false},
		{10, 5, 1, false},    // wrapped interval (10,1): 5 outside
		{10, 11, 1, true},    // wrapped: just after a
		{10, 0, 1, true},     // wrapped: just before b
		{5, 5, 5, false},     // full circle minus the point a
		{5, 6, 5, true},      // full circle contains everything else
		{^ID(0), 0, 1, true}, // wrapped arc (max, 1) contains 0
	}
	for _, c := range cases {
		if got := InOO(c.a, c.x, c.b); got != c.want {
			t.Errorf("InOO(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

func TestInOCBasic(t *testing.T) {
	cases := []struct {
		a, x, b ID
		want    bool
	}{
		{1, 5, 10, true},
		{1, 10, 10, true}, // inclusive at b
		{1, 1, 10, false},
		{10, 1, 1, true}, // wrapped, x == b
		{10, 10, 1, false},
		{5, 123, 5, true}, // a == b: single-node ring owns everything
	}
	for _, c := range cases {
		if got := InOC(c.a, c.x, c.b); got != c.want {
			t.Errorf("InOC(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

// Property: for distinct a, b, every x is in exactly one of (a,b] and (b,a].
func TestIntervalPartitionProperty(t *testing.T) {
	f := func(a, x, b uint64) bool {
		if a == b {
			return true
		}
		in1 := InOC(ID(a), ID(x), ID(b))
		in2 := InOC(ID(b), ID(x), ID(a))
		return in1 != in2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: InOO(a,x,b) implies InOC(a,x,b).
func TestOpenImpliesHalfOpenProperty(t *testing.T) {
	f := func(a, x, b uint64) bool {
		if InOO(ID(a), ID(x), ID(b)) {
			return InOC(ID(a), ID(x), ID(b))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFingerStartWraps(t *testing.T) {
	n := ID(^uint64(0) - 2) // near the top of the circle
	if got := FingerStart(n, 2); got != ID(1) {
		t.Errorf("FingerStart wrap: got %d, want 1", uint64(got))
	}
	if got := FingerStart(0, 63); got != ID(1)<<63 {
		t.Errorf("FingerStart(0,63) = %x", uint64(got))
	}
}

func TestHashDeterministicAndSpread(t *testing.T) {
	if HashString("CNN0001") != HashString("CNN0001") {
		t.Fatal("hash not deterministic")
	}
	if HashString("CNN0001") == HashString("CNN0002") {
		t.Fatal("adjacent chunk names collide")
	}
	// Rough uniformity: across 4096 names, the top bit should be set about
	// half the time.
	top := 0
	for i := 0; i < 4096; i++ {
		if HashString(string(rune('a'+i%26))+string(rune('0'+i%10))+fmtInt(i))>>63 == 1 {
			top++
		}
	}
	if top < 1638 || top > 2458 { // 40%..60%
		t.Errorf("top-bit frequency %d/4096 suggests a broken hash", top)
	}
}

func fmtInt(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Property: Dist is the additive inverse of FingerStart-style offsets:
// Dist(a, a+d) == d for all a, d.
func TestDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, d := ID(rng.Uint64()), ID(rng.Uint64())
		if Dist(a, a+d) != d {
			t.Fatalf("Dist(%d, %d+%d) != %d", a, a, d, d)
		}
	}
}
