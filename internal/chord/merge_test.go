package chord

import (
	"fmt"
	"sort"
	"testing"
)

// stabilizeRound emulates one global round of Chord stabilization over pure
// states, the way internal/live's loop drives it over RPC: each node asks its
// successor for its predecessor (adopting it when closer), adopts the
// successor's list, and notifies. Deterministic node order keeps the test
// reproducible. Returns the number of pointer changes made.
func stabilizeRound(states map[int]*State[int]) int {
	addrs := make([]int, 0, len(states))
	for a := range states {
		addrs = append(addrs, a)
	}
	sort.Ints(addrs)
	changes := 0
	for _, a := range addrs {
		st := states[a]
		succ := st.Successor()
		if succ.Addr == st.Self.Addr {
			continue
		}
		ss := states[succ.Addr]
		if p := ss.Predecessor(); p.OK && p.Addr != st.Self.Addr && InOO(st.Self.ID, p.ID, succ.ID) {
			st.SetSuccessor(p)
			succ = p
			ss = states[p.Addr]
			changes++
		}
		st.AdoptSuccessorList(succ, ss.SuccessorList())
		if ss.Notify(st.Self) {
			changes++
		}
	}
	return changes
}

// isSingleRing reports whether every node's successor is its true clockwise
// neighbor by ID — the fully merged state. Note CheckRing alone cannot detect
// a split: two disjoint rings are each internally consistent.
func isSingleRing(states map[int]*State[int]) bool {
	sorted := make([]Entry[int], 0, len(states))
	for _, st := range states {
		sorted = append(sorted, st.Self)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	n := len(sorted)
	for i, self := range sorted {
		if states[self.Addr].Successor().Addr != sorted[(i+1)%n].Addr {
			return false
		}
	}
	return true
}

// findOwner emulates the live node's findOwnerFrom: iterative routing from a
// given start member toward the owner of k.
func findOwner(states map[int]*State[int], from Entry[int], k ID) Entry[int] {
	cur := from
	for i := 0; i < 4*M; i++ {
		hop, done := states[cur.Addr].NextHopUsing(k, true)
		if done {
			return hop
		}
		cur = hop
	}
	return cur
}

// mergeVia emulates the live merge protocol's core exchange: the detector
// routes its own ID through the foreign member, then detector and foreign
// owner fold each other in. The owner's side always tightens (the detector's
// ID lies in the owner's claimed range by construction), which is what seeds
// the stabilize cascade even when the raw foreign member tightens nothing
// for the detector.
func mergeVia(states map[int]*State[int], detector *State[int], foreign Entry[int]) {
	owner := findOwner(states, foreign, detector.Self.ID)
	detector.MergeCandidate(owner)
	states[owner.Addr].MergeCandidate(detector.Self)
}

// twoRings builds two disjoint converged rings whose IDs interleave on the
// circle — the worst case for a merge, since nearly every node must change
// its successor.
func twoRings(n int) (states map[int]*State[int], a, b []Entry[int]) {
	states = make(map[int]*State[int])
	for i := 0; i < n; i++ {
		a = append(a, e(ID(i)*1000+100, i))
		b = append(b, e(ID(i)*1000+600, 1000+i))
	}
	for addr, st := range BuildRing(a, 4) {
		states[addr] = st
	}
	for addr, st := range BuildRing(b, 4) {
		states[addr] = st
	}
	return states, a, b
}

func TestMergeCandidateLoneNode(t *testing.T) {
	s := NewState(e(100, 1), 4)
	if !s.MergeCandidate(e(200, 2)) {
		t.Fatal("lone node must adopt any candidate")
	}
	if s.Successor().Addr != 2 {
		t.Fatalf("successor = %v, want candidate", s.Successor())
	}
	if s.Predecessor().Addr != 2 {
		t.Fatalf("predecessor = %v, want candidate", s.Predecessor())
	}
	if s.MergeCandidate(s.Self) {
		t.Fatal("self candidate must be a no-op")
	}
}

func TestMergeCandidateOnlyTightens(t *testing.T) {
	s := NewState(e(100, 1), 4)
	s.SetSuccessor(e(200, 2))
	s.SetPredecessor(e(50, 3))
	// 300 is farther than the current successor 200: neither pointer moves.
	if s.MergeCandidate(e(300, 4)) {
		t.Fatal("farther candidate must not change pointers")
	}
	// 150 tightens (100, 200).
	if !s.MergeCandidate(e(150, 5)) {
		t.Fatal("closer candidate must be adopted as successor")
	}
	if s.Successor().Addr != 5 {
		t.Fatalf("successor = %v, want addr 5", s.Successor())
	}
	// Re-applying the same candidate is a fixpoint: no oscillation.
	if s.MergeCandidate(e(150, 5)) {
		t.Fatal("re-applying an adopted candidate must be a no-op")
	}
}

func TestTwoRingsMergeViaSingleDetector(t *testing.T) {
	states, a, b := twoRings(8)
	// One detector in ring A learns of one member of ring B.
	mergeVia(states, states[a[0].Addr], b[3])
	waitMerge(t, states)
}

func TestTwoRingsMergeWithSimultaneousDetectors(t *testing.T) {
	// Both halves detect the split in the same instant and merge toward each
	// other — the tie-break case. Monotone adoption must converge without
	// oscillating even when the cross-links point in "opposite" directions.
	states, a, b := twoRings(8)
	mergeVia(states, states[a[2].Addr], b[6])
	mergeVia(states, states[b[1].Addr], a[5])
	waitMerge(t, states)
}

func TestTwoRingsMergeEveryDetectorPair(t *testing.T) {
	// Exhaustively: any pair of simultaneous cross-detections (one per half)
	// must converge. Catches positional livelocks a single sample could miss.
	const n = 4
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t.Run(fmt.Sprintf("a%d-b%d", i, j), func(t *testing.T) {
				states, a, b := twoRings(n)
				mergeVia(states, states[a[i].Addr], b[j])
				mergeVia(states, states[b[j].Addr], a[i])
				waitMerge(t, states)
			})
		}
	}
}

// waitMerge runs stabilization rounds until the union forms one clockwise
// ring, bounding the rounds, then asserts quiescence (no further pointer
// changes — the no-livelock guarantee).
func waitMerge(t *testing.T, states map[int]*State[int]) {
	t.Helper()
	maxRounds := 4 * len(states)
	for r := 0; r < maxRounds; r++ {
		stabilizeRound(states)
		if isSingleRing(states) {
			if probs := CheckRing(states); len(probs) != 0 {
				// Predecessors may trail the successors by one round.
				stabilizeRound(states)
				if probs = CheckRing(states); len(probs) != 0 {
					t.Fatalf("merged ring violates invariants: %v", probs)
				}
			}
			if c := stabilizeRound(states); c != 0 {
				t.Fatalf("ring oscillated after convergence: %d changes in quiescent round", c)
			}
			return
		}
	}
	t.Fatalf("rings did not merge within %d stabilization rounds", maxRounds)
}
