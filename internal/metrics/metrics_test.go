package metrics

import (
	"testing"
	"time"

	"dco/internal/simnet"
)

const server = simnet.NodeID(0)

func sec(n int64) time.Duration { return time.Duration(n) * time.Second }

func newLog(chunks int64, nodes ...simnet.NodeID) *DeliveryLog {
	l := NewDeliveryLog(chunks, server)
	for _, id := range nodes {
		l.NodeJoined(id, 0)
	}
	return l
}

func TestMeshDelay(t *testing.T) {
	l := newLog(2, 1, 2)
	l.Generated(0, sec(0))
	l.Generated(1, sec(1))
	l.Received(1, 0, sec(2))
	l.Received(2, 0, sec(5)) // chunk 0 complete at 5 → delay 5
	l.Received(1, 1, sec(3))
	l.Received(2, 1, sec(4)) // chunk 1 complete at 4 → delay 3
	mean, complete, total := l.MeshDelay()
	if complete != 2 || total != 2 {
		t.Fatalf("complete %d/%d", complete, total)
	}
	if mean != 4*time.Second {
		t.Fatalf("mean delay = %v, want 4s", mean)
	}
}

func TestMeshDelayIncomplete(t *testing.T) {
	l := newLog(1, 1, 2)
	l.Generated(0, 0)
	l.Received(1, 0, sec(1))
	mean, complete, total := l.MeshDelay()
	if complete != 0 || total != 1 || mean != 0 {
		t.Fatalf("incomplete chunk misreported: %v %d/%d", mean, complete, total)
	}
	if _, ok := l.ChunkCompletion(0); ok {
		t.Fatal("ChunkCompletion claimed completion")
	}
	l.Received(2, 0, sec(9))
	if d, ok := l.ChunkCompletion(0); !ok || d != 9*time.Second {
		t.Fatalf("completion = %v/%v", d, ok)
	}
}

func TestServerExcluded(t *testing.T) {
	l := newLog(1, 1)
	l.Generated(0, 0)
	l.Received(server, 0, sec(1)) // must be ignored
	l.Received(1, 0, sec(2))
	if mean, complete, _ := l.MeshDelay(); complete != 1 || mean != 2*time.Second {
		t.Fatalf("server receipt leaked into the metric: %v", mean)
	}
}

func TestDuplicateReceiptsIgnored(t *testing.T) {
	l := newLog(1, 1)
	l.Generated(0, 0)
	l.Received(1, 0, sec(2))
	l.Received(1, 0, sec(1)) // duplicate, earlier: still ignored (first wins)
	if d, ok := l.ChunkCompletion(0); !ok || d != 2*time.Second {
		t.Fatalf("duplicate receipt changed the record: %v", d)
	}
}

func TestFillRatio(t *testing.T) {
	l := newLog(1, 1, 2, 3, 4)
	l.Generated(0, sec(10))
	l.Received(1, 0, sec(11))
	l.Received(2, 0, sec(12))
	if got := l.FillRatio(0, sec(11)); got != 0.25 {
		t.Fatalf("fill@11 = %f, want 0.25", got)
	}
	if got := l.FillRatio(0, sec(12)); got != 0.5 {
		t.Fatalf("fill@12 = %f, want 0.5", got)
	}
	if got := l.MeanFillRatioAfter(2 * time.Second); got != 0.5 {
		t.Fatalf("mean fill after 2s = %f", got)
	}
	if got := l.MeanFillRatioAt(sec(12)); got != 0.5 {
		t.Fatalf("mean fill at 12s = %f", got)
	}
	if got := l.MeanFillRatioAt(sec(5)); got != 0 {
		t.Fatalf("fill before generation = %f", got)
	}
}

func TestFillRatioExcludesDepartedAndLateJoiners(t *testing.T) {
	l := newLog(1, 1, 2)
	l.NodeJoined(3, sec(50)) // joins later
	l.Generated(0, sec(0))
	l.Received(1, 0, sec(1))
	l.NodeLeft(2, sec(2))
	// At t=3: node 2 departed, node 3 not yet joined → eligible = {1}.
	if got := l.FillRatio(0, sec(3)); got != 1.0 {
		t.Fatalf("fill with departed/late nodes = %f, want 1", got)
	}
}

func TestReceivedPercent(t *testing.T) {
	l := NewDeliveryLog(4, server)
	// Node 1 lives the whole run, receives everything it should.
	l.NodeJoined(1, 0)
	// Node 2 joins at t=2: expected chunks 2,3 only.
	l.NodeJoined(2, sec(2))
	// Node 3 leaves at t=1.5: expected chunks 0,1.
	l.NodeJoined(3, 0)

	for seq := int64(0); seq < 4; seq++ {
		l.Generated(seq, sec(seq))
	}
	l.NodeLeft(3, sec(1)+500*time.Millisecond)

	for seq := int64(0); seq < 4; seq++ {
		l.Received(1, seq, sec(seq)+time.Second)
	}
	l.Received(2, 2, sec(3))
	l.Received(2, 3, sec(4))
	l.Received(3, 0, sec(1))
	// Node 3 misses chunk 1.

	// Expected: node1 4/4, node2 2/2, node3 1/2 → 7/8 = 87.5%.
	if got := l.ReceivedPercent(sec(100)); got != 87.5 {
		t.Fatalf("received%% = %f, want 87.5", got)
	}
	// With a horizon before node1's last receipt, its chunk 3 is excluded.
	if got := l.ReceivedPercent(sec(3) + 500*time.Millisecond); got == 87.5 {
		t.Fatal("horizon not applied")
	}
}

func TestReceivedCountAt(t *testing.T) {
	l := newLog(2, 1, 2)
	l.Generated(0, 0)
	l.Generated(1, 0)
	l.Received(1, 0, sec(1))
	l.Received(2, 1, sec(3))
	if got := l.ReceivedCountAt(sec(2)); got != 1 {
		t.Fatalf("count@2 = %d", got)
	}
	if got := l.ReceivedCountAt(sec(3)); got != 2 {
		t.Fatalf("count@3 = %d", got)
	}
}

func TestOutOfRangeInputs(t *testing.T) {
	l := newLog(1, 1)
	l.Generated(-1, 0) // ignored
	l.Generated(5, 0)  // ignored
	l.Received(1, -1, 0)
	l.Received(1, 5, 0)
	l.Received(99, 0, 0) // unknown node
	if l.Members() != 1 {
		t.Fatalf("members = %d", l.Members())
	}
	if _, ok := l.ChunkCompletion(0); ok {
		t.Fatal("nothing was generated")
	}
}
