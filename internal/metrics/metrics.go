// Package metrics implements the four evaluation metrics of §IV:
//
//  1. Mesh delay — time from a chunk's generation until every node holds it.
//  2. Fill ratio — fraction of nodes holding a chunk at a given time.
//  3. Extra overhead — non-chunk message count (tracked by simnet; this
//     package only reports it).
//  4. Percentage of received chunks — delivery success under churn.
package metrics

import (
	"math"
	"time"

	"dco/internal/simnet"
)

// Never marks "not received" timestamps.
const Never = time.Duration(math.MaxInt64)

type nodeRec struct {
	join  time.Duration
	leave time.Duration // Never while alive
	recv  map[int64]time.Duration
}

// DeliveryLog records chunk generations and first receipts, and node
// membership intervals, from which all delay/fill/success metrics derive.
type DeliveryLog struct {
	numChunks int64
	gen       []time.Duration // per-seq generation time, Never if not yet generated
	nodes     map[simnet.NodeID]*nodeRec
	server    simnet.NodeID
}

// NewDeliveryLog creates a log for a stream of numChunks chunks originating
// at server (the server is excluded from receiver-side statistics).
func NewDeliveryLog(numChunks int64, server simnet.NodeID) *DeliveryLog {
	g := make([]time.Duration, numChunks)
	for i := range g {
		g[i] = Never
	}
	return &DeliveryLog{
		numChunks: numChunks,
		gen:       g,
		nodes:     make(map[simnet.NodeID]*nodeRec),
		server:    server,
	}
}

// NumChunks returns the stream length this log covers.
func (l *DeliveryLog) NumChunks() int64 { return l.numChunks }

// NodeJoined records that node id became a viewer at time t.
func (l *DeliveryLog) NodeJoined(id simnet.NodeID, t time.Duration) {
	if id == l.server {
		return
	}
	l.nodes[id] = &nodeRec{join: t, leave: Never, recv: make(map[int64]time.Duration)}
}

// NodeLeft records that node id departed at time t.
func (l *DeliveryLog) NodeLeft(id simnet.NodeID, t time.Duration) {
	if r, ok := l.nodes[id]; ok && r.leave == Never {
		r.leave = t
	}
}

// Generated records that chunk seq was produced at time t.
func (l *DeliveryLog) Generated(seq int64, t time.Duration) {
	if seq >= 0 && seq < l.numChunks && l.gen[seq] == Never {
		l.gen[seq] = t
	}
}

// Received records the first receipt of chunk seq by node id at time t.
// Duplicate receipts are ignored (only the first matters for every metric).
func (l *DeliveryLog) Received(id simnet.NodeID, seq int64, t time.Duration) {
	if id == l.server || seq < 0 || seq >= l.numChunks {
		return
	}
	r, ok := l.nodes[id]
	if !ok {
		return
	}
	if _, dup := r.recv[seq]; !dup {
		r.recv[seq] = t
	}
}

// GenerationTime returns when seq was generated (Never if it wasn't).
func (l *DeliveryLog) GenerationTime(seq int64) time.Duration { return l.gen[seq] }

// MeshDelay returns the mean, over chunks that reached every eligible node,
// of (time last node received it − generation time), plus how many chunks
// completed. A node is eligible for a chunk if it was a member for the
// chunk's entire propagation (joined before generation, never left). This is
// the paper's metric 1.
func (l *DeliveryLog) MeshDelay() (mean time.Duration, complete, total int64) {
	var sum time.Duration
	for seq := int64(0); seq < l.numChunks; seq++ {
		g := l.gen[seq]
		if g == Never {
			continue
		}
		total++
		var last time.Duration
		done := true
		for _, r := range l.nodes {
			if r.join > g || r.leave != Never {
				continue // not an eligible receiver for this chunk
			}
			t, ok := r.recv[seq]
			if !ok {
				done = false
				break
			}
			if t > last {
				last = t
			}
		}
		if done {
			complete++
			sum += last - g
		}
	}
	if complete == 0 {
		return 0, 0, total
	}
	return sum / time.Duration(complete), complete, total
}

// ChunkCompletion returns when chunk seq had reached every eligible node
// (joined before generation, never left), or ok=false if it never did.
func (l *DeliveryLog) ChunkCompletion(seq int64) (delay time.Duration, ok bool) {
	g := l.gen[seq]
	if g == Never {
		return 0, false
	}
	var last time.Duration
	for _, r := range l.nodes {
		if r.join > g || r.leave != Never {
			continue
		}
		t, got := r.recv[seq]
		if !got {
			return 0, false
		}
		if t > last {
			last = t
		}
	}
	return last - g, true
}

// FillRatio returns the fraction of eligible nodes holding chunk seq at
// absolute time t (the paper's metric 2).
func (l *DeliveryLog) FillRatio(seq int64, t time.Duration) float64 {
	g := l.gen[seq]
	if g == Never {
		return 0
	}
	var have, eligible int
	for _, r := range l.nodes {
		if r.join > t || r.leave < t {
			continue
		}
		eligible++
		if rt, ok := r.recv[seq]; ok && rt <= t {
			have++
		}
	}
	if eligible == 0 {
		return 0
	}
	return float64(have) / float64(eligible)
}

// MeanFillRatioAfter averages, over all generated chunks, the fill ratio
// measured delta after each chunk's generation (Fig. 6 uses delta = 2 s).
func (l *DeliveryLog) MeanFillRatioAfter(delta time.Duration) float64 {
	var sum float64
	var n int
	for seq := int64(0); seq < l.numChunks; seq++ {
		if l.gen[seq] == Never {
			continue
		}
		sum += l.FillRatio(seq, l.gen[seq]+delta)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanFillRatioAt averages the fill ratio of all generated chunks at
// absolute time t (Fig. 7's time series).
func (l *DeliveryLog) MeanFillRatioAt(t time.Duration) float64 {
	var sum float64
	var n int
	for seq := int64(0); seq < l.numChunks; seq++ {
		if l.gen[seq] == Never || l.gen[seq] > t {
			continue
		}
		sum += l.FillRatio(seq, t)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ReceivedPercent implements metric 4 for churn runs: the number of chunks
// successfully received by all recipients over the total number of chunks
// each recipient should have received. A node is expected to receive the
// chunks generated while it was a member, cut off at horizon.
func (l *DeliveryLog) ReceivedPercent(horizon time.Duration) float64 {
	var got, want int64
	for _, r := range l.nodes {
		end := r.leave
		if end > horizon {
			end = horizon
		}
		for seq := int64(0); seq < l.numChunks; seq++ {
			g := l.gen[seq]
			if g == Never || g < r.join || g > end {
				continue
			}
			want++
			if t, ok := r.recv[seq]; ok && t <= horizon {
				got++
			}
		}
	}
	if want == 0 {
		return 0
	}
	return 100 * float64(got) / float64(want)
}

// ReceivedCountAt returns total first-receipts with t <= horizon, a cheap
// monotone progress indicator used by Fig. 11's time sweep.
func (l *DeliveryLog) ReceivedCountAt(horizon time.Duration) int64 {
	var got int64
	for _, r := range l.nodes {
		for _, t := range r.recv {
			if t <= horizon {
				got++
			}
		}
	}
	return got
}

// Members returns how many nodes are registered (alive or departed).
func (l *DeliveryLog) Members() int { return len(l.nodes) }
