package stream

import "time"

// PrefetchConfig parameterizes the adaptive prefetching window of §III-B2.
type PrefetchConfig struct {
	// BaseWindow is W in Eq. (2): the system-wide predefined prefetching
	// window, sized to cover the DHT's log n lookup delay. UUSee's typical
	// value is 20 s (≈60 chunks of 1/3 s); with the paper's 1-second chunks
	// we default to 20 chunks.
	BaseWindow int
	// AvgBandwidthBps is B in Eq. (2): the network-wide average download
	// bandwidth.
	AvgBandwidthBps int64
	// MinWindow / MaxWindow clamp the adapted size so a node with pathological
	// failure rates cannot demand the entire stream at once.
	MinWindow, MaxWindow int
}

// DefaultPrefetchConfig matches the paper's simulation: 600 kbps peers.
func DefaultPrefetchConfig() PrefetchConfig {
	return PrefetchConfig{BaseWindow: 20, AvgBandwidthBps: 600_000, MinWindow: 4, MaxWindow: 120}
}

// Window computes Eq. (2):
//
//	W_pf = W * B / (b * (1 - p_f))
//
// where b is this node's download bandwidth and p_f the chunk-fetch failure
// probability it has observed. Slower or failure-prone nodes prefetch
// further ahead. The result is clamped to [MinWindow, MaxWindow].
func (c PrefetchConfig) Window(downloadBps int64, failureProb float64) int {
	if downloadBps <= 0 {
		return c.MaxWindow
	}
	if failureProb < 0 {
		failureProb = 0
	}
	if failureProb > 0.99 {
		failureProb = 0.99
	}
	w := float64(c.BaseWindow) * float64(c.AvgBandwidthBps) /
		(float64(downloadBps) * (1 - failureProb))
	n := int(w + 0.5)
	if n < c.MinWindow {
		n = c.MinWindow
	}
	if c.MaxWindow > 0 && n > c.MaxWindow {
		n = c.MaxWindow
	}
	return n
}

// FailureTracker keeps a node's running estimate of p_f, the probability of
// chunk-fetch failure, over an exponentially weighted window.
type FailureTracker struct {
	alpha float64 // EWMA weight for new samples
	p     float64
	n     int
}

// NewFailureTracker returns a tracker; alpha in (0,1] weights recent
// fetches (0.1 ≈ remember the last ~10 fetches).
func NewFailureTracker(alpha float64) *FailureTracker {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.1
	}
	return &FailureTracker{alpha: alpha}
}

// Record notes the outcome of one fetch attempt.
func (f *FailureTracker) Record(failed bool) {
	x := 0.0
	if failed {
		x = 1.0
	}
	if f.n == 0 {
		f.p = x
	} else {
		f.p = f.alpha*x + (1-f.alpha)*f.p
	}
	f.n++
}

// Prob returns the current failure-probability estimate.
func (f *FailureTracker) Prob() float64 { return f.p }

// Samples returns how many fetches have been recorded.
func (f *FailureTracker) Samples() int { return f.n }

// PlaybackBuffer tracks a viewer's playhead against its received chunks,
// supplying the "streaming quality" covariate for the stable-node model and
// the play/stall accounting examples report.
type PlaybackBuffer struct {
	Map      *BufferMap
	playhead int64 // next sequence to play
	params   Params
	started  bool
	startAt  time.Duration // virtual time playback began
	played   int64
	stalls   int64
}

// NewPlaybackBuffer returns a buffer for one viewer of channel p.
func NewPlaybackBuffer(p Params) *PlaybackBuffer {
	return &PlaybackBuffer{Map: NewBufferMap(0), params: p}
}

// Receive marks a chunk as buffered.
func (b *PlaybackBuffer) Receive(seq int64) { b.Map.Set(seq) }

// Playhead returns the next sequence to be played.
func (b *PlaybackBuffer) Playhead() int64 { return b.playhead }

// BufferingLevel is the consecutive-run length from the playhead — covariate
// z1 of the longevity model.
func (b *PlaybackBuffer) BufferingLevel() int { return b.Map.ConsecutiveFrom(b.playhead) }

// Tick advances playback by one chunk interval at virtual time now: if the
// next chunk is buffered it plays (the window slides), otherwise the viewer
// stalls. Returns true if a chunk played.
func (b *PlaybackBuffer) Tick(now time.Duration) bool {
	if !b.started {
		b.started = true
		b.startAt = now
	}
	if b.Map.Has(b.playhead) {
		b.playhead++
		b.played++
		b.Map.Advance(b.playhead - 1) // keep one played chunk for re-sharing
		return true
	}
	b.stalls++
	return false
}

// Stats returns chunks played and stall ticks so far.
func (b *PlaybackBuffer) Stats() (played, stalls int64) { return b.played, b.stalls }

// ContinuityIndex is played/(played+stalls), a standard streaming QoS
// summary derived from the paper's availability goal.
func (b *PlaybackBuffer) ContinuityIndex() float64 {
	total := b.played + b.stalls
	if total == 0 {
		return 1
	}
	return float64(b.played) / float64(total)
}
