// Package stream models the live-stream data plane from §III-A1 of the
// paper: a server slices a channel's media into fixed-length chunks named
// "channel name + generation timestamp"; every viewer keeps a playing
// buffer over a sliding window of active chunks and a prefetching window
// sized by Eq. (2).
package stream

import (
	"fmt"
	"time"

	"dco/internal/chord"
)

// ChunkRef identifies one chunk of one channel. Seq is the chunk's position
// in the stream: with 1-second chunks, seq k is generated k seconds after
// the stream starts. The (channel, seq) pair reproduces the paper's unique
// naming scheme (e.g. NBC20090101013001) without tying tests to wall-clock
// dates.
type ChunkRef struct {
	Channel string
	Seq     int64
}

// Name renders the paper-style unique chunk name.
func (c ChunkRef) Name() string { return fmt.Sprintf("%s%010d", c.Channel, c.Seq) }

// ID maps the chunk name onto the DHT identifier circle via consistent
// hashing — the key used for both Insert(ID, index) and Lookup(ID).
func (c ChunkRef) ID() chord.ID { return chord.HashString(c.Name()) }

// String implements fmt.Stringer.
func (c ChunkRef) String() string { return c.Name() }

// Params fixes the data-plane constants for one channel.
type Params struct {
	Channel   string
	ChunkBits int64         // size of one chunk; paper: 300 kbit (1 s of 300 kbps video)
	Period    time.Duration // generation interval; paper: 1 s
	Count     int64         // how many chunks the server produces; paper: 100 (200 under churn)
}

// DefaultParams returns the paper's §IV settings.
func DefaultParams() Params {
	return Params{Channel: "CNN", ChunkBits: 300_000, Period: time.Second, Count: 100}
}

// Ref returns the ChunkRef for sequence seq.
func (p Params) Ref(seq int64) ChunkRef { return ChunkRef{Channel: p.Channel, Seq: seq} }

// GenerationTime returns the virtual time chunk seq is produced at the
// server (stream starts at t=0).
func (p Params) GenerationTime(seq int64) time.Duration {
	return time.Duration(seq) * p.Period
}

// SeqAt returns the newest sequence number generated at or before t, or -1
// before the first chunk exists.
func (p Params) SeqAt(t time.Duration) int64 {
	if t < 0 {
		return -1
	}
	s := int64(t / p.Period)
	if s >= p.Count {
		s = p.Count - 1
	}
	return s
}
