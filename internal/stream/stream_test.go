package stream

import (
	"testing"
	"testing/quick"
	"time"
)

func TestChunkNaming(t *testing.T) {
	c := ChunkRef{Channel: "CNN", Seq: 240}
	if c.Name() != "CNN0000000240" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.Name() != c.String() {
		t.Fatal("String should equal Name")
	}
	// Uniqueness across channels and sequences.
	if (ChunkRef{Channel: "CNN", Seq: 1}).ID() == (ChunkRef{Channel: "NBC", Seq: 1}).ID() {
		t.Fatal("cross-channel chunk IDs collide")
	}
	if (ChunkRef{Channel: "CNN", Seq: 1}).ID() == (ChunkRef{Channel: "CNN", Seq: 2}).ID() {
		t.Fatal("same-channel chunk IDs collide")
	}
}

func TestParamsSchedule(t *testing.T) {
	p := DefaultParams()
	if p.GenerationTime(0) != 0 || p.GenerationTime(7) != 7*time.Second {
		t.Fatal("generation schedule wrong")
	}
	if p.SeqAt(-time.Second) != -1 {
		t.Fatal("before stream start there is no chunk")
	}
	if p.SeqAt(0) != 0 || p.SeqAt(1500*time.Millisecond) != 1 {
		t.Fatal("SeqAt wrong inside the stream")
	}
	if p.SeqAt(1e6*time.Second) != p.Count-1 {
		t.Fatal("SeqAt must clamp to the last chunk")
	}
}

func TestBufferMapBasics(t *testing.T) {
	b := NewBufferMap(0)
	if b.Has(0) || b.Count() != 0 {
		t.Fatal("fresh map not empty")
	}
	b.Set(3)
	b.Set(70) // crosses a word boundary
	b.Set(3)  // idempotent
	if !b.Has(3) || !b.Has(70) || b.Has(4) {
		t.Fatal("membership wrong")
	}
	if b.Count() != 2 {
		t.Fatalf("count = %d, want 2", b.Count())
	}
}

func TestBufferMapAdvance(t *testing.T) {
	b := NewBufferMap(0)
	for s := int64(0); s < 130; s++ {
		b.Set(s)
	}
	b.Advance(65) // drop one word plus one bit
	if b.Has(64) {
		t.Fatal("expired chunk still present")
	}
	if !b.Has(65) || !b.Has(129) {
		t.Fatal("live chunks lost by Advance")
	}
	if b.Count() != 65 {
		t.Fatalf("count after advance = %d, want 65", b.Count())
	}
	b.Set(10) // below base: ignored
	if b.Has(10) || b.Count() != 65 {
		t.Fatal("sub-base Set must be a no-op")
	}
	b.Advance(60) // backwards: no-op
	if b.Base() != 65 {
		t.Fatal("backwards Advance moved the base")
	}
	b.Advance(1000) // past everything
	if b.Count() != 0 {
		t.Fatal("advancing past the end should empty the map")
	}
}

func TestBufferMapMissing(t *testing.T) {
	b := NewBufferMap(0)
	for s := int64(0); s < 200; s++ {
		if s != 7 && s != 64 && s != 199 {
			b.Set(s)
		}
	}
	got := b.Missing(0, 199, 10)
	want := []int64{7, 64, 199}
	if len(got) != len(want) {
		t.Fatalf("missing = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("missing = %v, want %v", got, want)
		}
	}
	if got := b.Missing(0, 199, 2); len(got) != 2 {
		t.Fatalf("max not honored: %v", got)
	}
	// Range beyond stored words: everything missing.
	if got := b.Missing(500, 505, 100); len(got) != 6 {
		t.Fatalf("past-the-end missing = %v", got)
	}
}

// Property: Missing agrees with Has for arbitrary membership patterns.
func TestBufferMapMissingMatchesHas(t *testing.T) {
	f := func(present []uint16, lo, width uint8) bool {
		b := NewBufferMap(0)
		for _, s := range present {
			b.Set(int64(s % 512))
		}
		from := int64(lo)
		to := from + int64(width)
		got := b.Missing(from, to, 1<<16)
		idx := 0
		for s := from; s <= to; s++ {
			if !b.Has(s) {
				if idx >= len(got) || got[idx] != s {
					return false
				}
				idx++
			}
		}
		return idx == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of set members after arbitrary
// Set/Advance interleavings.
func TestBufferMapCountInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBufferMap(0)
		model := map[int64]bool{}
		base := int64(0)
		for i, op := range ops {
			s := int64(op % 400)
			if i%5 == 4 {
				nb := base + int64(op%50)
				b.Advance(nb)
				if nb > base {
					base = nb
					for k := range model {
						if k < base {
							delete(model, k)
						}
					}
				}
				continue
			}
			b.Set(s)
			if s >= base {
				model[s] = true
			}
		}
		if b.Count() != len(model) {
			return false
		}
		for k := range model {
			if !b.Has(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConsecutiveFrom(t *testing.T) {
	b := NewBufferMap(0)
	for _, s := range []int64{5, 6, 7, 9} {
		b.Set(s)
	}
	if got := b.ConsecutiveFrom(5); got != 3 {
		t.Fatalf("run from 5 = %d, want 3", got)
	}
	if got := b.ConsecutiveFrom(8); got != 0 {
		t.Fatalf("run from missing = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	b := NewBufferMap(0)
	b.Set(1)
	c := b.Clone()
	c.Set(2)
	if b.Has(2) {
		t.Fatal("clone shares storage with the original")
	}
	if !c.Has(1) || c.Count() != 2 || b.Count() != 1 {
		t.Fatal("clone state wrong")
	}
}

func TestPrefetchWindowEq2(t *testing.T) {
	cfg := PrefetchConfig{BaseWindow: 20, AvgBandwidthBps: 600_000, MinWindow: 1, MaxWindow: 1000}
	// b == B, p_f = 0: window = W.
	if got := cfg.Window(600_000, 0); got != 20 {
		t.Fatalf("baseline window = %d, want 20", got)
	}
	// Half the bandwidth doubles the window.
	if got := cfg.Window(300_000, 0); got != 40 {
		t.Fatalf("half-bandwidth window = %d, want 40", got)
	}
	// p_f = 0.5 doubles the window.
	if got := cfg.Window(600_000, 0.5); got != 40 {
		t.Fatalf("p_f=0.5 window = %d, want 40", got)
	}
	// Clamps.
	clamped := PrefetchConfig{BaseWindow: 20, AvgBandwidthBps: 600_000, MinWindow: 10, MaxWindow: 30}
	if got := clamped.Window(600_000, 0.9); got != 30 {
		t.Fatalf("max clamp failed: %d", got)
	}
	if got := clamped.Window(6_000_000, 0); got != 10 {
		t.Fatalf("min clamp failed: %d", got)
	}
	// Degenerate inputs survive.
	if got := cfg.Window(0, 0); got != cfg.MaxWindow {
		t.Fatalf("zero bandwidth should demand the max window, got %d", got)
	}
	if got := cfg.Window(600_000, 2.0); got <= 0 {
		t.Fatalf("out-of-range p_f mishandled: %d", got)
	}
}

func TestFailureTracker(t *testing.T) {
	ft := NewFailureTracker(0.5)
	if ft.Prob() != 0 || ft.Samples() != 0 {
		t.Fatal("fresh tracker not zero")
	}
	ft.Record(true)
	if ft.Prob() != 1 {
		t.Fatalf("first failure should set p=1, got %f", ft.Prob())
	}
	ft.Record(false)
	if ft.Prob() != 0.5 {
		t.Fatalf("EWMA after one ok = %f, want 0.5", ft.Prob())
	}
	for i := 0; i < 30; i++ {
		ft.Record(false)
	}
	if ft.Prob() > 0.001 {
		t.Fatalf("p should decay toward 0, got %f", ft.Prob())
	}
	// Invalid alpha falls back to a sane default rather than exploding.
	ft2 := NewFailureTracker(-1)
	ft2.Record(true)
	if ft2.Prob() != 1 {
		t.Fatal("fallback alpha broken")
	}
}

func TestPlaybackBuffer(t *testing.T) {
	p := Params{Channel: "X", ChunkBits: 1000, Period: time.Second, Count: 10}
	pb := NewPlaybackBuffer(p)
	pb.Receive(0)
	pb.Receive(1)
	pb.Receive(3)
	if pb.BufferingLevel() != 2 {
		t.Fatalf("buffering level = %d, want 2", pb.BufferingLevel())
	}
	if !pb.Tick(0) || !pb.Tick(time.Second) {
		t.Fatal("buffered chunks should play")
	}
	if pb.Tick(2 * time.Second) {
		t.Fatal("missing chunk 2 should stall")
	}
	pb.Receive(2)
	if !pb.Tick(3 * time.Second) {
		t.Fatal("after refill playback should resume")
	}
	played, stalls := pb.Stats()
	if played != 3 || stalls != 1 {
		t.Fatalf("stats = %d played, %d stalls", played, stalls)
	}
	if ci := pb.ContinuityIndex(); ci != 0.75 {
		t.Fatalf("continuity = %f, want 0.75", ci)
	}
}

func TestPlaybackContinuityEmpty(t *testing.T) {
	pb := NewPlaybackBuffer(DefaultParams())
	if pb.ContinuityIndex() != 1 {
		t.Fatal("no playback yet means perfect continuity")
	}
}

func BenchmarkBufferMapSetHas(b *testing.B) {
	bm := NewBufferMap(0)
	for i := 0; i < b.N; i++ {
		bm.Set(int64(i % 4096))
		if !bm.Has(int64(i % 4096)) {
			b.Fatal("lost a bit")
		}
	}
}

func BenchmarkBufferMapMissing(b *testing.B) {
	bm := NewBufferMap(0)
	for s := int64(0); s < 4096; s++ {
		if s%97 != 0 {
			bm.Set(s)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bm.Missing(0, 4095, 64); len(got) == 0 {
			b.Fatal("no holes found")
		}
	}
}
