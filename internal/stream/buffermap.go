package stream

import "math/bits"

// BufferMap summarizes which chunks a node holds, the structure mesh nodes
// exchange every second in the pull/push baselines and the structure a DCO
// node attaches to its chunk index (§III-B2, Fig. 3). It is a dynamically
// growing bitset keyed by chunk sequence number with a movable base so the
// window can slide forward as old chunks expire.
type BufferMap struct {
	base  int64 // first sequence represented by bit 0 of words[0]
	words []uint64
	count int
}

// NewBufferMap returns an empty map whose window starts at base.
func NewBufferMap(base int64) *BufferMap { return &BufferMap{base: base} }

// Base returns the first representable sequence number.
func (b *BufferMap) Base() int64 { return b.base }

// Set marks chunk seq as held. Sequences below the base are ignored (the
// chunk already expired from the window).
func (b *BufferMap) Set(seq int64) {
	if seq < b.base {
		return
	}
	off := seq - b.base
	w := int(off / 64)
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	mask := uint64(1) << uint(off%64)
	if b.words[w]&mask == 0 {
		b.words[w] |= mask
		b.count++
	}
}

// Has reports whether chunk seq is held.
func (b *BufferMap) Has(seq int64) bool {
	if seq < b.base {
		return false
	}
	off := seq - b.base
	w := int(off / 64)
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(uint64(1)<<uint(off%64)) != 0
}

// Count returns how many chunks are held.
func (b *BufferMap) Count() int { return b.count }

// Advance slides the window base forward to newBase, discarding bits for
// expired chunks. Moving backwards is a no-op.
func (b *BufferMap) Advance(newBase int64) {
	if newBase <= b.base {
		return
	}
	shift := newBase - b.base
	dropWords := int(shift / 64)
	if dropWords >= len(b.words) {
		b.words = b.words[:0]
		b.base = newBase
		b.count = 0
		return
	}
	dropped := 0
	for _, w := range b.words[:dropWords] {
		dropped += bits.OnesCount64(w)
	}
	b.words = append(b.words[:0], b.words[dropWords:]...)
	rem := uint(shift % 64)
	if rem > 0 {
		// Count bits shifted out of the first remaining word, then shift the
		// whole array right by rem.
		dropped += bits.OnesCount64(b.words[0] & ((uint64(1) << rem) - 1))
		for i := 0; i < len(b.words); i++ {
			b.words[i] >>= rem
			if i+1 < len(b.words) {
				b.words[i] |= b.words[i+1] << (64 - rem)
			}
		}
	}
	b.base = newBase
	b.count -= dropped
}

// Missing returns up to max sequence numbers in [from, to] that are not
// held, in ascending order. It is the request-scheduling primitive of the
// pull baseline and of DCO's client loop. Fully-held words are skipped, so
// the cost tracks the number of holes, not the width of the range.
func (b *BufferMap) Missing(from, to int64, max int) []int64 {
	var out []int64
	s := from
	if s < b.base {
		s = b.base // everything below the base counts as missing below
	}
	for h := from; h < s && len(out) < max; h++ {
		out = append(out, h)
	}
	for s <= to && len(out) < max {
		off := s - b.base
		w := int(off / 64)
		if w >= len(b.words) {
			// Past the stored words: everything is missing.
			for ; s <= to && len(out) < max; s++ {
				out = append(out, s)
			}
			return out
		}
		bit := uint(off % 64)
		if bit == 0 && b.words[w] == ^uint64(0) && s+63 <= to {
			s += 64 // fully-held word
			continue
		}
		if b.words[w]&(uint64(1)<<bit) == 0 {
			out = append(out, s)
		}
		s++
	}
	return out
}

// ConsecutiveFrom returns the length of the run of held chunks starting at
// seq — the "buffering level" covariate of the stable-node model (§III-B1a:
// number of consecutive blocks in the playback buffer starting from the
// current playback position).
func (b *BufferMap) ConsecutiveFrom(seq int64) int {
	n := 0
	for b.Has(seq + int64(n)) {
		n++
	}
	return n
}

// Clone returns a deep copy (what actually travels in a buffer-map exchange
// message).
func (b *BufferMap) Clone() *BufferMap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BufferMap{base: b.base, words: w, count: b.count}
}
