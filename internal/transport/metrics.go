package transport

import (
	"time"

	"dco/internal/telemetry"
	"dco/internal/wire"
)

// Metrics meters a transport: call counts and latency on the client side,
// frame and byte counts in both directions, and the paper's control-vs-data
// split (chunk-bearing frames are data; everything else — routing,
// stabilization, index maintenance — is the overlay's "extra overhead").
// A nil *Metrics is a valid no-op, so transports meter unconditionally.
type Metrics struct {
	Calls      *telemetry.Counter
	CallErrors *telemetry.Counter
	Dials      *telemetry.Counter
	PoolHits   *telemetry.Counter

	FramesOut *telemetry.Counter
	FramesIn  *telemetry.Counter
	BytesOut  *telemetry.Counter
	BytesIn   *telemetry.Counter

	// DataBytes* counts bytes of chunk-bearing frames (wire.KindChunkResp)
	// only; control bytes are the total minus these.
	DataBytesOut *telemetry.Counter
	DataBytesIn  *telemetry.Counter

	CallSeconds *telemetry.Histogram
}

// NewMetrics registers the transport metric set on reg (nil reg returns a
// no-op Metrics) and a derived `dco_transport_overhead_ratio` gauge:
// control bytes over data bytes across both directions — the live
// analogue of the paper's extra-overhead metric, as a byte ratio.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		Calls:        reg.Counter("dco_transport_calls_total"),
		CallErrors:   reg.Counter("dco_transport_call_errors_total"),
		Dials:        reg.Counter("dco_transport_dials_total"),
		PoolHits:     reg.Counter("dco_transport_pool_hits_total"),
		FramesOut:    reg.Counter("dco_transport_frames_out_total"),
		FramesIn:     reg.Counter("dco_transport_frames_in_total"),
		BytesOut:     reg.Counter("dco_transport_bytes_out_total"),
		BytesIn:      reg.Counter("dco_transport_bytes_in_total"),
		DataBytesOut: reg.Counter("dco_transport_data_bytes_out_total"),
		DataBytesIn:  reg.Counter("dco_transport_data_bytes_in_total"),
		CallSeconds:  reg.Histogram("dco_transport_call_seconds", telemetry.DefLatencyBuckets),
	}
	if reg != nil {
		reg.GaugeFunc("dco_transport_overhead_ratio", m.OverheadRatio)
	}
	return m
}

// OverheadRatio returns control bytes / data bytes over both directions
// (0 until any data byte moves).
func (m *Metrics) OverheadRatio() float64 {
	if m == nil {
		return 0
	}
	total := m.BytesOut.Value() + m.BytesIn.Value()
	data := m.DataBytesOut.Value() + m.DataBytesIn.Value()
	if data == 0 {
		return 0
	}
	return float64(total-data) / float64(data)
}

// noteOut records one outbound frame of n bytes carrying kind.
func (m *Metrics) noteOut(kind wire.Kind, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.FramesOut.Inc()
	m.BytesOut.Add(uint64(n))
	if kind == wire.KindChunkResp {
		m.DataBytesOut.Add(uint64(n))
	}
}

// noteIn records one inbound frame of n bytes carrying kind (KindInvalid
// when the frame failed to decode — still bytes on the wire).
func (m *Metrics) noteIn(kind wire.Kind, n int) {
	if m == nil || n <= 0 {
		return
	}
	m.FramesIn.Inc()
	m.BytesIn.Add(uint64(n))
	if kind == wire.KindChunkResp {
		m.DataBytesIn.Add(uint64(n))
	}
}

func (m *Metrics) notePoolHit() {
	if m != nil {
		m.PoolHits.Inc()
	}
}

func (m *Metrics) noteDial() {
	if m != nil {
		m.Dials.Inc()
	}
}

// noteCall records one client-side call outcome and its latency.
func (m *Metrics) noteCall(start time.Time, err error) {
	if m == nil {
		return
	}
	m.Calls.Inc()
	if err != nil {
		m.CallErrors.Inc()
	}
	m.CallSeconds.Observe(time.Since(start).Seconds())
}

func kindOf(msg wire.Message) wire.Kind {
	if msg == nil {
		return wire.KindInvalid
	}
	return msg.Kind()
}
