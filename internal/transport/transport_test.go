package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"dco/internal/wire"
)

func echoHandler(from string, req wire.Message) wire.Message {
	switch m := req.(type) {
	case *wire.Ping:
		return &wire.Pong{}
	case *wire.GetChunk:
		return &wire.ChunkResp{Seq: m.Seq, OK: true, Data: []byte{byte(m.Seq)}}
	case *wire.Error:
		return m // reflect errors for the error-propagation test
	default:
		return &wire.Ack{}
	}
}

func TestTCPPingPong(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Pong); !ok {
		t.Fatalf("got %T, want Pong", resp)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()

	for i := 0; i < 20; i++ {
		resp, err := cli.Call(srv.Addr(), &wire.GetChunk{Seq: int64(i)}, time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if cr := resp.(*wire.ChunkResp); cr.Seq != int64(i) {
			t.Fatalf("call %d answered with seq %d", i, cr.Seq)
		}
	}
	cli.mu.Lock()
	pooled := len(cli.pools[srv.Addr()])
	cli.mu.Unlock()
	if pooled == 0 {
		t.Fatal("no connection was pooled across sequential calls")
	}
	if pooled > maxPooledPerDest {
		t.Fatalf("pool overgrew: %d", pooled)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Call(srv.Addr(), &wire.GetChunk{Seq: int64(i)}, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if cr := resp.(*wire.ChunkResp); cr.Seq != int64(i) {
				errs <- &wire.Error{Msg: "response mismatch"}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPCallToDeadAddressFails(t *testing.T) {
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	if _, err := cli.Call("127.0.0.1:1", &wire.Ping{}, 300*time.Millisecond); err == nil {
		t.Fatal("call to a closed port succeeded")
	}
}

func TestTCPErrorResponsePropagates(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(func(string, wire.Message) wire.Message {
		return &wire.Error{Msg: "nope"}
	}))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	_, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second)
	if err == nil || err.Error() != "remote: nope" {
		t.Fatalf("want remote error, got %v", err)
	}
}

func TestTCPCloseUnblocksEverything(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		cli.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, 200*time.Millisecond); err == nil {
		t.Fatal("call on a closed transport succeeded")
	}
}

func TestTCPStaleConnRetry(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	addr := srv.Addr()
	if _, err := cli.Call(addr, &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the server-side connections without telling the client: the
	// pooled connection goes stale; the next call must transparently
	// re-dial... and when the whole server is gone, fail cleanly.
	srv.Close()
	if _, err := cli.Call(addr, &wire.Ping{}, 300*time.Millisecond); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

// TestTCPStaleConnRecoversAfterPeerRestart is the regression test for the
// stale-pool bug: a pooled connection whose peer restarted must be
// discarded and the call retried on a fresh dial — and the *fresh*
// connection (not the dead one) must be what lands back in the pool.
func TestTCPStaleConnRecoversAfterPeerRestart(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	addr := srv.Addr()
	if _, err := cli.Call(addr, &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Restart the peer on the same address: the client's pooled conn is
	// now stale, but the address is live again.
	srv.Close()
	srv2, err := ListenTCP(addr, HandlerFunc(echoHandler))
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	if _, err := cli.Call(addr, &wire.Ping{}, 2*time.Second); err != nil {
		t.Fatalf("call after peer restart: %v", err)
	}

	// The connection pooled by the recovered call must be the fresh one:
	// a direct exchange on it has to work. (The old bug pooled the closed
	// stale conn and leaked the fresh one.)
	cli.mu.Lock()
	pool := cli.pools[addr]
	cli.mu.Unlock()
	if len(pool) != 1 {
		t.Fatalf("pooled %d conns after recovery, want 1", len(pool))
	}
	if _, err := cli.exchange(pool[0], &wire.Ping{}, time.Now().Add(time.Second)); err != nil {
		t.Fatalf("pooled conn is dead (stale conn re-pooled): %v", err)
	}
}

// TestTCPOversizedFramePrefixRejected: a hostile length prefix must drop
// the connection without ballooning memory or killing the server.
func TestTCPOversizedFramePrefixRejected(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// 4 GiB - 1 declared length; far beyond wire.MaxFrame.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadMessage(conn); err == nil {
		t.Fatal("server answered an oversized frame instead of dropping it")
	}

	// The server survives and keeps serving well-formed peers.
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatalf("server dead after oversized frame: %v", err)
	}
}

// TestTCPConfigurableMaxFrameSize: a lowered bound rejects frames that
// the protocol default would allow.
func TestTCPConfigurableMaxFrameSize(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	srv.SetMaxFrameSize(1024)

	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	small := &wire.GetChunk{Seq: 1}
	if _, err := cli.Call(srv.Addr(), small, time.Second); err != nil {
		t.Fatalf("small frame rejected under 1KiB bound: %v", err)
	}
	big := &wire.ChunkResp{Seq: 1, OK: true, Data: make([]byte, 64*1024)}
	if _, err := cli.Call(srv.Addr(), big, time.Second); err == nil {
		t.Fatal("64KiB frame crossed a 1KiB server bound")
	}
}

func TestFabricBasics(t *testing.T) {
	f := NewFabric()
	a := f.Attach(HandlerFunc(echoHandler))
	b := f.Attach(HandlerFunc(echoHandler))
	if a.Addr() == b.Addr() {
		t.Fatal("duplicate fabric addresses")
	}
	resp, err := a.Call(b.Addr(), &wire.Ping{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Pong); !ok {
		t.Fatalf("got %T", resp)
	}
	if _, err := a.Call("mem://404", &wire.Ping{}, time.Second); err == nil {
		t.Fatal("call to unknown endpoint succeeded")
	}
	b.Close()
	if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err == nil {
		t.Fatal("call to closed endpoint succeeded")
	}
	a.Close()
	if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestFabricUsesWireEncoding(t *testing.T) {
	// A message that cannot encode itself within limits must fail through
	// the fabric the same way TCP would reject it.
	f := NewFabric()
	a := f.Attach(HandlerFunc(echoHandler))
	b := f.Attach(HandlerFunc(echoHandler))
	big := &wire.ChunkResp{Seq: 1, OK: true, Data: make([]byte, wire.MaxFrame)}
	if _, err := a.Call(b.Addr(), big, time.Second); err == nil {
		t.Fatal("oversized message crossed the fabric")
	}
}

func TestTCPObserverSeesCalls(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()

	type obs struct {
		addr string
		rtt  time.Duration
		err  error
	}
	var mu sync.Mutex
	var seen []obs
	cli.SetObserver(func(addr string, rtt time.Duration, err error) {
		mu.Lock()
		seen = append(seen, obs{addr, rtt, err})
		mu.Unlock()
	})

	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	// A call to a dead address must be observed with a non-nil error.
	dead, _ := net.Listen("tcp", "127.0.0.1:0")
	deadAddr := dead.Addr().String()
	dead.Close()
	cli.Call(deadAddr, &wire.Ping{}, 200*time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("observer saw %d calls, want 2", len(seen))
	}
	if seen[0].addr != srv.Addr() || seen[0].err != nil || seen[0].rtt <= 0 {
		t.Fatalf("good call observed as %+v", seen[0])
	}
	if seen[1].addr != deadAddr || seen[1].err == nil {
		t.Fatalf("dead call observed as %+v", seen[1])
	}
}

func TestMemObserverTreatsWireErrorAsAnswered(t *testing.T) {
	f := NewFabric()
	srv := f.Attach(HandlerFunc(func(from string, req wire.Message) wire.Message {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "nope"}
	}))
	defer srv.Close()
	cli := f.Attach(HandlerFunc(echoHandler))
	defer cli.Close()

	var mu sync.Mutex
	var errs []error
	cli.SetObserver(func(addr string, rtt time.Duration, err error) {
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	})

	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second); err == nil {
		t.Fatal("expected the wire.Error to surface to the caller")
	}
	dead := f.Attach(HandlerFunc(echoHandler))
	dead.Close()
	if _, err := cli.Call(dead.Addr(), &wire.Ping{}, time.Second); err == nil {
		t.Fatal("expected a dead endpoint to fail")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 2 {
		t.Fatalf("observer saw %d calls, want 2", len(errs))
	}
	if errs[0] != nil {
		t.Fatalf("wire.Error reply should observe as answered (nil), got %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("dead endpoint should observe as an error")
	}
}

func TestTCPSetIOTimeoutsClamps(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()

	srv.SetIOTimeouts(0, 0)
	if got := time.Duration(srv.readTimeout.Load()); got != DefaultReadTimeout {
		t.Fatalf("zero read timeout = %v, want default %v", got, DefaultReadTimeout)
	}
	if got := time.Duration(srv.writeTimeout.Load()); got != DefaultWriteTimeout {
		t.Fatalf("zero write timeout = %v, want default %v", got, DefaultWriteTimeout)
	}
	srv.SetIOTimeouts(time.Nanosecond, time.Hour)
	if got := time.Duration(srv.readTimeout.Load()); got != MinIOTimeout {
		t.Fatalf("tiny read timeout = %v, want floor %v", got, MinIOTimeout)
	}
	if got := time.Duration(srv.writeTimeout.Load()); got != MaxIOTimeout {
		t.Fatalf("huge write timeout = %v, want ceiling %v", got, MaxIOTimeout)
	}
}

func TestTCPReadTimeoutReclaimsIdleConn(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	srv.SetIOTimeouts(MinIOTimeout, 0)

	// Dial raw and send nothing: the serve goroutine must give up and
	// close the connection after the (shortened) read deadline.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to close the idle connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("idle connection lingered %v, want ~%v", elapsed, MinIOTimeout)
	}
}
