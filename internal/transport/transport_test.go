package transport

import (
	"sync"
	"testing"
	"time"

	"dco/internal/wire"
)

func echoHandler(from string, req wire.Message) wire.Message {
	switch m := req.(type) {
	case *wire.Ping:
		return &wire.Pong{}
	case *wire.GetChunk:
		return &wire.ChunkResp{Seq: m.Seq, OK: true, Data: []byte{byte(m.Seq)}}
	case *wire.Error:
		return m // reflect errors for the error-propagation test
	default:
		return &wire.Ack{}
	}
}

func TestTCPPingPong(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Pong); !ok {
		t.Fatalf("got %T, want Pong", resp)
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()

	for i := 0; i < 20; i++ {
		resp, err := cli.Call(srv.Addr(), &wire.GetChunk{Seq: int64(i)}, time.Second)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if cr := resp.(*wire.ChunkResp); cr.Seq != int64(i) {
			t.Fatalf("call %d answered with seq %d", i, cr.Seq)
		}
	}
	cli.mu.Lock()
	pooled := len(cli.pools[srv.Addr()])
	cli.mu.Unlock()
	if pooled == 0 {
		t.Fatal("no connection was pooled across sequential calls")
	}
	if pooled > maxPooledPerDest {
		t.Fatalf("pool overgrew: %d", pooled)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Call(srv.Addr(), &wire.GetChunk{Seq: int64(i)}, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if cr := resp.(*wire.ChunkResp); cr.Seq != int64(i) {
				errs <- &wire.Error{Msg: "response mismatch"}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPCallToDeadAddressFails(t *testing.T) {
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	if _, err := cli.Call("127.0.0.1:1", &wire.Ping{}, 300*time.Millisecond); err == nil {
		t.Fatal("call to a closed port succeeded")
	}
}

func TestTCPErrorResponsePropagates(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(func(string, wire.Message) wire.Message {
		return &wire.Error{Msg: "nope"}
	}))
	defer srv.Close()
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	_, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second)
	if err == nil || err.Error() != "remote: nope" {
		t.Fatalf("want remote error, got %v", err)
	}
}

func TestTCPCloseUnblocksEverything(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		cli.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
	if _, err := cli.Call(srv.Addr(), &wire.Ping{}, 200*time.Millisecond); err == nil {
		t.Fatal("call on a closed transport succeeded")
	}
}

func TestTCPStaleConnRetry(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	cli, _ := ListenTCP("127.0.0.1:0", HandlerFunc(echoHandler))
	defer cli.Close()
	addr := srv.Addr()
	if _, err := cli.Call(addr, &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	// Kill the server-side connections without telling the client: the
	// pooled connection goes stale; the next call must transparently
	// re-dial... and when the whole server is gone, fail cleanly.
	srv.Close()
	if _, err := cli.Call(addr, &wire.Ping{}, 300*time.Millisecond); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestFabricBasics(t *testing.T) {
	f := NewFabric()
	a := f.Attach(HandlerFunc(echoHandler))
	b := f.Attach(HandlerFunc(echoHandler))
	if a.Addr() == b.Addr() {
		t.Fatal("duplicate fabric addresses")
	}
	resp, err := a.Call(b.Addr(), &wire.Ping{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(*wire.Pong); !ok {
		t.Fatalf("got %T", resp)
	}
	if _, err := a.Call("mem://404", &wire.Ping{}, time.Second); err == nil {
		t.Fatal("call to unknown endpoint succeeded")
	}
	b.Close()
	if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err == nil {
		t.Fatal("call to closed endpoint succeeded")
	}
	a.Close()
	if _, err := a.Call(b.Addr(), &wire.Ping{}, time.Second); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestFabricUsesWireEncoding(t *testing.T) {
	// A message that cannot encode itself within limits must fail through
	// the fabric the same way TCP would reject it.
	f := NewFabric()
	a := f.Attach(HandlerFunc(echoHandler))
	b := f.Attach(HandlerFunc(echoHandler))
	big := &wire.ChunkResp{Seq: 1, OK: true, Data: make([]byte, wire.MaxFrame)}
	if _, err := a.Call(b.Addr(), big, time.Second); err == nil {
		t.Fatal("oversized message crossed the fabric")
	}
}
