// Package transport moves wire messages between live DCO nodes. It offers
// two implementations behind one interface: TCP (production) and an
// in-memory loopback (tests, single-process demos). Both use simple
// request/response semantics: every sent request gets exactly one reply.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dco/internal/wire"
)

// Handler serves one request and returns the reply. Implementations must
// be safe for concurrent calls.
type Handler interface {
	Serve(from string, req wire.Message) wire.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from string, req wire.Message) wire.Message

// Serve calls f.
func (f HandlerFunc) Serve(from string, req wire.Message) wire.Message { return f(from, req) }

// Transport sends requests and hosts a handler.
type Transport interface {
	// Call sends req to addr and waits for the reply (or timeout).
	Call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error)
	// Addr is this endpoint's dialable address.
	Addr() string
	// Close stops serving and releases resources.
	Close() error
}

// Observer receives one observation per outbound call attempt: the
// destination, the attempt's round-trip wall time, and its error (nil on
// success). This is the seam peer-health scoring hangs off — unlike
// Metrics it carries the address, so per-peer latency EWMAs and suspicion
// scores can be maintained. Implementations must be fast and non-blocking;
// they run on the calling goroutine.
type Observer func(addr string, rtt time.Duration, err error)

// ObserverSetter is implemented by transports that can host an Observer.
// All transports in this package (and the fault-injecting decorator in
// internal/faulty) implement it.
type ObserverSetter interface {
	SetObserver(Observer)
}

// ErrClosed reports use of a closed transport.
var ErrClosed = errors.New("transport: closed")

// Server-side I/O timeout defaults (see SetIOTimeouts): the idle bound a
// connection may sit between exchanges before its goroutine is reclaimed,
// and the bound on writing one reply.
const (
	DefaultReadTimeout  = 2 * time.Minute
	DefaultWriteTimeout = 30 * time.Second

	// Floors and ceilings for SetIOTimeouts: a timeout below the floor
	// would cut off legitimate slow exchanges mid-frame; one above the
	// ceiling lets dead peers pin goroutines for too long to matter.
	MinIOTimeout = 250 * time.Millisecond
	MaxIOTimeout = 10 * time.Minute
)

// clampIOTimeout applies the floor/ceiling rule shared by both transports:
// zero (or negative) restores def, anything else clamps into
// [MinIOTimeout, MaxIOTimeout].
func clampIOTimeout(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	if d < MinIOTimeout {
		return MinIOTimeout
	}
	if d > MaxIOTimeout {
		return MaxIOTimeout
	}
	return d
}

// ---------------------------------------------------------------------------
// TCP transport: one short-lived framed exchange per call, with a small
// connection pool per destination to amortize dials.

// TCP is the production transport.
type TCP struct {
	ln      net.Listener
	handler Handler

	// maxFrame bounds the length prefix accepted from peers (and in
	// replies), so one malformed or hostile frame header cannot force a
	// giant allocation. Defaults to wire.MaxFrame.
	maxFrame atomic.Uint32

	// metrics, when set, meters every frame and call (telemetry).
	metrics atomic.Pointer[Metrics]

	// observer, when set, receives one (addr, rtt, err) per outbound call
	// attempt (health scoring).
	observer atomic.Pointer[Observer]

	// Server-side I/O deadlines (ns): the per-exchange read deadline that
	// keeps dead peers from pinning serve goroutines, and the reply write
	// deadline. Defaults DefaultReadTimeout / DefaultWriteTimeout;
	// adjustable via SetIOTimeouts within [MinIOTimeout, MaxIOTimeout].
	readTimeout  atomic.Int64
	writeTimeout atomic.Int64

	mu     sync.Mutex
	pools  map[string][]net.Conn
	active map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// maxPooledPerDest bounds idle connections kept per destination.
const maxPooledPerDest = 4

// ListenTCP starts a TCP transport on addr (e.g. "127.0.0.1:0") serving h.
func ListenTCP(addr string, h Handler) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCP{ln: ln, handler: h, pools: make(map[string][]net.Conn), active: make(map[net.Conn]bool)}
	t.maxFrame.Store(wire.MaxFrame)
	t.readTimeout.Store(int64(DefaultReadTimeout))
	t.writeTimeout.Store(int64(DefaultWriteTimeout))
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// SetMaxFrameSize lowers the largest frame (type byte + payload) this
// transport accepts on reads. Values of 0 or above wire.MaxFrame clamp
// to wire.MaxFrame. Safe to call concurrently with traffic.
func (t *TCP) SetMaxFrameSize(n uint32) {
	if n == 0 || n > wire.MaxFrame {
		n = wire.MaxFrame
	}
	t.maxFrame.Store(n)
}

// SetMetrics attaches (or detaches, with nil) a metric set. Safe to call
// concurrently with traffic; frames in flight during the switch may be
// attributed to either set.
func (t *TCP) SetMetrics(m *Metrics) { t.metrics.Store(m) }

// SetObserver attaches (or detaches, with nil) a per-call observer. Safe
// to call concurrently with traffic.
func (t *TCP) SetObserver(o Observer) {
	if o == nil {
		t.observer.Store(nil)
		return
	}
	t.observer.Store(&o)
}

// SetIOTimeouts adjusts the server-side per-exchange read deadline and
// the reply write deadline. Zero restores a default; nonzero values clamp
// into [MinIOTimeout, MaxIOTimeout]. Safe to call concurrently with
// traffic; exchanges in flight keep their already-armed deadlines.
func (t *TCP) SetIOTimeouts(read, write time.Duration) {
	t.readTimeout.Store(int64(clampIOTimeout(read, DefaultReadTimeout)))
	t.writeTimeout.Store(int64(clampIOTimeout(write, DefaultWriteTimeout)))
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.active[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.active, conn)
		t.mu.Unlock()
	}()
	remote := conn.RemoteAddr().String()
	for {
		// A generous per-exchange deadline keeps dead peers from pinning
		// goroutines forever (configurable via SetIOTimeouts).
		_ = conn.SetReadDeadline(time.Now().Add(time.Duration(t.readTimeout.Load())))
		req, nIn, err := wire.ReadMessageLimitN(conn, t.maxFrame.Load())
		m := t.metrics.Load()
		if err != nil {
			return
		}
		m.noteIn(req.Kind(), nIn)
		resp := t.handler.Serve(remote, req)
		if resp == nil {
			resp = &wire.Ack{}
		}
		_ = conn.SetWriteDeadline(time.Now().Add(time.Duration(t.writeTimeout.Load())))
		nOut, err := wire.WriteMessageN(conn, resp)
		m.noteOut(resp.Kind(), nOut)
		if err != nil {
			return
		}
	}
}

// Call dials (or reuses) a connection to addr, performs one framed
// request/response exchange, and returns the reply.
func (t *TCP) Call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	start := time.Now()
	deadline := start.Add(timeout)

	conn, pooled, err := t.getConn(addr, timeout)
	if err != nil {
		t.metrics.Load().noteCall(start, err)
		t.observe(addr, start, err)
		return nil, err
	}
	resp, err := t.exchange(conn, req, deadline)
	if err != nil && pooled {
		// The pooled connection went stale (its peer restarted or closed
		// it); discard it and retry once on a fresh dial. Assign — do not
		// shadow — conn, so the fresh connection is the one pooled below.
		conn.Close()
		fresh, _, err2 := t.dial(addr, time.Until(deadline))
		if err2 != nil {
			t.observe(addr, start, err2)
			return nil, err2
		}
		conn = fresh
		resp, err = t.exchange(conn, req, deadline)
	}
	t.metrics.Load().noteCall(start, err)
	t.observe(addr, start, err)
	if err != nil {
		conn.Close()
		return nil, err
	}
	t.putConn(addr, conn)
	if e, ok := resp.(*wire.Error); ok {
		return nil, e
	}
	return resp, nil
}

// observe feeds the attached Observer, if any.
func (t *TCP) observe(addr string, start time.Time, err error) {
	if o := t.observer.Load(); o != nil {
		(*o)(addr, time.Since(start), err)
	}
}

func (t *TCP) exchange(conn net.Conn, req wire.Message, deadline time.Time) (wire.Message, error) {
	_ = conn.SetDeadline(deadline)
	m := t.metrics.Load()
	nOut, err := wire.WriteMessageN(conn, req)
	m.noteOut(req.Kind(), nOut)
	if err != nil {
		return nil, err
	}
	resp, nIn, err := wire.ReadMessageLimitN(conn, t.maxFrame.Load())
	if err != nil {
		return nil, err
	}
	m.noteIn(resp.Kind(), nIn)
	return resp, nil
}

func (t *TCP) getConn(addr string, timeout time.Duration) (net.Conn, bool, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, ErrClosed
	}
	pool := t.pools[addr]
	if n := len(pool); n > 0 {
		conn := pool[n-1]
		t.pools[addr] = pool[:n-1]
		t.mu.Unlock()
		t.metrics.Load().notePoolHit()
		return conn, true, nil
	}
	t.mu.Unlock()
	return t.dial(addr, timeout)
}

func (t *TCP) dial(addr string, timeout time.Duration) (net.Conn, bool, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, false, err
	}
	t.metrics.Load().noteDial()
	return conn, false, nil
}

func (t *TCP) putConn(addr string, conn net.Conn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.pools[addr]) >= maxPooledPerDest {
		conn.Close()
		return
	}
	t.pools[addr] = append(t.pools[addr], conn)
}

// Close shuts the listener and every pooled connection.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, pool := range t.pools {
		for _, c := range pool {
			c.Close()
		}
	}
	t.pools = nil
	for c := range t.active {
		c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// ---------------------------------------------------------------------------
// In-memory transport: a process-local fabric keyed by synthetic addresses.

// Fabric is a registry connecting in-memory endpoints. The zero value is
// not usable; create one with NewFabric.
type Fabric struct {
	mu    sync.Mutex
	nodes map[string]*Mem
	next  int

	// Latency, if set, is added to every call (demo realism).
	Latency time.Duration
}

// NewFabric returns an empty in-memory network.
func NewFabric() *Fabric { return &Fabric{nodes: make(map[string]*Mem)} }

// Mem is one endpoint on a Fabric.
type Mem struct {
	fabric   *Fabric
	addr     string
	handler  Handler
	metrics  atomic.Pointer[Metrics]
	observer atomic.Pointer[Observer]
	closed   bool
	mu       sync.Mutex
}

// SetMetrics attaches (or detaches, with nil) a metric set, mirroring
// (*TCP).SetMetrics so tests meter the same way production does.
func (m *Mem) SetMetrics(ms *Metrics) { m.metrics.Store(ms) }

// SetObserver attaches (or detaches, with nil) a per-call observer,
// mirroring (*TCP).SetObserver.
func (m *Mem) SetObserver(o Observer) {
	if o == nil {
		m.observer.Store(nil)
		return
	}
	m.observer.Store(&o)
}

// Attach registers a new endpoint serving h.
func (f *Fabric) Attach(h Handler) *Mem {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.next++
	m := &Mem{fabric: f, addr: fmt.Sprintf("mem://%d", f.next), handler: h}
	f.nodes[m.addr] = m
	return m
}

// Addr returns the endpoint's synthetic address.
func (m *Mem) Addr() string { return m.addr }

// Call delivers req to the endpoint registered at addr.
func (m *Mem) Call(addr string, req wire.Message, timeout time.Duration) (wire.Message, error) {
	start := time.Now()
	mm := m.metrics.Load()
	resp, err := m.call(addr, req, mm)
	mm.noteCall(start, err)
	m.observe(addr, start, err)
	return resp, err
}

// observe feeds the attached Observer, if any. An application-level
// *wire.Error counts as an answered call (the TCP observer never sees
// those as transport errors either).
func (m *Mem) observe(addr string, start time.Time, err error) {
	o := m.observer.Load()
	if o == nil {
		return
	}
	var we *wire.Error
	if errors.As(err, &we) {
		err = nil
	}
	(*o)(addr, time.Since(start), err)
}

func (m *Mem) call(addr string, req wire.Message, mm *Metrics) (wire.Message, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.mu.Unlock()

	f := m.fabric
	f.mu.Lock()
	dst := f.nodes[addr]
	lat := f.Latency
	f.mu.Unlock()
	if dst == nil {
		return nil, fmt.Errorf("transport: no endpoint at %s", addr)
	}
	dst.mu.Lock()
	closed := dst.closed
	h := dst.handler
	dst.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: endpoint %s is down", addr)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	// Round-trip through the wire codec so the in-memory transport
	// exercises exactly the bytes TCP would carry — and meters them on
	// both endpoints, exactly as two TCP peers would.
	dm := dst.metrics.Load()
	req2, nReq, err := roundTrip(req)
	if err != nil {
		return nil, err
	}
	mm.noteOut(req2.Kind(), nReq)
	dm.noteIn(req2.Kind(), nReq)
	resp := h.Serve(m.addr, req2)
	if resp == nil {
		resp = &wire.Ack{}
	}
	resp2, nResp, err := roundTrip(resp)
	if err != nil {
		return nil, err
	}
	dm.noteOut(resp2.Kind(), nResp)
	mm.noteIn(resp2.Kind(), nResp)
	if e, ok := resp2.(*wire.Error); ok {
		return nil, e
	}
	return resp2, nil
}

// Close detaches the endpoint; subsequent calls to it fail like a dead TCP
// peer.
func (m *Mem) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

func roundTrip(msg wire.Message) (wire.Message, int, error) {
	var buf memBuffer
	n, err := wire.WriteMessageN(&buf, msg)
	if err != nil {
		return nil, 0, err
	}
	out, err := wire.ReadMessage(&buf)
	return out, n, err
}

type memBuffer struct{ b []byte }

func (m *memBuffer) Write(p []byte) (int, error) {
	m.b = append(m.b, p...)
	return len(p), nil
}

func (m *memBuffer) Read(p []byte) (int, error) {
	if len(m.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, m.b)
	m.b = m.b[n:]
	return n, nil
}

var (
	_ Transport = (*TCP)(nil)
	_ Transport = (*Mem)(nil)
)
