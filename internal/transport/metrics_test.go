package transport

import (
	"testing"
	"time"

	"dco/internal/telemetry"
	"dco/internal/wire"
)

// echoChunk serves every GetChunk with a fixed payload and acks the rest.
type echoChunk struct{ payload []byte }

func (e echoChunk) Serve(_ string, req wire.Message) wire.Message {
	if g, ok := req.(*wire.GetChunk); ok {
		return &wire.ChunkResp{Seq: g.Seq, OK: true, Data: e.payload}
	}
	return &wire.Ack{}
}

func TestMemMetricsCountBothEndpoints(t *testing.T) {
	f := NewFabric()
	server := f.Attach(echoChunk{payload: make([]byte, 1024)})
	client := f.Attach(echoChunk{})

	reg := telemetry.NewRegistry()
	cm := NewMetrics(reg)
	sreg := telemetry.NewRegistry()
	sm := NewMetrics(sreg)
	client.SetMetrics(cm)
	server.SetMetrics(sm)

	if _, err := client.Call(server.Addr(), &wire.Ping{}, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Call(server.Addr(), &wire.GetChunk{Seq: 1}, time.Second); err != nil {
		t.Fatal(err)
	}

	if got := cm.Calls.Value(); got != 2 {
		t.Fatalf("client calls = %d, want 2", got)
	}
	if cm.CallErrors.Value() != 0 {
		t.Fatalf("call errors = %d, want 0", cm.CallErrors.Value())
	}
	if cm.FramesOut.Value() != 2 || cm.FramesIn.Value() != 2 {
		t.Fatalf("client frames out/in = %d/%d, want 2/2", cm.FramesOut.Value(), cm.FramesIn.Value())
	}
	// The chunk reply is the only data frame; everything else is control.
	if cm.DataBytesIn.Value() < 1024 {
		t.Fatalf("client data bytes in = %d, want >= chunk payload", cm.DataBytesIn.Value())
	}
	if cm.DataBytesOut.Value() != 0 {
		t.Fatalf("client data bytes out = %d, want 0", cm.DataBytesOut.Value())
	}
	if cm.BytesIn.Value() <= cm.DataBytesIn.Value() {
		t.Fatalf("total bytes in (%d) must exceed data bytes in (%d): the Pong is control",
			cm.BytesIn.Value(), cm.DataBytesIn.Value())
	}
	// The server mirrors the client: its DataBytesOut is the chunk frame.
	if sm.DataBytesOut.Value() != cm.DataBytesIn.Value() {
		t.Fatalf("server data out %d != client data in %d", sm.DataBytesOut.Value(), cm.DataBytesIn.Value())
	}
	if r := cm.OverheadRatio(); r <= 0 {
		t.Fatalf("overhead ratio = %g, want > 0 once data and control both moved", r)
	}
	if cm.CallSeconds.Count() != 2 {
		t.Fatalf("call latency observations = %d, want 2", cm.CallSeconds.Count())
	}
}

func TestTCPMetricsCountCalls(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoChunk{payload: make([]byte, 256)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenTCP("127.0.0.1:0", echoChunk{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	cli.SetMetrics(m)

	for i := 0; i < 3; i++ {
		if _, err := cli.Call(srv.Addr(), &wire.GetChunk{Seq: int64(i)}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if m.Calls.Value() != 3 {
		t.Fatalf("calls = %d, want 3", m.Calls.Value())
	}
	if m.Dials.Value() != 1 || m.PoolHits.Value() != 2 {
		t.Fatalf("dials=%d poolHits=%d, want 1 dial then 2 pool hits", m.Dials.Value(), m.PoolHits.Value())
	}
	if m.DataBytesIn.Value() < 3*256 {
		t.Fatalf("data bytes in = %d, want >= 768", m.DataBytesIn.Value())
	}
	// Errors are counted too.
	if _, err := cli.Call("127.0.0.1:1", &wire.Ping{}, 200*time.Millisecond); err == nil {
		t.Fatal("call to a dead port must fail")
	}
	if m.CallErrors.Value() != 1 {
		t.Fatalf("call errors = %d, want 1", m.CallErrors.Value())
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.noteOut(wire.KindPing, 10)
	m.noteIn(wire.KindChunkResp, 10)
	m.notePoolHit()
	m.noteDial()
	m.noteCall(time.Now(), nil)
	if m.OverheadRatio() != 0 {
		t.Fatal("nil metrics overhead ratio must be 0")
	}
}

// benchTransportCall measures one TCP round trip with telemetry attached or
// detached; the satellite requirement is <2% delta between the two.
func benchTransportCall(b *testing.B, instrument bool) {
	srv, err := ListenTCP("127.0.0.1:0", echoChunk{payload: make([]byte, 4096)})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := ListenTCP("127.0.0.1:0", echoChunk{})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	if instrument {
		cli.SetMetrics(NewMetrics(telemetry.NewRegistry()))
		srv.SetMetrics(NewMetrics(telemetry.NewRegistry()))
	}
	req := &wire.GetChunk{Seq: 1}
	if _, err := cli.Call(srv.Addr(), req, time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(srv.Addr(), req, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCallTelemetryOff(b *testing.B) { benchTransportCall(b, false) }
func BenchmarkTCPCallTelemetryOn(b *testing.B)  { benchTransportCall(b, true) }
