package sim

import (
	"testing"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(3*time.Second, func() { got = append(got, 3) })
	k.At(1*time.Second, func() { got = append(got, 1) })
	k.At(2*time.Second, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Second, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		k.At(500*time.Millisecond, func() {})
	})
	k.Run()
}

func TestAfterClampsNegative(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(-5*time.Second, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("negative delay should clamp to now and fire")
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	ev := k.At(time.Second, func() { fired = true })
	ev.Cancel()
	ev.Cancel() // double-cancel is safe
	k.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			k.After(time.Second, chain)
		}
	}
	k.After(time.Second, chain)
	k.Run()
	if count != 5 {
		t.Fatalf("chained events: got %d, want 5", count)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", k.Now())
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tk *Ticker
	tk = k.Every(time.Second, time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	k.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerStopInsideCallbackPreventsRearm(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tk *Ticker
	tk = k.Every(time.Second, time.Second, func() {
		count++
		tk.Stop()
	})
	k.SetHorizon(10 * time.Second)
	k.Run()
	if count != 1 {
		t.Fatalf("stopped ticker kept firing: %d", count)
	}
}

func TestHorizonStopsRun(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(time.Second, func() { fired++ })
	k.At(time.Minute, func() { fired++ })
	k.SetHorizon(30 * time.Second)
	end := k.Run()
	if fired != 1 {
		t.Fatalf("events fired = %d, want 1", fired)
	}
	if end != 30*time.Second {
		t.Fatalf("end = %v, want horizon", end)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(1*time.Second, func() { got = append(got, 1) })
	k.At(5*time.Second, func() { got = append(got, 5) })
	k.RunUntil(2 * time.Second)
	if len(got) != 1 || k.Now() != 2*time.Second {
		t.Fatalf("RunUntil: got %v now %v", got, k.Now())
	}
	k.Run()
	if len(got) != 2 {
		t.Fatalf("remaining events lost: %v", got)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(time.Second, func() { fired++; k.Stop() })
	k.At(2*time.Second, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt the run: fired=%d", fired)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []time.Duration {
		k := NewKernel(99)
		var out []time.Duration
		var step func()
		n := 0
		step = func() {
			out = append(out, k.Now())
			n++
			if n < 50 {
				k.After(k.Exponential(time.Second), step)
			}
		}
		k.After(0, step)
		k.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatal("different run lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPendingAndEventAt(t *testing.T) {
	k := NewKernel(1)
	e := k.At(3*time.Second, func() {})
	k.At(5*time.Second, func() {})
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	if e.At() != 3*time.Second {
		t.Fatalf("event time = %v", e.At())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Fatalf("pending after run = %d", k.Pending())
	}
	if k.Fired() != 2 {
		t.Fatalf("fired = %d", k.Fired())
	}
}

func TestBadTickerPeriodPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero ticker period must panic")
		}
	}()
	k.Every(0, 0, func() {})
}
