package sim

import (
	"math"
	"time"
)

// Exponential draws an exponentially distributed duration with the given
// mean, using the kernel's deterministic RNG. The paper's churn model
// (§IV-D) uses exponential node lifetimes and join intervals.
func (k *Kernel) Exponential(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	u := k.rng.Float64()
	for u == 0 { // avoid log(0)
		u = k.rng.Float64()
	}
	d := time.Duration(-math.Log(u) * float64(mean))
	if d < 0 {
		d = 0
	}
	return d
}

// Uniform draws a duration uniformly from [lo, hi).
func (k *Kernel) Uniform(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(k.rng.Int63n(int64(hi-lo)))
}

// Jitter returns d perturbed by a multiplicative factor drawn uniformly from
// [1-frac, 1+frac]. frac outside [0,1] is clamped.
func (k *Kernel) Jitter(d time.Duration, frac float64) time.Duration {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	f := 1 + frac*(2*k.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}
