package sim

import (
	"math"
	"testing"
	"time"
)

func TestExponentialMean(t *testing.T) {
	k := NewKernel(5)
	mean := 60 * time.Second
	var sum time.Duration
	n := 20000
	for i := 0; i < n; i++ {
		sum += k.Exponential(mean)
	}
	got := float64(sum) / float64(n)
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("empirical mean %v deviates from %v by more than 5%%", time.Duration(got), mean)
	}
}

func TestExponentialNonNegativeAndZeroMean(t *testing.T) {
	k := NewKernel(5)
	if k.Exponential(0) != 0 || k.Exponential(-time.Second) != 0 {
		t.Fatal("non-positive mean must yield 0")
	}
	for i := 0; i < 1000; i++ {
		if k.Exponential(time.Millisecond) < 0 {
			t.Fatal("negative sample")
		}
	}
}

func TestUniformBounds(t *testing.T) {
	k := NewKernel(5)
	lo, hi := 2*time.Second, 5*time.Second
	for i := 0; i < 1000; i++ {
		d := k.Uniform(lo, hi)
		if d < lo || d >= hi {
			t.Fatalf("Uniform(%v,%v) = %v out of range", lo, hi, d)
		}
	}
	if k.Uniform(hi, lo) != hi {
		t.Fatal("inverted bounds should return lo")
	}
}

func TestJitterBounds(t *testing.T) {
	k := NewKernel(5)
	d := 10 * time.Second
	for i := 0; i < 1000; i++ {
		j := k.Jitter(d, 0.2)
		if j < 8*time.Second || j > 12*time.Second {
			t.Fatalf("Jitter out of ±20%% band: %v", j)
		}
	}
	if k.Jitter(d, 0) != d {
		t.Fatal("zero-fraction jitter must be identity")
	}
	// Out-of-range fractions clamp rather than explode.
	if j := k.Jitter(d, 5); j < 0 || j > 2*d {
		t.Fatalf("clamped jitter out of [0,2d]: %v", j)
	}
}

func TestExponentialTail(t *testing.T) {
	// ~37% of samples should exceed the mean (memoryless property check).
	k := NewKernel(11)
	mean := time.Second
	over := 0
	n := 20000
	for i := 0; i < n; i++ {
		if k.Exponential(mean) > mean {
			over++
		}
	}
	frac := float64(over) / float64(n)
	if math.Abs(frac-1/math.E) > 0.02 {
		t.Fatalf("P(X>mean) = %.3f, want ≈ 1/e", frac)
	}
}
