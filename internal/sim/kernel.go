// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and a priority queue of scheduled events.
// All simulated components schedule closures at absolute or relative virtual
// times; Run drains the queue in time order. Two events at the same instant
// fire in scheduling order (a monotonically increasing sequence number breaks
// ties), so a simulation with a fixed seed is fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled closure. Fire runs at the event's virtual time.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or canceled
	dead  bool
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() time.Duration { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Kernel is the simulation engine. It is not safe for concurrent use; a
// simulation runs on a single goroutine by design.
type Kernel struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	limit   time.Duration // 0 = no horizon
}

// NewKernel returns a kernel whose randomness is derived entirely from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the kernel's deterministic random source. All simulated
// randomness must come from here so a seed fixes the whole run.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn at absolute virtual time t. Scheduling in the past (t <
// now) panics: it would silently reorder causality.
func (k *Kernel) At(t time.Duration, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, k.now))
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn after delay d (d < 0 is clamped to 0).
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn at now+d, then every period thereafter, until the
// returned Ticker is stopped or the simulation ends.
func (k *Kernel) Every(d, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.ev = k.After(d, t.tick)
	return t
}

// Ticker re-arms a periodic event. Stop cancels future ticks.
type Ticker struct {
	k       *Kernel
	period  time.Duration
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.ev = t.k.After(t.period, t.tick)
	}
}

// Stop cancels the ticker. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Stop halts Run after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// SetHorizon makes Run stop once virtual time would pass t. Events scheduled
// exactly at t still fire.
func (k *Kernel) SetHorizon(t time.Duration) { k.limit = t }

// Run executes events in time order until the queue empties, Stop is called,
// or the horizon passes. It returns the final virtual time.
func (k *Kernel) Run() time.Duration {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(*Event)
		if e.dead {
			continue
		}
		if k.limit > 0 && e.at > k.limit {
			k.now = k.limit
			return k.now
		}
		k.now = e.at
		k.fired++
		e.fn()
	}
	return k.now
}

// RunUntil executes events up to and including virtual time t, leaving later
// events queued, and advances the clock to exactly t.
func (k *Kernel) RunUntil(t time.Duration) {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		e := k.queue[0]
		if e.at > t {
			break
		}
		heap.Pop(&k.queue)
		if e.dead {
			continue
		}
		k.now = e.at
		k.fired++
		e.fn()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending reports the number of queued (possibly canceled) events.
func (k *Kernel) Pending() int { return len(k.queue) }
