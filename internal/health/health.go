// Package health scores peer liveness on a spectrum instead of the
// breaker's binary verdict. The circuit breaker (internal/retry) trips
// only on conclusive transport errors — a peer that is alive yet degraded
// (answering slowly, stalling mid-frame, reachable in only one direction)
// never opens a circuit, yet it can pin chunk fetches for whole call
// timeouts. The Tracker keeps, per address, a latency EWMA with a running
// deviation estimate and a phi-accrual-style suspicion score: errors and
// abnormally slow responses raise it, timely responses and the passage of
// time decay it back toward neutral. Consumers use the score to
// *deprioritize* — never to purge: purging stays the breaker's job, on
// conclusive evidence only.
//
// The tracker is fed from transport observer hooks (one observation per
// outbound call attempt, injected faults included), so it sees exactly
// the latency a caller experienced — not the latency the peer intended.
package health

import (
	"math"
	"sync"
	"time"
)

// Config parameterizes a Tracker. The zero value derives all defaults.
type Config struct {
	// HalfLife is the decay half-life of the suspicion score: with no new
	// evidence, a peer's suspicion halves every HalfLife (aging back to
	// neutral so a recovered peer regains traffic). 0 derives 5s.
	HalfLife time.Duration

	// SuspectThreshold is the suspicion score at or above which a peer
	// counts as suspected (Suspected returns true and selection
	// deprioritizes it). One conclusive error contributes errBump (1.0);
	// the default threshold of 3 therefore needs a short burst of bad
	// evidence, not a single hiccup. 0 derives 3.
	SuspectThreshold float64

	// MaxPeers bounds the per-address table; beyond it the least recently
	// observed peer is evicted. 0 derives 1024.
	MaxPeers int

	// IntegrityHalfLife is the decay half-life of the integrity demerit
	// score. Deliberately much slower than suspicion's — integrity demerits
	// decay only with time, never on good responses, so a selective
	// poisoner cannot wash its record out by serving clean chunks in
	// between. 0 derives 30s.
	IntegrityHalfLife time.Duration

	// QuarantineThreshold is the integrity score at or above which a peer
	// is quarantined: excluded from provider selection outright (unlike
	// suspicion, which only deprioritizes). Each verification failure
	// contributes one unit. 0 derives 3; negative disables quarantine.
	QuarantineThreshold float64

	// QuarantineTTL is how long a quarantine lasts. On expiry the peer
	// starts from a clean integrity slate (repeat offenses re-accumulate).
	// 0 derives 30s.
	QuarantineTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.HalfLife <= 0 {
		c.HalfLife = 5 * time.Second
	}
	if c.SuspectThreshold <= 0 {
		c.SuspectThreshold = 3
	}
	if c.MaxPeers <= 0 {
		c.MaxPeers = 1024
	}
	if c.IntegrityHalfLife <= 0 {
		c.IntegrityHalfLife = 30 * time.Second
	}
	if c.QuarantineThreshold == 0 {
		c.QuarantineThreshold = 3
	}
	if c.QuarantineTTL <= 0 {
		c.QuarantineTTL = 30 * time.Second
	}
	return c
}

// Evidence weights. An error is worth one full unit of suspicion; a slow
// response contributes up to slowBumpMax depending on how many deviations
// past the EWMA it landed; a timely response multiplies suspicion by
// okDecay on top of the time decay (good news travels fast).
const (
	errBump     = 1.0
	slowBumpMax = 0.5
	okDecay     = 0.7

	// ewmaAlpha is the per-observation smoothing factor for the latency
	// mean and deviation (~ the last 10 observations dominate).
	ewmaAlpha = 0.2

	// slowSigma is how many deviations past the EWMA a response must land
	// to count as slow evidence at all.
	slowSigma = 4.0
)

// peer is one address's rolling state. Latencies are kept in seconds.
type peer struct {
	ewma    float64 // latency EWMA
	dev     float64 // EWMA of |sample - ewma| (mean absolute deviation)
	susp    float64 // suspicion score at the time of `at`
	samples uint64
	at      time.Time // last observation (decay reference + LRU eviction)

	integ     float64   // integrity demerit score at the time of integAt
	integAt   time.Time // integrity decay reference
	quarUntil time.Time // quarantined while now < quarUntil
}

// Tracker scores peers by address. All methods are safe for concurrent
// use; a nil *Tracker is a valid no-op that reports every peer neutral.
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	peers map[string]*peer

	// now is a test seam.
	now func() time.Time
}

// NewTracker builds a tracker with cfg (zero-value cfg derives defaults).
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults(), peers: make(map[string]*peer), now: time.Now}
}

// decayedLocked returns p's suspicion decayed to t.
func (p *peer) decayedLocked(t time.Time, halfLife time.Duration) float64 {
	dt := t.Sub(p.at)
	if dt <= 0 {
		return p.susp
	}
	return p.susp * math.Exp2(-float64(dt)/float64(halfLife))
}

// Observe records one call attempt's outcome against addr. ok=false means
// the attempt failed conclusively (transport error, injected fault,
// timeout); ok=true covers any answered call — including application-level
// rejections, which prove the peer alive. rtt is the attempt's round-trip
// wall time and feeds the latency EWMA only on answered calls (a timeout's
// rtt measures the caller's patience, not the peer).
func (t *Tracker) Observe(addr string, rtt time.Duration, ok bool) {
	if t == nil || addr == "" {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil {
		p = &peer{at: now}
		t.peers[addr] = p
		t.evictLocked()
	}
	susp := p.decayedLocked(now, t.cfg.HalfLife)
	if !ok {
		susp += errBump
	} else {
		sample := rtt.Seconds()
		if p.samples == 0 {
			p.ewma = sample
			p.dev = sample / 2
		} else {
			slowAt := p.ewma + slowSigma*p.dev
			if p.samples >= 3 && sample > slowAt && slowAt > 0 {
				// Abnormally slow for this peer: partial evidence, scaled
				// by how far past the slow line it landed.
				excess := (sample - slowAt) / (slowAt + 1e-9)
				bump := slowBumpMax * excess
				if bump > slowBumpMax {
					bump = slowBumpMax
				}
				susp += bump
			} else {
				susp *= okDecay
			}
			d := sample - p.ewma
			p.ewma += ewmaAlpha * d
			p.dev += ewmaAlpha * (math.Abs(d) - p.dev)
		}
		p.samples++
	}
	p.susp = susp
	p.at = now
}

// evictLocked drops the least recently observed peer when the table is
// over budget. Caller holds t.mu.
func (t *Tracker) evictLocked() {
	if len(t.peers) <= t.cfg.MaxPeers {
		return
	}
	var oldestAddr string
	var oldest time.Time
	for a, p := range t.peers {
		if oldestAddr == "" || p.at.Before(oldest) {
			oldestAddr, oldest = a, p.at
		}
	}
	delete(t.peers, oldestAddr)
}

// Suspicion returns addr's current suspicion score, decayed to now
// (0 = neutral; unknown peers are neutral).
func (t *Tracker) Suspicion(addr string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil {
		return 0
	}
	return p.decayedLocked(t.now(), t.cfg.HalfLife)
}

// Suspected reports whether addr's suspicion is at or above the
// configured threshold.
func (t *Tracker) Suspected(addr string) bool {
	if t == nil {
		return false
	}
	return t.Suspicion(addr) >= t.cfg.SuspectThreshold
}

// ExpectedLatency returns addr's latency EWMA (ok=false for peers with no
// answered calls yet).
func (t *Tracker) ExpectedLatency(addr string) (time.Duration, bool) {
	if t == nil {
		return 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil || p.samples == 0 {
		return 0, false
	}
	return time.Duration(p.ewma * float64(time.Second)), true
}

// HedgeAfter returns how long a caller should wait on addr before
// launching a hedged duplicate: the peer's p95-ish latency estimate
// (EWMA + slowSigma deviations), clamped to [min, max]. A peer with no
// latency history returns max — hedge conservatively against strangers.
func (t *Tracker) HedgeAfter(addr string, min, max time.Duration) time.Duration {
	if max < min {
		max = min
	}
	if t == nil {
		return max
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil || p.samples < 3 {
		return max
	}
	d := time.Duration((p.ewma + slowSigma*p.dev) * float64(time.Second))
	if d < min {
		return min
	}
	if d > max {
		return max
	}
	return d
}

// FactorMilli converts addr's suspicion into a load multiplier in
// thousandths: 1000 for a neutral peer, growing linearly with suspicion
// (one error's worth of suspicion doubles the peer's effective load),
// capped at 16000. Selection multiplies a peer's reported load factor by
// this, so degraded peers sink in capacity-weighted ordering without ever
// being excluded outright.
func (t *Tracker) FactorMilli(addr string) uint32 {
	if t == nil {
		return 1000
	}
	s := t.Suspicion(addr)
	f := 1000 * (1 + s)
	if f > 16000 {
		f = 16000
	}
	return uint32(f)
}

// SuspectedCount returns how many tracked peers are currently at or above
// the suspicion threshold (gauges).
func (t *Tracker) SuspectedCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	c := 0
	for _, p := range t.peers {
		if p.decayedLocked(now, t.cfg.HalfLife) >= t.cfg.SuspectThreshold {
			c++
		}
	}
	return c
}

// Len returns how many peers the tracker holds state for.
func (t *Tracker) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.peers)
}

// SetNow replaces the tracker's clock (tests).
func (t *Tracker) SetNow(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Integrity dimension: demerits for serving data that failed verification,
// and quarantine — the one place health excludes rather than deprioritizes.
// Latency and suspicion measure how a peer performs; integrity measures
// whether its bytes can be trusted at all, so the response is categorical.

// integLocked returns p's integrity score decayed to t.
func (p *peer) integLocked(t time.Time, halfLife time.Duration) float64 {
	dt := t.Sub(p.integAt)
	if dt <= 0 {
		return p.integ
	}
	return p.integ * math.Exp2(-float64(dt)/float64(halfLife))
}

// IntegrityDemerit charges addr one unit of integrity evidence (a chunk it
// served failed verification) and reports whether this demerit pushed the
// peer over the quarantine threshold. Crossing it starts a QuarantineTTL
// quarantine and resets the score, so a peer that reoffends after release
// must accumulate fresh evidence to be quarantined again.
func (t *Tracker) IntegrityDemerit(addr string) (quarantined bool) {
	if t == nil || addr == "" {
		return false
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil {
		p = &peer{at: now, integAt: now}
		t.peers[addr] = p
		t.evictLocked()
	}
	integ := p.integLocked(now, t.cfg.IntegrityHalfLife) + 1
	p.integAt = now
	if t.cfg.QuarantineThreshold > 0 && integ >= t.cfg.QuarantineThreshold && now.After(p.quarUntil) {
		p.quarUntil = now.Add(t.cfg.QuarantineTTL)
		p.integ = 0
		return true
	}
	p.integ = integ
	return false
}

// ForceQuarantine puts addr under quarantine for QuarantineTTL regardless
// of its accumulated score (coordinator-side verdicts from corroborated
// pollution reports land here). Extends an existing quarantine.
func (t *Tracker) ForceQuarantine(addr string) {
	if t == nil || addr == "" || t.cfg.QuarantineThreshold < 0 {
		return
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil {
		p = &peer{at: now, integAt: now}
		t.peers[addr] = p
		t.evictLocked()
	}
	p.quarUntil = now.Add(t.cfg.QuarantineTTL)
	p.integ = 0
}

// Quarantined reports whether addr is currently quarantined.
func (t *Tracker) Quarantined(addr string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	return p != nil && t.now().Before(p.quarUntil)
}

// IntegrityScore returns addr's integrity demerit score decayed to now
// (0 = clean; unknown peers are clean).
func (t *Tracker) IntegrityScore(addr string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.peers[addr]
	if p == nil {
		return 0
	}
	return p.integLocked(t.now(), t.cfg.IntegrityHalfLife)
}

// MaxIntegrityScore returns the highest current integrity score across all
// tracked peers (the per-peer demerit gauge's aggregate: the registry has
// no labels, so the gauge surfaces the worst offender).
func (t *Tracker) MaxIntegrityScore() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	max := 0.0
	for _, p := range t.peers {
		if s := p.integLocked(now, t.cfg.IntegrityHalfLife); s > max {
			max = s
		}
	}
	return max
}

// QuarantinedCount returns how many tracked peers are currently
// quarantined (gauges).
func (t *Tracker) QuarantinedCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	c := 0
	for _, p := range t.peers {
		if now.Before(p.quarUntil) {
			c++
		}
	}
	return c
}

// QuarantinedPeers lists the addresses currently under quarantine.
func (t *Tracker) QuarantinedPeers() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var out []string
	for a, p := range t.peers {
		if now.Before(p.quarUntil) {
			out = append(out, a)
		}
	}
	return out
}
