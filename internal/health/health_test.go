package health

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock steps time manually so decay arithmetic is exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestTracker(cfg Config) (*Tracker, *fakeClock) {
	tr := NewTracker(cfg)
	clk := newFakeClock()
	tr.SetNow(clk.now)
	return tr, clk
}

func TestNilTrackerIsNeutral(t *testing.T) {
	var tr *Tracker
	tr.Observe("a", time.Millisecond, true)
	if tr.Suspicion("a") != 0 || tr.Suspected("a") || tr.FactorMilli("a") != 1000 {
		t.Fatal("nil tracker must be neutral")
	}
	if d := tr.HedgeAfter("a", 10*time.Millisecond, 100*time.Millisecond); d != 100*time.Millisecond {
		t.Fatalf("nil tracker HedgeAfter = %v, want max", d)
	}
}

func TestUnknownPeerNeutral(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	if tr.Suspicion("ghost") != 0 || tr.Suspected("ghost") {
		t.Fatal("unknown peer must be neutral")
	}
	if tr.FactorMilli("ghost") != 1000 {
		t.Fatal("unknown peer factor must be 1000")
	}
}

func TestErrorsRaiseSuspicionAndDecayBackToNeutral(t *testing.T) {
	tr, clk := newTestTracker(Config{HalfLife: time.Second, SuspectThreshold: 3})
	for i := 0; i < 3; i++ {
		tr.Observe("p", 0, false)
	}
	if s := tr.Suspicion("p"); s < 3 {
		t.Fatalf("3 errors should reach the threshold, got %v", s)
	}
	if !tr.Suspected("p") {
		t.Fatal("peer should be suspected")
	}
	if f := tr.FactorMilli("p"); f <= 1000 {
		t.Fatalf("suspected peer factor = %d, want > 1000", f)
	}
	// Two half-lives with no evidence: suspicion quarters — back under
	// threshold, aging toward neutral.
	clk.advance(2 * time.Second)
	if s := tr.Suspicion("p"); s >= 1 {
		t.Fatalf("suspicion after 2 half-lives = %v, want < 1", s)
	}
	if tr.Suspected("p") {
		t.Fatal("peer should have aged back under the threshold")
	}
}

func TestTimelyResponsesClearSuspicionFast(t *testing.T) {
	tr, _ := newTestTracker(Config{HalfLife: time.Hour}) // isolate the ok-decay
	// Establish a latency baseline.
	for i := 0; i < 5; i++ {
		tr.Observe("p", 10*time.Millisecond, true)
	}
	tr.Observe("p", 0, false)
	tr.Observe("p", 0, false)
	before := tr.Suspicion("p")
	for i := 0; i < 10; i++ {
		tr.Observe("p", 10*time.Millisecond, true)
	}
	after := tr.Suspicion("p")
	if after >= before/10 {
		t.Fatalf("timely responses should decay suspicion fast: before=%v after=%v", before, after)
	}
}

func TestSlowResponsesRaiseSuspicion(t *testing.T) {
	tr, _ := newTestTracker(Config{HalfLife: time.Hour})
	for i := 0; i < 10; i++ {
		tr.Observe("p", 10*time.Millisecond, true)
	}
	base := tr.Suspicion("p")
	// A persistent slow lane: every response far past the p95 line.
	for i := 0; i < 20; i++ {
		tr.Observe("p", 500*time.Millisecond, true)
	}
	if s := tr.Suspicion("p"); s <= base {
		t.Fatalf("persistently slow responses should raise suspicion (base=%v now=%v)", base, s)
	}
}

func TestExpectedLatencyTracksEWMA(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	if _, ok := tr.ExpectedLatency("p"); ok {
		t.Fatal("no samples yet")
	}
	for i := 0; i < 20; i++ {
		tr.Observe("p", 40*time.Millisecond, true)
	}
	got, ok := tr.ExpectedLatency("p")
	if !ok || got < 30*time.Millisecond || got > 50*time.Millisecond {
		t.Fatalf("EWMA = %v, want ~40ms", got)
	}
	// Errors must not pollute the latency estimate.
	tr.Observe("p", 5*time.Second, false)
	got2, _ := tr.ExpectedLatency("p")
	if got2 != got {
		t.Fatalf("error observation moved the EWMA: %v -> %v", got, got2)
	}
}

func TestHedgeAfterClampsAndDefaults(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	min, max := 20*time.Millisecond, 300*time.Millisecond
	// Stranger: conservative (max).
	if d := tr.HedgeAfter("new", min, max); d != max {
		t.Fatalf("stranger hedge = %v, want %v", d, max)
	}
	// Fast stable peer: clamped up to min.
	for i := 0; i < 20; i++ {
		tr.Observe("fast", time.Millisecond, true)
	}
	if d := tr.HedgeAfter("fast", min, max); d != min {
		t.Fatalf("fast peer hedge = %v, want floor %v", d, min)
	}
	// Slow peer: clamped down to max.
	for i := 0; i < 20; i++ {
		tr.Observe("slow", 2*time.Second, true)
	}
	if d := tr.HedgeAfter("slow", min, max); d != max {
		t.Fatalf("slow peer hedge = %v, want ceiling %v", d, max)
	}
	// Mid peer: between the clamps, above its own EWMA.
	for i := 0; i < 50; i++ {
		tr.Observe("mid", 50*time.Millisecond, true)
	}
	d := tr.HedgeAfter("mid", min, max)
	if d <= 50*time.Millisecond || d >= max {
		t.Fatalf("mid peer hedge = %v, want in (50ms, %v)", d, max)
	}
}

func TestMaxPeersEvictsOldest(t *testing.T) {
	tr, clk := newTestTracker(Config{MaxPeers: 4})
	for i := 0; i < 8; i++ {
		tr.Observe(fmt.Sprintf("p%d", i), time.Millisecond, true)
		clk.advance(time.Millisecond)
	}
	if n := tr.Len(); n != 4 {
		t.Fatalf("tracker holds %d peers, want 4", n)
	}
	// Newest survives, oldest evicted.
	if _, ok := tr.ExpectedLatency("p7"); !ok {
		t.Fatal("newest peer evicted")
	}
	if _, ok := tr.ExpectedLatency("p0"); ok {
		t.Fatal("oldest peer retained")
	}
}

func TestSuspectedCount(t *testing.T) {
	tr, _ := newTestTracker(Config{SuspectThreshold: 1})
	tr.Observe("bad", 0, false)
	tr.Observe("bad", 0, false)
	tr.Observe("good", time.Millisecond, true)
	if c := tr.SuspectedCount(); c != 1 {
		t.Fatalf("SuspectedCount = %d, want 1", c)
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr, _ := newTestTracker(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := fmt.Sprintf("p%d", g%3)
			for i := 0; i < 200; i++ {
				tr.Observe(addr, time.Duration(i)*time.Microsecond, i%7 != 0)
				tr.Suspicion(addr)
				tr.FactorMilli(addr)
				tr.HedgeAfter(addr, time.Millisecond, time.Second)
			}
		}(g)
	}
	wg.Wait()
}

// --- Integrity / quarantine state machine ---

func TestIntegrityDemeritAccrualAndQuarantineEntry(t *testing.T) {
	tr, _ := newTestTracker(Config{QuarantineThreshold: 3})
	if tr.IntegrityScore("p") != 0 || tr.Quarantined("p") {
		t.Fatal("unknown peer must start clean")
	}
	if tr.IntegrityDemerit("p") {
		t.Fatal("first demerit must not quarantine at threshold 3")
	}
	if tr.IntegrityDemerit("p") {
		t.Fatal("second demerit must not quarantine at threshold 3")
	}
	if s := tr.IntegrityScore("p"); s != 2 {
		t.Fatalf("score after two demerits = %v, want 2", s)
	}
	if !tr.IntegrityDemerit("p") {
		t.Fatal("third demerit must trip quarantine")
	}
	if !tr.Quarantined("p") {
		t.Fatal("peer must be quarantined after crossing threshold")
	}
	if s := tr.IntegrityScore("p"); s != 0 {
		t.Fatalf("score must reset on quarantine entry, got %v", s)
	}
	if c := tr.QuarantinedCount(); c != 1 {
		t.Fatalf("QuarantinedCount = %d, want 1", c)
	}
	if qs := tr.QuarantinedPeers(); len(qs) != 1 || qs[0] != "p" {
		t.Fatalf("QuarantinedPeers = %v, want [p]", qs)
	}
}

func TestIntegrityDecayPreventsQuarantine(t *testing.T) {
	tr, clk := newTestTracker(Config{QuarantineThreshold: 3, IntegrityHalfLife: 10 * time.Second})
	tr.IntegrityDemerit("p")
	tr.IntegrityDemerit("p")
	// Two half-lives: 2.0 decays to 0.5; the next demerit lands at 1.5,
	// well under the threshold.
	clk.advance(20 * time.Second)
	if tr.IntegrityDemerit("p") {
		t.Fatal("decayed demerits must not trip quarantine")
	}
	if s := tr.IntegrityScore("p"); s != 1.5 {
		t.Fatalf("score = %v, want 1.5", s)
	}
}

func TestIntegrityNotWashedOutByGoodResponses(t *testing.T) {
	tr, _ := newTestTracker(Config{QuarantineThreshold: 3})
	tr.IntegrityDemerit("p")
	tr.IntegrityDemerit("p")
	// A selective poisoner serves plenty of clean chunks between poisoned
	// ones; integrity must not decay on them (only time decays it).
	for i := 0; i < 50; i++ {
		tr.Observe("p", time.Millisecond, true)
	}
	if s := tr.IntegrityScore("p"); s != 2 {
		t.Fatalf("score after good responses = %v, want 2 (no ok-decay)", s)
	}
	if !tr.IntegrityDemerit("p") {
		t.Fatal("third demerit must still trip quarantine")
	}
}

func TestQuarantineExpiryAndReentry(t *testing.T) {
	tr, clk := newTestTracker(Config{QuarantineThreshold: 2, QuarantineTTL: 5 * time.Second})
	tr.IntegrityDemerit("p")
	tr.IntegrityDemerit("p")
	if !tr.Quarantined("p") {
		t.Fatal("want quarantined")
	}
	clk.advance(6 * time.Second)
	if tr.Quarantined("p") {
		t.Fatal("quarantine must expire after TTL")
	}
	// Clean slate after release: one demerit is not enough again.
	if tr.IntegrityDemerit("p") {
		t.Fatal("single demerit after release must not re-quarantine")
	}
	if !tr.IntegrityDemerit("p") {
		t.Fatal("fresh accumulation must re-quarantine")
	}
	if !tr.Quarantined("p") {
		t.Fatal("want re-quarantined")
	}
}

func TestForceQuarantine(t *testing.T) {
	tr, clk := newTestTracker(Config{QuarantineTTL: 5 * time.Second})
	tr.ForceQuarantine("p")
	if !tr.Quarantined("p") {
		t.Fatal("ForceQuarantine must quarantine immediately")
	}
	clk.advance(3 * time.Second)
	tr.ForceQuarantine("p") // extend
	clk.advance(3 * time.Second)
	if !tr.Quarantined("p") {
		t.Fatal("second ForceQuarantine must extend the window")
	}
	clk.advance(3 * time.Second)
	if tr.Quarantined("p") {
		t.Fatal("extended quarantine must still expire")
	}
}

func TestQuarantineDisabledByNegativeThreshold(t *testing.T) {
	tr, _ := newTestTracker(Config{QuarantineThreshold: -1})
	for i := 0; i < 10; i++ {
		if tr.IntegrityDemerit("p") {
			t.Fatal("negative threshold must disable quarantine")
		}
	}
	tr.ForceQuarantine("p")
	if tr.Quarantined("p") {
		t.Fatal("ForceQuarantine must be a no-op when quarantine is disabled")
	}
}

func TestNilTrackerIntegrityNeutral(t *testing.T) {
	var tr *Tracker
	if tr.IntegrityDemerit("a") || tr.Quarantined("a") || tr.IntegrityScore("a") != 0 ||
		tr.MaxIntegrityScore() != 0 || tr.QuarantinedCount() != 0 || tr.QuarantinedPeers() != nil {
		t.Fatal("nil tracker must be neutral for integrity APIs")
	}
	tr.ForceQuarantine("a")
}

func TestMaxIntegrityScore(t *testing.T) {
	tr, _ := newTestTracker(Config{QuarantineThreshold: 10})
	tr.IntegrityDemerit("a")
	tr.IntegrityDemerit("b")
	tr.IntegrityDemerit("b")
	if s := tr.MaxIntegrityScore(); s != 2 {
		t.Fatalf("MaxIntegrityScore = %v, want 2", s)
	}
}
