// Churnstorm: reproduce the paper's §IV-D stress scenario — nodes arrive
// and depart with exponential lifetimes while a 200-chunk channel streams —
// and compare how much of the stream each overlay actually delivers.
//
// Run with:
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"time"

	"dco/internal/churn"
	"dco/internal/core"
	"dco/internal/overlay"
	"dco/internal/sim"
)

const (
	nodes    = 128
	chunks   = 100
	meanLife = 60 * time.Second
	horizon  = 200 * time.Second
)

func main() {
	fmt.Printf("churn storm: %d nodes, mean lifetime %v, %d chunks, horizon %v\n\n",
		nodes, meanLife, chunks, horizon)
	fmt.Printf("%-6s %12s %12s %14s\n", "method", "%received", "departures", "arrivals")

	// Arrival rate balances the death rate so the population stays stable.
	ccfg := churn.Config{MeanLife: meanLife, MeanJoin: meanLife / (nodes - 1), GracefulFrac: 0.5}

	// DCO with DHT maintenance on.
	{
		cfg := core.DefaultConfig()
		cfg.Stream.Count = chunks
		cfg.Neighbors = 16
		cfg.Maintenance = true
		k := sim.NewKernel(11)
		s := core.NewSystem(k, cfg, nodes)
		s.DisableCompletionStop()
		d := churn.NewDriver(k, ccfg, func() churn.Peer { return s.SpawnPeer() })
		for _, p := range s.Peers() {
			if p.Alive() && p.ID() != s.Server().ID() {
				d.Track(p)
			}
		}
		d.StartArrivals()
		s.Run(horizon)
		dep, arr := d.Stats()
		fmt.Printf("%-6s %11.2f%% %12d %14d\n", "dco", s.Log.ReceivedPercent(horizon), dep, arr)
	}

	for _, kind := range []overlay.Kind{overlay.Pull, overlay.Push, overlay.Tree} {
		cfg := overlay.DefaultConfig(kind)
		cfg.Stream.Count = chunks
		cfg.Neighbors = 16
		if kind == overlay.Tree {
			cfg.Neighbors = 2
		}
		k := sim.NewKernel(11)
		s := overlay.NewSystem(k, cfg, nodes)
		s.DisableCompletionStop()
		d := churn.NewDriver(k, ccfg, func() churn.Peer { return s.SpawnPeer() })
		for _, nd := range s.ViewerPeers() {
			d.Track(nd)
		}
		d.StartArrivals()
		s.Run(horizon)
		dep, arr := d.Stats()
		fmt.Printf("%-6s %11.2f%% %12d %14d\n", kind, s.Log.ReceivedPercent(horizon), dep, arr)
	}

	fmt.Println("\nThe tree loses whole subtrees when an interior node dies; DCO keeps")
	fmt.Println("delivering because any surviving holder is discoverable through the DHT.")
}
