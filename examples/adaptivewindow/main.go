// Adaptivewindow: demonstrate Eq. (2), the adaptive prefetching window
//
//	W_pf = W · B / (b · (1 − p_f))
//
// across download bandwidths and observed failure probabilities, then show
// the failure tracker adapting a live node's window as conditions change.
//
// Run with:
//
//	go run ./examples/adaptivewindow
package main

import (
	"fmt"

	"dco/internal/stream"
)

func main() {
	cfg := stream.DefaultPrefetchConfig()
	fmt.Printf("base window W=%d chunks, network average B=%d kbps\n\n",
		cfg.BaseWindow, cfg.AvgBandwidthBps/1000)

	fmt.Println("window size by node bandwidth and failure probability (Eq. 2):")
	fmt.Printf("%12s", "down kbps")
	probs := []float64{0, 0.1, 0.25, 0.5}
	for _, p := range probs {
		fmt.Printf("  p_f=%.2f", p)
	}
	fmt.Println()
	for _, bw := range []int64{300_000, 600_000, 1_200_000, 2_400_000} {
		fmt.Printf("%12d", bw/1000)
		for _, p := range probs {
			fmt.Printf("%9d", cfg.Window(bw, p))
		}
		fmt.Println()
	}

	fmt.Println("\nslower and failure-prone nodes prefetch further ahead, hiding both")
	fmt.Println("the DHT's log n lookup latency and provider-switch stalls (§III-B2).")

	// A node's view over time: the EWMA failure tracker reacts to a burst
	// of provider failures and then recovers.
	fmt.Println("\nlive adaptation for a 600 kbps node:")
	ft := stream.NewFailureTracker(0.1)
	phase := func(name string, fails int, oks int) {
		for i := 0; i < fails; i++ {
			ft.Record(true)
		}
		for i := 0; i < oks; i++ {
			ft.Record(false)
		}
		fmt.Printf("  %-28s p_f=%.3f  window=%d chunks\n", name, ft.Prob(), cfg.Window(600_000, ft.Prob()))
	}
	phase("steady streaming (20 ok)", 0, 20)
	phase("provider churn (6 failures)", 6, 0)
	phase("recovery (10 ok)", 0, 10)
	phase("long quiet period (40 ok)", 0, 40)
}
