// Widearea: run DCO on two physical substrates — the paper's flat
// broadband model and a four-zone wide-area topology with 80 ms
// inter-region links — and on a heterogeneous DSL/cable/fiber population,
// showing how the overlay's latency and QoS respond to the underlay.
//
// Run with:
//
//	go run ./examples/widearea
package main

import (
	"fmt"
	"time"

	"dco"
	"dco/internal/core"
	"dco/internal/simnet"
)

const (
	nodes  = 96
	chunks = 40
)

func run(name string, mutate func(*dco.Config)) {
	cfg := dco.DefaultConfig()
	cfg.Stream.Count = chunks
	cfg.Neighbors = 16
	cfg.Playback.Enabled = true
	if mutate != nil {
		mutate(&cfg)
	}
	k := dco.NewKernel(99)
	s := dco.NewDCO(k, cfg, nodes)
	s.DisableCompletionStop()
	s.Run(200 * time.Second)

	delay, complete, total := s.Log.MeshDelay()
	q := s.QoS()
	fmt.Printf("%-22s meshDelay=%8v  (%d/%d chunks)  overhead=%7d  startup=%7v  continuity=%.3f\n",
		name, delay.Round(10*time.Millisecond), complete, total, s.Net.Overhead(),
		q.MeanStartup.Round(10*time.Millisecond), q.MeanContinuity)
}

func main() {
	fmt.Printf("DCO on different substrates: %d nodes, %d chunks, 16 neighbors\n\n", nodes, chunks)

	run("flat broadband", nil)

	run("4-zone wide area", func(c *dco.Config) {
		c.Net = simnet.WideAreaConfig()
	})

	run("heterogeneous peers", func(c *dco.Config) {
		c.PeerClasses = core.HeterogeneousClasses()
	})

	run("wide area + hetero", func(c *dco.Config) {
		c.Net = simnet.WideAreaConfig()
		c.PeerClasses = core.HeterogeneousClasses()
	})

	fmt.Println("\nInter-zone latency stretches DHT routing and chunk fetches alike;")
	fmt.Println("bandwidth heterogeneity shifts load toward fiber uplinks via the")
	fmt.Println("coordinators' bandwidth-aware provider selection (§III-B2).")
}
