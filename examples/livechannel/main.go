// Livechannel: a real TCP deployment on localhost — one stream source plus
// eight viewer nodes form a Chord ring, and the viewers fetch a live
// channel end-to-end with chunk-integrity verification. This exercises the
// exact code a WAN deployment would run (internal/live over TCP sockets).
//
// Run with:
//
//	go run ./examples/livechannel
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"dco/internal/live"
	"dco/internal/stream"
	"dco/internal/transport"
)

const (
	viewers   = 8
	chunks    = 40
	chunkSize = 32 * 1024 // bytes
)

func main() {
	tcp := func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenTCP("127.0.0.1:0", h)
	}

	base := live.DefaultNodeConfig()
	base.Channel = stream.Params{Channel: "DEMO", ChunkBits: chunkSize * 8, Period: 100 * time.Millisecond, Count: chunks}
	base.StabilizeEvery = 100 * time.Millisecond
	base.FixFingersEvery = 50 * time.Millisecond
	base.LookupWait = 2 * time.Second

	// Source.
	srcCfg := base
	srcCfg.Source = true
	src, err := live.NewNode(srcCfg, tcp)
	if err != nil {
		log.Fatalf("source: %v", err)
	}
	fmt.Printf("source   %s  id=%016x\n", src.Addr(), src.ID())

	// Viewers join through the source.
	var mu sync.Mutex
	received := make(map[string]int)
	var nodes []*live.Node
	for i := 0; i < viewers; i++ {
		cfg := base
		name := fmt.Sprintf("viewer-%d", i)
		cfg.OnChunk = func(seq int64, data []byte) {
			mu.Lock()
			received[name]++
			mu.Unlock()
		}
		nd, err := live.NewNode(cfg, tcp)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			log.Fatalf("%s join: %v", name, err)
		}
		fmt.Printf("%-8s %s  id=%016x\n", name, nd.Addr(), nd.ID())
		nodes = append(nodes, nd)
	}

	src.Start()
	for _, nd := range nodes {
		nd.Start()
	}

	// Wait for everyone to finish the stream (or a deadline).
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		done := 0
		for _, nd := range nodes {
			if nd.ChunkCount() >= chunks {
				done++
			}
		}
		if done == viewers {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	fmt.Printf("\nper-node results (%d-chunk channel, %d KiB chunks):\n", chunks, chunkSize/1024)
	var names []string
	mu.Lock()
	for name := range received {
		names = append(names, name)
	}
	mu.Unlock()
	sort.Strings(names)
	var peerServed, fetched uint64
	for i, nd := range nodes {
		st := nd.Stats()
		peerServed += st.ChunksServed
		fetched += st.ChunksFetched
		fmt.Printf("  viewer-%d: buffered %3d/%d  fetched=%d  servedToPeers=%d  retries=%d\n",
			i, nd.ChunkCount(), chunks, st.ChunksFetched, st.ChunksServed, st.FetchRetries)
	}
	srcStats := src.Stats()
	fmt.Printf("  source:   servedToPeers=%d  lookupsServed=%d  insertsServed=%d\n",
		srcStats.ChunksServed, srcStats.LookupsServed, srcStats.InsertsServed)
	fmt.Printf("\nswarm efficiency: %d of %d chunk transfers came from peers, not the source\n",
		peerServed, fetched)

	// Graceful teardown: the first viewer leaves politely (index handoff +
	// ring unlink); the rest just close.
	if err := nodes[0].Leave(); err != nil {
		log.Printf("leave: %v", err)
	}
	for _, nd := range nodes[1:] {
		nd.Close()
	}
	src.Close()
}
