// Quickstart: simulate a small live-streaming session with DCO and with the
// pull-mesh baseline, then print the paper's four metrics side by side.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"dco/internal/core"
	"dco/internal/metrics"
	"dco/internal/overlay"
	"dco/internal/sim"
	"dco/internal/simnet"
)

const (
	nodes     = 64
	chunks    = 30
	neighbors = 16
	horizon   = 200 * time.Second
)

func main() {
	fmt.Printf("DCO quickstart: %d nodes watch a %d-chunk live channel (%d neighbors)\n\n",
		nodes, chunks, neighbors)

	type outcome struct {
		name string
		log  *metrics.DeliveryLog
		net  *simnet.Network
		end  time.Duration
	}
	var results []outcome

	// DCO: every node joins the Chord ring; lookups find providers
	// system-wide.
	{
		cfg := core.DefaultConfig()
		cfg.Neighbors = neighbors
		cfg.Stream.Count = chunks
		k := sim.NewKernel(1)
		s := core.NewSystem(k, cfg, nodes)
		end := s.Run(horizon)
		results = append(results, outcome{"dco", s.Log, s.Net, end})
	}

	// Pull mesh: the strongest baseline.
	{
		cfg := overlay.DefaultConfig(overlay.Pull)
		cfg.Neighbors = neighbors
		cfg.Stream.Count = chunks
		k := sim.NewKernel(1)
		s := overlay.NewSystem(k, cfg, nodes)
		end := s.Run(horizon)
		results = append(results, outcome{"pull", s.Log, s.Net, end})
	}

	fmt.Printf("%-6s %14s %12s %12s %14s\n", "method", "mesh delay", "fill@2s", "fill@10s", "overhead msgs")
	for _, r := range results {
		delay, complete, total := r.log.MeshDelay()
		fmt.Printf("%-6s %14v %12.3f %12.3f %14d   (%d/%d chunks complete, done at t=%v)\n",
			r.name, delay.Round(10*time.Millisecond),
			r.log.MeanFillRatioAfter(2*time.Second),
			r.log.MeanFillRatioAfter(10*time.Second),
			r.net.Overhead(), complete, total, r.end.Round(time.Second))
	}
	fmt.Println("\nDCO reaches full dissemination with a fraction of the control traffic:")
	fmt.Println("the DHT lookup replaces per-neighbor buffer-map gossip (paper §IV).")
}
