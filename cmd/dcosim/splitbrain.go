package main

// The "splitbrain" method benchmarks split-brain detection and ring merge
// on the real node stack: a streaming swarm is bisected by a seeded
// network partition until both halves converge into self-consistent
// rings, then healed. The run measures how long the census takes to merge
// the halves back into a single ring — with no manual rejoin anywhere —
// and whether the data plane fully recovers afterward (no exhausted
// lookups post-merge, fill ratio back at 1). This is what BENCH_PR5.json
// is generated from.

import (
	"fmt"
	"os"
	"sort"
	"time"

	"dco/internal/faulty"
	"dco/internal/live"
	"dco/internal/retry"
	"dco/internal/transport"
)

// splitResult is the -json schema of a splitbrain run. Field names are
// stable — BENCH_PR5.json and CI trend checks parse them.
type splitResult struct {
	Method         string  `json:"method"`
	N              int     `json:"n"`
	Chunks         int64   `json:"chunks"`
	Seed           int64   `json:"seed"`
	CensusEveryMs  int64   `json:"census_every_ms"`
	SplitSeconds   float64 `json:"split_seconds"`              // partition start → both halves converged
	MergeSeconds   float64 `json:"merge_seconds"`              // heal → single ring again
	CensusRounds   int64   `json:"census_rounds"`              // merge time in census periods (ceil)
	SplitsDetected uint64  `json:"splits_detected"`            // confirmed detections across the swarm
	RingMerges     uint64  `json:"ring_merges"`                // completed merge protocols
	PostMergeFails uint64  `json:"post_merge_lookup_failures"` // exhausted lookups after the merge (want 0)
	FillRatioMin   float64 `json:"fill_ratio_min"`             // min over viewers at the end (want >= 0.99)
	WallSeconds    float64 `json:"wall_seconds"`
}

// singleRing reports whether every node's successor is its true clockwise
// neighbor in the sorted membership — the only check that distinguishes
// one ring from two internally-consistent ones.
func singleRing(nodes []*live.Node) bool {
	sorted := append([]*live.Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for i, nd := range sorted {
		next := sorted[(i+1)%len(sorted)]
		if _, succ := nd.Successor(); succ != next.Addr() {
			return false
		}
	}
	return true
}

// runSplitBrain executes the split-brain benchmark and exits the process.
func runSplitBrain(n int, chunks, seed int64, jsonOut string) {
	const censusEvery = 100 * time.Millisecond
	cfg := live.DefaultNodeConfig()
	cfg.Channel.Period = 100 * time.Millisecond
	cfg.Channel.ChunkBits = 8 * 1024
	cfg.Channel.Count = chunks
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 500 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	cfg.RepublishEvery = 500 * time.Millisecond
	cfg.Replicas = 2
	cfg.Retry = retry.Policy{
		MaxAttempts:    3,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     80 * time.Millisecond,
		Multiplier:     2,
		Jitter:         0.5,
		Budget:         time.Second,
	}
	cfg.Breaker = retry.BreakerConfig{Threshold: 5, Cooldown: 500 * time.Millisecond}
	cfg.ProviderCooldown = 400 * time.Millisecond
	cfg.CensusEvery = censusEvery
	cfg.CensusProbes = 2

	f := transport.NewFabric()
	in := faulty.NewInjector(uint64(seed))
	attach := func(h transport.Handler) (transport.Transport, error) {
		return in.Wrap(f.Attach(h)), nil
	}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dcosim: splitbrain: "+format+"\n", args...)
		os.Exit(1)
	}

	srcCfg := cfg
	srcCfg.Source = true
	src, err := live.NewNode(srcCfg, attach)
	if err != nil {
		fail("%v", err)
	}
	viewers := make([]*live.Node, 0, n-1)
	for i := 1; i < n; i++ {
		nd, err := live.NewNode(cfg, attach)
		if err != nil {
			fail("%v", err)
		}
		if err := nd.Join(src.Addr()); err != nil {
			fail("join: %v", err)
		}
		viewers = append(viewers, nd)
	}
	all := append([]*live.Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()
	src.Start()
	for _, nd := range viewers {
		nd.Start()
	}
	start := time.Now()

	poll := func(d time.Duration, what string, cond func() bool) {
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				fail("timeout waiting for %s", what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	poll(30*time.Second, "the initial ring to converge", func() bool { return singleRing(all) })

	// Bisect mid-stream: the source and half the viewers on one side, the
	// rest on the other. Addresses are fixed, so the same seed cuts the
	// same halves.
	var groupA, groupB []string
	var sideA, sideB []*live.Node
	for i, nd := range all {
		if i%2 == 0 {
			groupA = append(groupA, nd.Addr())
			sideA = append(sideA, nd)
		} else {
			groupB = append(groupB, nd.Addr())
			sideB = append(sideB, nd)
		}
	}
	splitStart := time.Now()
	in.Partition(groupA, groupB)
	poll(60*time.Second, "both halves to converge into their own rings", func() bool {
		return singleRing(sideA) && singleRing(sideB)
	})
	splitDur := time.Since(splitStart)

	// Heal and measure the census-driven merge. Nothing calls Join from
	// here on: detection, confirmation, table folding, and the stabilize
	// cascade must reunify the ring on their own.
	healAt := time.Now()
	in.Heal()
	poll(60*time.Second, "the census to merge the rings after the heal", func() bool {
		return singleRing(all)
	})
	mergeDur := time.Since(healAt)

	// Let in-flight pre-merge lookups drain, then count exhausted lookups
	// from here to the end of the run: the merged ring must not lose any.
	time.Sleep(time.Second)
	var failsBefore uint64
	for _, nd := range all {
		failsBefore += nd.Stats().LookupFailures
	}

	// Fill recovery: the half cut off from the source catches up on the
	// full stream through the reunified ring.
	poll(3*time.Minute, "all viewers to recover the full stream", func() bool {
		for _, v := range viewers {
			if int64(v.ChunkCount()) < chunks {
				return false
			}
		}
		return true
	})
	if !singleRing(all) {
		fail("ring did not stay single after the merge")
	}

	res := splitResult{
		Method:        "splitbrain",
		N:             n,
		Chunks:        chunks,
		Seed:          seed,
		CensusEveryMs: censusEvery.Milliseconds(),
		SplitSeconds:  splitDur.Seconds(),
		MergeSeconds:  mergeDur.Seconds(),
		CensusRounds:  int64((mergeDur + censusEvery - 1) / censusEvery),
		WallSeconds:   time.Since(start).Seconds(),
		FillRatioMin:  1,
	}
	for _, nd := range all {
		st := nd.Stats()
		res.SplitsDetected += st.SplitsDetected
		res.RingMerges += st.RingMerges
		res.PostMergeFails += st.LookupFailures
	}
	res.PostMergeFails -= failsBefore
	for _, v := range viewers {
		r := float64(v.ChunkCount()) / float64(chunks)
		if r > 1 {
			r = 1
		}
		if r < res.FillRatioMin {
			res.FillRatioMin = r
		}
	}

	fmt.Printf("method=splitbrain n=%d chunks=%d seed=%d\n", n, chunks, seed)
	fmt.Printf("partition converged in:  %v (two rings)\n", splitDur.Round(time.Millisecond))
	fmt.Printf("merge after heal:        %v (%d census rounds)\n", mergeDur.Round(time.Millisecond), res.CensusRounds)
	fmt.Printf("splits detected:         %d (merges completed: %d)\n", res.SplitsDetected, res.RingMerges)
	fmt.Printf("post-merge lookup fails: %d\n", res.PostMergeFails)
	fmt.Printf("fill ratio (min viewer): %.3f\n", res.FillRatioMin)
	fmt.Printf("wall time:               %v\n", time.Duration(res.WallSeconds*float64(time.Second)).Round(time.Millisecond))

	if jsonOut != "" {
		if err := writeJSONAny(jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}
	if res.SplitsDetected == 0 || res.RingMerges == 0 || res.PostMergeFails > 0 || res.FillRatioMin < 0.99 {
		os.Exit(1)
	}
}
