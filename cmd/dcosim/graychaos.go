package main

// The "graychaos" method is the gray-failure soak: the real node stack on
// both DHT backends under a seeded mix of alive-but-degraded peers —
// persistent slow lanes, mid-frame chunk stalls (the peer answers control
// RPCs but its data frames never finish), and asymmetric one-way
// partitions — injected mid-stream. Each backend runs the identical
// scenario twice, hedging disabled then enabled, and the run is judged on
// the gray-failure invariants: the swarm still delivers (≥95%), no fetch
// worker wedges (every node closes promptly), and hedging cuts the p99
// chunk-fetch latency by at least 30% against the undefended run. This is
// what BENCH_PR9.json is generated from.

import (
	"fmt"
	"os"
	"sync"
	"time"

	"dco/internal/faulty"
	"dco/internal/live"
	"dco/internal/telemetry"
	"dco/internal/transport"
)

// grayRunResult is one (backend, hedge) column. Field names are stable —
// BENCH_PR9.json and CI trend checks parse them.
type grayRunResult struct {
	Backend          string  `json:"backend"`
	Hedge            bool    `json:"hedge"`
	WallSeconds      float64 `json:"wall_seconds"`
	DeliveredPercent float64 `json:"delivered_percent"` // min over all viewers

	// Chunk-fetch latency distribution, summed over every viewer's
	// dco_live_chunk_fetch_seconds histogram (interpolated quantiles).
	Fetches  uint64  `json:"fetches"`
	FetchP50 float64 `json:"fetch_p50_seconds"`
	FetchP95 float64 `json:"fetch_p95_seconds"`
	FetchP99 float64 `json:"fetch_p99_seconds"`

	HedgesLaunched  uint64 `json:"hedges_launched"`
	HedgeWins       uint64 `json:"hedge_wins"`
	HedgesCancelled uint64 `json:"hedges_cancelled"`
	DeadlineSheds   uint64 `json:"deadline_sheds"`
	SuspectedPeers  uint64 `json:"suspected_peers"` // sum at stream end
	LookupFailures  uint64 `json:"lookup_failures"`
	ChunksAbandoned uint64 `json:"chunks_abandoned"`
	WedgedWorkers   int    `json:"wedged_workers"` // nodes that failed to close in time
	Injected        uint64 `json:"injected"`       // non-pass injector decisions
}

// grayChaosResult is the -json schema of a graychaos run.
type grayChaosResult struct {
	Method string          `json:"method"`
	N      int             `json:"n"`
	Chunks int64           `json:"chunks"`
	Seed   int64           `json:"seed"`
	Runs   []grayRunResult `json:"runs"`
	// P99CutPercent[backend] = how much hedging cut p99 fetch latency.
	P99CutPercent map[string]float64 `json:"p99_cut_percent"`
}

// histQuantileInterp estimates quantile q from cumulative bucket counts
// with linear interpolation inside the winning bucket (the Prometheus
// histogram_quantile estimator). The +Inf bucket reports the last finite
// bound — quantiles cannot exceed what the buckets can resolve.
func histQuantileInterp(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			if c == 0 {
				return bounds[i]
			}
			frac := (rank - float64(prev)) / float64(c)
			return lo + frac*(bounds[i]-lo)
		}
	}
	return bounds[len(bounds)-1]
}

// closeAllWatched closes every node concurrently with a per-node watchdog
// and returns how many failed to close inside the grace window — each one
// is a wedged worker (a goroutine stuck past every timeout the defense
// layer is supposed to enforce).
func closeAllWatched(nodes []*live.Node, grace time.Duration) int {
	done := make(chan struct{}, len(nodes))
	for _, nd := range nodes {
		go func(nd *live.Node) {
			nd.Close()
			done <- struct{}{}
		}(nd)
	}
	closed := 0
	timer := time.NewTimer(grace)
	defer timer.Stop()
	for closed < len(nodes) {
		select {
		case <-done:
			closed++
		case <-timer.C:
			return len(nodes) - closed
		}
	}
	return 0
}

// runGrayRun executes the shared scenario on one backend with hedging on
// or off.
func runGrayRun(backend string, hedge bool, n int, chunks, seed int64) grayRunResult {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dcosim: graychaos(%s,hedge=%v): %s\n", backend, hedge, fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	cfg := live.DefaultNodeConfig()
	cfg.DHT = backend
	cfg.Channel.Period = 60 * time.Millisecond
	cfg.Channel.ChunkBits = 8 * 1024
	cfg.Channel.Count = chunks
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 250 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	cfg.RepublishEvery = 500 * time.Millisecond
	cfg.Replicas = 2
	cfg.ReplicateEvery = 25 * time.Millisecond
	cfg.AntiEntropyEvery = 250 * time.Millisecond
	cfg.Hedge = hedge
	cfg.HedgeMinDelay = 20 * time.Millisecond
	cfg.HedgeMaxDelay = 300 * time.Millisecond
	// A generous playback horizon (200 periods = 12s): deadline propagation
	// stays live on every call without abandoning chunks a defended fetch
	// could still land.
	cfg.FetchDeadlineChunks = 200

	f := transport.NewFabric()
	in := faulty.NewInjector(uint64(seed))
	regs := make([]*telemetry.Registry, 0, n)
	mkNode := func(c live.Config) *live.Node {
		reg := telemetry.NewRegistry()
		c.Telemetry = reg
		nd, err := live.NewNode(c, func(h transport.Handler) (transport.Transport, error) {
			m := f.Attach(h)
			m.SetMetrics(transport.NewMetrics(reg))
			return in.Wrap(m), nil
		})
		if err != nil {
			fail("%v", err)
		}
		regs = append(regs, reg)
		return nd
	}

	srcCfg := cfg
	srcCfg.Source = true
	src := mkNode(srcCfg)
	viewers := make([]*live.Node, 0, n-1)
	for i := 1; i < n; i++ {
		viewers = append(viewers, mkNode(cfg))
	}
	all := append([]*live.Node{src}, viewers...)

	src.Start()
	start := time.Now()
	var joinWG sync.WaitGroup
	joinErr := make(chan error, len(viewers))
	for _, nd := range viewers {
		joinWG.Add(1)
		go func(nd *live.Node) {
			defer joinWG.Done()
			if err := nd.Join(src.Addr()); err != nil {
				joinErr <- err
			}
		}(nd)
	}
	joinWG.Wait()
	select {
	case err := <-joinErr:
		fail("join: %v", err)
	default:
	}
	for _, nd := range viewers {
		nd.Start()
	}

	// Mid-stream, turn a deterministic slice of the viewers gray. The
	// source stays clean: it is the only origin of chunks, and a grayed
	// origin tests chunk scarcity, not gray-failure defense. The three sets
	// are disjoint slices of the arrival order.
	time.Sleep(time.Duration(chunks) * cfg.Channel.Period / 3)
	stallN := n / 6
	if stallN < 3 {
		stallN = 3
	}
	slowN := n / 12
	if slowN < 2 {
		slowN = 2
	}
	oneN := n / 12
	if oneN < 2 {
		oneN = 2
	}
	if stallN+slowN+oneN > len(viewers) {
		fail("n=%d too small for the gray sets (%d needed)", n, stallN+slowN+oneN+1)
	}
	grayAt := time.Now()
	for _, v := range viewers[:stallN] {
		in.SetMidFrameStall(v.Addr(), true)
	}
	for _, v := range viewers[stallN : stallN+slowN] {
		in.SetSlowLane(v.Addr(), 150*time.Millisecond)
	}
	// One-way: everyone else loses the path TO these viewers while the
	// viewers' own outbound calls (fetches, republishes — which re-advertise
	// them as providers nobody can actually reach) keep flowing.
	others := make([]string, 0, len(all))
	onewayDst := make([]string, 0, oneN)
	for _, v := range viewers[stallN+slowN : stallN+slowN+oneN] {
		onewayDst = append(onewayDst, v.Addr())
	}
	for _, nd := range all {
		skip := false
		for _, d := range onewayDst {
			if nd.Addr() == d {
				skip = true
				break
			}
		}
		if !skip {
			others = append(others, nd.Addr())
		}
	}
	in.OneWay(others, onewayDst)
	_ = grayAt

	// Run the stream until every viewer has resolved every chunk — fetched
	// or (past its playback horizon) abandoned. Gray viewers count too:
	// their outbound data path still works.
	streamDeadline := time.Now().Add(2 * time.Minute)
	for {
		done := true
		for _, v := range viewers {
			if int64(v.ChunkCount())+int64(v.Stats().ChunksAbandoned) < chunks {
				done = false
				break
			}
		}
		if done || time.Now().After(streamDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	wall := time.Since(start)

	res := grayRunResult{Backend: backend, Hedge: hedge, WallSeconds: wall.Seconds()}
	res.DeliveredPercent = 100
	for _, v := range viewers {
		p := 100 * float64(v.ChunkCount()) / float64(chunks)
		if p < res.DeliveredPercent {
			res.DeliveredPercent = p
		}
	}
	for _, nd := range all {
		st := nd.Stats()
		res.HedgesLaunched += st.HedgesLaunched
		res.HedgeWins += st.HedgeWins
		res.HedgesCancelled += st.HedgesCancelled
		res.DeadlineSheds += st.DeadlineSheds
		res.SuspectedPeers += st.SuspectedPeers
		res.LookupFailures += st.LookupFailures
		res.ChunksAbandoned += st.ChunksAbandoned
	}
	res.Injected = in.Injected()

	var bounds []float64
	var counts []uint64
	for _, reg := range regs {
		snap := reg.Snapshot()
		h, ok := snap.Histograms["dco_live_chunk_fetch_seconds"]
		if !ok {
			continue
		}
		if bounds == nil {
			bounds = h.Bounds
			counts = make([]uint64, len(h.Counts))
		}
		for i, c := range h.Counts {
			counts[i] += c
		}
		res.Fetches += h.Count
	}
	if res.Fetches > 0 {
		res.FetchP50 = histQuantileInterp(bounds, counts, res.Fetches, 0.50)
		res.FetchP95 = histQuantileInterp(bounds, counts, res.Fetches, 0.95)
		res.FetchP99 = histQuantileInterp(bounds, counts, res.Fetches, 0.99)
	}

	// The wedge check: every node — gray ones included — must close inside
	// the grace window. A fetch worker stuck past every deadline shows up
	// here as a hung Close.
	res.WedgedWorkers = closeAllWatched(all, 15*time.Second)
	return res
}

// runGrayChaos executes the gray-failure soak on both backends and exits
// the process.
func runGrayChaos(n int, chunks, seed int64, jsonOut string) {
	if n < 24 {
		fmt.Printf("graychaos: raising n=%d to the scenario floor of 24\n", n)
		n = 24
	}
	res := grayChaosResult{Method: "graychaos", N: n, Chunks: chunks, Seed: seed, P99CutPercent: map[string]float64{}}
	for _, backend := range []string{"chord", "kademlia"} {
		var off, on grayRunResult
		for _, hedge := range []bool{false, true} {
			fmt.Printf("--- backend=%s hedge=%v n=%d chunks=%d (slow lanes + mid-frame stalls + one-way partitions at t/3)\n",
				backend, hedge, n, chunks)
			r := runGrayRun(backend, hedge, n, chunks, seed)
			fmt.Printf("wall time:              %v\n", time.Duration(r.WallSeconds*float64(time.Second)).Round(time.Millisecond))
			fmt.Printf("delivered (min viewer): %.2f%%\n", r.DeliveredPercent)
			fmt.Printf("fetches:                %d (p50=%.3fs p95=%.3fs p99=%.3fs)\n", r.Fetches, r.FetchP50, r.FetchP95, r.FetchP99)
			fmt.Printf("hedges:                 launched=%d wins=%d cancelled=%d\n", r.HedgesLaunched, r.HedgeWins, r.HedgesCancelled)
			fmt.Printf("deadline sheds:         %d  suspected peers: %d  lookup failures: %d  abandoned: %d\n",
				r.DeadlineSheds, r.SuspectedPeers, r.LookupFailures, r.ChunksAbandoned)
			fmt.Printf("wedged workers:         %d  injected faults: %d\n", r.WedgedWorkers, r.Injected)
			if hedge {
				on = r
			} else {
				off = r
			}
			res.Runs = append(res.Runs, r)
		}
		cut := 0.0
		if off.FetchP99 > 0 {
			cut = 100 * (off.FetchP99 - on.FetchP99) / off.FetchP99
		}
		res.P99CutPercent[backend] = cut
		fmt.Printf("=== backend=%s p99 fetch latency: hedge-off %.3fs → hedge-on %.3fs (cut %.1f%%)\n",
			backend, off.FetchP99, on.FetchP99, cut)
	}

	if jsonOut != "" {
		if err := writeJSONAny(jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}

	// Acceptance: the defended runs deliver, nothing wedges anywhere, the
	// faults actually fired, hedging actually engaged, and it bought ≥30%
	// of p99 on both backends.
	bad := false
	for _, r := range res.Runs {
		if r.Injected == 0 {
			fmt.Fprintf(os.Stderr, "dcosim: graychaos: backend %s hedge=%v injected no faults; the run tested nothing\n", r.Backend, r.Hedge)
			bad = true
		}
		if r.WedgedWorkers != 0 {
			fmt.Fprintf(os.Stderr, "dcosim: graychaos: backend %s hedge=%v left %d wedged workers\n", r.Backend, r.Hedge, r.WedgedWorkers)
			bad = true
		}
		if r.Hedge && (r.DeliveredPercent < 95 || r.HedgesLaunched == 0) {
			fmt.Fprintf(os.Stderr, "dcosim: graychaos: backend %s failed acceptance (delivered=%.2f hedges=%d)\n",
				r.Backend, r.DeliveredPercent, r.HedgesLaunched)
			bad = true
		}
	}
	for backend, cut := range res.P99CutPercent {
		if cut < 30 {
			fmt.Fprintf(os.Stderr, "dcosim: graychaos: backend %s p99 cut %.1f%% < 30%%\n", backend, cut)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
