package main

// The "byzantine" method is the pollution soak: the real node stack on
// both DHT backends with 25% of the swarm adversarial — persistent chunk
// poisoners, every-3rd poisoners, a lying load reporter, and an active
// index spammer flooding coordinators with bogus registrations. The run
// is judged on the pollution-defense invariants: honest viewers still
// deliver (≥95%), not one polluted chunk is accepted into any buffer
// (the choke point is absolute), every poisoner ends up quarantined by
// the honest swarm, and the index hardening visibly fired (integrity
// rejects, rate-limited inserts). This is what BENCH_PR10.json is
// generated from.

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"dco/internal/faulty"
	"dco/internal/live"
	"dco/internal/telemetry"
	"dco/internal/transport"
	"dco/internal/wire"
)

// byzRunResult is one backend column. Field names are stable —
// BENCH_PR10.json and CI trend checks parse them.
type byzRunResult struct {
	Backend                string  `json:"backend"`
	WallSeconds            float64 `json:"wall_seconds"`
	DeliveredPercentHonest float64 `json:"delivered_percent_honest"` // min over honest viewers

	Fetches  uint64  `json:"fetches"`
	FetchP50 float64 `json:"fetch_p50_seconds"`
	FetchP95 float64 `json:"fetch_p95_seconds"`
	FetchP99 float64 `json:"fetch_p99_seconds"`

	IntegrityRejects   uint64   `json:"integrity_rejects"`
	PollutedAccepted   int      `json:"polluted_accepted"` // sum of VerifyBuffered over every node
	PeersQuarantined   uint64   `json:"peers_quarantined"`
	PoisonersCaught    int      `json:"poisoners_caught"` // poisoners in some honest node's quarantine log
	PoisonersTotal     int      `json:"poisoners_total"`
	QuarantinedUnion   []string `json:"quarantined_union"`
	InsertsRateLimited uint64   `json:"inserts_rate_limited"`
	InsertsRejected    uint64   `json:"inserts_rejected"`
	PollutionReports   uint64   `json:"pollution_reports"`
	LoadReportsClamped uint64   `json:"load_reports_clamped"`
	ManifestFetches    uint64   `json:"manifest_fetches"`
	WedgedWorkers      int      `json:"wedged_workers"`
	Injected           uint64   `json:"injected"`
}

// byzantineResult is the -json schema of a byzantine run.
type byzantineResult struct {
	Method      string         `json:"method"`
	N           int            `json:"n"`
	Adversarial int            `json:"adversarial"`
	Chunks      int64          `json:"chunks"`
	Seed        int64          `json:"seed"`
	Runs        []byzRunResult `json:"runs"`
}

// runByzantineRun executes the shared scenario on one backend.
func runByzantineRun(backend string, n int, chunks, seed int64) byzRunResult {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dcosim: byzantine(%s): %s\n", backend, fmt.Sprintf(format, args...))
		os.Exit(1)
	}

	cfg := live.DefaultNodeConfig()
	cfg.DHT = backend
	cfg.Channel.Period = 60 * time.Millisecond
	cfg.Channel.ChunkBits = 8 * 1024
	cfg.Channel.Count = chunks
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 250 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	cfg.RepublishEvery = 500 * time.Millisecond
	cfg.Replicas = 2
	cfg.ReplicateEvery = 25 * time.Millisecond
	cfg.AntiEntropyEvery = 250 * time.Millisecond
	cfg.FetchDeadlineChunks = 200
	// Pollution-defense knobs: a modest insert rate is still far above
	// honest republish traffic per coordinator, and the provider cap
	// backstops entry growth while leaving room for the whole swarm — a
	// tight cap would let the early-registrant elite crowd everyone else
	// (the adversaries included) out of the serve rotation entirely.
	cfg.MaxProvidersPerSeq = 32
	cfg.InsertRate = 50
	// Constrain upload so the source cannot serve the swarm alone (at the
	// default budget it can, and the adversarial providers never see a
	// request). ~15 chunk serves per period per node forces real
	// peer-to-peer serving — the regime pollution defense exists for.
	cfg.UpBps = 2_000_000

	f := transport.NewFabric()
	in := faulty.NewInjector(uint64(seed))
	regs := make([]*telemetry.Registry, 0, n)
	mkNode := func(c live.Config) *live.Node {
		reg := telemetry.NewRegistry()
		c.Telemetry = reg
		nd, err := live.NewNode(c, func(h transport.Handler) (transport.Transport, error) {
			m := f.Attach(h)
			m.SetMetrics(transport.NewMetrics(reg))
			return in.Wrap(m), nil
		})
		if err != nil {
			fail("%v", err)
		}
		regs = append(regs, reg)
		return nd
	}

	srcCfg := cfg
	srcCfg.Source = true
	src := mkNode(srcCfg)
	viewers := make([]*live.Node, 0, n-1)
	for i := 1; i < n; i++ {
		viewers = append(viewers, mkNode(cfg))
	}
	all := append([]*live.Node{src}, viewers...)

	// The adversarial cohort: 25% of n. Five byzantine node roles on the
	// first viewers in arrival order (deterministic), plus one active index
	// spammer that is a bare fabric endpoint, not a node. The source stays
	// honest — it is the only origin of chunks, and a poisoning source
	// tests chunk scarcity, not pollution defense.
	if len(viewers) < 8 {
		fail("n=%d too small for the byzantine cohort", n)
	}
	persistent := []*live.Node{viewers[0], viewers[1]}
	everyK := []*live.Node{viewers[2], viewers[3]}
	liar := viewers[4]
	poisoners := append(append([]*live.Node{}, persistent...), everyK...)
	for _, p := range persistent {
		in.SetPoisoner(p.Addr(), 1)
	}
	for _, p := range everyK {
		in.SetPoisoner(p.Addr(), 3)
	}
	in.SetLoadLiar(liar.Addr(), true)
	adversarial := map[string]bool{liar.Addr(): true}
	for _, p := range poisoners {
		adversarial[p.Addr()] = true
	}
	honest := make([]*live.Node, 0, len(viewers))
	for _, v := range viewers {
		if !adversarial[v.Addr()] {
			honest = append(honest, v)
		}
	}

	src.Start()
	start := time.Now()
	var joinWG sync.WaitGroup
	joinErr := make(chan error, len(viewers))
	for _, nd := range viewers {
		joinWG.Add(1)
		go func(nd *live.Node) {
			defer joinWG.Done()
			if err := nd.Join(src.Addr()); err != nil {
				joinErr <- err
			}
		}(nd)
	}
	joinWG.Wait()
	select {
	case err := <-joinErr:
		fail("join: %v", err)
	default:
	}
	for _, nd := range viewers {
		nd.Start()
	}

	// The index spammer: a bare endpoint flooding bogus registrations for
	// live and future seqs at every node (non-owners nack them; the owner
	// pays the rate-limit check). One fake holder identity keeps all the
	// spam inside one token bucket per coordinator, concentrated enough to
	// blow through the per-holder rate on the owners of popular keys.
	spamTr := f.Attach(transport.HandlerFunc(func(string, wire.Message) wire.Message {
		return &wire.Error{Code: wire.CodeBadRequest, Msg: "spammer serves nothing"}
	}))
	targets := make([]string, 0, len(all))
	for _, nd := range all {
		targets = append(targets, nd.Addr())
	}
	stopSpam := make(chan struct{})
	spamDone := make(chan struct{})
	go func() {
		defer close(spamDone)
		faulty.SpamInserts(stopSpam, spamTr, faulty.SpamConfig{
			Targets:  targets,
			KeyFor:   func(seq int64) uint64 { return uint64(cfg.Channel.Ref(seq).ID()) },
			Seqs:     func(i int) int64 { return int64(i) % (2 * chunks) },
			Holders:  []wire.Entry{{ID: 0xE1, Addr: "byz-spam:1"}},
			Interval: 5 * time.Millisecond,
			Burst:    8,
		})
	}()

	// Run until every viewer has resolved every chunk — fetched or (past
	// its playback horizon) abandoned. Adversarial viewers resolve too:
	// their inbound path is clean, only what they serve is bent.
	streamDeadline := time.Now().Add(3 * time.Minute)
	for {
		done := true
		for _, v := range viewers {
			if int64(v.ChunkCount())+int64(v.Stats().ChunksAbandoned) < chunks {
				done = false
				break
			}
		}
		if done || time.Now().After(streamDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	wall := time.Since(start)
	close(stopSpam)
	<-spamDone

	res := byzRunResult{Backend: backend, WallSeconds: wall.Seconds(), PoisonersTotal: len(poisoners)}
	res.DeliveredPercentHonest = 100
	for _, v := range honest {
		p := 100 * float64(v.ChunkCount()) / float64(chunks)
		if p < res.DeliveredPercentHonest {
			res.DeliveredPercentHonest = p
		}
	}
	// The absolute gate: nothing polluted in any buffer, anywhere — the
	// adversarial nodes' own buffers included (they fetch clean bytes; the
	// injector bends only what they serve).
	for _, nd := range all {
		res.PollutedAccepted += nd.VerifyBuffered()
	}
	for _, v := range honest {
		st := v.Stats()
		res.IntegrityRejects += st.IntegrityRejects
		res.LoadReportsClamped += st.LoadReportsClamped
		res.ManifestFetches += st.ManifestFetches
	}
	// Coordinator-side state lives wherever the key (or report rendezvous)
	// owner is — sum over everyone, the quarantine union included: the
	// adversarial nodes run unmodified coordinator code (the injector only
	// bends what they serve), so their quarantine verdicts are the honest
	// defense working, not the adversary's word.
	quarUnion := map[string]bool{}
	for _, nd := range all {
		st := nd.Stats()
		res.PeersQuarantined += st.PeersQuarantined
		res.InsertsRateLimited += st.InsertsRateLimited
		res.InsertsRejected += st.InsertsRejected
		res.PollutionReports += st.PollutionReportsSeen
		for _, a := range nd.EverQuarantined() {
			quarUnion[a] = true
		}
	}
	for a := range quarUnion {
		res.QuarantinedUnion = append(res.QuarantinedUnion, a)
	}
	sort.Strings(res.QuarantinedUnion)
	for _, p := range poisoners {
		if quarUnion[p.Addr()] {
			res.PoisonersCaught++
		}
	}
	res.Injected = in.Injected()
	// Per-poisoner exposure: how many poisoned serves each actually landed
	// and on how many distinct victims — the raw material for quarantine.
	// PoisonStats, not History: the soak's call volume floods the bounded
	// history log with Pass records, evicting early Poisoned entries.
	stats := in.PoisonStats()
	for _, p := range poisoners {
		total := 0
		for _, k := range stats[p.Addr()] {
			total += k
		}
		fmt.Printf("  poisoner %s: %d poisoned serves to %d distinct victims (quarantined=%v)\n",
			p.Addr(), total, len(stats[p.Addr()]), quarUnion[p.Addr()])
	}

	var bounds []float64
	var counts []uint64
	for _, reg := range regs {
		snap := reg.Snapshot()
		h, ok := snap.Histograms["dco_live_chunk_fetch_seconds"]
		if !ok {
			continue
		}
		if bounds == nil {
			bounds = h.Bounds
			counts = make([]uint64, len(h.Counts))
		}
		for i, c := range h.Counts {
			counts[i] += c
		}
		res.Fetches += h.Count
	}
	if res.Fetches > 0 {
		res.FetchP50 = histQuantileInterp(bounds, counts, res.Fetches, 0.50)
		res.FetchP95 = histQuantileInterp(bounds, counts, res.Fetches, 0.95)
		res.FetchP99 = histQuantileInterp(bounds, counts, res.Fetches, 0.99)
	}

	res.WedgedWorkers = closeAllWatched(all, 15*time.Second)
	return res
}

// runByzantine executes the pollution soak on both backends and exits the
// process.
func runByzantine(n int, chunks, seed int64, jsonOut string) {
	if n < 24 {
		fmt.Printf("byzantine: raising n=%d to the scenario floor of 24\n", n)
		n = 24
	}
	res := byzantineResult{Method: "byzantine", N: n, Adversarial: 6, Chunks: chunks, Seed: seed}
	for _, backend := range []string{"chord", "kademlia"} {
		fmt.Printf("--- backend=%s n=%d chunks=%d (2 persistent poisoners, 2 every-3rd poisoners, 1 load liar, 1 index spammer)\n",
			backend, n, chunks)
		r := runByzantineRun(backend, n, chunks, seed)
		fmt.Printf("wall time:                %v\n", time.Duration(r.WallSeconds*float64(time.Second)).Round(time.Millisecond))
		fmt.Printf("delivered (min honest):   %.2f%%\n", r.DeliveredPercentHonest)
		fmt.Printf("fetches:                  %d (p50=%.3fs p95=%.3fs p99=%.3fs)\n", r.Fetches, r.FetchP50, r.FetchP95, r.FetchP99)
		fmt.Printf("integrity rejects:        %d  polluted accepted: %d\n", r.IntegrityRejects, r.PollutedAccepted)
		fmt.Printf("poisoners quarantined:    %d/%d (union %v)\n", r.PoisonersCaught, r.PoisonersTotal, r.QuarantinedUnion)
		fmt.Printf("inserts rate-limited:     %d  rejected: %d  pollution reports: %d\n",
			r.InsertsRateLimited, r.InsertsRejected, r.PollutionReports)
		fmt.Printf("load reports clamped:     %d  manifest fetches: %d\n", r.LoadReportsClamped, r.ManifestFetches)
		fmt.Printf("wedged workers:           %d  injected: %d\n", r.WedgedWorkers, r.Injected)
		res.Runs = append(res.Runs, r)
	}

	if jsonOut != "" {
		if err := writeJSONAny(jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}

	// Acceptance: honest delivery holds, the choke point is absolute,
	// every poisoner got caught, the hardening visibly fired, and nothing
	// wedged.
	bad := false
	for _, r := range res.Runs {
		if r.DeliveredPercentHonest < 95 {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s honest delivery %.2f%% < 95%%\n", r.Backend, r.DeliveredPercentHonest)
			bad = true
		}
		if r.PollutedAccepted != 0 {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s accepted %d polluted chunks into buffers\n", r.Backend, r.PollutedAccepted)
			bad = true
		}
		if r.PoisonersCaught < r.PoisonersTotal {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s quarantined only %d/%d poisoners\n", r.Backend, r.PoisonersCaught, r.PoisonersTotal)
			bad = true
		}
		// No false positives: only the peers that actually served polluted
		// bytes may be quarantined. The load liar and the spammer degrade
		// service but never pollute; honest peers must never be slandered
		// into exclusion.
		if len(r.QuarantinedUnion) > r.PoisonersCaught {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s quarantined a non-poisoner: %v\n", r.Backend, r.QuarantinedUnion)
			bad = true
		}
		if r.IntegrityRejects == 0 {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s saw no integrity rejects; the poisoners never fired\n", r.Backend)
			bad = true
		}
		if r.InsertsRateLimited == 0 {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s never rate-limited the spammer\n", r.Backend)
			bad = true
		}
		if r.WedgedWorkers != 0 {
			fmt.Fprintf(os.Stderr, "dcosim: byzantine: backend %s left %d wedged workers\n", r.Backend, r.WedgedWorkers)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}
