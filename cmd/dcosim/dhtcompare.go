package main

// The "dhtcompare" method benchmarks the two DHT backends head to head on
// the real node stack under the same scenario: a flash-crowd join (every
// viewer arrives concurrently), a full bounded stream, and a mid-stream
// coordinator kill. For each backend it reports the three columns the
// backend swap is judged on — the lookup hop distribution, the control
// byte overhead (total transport bytes minus chunk payload bytes), and
// the coordinator recovery time (kill -> a surviving node's lookup for
// the victim's keyspace resolves to a survivor). This is what
// BENCH_PR7.json is generated from.

import (
	"fmt"
	"os"
	"sync"
	"time"

	"dco/internal/live"
	"dco/internal/telemetry"
	"dco/internal/transport"
)

// dhtBackendResult is one backend's run. Field names are stable —
// BENCH_PR7.json and CI trend checks parse them.
type dhtBackendResult struct {
	Backend          string  `json:"backend"`
	WallSeconds      float64 `json:"wall_seconds"`
	DeliveredPercent float64 `json:"delivered_percent"` // min over surviving viewers

	// Lookup hop distribution, summed over every node's
	// dco_dht_lookup_hops histogram.
	Lookups     uint64            `json:"lookups"`
	HopMean     float64           `json:"hop_mean"`
	HopP50      float64           `json:"hop_p50"`
	HopP95      float64           `json:"hop_p95"`
	HopByBucket map[string]uint64 `json:"hops_by_bucket"`

	// Control overhead: transport bytes out that are not chunk payload,
	// summed over every node.
	ControlBytes  uint64  `json:"control_bytes"`
	DataBytes     uint64  `json:"data_bytes"`
	OverheadRatio float64 `json:"overhead_ratio"` // control / data

	// Coordinator recovery: kill -> a survivor's FindOwner for the
	// victim's own ID resolves to a live member.
	RecoverySeconds float64 `json:"recovery_seconds"`
	Takeovers       uint64  `json:"takeovers"`
	LookupFailures  uint64  `json:"lookup_failures"`
}

// dhtCompareResult is the -json schema of a dhtcompare run.
type dhtCompareResult struct {
	Method   string             `json:"method"`
	N        int                `json:"n"`
	Chunks   int64              `json:"chunks"`
	Seed     int64              `json:"seed"`
	Backends []dhtBackendResult `json:"backends"`
}

// histQuantile estimates quantile q from cumulative bucket counts using
// bucket upper bounds (the Prometheus convention).
func histQuantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1] // +Inf bucket: report the last bound
		}
	}
	return bounds[len(bounds)-1]
}

// runDHTBackend executes the shared scenario on one backend.
func runDHTBackend(backend string, n int, chunks, seed int64) dhtBackendResult {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dcosim: dhtcompare(%s): %s\n", backend, fmt.Sprintf(format, args...))
		os.Exit(1)
	}
	_ = seed // the scenario is deterministic up to scheduling; seed is recorded for provenance

	cfg := live.DefaultNodeConfig()
	cfg.DHT = backend
	cfg.Channel.Period = 60 * time.Millisecond
	cfg.Channel.ChunkBits = 8 * 1024
	cfg.Channel.Count = chunks
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 500 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	cfg.RepublishEvery = 500 * time.Millisecond
	cfg.Replicas = 2
	cfg.ReplicateEvery = 25 * time.Millisecond
	cfg.AntiEntropyEvery = 250 * time.Millisecond

	f := transport.NewFabric()
	regs := make([]*telemetry.Registry, 0, n)
	mkNode := func(c live.Config) *live.Node {
		reg := telemetry.NewRegistry()
		c.Telemetry = reg
		nd, err := live.NewNode(c, func(h transport.Handler) (transport.Transport, error) {
			m := f.Attach(h)
			m.SetMetrics(transport.NewMetrics(reg))
			return m, nil
		})
		if err != nil {
			fail("%v", err)
		}
		regs = append(regs, reg)
		return nd
	}

	srcCfg := cfg
	srcCfg.Source = true
	src := mkNode(srcCfg)
	viewers := make([]*live.Node, 0, n-1)
	for i := 1; i < n; i++ {
		viewers = append(viewers, mkNode(cfg))
	}
	all := append([]*live.Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	// Flash-crowd arrival: every viewer joins concurrently.
	src.Start()
	start := time.Now()
	var joinWG sync.WaitGroup
	joinErr := make(chan error, len(viewers))
	for _, nd := range viewers {
		joinWG.Add(1)
		go func(nd *live.Node) {
			defer joinWG.Done()
			if err := nd.Join(src.Addr()); err != nil {
				joinErr <- err
			}
		}(nd)
	}
	joinWG.Wait()
	select {
	case err := <-joinErr:
		fail("join: %v", err)
	default:
	}
	for _, nd := range viewers {
		nd.Start()
	}

	// Mid-stream coordinator kill: a viewer in the middle of the arrival
	// order. Recovery is measured by polling a survivor's lookup for the
	// victim's own ID — the key most certainly inside the victim's range.
	time.Sleep(time.Duration(chunks) * cfg.Channel.Period / 3)
	victim := viewers[len(viewers)/2]
	victimKey := victim.ID()
	victimAddr := victim.Addr()
	survivors := make([]*live.Node, 0, len(viewers)-1)
	for _, v := range viewers {
		if v != victim {
			survivors = append(survivors, v)
		}
	}
	probe := survivors[0]
	killAt := time.Now()
	victim.Close()
	recoveryDeadline := time.Now().Add(60 * time.Second)
	for {
		owner, _, err := probe.FindOwner(victimKey)
		if err == nil && owner.Addr != victimAddr {
			break
		}
		if time.Now().After(recoveryDeadline) {
			fail("coordinator recovery did not complete within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recovery := time.Since(killAt)

	// Run the stream to completion on the survivors.
	streamDeadline := time.Now().Add(3 * time.Minute)
	for {
		done := true
		for _, v := range survivors {
			if int64(v.ChunkCount()) < chunks {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(streamDeadline) {
			fmt.Fprintf(os.Stderr, "dcosim: dhtcompare(%s): stream did not complete within the deadline\n", backend)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	wall := time.Since(start)

	res := dhtBackendResult{
		Backend:         backend,
		WallSeconds:     wall.Seconds(),
		RecoverySeconds: recovery.Seconds(),
		HopByBucket:     map[string]uint64{},
	}
	res.DeliveredPercent = 100
	for _, v := range survivors {
		p := 100 * float64(v.ChunkCount()) / float64(chunks)
		if p < res.DeliveredPercent {
			res.DeliveredPercent = p
		}
	}
	for _, nd := range all {
		st := nd.Stats()
		res.Takeovers += st.IndexTakeovers
		res.LookupFailures += st.LookupFailures
	}

	// Fold every node's registry: the hop histogram and the byte split.
	var bounds []float64
	var counts []uint64
	var hopSum float64
	for _, reg := range regs {
		snap := reg.Snapshot()
		if h, ok := snap.Histograms["dco_dht_lookup_hops"]; ok {
			if bounds == nil {
				bounds = h.Bounds
				counts = make([]uint64, len(h.Counts))
			}
			for i, c := range h.Counts {
				counts[i] += c
			}
			res.Lookups += h.Count
			hopSum += h.Sum
		}
		total := snap.Counters["dco_transport_bytes_out_total"]
		data := snap.Counters["dco_transport_data_bytes_out_total"]
		res.ControlBytes += total - data
		res.DataBytes += data
	}
	if res.Lookups > 0 {
		res.HopMean = hopSum / float64(res.Lookups)
		res.HopP50 = histQuantile(bounds, counts, res.Lookups, 0.50)
		res.HopP95 = histQuantile(bounds, counts, res.Lookups, 0.95)
	}
	for i, c := range counts {
		if i < len(bounds) {
			res.HopByBucket[fmt.Sprintf("le_%g", bounds[i])] = c
		} else {
			res.HopByBucket["le_inf"] = c
		}
	}
	if res.DataBytes > 0 {
		res.OverheadRatio = float64(res.ControlBytes) / float64(res.DataBytes)
	}
	return res
}

// runDHTCompare executes the head-to-head benchmark and exits the process.
func runDHTCompare(n int, chunks, seed int64, jsonOut string) {
	res := dhtCompareResult{Method: "dhtcompare", N: n, Chunks: chunks, Seed: seed}
	for _, backend := range []string{"chord", "kademlia"} {
		fmt.Printf("--- backend=%s n=%d chunks=%d (flash-crowd join, coordinator kill at t/3)\n", backend, n, chunks)
		b := runDHTBackend(backend, n, chunks, seed)
		fmt.Printf("wall time:               %v\n", time.Duration(b.WallSeconds*float64(time.Second)).Round(time.Millisecond))
		fmt.Printf("delivered (min viewer):  %.2f%%\n", b.DeliveredPercent)
		fmt.Printf("lookups:                 %d (hops mean=%.2f p50=%g p95=%g)\n", b.Lookups, b.HopMean, b.HopP50, b.HopP95)
		fmt.Printf("control bytes:           %d (data %d, overhead ratio %.3f)\n", b.ControlBytes, b.DataBytes, b.OverheadRatio)
		fmt.Printf("coordinator recovery:    %v (takeovers %d, lookup failures %d)\n",
			time.Duration(b.RecoverySeconds*float64(time.Second)).Round(time.Millisecond), b.Takeovers, b.LookupFailures)
		res.Backends = append(res.Backends, b)
	}

	if jsonOut != "" {
		if err := writeJSONAny(jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}
	for _, b := range res.Backends {
		if b.DeliveredPercent < 95 || b.Lookups == 0 || b.DataBytes == 0 {
			fmt.Fprintf(os.Stderr, "dcosim: dhtcompare: backend %s failed acceptance (delivered=%.2f lookups=%d data=%d)\n",
				b.Backend, b.DeliveredPercent, b.Lookups, b.DataBytes)
			os.Exit(1)
		}
	}
}
