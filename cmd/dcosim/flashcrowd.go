package main

// The "flashcrowd" method benchmarks the admission-control layer on the
// real node stack: n-1 viewers all join a 1-source stream within one chunk
// period while the source's upload budget covers only a couple of chunk
// serves per period. The run reports how the overload was absorbed —
// source bytes vs its paced budget, sheds and the retry hints they
// carried, and the delivered percentage the crowd still reached by feeding
// itself. This is what BENCH_PR4.json is generated from.

import (
	"fmt"
	"os"
	"sync"
	"time"

	"dco/internal/live"
	"dco/internal/transport"
)

// flashResult is the -json schema of a flash-crowd run. Field names are
// stable — BENCH_PR4.json and CI trend checks parse them.
type flashResult struct {
	Method           string  `json:"method"`
	N                int     `json:"n"`
	Chunks           int64   `json:"chunks"`
	SourceUpBps      int64   `json:"source_up_bps"`
	JoinSeconds      float64 `json:"join_seconds"` // how long the whole crowd took to arrive
	WallSeconds      float64 `json:"wall_seconds"`
	DeliveredPercent float64 `json:"delivered_percent"` // min over viewers
	SourceServed     uint64  `json:"source_served_chunks"`
	SourceBytes      uint64  `json:"source_served_bytes"`
	BudgetBytes      float64 `json:"source_budget_bytes"` // UpBps x wall + burst
	Sheds            uint64  `json:"sheds"`               // Busy rejections at the source
	PacedServes      uint64  `json:"paced_serves"`
	BusyNacks        uint64  `json:"busy_nacks"`          // Busy responses seen by viewers
	HintlessNacks    uint64  `json:"busy_nacks_hintless"` // of those, without RetryAfterMs (want 0)
	Abandoned        uint64  `json:"chunks_abandoned"`
}

// runFlashCrowd executes the flash-crowd benchmark and exits the process.
func runFlashCrowd(n int, chunks, srcUpBps int64, jsonOut string) {
	const chunkBytes = 1024
	cfg := live.DefaultNodeConfig()
	cfg.Channel.Period = 150 * time.Millisecond
	cfg.Channel.ChunkBits = chunkBytes * 8
	cfg.Channel.Count = chunks
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 500 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	cfg.RepublishEvery = 500 * time.Millisecond
	cfg.FetchDeadlineChunks = 150

	f := transport.NewFabric()
	attach := func(h transport.Handler) (transport.Transport, error) {
		return f.Attach(h), nil
	}
	srcCfg := cfg
	srcCfg.Source = true
	srcCfg.UpBps = srcUpBps
	srcCfg.AdmitQueue = 8
	src, err := live.NewNode(srcCfg, attach)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcosim: flashcrowd: %v\n", err)
		os.Exit(1)
	}
	viewers := make([]*live.Node, 0, n-1)
	for i := 1; i < n; i++ {
		nd, err := live.NewNode(cfg, attach)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: flashcrowd: %v\n", err)
			os.Exit(1)
		}
		viewers = append(viewers, nd)
	}
	all := append([]*live.Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	src.Start()
	start := time.Now()
	// The crowd: every viewer joins and starts fetching concurrently.
	var wg sync.WaitGroup
	var joinErr error
	var joinMu sync.Mutex
	for _, nd := range viewers {
		wg.Add(1)
		go func(nd *live.Node) {
			defer wg.Done()
			if err := nd.Join(src.Addr()); err != nil {
				joinMu.Lock()
				joinErr = err
				joinMu.Unlock()
				return
			}
			nd.Start()
		}(nd)
	}
	wg.Wait()
	joinDur := time.Since(start)
	if joinErr != nil {
		fmt.Fprintf(os.Stderr, "dcosim: flashcrowd: join: %v\n", joinErr)
		os.Exit(1)
	}

	deadline := time.Now().Add(3 * time.Minute)
	want := chunks * 95 / 100
	for {
		done := true
		for _, v := range viewers {
			if int64(v.ChunkCount()) < want {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "dcosim: flashcrowd: stream did not complete within the deadline\n")
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	wall := time.Since(start)

	res := flashResult{
		Method:      "flashcrowd",
		N:           n,
		Chunks:      chunks,
		SourceUpBps: srcUpBps,
		JoinSeconds: joinDur.Seconds(),
		WallSeconds: wall.Seconds(),
	}
	srcStats := src.Stats()
	res.SourceServed = srcStats.ChunksServed
	res.SourceBytes = srcStats.ChunksServed * chunkBytes
	burst := float64(4 * chunkBytes)
	if q := float64(srcUpBps) / 8 / 4; q > burst {
		burst = q
	}
	res.BudgetBytes = float64(srcUpBps)/8*wall.Seconds() + burst
	res.Sheds = srcStats.ChunksShedBusy
	res.PacedServes = srcStats.PacedServes
	res.DeliveredPercent = 100
	for _, v := range viewers {
		p := 100 * float64(v.ChunkCount()) / float64(chunks)
		if p < res.DeliveredPercent {
			res.DeliveredPercent = p
		}
		st := v.Stats()
		res.BusyNacks += st.BusyNacksSeen
		res.HintlessNacks += st.BusyNacksHintless
		res.Abandoned += st.ChunksAbandoned
	}

	fmt.Printf("method=flashcrowd n=%d chunks=%d source_upbps=%d\n", n, chunks, srcUpBps)
	fmt.Printf("crowd join time:         %v\n", joinDur.Round(time.Millisecond))
	fmt.Printf("wall time:               %v\n", wall.Round(time.Millisecond))
	fmt.Printf("delivered (min viewer):  %.2f%%\n", res.DeliveredPercent)
	fmt.Printf("source served:           %d chunks (%d bytes; paced budget %.0f bytes)\n",
		res.SourceServed, res.SourceBytes, res.BudgetBytes)
	fmt.Printf("sheds at source:         %d (paced serves: %d)\n", res.Sheds, res.PacedServes)
	fmt.Printf("busy nacks at viewers:   %d (%d without retry hint)\n", res.BusyNacks, res.HintlessNacks)
	fmt.Printf("chunks abandoned:        %d\n", res.Abandoned)

	if jsonOut != "" {
		if err := writeJSONAny(jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}
	if res.DeliveredPercent < 95 || res.HintlessNacks > 0 || float64(res.SourceBytes) > res.BudgetBytes {
		os.Exit(1)
	}
}
