// Command dcosim runs one live-streaming simulation — DCO or a baseline —
// and prints the paper's four metrics.
//
// Usage:
//
//	dcosim -method dco -n 512 -neighbors 32 -chunks 100
//	dcosim -method pull -n 256 -neighbors 16
//	dcosim -method dco -hierarchy -coordinators 16
//	dcosim -method dco -churn -life 60s -horizon 300s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dco/internal/churn"
	"dco/internal/core"
	"dco/internal/metrics"
	"dco/internal/overlay"
	"dco/internal/sim"
	"dco/internal/simnet"
	"dco/internal/trace"
)

func main() {
	var (
		method    = flag.String("method", "dco", "dco | pull | push | tree | live | flashcrowd | splitbrain | dhtcompare | graychaos | byzantine")
		n         = flag.Int("n", 512, "network size (server + viewers)")
		neighbors = flag.Int("neighbors", 32, "neighbors per node (tree: out-degree)")
		chunks    = flag.Int64("chunks", 100, "stream length in chunks")
		seed      = flag.Int64("seed", 42, "simulation seed")
		horizon   = flag.Duration("horizon", 400*time.Second, "simulation cutoff")
		doChurn   = flag.Bool("churn", false, "enable exponential churn")
		life      = flag.Duration("life", 60*time.Second, "mean node lifetime under churn")
		hier      = flag.Bool("hierarchy", false, "DCO only: two-tier mode")
		coords    = flag.Int("coordinators", 8, "DCO hierarchy: initial coordinators")
		fingers   = flag.Bool("fingers", false, "DCO only: Chord finger routing")
		showTrace = flag.Bool("trace", false, "DCO only: print a protocol-event summary")
		jsonOut   = flag.String("json", "", "also write machine-readable results to this file ('-' = stdout)")
		replicas  = flag.Int("replicas", 0, "live only: index replication factor (0 disables)")
		kill      = flag.Bool("kill", false, "live only: kill one coordinator mid-stream")
		srcUpBps  = flag.Int64("src-upbps", 120_000, "flashcrowd only: source upload budget (bits/sec)")
	)
	flag.Parse()

	if *method == "live" {
		// The live method runs the real node stack, not the event kernel; it
		// reports its own metrics and exits.
		runLive(*n, *chunks, *replicas, *kill, *jsonOut)
		return
	}
	if *method == "flashcrowd" {
		// Also the real node stack: the admission-control stress scenario.
		runFlashCrowd(*n, *chunks, *srcUpBps, *jsonOut)
		return
	}
	if *method == "dhtcompare" {
		// Also the real node stack: the same flash-crowd + coordinator-kill
		// scenario run on both DHT backends, reporting lookup hops, control
		// overhead, and recovery time side by side.
		runDHTCompare(*n, *chunks, *seed, *jsonOut)
		return
	}
	if *method == "graychaos" {
		// Also the real node stack: a seeded mix of slow lanes, mid-frame
		// stalls, and one-way partitions at t/3, on both backends, with
		// hedging off then on — the gray-failure acceptance scenario.
		runGrayChaos(*n, *chunks, *seed, *jsonOut)
		return
	}
	if *method == "byzantine" {
		// Also the real node stack: 25% of the swarm adversarial — chunk
		// poisoners, a lying load reporter, and an index spammer — on both
		// backends; the pollution-defense acceptance scenario.
		runByzantine(*n, *chunks, *seed, *jsonOut)
		return
	}
	if *method == "splitbrain" {
		// Also the real node stack: partition the swarm mid-stream, heal,
		// and measure the census-driven ring merge and fill recovery.
		runSplitBrain(*n, *chunks, *seed, *jsonOut)
		return
	}

	k := sim.NewKernel(*seed)
	var (
		log      *metrics.DeliveryLog
		net      *simnet.Network
		end      time.Duration
		received int64
	)

	switch *method {
	case "dco":
		cfg := core.DefaultConfig()
		cfg.Neighbors = *neighbors
		cfg.Stream.Count = *chunks
		cfg.UseFingers = *fingers
		cfg.Maintenance = *doChurn
		cfg.Hierarchy.Enabled = *hier
		cfg.Hierarchy.InitialCoordinators = *coords
		s := core.NewSystem(k, cfg, *n)
		var rec *trace.Recorder
		if *showTrace {
			rec = trace.New(4096)
			s.Trace = rec
		}
		if *doChurn {
			s.DisableCompletionStop()
			d := churn.NewDriver(k, churn.Config{MeanLife: *life, MeanJoin: *life / time.Duration(*n-1), GracefulFrac: 0.5},
				func() churn.Peer { return s.SpawnPeer() })
			for _, p := range s.Peers() {
				if p.Alive() && p.ID() != s.Server().ID() {
					d.Track(p)
				}
			}
			d.StartArrivals()
		}
		end = s.Run(*horizon)
		log, net, received = s.Log, s.Net, s.ReceivedTotal()
		fmt.Printf("coordinators: %d  dropped-routes: %d\n", len(s.Coordinators()), s.DroppedRoutes())
		if rec != nil {
			fmt.Println("protocol events:")
			rec.Summary(os.Stdout)
		}
	case "pull", "push", "tree":
		kind := overlay.Pull
		switch *method {
		case "push":
			kind = overlay.Push
		case "tree":
			kind = overlay.Tree
		}
		cfg := overlay.DefaultConfig(kind)
		cfg.Neighbors = *neighbors
		cfg.Stream.Count = *chunks
		s := overlay.NewSystem(k, cfg, *n)
		if *doChurn {
			s.DisableCompletionStop()
			d := churn.NewDriver(k, churn.Config{MeanLife: *life, MeanJoin: *life / time.Duration(*n-1), GracefulFrac: 0.5},
				func() churn.Peer { return s.SpawnPeer() })
			for _, nd := range s.ViewerPeers() {
				d.Track(nd)
			}
			d.StartArrivals()
		}
		end = s.Run(*horizon)
		log, net, received = s.Log, s.Net, s.ReceivedTotal()
		fmt.Printf("duplicate chunks: %d\n", s.Duplicates())
	default:
		fmt.Fprintf(os.Stderr, "dcosim: unknown method %q\n", *method)
		os.Exit(2)
	}

	mean, complete, total := log.MeshDelay()
	dataMsgs, dataBits := net.DataStats()
	fmt.Printf("method=%s n=%d neighbors=%d chunks=%d churn=%v\n", *method, *n, *neighbors, *chunks, *doChurn)
	fmt.Printf("virtual end time:        %v\n", end)
	fmt.Printf("chunk deliveries:        %d\n", received)
	fmt.Printf("mesh delay (complete):   %v over %d/%d chunks\n", mean, complete, total)
	fmt.Printf("fill ratio @2s:          %.3f\n", log.MeanFillRatioAfter(2*time.Second))
	fmt.Printf("fill ratio @10s:         %.3f\n", log.MeanFillRatioAfter(10*time.Second))
	fmt.Printf("extra overhead:          %d messages\n", net.Overhead())
	fmt.Printf("chunk traffic:           %d transfers, %.1f Mbit\n", dataMsgs, float64(dataBits)/1e6)
	fmt.Printf("%% received (at horizon): %.2f%%\n", log.ReceivedPercent(*horizon))

	if *jsonOut != "" {
		res := simResult{
			Method:          *method,
			N:               *n,
			Neighbors:       *neighbors,
			Chunks:          *chunks,
			Seed:            *seed,
			Churn:           *doChurn,
			EndSeconds:      end.Seconds(),
			Deliveries:      received,
			MeshDelaySec:    mean.Seconds(),
			CompleteChunks:  complete,
			TotalChunks:     total,
			FillRatio2s:     log.MeanFillRatioAfter(2 * time.Second),
			FillRatio10s:    log.MeanFillRatioAfter(10 * time.Second),
			OverheadMsgs:    net.Overhead(),
			DataTransfers:   dataMsgs,
			DataMbit:        float64(dataBits) / 1e6,
			ReceivedPercent: log.ReceivedPercent(*horizon),
		}
		if err := writeJSON(*jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}
}

// simResult is the -json output schema: the paper's four metrics plus the
// run parameters that produced them. Field names are stable — external
// tooling (BENCH_PR2.json, CI trend checks) parses them.
type simResult struct {
	Method          string  `json:"method"`
	N               int     `json:"n"`
	Neighbors       int     `json:"neighbors"`
	Chunks          int64   `json:"chunks"`
	Seed            int64   `json:"seed"`
	Churn           bool    `json:"churn"`
	EndSeconds      float64 `json:"end_seconds"`
	Deliveries      int64   `json:"deliveries"`
	MeshDelaySec    float64 `json:"mesh_delay_seconds"`
	CompleteChunks  int64   `json:"complete_chunks"`
	TotalChunks     int64   `json:"total_chunks"`
	FillRatio2s     float64 `json:"fill_ratio_2s"`
	FillRatio10s    float64 `json:"fill_ratio_10s"`
	OverheadMsgs    uint64  `json:"overhead_messages"`
	DataTransfers   uint64  `json:"data_transfers"`
	DataMbit        float64 `json:"data_mbit"`
	ReceivedPercent float64 `json:"received_percent"`
}

func writeJSON(path string, res simResult) error { return writeJSONAny(path, res) }

func writeJSONAny(path string, res any) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
