package main

// The "live" method benchmarks the real node stack (internal/live over the
// in-memory fabric) instead of the discrete-event simulator: a source plus
// n-1 viewers stream a bounded channel to completion, optionally killing
// one coordinator mid-stream, and the run reports the replication layer's
// cost and effect — index-insert bytes vs replication bytes (write
// amplification), digest traffic, takeovers, and lookup failures. This is
// what BENCH_PR3.json is generated from: an r=0 run is the PR 2 baseline,
// an r>0 run shows the overhead replication adds and the outage it removes.

import (
	"fmt"
	"os"
	"time"

	"dco/internal/live"
	"dco/internal/transport"
)

// liveResult is the -json schema of a live-stack run. Field names are
// stable — BENCH_PR3.json and CI trend checks parse them.
type liveResult struct {
	Method           string  `json:"method"`
	N                int     `json:"n"`
	Chunks           int64   `json:"chunks"`
	Replicas         int     `json:"replicas"`
	KilledCoord      bool    `json:"killed_coordinator"`
	WallSeconds      float64 `json:"wall_seconds"`
	DeliveredPercent float64 `json:"delivered_percent"` // min over surviving viewers
	LookupFailures   uint64  `json:"lookup_failures"`
	Takeovers        uint64  `json:"takeovers"`
	ReplicaOps       uint64  `json:"replica_ops_applied"`
	DigestRepairs    uint64  `json:"digest_repairs"`
	IndexInsertBytes uint64  `json:"index_insert_bytes"`
	ReplicateBytes   uint64  `json:"replicate_bytes"`
	DigestBytes      uint64  `json:"digest_bytes"`
	// InsertAmplification = (insert + replicate bytes) / insert bytes: how
	// many times each index byte is written ring-wide. Bounded by r+1 —
	// each op goes to the owner once and to at most r replicas.
	InsertAmplification float64 `json:"insert_amplification"`
}

// runLive executes the live-stack benchmark and exits the process.
func runLive(n int, chunks int64, replicas int, kill bool, jsonOut string) {
	cfg := live.DefaultNodeConfig()
	cfg.Channel.Period = 30 * time.Millisecond
	cfg.Channel.ChunkBits = 8 * 1024
	cfg.Channel.Count = chunks
	cfg.StabilizeEvery = 20 * time.Millisecond
	cfg.FixFingersEvery = 10 * time.Millisecond
	cfg.LookupWait = 500 * time.Millisecond
	cfg.CallTimeout = 2 * time.Second
	cfg.RepublishEvery = 500 * time.Millisecond
	cfg.Replicas = replicas
	cfg.ReplicateEvery = 25 * time.Millisecond
	cfg.AntiEntropyEvery = 250 * time.Millisecond

	f := transport.NewFabric()
	attach := func(h transport.Handler) (transport.Transport, error) {
		return f.Attach(h), nil
	}
	srcCfg := cfg
	srcCfg.Source = true
	src, err := live.NewNode(srcCfg, attach)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dcosim: live: %v\n", err)
		os.Exit(1)
	}
	var viewers []*live.Node
	for i := 1; i < n; i++ {
		nd, err := live.NewNode(cfg, attach)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: live: %v\n", err)
			os.Exit(1)
		}
		if err := nd.Join(src.Addr()); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: live: join: %v\n", err)
			os.Exit(1)
		}
		viewers = append(viewers, nd)
	}
	start := time.Now()
	src.Start()
	for _, v := range viewers {
		v.Start()
	}
	all := append([]*live.Node{src}, viewers...)
	defer func() {
		for _, nd := range all {
			nd.Close()
		}
	}()

	// Optionally kill one viewer (= one coordinator: every member owns a
	// slice of the key space) once the stream is under way.
	watching := viewers
	var victim *live.Node
	if kill && len(viewers) > 2 {
		time.Sleep(time.Duration(chunks) * cfg.Channel.Period / 3)
		victim = viewers[len(viewers)/2]
		victim.Close()
		watching = nil
		for _, v := range viewers {
			if v != victim {
				watching = append(watching, v)
			}
		}
	}

	deadline := time.Now().Add(3 * time.Minute)
	for {
		done := true
		for _, v := range watching {
			if int64(v.ChunkCount()) < chunks {
				done = false
				break
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "dcosim: live: stream did not complete within the deadline\n")
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	wall := time.Since(start)

	res := liveResult{
		Method:      "live",
		N:           n,
		Chunks:      chunks,
		Replicas:    replicas,
		KilledCoord: victim != nil,
		WallSeconds: wall.Seconds(),
	}
	res.DeliveredPercent = 100
	for _, v := range watching {
		p := 100 * float64(v.ChunkCount()) / float64(chunks)
		if p < res.DeliveredPercent {
			res.DeliveredPercent = p
		}
	}
	for _, nd := range all {
		st := nd.Stats()
		res.LookupFailures += st.LookupFailures
		res.Takeovers += st.IndexTakeovers
		res.ReplicaOps += st.ReplicaOpsApplied
		res.DigestRepairs += st.DigestRepairs
		res.IndexInsertBytes += st.IndexInsertBytes
		res.ReplicateBytes += st.ReplicateBytes
		res.DigestBytes += st.DigestBytes
	}
	if res.IndexInsertBytes > 0 {
		res.InsertAmplification = float64(res.IndexInsertBytes+res.ReplicateBytes) / float64(res.IndexInsertBytes)
	}

	fmt.Printf("method=live n=%d chunks=%d replicas=%d killed=%v\n", n, chunks, replicas, res.KilledCoord)
	fmt.Printf("wall time:               %v\n", wall.Round(time.Millisecond))
	fmt.Printf("delivered (min viewer):  %.2f%%\n", res.DeliveredPercent)
	fmt.Printf("lookup failures:         %d\n", res.LookupFailures)
	fmt.Printf("takeovers:               %d (replica ops applied: %d, digest repairs: %d)\n",
		res.Takeovers, res.ReplicaOps, res.DigestRepairs)
	fmt.Printf("index insert bytes:      %d\n", res.IndexInsertBytes)
	fmt.Printf("replication bytes:       %d\n", res.ReplicateBytes)
	fmt.Printf("digest bytes:            %d\n", res.DigestBytes)
	fmt.Printf("insert amplification:    %.2fx (bound: %dx)\n", res.InsertAmplification, replicas+1)

	if jsonOut != "" {
		if err := writeJSONAny(jsonOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "dcosim: json: %v\n", err)
			os.Exit(1)
		}
	}
	if res.DeliveredPercent < 100 || (replicas > 0 && res.InsertAmplification >= float64(replicas+1)) {
		os.Exit(1)
	}
}
