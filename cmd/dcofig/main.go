// Command dcofig regenerates the paper's evaluation figures (Figs. 5–12)
// as text tables.
//
// Usage:
//
//	dcofig -fig 8                 # one figure at paper scale (512 nodes)
//	dcofig -all -n 128 -chunks 50 # every figure, scaled down
//	dcofig -fig 6 -delta 8s       # Fig. 6 at a different measurement offset
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dco/internal/experiment"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate (5..12); empty with -all runs everything")
		all      = flag.Bool("all", false, "run every figure")
		ablation = flag.String("ablation", "", "run one ablation (pending|selection|fingers|prefetch) or 'all'")
		n        = flag.Int("n", 0, "network size (default: the paper's 512)")
		chunks   = flag.Int64("chunks", 0, "stream length in chunks (default: paper's value per figure)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		horizon  = flag.Duration("horizon", 0, "simulation cutoff (default per figure)")
		delta    = flag.Duration("delta", 0, "Fig. 6 only: fill-ratio measurement offset (default 2s)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	p := experiment.Params{N: *n, Chunks: *chunks, Seed: *seed, Horizon: *horizon}

	run := func(id string) {
		start := time.Now()
		var r *experiment.Result
		if id == "6" && *delta > 0 {
			r = experiment.FillDelta(p, *delta)
		} else {
			f, ok := experiment.Figures[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "dcofig: unknown figure %q (valid: 5..12)\n", id)
				os.Exit(2)
			}
			r = f(p)
		}
		if *csv {
			r.FprintCSV(os.Stdout)
		} else {
			r.Fprint(os.Stdout)
			fmt.Printf("(%s in %v)\n\n", r.Figure, time.Since(start).Round(time.Millisecond))
		}
	}

	runAblation := func(id string) {
		f, ok := experiment.Ablations[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "dcofig: unknown ablation %q\n", id)
			os.Exit(2)
		}
		start := time.Now()
		r := f(p)
		if *csv {
			r.FprintCSV(os.Stdout)
		} else {
			r.Fprint(os.Stdout)
			fmt.Printf("(%s in %v)\n\n", r.Figure, time.Since(start).Round(time.Millisecond))
		}
	}

	switch {
	case *ablation == "all":
		for _, id := range experiment.AblationOrder {
			runAblation(id)
		}
	case *ablation != "":
		runAblation(*ablation)
	case *all:
		for _, id := range experiment.FigureOrder {
			run(id)
		}
	case *fig != "":
		run(*fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
