package main

import (
	"bytes"
	"testing"
)

func TestOrderedSinkReorders(t *testing.T) {
	var buf bytes.Buffer
	s := newOrderedSink(&buf, 0)
	s.put(2, []byte("cc"))
	s.put(0, []byte("aa"))
	if buf.String() != "aa" {
		t.Fatalf("premature write: %q", buf.String())
	}
	s.put(1, []byte("bb"))
	if buf.String() != "aabbcc" {
		t.Fatalf("out-of-order output: %q", buf.String())
	}
}

func TestOrderedSinkIgnoresDuplicatesAndPast(t *testing.T) {
	var buf bytes.Buffer
	s := newOrderedSink(&buf, 5)
	s.put(4, []byte("old")) // before the start sequence
	s.put(5, []byte("x"))
	s.put(5, []byte("dup")) // already flushed
	s.put(6, []byte("y"))
	if buf.String() != "xy" {
		t.Fatalf("got %q, want %q", buf.String(), "xy")
	}
}

func TestOrderedSinkStartOffset(t *testing.T) {
	var buf bytes.Buffer
	s := newOrderedSink(&buf, 10)
	s.put(11, []byte("b"))
	s.put(10, []byte("a"))
	s.put(12, []byte("c"))
	if buf.String() != "abc" {
		t.Fatalf("offset stream wrong: %q", buf.String())
	}
}
