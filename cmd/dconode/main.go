// Command dconode runs a live DCO node over real TCP: a stream source, or a
// viewer that joins an existing ring and watches the channel.
//
// Start a source:
//
//	dconode -listen 127.0.0.1:7000 -source -chunks 100
//
// Join viewers (any ring member works as bootstrap):
//
//	dconode -listen 127.0.0.1:7001 -join 127.0.0.1:7000
//	dconode -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Each node prints progress; Ctrl-C leaves the ring gracefully.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dco/internal/faulty"
	"dco/internal/live"
	"dco/internal/stream"
	"dco/internal/telemetry"
	"dco/internal/transport"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		join      = flag.String("join", "", "comma-separated bootstrap addresses of ring members (omit for the first node)")
		source    = flag.Bool("source", false, "act as the stream source")
		channel   = flag.String("channel", "LIVE", "channel name")
		chunks    = flag.Int64("chunks", 0, "stream length (0 = endless)")
		chunkKB   = flag.Int64("chunk-kb", 64, "chunk size in KiB")
		period    = flag.Duration("period", 500*time.Millisecond, "chunk period")
		startSeq  = flag.Int64("start", 0, "first chunk to fetch (viewers)")
		verbosity = flag.Int("v", 1, "0 = quiet, 1 = progress, 2 = per chunk")
		out       = flag.String("out", "", "write received chunks, in order, to this file ('-' = stdout)")

		// DHT kernel (see DESIGN.md, "DHT kernel").
		dhtBackend = flag.String("dht", "", "coordinator substrate: chord or kademlia (empty = $DCO_DHT, then chord)")
		kadK       = flag.Int("kad-k", 0, "kademlia bucket size / replica-set width k (0 = default 16)")
		kadAlpha   = flag.Int("kad-alpha", 0, "kademlia lookup parallelism alpha (0 = default 3)")
		kadRefresh = flag.Duration("kad-refresh", 0, "kademlia bucket refresh period (0 = derive from the stabilize cadence)")

		// Observability (see DESIGN.md, "Observability").
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars.json, /debug/trace and /debug/pprof/ on this address (empty disables)")
		traceCap    = flag.Int("trace-cap", 4096, "protocol-event trace ring capacity")

		// Resilience knobs (see DESIGN.md, "Failure model of the live stack").
		retryAttempts   = flag.Int("retry-attempts", 3, "attempts per idempotent RPC (1 disables retries)")
		retryBackoff    = flag.Duration("retry-backoff", 30*time.Millisecond, "initial retry backoff")
		retryMaxBackoff = flag.Duration("retry-max-backoff", 500*time.Millisecond, "retry backoff cap")
		retryBudget     = flag.Duration("retry-budget", 3*time.Second, "total wall-clock budget per retried RPC (0 = attempts only)")
		breakerThresh   = flag.Int("breaker-threshold", 5, "consecutive failures that open a peer's circuit (0 disables the breaker)")
		breakerCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open circuit rejects before a half-open probe")
		providerCool    = flag.Duration("provider-cooldown", 2*time.Second, "blacklist duration for a provider that failed a chunk transfer (0 disables)")
		joinAttempts    = flag.Int("join-attempts", 3, "rounds over the -join list before giving up")
		maxFrameKB      = flag.Int("max-frame-kb", 0, "per-connection frame size cap in KiB (0 = wire protocol default)")
		ioReadTimeout   = flag.Duration("io-read-timeout", 0, "per-connection TCP read deadline; idle server conns are reclaimed after this (0 = 2m default)")
		ioWriteTimeout  = flag.Duration("io-write-timeout", 0, "per-frame TCP write deadline (0 = 30s default)")

		// Gray-failure defense (see DESIGN.md, "Gray failures: hedging,
		// health scoring & deadline propagation").
		hedge         = flag.Bool("hedge", true, "hedge slow chunk fetches to the next-best provider, first response wins")
		hedgeMin      = flag.Duration("hedge-min", 20*time.Millisecond, "floor for the hedge trigger delay derived from the peer's latency EWMA")
		hedgeMax      = flag.Duration("hedge-max", 300*time.Millisecond, "ceiling for the hedge trigger delay (also used against peers with no history)")
		healthHalf    = flag.Duration("health-halflife", 5*time.Second, "decay half-life of peer suspicion scores (0 = default)")
		healthSuspect = flag.Float64("health-suspect", 3, "suspicion score at which a peer counts as suspected and is deprioritized (0 = default)")

		// Overload & admission control (see DESIGN.md, "Overload & admission
		// control").
		upBps         = flag.Int64("up-bps", 10_000_000, "upload budget in bits/sec, enforced on the chunk serve path (0 = unlimited)")
		admitQueue    = flag.Int("admit-queue", 0, "bound on chunk serves queued behind the upload pacer; excess is shed Busy+RetryAfterMs (0 = derive)")
		admitBurst    = flag.Int64("admit-burst", 0, "pacer burst allowance in bytes (0 = derive from chunk size and -up-bps)")
		admitMaxWait  = flag.Duration("admit-max-wait", 600*time.Millisecond, "cap on how long one admitted serve may queue behind the pacer")
		fetchDeadline = flag.Int("fetch-deadline", 0, "viewer playback horizon in chunk periods; chunks not fetched in time are abandoned (0 = retry forever)")
		loadReport    = flag.Bool("load-report", true, "piggyback this node's load factor on inserts and chunk responses (steers capacity-weighted selection)")

		// Replication & repair (see DESIGN.md, "Replication & repair").
		replicas    = flag.Int("replicas", 2, "index replication factor: successors mirroring each coordinator's entries (0 disables)")
		replEvery   = flag.Duration("replicate-every", 150*time.Millisecond, "how often queued index ops are batch-flushed to the replicas")
		antiEntropy = flag.Duration("antientropy-every", 3*time.Second, "digest-exchange period repairing replicas that missed batches")
		indexTTL    = flag.Duration("index-ttl", 45*time.Second, "provider lease in the chunk index; republishes refresh it (0 disables expiry)")

		// Ring census & split-brain merge (see DESIGN.md, "Partitions &
		// ring merge").
		censusEvery  = flag.Duration("census-every", 2*time.Second, "ring-census period probing cached members outside the ring view (0 disables split-brain detection)")
		censusProbes = flag.Int("census-probes", 2, "cached members probed per census round")
		memberCache  = flag.Int("member-cache", 128, "bounded cache of previously-seen ring members feeding the census")

		// Pollution defense (see DESIGN.md, "Threat model & pollution
		// defense").
		manifestWindow      = flag.Int("manifest-window", 0, "verified chunk-manifest rows kept in memory (0 = default 4096)")
		integrityQuarantine = flag.Float64("integrity-quarantine", 0, "integrity demerits that quarantine a peer; <0 disables quarantine (0 = default 3)")
		quarantineTTL       = flag.Duration("quarantine-ttl", 0, "how long a quarantined peer stays excluded (0 = default 30s)")
		insertRate          = flag.Float64("insert-rate", 0, "index registrations accepted per second per holder, burst 2x; <0 disables (0 = default 200)")
		insertHorizon       = flag.Int("insert-horizon", 0, "chunks past the verified live edge an index registration may claim; <0 disables (0 = default 1024)")

		// Fault injection (testing/chaos drills; off by default).
		faultSeed     = flag.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
		faultDrop     = flag.Float64("fault-drop", 0, "probability a call is dropped (0 disables)")
		faultRefuse   = flag.Float64("fault-refuse", 0, "probability a call is refused immediately")
		faultDup      = flag.Float64("fault-dup", 0, "probability a call is delivered twice")
		faultDelay    = flag.Float64("fault-delay", 0, "probability a call is delayed")
		faultMaxDelay = flag.Duration("fault-max-delay", 200*time.Millisecond, "upper bound for injected delays")
		faultCorrupt  = flag.Float64("fault-corrupt", 0, "probability a delivered chunk payload has one byte flipped")
	)
	flag.Parse()

	cfg := live.DefaultNodeConfig()
	if *dhtBackend != "" {
		cfg.DHT = *dhtBackend
	}
	cfg.KadK = *kadK
	cfg.KadAlpha = *kadAlpha
	cfg.KadRefreshEvery = *kadRefresh
	cfg.Source = *source
	cfg.StartSeq = *startSeq
	cfg.Channel = stream.Params{
		Channel:   *channel,
		ChunkBits: *chunkKB * 8 * 1024,
		Period:    *period,
		Count:     *chunks,
	}
	cfg.Retry.MaxAttempts = *retryAttempts
	cfg.Retry.InitialBackoff = *retryBackoff
	cfg.Retry.MaxBackoff = *retryMaxBackoff
	cfg.Retry.Budget = *retryBudget
	cfg.Breaker.Threshold = *breakerThresh
	cfg.Breaker.Cooldown = *breakerCooldown
	cfg.ProviderCooldown = *providerCool
	cfg.JoinAttempts = *joinAttempts
	cfg.IOReadTimeout = *ioReadTimeout
	cfg.IOWriteTimeout = *ioWriteTimeout
	cfg.Hedge = *hedge
	cfg.HedgeMinDelay = *hedgeMin
	cfg.HedgeMaxDelay = *hedgeMax
	cfg.HealthHalfLife = *healthHalf
	cfg.HealthSuspect = *healthSuspect
	cfg.UpBps = *upBps
	cfg.AdmitQueue = *admitQueue
	cfg.AdmitBurst = *admitBurst
	cfg.AdmitMaxWait = *admitMaxWait
	cfg.FetchDeadlineChunks = *fetchDeadline
	cfg.LoadReport = *loadReport
	cfg.Replicas = *replicas
	cfg.ReplicateEvery = *replEvery
	cfg.AntiEntropyEvery = *antiEntropy
	cfg.IndexTTL = *indexTTL
	cfg.CensusEvery = *censusEvery
	cfg.CensusProbes = *censusProbes
	cfg.MemberCacheSize = *memberCache
	if *manifestWindow != 0 {
		cfg.ManifestWindow = *manifestWindow
	}
	if *integrityQuarantine != 0 {
		cfg.QuarantineThreshold = *integrityQuarantine
	}
	if *quarantineTTL != 0 {
		cfg.QuarantineTTL = *quarantineTTL
	}
	if *insertRate != 0 {
		cfg.InsertRate = *insertRate
	}
	if *insertHorizon != 0 {
		cfg.InsertHorizon = *insertHorizon
	}

	// One registry + trace per process: the node, the transport and the
	// exposition server all share it.
	var (
		reg  *telemetry.Registry
		tr   *telemetry.Trace
		tm   *transport.Metrics
		tsrv *telemetry.Server
	)
	if *metricsAddr != "" {
		reg = telemetry.NewRegistry()
		tr = telemetry.NewTrace(*traceCap)
		tm = transport.NewMetrics(reg)
		cfg.Telemetry = reg
		cfg.Trace = tr
	}

	var inj *faulty.Injector
	if *faultDrop > 0 || *faultRefuse > 0 || *faultDup > 0 || *faultDelay > 0 || *faultCorrupt > 0 {
		inj = faulty.NewInjector(*faultSeed)
		inj.SetDefaultRule(faulty.Rule{
			Drop:      *faultDrop,
			Refuse:    *faultRefuse,
			Duplicate: *faultDup,
			Delay:     *faultDelay,
			DelayBy:   *faultMaxDelay,
			Corrupt:   *faultCorrupt,
		})
	}

	var sink *orderedSink
	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dconode: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		sink = newOrderedSink(w, *startSeq)
	}
	cfg.OnChunk = func(seq int64, data []byte) {
		if *verbosity >= 2 {
			fmt.Printf("chunk %d (%d bytes)\n", seq, len(data))
		}
		if sink != nil {
			sink.put(seq, data)
		}
	}

	node, err := live.NewNode(cfg, func(h transport.Handler) (transport.Transport, error) {
		tcp, err := transport.ListenTCP(*listen, h)
		if err != nil {
			return nil, err
		}
		if *maxFrameKB > 0 {
			tcp.SetMaxFrameSize(uint32(*maxFrameKB) * 1024)
		}
		if tm != nil {
			tcp.SetMetrics(tm)
		}
		if inj == nil {
			return tcp, nil
		}
		return inj.Wrap(tcp), nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dconode: %v\n", err)
		os.Exit(1)
	}
	role := "viewer"
	if *source {
		role = "source"
	}
	fmt.Printf("dconode %s listening on %s (%s id %016x)\n", role, node.Addr(), node.DHTName(), node.ID())
	if *metricsAddr != "" {
		tsrv, err = telemetry.Serve(*metricsAddr, reg, tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dconode: metrics: %v\n", err)
			os.Exit(1)
		}
		defer tsrv.Close()
		fmt.Printf("metrics on http://%s/metrics (trace: /debug/trace, pprof: /debug/pprof/)\n", tsrv.Addr())
	}

	if *join != "" {
		bootstraps := strings.Split(*join, ",")
		for i := range bootstraps {
			bootstraps[i] = strings.TrimSpace(bootstraps[i])
		}
		if err := node.JoinAny(bootstraps); err != nil {
			fmt.Fprintf(os.Stderr, "dconode: join %s: %v\n", *join, err)
			os.Exit(1)
		}
		fmt.Printf("joined ring via %s\n", *join)
	}
	node.Start()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nleaving the ring gracefully…")
			if err := node.Leave(); err != nil {
				fmt.Fprintf(os.Stderr, "dconode: leave: %v\n", err)
			}
			return
		case <-ticker.C:
			if *verbosity >= 1 {
				st := node.Stats()
				_, succ := node.Successor()
				fmt.Printf("buffered=%d fetched=%d served=%d retries=%d shed=%d paced=%d abandoned=%d rpcretries=%d opens=%d failovers=%d blacklisted=%d replops=%d takeovers=%d hedges=%d/%d suspected=%d badchunks=%d quarantined=%d/%d ratelimited=%d succ=%s\n",
					node.ChunkCount(), st.ChunksFetched, st.ChunksServed,
					st.FetchRetries, st.ChunksShedBusy, st.PacedServes, st.ChunksAbandoned,
					st.CallRetries, st.BreakerOpens, st.LookupFailovers, st.ProvidersBlacklisted,
					st.ReplicaOpsApplied, st.IndexTakeovers, st.HedgeWins, st.HedgesLaunched,
					st.SuspectedPeers, st.IntegrityRejects, st.QuarantinedPeers, st.PeersQuarantined,
					st.InsertsRateLimited, succ)
			}
			if *chunks > 0 && !*source && int64(node.ChunkCount()) >= *chunks {
				fmt.Println("stream complete; leaving")
				_ = node.Leave()
				return
			}
		}
	}
}

// orderedSink re-sequences chunks arriving out of order (parallel fetch
// workers race) and writes a contiguous byte stream — what a media player
// sitting behind the node would consume.
type orderedSink struct {
	mu      sync.Mutex
	w       io.Writer
	next    int64
	pending map[int64][]byte
}

func newOrderedSink(w io.Writer, start int64) *orderedSink {
	return &orderedSink{w: w, next: start, pending: make(map[int64][]byte)}
}

func (s *orderedSink) put(seq int64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < s.next {
		return
	}
	s.pending[seq] = data
	for {
		d, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		if _, err := s.w.Write(d); err != nil {
			fmt.Fprintf(os.Stderr, "dconode: sink: %v\n", err)
			return
		}
		s.next++
	}
}
