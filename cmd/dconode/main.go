// Command dconode runs a live DCO node over real TCP: a stream source, or a
// viewer that joins an existing ring and watches the channel.
//
// Start a source:
//
//	dconode -listen 127.0.0.1:7000 -source -chunks 100
//
// Join viewers (any ring member works as bootstrap):
//
//	dconode -listen 127.0.0.1:7001 -join 127.0.0.1:7000
//	dconode -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//
// Each node prints progress; Ctrl-C leaves the ring gracefully.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dco/internal/live"
	"dco/internal/stream"
	"dco/internal/transport"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		join      = flag.String("join", "", "bootstrap address of any ring member (omit for the first node)")
		source    = flag.Bool("source", false, "act as the stream source")
		channel   = flag.String("channel", "LIVE", "channel name")
		chunks    = flag.Int64("chunks", 0, "stream length (0 = endless)")
		chunkKB   = flag.Int64("chunk-kb", 64, "chunk size in KiB")
		period    = flag.Duration("period", 500*time.Millisecond, "chunk period")
		startSeq  = flag.Int64("start", 0, "first chunk to fetch (viewers)")
		verbosity = flag.Int("v", 1, "0 = quiet, 1 = progress, 2 = per chunk")
		out       = flag.String("out", "", "write received chunks, in order, to this file ('-' = stdout)")
	)
	flag.Parse()

	cfg := live.DefaultNodeConfig()
	cfg.Source = *source
	cfg.StartSeq = *startSeq
	cfg.Channel = stream.Params{
		Channel:   *channel,
		ChunkBits: *chunkKB * 8 * 1024,
		Period:    *period,
		Count:     *chunks,
	}

	var sink *orderedSink
	if *out != "" {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dconode: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		sink = newOrderedSink(w, *startSeq)
	}
	cfg.OnChunk = func(seq int64, data []byte) {
		if *verbosity >= 2 {
			fmt.Printf("chunk %d (%d bytes)\n", seq, len(data))
		}
		if sink != nil {
			sink.put(seq, data)
		}
	}

	node, err := live.NewNode(cfg, func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenTCP(*listen, h)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dconode: %v\n", err)
		os.Exit(1)
	}
	role := "viewer"
	if *source {
		role = "source"
	}
	fmt.Printf("dconode %s listening on %s (ring id %s)\n", role, node.Addr(), node.ID())

	if *join != "" {
		if err := node.Join(*join); err != nil {
			fmt.Fprintf(os.Stderr, "dconode: join %s: %v\n", *join, err)
			os.Exit(1)
		}
		fmt.Printf("joined ring via %s\n", *join)
	}
	node.Start()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nleaving the ring gracefully…")
			if err := node.Leave(); err != nil {
				fmt.Fprintf(os.Stderr, "dconode: leave: %v\n", err)
			}
			return
		case <-ticker.C:
			if *verbosity >= 1 {
				st := node.Stats()
				_, succ := node.Successor()
				fmt.Printf("buffered=%d fetched=%d served=%d retries=%d busy=%d succ=%s\n",
					node.ChunkCount(), st.ChunksFetched, st.ChunksServed,
					st.FetchRetries, st.BusyRejections, succ)
			}
			if *chunks > 0 && !*source && int64(node.ChunkCount()) >= *chunks {
				fmt.Println("stream complete; leaving")
				_ = node.Leave()
				return
			}
		}
	}
}

// orderedSink re-sequences chunks arriving out of order (parallel fetch
// workers race) and writes a contiguous byte stream — what a media player
// sitting behind the node would consume.
type orderedSink struct {
	mu      sync.Mutex
	w       io.Writer
	next    int64
	pending map[int64][]byte
}

func newOrderedSink(w io.Writer, start int64) *orderedSink {
	return &orderedSink{w: w, next: start, pending: make(map[int64][]byte)}
}

func (s *orderedSink) put(seq int64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < s.next {
		return
	}
	s.pending[seq] = data
	for {
		d, ok := s.pending[s.next]
		if !ok {
			return
		}
		delete(s.pending, s.next)
		if _, err := s.w.Write(d); err != nil {
			fmt.Fprintf(os.Stderr, "dconode: sink: %v\n", err)
			return
		}
		s.next++
	}
}
