module dco

go 1.22
