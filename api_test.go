// Tests of the public facade: everything a downstream user touches should
// be reachable through package dco alone.
package dco_test

import (
	"testing"
	"time"

	"dco"
	"dco/internal/transport"
)

func TestPublicSimulationAPI(t *testing.T) {
	k := dco.NewKernel(42)
	cfg := dco.DefaultConfig()
	cfg.Stream.Count = 8
	cfg.Neighbors = 8
	sys := dco.NewDCO(k, cfg, 24)
	end := sys.Run(120 * time.Second)
	if end <= 0 {
		t.Fatal("simulation did not advance")
	}
	delay, complete, total := sys.Log.MeshDelay()
	if complete != total || total != 8 {
		t.Fatalf("delivery incomplete: %d/%d", complete, total)
	}
	if delay <= 0 {
		t.Fatal("zero mesh delay is impossible")
	}
	if sys.Net.Overhead() == 0 {
		t.Fatal("DCO must spend control messages")
	}
}

func TestPublicBaselineAPI(t *testing.T) {
	for _, kind := range []dco.BaselineKind{dco.Pull, dco.Push, dco.Tree} {
		k := dco.NewKernel(42)
		cfg := dco.DefaultBaselineConfig(kind)
		cfg.Stream.Count = 8
		cfg.Neighbors = 4
		if kind == dco.Tree {
			cfg.Neighbors = 2
		}
		sys := dco.NewBaseline(k, cfg, 24)
		sys.Run(200 * time.Second)
		if sys.ReceivedTotal() != 23*8 {
			t.Fatalf("%v incomplete: %d", kind, sys.ReceivedTotal())
		}
	}
}

func TestPublicFigureAPI(t *testing.T) {
	ids := dco.FigureIDs()
	if len(ids) != 8 {
		t.Fatalf("figure ids = %v", ids)
	}
	if _, ok := dco.RunFigure("nope", dco.FigureParams{}); ok {
		t.Fatal("unknown figure accepted")
	}
	r, ok := dco.RunFigure("10", dco.FigureParams{N: 24, Chunks: 8, Seed: 1, Horizon: 120 * time.Second})
	if !ok || len(r.Rows) == 0 {
		t.Fatal("figure 10 produced nothing")
	}
}

func TestPublicChunkNaming(t *testing.T) {
	ref := dco.ChunkRef{Channel: "CNN", Seq: 240}
	if dco.HashChunkName(ref.Name()) != ref.ID() {
		t.Fatal("facade hash disagrees with ChunkRef.ID")
	}
}

func TestPublicLiveAPI(t *testing.T) {
	fabric := transport.NewFabric()
	cfg := dco.DefaultLiveConfig()
	cfg.Source = true
	cfg.Channel.Count = 5
	cfg.Channel.Period = 30 * time.Millisecond
	cfg.Channel.ChunkBits = 8 * 1024
	src, err := dco.NewLiveNode(cfg, func(h dco.TransportHandler) (dco.Transport, error) {
		return fabric.Attach(h), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	vcfg := cfg
	vcfg.Source = false
	viewer, err := dco.NewLiveNode(vcfg, func(h dco.TransportHandler) (dco.Transport, error) {
		return fabric.Attach(h), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := viewer.Join(src.Addr()); err != nil {
		t.Fatal(err)
	}
	src.Start()
	viewer.Start()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && viewer.ChunkCount() < 5 {
		time.Sleep(20 * time.Millisecond)
	}
	src.Close()
	viewer.Close()
	if viewer.ChunkCount() < 5 {
		t.Fatalf("viewer got %d of 5 chunks through the public API", viewer.ChunkCount())
	}
}

func TestPublicChurnAPI(t *testing.T) {
	k := dco.NewKernel(7)
	cfg := dco.DefaultConfig()
	cfg.Stream.Count = 20
	cfg.Neighbors = 8
	cfg.Maintenance = true
	sys := dco.NewDCO(k, cfg, 32)
	sys.DisableCompletionStop()
	d := dco.NewChurnDriver(k, dco.ChurnConfig{
		MeanLife: 60 * time.Second,
		MeanJoin: 60 * time.Second / 31,
	}, func() dco.ChurnPeer { return sys.SpawnPeer() })
	for _, p := range sys.Peers() {
		if p.Alive() && p.ID() != sys.Server().ID() {
			d.Track(p)
		}
	}
	d.StartArrivals()
	sys.Run(80 * time.Second)
	if pct := sys.Log.ReceivedPercent(80 * time.Second); pct < 50 {
		t.Fatalf("churn delivery %.1f%%", pct)
	}
}
